
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pruning/bits.cc" "src/pruning/CMakeFiles/fsp_pruning.dir/bits.cc.o" "gcc" "src/pruning/CMakeFiles/fsp_pruning.dir/bits.cc.o.d"
  "/root/repo/src/pruning/grouping.cc" "src/pruning/CMakeFiles/fsp_pruning.dir/grouping.cc.o" "gcc" "src/pruning/CMakeFiles/fsp_pruning.dir/grouping.cc.o.d"
  "/root/repo/src/pruning/instr_common.cc" "src/pruning/CMakeFiles/fsp_pruning.dir/instr_common.cc.o" "gcc" "src/pruning/CMakeFiles/fsp_pruning.dir/instr_common.cc.o.d"
  "/root/repo/src/pruning/loops.cc" "src/pruning/CMakeFiles/fsp_pruning.dir/loops.cc.o" "gcc" "src/pruning/CMakeFiles/fsp_pruning.dir/loops.cc.o.d"
  "/root/repo/src/pruning/pipeline.cc" "src/pruning/CMakeFiles/fsp_pruning.dir/pipeline.cc.o" "gcc" "src/pruning/CMakeFiles/fsp_pruning.dir/pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/faults/CMakeFiles/fsp_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
