# Empty dependencies file for fsp_pruning.
# This may be replaced when dependencies are built.
