file(REMOVE_RECURSE
  "CMakeFiles/fsp_pruning.dir/bits.cc.o"
  "CMakeFiles/fsp_pruning.dir/bits.cc.o.d"
  "CMakeFiles/fsp_pruning.dir/grouping.cc.o"
  "CMakeFiles/fsp_pruning.dir/grouping.cc.o.d"
  "CMakeFiles/fsp_pruning.dir/instr_common.cc.o"
  "CMakeFiles/fsp_pruning.dir/instr_common.cc.o.d"
  "CMakeFiles/fsp_pruning.dir/loops.cc.o"
  "CMakeFiles/fsp_pruning.dir/loops.cc.o.d"
  "CMakeFiles/fsp_pruning.dir/pipeline.cc.o"
  "CMakeFiles/fsp_pruning.dir/pipeline.cc.o.d"
  "libfsp_pruning.a"
  "libfsp_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsp_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
