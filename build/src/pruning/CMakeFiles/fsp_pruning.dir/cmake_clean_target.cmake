file(REMOVE_RECURSE
  "libfsp_pruning.a"
)
