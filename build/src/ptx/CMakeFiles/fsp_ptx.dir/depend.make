# Empty dependencies file for fsp_ptx.
# This may be replaced when dependencies are built.
