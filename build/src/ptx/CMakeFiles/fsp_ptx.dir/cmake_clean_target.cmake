file(REMOVE_RECURSE
  "libfsp_ptx.a"
)
