file(REMOVE_RECURSE
  "CMakeFiles/fsp_ptx.dir/assembler.cc.o"
  "CMakeFiles/fsp_ptx.dir/assembler.cc.o.d"
  "libfsp_ptx.a"
  "libfsp_ptx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsp_ptx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
