# Empty dependencies file for fsp_analysis.
# This may be replaced when dependencies are built.
