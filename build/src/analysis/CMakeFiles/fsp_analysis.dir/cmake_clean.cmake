file(REMOVE_RECURSE
  "CMakeFiles/fsp_analysis.dir/analyzer.cc.o"
  "CMakeFiles/fsp_analysis.dir/analyzer.cc.o.d"
  "CMakeFiles/fsp_analysis.dir/breakdown.cc.o"
  "CMakeFiles/fsp_analysis.dir/breakdown.cc.o.d"
  "CMakeFiles/fsp_analysis.dir/convergence.cc.o"
  "CMakeFiles/fsp_analysis.dir/convergence.cc.o.d"
  "libfsp_analysis.a"
  "libfsp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
