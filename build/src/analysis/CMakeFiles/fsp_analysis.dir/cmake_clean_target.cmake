file(REMOVE_RECURSE
  "libfsp_analysis.a"
)
