file(REMOVE_RECURSE
  "libfsp_apps.a"
)
