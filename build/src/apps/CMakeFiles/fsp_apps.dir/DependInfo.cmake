
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/conv2d.cc" "src/apps/CMakeFiles/fsp_apps.dir/conv2d.cc.o" "gcc" "src/apps/CMakeFiles/fsp_apps.dir/conv2d.cc.o.d"
  "/root/repo/src/apps/gaussian.cc" "src/apps/CMakeFiles/fsp_apps.dir/gaussian.cc.o" "gcc" "src/apps/CMakeFiles/fsp_apps.dir/gaussian.cc.o.d"
  "/root/repo/src/apps/gemm.cc" "src/apps/CMakeFiles/fsp_apps.dir/gemm.cc.o" "gcc" "src/apps/CMakeFiles/fsp_apps.dir/gemm.cc.o.d"
  "/root/repo/src/apps/hotspot.cc" "src/apps/CMakeFiles/fsp_apps.dir/hotspot.cc.o" "gcc" "src/apps/CMakeFiles/fsp_apps.dir/hotspot.cc.o.d"
  "/root/repo/src/apps/kernel_util.cc" "src/apps/CMakeFiles/fsp_apps.dir/kernel_util.cc.o" "gcc" "src/apps/CMakeFiles/fsp_apps.dir/kernel_util.cc.o.d"
  "/root/repo/src/apps/kmeans.cc" "src/apps/CMakeFiles/fsp_apps.dir/kmeans.cc.o" "gcc" "src/apps/CMakeFiles/fsp_apps.dir/kmeans.cc.o.d"
  "/root/repo/src/apps/lud.cc" "src/apps/CMakeFiles/fsp_apps.dir/lud.cc.o" "gcc" "src/apps/CMakeFiles/fsp_apps.dir/lud.cc.o.d"
  "/root/repo/src/apps/mm2.cc" "src/apps/CMakeFiles/fsp_apps.dir/mm2.cc.o" "gcc" "src/apps/CMakeFiles/fsp_apps.dir/mm2.cc.o.d"
  "/root/repo/src/apps/mvt.cc" "src/apps/CMakeFiles/fsp_apps.dir/mvt.cc.o" "gcc" "src/apps/CMakeFiles/fsp_apps.dir/mvt.cc.o.d"
  "/root/repo/src/apps/nn.cc" "src/apps/CMakeFiles/fsp_apps.dir/nn.cc.o" "gcc" "src/apps/CMakeFiles/fsp_apps.dir/nn.cc.o.d"
  "/root/repo/src/apps/pathfinder.cc" "src/apps/CMakeFiles/fsp_apps.dir/pathfinder.cc.o" "gcc" "src/apps/CMakeFiles/fsp_apps.dir/pathfinder.cc.o.d"
  "/root/repo/src/apps/registry.cc" "src/apps/CMakeFiles/fsp_apps.dir/registry.cc.o" "gcc" "src/apps/CMakeFiles/fsp_apps.dir/registry.cc.o.d"
  "/root/repo/src/apps/syrk.cc" "src/apps/CMakeFiles/fsp_apps.dir/syrk.cc.o" "gcc" "src/apps/CMakeFiles/fsp_apps.dir/syrk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ptx/CMakeFiles/fsp_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/fsp_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
