file(REMOVE_RECURSE
  "CMakeFiles/fsp_apps.dir/conv2d.cc.o"
  "CMakeFiles/fsp_apps.dir/conv2d.cc.o.d"
  "CMakeFiles/fsp_apps.dir/gaussian.cc.o"
  "CMakeFiles/fsp_apps.dir/gaussian.cc.o.d"
  "CMakeFiles/fsp_apps.dir/gemm.cc.o"
  "CMakeFiles/fsp_apps.dir/gemm.cc.o.d"
  "CMakeFiles/fsp_apps.dir/hotspot.cc.o"
  "CMakeFiles/fsp_apps.dir/hotspot.cc.o.d"
  "CMakeFiles/fsp_apps.dir/kernel_util.cc.o"
  "CMakeFiles/fsp_apps.dir/kernel_util.cc.o.d"
  "CMakeFiles/fsp_apps.dir/kmeans.cc.o"
  "CMakeFiles/fsp_apps.dir/kmeans.cc.o.d"
  "CMakeFiles/fsp_apps.dir/lud.cc.o"
  "CMakeFiles/fsp_apps.dir/lud.cc.o.d"
  "CMakeFiles/fsp_apps.dir/mm2.cc.o"
  "CMakeFiles/fsp_apps.dir/mm2.cc.o.d"
  "CMakeFiles/fsp_apps.dir/mvt.cc.o"
  "CMakeFiles/fsp_apps.dir/mvt.cc.o.d"
  "CMakeFiles/fsp_apps.dir/nn.cc.o"
  "CMakeFiles/fsp_apps.dir/nn.cc.o.d"
  "CMakeFiles/fsp_apps.dir/pathfinder.cc.o"
  "CMakeFiles/fsp_apps.dir/pathfinder.cc.o.d"
  "CMakeFiles/fsp_apps.dir/registry.cc.o"
  "CMakeFiles/fsp_apps.dir/registry.cc.o.d"
  "CMakeFiles/fsp_apps.dir/syrk.cc.o"
  "CMakeFiles/fsp_apps.dir/syrk.cc.o.d"
  "libfsp_apps.a"
  "libfsp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
