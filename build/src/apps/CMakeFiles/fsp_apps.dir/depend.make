# Empty dependencies file for fsp_apps.
# This may be replaced when dependencies are built.
