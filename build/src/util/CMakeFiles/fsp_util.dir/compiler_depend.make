# Empty compiler generated dependencies file for fsp_util.
# This may be replaced when dependencies are built.
