file(REMOVE_RECURSE
  "CMakeFiles/fsp_util.dir/csv.cc.o"
  "CMakeFiles/fsp_util.dir/csv.cc.o.d"
  "CMakeFiles/fsp_util.dir/env.cc.o"
  "CMakeFiles/fsp_util.dir/env.cc.o.d"
  "CMakeFiles/fsp_util.dir/logging.cc.o"
  "CMakeFiles/fsp_util.dir/logging.cc.o.d"
  "CMakeFiles/fsp_util.dir/prng.cc.o"
  "CMakeFiles/fsp_util.dir/prng.cc.o.d"
  "CMakeFiles/fsp_util.dir/stats.cc.o"
  "CMakeFiles/fsp_util.dir/stats.cc.o.d"
  "CMakeFiles/fsp_util.dir/table.cc.o"
  "CMakeFiles/fsp_util.dir/table.cc.o.d"
  "libfsp_util.a"
  "libfsp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
