file(REMOVE_RECURSE
  "libfsp_util.a"
)
