file(REMOVE_RECURSE
  "libfsp_faults.a"
)
