# Empty compiler generated dependencies file for fsp_faults.
# This may be replaced when dependencies are built.
