
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faults/campaign.cc" "src/faults/CMakeFiles/fsp_faults.dir/campaign.cc.o" "gcc" "src/faults/CMakeFiles/fsp_faults.dir/campaign.cc.o.d"
  "/root/repo/src/faults/fault_space.cc" "src/faults/CMakeFiles/fsp_faults.dir/fault_space.cc.o" "gcc" "src/faults/CMakeFiles/fsp_faults.dir/fault_space.cc.o.d"
  "/root/repo/src/faults/injector.cc" "src/faults/CMakeFiles/fsp_faults.dir/injector.cc.o" "gcc" "src/faults/CMakeFiles/fsp_faults.dir/injector.cc.o.d"
  "/root/repo/src/faults/outcome.cc" "src/faults/CMakeFiles/fsp_faults.dir/outcome.cc.o" "gcc" "src/faults/CMakeFiles/fsp_faults.dir/outcome.cc.o.d"
  "/root/repo/src/faults/output_spec.cc" "src/faults/CMakeFiles/fsp_faults.dir/output_spec.cc.o" "gcc" "src/faults/CMakeFiles/fsp_faults.dir/output_spec.cc.o.d"
  "/root/repo/src/faults/sampling.cc" "src/faults/CMakeFiles/fsp_faults.dir/sampling.cc.o" "gcc" "src/faults/CMakeFiles/fsp_faults.dir/sampling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
