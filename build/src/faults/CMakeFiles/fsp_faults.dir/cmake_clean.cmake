file(REMOVE_RECURSE
  "CMakeFiles/fsp_faults.dir/campaign.cc.o"
  "CMakeFiles/fsp_faults.dir/campaign.cc.o.d"
  "CMakeFiles/fsp_faults.dir/fault_space.cc.o"
  "CMakeFiles/fsp_faults.dir/fault_space.cc.o.d"
  "CMakeFiles/fsp_faults.dir/injector.cc.o"
  "CMakeFiles/fsp_faults.dir/injector.cc.o.d"
  "CMakeFiles/fsp_faults.dir/outcome.cc.o"
  "CMakeFiles/fsp_faults.dir/outcome.cc.o.d"
  "CMakeFiles/fsp_faults.dir/output_spec.cc.o"
  "CMakeFiles/fsp_faults.dir/output_spec.cc.o.d"
  "CMakeFiles/fsp_faults.dir/sampling.cc.o"
  "CMakeFiles/fsp_faults.dir/sampling.cc.o.d"
  "libfsp_faults.a"
  "libfsp_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsp_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
