
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/disasm.cc" "src/sim/CMakeFiles/fsp_sim.dir/disasm.cc.o" "gcc" "src/sim/CMakeFiles/fsp_sim.dir/disasm.cc.o.d"
  "/root/repo/src/sim/executor.cc" "src/sim/CMakeFiles/fsp_sim.dir/executor.cc.o" "gcc" "src/sim/CMakeFiles/fsp_sim.dir/executor.cc.o.d"
  "/root/repo/src/sim/isa.cc" "src/sim/CMakeFiles/fsp_sim.dir/isa.cc.o" "gcc" "src/sim/CMakeFiles/fsp_sim.dir/isa.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/fsp_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/fsp_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/program.cc" "src/sim/CMakeFiles/fsp_sim.dir/program.cc.o" "gcc" "src/sim/CMakeFiles/fsp_sim.dir/program.cc.o.d"
  "/root/repo/src/sim/types.cc" "src/sim/CMakeFiles/fsp_sim.dir/types.cc.o" "gcc" "src/sim/CMakeFiles/fsp_sim.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
