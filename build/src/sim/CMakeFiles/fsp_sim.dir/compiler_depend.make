# Empty compiler generated dependencies file for fsp_sim.
# This may be replaced when dependencies are built.
