file(REMOVE_RECURSE
  "CMakeFiles/fsp_sim.dir/disasm.cc.o"
  "CMakeFiles/fsp_sim.dir/disasm.cc.o.d"
  "CMakeFiles/fsp_sim.dir/executor.cc.o"
  "CMakeFiles/fsp_sim.dir/executor.cc.o.d"
  "CMakeFiles/fsp_sim.dir/isa.cc.o"
  "CMakeFiles/fsp_sim.dir/isa.cc.o.d"
  "CMakeFiles/fsp_sim.dir/memory.cc.o"
  "CMakeFiles/fsp_sim.dir/memory.cc.o.d"
  "CMakeFiles/fsp_sim.dir/program.cc.o"
  "CMakeFiles/fsp_sim.dir/program.cc.o.d"
  "CMakeFiles/fsp_sim.dir/types.cc.o"
  "CMakeFiles/fsp_sim.dir/types.cc.o.d"
  "libfsp_sim.a"
  "libfsp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
