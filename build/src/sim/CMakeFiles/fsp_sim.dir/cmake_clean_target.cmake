file(REMOVE_RECURSE
  "libfsp_sim.a"
)
