file(REMOVE_RECURSE
  "CMakeFiles/fsp.dir/fsp.cc.o"
  "CMakeFiles/fsp.dir/fsp.cc.o.d"
  "fsp"
  "fsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
