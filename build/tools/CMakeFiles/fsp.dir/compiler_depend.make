# Empty compiler generated dependencies file for fsp.
# This may be replaced when dependencies are built.
