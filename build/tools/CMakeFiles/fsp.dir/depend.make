# Empty dependencies file for fsp.
# This may be replaced when dependencies are built.
