file(REMOVE_RECURSE
  "CMakeFiles/auto_loop_budget.dir/auto_loop_budget.cpp.o"
  "CMakeFiles/auto_loop_budget.dir/auto_loop_budget.cpp.o.d"
  "auto_loop_budget"
  "auto_loop_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_loop_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
