# Empty compiler generated dependencies file for auto_loop_budget.
# This may be replaced when dependencies are built.
