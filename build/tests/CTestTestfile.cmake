# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_assembler "/root/repo/build/tests/test_assembler")
set_tests_properties(test_assembler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_disasm "/root/repo/build/tests/test_disasm")
set_tests_properties(test_disasm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_executor "/root/repo/build/tests/test_executor")
set_tests_properties(test_executor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_executor_grid "/root/repo/build/tests/test_executor_grid")
set_tests_properties(test_executor_grid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_faults "/root/repo/build/tests/test_faults")
set_tests_properties(test_faults PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_memory "/root/repo/build/tests/test_memory")
set_tests_properties(test_memory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_misc "/root/repo/build/tests/test_misc")
set_tests_properties(test_misc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_pipeline "/root/repo/build/tests/test_pipeline")
set_tests_properties(test_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_pruning "/root/repo/build/tests/test_pruning")
set_tests_properties(test_pruning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_robustness "/root/repo/build/tests/test_robustness")
set_tests_properties(test_robustness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_alu_random "/root/repo/build/tests/test_alu_random")
set_tests_properties(test_alu_random PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_apps "/root/repo/build/tests/test_apps")
set_tests_properties(test_apps PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_util "/root/repo/build/tests/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
