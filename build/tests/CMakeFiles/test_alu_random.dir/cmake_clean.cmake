file(REMOVE_RECURSE
  "CMakeFiles/test_alu_random.dir/test_alu_random.cc.o"
  "CMakeFiles/test_alu_random.dir/test_alu_random.cc.o.d"
  "test_alu_random"
  "test_alu_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alu_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
