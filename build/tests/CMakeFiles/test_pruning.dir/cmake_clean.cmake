file(REMOVE_RECURSE
  "CMakeFiles/test_pruning.dir/test_pruning.cc.o"
  "CMakeFiles/test_pruning.dir/test_pruning.cc.o.d"
  "test_pruning"
  "test_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
