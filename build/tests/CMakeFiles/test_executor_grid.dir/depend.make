# Empty dependencies file for test_executor_grid.
# This may be replaced when dependencies are built.
