file(REMOVE_RECURSE
  "CMakeFiles/test_executor_grid.dir/test_executor_grid.cc.o"
  "CMakeFiles/test_executor_grid.dir/test_executor_grid.cc.o.d"
  "test_executor_grid"
  "test_executor_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_executor_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
