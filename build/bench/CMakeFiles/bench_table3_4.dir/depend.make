# Empty dependencies file for bench_table3_4.
# This may be replaced when dependencies are built.
