file(REMOVE_RECURSE
  "libfsp_bench_util.a"
)
