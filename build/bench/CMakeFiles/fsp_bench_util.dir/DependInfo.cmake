
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_util.cc" "bench/CMakeFiles/fsp_bench_util.dir/bench_util.cc.o" "gcc" "bench/CMakeFiles/fsp_bench_util.dir/bench_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/fsp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/fsp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ptx/CMakeFiles/fsp_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/pruning/CMakeFiles/fsp_pruning.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/fsp_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fsp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
