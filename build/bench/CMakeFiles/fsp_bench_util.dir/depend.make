# Empty dependencies file for fsp_bench_util.
# This may be replaced when dependencies are built.
