file(REMOVE_RECURSE
  "CMakeFiles/fsp_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/fsp_bench_util.dir/bench_util.cc.o.d"
  "libfsp_bench_util.a"
  "libfsp_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsp_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
