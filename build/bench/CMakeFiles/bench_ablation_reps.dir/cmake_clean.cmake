file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reps.dir/bench_ablation_reps.cc.o"
  "CMakeFiles/bench_ablation_reps.dir/bench_ablation_reps.cc.o.d"
  "bench_ablation_reps"
  "bench_ablation_reps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
