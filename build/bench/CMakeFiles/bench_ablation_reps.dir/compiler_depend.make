# Empty compiler generated dependencies file for bench_ablation_reps.
# This may be replaced when dependencies are built.
