/**
 * @file
 * Service subcommand implementations.
 *
 *   fsp serve    --socket S [--tcp] ...          run the daemon
 *   fsp submit   <App/Kx> --socket S ...         submit + stream a job
 *   fsp merge    <App/Kx> --journal-base B ...   merge shard journals
 *   fsp shutdown --socket S                      stop a daemon
 *   fsp shard-worker ...                         internal (daemon fork)
 *
 * `submit` and `merge` take the shared campaign option set, because
 * identity is derived from those values: the spec a submit sends, the
 * plan a worker executes, and the journals a merge validates must all
 * come from the same knobs.
 */

#include "fsp_service_cmds.hh"

#include <algorithm>
#include <csignal>
#include <fstream>
#include <iostream>
#include <vector>

#include "analysis/cli_options.hh"
#include "analysis/report.hh"
#include "apps/app.hh"
#include "faults/journal_merge.hh"
#include "faults/shard_plan.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "service/worker.hh"
#include "util/cli.hh"
#include "util/json.hh"

namespace {

using namespace fsp;

service::ServeDaemon *g_daemon = nullptr;

void
onStopSignal(int)
{
    if (g_daemon != nullptr)
        g_daemon->requestStop();
}

/** Shared per-command parse boilerplate; nullopt means "exit @p rc". */
int
parseOrExit(OptionTable &table, int argc, char **argv)
{
    switch (table.parse(argc, argv, 2, std::cerr)) {
      case OptionTable::Parse::Ok:
        return 0;
      case OptionTable::Parse::Help:
        return -1;
      case OptionTable::Parse::Error:
        return 2;
    }
    return 2;
}

/** Endpoint selection shared by submit/shutdown. */
struct EndpointOpts
{
    std::string socketPath;
    std::uint64_t tcpPort = 0;
};

void
addEndpointOptions(OptionTable &table, EndpointOpts &opts)
{
    table.optionString("--socket", "PATH", "daemon unix socket path",
                       opts.socketPath);
    table.optionU64("--tcp-port", "N",
                    "connect to 127.0.0.1:N instead of --socket",
                    opts.tcpPort);
}

service::ServiceClient
connectDaemon(const EndpointOpts &opts)
{
    if (!opts.socketPath.empty())
        return service::ServiceClient::connectUnixSocket(opts.socketPath);
    if (opts.tcpPort != 0) {
        return service::ServiceClient::connectLoopback(
            static_cast<std::uint16_t>(opts.tcpPort));
    }
    throw std::runtime_error("need --socket or --tcp-port");
}

/**
 * The spec a kernel + shared campaign options describe.  This is the
 * inverse of service::CampaignContext::fromSpec -- round-tripping
 * through it reproduces the same CommonCliOptions, which is what makes
 * a submitted job's identity equal a local run's.
 */
service::CampaignSpec
specFromCommon(const std::string &kernel,
               const analysis::CommonCliOptions &common)
{
    service::CampaignSpec spec;
    spec.kind = service::CampaignSpec::Kind::Prune;
    spec.kernel = kernel;
    spec.paperScale = common.scale == apps::Scale::Paper;
    spec.seed = common.seed;
    spec.faultModel = common.faultModel;
    spec.threadsPerWorker = common.campaign.workers;
    spec.chunk = common.campaign.chunkSize;
    spec.pilots = common.pruning.thread.repsPerGroup;
    spec.loopIters = common.pruning.loop.iterations;
    spec.bitSamples = common.pruning.bit.samples;
    spec.noSlicing = !common.campaign.allowSlicing;
    spec.noCheckpoints = !common.campaign.allowCheckpoints;
    spec.cacheDir = common.cacheDir;
    return spec;
}

int
cmdServe(int argc, char **argv)
{
    service::ServeOptions options;
    std::string port_file;
    std::uint64_t tcp_port = 0, restart_limit = options.restartLimit;
    OptionTable table;
    table.setUsage("fsp serve --socket PATH [options]");
    table.optionString("--socket", "PATH", "unix socket to listen on",
                       options.socketPath);
    table.flag("--tcp", "also listen on TCP 127.0.0.1",
               options.tcpEnabled);
    table.optionU64("--tcp-port", "N",
                    "TCP port (default 0 = ephemeral; implies --tcp)",
                    tcp_port);
    table.optionU64("--restart-limit", "N",
                    "respawn attempts per shard before the job fails "
                    "(default 3)",
                    restart_limit);
    table.optionString("--port-file", "PATH",
                       "write the bound TCP port here once listening",
                       port_file);
    if (int rc = parseOrExit(table, argc, argv))
        return rc < 0 ? 0 : rc;
    if (options.socketPath.empty()) {
        std::cerr << "fsp serve needs --socket PATH\n";
        return 2;
    }
    if (tcp_port != 0)
        options.tcpEnabled = true;
    options.tcpPort = static_cast<std::uint16_t>(tcp_port);
    options.restartLimit = static_cast<std::uint32_t>(restart_limit);

    service::ServeDaemon daemon(options);
    daemon.start();
    g_daemon = &daemon;
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);

    std::cout << "fsp serve: listening on " << options.socketPath;
    if (options.tcpEnabled)
        std::cout << " and 127.0.0.1:" << daemon.tcpPort();
    std::cout << std::endl; // flush: readiness signal for scripts
    if (!port_file.empty()) {
        std::ofstream out(port_file, std::ios::trunc);
        out << daemon.tcpPort() << "\n";
    }

    int rc = daemon.run();
    g_daemon = nullptr;
    return rc;
}

int
cmdSubmit(int argc, char **argv)
{
    std::string kernel;
    analysis::CommonCliOptions common;
    EndpointOpts endpoint;
    std::string journal_base;
    std::uint64_t shards = 1, procs = 0, abort_after = 0;
    bool no_wait = false;

    OptionTable table;
    table.setUsage("fsp submit <App/Kx> --journal-base PATH "
                   "(--socket PATH | --tcp-port N) [options]");
    table.positional("kernel", "kernel name, e.g. GEMM/K1",
                     [&kernel](const std::string &arg) {
                         if (!kernel.empty())
                             return false;
                         kernel = arg;
                         return true;
                     });
    analysis::addCommonOptions(table, common);
    addEndpointOptions(table, endpoint);
    table.optionString("--journal-base", "PATH",
                       "shard journals land at "
                       "PATH.shard<i>of<N>.fspj (daemon-side path)",
                       journal_base);
    table.optionU64("--shards", "N", "shard count (default 1)", shards);
    table.optionU64("--procs", "N",
                    "concurrent worker processes (default: one per "
                    "shard)",
                    procs);
    table.optionU64("--abort-after", "N",
                    "testing hook: first attempt of every worker "
                    "aborts after N sites",
                    abort_after);
    table.flag("--no-wait", "submit and exit without streaming the job",
               no_wait);
    if (int rc = parseOrExit(table, argc, argv))
        return rc < 0 ? 0 : rc;
    if (kernel.empty() || journal_base.empty()) {
        std::cerr << "fsp submit needs a kernel and --journal-base\n";
        return 2;
    }

    service::CampaignSpec spec = specFromCommon(kernel, common);
    spec.shards = static_cast<std::uint32_t>(shards);
    spec.procs = static_cast<std::uint32_t>(procs);
    spec.abortAfterSites = abort_after;

    service::ServiceClient client = connectDaemon(endpoint);
    std::uint64_t job = client.submit(spec, journal_base);
    if (no_wait) {
        std::cout << "job " << job << " submitted\n";
        return 0;
    }

    std::uint64_t last_done = 0;
    service::JobOutcome outcome = client.waitJob(
        job, [&](const service::JobProgress &progress) {
            if (common.json)
                return;
            // Throttle: a line per ~5% of the job, not per chunk.
            std::uint64_t step =
                std::max<std::uint64_t>(1, progress.jobSitesTotal / 20);
            if (progress.jobSitesDone < last_done + step &&
                progress.jobSitesDone != progress.jobSitesTotal)
                return;
            last_done = progress.jobSitesDone;
            std::cerr << "job " << job << ": " << progress.jobSitesDone
                      << "/" << progress.jobSitesTotal << " sites\n";
        });

    if (common.json) {
        JsonWriter json(std::cout);
        json.beginObject();
        json.field("jobId", outcome.jobId);
        json.field("ok", outcome.ok);
        json.field("message", outcome.message);
        json.endObject();
    } else {
        std::cout << "job " << job << (outcome.ok ? " done" : " FAILED");
        if (!outcome.message.empty())
            std::cout << ": " << outcome.message;
        std::cout << "\n";
    }
    return outcome.ok ? 0 : 1;
}

int
cmdMerge(int argc, char **argv)
{
    std::string kernel;
    analysis::CommonCliOptions common;
    std::string journal_base, merged_journal;
    std::uint64_t shards = 0;
    bool allow_incomplete = false;

    OptionTable table;
    table.setUsage("fsp merge <App/Kx> --journal-base PATH --shards N "
                   "[options]");
    table.positional("kernel", "kernel name, e.g. GEMM/K1",
                     [&kernel](const std::string &arg) {
                         if (!kernel.empty())
                             return false;
                         kernel = arg;
                         return true;
                     });
    analysis::addCommonOptions(table, common);
    table.optionString("--journal-base", "PATH",
                       "base the shard journals were written under",
                       journal_base);
    table.optionU64("--shards", "N", "shard count of the campaign",
                    shards);
    table.optionString("--merged-journal", "PATH",
                       "also emit a merged single-campaign journal "
                       "(resumable by `fsp campaign`)",
                       merged_journal);
    table.flag("--allow-incomplete",
               "merge an in-flight campaign (folds only classified "
               "sites; not comparable to a full run)",
               allow_incomplete);
    if (int rc = parseOrExit(table, argc, argv))
        return rc < 0 ? 0 : rc;
    if (kernel.empty() || journal_base.empty() || shards == 0) {
        std::cerr << "fsp merge needs a kernel, --journal-base and "
                     "--shards\n";
        return 2;
    }

    // Re-derive the campaign identity the way every worker did; the
    // merge validates each journal against it, so a knob mismatch is
    // caught as a stale-hash error, never folded silently.
    service::CampaignSpec spec = specFromCommon(kernel, common);
    spec.shards = static_cast<std::uint32_t>(shards);
    service::CampaignContext ctx = service::CampaignContext::fromSpec(spec);

    std::vector<std::string> paths;
    for (std::uint64_t shard = 0; shard < shards; ++shard) {
        paths.push_back(faults::shardJournalPath(
            journal_base, static_cast<std::uint32_t>(shard),
            static_cast<std::uint32_t>(shards)));
    }
    faults::MergeOptions merge_options;
    merge_options.requireComplete = !allow_incomplete;
    merge_options.mergedJournalPath = merged_journal;

    faults::MergeReport report;
    try {
        report = faults::mergeShardJournals(ctx.key, ctx.sites,
                                            ctx.modelHash, paths,
                                            merge_options);
    } catch (const faults::JournalError &error) {
        std::cerr << "merge error: " << error.what() << "\n";
        return 1;
    }

    // Same post-campaign fold as runPrunedCampaignDetailed: the weight
    // the pruning stages proved masked joins the distribution here.
    report.result.dist.addWeight(faults::Outcome::Masked,
                                 ctx.assumedMaskedWeight);

    if (common.json) {
        JsonWriter json(std::cout);
        json.beginObject();
        json.field("kernel", ctx.spec->fullName());
        json.field("scale", apps::scaleName(common.scale));
        json.field("seed", common.seed);
        json.field("shards", shards);
        json.field("campaignSites", report.campaignSites);
        json.field("sitesDone", report.sitesDone);
        json.field("complete", report.complete);
        // Same profile shape as `fsp campaign --json`, so merged and
        // single-process output diff cleanly.
        analysis::writeOutcomeProfile(json, "prunedEstimate",
                                      report.result.dist);
        report.result.anatomy.writeJson(json);
        json.beginObject("mergePhases");
        json.field("replaySeconds", report.phases.replaySeconds);
        json.field("injectSeconds", report.phases.injectSeconds);
        json.field("foldSeconds", report.phases.foldSeconds);
        json.field("workers",
                   static_cast<std::uint64_t>(report.phases.workers));
        json.endObject();
        json.endObject();
        return 0;
    }

    std::cout << ctx.spec->fullName() << " merged from " << shards
              << " shard journal" << (shards == 1 ? "" : "s") << "\n"
              << "  sites:    " << report.sitesDone << "/"
              << report.campaignSites
              << (report.complete ? " (complete)" : " (incomplete)")
              << "\n"
              << "  estimate (" << report.result.dist.runs()
              << " runs): " << report.result.dist.summary() << "\n";
    if (report.result.anatomy.sdcRuns() > 0)
        std::cout << "  " << report.result.anatomy.summary() << "\n";
    if (!merged_journal.empty())
        std::cout << "  merged journal: " << merged_journal << "\n";
    return 0;
}

int
cmdShutdown(int argc, char **argv)
{
    EndpointOpts endpoint;
    OptionTable table;
    table.setUsage("fsp shutdown (--socket PATH | --tcp-port N)");
    addEndpointOptions(table, endpoint);
    if (int rc = parseOrExit(table, argc, argv))
        return rc < 0 ? 0 : rc;
    service::ServiceClient client = connectDaemon(endpoint);
    client.shutdownServer();
    std::cout << "daemon acknowledged shutdown\n";
    return 0;
}

int
cmdShardWorker(int argc, char **argv)
{
    service::ShardWorkerArgs args;
    std::uint64_t shard = 0, shards = 1, attempt = 0, progress_fd = 0;
    bool has_progress_fd = false;
    OptionTable table;
    table.setUsage("fsp shard-worker --spec-file PATH --journal-base "
                   "PATH --shard I --shards N [internal]");
    table.optionString("--spec-file", "PATH", "encoded CampaignSpec",
                       args.specFile);
    table.optionString("--journal-base", "PATH", "shard journal base",
                       args.journalBase);
    table.optionU64("--shard", "I", "this worker's shard index", shard);
    table.optionU64("--shards", "N", "total shard count", shards);
    table.optionU64("--attempt", "N", "respawn count (internal)",
                    attempt);
    table.option("--progress-fd", "FD",
                 "stream WorkerProgress frames to this fd",
                 [&](const std::string &arg) {
                     try {
                         progress_fd = std::stoull(arg);
                     } catch (const std::exception &) {
                         return false;
                     }
                     has_progress_fd = true;
                     return true;
                 });
    if (int rc = parseOrExit(table, argc, argv))
        return rc < 0 ? 0 : rc;
    if (args.specFile.empty() || args.journalBase.empty()) {
        std::cerr << "fsp shard-worker needs --spec-file and "
                     "--journal-base\n";
        return 2;
    }
    args.shard = static_cast<std::uint32_t>(shard);
    args.shards = static_cast<std::uint32_t>(shards);
    args.attempt = static_cast<std::uint32_t>(attempt);
    args.progressFd = has_progress_fd ? static_cast<int>(progress_fd) : -1;
    return service::runShardWorker(args);
}

} // namespace

namespace fsp::tools {

void
registerServiceCommands(CommandRegistry &registry)
{
    registry.add({"serve", "run the campaign service daemon", cmdServe});
    registry.add(
        {"submit", "submit a campaign to a daemon and stream it",
         cmdSubmit});
    registry.add(
        {"merge", "merge shard journals into one profile", cmdMerge});
    registry.add({"shutdown", "stop a daemon", cmdShutdown});
    registry.add({"shard-worker", "internal (daemon-forked shard run)",
                  cmdShardWorker});
}

} // namespace fsp::tools
