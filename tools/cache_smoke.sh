#!/usr/bin/env bash
# End-to-end smoke of incremental campaigns: run a cold GEMM campaign
# into a section cache, "edit" the kernel via FSP_GEMM_VARIANT (a
# value-preserving strength reduction -- see src/apps/gemm.cc), rerun
# with the same --cache, and assert that (a) at least half the edited
# kernel's sites were satisfied from the cache and (b) the warm rerun's
# profile is bit-identical to a cold run of the edited kernel.
#
# usage: cache_smoke.sh path/to/fsp [workdir]
set -euo pipefail

FSP=${1:?usage: cache_smoke.sh path/to/fsp [workdir]}
WORK=${2:-$(mktemp -d)}
mkdir -p "$WORK"

KERNEL=GEMM/K1

# Cold campaign of the pristine kernel primes the cache.
"$FSP" campaign "$KERNEL" --baseline 0 --cache "$WORK/cache" \
    --metrics-out "$WORK/cold.prom" --json > "$WORK/cold.json"

# Warm campaign of the edited kernel against the primed cache.
FSP_GEMM_VARIANT=strength-reduce \
    "$FSP" campaign "$KERNEL" --baseline 0 --cache "$WORK/cache" \
    --metrics-out "$WORK/warm.prom" --json > "$WORK/warm.json"

# Cold oracle for the edited kernel (fresh cache directory).
FSP_GEMM_VARIANT=strength-reduce \
    "$FSP" campaign "$KERNEL" --baseline 0 --cache "$WORK/cache-oracle" \
    --json > "$WORK/oracle.json"

python3 - "$WORK/cold.json" "$WORK/warm.json" "$WORK/oracle.json" <<'EOF'
import json
import sys

cold = json.load(open(sys.argv[1]))
warm = json.load(open(sys.argv[2]))
oracle = json.load(open(sys.argv[3]))

cold_cache = cold["campaignStats"]["sectionCache"]
if cold_cache["hits"] != 0 or cold_cache["misses"] == 0:
    raise SystemExit("cold run should only miss: %s" % cold_cache)

warm_cache = warm["campaignStats"]["sectionCache"]
total = warm_cache["hits"] + warm_cache["misses"]
ratio = warm_cache["hits"] / total
print("edited-kernel rerun: %d/%d sites from cache (%.0f%%)"
      % (warm_cache["hits"], total, 100 * ratio))
if ratio < 0.5:
    raise SystemExit("expected >= 50%% cache reuse, got %.0f%%"
                     % (100 * ratio))

# Reuse must not change the profile: the warm rerun of the edited
# kernel matches its cold oracle field for field.
for key in ("prunedEstimate", "sdc_anatomy"):
    if warm[key] != oracle[key]:
        raise SystemExit(
            "%s differs:\n  warm:   %s\n  oracle: %s"
            % (key, warm[key], oracle[key]))
print("warm profile is bit-identical to the cold run")
EOF

# The Prometheus snapshot carries the cache counters.
grep -q 'fsp_cache_misses_total [1-9]' "$WORK/cold.prom"
grep -q 'fsp_cache_hits_total [1-9]' "$WORK/warm.prom"
grep -q 'fsp_cache_bytes_total [1-9]' "$WORK/warm.prom"

echo "cache smoke OK"
