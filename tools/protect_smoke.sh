#!/usr/bin/env bash
# End-to-end smoke of the protection planner: run `fsp protect` on GEMM
# at a 25% overhead budget and assert that (a) the planner selected a
# non-empty thread set within budget, (b) the verification campaign
# actually ran, and (c) the verified SDC fraction dropped below the
# unprotected baseline -- the ISSUE's acceptance criterion.
#
# usage: protect_smoke.sh path/to/fsp [workdir]
set -euo pipefail

FSP=${1:?usage: protect_smoke.sh path/to/fsp [workdir]}
WORK=${2:-$(mktemp -d)}
mkdir -p "$WORK"

KERNEL=GEMM/K1
BUDGET=0.25

"$FSP" protect "$KERNEL" --budget "$BUDGET" \
    --metrics-out "$WORK/protect.prom" --json > "$WORK/protect.json"

python3 - "$WORK/protect.json" "$BUDGET" <<'EOF'
import json
import sys

report = json.load(open(sys.argv[1]))
budget = float(sys.argv[2])
p = report["protection"]

if not p["protectedThreads"]:
    raise SystemExit("planner selected no threads at budget %s" % budget)
if p["modeledCostInstrs"] > p["budgetInstrs"] + 1e-6:
    raise SystemExit("modeled cost %.1f exceeds budget %.1f"
                     % (p["modeledCostInstrs"], p["budgetInstrs"]))
if not p["verified"]:
    raise SystemExit("verification campaign did not run")
if p["sdcAfter"] >= p["sdcBefore"]:
    raise SystemExit("verified SDC %.4f did not drop below baseline %.4f"
                     % (p["sdcAfter"], p["sdcBefore"]))
if p["detectedFaults"] == 0:
    raise SystemExit("protected campaign detected no faults")

profile = report["protectedProfile"]
if profile["sdc"] != p["sdcAfter"]:
    raise SystemExit("protectedProfile.sdc %r != sdcAfter %r"
                     % (profile["sdc"], p["sdcAfter"]))

print("selected %d threads (%d group(s)), modeled cost %.1f%% of instrs"
      % (len(p["protectedThreads"]), len(p["selectedGroups"]),
         100 * p["modeledCostFraction"]))
print("verified SDC %.2f%% -> %.2f%% (%d faults detected)"
      % (100 * p["sdcBefore"], 100 * p["sdcAfter"], p["detectedFaults"]))
EOF
