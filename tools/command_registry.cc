/**
 * @file
 * Command registry lookup, generated help, and dispatch.
 */

#include "command_registry.hh"

#include <algorithm>
#include <cstddef>
#include <exception>

namespace fsp::tools {

const Command *
CommandRegistry::find(const std::string &name) const
{
    for (const Command &command : commands_) {
        if (command.name == name)
            return &command;
    }
    return nullptr;
}

void
CommandRegistry::printHelp(std::ostream &out) const
{
    out << "usage: " << tool_ << " <command> [options]\n\ncommands:\n";
    std::size_t width = 0;
    for (const Command &command : commands_)
        width = std::max(width, command.name.size());
    for (const Command &command : commands_) {
        out << "  " << command.name
            << std::string(width - command.name.size() + 2, ' ')
            << command.summary << "\n";
    }
    out << "\nrun `" << tool_
        << " <command> --help` for that command's options\n";
}

int
CommandRegistry::dispatch(int argc, char **argv, std::ostream &out,
                          std::ostream &err) const
{
    if (argc < 2) {
        printHelp(err);
        return 2;
    }
    const std::string name = argv[1];
    if (name == "--help" || name == "-h") {
        printHelp(out);
        return 0;
    }
    const Command *command = find(name);
    if (command == nullptr) {
        err << "unknown command '" << name << "'\n";
        printHelp(err);
        return 2;
    }
    try {
        return command->run(argc, argv);
    } catch (const std::exception &error) {
        err << tool_ << " " << name << ": " << error.what() << "\n";
        return 1;
    }
}

} // namespace fsp::tools
