/**
 * @file
 * Table-driven subcommand registry for the `fsp` front end.
 *
 * fsp used to dispatch on a chain of argv[1] string compares split
 * across two translation units (fsp.cc for the analysis commands,
 * fsp_service_cmds.cc guarded by an isServiceCommand() probe), with a
 * hand-maintained usage string listing the commands a third time.  The
 * registry replaces all of that: each command registers once with its
 * name and one-line summary, the top-level --help is generated from
 * the table, and dispatch is a lookup.  Every handler owns its full
 * argv and parses its own OptionTable (from index 2), so commands with
 * disjoint flag sets -- `serve` takes no kernel at all -- coexist
 * without a shared table rejecting each other's options.
 */

#ifndef FSP_TOOLS_COMMAND_REGISTRY_HH
#define FSP_TOOLS_COMMAND_REGISTRY_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace fsp::tools {

/** One subcommand: its name, help summary, and entry point. */
struct Command
{
    std::string name;    ///< "campaign"
    std::string summary; ///< one-liner for the generated help
    /** Full-argv handler; parses its own options from argv[2..]. */
    std::function<int(int argc, char **argv)> run;
};

/** The front end's command table. */
class CommandRegistry
{
  public:
    /** @param tool program name for the generated usage ("fsp"). */
    explicit CommandRegistry(std::string tool) : tool_(std::move(tool)) {}

    void add(Command command) { commands_.push_back(std::move(command)); }

    const Command *find(const std::string &name) const;

    const std::vector<Command> &commands() const { return commands_; }

    /** Generated top-level help: usage plus one line per command. */
    void printHelp(std::ostream &out) const;

    /**
     * Dispatch argv[1].  Handles the no-command, --help/-h (help to
     * @p out) and unknown-command cases itself; otherwise runs the
     * handler inside a catch-all that turns an escaped exception into
     * a one-line diagnostic and exit status 1.
     */
    int dispatch(int argc, char **argv, std::ostream &out,
                 std::ostream &err) const;

  private:
    std::string tool_;
    std::vector<Command> commands_;
};

/**
 * Register the service subcommands (serve, submit, merge, shutdown,
 * shard-worker).  Implemented in fsp_service_cmds.cc.
 */
void registerServiceCommands(CommandRegistry &registry);

} // namespace fsp::tools

#endif // FSP_TOOLS_COMMAND_REGISTRY_HH
