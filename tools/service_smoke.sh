#!/usr/bin/env bash
# End-to-end smoke of the campaign service: start `fsp serve`, submit a
# sharded GEMM campaign over TCP loopback (crash-injecting every
# worker's first attempt), wait for streamed completion, merge the
# shard journals with `fsp merge`, and diff the merged result against
# a single-process `fsp campaign` run -- the two must be bit-identical.
#
# usage: service_smoke.sh path/to/fsp [workdir]
set -euo pipefail

FSP=${1:?usage: service_smoke.sh path/to/fsp [workdir]}
WORK=${2:-$(mktemp -d)}
mkdir -p "$WORK"

KERNEL=GEMM/K1
SHARDS=4

"$FSP" serve --socket "$WORK/fsp.sock" --tcp --port-file "$WORK/port" \
    > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

for _ in $(seq 50); do
    [ -s "$WORK/port" ] && break
    sleep 0.1
done
PORT=$(cat "$WORK/port")
echo "daemon listening on 127.0.0.1:$PORT (unix: $WORK/fsp.sock)"

# Submit over loopback and stream until done.  --abort-after makes the
# first attempt of every shard worker die mid-shard, so completion
# proves the daemon's respawn + journal-resume recovery path.
"$FSP" submit "$KERNEL" --tcp-port "$PORT" \
    --journal-base "$WORK/shard" --shards "$SHARDS" --abort-after 40

"$FSP" merge "$KERNEL" --journal-base "$WORK/shard" --shards "$SHARDS" \
    --json > "$WORK/merged.json"

"$FSP" campaign "$KERNEL" --baseline 0 --json > "$WORK/single.json"

python3 - "$WORK/merged.json" "$WORK/single.json" <<'EOF'
import json
import sys

merged = json.load(open(sys.argv[1]))
single = json.load(open(sys.argv[2]))
for key in ("prunedEstimate", "sdc_anatomy"):
    if merged[key] != single[key]:
        raise SystemExit(
            "%s differs:\n  merged: %s\n  single: %s"
            % (key, merged[key], single[key]))
print("merged result is bit-identical to the single-process run")
EOF

# The metrics endpoint answers plain HTTP and shows the recovery.
python3 - "$PORT" <<'EOF'
import sys
import urllib.request

text = urllib.request.urlopen(
    "http://127.0.0.1:%s/metrics" % sys.argv[1], timeout=10).read().decode()
for needle in ("fsp_serve_jobs_completed_total 1",
               "fsp_serve_worker_restarts_total"):
    if needle not in text:
        raise SystemExit("metrics missing %r:\n%s" % (needle, text))
print("metrics endpoint OK")
EOF

"$FSP" shutdown --tcp-port "$PORT"
wait "$SERVE_PID"
echo "service smoke OK"
