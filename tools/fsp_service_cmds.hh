/**
 * @file
 * The service-facing `fsp` subcommands (serve, submit, merge,
 * shutdown, shard-worker).  They live in their own translation unit
 * and register themselves into the shared CommandRegistry
 * (command_registry.hh); each has its own option table, so `serve`
 * taking no kernel at all coexists with the analysis commands.
 */

#ifndef FSP_TOOLS_FSP_SERVICE_CMDS_HH
#define FSP_TOOLS_FSP_SERVICE_CMDS_HH

#include "command_registry.hh"

#endif // FSP_TOOLS_FSP_SERVICE_CMDS_HH
