/**
 * @file
 * The service-facing `fsp` subcommands (serve, submit, merge,
 * shutdown, shard-worker).  They live in their own translation unit
 * with their own option tables: the shared table in fsp.cc rejects
 * unknown flags, so these commands are dispatched on argv[1] before it
 * parses.
 */

#ifndef FSP_TOOLS_FSP_SERVICE_CMDS_HH
#define FSP_TOOLS_FSP_SERVICE_CMDS_HH

#include <string>

namespace fsp::tools {

/** True when @p command is one of the service subcommands. */
bool isServiceCommand(const std::string &command);

/** Run a service subcommand; returns its exit status. */
int runServiceCommand(const std::string &command, int argc, char **argv);

} // namespace fsp::tools

#endif // FSP_TOOLS_FSP_SERVICE_CMDS_HH
