/**
 * @file
 * `fsp` -- the command-line front end to the library.  Subcommands:
 *
 *   fsp list                         registered kernels
 *   fsp profile  <App/Kx> [opts]     fault-space enumeration (Eq. 1)
 *   fsp groups   <App/Kx> [opts]     CTA/thread grouping summary
 *   fsp disasm   <App/Kx> [opts]     kernel listing (disassembled)
 *   fsp loops    <App/Kx> [opts]     loop statistics (Table VII row)
 *   fsp prune    <App/Kx> [opts]     pruning stage counts (Fig. 10 row)
 *   fsp campaign <App/Kx> [opts]     pruned campaign vs baseline
 *
 * Common options:
 *   --paper            paper-scale geometry (default: small)
 *   --seed N           master seed (default 1)
 *   --baseline N       baseline runs for `campaign` (default 2000)
 *   --loop-iters N     sampled loop iterations (default 8)
 *   --bit-samples N    sampled bit positions (default 16)
 *   --pilots N         representatives per thread group (default 1)
 *   --workers N        campaign worker threads (default: hardware);
 *                      results are bit-identical at any worker count
 *   --no-slicing       force full-grid injection runs even when the
 *                      kernel's CTAs are independent (A/B validation);
 *                      outcomes are bit-identical either way
 *   --no-checkpoints   execute every injection run from instruction
 *                      zero instead of resuming from golden-run
 *                      checkpoints (A/B validation); outcomes are
 *                      bit-identical either way
 *   --json             machine-readable output (profile, prune and
 *                      campaign commands)
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "analysis/convergence.hh"
#include "apps/app.hh"
#include "pruning/loops.hh"
#include "sim/disasm.hh"
#include "util/json.hh"
#include "util/table.hh"

namespace {

using namespace fsp;

struct Options
{
    std::string command;
    std::string kernel;
    apps::Scale scale = apps::Scale::Small;
    std::uint64_t seed = 1;
    std::size_t baseline = 2000;
    bool json = false;
    pruning::PruningConfig pruning;
    faults::CampaignOptions campaign; // workers=0: hardware default
};

int
usage()
{
    std::cerr <<
        "usage: fsp <command> [kernel] [options]\n"
        "commands: list | profile | groups | disasm | loops | prune |"
        " campaign\n"
        "options:  --paper --seed N --baseline N --loop-iters N\n"
        "          --bit-samples N --pilots N --workers N --no-slicing\n"
        "          --no-checkpoints --json\n";
    return 2;
}

bool
parseArgs(int argc, char **argv, Options &opts)
{
    if (argc < 2)
        return false;
    opts.command = argv[1];
    int i = 2;
    if (i < argc && argv[i][0] != '-')
        opts.kernel = argv[i++];
    for (; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--paper") {
            opts.scale = apps::Scale::Paper;
        } else if (arg == "--seed") {
            const char *v = next();
            if (!v)
                return false;
            opts.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--baseline") {
            const char *v = next();
            if (!v)
                return false;
            opts.baseline = std::strtoull(v, nullptr, 10);
        } else if (arg == "--loop-iters") {
            const char *v = next();
            if (!v)
                return false;
            opts.pruning.loopIterations =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--bit-samples") {
            const char *v = next();
            if (!v)
                return false;
            opts.pruning.bitSamples =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--pilots") {
            const char *v = next();
            if (!v)
                return false;
            opts.pruning.repsPerGroup =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--workers") {
            const char *v = next();
            if (!v)
                return false;
            opts.campaign.workers =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--no-slicing") {
            opts.campaign.allowSlicing = false;
            opts.pruning.slicedProfiling = false;
        } else if (arg == "--no-checkpoints") {
            opts.campaign.allowCheckpoints = false;
            opts.pruning.checkpoints = false;
        } else if (arg == "--json") {
            opts.json = true;
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            return false;
        }
    }
    opts.pruning.seed = opts.seed;
    return true;
}

int
cmdList()
{
    TextTable table({"Kernel", "Suite", "Name"});
    for (const auto &spec : apps::allKernels())
        table.addRow({spec.fullName(), spec.suite, spec.kernelName});
    table.print(std::cout);
    return 0;
}

const apps::KernelSpec *
requireKernel(const Options &opts)
{
    if (opts.kernel.empty()) {
        std::cerr << "this command needs a kernel (try `fsp list`)\n";
        return nullptr;
    }
    const apps::KernelSpec *spec = apps::findKernel(opts.kernel);
    if (spec == nullptr)
        std::cerr << "unknown kernel '" << opts.kernel << "'\n";
    return spec;
}

/** Emit an outcome distribution as a named JSON object. */
void
writeProfile(JsonWriter &json, std::string_view key,
             const faults::OutcomeDist &dist)
{
    json.beginObject(key);
    json.field("runs", dist.runs());
    json.field("totalWeight", dist.total());
    json.field("masked", dist.fraction(faults::Outcome::Masked));
    json.field("sdc", dist.fraction(faults::Outcome::SDC));
    json.field("other", dist.fraction(faults::Outcome::Other));
    json.endObject();
}

int
cmdProfile(const Options &opts)
{
    const apps::KernelSpec *spec = requireKernel(opts);
    if (!spec)
        return 1;
    analysis::KernelAnalysis ka(*spec, opts.scale, opts.seed + 41);
    const auto &space = ka.space();
    if (opts.json) {
        JsonWriter json(std::cout);
        json.beginObject();
        json.field("kernel", spec->fullName());
        json.field("scale", apps::scaleName(opts.scale));
        json.field("threads", space.threadCount());
        json.field("dynInstrs", space.totalDynInstrs());
        json.field("faultSites", space.totalSites());
        json.endObject();
        return 0;
    }
    std::cout << spec->fullName() << " @ " << apps::scaleName(opts.scale)
              << "\n"
              << "  threads:      " << space.threadCount() << "\n"
              << "  dyn instrs:   " << fmtCount(space.totalDynInstrs())
              << "\n"
              << "  fault sites:  " << fmtCount(space.totalSites())
              << "  (" << fmtScientific(
                     static_cast<double>(space.totalSites()))
              << ")\n";
    return 0;
}

int
cmdGroups(const Options &opts)
{
    const apps::KernelSpec *spec = requireKernel(opts);
    if (!spec)
        return 1;
    analysis::KernelAnalysis ka(*spec, opts.scale, opts.seed + 41);
    Prng prng(opts.seed);
    auto grouping = pruning::pruneThreads(
        ka.space(), ka.executor().config().block.count(), prng,
        opts.pruning.repsPerGroup);

    TextTable table({"CTA group", "avg iCnt", "#CTAs", "thread group",
                     "iCnt", "#threads", "representative(s)"});
    for (std::size_t g = 0; g < grouping.ctaGroups.size(); ++g) {
        const auto &cg = grouping.ctaGroups[g];
        bool first = true;
        for (const auto &tg : cg.threadGroups) {
            std::string reps;
            for (std::uint64_t rep : tg.representatives) {
                if (!reps.empty())
                    reps += ", ";
                reps += std::to_string(rep);
            }
            table.addRow({first ? "C-" + std::to_string(g + 1) : "",
                          first ? fmtFixed(cg.avgICnt, 1) : "",
                          first ? std::to_string(cg.ctas.size()) : "",
                          "T-" + std::to_string(tg.iCnt),
                          std::to_string(tg.iCnt),
                          std::to_string(tg.threads.size()), reps});
            first = false;
        }
        table.addSeparator();
    }
    table.print(std::cout);
    return 0;
}

int
cmdDisasm(const Options &opts)
{
    const apps::KernelSpec *spec = requireKernel(opts);
    if (!spec)
        return 1;
    apps::KernelSetup setup = spec->setup(opts.scale, opts.seed + 41);
    std::cout << "// " << spec->fullName() << " (" << spec->kernelName
              << "), " << setup.program.size() << " instructions\n"
              << sim::disassembleProgram(setup.program);
    return 0;
}

int
cmdLoops(const Options &opts)
{
    const apps::KernelSpec *spec = requireKernel(opts);
    if (!spec)
        return 1;
    analysis::KernelAnalysis ka(*spec, opts.scale, opts.seed + 41);
    Prng prng(opts.seed);
    auto grouping = pruning::pruneThreads(
        ka.space(), ka.executor().config().block.count(), prng);
    auto plans = pruning::buildThreadPlans(ka.executor(),
                                           ka.setup().memory, grouping);
    const pruning::ThreadPlan *longest = &plans.front();
    for (const auto &plan : plans) {
        if (plan.trace.size() > longest->trace.size())
            longest = &plan;
    }
    auto loops = pruning::detectLoops(longest->trace, ka.program());
    auto stats = pruning::analyzeLoops(longest->trace, ka.program());
    std::cout << spec->fullName() << ": thread " << longest->thread
              << " (iCnt " << longest->trace.size() << ")\n"
              << "  loops:              " << loops.size() << "\n"
              << "  total iterations:   " << stats.loopIterations << "\n"
              << "  % instrs in loops:  "
              << fmtPercent(stats.loopInstrFraction(), 2) << "\n";
    for (const auto &loop : loops) {
        std::cout << "  loop @" << loop.headerStatic << ".."
                  << loop.branchStatic << ": "
                  << loop.iterations.size() << " iterations, "
                  << loop.dynInstrs() << " dyn instrs\n";
    }
    return 0;
}

int
cmdPrune(const Options &opts)
{
    const apps::KernelSpec *spec = requireKernel(opts);
    if (!spec)
        return 1;
    analysis::KernelAnalysis ka(*spec, opts.scale, opts.seed + 41);
    auto pruned = ka.prune(opts.pruning);
    const auto &c = pruned.counts;
    if (opts.json) {
        JsonWriter json(std::cout);
        json.beginObject();
        json.field("kernel", spec->fullName());
        json.field("scale", apps::scaleName(opts.scale));
        json.beginObject("stageCounts");
        json.field("exhaustive", c.exhaustive);
        json.field("afterThread", c.afterThread);
        json.field("afterInstruction", c.afterInstruction);
        json.field("afterLoop", c.afterLoop);
        json.field("afterBit", c.afterBit);
        json.endObject();
        json.field("representatives",
                   static_cast<std::uint64_t>(
                       pruned.grouping.representativeCount()));
        json.field("representedWeight", pruned.totalRepresentedWeight());
        json.endObject();
        return 0;
    }
    std::cout << spec->fullName() << " progressive pruning:\n"
              << "  exhaustive:         " << fmtCount(c.exhaustive)
              << "\n"
              << "  + thread-wise:      " << fmtCount(c.afterThread)
              << "  (" << pruned.grouping.representativeCount()
              << " representatives)\n"
              << "  + instruction-wise: " << fmtCount(c.afterInstruction)
              << "\n"
              << "  + loop-wise:        " << fmtCount(c.afterLoop) << "\n"
              << "  + bit-wise:         " << fmtCount(c.afterBit) << "\n"
              << "  represented weight: "
              << fmtFixed(pruned.totalRepresentedWeight(), 1) << "\n";
    return 0;
}

int
cmdCampaign(const Options &opts)
{
    const apps::KernelSpec *spec = requireKernel(opts);
    if (!spec)
        return 1;
    analysis::KernelAnalysis ka(*spec, opts.scale, opts.seed + 41);
    if (!opts.campaign.allowSlicing)
        ka.setSlicingEnabled(false);
    if (!opts.campaign.allowCheckpoints)
        ka.setCheckpointsEnabled(false);
    auto pruned = ka.prune(opts.pruning);
    if (!opts.json) {
        std::cout << spec->fullName() << "\n  engine: "
                  << ka.injector().slicingDescription() << ", "
                  << ka.injector().checkpointDescription() << "\n";
    }
    auto estimate = ka.runPrunedCampaign(pruned, opts.campaign);
    faults::CampaignResult baseline;
    if (opts.baseline > 0)
        baseline =
            ka.runBaseline(opts.baseline, opts.seed + 17, opts.campaign);
    const auto &stats = ka.parallelCampaign(opts.campaign).lastStats();

    if (opts.json) {
        JsonWriter json(std::cout);
        json.beginObject();
        json.field("kernel", spec->fullName());
        json.field("scale", apps::scaleName(opts.scale));
        json.field("seed", opts.seed);
        json.beginObject("engine");
        json.field("slicing", ka.injector().slicingDescription());
        json.field("checkpoints", ka.injector().checkpointDescription());
        json.field("slicingActive", ka.injector().slicingActive());
        json.field("checkpointsActive",
                   ka.injector().checkpointsActive());
        json.field("workers", static_cast<std::uint64_t>(stats.workers));
        json.endObject();
        writeProfile(json, "prunedEstimate", estimate);
        if (opts.baseline > 0)
            writeProfile(json, "randomBaseline", baseline.dist);
        json.beginObject("throughput");
        json.field("sites", stats.sites);
        json.field("chunks", stats.chunks);
        json.field("elapsedSeconds", stats.elapsedSeconds);
        json.field("sitesPerSecond", stats.sitesPerSecond);
        json.endObject();
        json.beginObject("injectionStats");
        faults::writeInjectionStats(json, stats.injection);
        json.endObject();
        json.endObject();
        return 0;
    }

    std::cout << "  pruned estimate (" << estimate.runs()
              << " runs): " << estimate.summary() << "\n";
    if (opts.baseline > 0) {
        std::cout << "  random baseline (" << baseline.runs
                  << " runs): " << baseline.dist.summary() << "\n";
    }
    std::cout << "  throughput: " << stats.summary() << "\n"
              << "  injection:  " << stats.injection.summary() << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseArgs(argc, argv, opts))
        return usage();

    if (opts.command == "list")
        return cmdList();
    if (opts.command == "profile")
        return cmdProfile(opts);
    if (opts.command == "groups")
        return cmdGroups(opts);
    if (opts.command == "disasm")
        return cmdDisasm(opts);
    if (opts.command == "loops")
        return cmdLoops(opts);
    if (opts.command == "prune")
        return cmdPrune(opts);
    if (opts.command == "campaign")
        return cmdCampaign(opts);
    std::cerr << "unknown command '" << opts.command << "'\n";
    return usage();
}
