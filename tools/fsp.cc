/**
 * @file
 * `fsp` -- the command-line front end to the library.
 *
 * Subcommands are registered in a table-driven CommandRegistry shared
 * with the service commands (fsp_service_cmds.cc); the top-level
 * --help is generated from that table, and each command parses its own
 * OptionTable.  The analysis commands accept the shared tool option
 * set (analysis/cli_options.hh); run `fsp <command> --help` for the
 * generated list.
 *
 * `fsp campaign ... --journal p.fspj` makes the pruned campaign
 * durable: re-running with `--resume` skips already-journaled sites
 * and still produces a bit-identical profile.  `fsp protect` plans a
 * partial thread protection scheme under an overhead budget and
 * verifies the achieved SDC reduction with a protected re-run.
 */

#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "analysis/cli_options.hh"
#include "analysis/observability.hh"
#include "analysis/protection_planner.hh"
#include "analysis/report.hh"
#include "apps/app.hh"
#include "pruning/loops.hh"
#include "sim/disasm.hh"
#include "sim/protection.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/table.hh"

#include "command_registry.hh"

namespace {

using namespace fsp;

/** Kernel-command argument bundle (positional kernel + shared flags). */
struct KernelOptions
{
    std::string kernel;
    analysis::CommonCliOptions common;
};

/**
 * Parse a kernel command's arguments: positional kernel, the shared
 * option set, plus any command-specific options @p extend registers.
 * Returns 0 on success, -1 when --help was printed, 2 on a parse
 * error.
 */
int
parseKernelCommand(const std::string &usage, int argc, char **argv,
                   KernelOptions &opts,
                   const std::function<void(OptionTable &)> &extend = {})
{
    OptionTable table;
    table.setUsage(usage);
    table.positional("kernel", "kernel name, e.g. GEMM/K1 (`fsp list`)",
                     [&opts](const std::string &arg) {
                         if (!opts.kernel.empty())
                             return false;
                         opts.kernel = arg;
                         return true;
                     });
    analysis::addCommonOptions(table, opts.common);
    if (extend)
        extend(table);
    switch (table.parse(argc, argv, 2, std::cerr)) {
      case OptionTable::Parse::Ok:
        break;
      case OptionTable::Parse::Help:
        return -1;
      case OptionTable::Parse::Error:
        return 2;
    }
    if (!analysis::finalizeCommonOptions(opts.common))
        return 2;
    return 0;
}

const apps::KernelSpec *
requireKernel(const KernelOptions &opts)
{
    if (opts.kernel.empty()) {
        std::cerr << "this command needs a kernel (try `fsp list`)\n";
        return nullptr;
    }
    const apps::KernelSpec *spec = apps::findKernel(opts.kernel);
    if (spec == nullptr)
        std::cerr << "unknown kernel '" << opts.kernel << "'\n";
    return spec;
}

/** The facade configuration the shared campaign flags describe. */
analysis::AnalysisConfig
analysisConfigFor(const analysis::CommonCliOptions &common,
                  analysis::Observability &obs)
{
    analysis::AnalysisConfig config;
    config.slicing = common.campaign.allowSlicing;
    config.checkpoints = common.campaign.allowCheckpoints;
    config.sectionCacheDir = common.cacheDir;
    config.execMetrics = &obs.exec;
    return config;
}

/** Honour --metrics-out: export the snapshot; false on I/O failure. */
bool
exportMetrics(const analysis::Observability &obs,
              const std::string &path)
{
    if (path.empty())
        return true;
    if (!obs.writePrometheusFile(path)) {
        std::cerr << "cannot write metrics snapshot to '" << path
                  << "'\n";
        return false;
    }
    return true;
}

int
cmdList(int, char **)
{
    TextTable table({"Kernel", "Suite", "Name"});
    for (const auto &spec : apps::allKernels())
        table.addRow({spec.fullName(), spec.suite, spec.kernelName});
    table.print(std::cout);
    return 0;
}

int
cmdModels(int, char **)
{
    TextTable table({"Model", "Description"});
    for (const std::string &name : faults::builtinFaultModels())
        table.addRow({name,
                      std::string(faults::faultModelDescription(name))});
    table.print(std::cout);
    std::cout << "\nselect with --fault-model name[:key=value,...], "
                 "e.g. --fault-model multi-bit:width=3\n";
    return 0;
}

int
cmdProfile(int argc, char **argv)
{
    KernelOptions opts;
    if (int rc = parseKernelCommand("fsp profile <App/Kx> [options]",
                                    argc, argv, opts))
        return rc < 0 ? 0 : rc;
    const apps::KernelSpec *spec = requireKernel(opts);
    if (!spec)
        return 1;
    const auto &common = opts.common;
    analysis::KernelAnalysis ka(*spec, common.scale, common.seed + 41);
    const auto &space = ka.space();
    if (common.json) {
        analysis::CampaignReport report;
        report.spec = spec;
        report.scale = common.scale;
        report.seed = common.seed;
        report.space = &space;
        analysis::writeCampaignReport(std::cout, report);
        return 0;
    }
    std::cout << spec->fullName() << " @ "
              << apps::scaleName(common.scale) << "\n"
              << "  threads:      " << space.threadCount() << "\n"
              << "  dyn instrs:   " << fmtCount(space.totalDynInstrs())
              << "\n"
              << "  fault sites:  " << fmtCount(space.totalSites())
              << "  (" << fmtScientific(
                     static_cast<double>(space.totalSites()))
              << ")\n";
    return 0;
}

int
cmdGroups(int argc, char **argv)
{
    KernelOptions opts;
    if (int rc = parseKernelCommand("fsp groups <App/Kx> [options]",
                                    argc, argv, opts))
        return rc < 0 ? 0 : rc;
    const apps::KernelSpec *spec = requireKernel(opts);
    if (!spec)
        return 1;
    const auto &common = opts.common;
    analysis::KernelAnalysis ka(*spec, common.scale, common.seed + 41);
    Prng prng(common.seed);
    auto grouping = pruning::pruneThreads(
        ka.space(), ka.executor().config().block.count(), prng,
        common.pruning.thread.repsPerGroup);

    TextTable table({"CTA group", "avg iCnt", "#CTAs", "thread group",
                     "iCnt", "#threads", "representative(s)"});
    for (std::size_t g = 0; g < grouping.ctaGroups.size(); ++g) {
        const auto &cg = grouping.ctaGroups[g];
        bool first = true;
        for (const auto &tg : cg.threadGroups) {
            std::string reps;
            for (std::uint64_t rep : tg.representatives) {
                if (!reps.empty())
                    reps += ", ";
                reps += std::to_string(rep);
            }
            table.addRow({first ? "C-" + std::to_string(g + 1) : "",
                          first ? fmtFixed(cg.avgICnt, 1) : "",
                          first ? std::to_string(cg.ctas.size()) : "",
                          "T-" + std::to_string(tg.iCnt),
                          std::to_string(tg.iCnt),
                          std::to_string(tg.threads.size()), reps});
            first = false;
        }
        table.addSeparator();
    }
    table.print(std::cout);
    return 0;
}

int
cmdDisasm(int argc, char **argv)
{
    KernelOptions opts;
    if (int rc = parseKernelCommand("fsp disasm <App/Kx> [options]",
                                    argc, argv, opts))
        return rc < 0 ? 0 : rc;
    const apps::KernelSpec *spec = requireKernel(opts);
    if (!spec)
        return 1;
    apps::KernelSetup setup =
        spec->setup(opts.common.scale, opts.common.seed + 41);
    std::cout << "// " << spec->fullName() << " (" << spec->kernelName
              << "), " << setup.program.size() << " instructions\n"
              << sim::disassembleProgram(setup.program);
    return 0;
}

int
cmdLoops(int argc, char **argv)
{
    KernelOptions opts;
    if (int rc = parseKernelCommand("fsp loops <App/Kx> [options]",
                                    argc, argv, opts))
        return rc < 0 ? 0 : rc;
    const apps::KernelSpec *spec = requireKernel(opts);
    if (!spec)
        return 1;
    const auto &common = opts.common;
    analysis::KernelAnalysis ka(*spec, common.scale, common.seed + 41);
    Prng prng(common.seed);
    auto grouping = pruning::pruneThreads(
        ka.space(), ka.executor().config().block.count(), prng);
    auto plans = pruning::buildThreadPlans(ka.executor(),
                                           ka.setup().memory, grouping);
    const pruning::ThreadPlan *longest = &plans.front();
    for (const auto &plan : plans) {
        if (plan.trace.size() > longest->trace.size())
            longest = &plan;
    }
    auto loops = pruning::detectLoops(longest->trace, ka.program());
    auto stats = pruning::analyzeLoops(longest->trace, ka.program());
    std::cout << spec->fullName() << ": thread " << longest->thread
              << " (iCnt " << longest->trace.size() << ")\n"
              << "  loops:              " << loops.size() << "\n"
              << "  total iterations:   " << stats.loopIterations << "\n"
              << "  % instrs in loops:  "
              << fmtPercent(stats.loopInstrFraction(), 2) << "\n";
    for (const auto &loop : loops) {
        std::cout << "  loop @" << loop.headerStatic << ".."
                  << loop.branchStatic << ": "
                  << loop.iterations.size() << " iterations, "
                  << loop.dynInstrs() << " dyn instrs\n";
    }
    return 0;
}

int
cmdPrune(int argc, char **argv)
{
    KernelOptions opts;
    if (int rc = parseKernelCommand("fsp prune <App/Kx> [options]",
                                    argc, argv, opts))
        return rc < 0 ? 0 : rc;
    const apps::KernelSpec *spec = requireKernel(opts);
    if (!spec)
        return 1;
    const auto &common = opts.common;
    analysis::Observability obs(common.progressEvery);
    analysis::KernelAnalysis ka(*spec, common.scale,
                                analysisConfigFor(common, obs),
                                common.seed + 41);
    auto pruned = ka.prune(common.pruning, &obs.registry);
    obs.finalize();
    if (!exportMetrics(obs, common.metricsOut))
        return 1;
    const auto &c = pruned.counts;
    if (common.json) {
        analysis::CampaignReport report;
        report.spec = spec;
        report.scale = common.scale;
        report.seed = common.seed;
        report.stageCounts = &pruned.counts;
        report.obs = &obs;
        report.extra = [&pruned](JsonWriter &json) {
            json.field("representatives",
                       static_cast<std::uint64_t>(
                           pruned.grouping.representativeCount()));
            json.field("representedWeight",
                       pruned.totalRepresentedWeight());
        };
        analysis::writeCampaignReport(std::cout, report);
        return 0;
    }
    std::cout << spec->fullName() << " progressive pruning:\n"
              << "  exhaustive:         " << fmtCount(c.exhaustive)
              << "\n"
              << "  + thread-wise:      " << fmtCount(c.afterThread)
              << "  (" << pruned.grouping.representativeCount()
              << " representatives)\n"
              << "  + instruction-wise: " << fmtCount(c.afterInstruction)
              << "\n"
              << "  + loop-wise:        " << fmtCount(c.afterLoop) << "\n"
              << "  + bit-wise:         " << fmtCount(c.afterBit) << "\n"
              << "  represented weight: "
              << fmtFixed(pruned.totalRepresentedWeight(), 1) << "\n";
    return 0;
}

int
cmdCampaign(int argc, char **argv)
{
    KernelOptions opts;
    if (int rc = parseKernelCommand("fsp campaign <App/Kx> [options]",
                                    argc, argv, opts))
        return rc < 0 ? 0 : rc;
    const apps::KernelSpec *spec = requireKernel(opts);
    if (!spec)
        return 1;
    const auto &common = opts.common;
    analysis::Observability obs(common.progressEvery);
    analysis::KernelAnalysis ka(*spec, common.scale,
                                analysisConfigFor(common, obs),
                                common.seed + 41);
    auto pruned = ka.prune(common.pruning, &obs.registry);
    if (!common.json) {
        std::cout << spec->fullName() << "\n  engine: "
                  << ka.injector().slicingDescription() << ", "
                  << ka.injector().checkpointDescription() << "\n"
                  << "  fault model: "
                  << common.campaign.faultModelIdentity() << "\n";
    }

    // The journal (when requested) records the *pruned* campaign; its
    // header hash binds the weighted site list, kernel/pruning config
    // and seed, so only that campaign may write it.
    faults::CampaignOptions pruned_options = common.campaign;
    pruned_options.observer = obs.observer();
    if (!pruned_options.journalPath.empty())
        pruned_options.journalKey =
            analysis::campaignJournalKey(*spec, common.scale, common);
    faults::CampaignResult estimated;
    try {
        estimated = ka.runPrunedCampaignDetailed(pruned, pruned_options);
    } catch (const faults::JournalError &error) {
        std::cerr << "journal error: " << error.what() << "\n";
        return 1;
    }
    const faults::OutcomeDist &estimate = estimated.dist;
    // Copy the stats now: the journal-less baseline below configures a
    // different engine, which evicts this one from the facade's cache.
    faults::CampaignStats stats =
        ka.campaignEngine(pruned_options).lastStats();

    faults::CampaignOptions baseline_options = common.campaign;
    baseline_options.observer = obs.observer();
    baseline_options.journalPath.clear();
    baseline_options.resume = false;
    faults::CampaignResult baseline;
    if (common.baseline > 0)
        baseline = ka.runBaseline(common.baseline, common.seed + 17,
                                  baseline_options);

    estimated.anatomy.exportMetrics(obs.registry);
    obs.finalize();
    if (!exportMetrics(obs, common.metricsOut))
        return 1;

    if (common.json) {
        analysis::CampaignReport report;
        report.spec = spec;
        report.scale = common.scale;
        report.seed = common.seed;
        report.analysis = &ka;
        report.faultModel = common.campaign.faultModelIdentity();
        report.estimate = &estimated;
        report.baseline = common.baseline > 0 ? &baseline : nullptr;
        report.stats = &stats;
        report.obs = &obs;
        analysis::writeCampaignReport(std::cout, report);
        return 0;
    }

    std::cout << "  pruned estimate (" << estimate.runs()
              << " runs): " << estimate.summary() << "\n";
    if (estimated.anatomy.sdcRuns() > 0)
        std::cout << "  " << estimated.anatomy.summary() << "\n";
    if (common.baseline > 0) {
        std::cout << "  random baseline (" << baseline.runs
                  << " runs): " << baseline.dist.summary() << "\n";
    }
    std::cout << "  throughput: " << stats.summary() << "\n"
              << "  injection:  " << stats.injection.summary() << "\n";
    return 0;
}

int
cmdProtect(int argc, char **argv)
{
    KernelOptions opts;
    analysis::ProtectionPlannerConfig planner_config;
    bool no_verify = false;
    int rc = parseKernelCommand(
        "fsp protect <App/Kx> [--budget F] [--scheme NAME] [options]",
        argc, argv, opts, [&](OptionTable &table) {
            table.option(
                "--budget", "F",
                "overhead budget as a fraction of the kernel's total "
                "dynamic instructions (default 0.25)",
                [&planner_config](const std::string &arg) {
                    char *end = nullptr;
                    double value = std::strtod(arg.c_str(), &end);
                    if (end == arg.c_str() || *end != '\0' ||
                        value < 0.0)
                        return false;
                    planner_config.budget = value;
                    return true;
                });
            table.option(
                "--scheme", "NAME",
                "protection scheme: dup (duplicate-and-compare) | "
                "recompute (default dup)",
                [&planner_config](const std::string &arg) {
                    if (arg == "dup" || arg == "duplicate-compare") {
                        planner_config.scheme =
                            sim::ProtectionScheme::DuplicateCompare;
                        return true;
                    }
                    if (arg == "recompute") {
                        planner_config.scheme =
                            sim::ProtectionScheme::Recompute;
                        return true;
                    }
                    return false;
                });
            table.flag("--no-verify",
                       "skip the protected verification campaign "
                       "(report modeled numbers only)",
                       no_verify);
        });
    if (rc)
        return rc < 0 ? 0 : rc;
    const apps::KernelSpec *spec = requireKernel(opts);
    if (!spec)
        return 1;
    const auto &common = opts.common;
    analysis::Observability obs(common.progressEvery);
    analysis::KernelAnalysis ka(*spec, common.scale,
                                analysisConfigFor(common, obs),
                                common.seed + 41);
    auto pruned = ka.prune(common.pruning, &obs.registry);
    if (!common.json) {
        std::cout << spec->fullName() << "\n  engine: "
                  << ka.injector().slicingDescription() << ", "
                  << ka.injector().checkpointDescription() << "\n"
                  << "  scheme: "
                  << sim::protectionSchemeName(planner_config.scheme)
                  << ", budget "
                  << fmtPercent(planner_config.budget, 1) << "\n";
    }

    faults::CampaignOptions options = common.campaign;
    options.observer = obs.observer();
    if (!options.journalPath.empty())
        options.journalKey =
            analysis::campaignJournalKey(*spec, common.scale, common);

    planner_config.verify = !no_verify;
    planner_config.metrics = &obs.registry;
    analysis::ProtectionPlanner planner(ka, planner_config);
    analysis::ProtectionOutcome outcome;
    try {
        outcome = planner.plan(pruned, options);
    } catch (const faults::JournalError &error) {
        std::cerr << "journal error: " << error.what() << "\n";
        return 1;
    }

    outcome.before.anatomy.exportMetrics(obs.registry);
    obs.finalize();
    if (!exportMetrics(obs, common.metricsOut))
        return 1;

    if (common.json) {
        analysis::CampaignReport report;
        report.spec = spec;
        report.scale = common.scale;
        report.seed = common.seed;
        report.analysis = &ka;
        report.faultModel = common.campaign.faultModelIdentity();
        report.obs = &obs;
        report.extra = [&outcome](JsonWriter &json) {
            analysis::writeProtectionReport(json, outcome);
        };
        analysis::writeCampaignReport(std::cout, report);
        return 0;
    }

    std::cout << "  unprotected (" << outcome.before.dist.runs()
              << " runs): " << outcome.before.dist.summary() << "\n"
              << "  selected: " << outcome.selected.size() << " of "
              << outcome.candidateCount << " candidate groups, "
              << (outcome.plan ? outcome.plan->protectedThreadCount()
                               : 0)
              << " threads, modeled cost "
              << fmtPercent(outcome.totalInstrs > 0.0
                                ? outcome.modeledCost /
                                      outcome.totalInstrs
                                : 0.0,
                            1)
              << " of dyn instrs (budget "
              << fmtPercent(outcome.budgetFraction, 1) << ")\n";
    if (outcome.verified) {
        std::cout << "  protected   (" << outcome.after.dist.runs()
                  << " runs): " << outcome.after.dist.summary() << "\n"
                  << "  SDC " << fmtFixed(outcome.sdcBefore, 4) << " -> "
                  << fmtFixed(outcome.sdcAfter, 4) << " (achieved drop "
                  << fmtFixed(outcome.sdcBefore - outcome.sdcAfter, 4)
                  << ", " << outcome.after.injection.detectedFaults
                  << " faults detected)\n";
    } else {
        std::cout << "  verification skipped; modeled SDC coverage "
                  << fmtFixed(outcome.modeledSdcCovered, 1)
                  << " weight\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    tools::CommandRegistry registry("fsp");
    registry.add({"list", "registered kernels", cmdList});
    registry.add({"models", "built-in fault models", cmdModels});
    registry.add(
        {"profile", "fault-space enumeration (Eq. 1)", cmdProfile});
    registry.add({"groups", "CTA/thread grouping summary", cmdGroups});
    registry.add({"disasm", "kernel listing (disassembled)", cmdDisasm});
    registry.add({"loops", "loop statistics (Table VII row)", cmdLoops});
    registry.add(
        {"prune", "pruning stage counts (Fig. 10 row)", cmdPrune});
    registry.add(
        {"campaign", "pruned campaign vs baseline", cmdCampaign});
    registry.add({"protect",
                  "plan + verify partial thread protection under a "
                  "budget",
                  cmdProtect});
    tools::registerServiceCommands(registry);
    return registry.dispatch(argc, argv, std::cout, std::cerr);
}
