/**
 * @file
 * `fsp` -- the command-line front end to the library.  Subcommands:
 *
 *   fsp list                         registered kernels
 *   fsp models                       built-in fault models
 *   fsp profile  <App/Kx> [opts]     fault-space enumeration (Eq. 1)
 *   fsp groups   <App/Kx> [opts]     CTA/thread grouping summary
 *   fsp disasm   <App/Kx> [opts]     kernel listing (disassembled)
 *   fsp loops    <App/Kx> [opts]     loop statistics (Table VII row)
 *   fsp prune    <App/Kx> [opts]     pruning stage counts (Fig. 10 row)
 *   fsp campaign <App/Kx> [opts]     pruned campaign vs baseline
 *   fsp serve    [opts]              campaign service daemon
 *   fsp submit   <App/Kx> [opts]     submit a campaign to a daemon
 *   fsp merge    <App/Kx> [opts]     merge shard journals (fsp_service_cmds.cc)
 *   fsp shutdown [opts]              stop a daemon
 *
 * Options are the shared tool set (analysis/cli_options.hh); run
 * `fsp --help` (or any command with --help) for the generated list.
 * `fsp campaign ... --journal p.fspj` makes the pruned campaign
 * durable: re-running with `--resume` skips already-journaled sites
 * and still produces a bit-identical profile.
 */

#include <iostream>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "analysis/cli_options.hh"
#include "analysis/convergence.hh"
#include "analysis/observability.hh"
#include "apps/app.hh"
#include "pruning/loops.hh"
#include "sim/disasm.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/table.hh"

#include "fsp_service_cmds.hh"

namespace {

using namespace fsp;

struct Options
{
    std::string command;
    std::string kernel;
    analysis::CommonCliOptions common;
};

void
buildTable(OptionTable &table, Options &opts)
{
    table.setUsage("fsp <command> [kernel] [options]\n"
                   "commands: list | models | profile | groups | disasm |"
                   " loops | prune | campaign |\n"
                   "          serve | submit | merge | shutdown"
                   "  (each service command has its own --help)");
    table.positional("kernel", "kernel name, e.g. GEMM/K1 (`fsp list`)",
                     [&opts](const std::string &arg) {
                         if (!opts.kernel.empty())
                             return false;
                         opts.kernel = arg;
                         return true;
                     });
    analysis::addCommonOptions(table, opts.common);
}

int
cmdList()
{
    TextTable table({"Kernel", "Suite", "Name"});
    for (const auto &spec : apps::allKernels())
        table.addRow({spec.fullName(), spec.suite, spec.kernelName});
    table.print(std::cout);
    return 0;
}

int
cmdModels()
{
    TextTable table({"Model", "Description"});
    for (const std::string &name : faults::builtinFaultModels())
        table.addRow({name,
                      std::string(faults::faultModelDescription(name))});
    table.print(std::cout);
    std::cout << "\nselect with --fault-model name[:key=value,...], "
                 "e.g. --fault-model multi-bit:width=3\n";
    return 0;
}

const apps::KernelSpec *
requireKernel(const Options &opts)
{
    if (opts.kernel.empty()) {
        std::cerr << "this command needs a kernel (try `fsp list`)\n";
        return nullptr;
    }
    const apps::KernelSpec *spec = apps::findKernel(opts.kernel);
    if (spec == nullptr)
        std::cerr << "unknown kernel '" << opts.kernel << "'\n";
    return spec;
}

/** Honour --metrics-out: export the snapshot; false on I/O failure. */
bool
exportMetrics(const analysis::Observability &obs,
              const std::string &path)
{
    if (path.empty())
        return true;
    if (!obs.writePrometheusFile(path)) {
        std::cerr << "cannot write metrics snapshot to '" << path
                  << "'\n";
        return false;
    }
    return true;
}

/** Emit an outcome distribution as a named JSON object. */
void
writeProfile(JsonWriter &json, std::string_view key,
             const faults::OutcomeDist &dist)
{
    json.beginObject(key);
    json.field("runs", dist.runs());
    json.field("totalWeight", dist.total());
    json.field("masked", dist.fraction(faults::Outcome::Masked));
    json.field("sdc", dist.fraction(faults::Outcome::SDC));
    json.field("other", dist.fraction(faults::Outcome::Other));
    json.endObject();
}

int
cmdProfile(const Options &opts)
{
    const apps::KernelSpec *spec = requireKernel(opts);
    if (!spec)
        return 1;
    const auto &common = opts.common;
    analysis::KernelAnalysis ka(*spec, common.scale, common.seed + 41);
    const auto &space = ka.space();
    if (common.json) {
        JsonWriter json(std::cout);
        json.beginObject();
        json.field("kernel", spec->fullName());
        json.field("scale", apps::scaleName(common.scale));
        json.field("threads", space.threadCount());
        json.field("dynInstrs", space.totalDynInstrs());
        json.field("faultSites", space.totalSites());
        json.endObject();
        return 0;
    }
    std::cout << spec->fullName() << " @ "
              << apps::scaleName(common.scale) << "\n"
              << "  threads:      " << space.threadCount() << "\n"
              << "  dyn instrs:   " << fmtCount(space.totalDynInstrs())
              << "\n"
              << "  fault sites:  " << fmtCount(space.totalSites())
              << "  (" << fmtScientific(
                     static_cast<double>(space.totalSites()))
              << ")\n";
    return 0;
}

int
cmdGroups(const Options &opts)
{
    const apps::KernelSpec *spec = requireKernel(opts);
    if (!spec)
        return 1;
    const auto &common = opts.common;
    analysis::KernelAnalysis ka(*spec, common.scale, common.seed + 41);
    Prng prng(common.seed);
    auto grouping = pruning::pruneThreads(
        ka.space(), ka.executor().config().block.count(), prng,
        common.pruning.thread.repsPerGroup);

    TextTable table({"CTA group", "avg iCnt", "#CTAs", "thread group",
                     "iCnt", "#threads", "representative(s)"});
    for (std::size_t g = 0; g < grouping.ctaGroups.size(); ++g) {
        const auto &cg = grouping.ctaGroups[g];
        bool first = true;
        for (const auto &tg : cg.threadGroups) {
            std::string reps;
            for (std::uint64_t rep : tg.representatives) {
                if (!reps.empty())
                    reps += ", ";
                reps += std::to_string(rep);
            }
            table.addRow({first ? "C-" + std::to_string(g + 1) : "",
                          first ? fmtFixed(cg.avgICnt, 1) : "",
                          first ? std::to_string(cg.ctas.size()) : "",
                          "T-" + std::to_string(tg.iCnt),
                          std::to_string(tg.iCnt),
                          std::to_string(tg.threads.size()), reps});
            first = false;
        }
        table.addSeparator();
    }
    table.print(std::cout);
    return 0;
}

int
cmdDisasm(const Options &opts)
{
    const apps::KernelSpec *spec = requireKernel(opts);
    if (!spec)
        return 1;
    apps::KernelSetup setup =
        spec->setup(opts.common.scale, opts.common.seed + 41);
    std::cout << "// " << spec->fullName() << " (" << spec->kernelName
              << "), " << setup.program.size() << " instructions\n"
              << sim::disassembleProgram(setup.program);
    return 0;
}

int
cmdLoops(const Options &opts)
{
    const apps::KernelSpec *spec = requireKernel(opts);
    if (!spec)
        return 1;
    const auto &common = opts.common;
    analysis::KernelAnalysis ka(*spec, common.scale, common.seed + 41);
    Prng prng(common.seed);
    auto grouping = pruning::pruneThreads(
        ka.space(), ka.executor().config().block.count(), prng);
    auto plans = pruning::buildThreadPlans(ka.executor(),
                                           ka.setup().memory, grouping);
    const pruning::ThreadPlan *longest = &plans.front();
    for (const auto &plan : plans) {
        if (plan.trace.size() > longest->trace.size())
            longest = &plan;
    }
    auto loops = pruning::detectLoops(longest->trace, ka.program());
    auto stats = pruning::analyzeLoops(longest->trace, ka.program());
    std::cout << spec->fullName() << ": thread " << longest->thread
              << " (iCnt " << longest->trace.size() << ")\n"
              << "  loops:              " << loops.size() << "\n"
              << "  total iterations:   " << stats.loopIterations << "\n"
              << "  % instrs in loops:  "
              << fmtPercent(stats.loopInstrFraction(), 2) << "\n";
    for (const auto &loop : loops) {
        std::cout << "  loop @" << loop.headerStatic << ".."
                  << loop.branchStatic << ": "
                  << loop.iterations.size() << " iterations, "
                  << loop.dynInstrs() << " dyn instrs\n";
    }
    return 0;
}

int
cmdPrune(const Options &opts)
{
    const apps::KernelSpec *spec = requireKernel(opts);
    if (!spec)
        return 1;
    const auto &common = opts.common;
    analysis::KernelAnalysis ka(*spec, common.scale, common.seed + 41);
    analysis::Observability obs(common.progressEvery);
    ka.attachExecMetrics(&obs.exec);
    auto pruned = ka.prune(common.pruning, &obs.registry);
    obs.finalize();
    if (!exportMetrics(obs, common.metricsOut))
        return 1;
    const auto &c = pruned.counts;
    if (common.json) {
        JsonWriter json(std::cout);
        json.beginObject();
        json.field("kernel", spec->fullName());
        json.field("scale", apps::scaleName(common.scale));
        json.beginObject("stageCounts");
        json.field("exhaustive", c.exhaustive);
        json.field("afterThread", c.afterThread);
        json.field("afterInstruction", c.afterInstruction);
        json.field("afterLoop", c.afterLoop);
        json.field("afterBit", c.afterBit);
        json.endObject();
        json.field("representatives",
                   static_cast<std::uint64_t>(
                       pruned.grouping.representativeCount()));
        json.field("representedWeight", pruned.totalRepresentedWeight());
        obs.writeJsonSnapshot(json);
        json.endObject();
        return 0;
    }
    std::cout << spec->fullName() << " progressive pruning:\n"
              << "  exhaustive:         " << fmtCount(c.exhaustive)
              << "\n"
              << "  + thread-wise:      " << fmtCount(c.afterThread)
              << "  (" << pruned.grouping.representativeCount()
              << " representatives)\n"
              << "  + instruction-wise: " << fmtCount(c.afterInstruction)
              << "\n"
              << "  + loop-wise:        " << fmtCount(c.afterLoop) << "\n"
              << "  + bit-wise:         " << fmtCount(c.afterBit) << "\n"
              << "  represented weight: "
              << fmtFixed(pruned.totalRepresentedWeight(), 1) << "\n";
    return 0;
}

int
cmdCampaign(const Options &opts)
{
    const apps::KernelSpec *spec = requireKernel(opts);
    if (!spec)
        return 1;
    const auto &common = opts.common;
    analysis::KernelAnalysis ka(*spec, common.scale, common.seed + 41);
    analysis::Observability obs(common.progressEvery);
    ka.attachExecMetrics(&obs.exec);
    if (!common.campaign.allowSlicing)
        ka.setSlicingEnabled(false);
    if (!common.campaign.allowCheckpoints)
        ka.setCheckpointsEnabled(false);
    auto pruned = ka.prune(common.pruning, &obs.registry);
    if (!common.json) {
        std::cout << spec->fullName() << "\n  engine: "
                  << ka.injector().slicingDescription() << ", "
                  << ka.injector().checkpointDescription() << "\n"
                  << "  fault model: "
                  << common.campaign.faultModelIdentity() << "\n";
    }

    // The journal (when requested) records the *pruned* campaign; its
    // header hash binds the weighted site list, kernel/pruning config
    // and seed, so only that campaign may write it.
    faults::CampaignOptions pruned_options = common.campaign;
    pruned_options.observer = obs.observer();
    if (!pruned_options.journalPath.empty())
        pruned_options.journalKey =
            analysis::campaignJournalKey(*spec, common.scale, common);
    // --cache: the facade builds the section index for the pruned
    // site list and the engine replays unchanged sections' outcomes.
    if (!common.cacheDir.empty())
        ka.setSectionCacheDir(common.cacheDir);
    faults::CampaignResult estimated;
    try {
        estimated = ka.runPrunedCampaignDetailed(pruned, pruned_options);
    } catch (const faults::JournalError &error) {
        std::cerr << "journal error: " << error.what() << "\n";
        return 1;
    }
    const faults::OutcomeDist &estimate = estimated.dist;
    // Copy the stats now: the journal-less baseline below configures a
    // different engine, which evicts this one from the facade's cache.
    faults::CampaignStats stats =
        ka.campaignEngine(pruned_options).lastStats();

    faults::CampaignOptions baseline_options = common.campaign;
    baseline_options.observer = obs.observer();
    baseline_options.journalPath.clear();
    baseline_options.resume = false;
    faults::CampaignResult baseline;
    if (common.baseline > 0)
        baseline = ka.runBaseline(common.baseline, common.seed + 17,
                                  baseline_options);

    estimated.anatomy.exportMetrics(obs.registry);
    obs.finalize();
    if (!exportMetrics(obs, common.metricsOut))
        return 1;

    if (common.json) {
        JsonWriter json(std::cout);
        json.beginObject();
        json.field("kernel", spec->fullName());
        json.field("scale", apps::scaleName(common.scale));
        json.field("seed", common.seed);
        json.beginObject("engine");
        json.field("slicing", ka.injector().slicingDescription());
        json.field("checkpoints", ka.injector().checkpointDescription());
        json.field("slicingActive", ka.injector().slicingActive());
        json.field("checkpointsActive",
                   ka.injector().checkpointsActive());
        json.field("faultModel", common.campaign.faultModelIdentity());
        json.field("workers", static_cast<std::uint64_t>(stats.workers));
        json.endObject();
        writeProfile(json, "prunedEstimate", estimate);
        if (common.baseline > 0)
            writeProfile(json, "randomBaseline", baseline.dist);
        estimated.anatomy.writeJson(json);
        json.beginObject("campaignStats");
        faults::writeCampaignStats(json, stats);
        json.endObject();
        obs.writeJsonSnapshot(json);
        json.endObject();
        return 0;
    }

    std::cout << "  pruned estimate (" << estimate.runs()
              << " runs): " << estimate.summary() << "\n";
    if (estimated.anatomy.sdcRuns() > 0)
        std::cout << "  " << estimated.anatomy.summary() << "\n";
    if (common.baseline > 0) {
        std::cout << "  random baseline (" << baseline.runs
                  << " runs): " << baseline.dist.summary() << "\n";
    }
    std::cout << "  throughput: " << stats.summary() << "\n"
              << "  injection:  " << stats.injection.summary() << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    OptionTable table;
    buildTable(table, opts);

    if (argc < 2) {
        table.printHelp(std::cerr);
        return 2;
    }
    opts.command = argv[1];
    if (opts.command == "--help" || opts.command == "-h") {
        table.printHelp(std::cout);
        return 0;
    }
    // The service commands carry flags the shared table doesn't know
    // (and `serve` takes no kernel at all): dispatch them before the
    // shared parse, each with its own table.
    if (tools::isServiceCommand(opts.command))
        return tools::runServiceCommand(opts.command, argc, argv);
    switch (table.parse(argc, argv, 2, std::cerr)) {
      case OptionTable::Parse::Ok:
        break;
      case OptionTable::Parse::Help:
        return 0;
      case OptionTable::Parse::Error:
        return 2;
    }
    if (!analysis::finalizeCommonOptions(opts.common))
        return 2;

    if (opts.command == "list")
        return cmdList();
    if (opts.command == "models")
        return cmdModels();
    if (opts.command == "profile")
        return cmdProfile(opts);
    if (opts.command == "groups")
        return cmdGroups(opts);
    if (opts.command == "disasm")
        return cmdDisasm(opts);
    if (opts.command == "loops")
        return cmdLoops(opts);
    if (opts.command == "prune")
        return cmdPrune(opts);
    if (opts.command == "campaign")
        return cmdCampaign(opts);
    std::cerr << "unknown command '" << opts.command << "'\n";
    table.printHelp(std::cerr);
    return 2;
}
