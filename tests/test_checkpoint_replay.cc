/**
 * @file
 * Equivalence and behaviour tests for the resumable executor core and
 * checkpointed temporal replay.
 *
 * The contract mirrors the sliced engine's: checkpoints are a pure
 * optimisation.  For every registered kernel, classifying the same
 * site list with golden-run checkpoints used must produce outcome
 * distributions bit-identical to from-start execution -- serially and
 * through the parallel campaign engine at workers {2, 4, 8}, including
 * crash/hang sites and sites whose sliced attempt aborts on a hazard.
 * Additional tests pin the stepping engine (watermark-stepped CTAs
 * finish bit-identical to one-shot runs), CheckpointStore::find()
 * semantics, and the A/B switches at every layer.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/analyzer.hh"
#include "apps/app.hh"
#include "reference_campaign.hh"
#include "faults/checkpoint.hh"
#include "faults/fault_space.hh"
#include "faults/injector.hh"
#include "faults/campaign_engine.hh"
#include "ptx/assembler.hh"
#include "sim/executor.hh"
#include "util/logging.hh"
#include "util/prng.hh"

namespace fsp {
namespace {

using namespace faults;

/** Exact (bit-identical) distribution comparison. */
void
expectSameDist(const OutcomeDist &a, const OutcomeDist &b)
{
    EXPECT_EQ(a.runs(), b.runs());
    for (Outcome o : {Outcome::Masked, Outcome::SDC, Outcome::Other,
                      Outcome::Invalid})
        EXPECT_EQ(a.weightOf(o), b.weightOf(o)) << outcomeName(o);
}

TEST(SteppingEngine, WatermarkSteppingMatchesOneShotRun)
{
    // Stepping a CTA to successive small watermarks and resuming must
    // retire it with memory and per-thread instruction counts
    // bit-identical to a one-shot run -- including kernels with
    // barriers, where a watermark can land mid barrier phase.
    for (const char *name : {"GEMM/K1", "HotSpot/K1", "PathFinder/K1"}) {
        SCOPED_TRACE(name);
        const apps::KernelSpec *spec = apps::findKernel(name);
        ASSERT_NE(spec, nullptr);
        apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
        sim::Executor executor(setup.program, setup.launch);

        sim::GlobalMemory oneshot = setup.memory;
        sim::TraceOptions opts;
        opts.perThreadProfiles = true;
        sim::RunResult full = executor.run(oneshot, &opts);
        ASSERT_EQ(full.status, sim::RunStatus::Completed);

        sim::GlobalMemory stepped = setup.memory;
        const std::uint64_t ctas = executor.config().grid.count();
        const std::uint64_t block = executor.config().block.count();
        for (std::uint64_t cta = 0; cta < ctas; ++cta) {
            sim::MachineState ms = executor.initialCtaState(cta);
            sim::CtaStepStatus status;
            do {
                status = executor.stepCta(ms, stepped,
                                          ms.executedDynInstrs + 64);
                ASSERT_TRUE(status == sim::CtaStepStatus::Watermark ||
                            status == sim::CtaStepStatus::Retired);
            } while (status != sim::CtaStepStatus::Retired);
            for (std::uint64_t t = 0; t < block; ++t) {
                EXPECT_EQ(ms.icnt(t),
                          full.trace.profiles[cta * block + t].iCnt)
                    << "cta " << cta << " thread " << t;
            }
        }
        EXPECT_EQ(stepped.snapshot(sim::GlobalMemory::kBaseAddr,
                                   stepped.allocatedBytes()),
                  oneshot.snapshot(sim::GlobalMemory::kBaseAddr,
                                   oneshot.allocatedBytes()));
    }
}

TEST(SteppingEngine, WatermarkStopsExactlyAtCount)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    sim::Executor executor(setup.program, setup.launch);
    sim::GlobalMemory scratch = setup.memory;

    sim::MachineState ms = executor.initialCtaState(0);
    EXPECT_EQ(executor.stepCta(ms, scratch, 10),
              sim::CtaStepStatus::Watermark);
    EXPECT_EQ(ms.executedDynInstrs, 10u);

    // A watermark at or below the current count is an immediate stop.
    EXPECT_EQ(executor.stepCta(ms, scratch, 10),
              sim::CtaStepStatus::Watermark);
    EXPECT_EQ(ms.executedDynInstrs, 10u);

    // Resuming from a *copy* (serialization round-trip) retires the
    // CTA just the same.
    sim::MachineState copy = ms;
    EXPECT_EQ(executor.stepCta(copy, scratch, sim::kNoWatermark),
              sim::CtaStepStatus::Retired);
    EXPECT_GT(copy.executedDynInstrs, 10u);
}

TEST(CheckpointStore, FindReturnsLatestUsableCheckpoint)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    Injector injector(setup.program, setup.launch, setup.memory,
                      setup.outputs);
    const CheckpointStore *store = injector.checkpointStore();
    ASSERT_NE(store, nullptr);
    ASSERT_FALSE(store->empty());
    EXPECT_EQ(store->ctaCount(), injector.executor().config().grid.count());
    EXPECT_GT(store->byteSize(), 0u);

    // GEMM has no barriers, so each thread runs its whole slice in one
    // scheduling pass: the first thread of a CTA has already finished
    // at every capture point and can never resume from one...
    const std::uint64_t first_icnt = injector.goldenICnt(0);
    EXPECT_EQ(store->find(0, 0, first_icnt - 1), nullptr);

    // ...while the last-scheduled thread trails every capture point.
    // A usable checkpoint never places the fault thread beyond the
    // fault's dynamic index, and later indices never map to earlier
    // capture points.
    const std::uint64_t lt =
        injector.executor().config().block.count() - 1;
    const std::uint64_t icnt = injector.goldenICnt(lt);
    std::uint64_t last = 0;
    bool found = false;
    for (std::uint64_t dyn = 0; dyn < icnt; dyn += 7) {
        const CtaCheckpoint *cp = store->find(0, lt, dyn);
        if (cp == nullptr)
            continue;
        found = true;
        EXPECT_LE(cp->state.icntOf(lt), dyn);
        EXPECT_GE(cp->ctaDynInstrs, last);
        last = cp->ctaDynInstrs;
    }
    EXPECT_TRUE(found);
    EXPECT_NE(store->find(0, lt, icnt - 1), nullptr);
}

TEST(CheckpointEquivalence, EveryKernelSerialAndParallel)
{
    fsp::setVerboseLogging(false);
    std::uint64_t total_restores = 0;
    for (const apps::KernelSpec &spec : apps::allKernels()) {
        SCOPED_TRACE(spec.fullName());
        apps::KernelSetup setup = spec.setup(apps::Scale::Small, 42);
        sim::Executor executor(setup.program, setup.launch);
        FaultSpace space(executor, setup.memory);
        Prng prng(4321);
        auto sites = space.sampleSites(16, prng);

        Injector prototype(setup.program, setup.launch, setup.memory,
                           setup.outputs);

        // Serial: checkpointed replay vs from-start, same clone state.
        auto replay = prototype.clone();
        auto scratch = prototype.clone();
        scratch->setCheckpointsEnabled(false);
        EXPECT_FALSE(scratch->checkpointsActive());
        CampaignResult replay_result = reference::runSiteList(*replay, sites);
        CampaignResult scratch_result = reference::runSiteList(*scratch, sites);
        expectSameDist(replay_result.dist, scratch_result.dist);
        EXPECT_EQ(replay_result.runs, scratch_result.runs);
        EXPECT_EQ(scratch_result.injection.checkpointRestores, 0u);
        EXPECT_EQ(scratch_result.injection.skippedDynInstrs, 0u);
        total_restores += replay_result.injection.checkpointRestores;

        // Parallel engine with checkpoints allowed vs the serial
        // from-start tally, at several worker counts.
        for (unsigned workers : {2u, 4u, 8u}) {
            SCOPED_TRACE(workers);
            CampaignOptions options;
            options.workers = workers;
            CampaignEngine engine(prototype, options);
            CampaignResult par = engine.run(sites);
            expectSameDist(par.dist, scratch_result.dist);
            EXPECT_EQ(par.runs, scratch_result.runs);
        }
    }
    // The suite must actually exercise replay somewhere, or the
    // equivalence above proves nothing.
    EXPECT_GT(total_restores, 0u);
}

TEST(CheckpointEquivalence, CrashAndHangSitesMatchFromStart)
{
    // Crash/hang runs abort mid-CTA; replayed runs must classify them
    // identically, and the dirty-range restore must still revert the
    // applied deltas before the next injection.
    fsp::setVerboseLogging(false);
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    sim::Executor executor(setup.program, setup.launch);
    FaultSpace space(executor, setup.memory);
    Prng prng(99);
    auto sites = space.sampleSites(48, prng);

    Injector prototype(setup.program, setup.launch, setup.memory,
                       setup.outputs);
    auto replay = prototype.clone();
    auto scratch = prototype.clone();
    scratch->setCheckpointsEnabled(false);

    bool saw_other = false;
    for (const auto &site : sites) {
        Outcome a = replay->inject(site);
        Outcome b = scratch->inject(site);
        ASSERT_EQ(a, b) << "thread " << site.thread << " dyn "
                        << site.dynIndex << " bit " << site.bit;
        saw_other = saw_other || a == Outcome::Other;
    }
    // The sample is large enough to include crash/hang outcomes; if
    // this ever fails, enlarge the sample rather than dropping it.
    EXPECT_TRUE(saw_other);
    EXPECT_GT(replay->stats().checkpointRestores, 0u);
    EXPECT_GT(replay->stats().skippedDynInstrs, 0u);
}

TEST(CheckpointEngine, GemmRestoresAndSkipsWork)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    Injector injector(setup.program, setup.launch, setup.memory,
                      setup.outputs);
    ASSERT_TRUE(injector.checkpointsActive());
    EXPECT_NE(injector.checkpointDescription().find("checkpoints on"),
              std::string::npos);

    // A site late in the trace of the CTA's last-scheduled thread
    // resumes from a checkpoint and skips a non-trivial golden prefix
    // (the first-scheduled thread would find none -- see the
    // CheckpointStore test).
    const std::uint64_t t = injector.executor().config().block.count() - 1;
    const std::uint64_t late = injector.goldenICnt(t) - 20;
    Outcome with = injector.inject({t, late, 7});
    EXPECT_EQ(injector.stats().checkpointRestores, 1u);
    EXPECT_GT(injector.stats().skippedDynInstrs, 0u);

    auto from_start = injector.clone();
    from_start->setCheckpointsEnabled(false);
    EXPECT_EQ(from_start->inject({t, late, 7}), with);
    EXPECT_EQ(from_start->stats().checkpointRestores, 0u);
}

TEST(CheckpointEngine, DisableSwitchIsReversible)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    Injector injector(setup.program, setup.launch, setup.memory,
                      setup.outputs);
    ASSERT_TRUE(injector.checkpointsActive());

    injector.setCheckpointsEnabled(false);
    EXPECT_FALSE(injector.checkpointsActive());
    EXPECT_NE(injector.checkpointDescription().find("checkpoints off"),
              std::string::npos);
    const std::uint64_t t = injector.executor().config().block.count() - 1;
    const std::uint64_t late = injector.goldenICnt(t) - 20;
    injector.inject({t, late, 3});
    EXPECT_EQ(injector.stats().checkpointRestores, 0u);

    // The recorded store survives the toggle.
    injector.setCheckpointsEnabled(true);
    EXPECT_TRUE(injector.checkpointsActive());
    injector.inject({t, late, 3});
    EXPECT_EQ(injector.stats().checkpointRestores, 1u);
}

TEST(CheckpointEngine, CloneSharesTheRecordedStore)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    Injector prototype(setup.program, setup.launch, setup.memory,
                       setup.outputs);
    auto clone = prototype.clone();
    // Same immutable store, not a copy: recording happens once.
    EXPECT_EQ(clone->checkpointStore(), prototype.checkpointStore());

    // Building with checkpoints off records nothing at all.
    InjectorOptions off;
    off.checkpoints = false;
    Injector bare(setup.program, setup.launch, setup.memory,
                  setup.outputs, off);
    EXPECT_EQ(bare.checkpointStore(), nullptr);
    EXPECT_FALSE(bare.checkpointsActive());
    EXPECT_NE(bare.checkpointDescription().find("not recorded"),
              std::string::npos);
}

TEST(CheckpointEngine, ParallelSwitchForcesFromStartWorkers)
{
    fsp::setVerboseLogging(false);
    const apps::KernelSpec *spec = apps::findKernel("MVT/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    sim::Executor executor(setup.program, setup.launch);
    FaultSpace space(executor, setup.memory);
    Prng prng(5);
    auto sites = space.sampleSites(24, prng);

    Injector prototype(setup.program, setup.launch, setup.memory,
                       setup.outputs);

    CampaignOptions on;
    on.workers = 4;
    CampaignEngine with(prototype, on);
    ASSERT_TRUE(with.checkpointsActive());
    CampaignResult a = with.run(sites);
    EXPECT_GT(with.lastStats().injection.checkpointRestores, 0u);

    CampaignOptions off = on;
    off.allowCheckpoints = false;
    CampaignEngine without(prototype, off);
    EXPECT_FALSE(without.checkpointsActive());
    CampaignResult b = without.run(sites);
    EXPECT_EQ(without.lastStats().injection.checkpointRestores, 0u);
    EXPECT_EQ(without.lastStats().injection.skippedDynInstrs, 0u);

    expectSameDist(a.dist, b.dist);
}

/**
 * Two CTAs, one thread each; CTA c computes &out[c] and stores c + 5.
 * Flipping bit 2 of thread 1's address register (dyn index 3) redirects
 * its store into CTA 0's footprint, so the sliced attempt aborts on the
 * store hazard and the injector replays on the full grid -- both legs
 * resuming from checkpoints (recorded at every instruction here, the
 * CTAs being far below the default capture interval).
 */
struct HazardKernel
{
    sim::Program program;
    sim::GlobalMemory memory{1u << 16};
    sim::LaunchConfig launch;
    std::uint64_t out;
    std::vector<OutputRegion> outputs;

    HazardKernel() : program(ptx::assemble("hazard", R"(
        ld.param.u32 $r1, [0]
        cvt.u32.u16 $r2, %ctaid.x
        shl.u32 $r3, $r2, 0x00000002
        add.u32 $r3, $r1, $r3
        add.u32 $r4, $r2, 0x00000005
        st.global.u32 [$r3], $r4
        retp
    )"))
    {
        out = memory.allocate(8);
        launch.grid = {2, 1, 1};
        launch.block = {1, 1, 1};
        launch.params.addU32(static_cast<std::uint32_t>(out));
        outputs.push_back({"out", out, 8, ElemType::U32, 0.0});
    }
};

TEST(CheckpointEngine, HazardFallbackComposesWithCheckpoints)
{
    HazardKernel k;
    InjectorOptions options;
    options.checkpointing.minInterval = 1; // capture despite 7-instr CTAs
    Injector injector(k.program, k.launch, k.memory, k.outputs, options);
    ASSERT_TRUE(injector.slicingPlan().independent());
    ASSERT_TRUE(injector.checkpointsActive());

    // A clean sliced run resumes from a checkpoint (value-register
    // fault, SDC within CTA 1's own footprint).
    ASSERT_EQ(injector.inject({1, 4, 0}), Outcome::SDC);
    EXPECT_EQ(injector.stats().slicedRuns, 1u);
    EXPECT_EQ(injector.stats().hazardFallbacks, 0u);
    EXPECT_EQ(injector.stats().checkpointRestores, 1u);

    // The address-register fault: the checkpointed sliced attempt
    // aborts on the hazard and the full-grid replay resumes from the
    // same capture point -- two restores for one classification.
    ASSERT_EQ(injector.inject({1, 3, 2}), Outcome::SDC);
    EXPECT_EQ(injector.stats().hazardFallbacks, 1u);
    EXPECT_EQ(injector.stats().fullGridRuns, 1u);
    EXPECT_EQ(injector.stats().checkpointRestores, 3u);

    // From-start execution agrees on both sites.
    auto from_start = injector.clone();
    from_start->setCheckpointsEnabled(false);
    EXPECT_EQ(from_start->inject({1, 4, 0}), Outcome::SDC);
    EXPECT_EQ(from_start->inject({1, 3, 2}), Outcome::SDC);
    EXPECT_EQ(from_start->stats().checkpointRestores, 0u);
}

TEST(CheckpointEngine, TinyKernelBelowIntervalRecordsNothing)
{
    HazardKernel k;
    Injector injector(k.program, k.launch, k.memory, k.outputs);
    const CheckpointStore *store = injector.checkpointStore();
    ASSERT_NE(store, nullptr);
    // 7 instructions per CTA never reach the default 256-instruction
    // capture interval: the store is recorded but empty, and the
    // engine quietly executes from start.
    EXPECT_TRUE(store->empty());
    EXPECT_FALSE(injector.checkpointsActive());
    EXPECT_NE(injector.checkpointDescription().find("below capture"),
              std::string::npos);
    EXPECT_EQ(injector.inject({1, 4, 0}), Outcome::SDC);
    EXPECT_EQ(injector.stats().checkpointRestores, 0u);
}

TEST(CheckpointAnalysis, FacadeSwitchMatchesPrunedCampaigns)
{
    const apps::KernelSpec *spec = apps::findKernel("PathFinder/K1");
    analysis::KernelAnalysis on(*spec, apps::Scale::Small);
    analysis::KernelAnalysis off(*spec, apps::Scale::Small);
    off.setCheckpointsEnabled(false);
    EXPECT_FALSE(off.checkpointsActive());
    EXPECT_TRUE(on.checkpointsActive());

    pruning::PruningConfig config;
    auto a = on.prune(config);
    auto da = on.runPrunedCampaign(a);

    // The config switch alone must reach the injector too.
    pruning::PruningConfig no_ckpt = config;
    no_ckpt.execution.checkpoints = false;
    auto b = off.prune(no_ckpt);
    auto db = off.runPrunedCampaign(b);

    expectSameDist(da, db);
    // Campaigns run on engine workers (clones), so the restore
    // counters live in the engine's campaign stats, not the facade
    // injector's.
    EXPECT_GT(on.campaignEngine().lastStats()
                  .injection.checkpointRestores,
              0u);
    EXPECT_EQ(off.campaignEngine().lastStats()
                  .injection.checkpointRestores,
              0u);
}

} // namespace
} // namespace fsp
