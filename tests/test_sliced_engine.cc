/**
 * @file
 * Equivalence and behaviour tests for the CTA-sliced injection engine.
 *
 * The engine's contract is that slicing is a pure optimisation: for
 * every registered kernel, classifying the same site list with the
 * sliced path permitted must produce outcome distributions
 * bit-identical to forced full-grid runs -- serially and through the
 * parallel campaign engine at workers {2, 4, 8}.  Additional tests
 * pin the hazard-fallback path, fault-site validation, and the
 * sliced profiling run of the pruning pipeline.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/analyzer.hh"
#include "apps/app.hh"
#include "reference_campaign.hh"
#include "faults/fault_space.hh"
#include "faults/injector.hh"
#include "faults/campaign_engine.hh"
#include "ptx/assembler.hh"
#include "util/logging.hh"
#include "util/prng.hh"

namespace fsp {
namespace {

using namespace faults;

/** Exact (bit-identical) distribution comparison. */
void
expectSameDist(const OutcomeDist &a, const OutcomeDist &b)
{
    EXPECT_EQ(a.runs(), b.runs());
    for (Outcome o : {Outcome::Masked, Outcome::SDC, Outcome::Other,
                      Outcome::Invalid})
        EXPECT_EQ(a.weightOf(o), b.weightOf(o)) << outcomeName(o);
}

TEST(SlicedEquivalence, EveryKernelSerialAndParallel)
{
    fsp::setVerboseLogging(false);
    for (const apps::KernelSpec &spec : apps::allKernels()) {
        SCOPED_TRACE(spec.fullName());
        apps::KernelSetup setup = spec.setup(apps::Scale::Small, 42);
        sim::Executor executor(setup.program, setup.launch);
        FaultSpace space(executor, setup.memory);
        Prng prng(1234);
        auto sites = space.sampleSites(16, prng);

        Injector prototype(setup.program, setup.launch, setup.memory,
                           setup.outputs);

        // Serial: sliced engine vs forced full-grid, site by site.
        auto sliced = prototype.clone();
        auto full = prototype.clone();
        full->setSlicingEnabled(false);
        EXPECT_FALSE(full->slicingActive());
        CampaignResult sliced_result = reference::runSiteList(*sliced, sites);
        CampaignResult full_result = reference::runSiteList(*full, sites);
        expectSameDist(sliced_result.dist, full_result.dist);
        EXPECT_EQ(sliced_result.runs, full_result.runs);
        EXPECT_EQ(full_result.injection.slicedRuns, 0u);

        // Parallel engine with slicing allowed vs the serial full-grid
        // tally, at several worker counts.
        for (unsigned workers : {2u, 4u, 8u}) {
            SCOPED_TRACE(workers);
            CampaignOptions options;
            options.workers = workers;
            CampaignEngine engine(prototype, options);
            CampaignResult par = engine.run(sites);
            expectSameDist(par.dist, full_result.dist);
            EXPECT_EQ(par.runs, full_result.runs);
        }
    }
}

TEST(SlicedEquivalence, WeightedCampaignMatchesBitExactly)
{
    fsp::setVerboseLogging(false);
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    ASSERT_NE(spec, nullptr);
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    sim::Executor executor(setup.program, setup.launch);
    FaultSpace space(executor, setup.memory);
    Prng prng(77);
    auto plain = space.sampleSites(24, prng);
    std::vector<WeightedSite> sites;
    for (std::size_t i = 0; i < plain.size(); ++i)
        sites.push_back({plain[i], 1.0 + 0.125 * static_cast<double>(i)});

    Injector prototype(setup.program, setup.launch, setup.memory,
                       setup.outputs);
    ASSERT_TRUE(prototype.slicingActive());

    auto sliced = prototype.clone();
    auto full = prototype.clone();
    full->setSlicingEnabled(false);
    CampaignResult a = reference::runWeightedSiteList(*sliced, sites);
    CampaignResult b = reference::runWeightedSiteList(*full, sites);
    expectSameDist(a.dist, b.dist);

    // The sliced engine must have actually sliced (not silently fallen
    // back everywhere), or this test proves nothing.
    EXPECT_GT(a.injection.slicedRuns, 0u);
    EXPECT_LT(a.injection.executedCtas, b.injection.executedCtas);

    for (unsigned workers : {2u, 4u, 8u}) {
        CampaignOptions options;
        options.workers = workers;
        CampaignEngine engine(prototype, options);
        CampaignResult par = engine.run(sites);
        expectSameDist(par.dist, b.dist);
        EXPECT_GT(par.injection.slicedRuns, 0u);
    }
}

TEST(SlicedEngine, GemmIsSlicedAndCheaper)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    ASSERT_NE(spec, nullptr);
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    Injector injector(setup.program, setup.launch, setup.memory,
                      setup.outputs);

    EXPECT_TRUE(injector.slicingPlan().independent())
        << injector.slicingPlan().reason();
    EXPECT_TRUE(injector.slicingActive());
    EXPECT_NE(injector.slicingDescription().find("sliced"),
              std::string::npos);

    // One sliced injection executes exactly one of the four CTAs.
    ASSERT_EQ(injector.inject({0, 40, 7}), Outcome::SDC);
    EXPECT_EQ(injector.stats().slicedRuns, 1u);
    EXPECT_EQ(injector.stats().executedCtas, 1u);
    EXPECT_EQ(injector.executor().config().grid.count(), 4u);
}

TEST(SlicedEngine, DisablingSlicingForcesFullGrid)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    Injector injector(setup.program, setup.launch, setup.memory,
                      setup.outputs);
    injector.setSlicingEnabled(false);
    EXPECT_FALSE(injector.slicingActive());
    EXPECT_NE(injector.slicingDescription().find("full-grid"),
              std::string::npos);

    ASSERT_EQ(injector.inject({0, 40, 7}), Outcome::SDC);
    EXPECT_EQ(injector.stats().slicedRuns, 0u);
    EXPECT_EQ(injector.stats().fullGridRuns, 1u);
    EXPECT_EQ(injector.stats().executedCtas, 4u);
}

/**
 * Two CTAs, one thread each; CTA c computes &out[c] and stores c + 5.
 * Flipping bit 2 of thread 1's address register (dyn index 3) redirects
 * its store from out[1] (0x...4) to out[0] (0x...0) -- a byte CTA 0
 * writes, so the sliced run must abort on the store hazard and the
 * injector must replay it on the full grid.
 */
struct HazardKernel
{
    sim::Program program;
    sim::GlobalMemory memory{1u << 16};
    sim::LaunchConfig launch;
    std::uint64_t out;
    std::vector<OutputRegion> outputs;

    HazardKernel() : program(ptx::assemble("hazard", R"(
        ld.param.u32 $r1, [0]
        cvt.u32.u16 $r2, %ctaid.x
        shl.u32 $r3, $r2, 0x00000002
        add.u32 $r3, $r1, $r3
        add.u32 $r4, $r2, 0x00000005
        st.global.u32 [$r3], $r4
        retp
    )"))
    {
        out = memory.allocate(8);
        launch.grid = {2, 1, 1};
        launch.block = {1, 1, 1};
        launch.params.addU32(static_cast<std::uint32_t>(out));
        outputs.push_back({"out", out, 8, ElemType::U32, 0.0});
    }
};

TEST(SlicedEngine, StoreHazardFallsBackToFullGrid)
{
    HazardKernel k;
    Injector injector(k.program, k.launch, k.memory, k.outputs);
    ASSERT_TRUE(injector.slicingPlan().independent())
        << injector.slicingPlan().reason();

    // Sanity: an unfaulted site in CTA 1 stays sliced and masked-free
    // of fallbacks (bit 0 of the store *value* register -> SDC).
    ASSERT_EQ(injector.inject({1, 4, 0}), Outcome::SDC);
    EXPECT_EQ(injector.stats().slicedRuns, 1u);
    EXPECT_EQ(injector.stats().hazardFallbacks, 0u);

    // The address-register fault: sliced attempt aborts, full grid
    // classifies.  out becomes [6, 0] vs golden [5, 6] -> SDC.
    ASSERT_EQ(injector.inject({1, 3, 2}), Outcome::SDC);
    EXPECT_EQ(injector.stats().hazardFallbacks, 1u);
    EXPECT_EQ(injector.stats().fullGridRuns, 1u);
    EXPECT_EQ(injector.stats().injections, 2u);
    // One injection, two executor runs -- but runsPerformed() counts
    // injections, matching the serial campaign contract.
    EXPECT_EQ(injector.runsPerformed(), 2u);

    // The fallback classification matches a slicing-disabled clone.
    auto full = injector.clone();
    full->setSlicingEnabled(false);
    EXPECT_EQ(full->inject({1, 3, 2}), Outcome::SDC);
    EXPECT_EQ(full->stats().hazardFallbacks, 0u);
}

TEST(SlicedEngine, InvalidSitesAreReportedNotMasked)
{
    HazardKernel k;
    Injector injector(k.program, k.launch, k.memory, k.outputs);
    // Golden iCnt is 7 per thread; dyn index 7 can never fire.
    EXPECT_EQ(injector.inject({1, 7, 0}), Outcome::Invalid);
    // Thread id beyond the launch.
    EXPECT_EQ(injector.inject({2, 0, 0}), Outcome::Invalid);
    EXPECT_EQ(injector.stats().invalidSites, 2u);
    EXPECT_EQ(injector.stats().slicedRuns, 0u);
    EXPECT_EQ(injector.stats().fullGridRuns, 0u);
    // Invalid attempts still count as performed injections...
    EXPECT_EQ(injector.runsPerformed(), 2u);

    // ...and their weight stays outside the resilience profile.
    OutcomeDist dist;
    dist.add(Outcome::Masked);
    dist.add(Outcome::Invalid);
    EXPECT_EQ(dist.total(), 1.0);
    EXPECT_EQ(dist.fraction(Outcome::Masked), 1.0);
    EXPECT_EQ(dist.weightOf(Outcome::Invalid), 1.0);
    EXPECT_EQ(dist.runs(), 2u);
    EXPECT_NE(dist.summary().find("invalid"), std::string::npos);
}

TEST(SlicedEngine, CrashAndHangSitesMatchFullGridAfterRestore)
{
    // Crashes abort runs mid-write; the dirty-range restore must still
    // revert everything before the next (sliced) run, or outcomes
    // would leak across injections.
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    sim::Executor executor(setup.program, setup.launch);
    FaultSpace space(executor, setup.memory);
    Prng prng(99);
    auto sites = space.sampleSites(48, prng);

    Injector prototype(setup.program, setup.launch, setup.memory,
                       setup.outputs);
    auto sliced = prototype.clone();
    auto full = prototype.clone();
    full->setSlicingEnabled(false);

    bool saw_other = false;
    for (const auto &site : sites) {
        Outcome a = sliced->inject(site);
        Outcome b = full->inject(site);
        ASSERT_EQ(a, b) << "thread " << site.thread << " dyn "
                        << site.dynIndex << " bit " << site.bit;
        saw_other = saw_other || a == Outcome::Other;
    }
    // The sample is large enough to include crash/hang outcomes; if
    // this ever fails, enlarge the sample rather than dropping it.
    EXPECT_TRUE(saw_other);
}

TEST(SlicedPruning, SlicedProfilingMatchesFullProfiling)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);
    ASSERT_TRUE(ka.slicingActive());

    pruning::PruningConfig with;
    with.execution.slicedProfiling = true;
    pruning::PruningConfig without;
    without.execution.slicedProfiling = false;

    auto a = ka.prune(with);
    auto b = ka.prune(without);

    EXPECT_TRUE(a.slicedProfiling);
    EXPECT_FALSE(b.slicedProfiling);
    EXPECT_LE(a.profiledCtas, ka.slicingPlan().ctaCount());
    EXPECT_GE(a.profiledCtas, 1u);
    EXPECT_EQ(b.profiledCtas, ka.slicingPlan().ctaCount());

    // Identical pruning output: same sites, same weights, bit for bit.
    EXPECT_EQ(a.counts.afterThread, b.counts.afterThread);
    EXPECT_EQ(a.counts.afterBit, b.counts.afterBit);
    EXPECT_EQ(a.assumedMaskedWeight, b.assumedMaskedWeight);
    ASSERT_EQ(a.sites.size(), b.sites.size());
    for (std::size_t i = 0; i < a.sites.size(); ++i) {
        EXPECT_EQ(a.sites[i].site, b.sites[i].site) << i;
        EXPECT_EQ(a.sites[i].weight, b.sites[i].weight) << i;
    }
}

TEST(SlicedPruning, AnalyzerDisableSwitchCoversBothPaths)
{
    const apps::KernelSpec *spec = apps::findKernel("MVT/K1");
    analysis::KernelAnalysis on(*spec, apps::Scale::Small);
    analysis::KernelAnalysis off(*spec, apps::Scale::Small);
    off.setSlicingEnabled(false);
    EXPECT_FALSE(off.slicingActive());

    pruning::PruningConfig config;
    auto a = on.prune(config);
    auto b = off.prune(config);
    EXPECT_FALSE(b.slicedProfiling);

    auto da = on.runPrunedCampaign(a);
    auto db = off.runPrunedCampaign(b);
    expectSameDist(da, db);
}

} // namespace
} // namespace fsp
