/**
 * @file
 * Disassembler tests: exact rendering of representative instructions
 * and the assemble/disassemble round-trip property swept over every
 * registered workload kernel -- a differential check on both the
 * assembler and the disassembler.
 */

#include <gtest/gtest.h>

#include "apps/app.hh"
#include "ptx/assembler.hh"
#include "sim/disasm.hh"
#include "sim/executor.hh"

namespace fsp {
namespace {

using sim::disassembleInstruction;
using sim::disassembleProgram;

std::string
one(const std::string &source)
{
    sim::Program p = ptx::assemble("t", source);
    return disassembleInstruction(
        p.at(0), [](std::size_t i) { return "l" + std::to_string(i); });
}

TEST(Disasm, RendersRepresentativeInstructions)
{
    EXPECT_EQ(one("add.u32 $r1, $r2, $r3"), "add.u32 $r1, $r2, $r3");
    EXPECT_EQ(one("mad.f32 $r1, $r2, $r3, $r4"),
              "mad.f32 $r1, $r2, $r3, $r4");
    EXPECT_EQ(one("add.u32 $r3, -$r3, 0x00000100"),
              "add.u32 $r3, -$r3, 0x100");
    EXPECT_EQ(one("mul.wide.u16 $r4, $r1.lo, $r3.hi"),
              "mul.wide.u16 $r4, $r1.lo, $r3.hi");
    EXPECT_EQ(one("set.eq.s32.s32 $p0|$o127, $r6, $r1"),
              "set.eq.s32.s32 $p0|$o127, $r6, $r1");
    EXPECT_EQ(one("setp.lt.u32 $p2, $r1, $r2"),
              "setp.lt.u32 $p2, $r1, $r2");
    EXPECT_EQ(one("cvt.u32.u16 $r1, %ctaid.x"),
              "cvt.u32.u16 $r1, %ctaid.x");
    EXPECT_EQ(one("ld.global.f32 $r2, [$r3+16]"),
              "ld.global.f32 $r2, [$r3+16]");
    EXPECT_EQ(one("ld.shared.u32 $r2, [$r3+-4]"),
              "ld.shared.u32 $r2, [$r3+-4]");
    EXPECT_EQ(one("ld.param.u32 $r2, [8]"), "ld.param.u32 $r2, [8]");
    EXPECT_EQ(one("st.global.u32 [$r3], $r2"),
              "st.global.u32 [$r3], $r2");
    EXPECT_EQ(one("bar.sync 0"), "bar.sync 0");
    EXPECT_EQ(one("@$p0.ne bra next\nnext: nop"), "@$p0.ne bra l1");
    EXPECT_EQ(one("mov.f32 $r1, 1.5"), "mov.f32 $r1, 1.5");
    EXPECT_EQ(one("retp"), "retp");
}

TEST(Disasm, FloatImmediatesRoundTripBitExactly)
{
    for (float v : {1.5f, -0.1f, 3.0e38f, 1.0f / 3.0f, 0.0f}) {
        char src[64];
        std::snprintf(src, sizeof(src), "mov.f32 $r1, %.9g",
                      static_cast<double>(v));
        sim::Program p1 = ptx::assemble("t", src);
        std::string text = disassembleProgram(p1);
        sim::Program p2 = ptx::assemble("t", text);
        EXPECT_EQ(p1.at(0).src[0].imm, p2.at(0).src[0].imm) << src;
    }
}

/** Structural equivalence of two decoded instructions. */
bool
sameOperand(const sim::Operand &a, const sim::Operand &b)
{
    return a.kind == b.kind && a.reg == b.reg && a.half == b.half &&
           a.negated == b.negated && a.special == b.special &&
           a.imm == b.imm && a.memBase == b.memBase &&
           a.memOffset == b.memOffset;
}

bool
sameInstruction(const sim::Instruction &a, const sim::Instruction &b)
{
    bool same = a.op == b.op && a.type == b.type && a.stype == b.stype &&
                a.cmp == b.cmp && a.space == b.space &&
                a.guard.cond == b.guard.cond &&
                a.guard.pred == b.guard.pred && a.target == b.target &&
                a.barrier == b.barrier;
    if (!same)
        return false;
    if (!sameOperand(a.dest, b.dest) || !sameOperand(a.dest2, b.dest2))
        return false;
    for (int i = 0; i < 3; ++i) {
        if (!sameOperand(a.src[i], b.src[i]))
            return false;
    }
    return true;
}

class RoundTripSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RoundTripSweep, AssembleDisassembleAssembleIsStable)
{
    const apps::KernelSpec *spec = apps::findKernel(GetParam());
    ASSERT_NE(spec, nullptr);
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);

    std::string text = disassembleProgram(setup.program);
    sim::Program reassembled = ptx::assemble("rt", text);

    ASSERT_EQ(reassembled.size(), setup.program.size()) << text;
    for (std::size_t i = 0; i < setup.program.size(); ++i) {
        EXPECT_TRUE(
            sameInstruction(setup.program.at(i), reassembled.at(i)))
            << GetParam() << " instruction " << i << ": "
            << setup.program.at(i).text;
    }
}

TEST_P(RoundTripSweep, ReassembledProgramProducesIdenticalOutput)
{
    const apps::KernelSpec *spec = apps::findKernel(GetParam());
    ASSERT_NE(spec, nullptr);
    apps::KernelSetup a = spec->setup(apps::Scale::Small, 42);
    apps::KernelSetup b = spec->setup(apps::Scale::Small, 42);

    sim::Program reassembled =
        ptx::assemble("rt", disassembleProgram(a.program));

    sim::Executor ea(a.program, a.launch);
    sim::Executor eb(reassembled, b.launch);
    ASSERT_EQ(ea.run(a.memory).status, sim::RunStatus::Completed);
    ASSERT_EQ(eb.run(b.memory).status, sim::RunStatus::Completed);

    for (const auto &region : a.outputs) {
        EXPECT_EQ(a.memory.snapshot(region.addr, region.bytes),
                  b.memory.snapshot(region.addr, region.bytes))
            << region.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, RoundTripSweep, ::testing::ValuesIn([] {
        std::vector<std::string> names;
        for (const auto &spec : apps::allKernels())
            names.push_back(spec.fullName());
        return names;
    }()),
    [](const auto &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '/' || c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace fsp
