/**
 * @file
 * Durable-session suite for the campaign journal: a campaign killed
 * mid-run and resumed must reproduce the uninterrupted campaign's
 * weighted profile *bit-for-bit* at every worker count, and every
 * tampered journal (stale header hash, truncated tail, corrupted
 * record) must be rejected with a clear error instead of silently
 * poisoning a resume.  Also covers the JSON string escaping the tools'
 * --json output depends on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "apps/app.hh"
#include "faults/campaign_engine.hh"
#include "faults/campaign_journal.hh"
#include "util/json.hh"

namespace fsp {
namespace {

/** A per-test journal path under gtest's temp dir, removed on setup. */
std::string
journalPath(const std::string &name)
{
    std::string path = testing::TempDir() + "fsp_" + name + ".fspj";
    std::remove(path.c_str());
    return path;
}

std::uintmax_t
fileSize(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    EXPECT_TRUE(in.good()) << path;
    return static_cast<std::uintmax_t>(in.tellg());
}

void
truncateFile(const std::string &path, std::uintmax_t size)
{
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes(size);
    in.read(bytes.data(), static_cast<std::streamsize>(size));
    ASSERT_TRUE(in.good());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(size));
}

void
flipByte(const std::string &path, std::uintmax_t offset)
{
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.read(&byte, 1);
    ASSERT_TRUE(file.good());
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(static_cast<std::streamoff>(offset));
    file.write(&byte, 1);
}

/** Weights chosen to expose any reordering of the double sums. */
std::vector<faults::WeightedSite>
weightSites(const std::vector<faults::FaultSite> &sites)
{
    std::vector<faults::WeightedSite> weighted;
    weighted.reserve(sites.size());
    for (std::size_t i = 0; i < sites.size(); ++i)
        weighted.push_back(
            {sites[i], 0.1 + 0.3 * static_cast<double>(i % 7)});
    return weighted;
}

void
expectSameResult(const faults::CampaignResult &expected,
                 const faults::CampaignResult &actual)
{
    EXPECT_EQ(expected.runs, actual.runs);
    EXPECT_EQ(expected.dist.runs(), actual.dist.runs());
    for (faults::Outcome o :
         {faults::Outcome::Masked, faults::Outcome::SDC,
          faults::Outcome::Other}) {
        // Exact equality, not a tolerance: resumed campaigns fold the
        // same outcomes in the same site order, so the weighted double
        // accumulation must match bit-for-bit.
        EXPECT_EQ(expected.dist.weightOf(o), actual.dist.weightOf(o))
            << "outcome " << faults::outcomeName(o);
    }
}

/** The one kernel this suite injects into (small and fast). */
class CampaignJournalTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        const apps::KernelSpec *spec = apps::findKernel("PathFinder/K1");
        ASSERT_NE(spec, nullptr);
        ka_.emplace(*spec, apps::Scale::Small);
        Prng prng(2026);
        weighted_ = weightSites(ka_->space().sampleSites(60, prng));
    }

    faults::CampaignOptions
    baseOptions(unsigned workers, const std::string &journal) const
    {
        faults::CampaignOptions options;
        options.workers = workers;
        options.chunkSize = 3;
        options.journalPath = journal;
        options.journalKey = {"journal-suite", 2026};
        return options;
    }

    std::optional<analysis::KernelAnalysis> ka_;
    std::vector<faults::WeightedSite> weighted_;
};

TEST_F(CampaignJournalTest, KillAndResumeBitIdentical)
{
    // The reference profile, computed without any journal.
    faults::CampaignEngine reference(ka_->injector(), {});
    auto expected = reference.run(weighted_);

    for (unsigned workers : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        std::string path =
            journalPath("kill_w" + std::to_string(workers));

        // Phase 1: run with the kill hook armed.  CampaignAborted is
        // thrown from a chunk fold point *after* that chunk's records
        // were committed -- exactly the state a SIGKILL between chunk
        // commits leaves behind.
        faults::CampaignOptions killed = baseOptions(workers, path);
        killed.abortAfterSites = 18;
        faults::CampaignEngine first(ka_->injector(), killed);
        EXPECT_THROW(first.run(weighted_), faults::CampaignAborted);

        // Phase 2: resume.  Journaled sites are replayed, not
        // re-injected; the profile must match the uninterrupted run.
        faults::CampaignOptions resumed = baseOptions(workers, path);
        resumed.resume = true;
        faults::CampaignEngine second(ka_->injector(), resumed);
        auto result = second.run(weighted_);
        expectSameResult(expected, result);

        const auto &stats = second.lastStats();
        EXPECT_GE(stats.replayedSites, killed.abortAfterSites);
        EXPECT_LT(stats.replayedSites, weighted_.size());
        EXPECT_EQ(stats.replayedSites + stats.injectedSites,
                  weighted_.size());
        EXPECT_TRUE(stats.resumed);
    }
}

TEST_F(CampaignJournalTest, ResumeOfCompleteJournalInjectsNothing)
{
    std::string path = journalPath("complete");
    faults::CampaignOptions options = baseOptions(2, path);
    faults::CampaignEngine first(ka_->injector(), options);
    auto expected = first.run(weighted_);

    options.resume = true;
    faults::CampaignEngine second(ka_->injector(), options);
    auto replayed = second.run(weighted_);
    expectSameResult(expected, replayed);
    EXPECT_EQ(second.lastStats().injectedSites, 0u);
    EXPECT_EQ(second.lastStats().replayedSites, weighted_.size());
    EXPECT_EQ(second.runsPerformed(), 0u);
}

TEST_F(CampaignJournalTest, StaleHeaderHashRejected)
{
    std::string path = journalPath("stale");
    faults::CampaignEngine first(ka_->injector(), baseOptions(2, path));
    first.run(weighted_);

    // Same site list, different campaign identity (the seed): resume
    // must refuse rather than mix the two campaigns' outcomes.
    faults::CampaignOptions other = baseOptions(2, path);
    other.journalKey.seed = 9;
    other.resume = true;
    faults::CampaignEngine second(ka_->injector(), other);
    try {
        second.run(weighted_);
        FAIL() << "stale journal accepted";
    } catch (const faults::JournalError &error) {
        EXPECT_NE(std::string(error.what()).find("stale header hash"),
                  std::string::npos)
            << error.what();
    }
}

TEST_F(CampaignJournalTest, SiteListChangeRejected)
{
    std::string path = journalPath("sites_changed");
    faults::CampaignEngine first(ka_->injector(), baseOptions(2, path));
    first.run(weighted_);

    // Perturbing one weight changes the site-list hash.
    auto changed = weighted_;
    changed[7].weight += 0.5;
    faults::CampaignOptions resume = baseOptions(2, path);
    resume.resume = true;
    faults::CampaignEngine second(ka_->injector(), resume);
    EXPECT_THROW(second.run(changed), faults::JournalError);
}

TEST_F(CampaignJournalTest, TruncatedRecordRejected)
{
    std::string path = journalPath("truncated");
    {
        faults::CampaignOptions killed = baseOptions(2, path);
        killed.abortAfterSites = 18;
        faults::CampaignEngine engine(ka_->injector(), killed);
        EXPECT_THROW(engine.run(weighted_), faults::CampaignAborted);
    }

    // Chop into the middle of the last record: the torn tail must be
    // diagnosed, not skipped.
    truncateFile(path, fileSize(path) - 5);

    faults::CampaignOptions resume = baseOptions(2, path);
    resume.resume = true;
    faults::CampaignEngine second(ka_->injector(), resume);
    try {
        second.run(weighted_);
        FAIL() << "truncated journal accepted";
    } catch (const faults::JournalError &error) {
        EXPECT_NE(std::string(error.what()).find("truncated"),
                  std::string::npos)
            << error.what();
    }
}

TEST_F(CampaignJournalTest, CorruptedRecordRejected)
{
    std::string path = journalPath("corrupt");
    {
        faults::CampaignOptions killed = baseOptions(2, path);
        killed.abortAfterSites = 18;
        faults::CampaignEngine engine(ka_->injector(), killed);
        EXPECT_THROW(engine.run(weighted_), faults::CampaignAborted);
    }

    // Flip one byte inside the first record's payload (the header is
    // 40 bytes, each record 56).
    flipByte(path, 40 + 4);

    faults::CampaignOptions resume = baseOptions(2, path);
    resume.resume = true;
    faults::CampaignEngine second(ka_->injector(), resume);
    try {
        second.run(weighted_);
        FAIL() << "corrupted journal accepted";
    } catch (const faults::JournalError &error) {
        EXPECT_NE(std::string(error.what()).find("corrupt"),
                  std::string::npos)
            << error.what();
    }
}

TEST(CampaignJournalFormat, FooterRoundTrip)
{
    std::string path = journalPath("footer");
    std::vector<faults::FaultSite> sites = {
        {0, 1, 2}, {0, 3, 4}, {1, 0, 5}};
    faults::JournalKey key{"footer-suite", 7};
    std::uint64_t hash = faults::journalHeaderHash(key, sites);
    const std::uint64_t modelHash = 0xfeedfacecafe1234ull;

    // An SDC record carries its full anatomy payload; the others carry
    // only the static-instruction index.
    faults::InjectionDetail sdcDetail;
    sdcDetail.staticIndex = 11;
    sdcDetail.hasAnatomy = true;
    sdcDetail.anatomy.pattern = faults::SdcPattern::RowStreak;
    sdcDetail.anatomy.magnitude[2] = 5;
    sdcDetail.anatomy.magnitude[6] = 1;
    faults::InjectionDetail maskedDetail;
    maskedDetail.staticIndex = 3;

    {
        auto journal = faults::CampaignJournal::create(
            path, hash, modelHash, sites.size());
        journal.append(0, faults::Outcome::Masked, maskedDetail);
        journal.append(1, faults::Outcome::SDC, sdcDetail);
        journal.append(2, faults::Outcome::Other);
        journal.commitChunk();
        faults::CampaignJournal::Phases phases;
        phases.replaySeconds = 0.125;
        phases.injectSeconds = 2.5;
        phases.foldSeconds = 0.0625;
        phases.sitesPerSecond = 1.2;
        phases.sitesDone = sites.size();
        phases.workers = 4;
        journal.writeFooter(phases);
    }

    faults::CampaignJournal::Resume resume;
    auto journal = faults::CampaignJournal::openOrResume(
        path, hash, modelHash, sites.size(), resume);
    EXPECT_TRUE(resume.complete);
    EXPECT_EQ(resume.doneCount, sites.size());
    EXPECT_EQ(resume.outcomes[0], faults::Outcome::Masked);
    EXPECT_EQ(resume.outcomes[1], faults::Outcome::SDC);
    EXPECT_EQ(resume.outcomes[2], faults::Outcome::Other);
    ASSERT_EQ(resume.details.size(), sites.size());
    EXPECT_EQ(resume.details[0], maskedDetail);
    EXPECT_EQ(resume.details[1], sdcDetail);
    EXPECT_EQ(resume.details[2], faults::InjectionDetail{});
    EXPECT_EQ(resume.footer.replaySeconds, 0.125);
    EXPECT_EQ(resume.footer.injectSeconds, 2.5);
    EXPECT_EQ(resume.footer.foldSeconds, 0.0625);
    EXPECT_EQ(resume.footer.sitesPerSecond, 1.2);
    EXPECT_EQ(resume.footer.sitesDone, sites.size());
    EXPECT_EQ(resume.footer.workers, 4u);
}

TEST(CampaignJournalFormat, DuplicateRecordRejected)
{
    std::string path = journalPath("duplicate");
    std::vector<faults::FaultSite> sites = {{0, 1, 2}, {0, 3, 4}};
    faults::JournalKey key{"dup-suite", 1};
    std::uint64_t hash = faults::journalHeaderHash(key, sites);
    {
        auto journal = faults::CampaignJournal::create(path, hash, 0,
                                                       sites.size());
        journal.append(1, faults::Outcome::Masked);
        journal.append(1, faults::Outcome::SDC);
        journal.commitChunk();
    }
    faults::CampaignJournal::Resume resume;
    EXPECT_THROW(faults::CampaignJournal::openOrResume(path, hash, 0,
                                                       sites.size(),
                                                       resume),
                 faults::JournalError);
}

TEST(CampaignJournalFormat, ModelMismatchRejected)
{
    std::string path = journalPath("model_mismatch");
    std::vector<faults::FaultSite> sites = {{0, 1, 2}, {0, 3, 4}};
    faults::JournalKey key{"model-suite", 1};
    std::uint64_t hash = faults::journalHeaderHash(key, sites);
    auto recorded = faults::defaultFaultModel();
    std::string error;
    auto other = faults::parseFaultModel("multi-bit:width=3", &error);
    ASSERT_NE(other, nullptr) << error;
    {
        auto journal = faults::CampaignJournal::create(
            path, hash, recorded->identityHash(), sites.size());
        journal.append(0, faults::Outcome::Masked);
        journal.commitChunk();
    }
    // Same campaign identity, different fault model: the resume must
    // name the model as the reason, not report a stale header.
    faults::CampaignJournal::Resume resume;
    try {
        faults::CampaignJournal::openOrResume(
            path, hash, other->identityHash(), sites.size(), resume);
        FAIL() << "model mismatch accepted";
    } catch (const faults::JournalError &error) {
        EXPECT_NE(std::string(error.what()).find("fault model"),
                  std::string::npos)
            << error.what();
    }
    // The matching model still resumes.
    faults::CampaignJournal::openOrResume(
        path, hash, recorded->identityHash(), sites.size(), resume);
    EXPECT_EQ(resume.doneCount, 1u);
}

// --- JSON string escaping (the --json surface the journal stats ride
// on).  Minimal scanner: extract the first string value and unescape.

std::string
unescapeFirstJsonString(const std::string &doc, const std::string &key)
{
    std::size_t at = doc.find('"' + key + '"');
    EXPECT_NE(at, std::string::npos) << doc;
    at = doc.find(':', at);
    at = doc.find('"', at);
    EXPECT_NE(at, std::string::npos) << doc;
    ++at;
    std::string out;
    while (at < doc.size() && doc[at] != '"') {
        char c = doc[at++];
        if (c != '\\') {
            out += c;
            continue;
        }
        char esc = doc[at++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'u': {
            unsigned code = static_cast<unsigned>(
                std::stoul(doc.substr(at, 4), nullptr, 16));
            at += 4;
            EXPECT_LT(code, 0x80u) << "suite only decodes ASCII escapes";
            out += static_cast<char>(code);
            break;
          }
          default:
            ADD_FAILURE() << "unexpected escape \\" << esc;
        }
    }
    return out;
}

TEST(JsonEscaping, StringRoundTrip)
{
    // Journal paths land in --json output verbatim; exercise every
    // class the writer escapes: quotes, backslashes (Windows-looking
    // paths), whitespace controls, and raw control bytes.
    const std::string nasty = "C:\\tmp\\\"journal\".fspj\n\tbell:\x07 end";
    std::ostringstream os;
    {
        JsonWriter json(os);
        json.beginObject();
        json.field("path", nasty);
        json.endObject();
    }
    EXPECT_EQ(unescapeFirstJsonString(os.str(), "path"), nasty);
}

TEST(JsonEscaping, CampaignStatsDocumentParsesBack)
{
    faults::CampaignStats stats;
    stats.workers = 3;
    stats.chunks = 7;
    stats.sites = 21;
    stats.injectedSites = 13;
    stats.replayedSites = 8;
    stats.journalPath = "dir with space/\"quoted\"\tname.fspj";
    stats.resumed = true;
    std::ostringstream os;
    {
        JsonWriter json(os);
        json.beginObject();
        faults::writeCampaignStats(json, stats);
        json.endObject();
    }
    EXPECT_EQ(unescapeFirstJsonString(os.str(), "path"),
              stats.journalPath);
}

} // namespace
} // namespace fsp
