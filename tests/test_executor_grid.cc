/**
 * @file
 * Executor tests across grid/CTA structure: 2-D geometry and special
 * registers, per-CTA shared-memory isolation, barrier phase ordering
 * under divergence, trace selection across CTAs, and conversion
 * semantics swept over type pairs.
 */

#include <gtest/gtest.h>

#include <bit>

#include "ptx/assembler.hh"
#include "sim/executor.hh"

namespace fsp {
namespace {

using namespace sim;

/** Run a program over an arbitrary grid with an output buffer. */
struct GridKernel
{
    Program program;
    GlobalMemory memory{1u << 20};
    LaunchConfig launch;
    std::uint64_t out;

    GridKernel(const std::string &source, Dim3 grid, Dim3 block,
               std::size_t out_words, unsigned shared_bytes = 0)
        : program(ptx::assemble("grid", source))
    {
        out = memory.allocate(4 * out_words);
        launch.grid = grid;
        launch.block = block;
        launch.sharedBytes = shared_bytes;
        launch.params.addU32(static_cast<std::uint32_t>(out));
    }

    RunResult
    run(const TraceOptions *opts = nullptr)
    {
        Executor executor(program, launch);
        return executor.run(memory, opts);
    }

    std::uint32_t
    at(std::size_t index) const
    {
        return memory.peekU32(out + 4 * index);
    }
};

TEST(ExecutorGrid, TwoDimensionalIdentity)
{
    // out[gid] = ctaid.y * 1000 + ctaid.x * 100 + tid.y * 10 + tid.x
    // with gid = ((cy*gx + cx) * block) + ty*bx + tx.
    GridKernel k(R"(
        ld.param.u32 $r1, [0]
        cvt.u32.u16 $r2, %ctaid.y
        mul.lo.u32 $r3, $r2, 0x000003e8
        cvt.u32.u16 $r4, %ctaid.x
        mul.lo.u32 $r5, $r4, 0x00000064
        add.u32 $r3, $r3, $r5
        cvt.u32.u16 $r6, %tid.y
        mul.lo.u32 $r7, $r6, 0x0000000a
        add.u32 $r3, $r3, $r7
        cvt.u32.u16 $r8, %tid.x
        add.u32 $r3, $r3, $r8
        // linear gid = ((cy*2 + cx) * 6) + ty*3 + tx
        cvt.u32.u16 $r9, %nctaid.x
        mul.lo.u32 $r10, $r2, $r9
        add.u32 $r10, $r10, $r4
        cvt.u32.u16 $r11, %ntid.x
        cvt.u32.u16 $r12, %ntid.y
        mul.lo.u32 $r13, $r11, $r12
        mul.lo.u32 $r10, $r10, $r13
        mul.lo.u32 $r14, $r6, $r11
        add.u32 $r10, $r10, $r14
        add.u32 $r10, $r10, $r8
        shl.u32 $r10, $r10, 0x00000002
        add.u32 $r10, $r1, $r10
        st.global.u32 [$r10], $r3
        retp
    )",
                 {2, 2, 1}, {3, 2, 1}, 24);
    ASSERT_EQ(k.run().status, RunStatus::Completed);

    for (unsigned cy = 0; cy < 2; ++cy) {
        for (unsigned cx = 0; cx < 2; ++cx) {
            for (unsigned ty = 0; ty < 2; ++ty) {
                for (unsigned tx = 0; tx < 3; ++tx) {
                    unsigned gid =
                        (cy * 2 + cx) * 6 + ty * 3 + tx;
                    EXPECT_EQ(k.at(gid),
                              cy * 1000 + cx * 100 + ty * 10 + tx)
                        << gid;
                }
            }
        }
    }
}

TEST(CtaRange, ConstructorsNormaliseEdgeCases)
{
    // Empty and inverted contiguous ranges select nothing.
    EXPECT_TRUE(CtaRange::contiguous(3, 3).ctas.empty());
    EXPECT_TRUE(CtaRange::contiguous(5, 3).ctas.empty());
    EXPECT_EQ(CtaRange::contiguous(1, 4).ctas,
              (std::vector<std::uint64_t>{1, 2, 3}));

    // of() sorts and deduplicates an arbitrary id list.
    EXPECT_TRUE(CtaRange::of({}).ctas.empty());
    EXPECT_EQ(CtaRange::of({4, 1, 4, 2, 1}).ctas,
              (std::vector<std::uint64_t>{1, 2, 4}));
}

TEST(ExecutorGrid, SliceSkipsEmptyAndOutOfGridRanges)
{
    // out[cta] = cta + 1, one thread per CTA: selected CTAs are easy
    // to tell apart from untouched (zero) slots.
    GridKernel k(R"(
        ld.param.u32 $r1, [0]
        cvt.u32.u16 $r2, %ctaid.x
        shl.u32 $r3, $r2, 0x00000002
        add.u32 $r3, $r1, $r3
        add.u32 $r4, $r2, 0x00000001
        st.global.u32 [$r3], $r4
        retp
    )",
                 {4, 1, 1}, {1, 1, 1}, 4);
    Executor executor(k.program, k.launch);

    // Out-of-grid ids are silently ignored; duplicates collapse.
    CtaSlice slice;
    slice.range = CtaRange::of({2, 99, 2});
    auto result = executor.run(k.memory, nullptr, nullptr, &slice);
    EXPECT_EQ(result.status, RunStatus::Completed);
    EXPECT_EQ(result.executedCtas, 1u);
    EXPECT_EQ(k.at(2), 3u);
    EXPECT_EQ(k.at(0), 0u);
    EXPECT_EQ(k.at(1), 0u);
    EXPECT_EQ(k.at(3), 0u);

    // An empty range runs no CTA at all.
    CtaSlice none;
    none.range = CtaRange::of({});
    auto empty = executor.run(k.memory, nullptr, nullptr, &none);
    EXPECT_EQ(empty.status, RunStatus::Completed);
    EXPECT_EQ(empty.executedCtas, 0u);
    EXPECT_EQ(empty.totalDynInstrs, 0u);
}

TEST(ExecutorGrid, SharedMemoryIsolatedPerCta)
{
    // Each CTA's thread 0 writes ctaid into shared; after a barrier,
    // every thread reads it back.  A stale value from another CTA
    // would break the per-CTA expectation.
    GridKernel k(R"(
        ld.param.u32 $r1, [0]
        cvt.u32.u16 $r2, %tid.x
        cvt.u32.u16 $r3, %ctaid.x
        set.eq.u32.u32 $p0|$o127, $r2, 0x00000000
        @$p0.ne st.shared.u32 [0], $r3
        bar.sync 0
        ld.shared.u32 $r4, [0]
        cvt.u32.u16 $r5, %ntid.x
        mul.lo.u32 $r6, $r3, $r5
        add.u32 $r6, $r6, $r2
        shl.u32 $r6, $r6, 0x00000002
        add.u32 $r6, $r1, $r6
        st.global.u32 [$r6], $r4
        retp
    )",
                 {4, 1, 1}, {4, 1, 1}, 16, 16);
    ASSERT_EQ(k.run().status, RunStatus::Completed);
    for (unsigned cta = 0; cta < 4; ++cta)
        for (unsigned t = 0; t < 4; ++t)
            EXPECT_EQ(k.at(cta * 4 + t), cta);
}

TEST(ExecutorGrid, BarrierPhasesOrderProducerConsumer)
{
    // Three barrier-separated phases: write tid, rotate left, rotate
    // left again -- result is a rotation by 2, which only holds if
    // each phase completes before the next starts.
    GridKernel k(R"(
        ld.param.u32 $r1, [0]
        cvt.u32.u16 $r2, %tid.x
        shl.u32 $r3, $r2, 0x00000002
        st.shared.u32 [$r3], $r2
        bar.sync 0
        add.u32 $r4, $r2, 0x00000001
        rem.u32 $r4, $r4, 0x00000008
        shl.u32 $r4, $r4, 0x00000002
        ld.shared.u32 $r5, [$r4]
        bar.sync 0
        st.shared.u32 [$r3], $r5
        bar.sync 0
        ld.shared.u32 $r6, [$r4]
        add.u32 $r7, $r1, $r3
        st.global.u32 [$r7], $r6
        retp
    )",
                 {1, 1, 1}, {8, 1, 1}, 8, 32);
    ASSERT_EQ(k.run().status, RunStatus::Completed);
    for (unsigned t = 0; t < 8; ++t)
        EXPECT_EQ(k.at(t), (t + 2) % 8);
}

TEST(ExecutorGrid, TraceSelectionSpansCtas)
{
    GridKernel k(R"(
        mov.u32 $r2, 0x00000001
        cvt.u32.u16 $r3, %ctaid.x
        retp
    )",
                 {3, 1, 1}, {2, 1, 1}, 8);
    TraceOptions opts;
    opts.traceThreads = {0, 3, 5};
    auto result = k.run(&opts);
    ASSERT_EQ(result.status, RunStatus::Completed);
    EXPECT_EQ(result.trace.dynTraces.size(), 3u);
    for (auto tid : {0u, 3u, 5u}) {
        const auto &trace = result.trace.dynTraces.at(tid);
        ASSERT_EQ(trace.size(), 3u);
        EXPECT_EQ(trace[0].destBits, 32u);
        EXPECT_EQ(trace[2].destBits, 0u); // retp
    }
    EXPECT_EQ(result.trace.dynTraces.count(1), 0u);
}

/** cvt semantics swept over representative (dst, src, raw) cases. */
struct CvtCase
{
    const char *mnemonic;
    std::uint32_t input;
    std::uint32_t expected;
};

class CvtSweep : public ::testing::TestWithParam<CvtCase>
{
};

TEST_P(CvtSweep, ConvertsAsSpecified)
{
    const CvtCase &c = GetParam();
    std::string source = "ld.param.u32 $r1, [0]\n"
                         "ld.param.u32 $r2, [4]\n";
    source += std::string(c.mnemonic) + " $r3, $r2\n";
    source += "st.global.u32 [$r1], $r3\nretp\n";

    GridKernel k(source, {1, 1, 1}, {1, 1, 1}, 4);
    k.launch.params.addU32(c.input);
    ASSERT_EQ(k.run().status, RunStatus::Completed);
    EXPECT_EQ(k.at(0), c.expected) << c.mnemonic << " of " << c.input;
}

constexpr std::uint32_t
f32bits(float v)
{
    return std::bit_cast<std::uint32_t>(v);
}

INSTANTIATE_TEST_SUITE_P(
    Conversions, CvtSweep,
    ::testing::Values(
        // Integer narrowing / widening.
        CvtCase{"cvt.u32.u16", 0x12345678u, 0x5678u},
        CvtCase{"cvt.u16.u32", 0x12345678u, 0x5678u},
        CvtCase{"cvt.s32.s16", 0x0000FFFFu, 0xFFFFFFFFu},
        CvtCase{"cvt.u32.s16", 0x0000FFFFu, 0xFFFFFFFFu},
        CvtCase{"cvt.s32.s32", 0xDEADBEEFu, 0xDEADBEEFu},
        // Int -> float.
        CvtCase{"cvt.f32.u32", 7u, f32bits(7.0f)},
        CvtCase{"cvt.f32.s32", 0xFFFFFFFBu, f32bits(-5.0f)},
        CvtCase{"cvt.f32.u16", 0x0001FFFFu, f32bits(65535.0f)},
        // Float -> int (truncation toward zero, saturation).
        CvtCase{"cvt.s32.f32", f32bits(-3.99f), 0xFFFFFFFDu},
        CvtCase{"cvt.u32.f32", f32bits(3.99f), 3u},
        CvtCase{"cvt.u32.f32", f32bits(-1.0f), 0u},
        CvtCase{"cvt.s32.f32", f32bits(1e20f), 0x7FFFFFFFu},
        // Float identity.
        CvtCase{"cvt.f32.f32", f32bits(1.25f), f32bits(1.25f)}));

} // namespace
} // namespace fsp
