/**
 * @file
 * Shard-merge determinism suite: splitting a campaign into N journaled
 * shards and re-folding them with mergeShardJournals() must reproduce
 * the single-process campaign *bit-for-bit* -- for every registered
 * kernel, at shard counts {1, 2, 4, 8} and worker counts {1, 4}, and
 * after a worker was killed mid-shard and resumed.  Also locks down
 * the merge's validation: shards from the wrong campaign, renumbered
 * shards, and incomplete shards are rejected with the path in the
 * error.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "apps/app.hh"
#include "faults/campaign_engine.hh"
#include "faults/fault_model.hh"
#include "faults/journal_merge.hh"
#include "faults/shard_plan.hh"
#include "util/json.hh"

namespace fsp {
namespace {

/** Weights chosen to expose any reordering of the double sums. */
std::vector<faults::WeightedSite>
weightSites(const std::vector<faults::FaultSite> &sites)
{
    std::vector<faults::WeightedSite> weighted;
    weighted.reserve(sites.size());
    for (std::size_t i = 0; i < sites.size(); ++i)
        weighted.push_back(
            {sites[i], 0.1 + 0.3 * static_cast<double>(i % 7)});
    return weighted;
}

/** Anatomy as its JSON rendering: a string-equality comparison covers
 *  every pattern tally and the per-instruction ranking at once. */
std::string
anatomyJson(const faults::SdcAnatomyProfile &anatomy)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    anatomy.writeJson(json);
    json.endObject();
    return out.str();
}

void
expectSameResult(const faults::CampaignResult &expected,
                 const faults::CampaignResult &actual)
{
    EXPECT_EQ(expected.runs, actual.runs);
    EXPECT_EQ(expected.dist.runs(), actual.dist.runs());
    for (faults::Outcome o :
         {faults::Outcome::Masked, faults::Outcome::SDC,
          faults::Outcome::Other}) {
        // Exact equality, not a tolerance: the merge folds the same
        // outcomes in the same global site order as the engine, so
        // the weighted double accumulation must match bit-for-bit.
        EXPECT_EQ(expected.dist.weightOf(o), actual.dist.weightOf(o))
            << "outcome " << faults::outcomeName(o);
    }
    EXPECT_EQ(anatomyJson(expected.anatomy), anatomyJson(actual.anatomy));
}

/** Per-shard journal paths under gtest's temp dir, pre-cleaned. */
std::vector<std::string>
shardPaths(const std::string &tag, std::uint32_t shards)
{
    std::string base = testing::TempDir() + "fsp_" + tag;
    std::vector<std::string> paths;
    for (std::uint32_t s = 0; s < shards; ++s) {
        paths.push_back(faults::shardJournalPath(base, s, shards));
        std::remove(paths.back().c_str());
    }
    return paths;
}

faults::CampaignOptions
shardOptions(const faults::ShardPlanEntry &entry,
             const std::string &path, unsigned workers)
{
    faults::CampaignOptions options;
    options.workers = workers;
    options.chunkSize = 7;
    options.journalPath = path;
    options.resume = true; // the prepared header is resumed, not recreated
    options.journalKey = entry.key;
    return options;
}

/** Run every shard of @p plan to completion and return the paths. */
std::vector<std::string>
runAllShards(analysis::KernelAnalysis &ka, const faults::ShardPlan &plan,
             const std::string &tag, unsigned workers,
             std::uint64_t modelHash)
{
    std::vector<std::string> paths =
        shardPaths(tag, static_cast<std::uint32_t>(plan.shards.size()));
    for (std::size_t s = 0; s < plan.shards.size(); ++s) {
        const faults::ShardPlanEntry &entry = plan.shards[s];
        faults::prepareShardJournal(paths[s], entry, modelHash);
        faults::CampaignEngine engine(
            ka.injector(), shardOptions(entry, paths[s], workers));
        engine.run(entry.sites);
    }
    return paths;
}

TEST(ShardPlanTest, ContiguousDisjointGapFreeCoverage)
{
    for (std::uint64_t sites : {1ull, 7ull, 60ull, 61ull}) {
        for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
            std::uint64_t covered = 0;
            for (std::uint32_t s = 0; s < shards; ++s) {
                std::uint64_t begin =
                    faults::shardBegin(s, shards, sites);
                std::uint64_t end =
                    faults::shardBegin(s + 1, shards, sites);
                EXPECT_EQ(begin, covered)
                    << sites << " sites, shard " << s << "/" << shards;
                EXPECT_LE(end - begin, (sites + shards - 1) / shards);
                covered = end;
            }
            EXPECT_EQ(covered, sites);
        }
    }
}

TEST(ShardPlanTest, ZeroShardsRejected)
{
    EXPECT_THROW(faults::planShards({"t", 1}, {}, 0),
                 std::invalid_argument);
}

TEST(ShardPlanTest, ShardKeysAreDistinctFromCampaignAndEachOther)
{
    faults::JournalKey key{"plan-suite", 7};
    faults::JournalKey a = faults::shardJournalKey(key, 0, 4);
    faults::JournalKey b = faults::shardJournalKey(key, 1, 4);
    faults::JournalKey c = faults::shardJournalKey(key, 1, 8);
    EXPECT_NE(a.tag, key.tag);
    EXPECT_NE(a.tag, b.tag);
    EXPECT_NE(b.tag, c.tag);
    EXPECT_EQ(a.seed, key.seed);
}

/**
 * The acceptance matrix: every registered kernel, shard counts
 * {1, 2, 4, 8}, engine worker counts {1, 4} -- each combination's
 * merged result must equal the single-process reference bit-for-bit.
 */
TEST(ShardMergeMatrixTest, EveryKernelEveryShardCountBitIdentical)
{
    const std::uint64_t model_hash =
        faults::defaultFaultModel()->identityHash();
    for (const apps::KernelSpec &spec : apps::allKernels()) {
        SCOPED_TRACE(spec.fullName());
        analysis::KernelAnalysis ka(spec, apps::Scale::Small);
        Prng prng(2026);
        std::vector<faults::WeightedSite> weighted =
            weightSites(ka.space().sampleSites(60, prng));
        faults::JournalKey key{"shard-merge:" + spec.fullName(), 2026};

        faults::CampaignEngine reference(ka.injector(), {});
        faults::CampaignResult expected = reference.run(weighted);

        for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
            faults::ShardPlan plan =
                faults::planShards(key, weighted, shards);
            ASSERT_EQ(plan.shards.size(), shards);
            for (unsigned workers : {1u, 4u}) {
                SCOPED_TRACE("shards=" + std::to_string(shards) +
                             " workers=" + std::to_string(workers));
                std::string tag = "matrix_" + spec.suite + "_" +
                                  std::to_string(shards) + "_" +
                                  std::to_string(workers);
                std::vector<std::string> paths = runAllShards(
                    ka, plan, tag, workers, model_hash);

                faults::MergeReport report = faults::mergeShardJournals(
                    key, weighted, model_hash, paths);
                EXPECT_TRUE(report.complete);
                EXPECT_EQ(report.sitesDone, weighted.size());
                EXPECT_EQ(report.campaignSites, weighted.size());
                expectSameResult(expected, report.result);
            }
        }
    }
}

/** Fixture for the single-kernel validation and recovery cases. */
class ShardMergeTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        const apps::KernelSpec *spec = apps::findKernel("PathFinder/K1");
        ASSERT_NE(spec, nullptr);
        ka_.emplace(*spec, apps::Scale::Small);
        Prng prng(2026);
        weighted_ = weightSites(ka_->space().sampleSites(60, prng));
        key_ = {"shard-merge-suite", 2026};
        model_hash_ = faults::defaultFaultModel()->identityHash();
    }

    std::optional<analysis::KernelAnalysis> ka_;
    std::vector<faults::WeightedSite> weighted_;
    faults::JournalKey key_;
    std::uint64_t model_hash_ = 0;
};

TEST_F(ShardMergeTest, KilledShardResumesAndMergesBitIdentically)
{
    faults::CampaignEngine reference(ka_->injector(), {});
    faults::CampaignResult expected = reference.run(weighted_);

    const std::uint32_t shards = 4;
    faults::ShardPlan plan = faults::planShards(key_, weighted_, shards);
    std::vector<std::string> paths = shardPaths("killed", shards);

    for (std::uint32_t s = 0; s < shards; ++s) {
        const faults::ShardPlanEntry &entry = plan.shards[s];
        faults::prepareShardJournal(paths[s], entry, model_hash_);
        faults::CampaignOptions options =
            shardOptions(entry, paths[s], 2);
        if (s == 1) {
            // Kill shard 1 mid-run: CampaignAborted is thrown from a
            // fold point after that chunk's records were committed --
            // the state a SIGKILL between chunk commits leaves.
            options.abortAfterSites = entry.sites.size() / 2;
            faults::CampaignEngine killed(ka_->injector(), options);
            EXPECT_THROW(killed.run(entry.sites),
                         faults::CampaignAborted);
            continue;
        }
        faults::CampaignEngine engine(ka_->injector(), options);
        engine.run(entry.sites);
    }

    // A strict merge refuses the incomplete shard, naming it.
    try {
        faults::mergeShardJournals(key_, weighted_, model_hash_, paths);
        FAIL() << "incomplete shard accepted";
    } catch (const faults::JournalError &error) {
        EXPECT_NE(std::string(error.what()).find(paths[1]),
                  std::string::npos)
            << error.what();
    }

    // A relaxed merge folds only the classified sites.
    faults::MergeOptions relaxed;
    relaxed.requireComplete = false;
    faults::MergeReport partial = faults::mergeShardJournals(
        key_, weighted_, model_hash_, paths, relaxed);
    EXPECT_FALSE(partial.complete);
    EXPECT_LT(partial.sitesDone, weighted_.size());

    // Resume the dead shard exactly as a respawned worker would:
    // prepare validates the surviving header, the engine replays the
    // committed chunks and injects the rest.
    const faults::ShardPlanEntry &entry = plan.shards[1];
    faults::prepareShardJournal(paths[1], entry, model_hash_);
    faults::CampaignEngine resumed(ka_->injector(),
                                   shardOptions(entry, paths[1], 2));
    resumed.run(entry.sites);
    EXPECT_GT(resumed.lastStats().replayedSites, 0u);

    faults::MergeReport report =
        faults::mergeShardJournals(key_, weighted_, model_hash_, paths);
    EXPECT_TRUE(report.complete);
    expectSameResult(expected, report.result);
}

TEST_F(ShardMergeTest, MergedJournalIsResumableAsSingleCampaign)
{
    const std::uint32_t shards = 2;
    faults::ShardPlan plan = faults::planShards(key_, weighted_, shards);
    std::vector<std::string> paths =
        runAllShards(*ka_, plan, "emit", 1, model_hash_);

    std::string merged_path = testing::TempDir() + "fsp_emit_merged.fspj";
    std::remove(merged_path.c_str());
    faults::MergeOptions options;
    options.mergedJournalPath = merged_path;
    faults::MergeReport report = faults::mergeShardJournals(
        key_, weighted_, model_hash_, paths, options);
    ASSERT_TRUE(report.complete);

    // The emitted journal carries the UNSHARDED campaign identity, so
    // a plain journaled engine resumes it and replays every site.
    faults::CampaignOptions resume_options;
    resume_options.workers = 2;
    resume_options.chunkSize = 7;
    resume_options.journalPath = merged_path;
    resume_options.journalKey = key_;
    resume_options.resume = true;
    faults::CampaignEngine engine(ka_->injector(), resume_options);
    faults::CampaignResult replayed = engine.run(weighted_);
    EXPECT_EQ(engine.lastStats().injectedSites, 0u);
    EXPECT_EQ(engine.lastStats().replayedSites, weighted_.size());
    expectSameResult(report.result, replayed);
}

TEST_F(ShardMergeTest, RenumberedShardRejected)
{
    const std::uint32_t shards = 2;
    faults::ShardPlan plan = faults::planShards(key_, weighted_, shards);
    std::vector<std::string> paths =
        runAllShards(*ka_, plan, "renumber", 1, model_hash_);

    // Presenting shard 0's journal in shard 1's slot is a renumbering:
    // its extension says (index 0), the plan expects (index 1).
    std::vector<std::string> swapped = {paths[0], paths[0]};
    try {
        faults::mergeShardJournals(key_, weighted_, model_hash_,
                                   swapped);
        FAIL() << "renumbered shard accepted";
    } catch (const faults::JournalError &error) {
        EXPECT_NE(std::string(error.what()).find(paths[0]),
                  std::string::npos)
            << error.what();
    }
}

TEST_F(ShardMergeTest, ShardFromDifferentCampaignRejected)
{
    const std::uint32_t shards = 2;
    faults::ShardPlan plan = faults::planShards(key_, weighted_, shards);
    std::vector<std::string> paths =
        runAllShards(*ka_, plan, "foreign", 1, model_hash_);

    // Same site list, different campaign identity (the seed): the
    // shard header hash no longer matches the plan's.
    faults::JournalKey other = key_;
    other.seed = 9;
    EXPECT_THROW(faults::mergeShardJournals(other, weighted_,
                                            model_hash_, paths),
                 faults::JournalError);
}

TEST_F(ShardMergeTest, WrongShardCountRejected)
{
    const std::uint32_t shards = 4;
    faults::ShardPlan plan = faults::planShards(key_, weighted_, shards);
    std::vector<std::string> paths =
        runAllShards(*ka_, plan, "count", 1, model_hash_);

    // Re-folding the same files under a 2-shard plan must fail: the
    // extensions say count 4 and the sub-list hashes differ.
    std::vector<std::string> two = {paths[0], paths[1]};
    EXPECT_THROW(
        faults::mergeShardJournals(key_, weighted_, model_hash_, two),
        faults::JournalError);
}

} // namespace
} // namespace fsp
