/**
 * @file
 * Golden-trace differential suite for the pre-decoded dispatch engine.
 *
 * The decoded engine (ExecEngine::Decoded) is the fast path every
 * campaign runs on; the reference engine (ExecEngine::Reference) is
 * the original per-step instruction walk kept as the oracle.  Their
 * contract is bit-identical observable behaviour: for every registered
 * kernel, fault-free runs must produce identical statuses, dynamic
 * instruction counts, per-thread profiles, full dynamic traces, CTA
 * footprints and final memory images -- and injection runs must agree
 * on the fault's application and on every corrupted output byte.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "apps/app.hh"
#include "faults/fault_space.hh"
#include "sim/executor.hh"
#include "sim/section.hh"
#include "util/logging.hh"
#include "util/prng.hh"

namespace fsp {
namespace {

using sim::ExecEngine;
using sim::Executor;
using sim::GlobalMemory;
using sim::RunResult;
using sim::TraceOptions;

/** Full allocated image of a memory arena. */
std::vector<std::uint8_t>
imageOf(const GlobalMemory &mem)
{
    return mem.snapshot(GlobalMemory::kBaseAddr, mem.allocatedBytes());
}

/** Assert two runs are observationally identical, field by field. */
void
expectSameRun(const RunResult &dec, const RunResult &ref)
{
    EXPECT_EQ(dec.status, ref.status);
    EXPECT_EQ(dec.totalDynInstrs, ref.totalDynInstrs);
    EXPECT_EQ(dec.executedCtas, ref.executedCtas);
    EXPECT_EQ(dec.diagnostic, ref.diagnostic);

    ASSERT_EQ(dec.trace.profiles.size(), ref.trace.profiles.size());
    for (std::size_t t = 0; t < ref.trace.profiles.size(); ++t) {
        EXPECT_EQ(dec.trace.profiles[t].iCnt, ref.trace.profiles[t].iCnt)
            << "thread " << t;
        EXPECT_EQ(dec.trace.profiles[t].faultBits,
                  ref.trace.profiles[t].faultBits)
            << "thread " << t;
    }

    ASSERT_EQ(dec.trace.dynTraces.size(), ref.trace.dynTraces.size());
    for (const auto &[tid, ref_trace] : ref.trace.dynTraces) {
        auto it = dec.trace.dynTraces.find(tid);
        ASSERT_NE(it, dec.trace.dynTraces.end()) << "thread " << tid;
        const auto &dec_trace = it->second;
        ASSERT_EQ(dec_trace.size(), ref_trace.size()) << "thread " << tid;
        for (std::size_t i = 0; i < ref_trace.size(); ++i) {
            EXPECT_EQ(dec_trace[i].staticIndex, ref_trace[i].staticIndex)
                << "thread " << tid << " step " << i;
            EXPECT_EQ(dec_trace[i].destBits, ref_trace[i].destBits)
                << "thread " << tid << " step " << i;
        }
    }

    ASSERT_EQ(dec.trace.ctaFootprints.size(),
              ref.trace.ctaFootprints.size());
    for (std::size_t c = 0; c < ref.trace.ctaFootprints.size(); ++c) {
        EXPECT_EQ(dec.trace.ctaFootprints[c].reads,
                  ref.trace.ctaFootprints[c].reads)
            << "CTA " << c;
        EXPECT_EQ(dec.trace.ctaFootprints[c].writes,
                  ref.trace.ctaFootprints[c].writes)
            << "CTA " << c;
    }
}

/**
 * Every registered kernel, fault-free: both engines with full tracing
 * (profiles, footprints, and dynamic traces of the first, a middle and
 * the last thread) must match record for record, and the final global
 * memory images must be byte-identical.
 */
TEST(DecodedExecutor, GoldenTraceEveryKernel)
{
    fsp::setVerboseLogging(false);
    for (const apps::KernelSpec &spec : apps::allKernels()) {
        SCOPED_TRACE(spec.fullName());
        apps::KernelSetup setup = spec.setup(apps::Scale::Small, 42);

        const std::uint64_t threads =
            setup.launch.grid.count() * setup.launch.block.count();
        TraceOptions opts;
        opts.perThreadProfiles = true;
        opts.ctaFootprints = true;
        opts.traceThreads = {0, threads / 2, threads - 1};

        Executor decoded(setup.program, setup.launch,
                         ExecEngine::Decoded);
        Executor reference(setup.program, setup.launch,
                           ExecEngine::Reference);

        GlobalMemory dec_mem = setup.memory;
        GlobalMemory ref_mem = setup.memory;
        RunResult dec = decoded.run(dec_mem, &opts);
        RunResult ref = reference.run(ref_mem, &opts);

        expectSameRun(dec, ref);
        EXPECT_EQ(imageOf(dec_mem), imageOf(ref_mem));
    }
}

/**
 * Every registered kernel, under injection: a uniform sample of fault
 * sites run through both engines must agree on the terminal status,
 * on whether/where the fault applied, on the instruction count, and on
 * every byte of the (possibly corrupted) final memory image.
 */
TEST(DecodedExecutor, FaultInjectionParityEveryKernel)
{
    fsp::setVerboseLogging(false);
    for (const apps::KernelSpec &spec : apps::allKernels()) {
        SCOPED_TRACE(spec.fullName());
        apps::KernelSetup setup = spec.setup(apps::Scale::Small, 42);

        Executor decoded(setup.program, setup.launch,
                         ExecEngine::Decoded);
        Executor reference(setup.program, setup.launch,
                           ExecEngine::Reference);

        faults::FaultSpace space(decoded, setup.memory);
        Prng prng(99);
        auto sites = space.sampleSites(12, prng);

        for (const faults::FaultSite &site : sites) {
            SCOPED_TRACE("thread " + std::to_string(site.thread) +
                         " dyn " + std::to_string(site.dynIndex) +
                         " bit " + std::to_string(site.bit));
            sim::FaultPlan dec_plan = site.toPlan();
            sim::FaultPlan ref_plan = site.toPlan();

            GlobalMemory dec_mem = setup.memory;
            GlobalMemory ref_mem = setup.memory;
            RunResult dec = decoded.run(dec_mem, nullptr, &dec_plan);
            RunResult ref = reference.run(ref_mem, nullptr, &ref_plan);

            EXPECT_EQ(dec.status, ref.status);
            EXPECT_EQ(dec.totalDynInstrs, ref.totalDynInstrs);
            EXPECT_EQ(dec.diagnostic, ref.diagnostic);
            EXPECT_EQ(dec_plan.applied, ref_plan.applied);
            EXPECT_EQ(dec_plan.appliedStatic, ref_plan.appliedStatic);
            EXPECT_EQ(imageOf(dec_mem), imageOf(ref_mem));
        }
    }
}

/**
 * recordValues parity: the guard-outcome flags and post-writeback
 * destination values that feed trace-section hashing (sim/section.hh)
 * must agree record for record between the engines, and the resulting
 * section hashes -- the section cache's entire notion of identity --
 * must be bit-identical.
 */
TEST(DecodedExecutor, RecordValuesParityEveryKernel)
{
    fsp::setVerboseLogging(false);
    for (const apps::KernelSpec &spec : apps::allKernels()) {
        SCOPED_TRACE(spec.fullName());
        apps::KernelSetup setup = spec.setup(apps::Scale::Small, 42);

        const std::uint64_t threads =
            setup.launch.grid.count() * setup.launch.block.count();
        TraceOptions opts;
        opts.recordValues = true;
        opts.traceThreads = {0, threads / 2, threads - 1};

        Executor decoded(setup.program, setup.launch,
                         ExecEngine::Decoded);
        Executor reference(setup.program, setup.launch,
                           ExecEngine::Reference);
        GlobalMemory dec_mem = setup.memory;
        GlobalMemory ref_mem = setup.memory;
        RunResult dec = decoded.run(dec_mem, &opts);
        RunResult ref = reference.run(ref_mem, &opts);

        ASSERT_EQ(dec.trace.dynTraces.size(), ref.trace.dynTraces.size());
        for (const auto &[tid, ref_trace] : ref.trace.dynTraces) {
            SCOPED_TRACE(tid);
            auto it = dec.trace.dynTraces.find(tid);
            ASSERT_NE(it, dec.trace.dynTraces.end());
            const auto &dec_trace = it->second;
            ASSERT_EQ(dec_trace.size(), ref_trace.size());
            for (std::size_t i = 0; i < ref_trace.size(); ++i) {
                SCOPED_TRACE(i);
                EXPECT_EQ(dec_trace[i], ref_trace[i]);
            }

            sim::SectionedTrace dec_sections = sim::splitTrace(
                setup.program.instructions(), dec_trace);
            sim::SectionedTrace ref_sections = sim::splitTrace(
                setup.program.instructions(), ref_trace);
            ASSERT_EQ(dec_sections.sections.size(),
                      ref_sections.sections.size());
            for (std::size_t s = 0; s < ref_sections.sections.size();
                 ++s) {
                EXPECT_EQ(dec_sections.sections[s].contentHash,
                          ref_sections.sections[s].contentHash);
                EXPECT_EQ(dec_sections.sections[s].prefixStateHash,
                          ref_sections.sections[s].prefixStateHash);
                EXPECT_EQ(dec_sections.sections[s].tailContentHash,
                          ref_sections.sections[s].tailContentHash);
            }
        }
    }
}

/**
 * stepCta parity: advancing one CTA to an instruction watermark must
 * leave both engines in bit-identical machine state (registers, CCs,
 * pcs, instruction counts, fault-bit tallies, shared memory), and a
 * snapshot captured at the watermark must survive a capture/restore
 * roundtrip and resume to the same terminal state on either engine.
 */
TEST(DecodedExecutor, StepWatermarkAndSnapshotParity)
{
    fsp::setVerboseLogging(false);
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    ASSERT_NE(spec, nullptr);
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);

    Executor decoded(setup.program, setup.launch, ExecEngine::Decoded);
    Executor reference(setup.program, setup.launch,
                       ExecEngine::Reference);

    GlobalMemory dec_mem = setup.memory;
    GlobalMemory ref_mem = setup.memory;
    sim::MachineState dec_state = decoded.initialCtaState(0);
    sim::MachineState ref_state = reference.initialCtaState(0);

    auto dec_status = decoded.stepCta(dec_state, dec_mem, 500);
    auto ref_status = reference.stepCta(ref_state, ref_mem, 500);
    ASSERT_EQ(dec_status, sim::CtaStepStatus::Watermark);
    ASSERT_EQ(ref_status, sim::CtaStepStatus::Watermark);

    ASSERT_EQ(dec_state.numThreads(), ref_state.numThreads());
    EXPECT_EQ(dec_state.executedDynInstrs, ref_state.executedDynInstrs);
    for (std::uint32_t t = 0; t < ref_state.numThreads(); ++t) {
        SCOPED_TRACE(t);
        EXPECT_EQ(dec_state.pc(t), ref_state.pc(t));
        EXPECT_EQ(dec_state.icnt(t), ref_state.icnt(t));
        EXPECT_EQ(dec_state.faultBits(t), ref_state.faultBits(t));
        for (std::uint32_t r = 0; r < ref_state.numRegs(); ++r)
            EXPECT_EQ(dec_state.regs(t)[r], ref_state.regs(t)[r]);
        for (std::uint32_t p = 0; p < sim::kNumPredRegs; ++p)
            EXPECT_EQ(dec_state.ccs(t)[p], ref_state.ccs(t)[p]);
    }

    // Snapshot roundtrip: capture at the watermark, restore, and
    // confirm the restored copy resumes to the same end state as the
    // original on both engines.
    sim::StateSnapshot snap;
    snap.capture(dec_state);
    sim::MachineState restored;
    snap.restoreInto(restored);

    GlobalMemory resumed_mem = dec_mem;
    auto end_direct = decoded.stepCta(dec_state, dec_mem);
    auto end_resumed = decoded.stepCta(restored, resumed_mem);
    EXPECT_EQ(end_direct, sim::CtaStepStatus::Retired);
    EXPECT_EQ(end_resumed, sim::CtaStepStatus::Retired);
    EXPECT_EQ(dec_state.executedDynInstrs, restored.executedDynInstrs);
    EXPECT_EQ(imageOf(dec_mem), imageOf(resumed_mem));

    GlobalMemory ref_end_mem = ref_mem;
    auto ref_end = reference.stepCta(ref_state, ref_end_mem);
    EXPECT_EQ(ref_end, sim::CtaStepStatus::Retired);
    EXPECT_EQ(ref_state.executedDynInstrs, dec_state.executedDynInstrs);
    EXPECT_EQ(imageOf(ref_end_mem), imageOf(dec_mem));
}

/** FSP_EXEC_ENGINE overrides the constructor's engine selection. */
TEST(DecodedExecutor, EngineEnvOverride)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    ASSERT_NE(spec, nullptr);
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);

    ::setenv("FSP_EXEC_ENGINE", "reference", 1);
    Executor forced_ref(setup.program, setup.launch,
                        ExecEngine::Decoded);
    EXPECT_EQ(forced_ref.engine(), ExecEngine::Reference);

    ::setenv("FSP_EXEC_ENGINE", "decoded", 1);
    Executor forced_dec(setup.program, setup.launch,
                        ExecEngine::Reference);
    EXPECT_EQ(forced_dec.engine(), ExecEngine::Decoded);

    ::setenv("FSP_EXEC_ENGINE", "bogus", 1);
    Executor fallback(setup.program, setup.launch,
                      ExecEngine::Reference);
    EXPECT_EQ(fallback.engine(), ExecEngine::Reference);
    ::unsetenv("FSP_EXEC_ENGINE");
}

} // namespace
} // namespace fsp
