/**
 * @file
 * Protocol fuzz harness for the campaign service daemon: truncated,
 * oversized, garbage, and randomly mutated frames must never crash
 * the daemon or wedge its poll loop -- after every hostile
 * connection, a fresh well-formed client still gets its Pong.
 *
 * The iteration budget is bounded and tunable via FSP_FUZZ_ITERS
 * (the CI long-fuzz job raises it); every case derives from a seeded
 * Prng, so a failure reproduces from the logged seed.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "service/client.hh"
#include "service/endpoint.hh"
#include "service/protocol.hh"
#include "service/server.hh"
#include "util/env.hh"
#include "util/prng.hh"

namespace fsp {
namespace {

using service::CampaignSpec;
using service::MsgType;
using service::WireWriter;

/** Best-effort raw send; hostile peers don't care about errors. */
void
sendBytes(int fd, const std::vector<std::uint8_t> &bytes)
{
    try {
        service::writeAll(fd, bytes.data(), bytes.size());
    } catch (const std::exception &) {
    }
}

std::vector<std::uint8_t>
randomBytes(Prng &prng, std::size_t size)
{
    std::vector<std::uint8_t> bytes(size);
    for (std::uint8_t &b : bytes)
        b = static_cast<std::uint8_t>(prng.below(256));
    return bytes;
}

/** A syntactically valid Submit frame to mutate. */
std::vector<std::uint8_t>
validSubmitFrame()
{
    CampaignSpec spec;
    spec.kernel = "GEMM/K1";
    spec.shards = 2;
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(MsgType::Submit));
    writer.str("/tmp/fsp-fuzz-never-runs");
    service::encodeSpec(writer, spec);
    return service::frame(writer.payload());
}

class ServiceFuzzTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        service::ServeOptions options;
        options.socketPath = testing::TempDir() + "fsp_service_fuzz_" +
                             std::to_string(::getpid()) + ".sock";
        options.pollMillis = 10;
        socket_path_ = options.socketPath;
        daemon_.emplace(options);
        daemon_->start();
        thread_ = std::thread([this] { daemon_->run(); });
    }

    void
    TearDown() override
    {
        daemon_->requestStop();
        thread_.join();
        daemon_.reset();
    }

    /** The liveness probe: a fresh, well-formed client round-trip. */
    void
    expectAlive(const std::string &after)
    {
        service::ServiceClient client =
            service::ServiceClient::connectUnixSocket(socket_path_);
        EXPECT_NO_THROW(client.ping()) << "daemon wedged after " << after;
    }

    std::string socket_path_;
    std::optional<service::ServeDaemon> daemon_;
    std::thread thread_;
};

TEST_F(ServiceFuzzTest, TruncatedFrameDoesNotCrashDaemon)
{
    int fd = service::connectUnix(socket_path_);
    // Announce 100 bytes, deliver 3, hang up.
    std::vector<std::uint8_t> bytes = {100, 0, 0, 0, 1, 2, 3};
    sendBytes(fd, bytes);
    ::close(fd);
    expectAlive("a truncated frame");
}

TEST_F(ServiceFuzzTest, OversizedAnnouncedLengthIsRejected)
{
    int fd = service::connectUnix(socket_path_);
    // 512 MiB announced payload: the daemon must drop the connection
    // without buffering toward it.
    std::vector<std::uint8_t> bytes = {0x00, 0x00, 0x00, 0x20};
    sendBytes(fd, bytes);
    ::close(fd);
    expectAlive("an oversized announced length");

    std::string metrics =
        service::ServiceClient::connectUnixSocket(socket_path_)
            .metricsText();
    EXPECT_NE(metrics.find("fsp_serve_protocol_errors_total"),
              std::string::npos);
}

TEST_F(ServiceFuzzTest, GarbageStreamsDoNotCrashDaemon)
{
    const std::uint64_t iters = envU64("FSP_FUZZ_ITERS", 12);
    for (std::uint64_t i = 0; i < iters; ++i) {
        Prng prng(0xf00d + i);
        SCOPED_TRACE("iteration " + std::to_string(i));
        int fd = service::connectUnix(socket_path_);
        sendBytes(fd, randomBytes(prng, 1 + prng.below(512)));
        ::close(fd);
        expectAlive("garbage stream " + std::to_string(i));
    }
}

TEST_F(ServiceFuzzTest, MutatedSubmitFramesDoNotCrashDaemon)
{
    const std::uint64_t iters = envU64("FSP_FUZZ_ITERS", 12);
    const std::vector<std::uint8_t> valid = validSubmitFrame();
    for (std::uint64_t i = 0; i < iters; ++i) {
        Prng prng(0xbeef + i);
        SCOPED_TRACE("iteration " + std::to_string(i));
        std::vector<std::uint8_t> frame = valid;
        // Corrupt a handful of bytes past the length prefix, then
        // optionally truncate -- decode errors, not framing errors.
        for (int flips = 0; flips < 4; ++flips) {
            std::size_t at = 4 + prng.below(frame.size() - 4);
            frame[at] = static_cast<std::uint8_t>(prng.below(256));
        }
        if (prng.below(2) == 0)
            frame.resize(4 + prng.below(frame.size() - 4));
        int fd = service::connectUnix(socket_path_);
        sendBytes(fd, frame);
        ::close(fd);
        expectAlive("mutated submit " + std::to_string(i));
    }
}

TEST_F(ServiceFuzzTest, UnknownMessageTypeGetsErrorReplyNotCrash)
{
    WireWriter writer;
    writer.u8(0x7f); // no such request
    std::vector<std::uint8_t> framed = service::frame(writer.payload());
    int fd = service::connectUnix(socket_path_);
    sendBytes(fd, framed);
    ::close(fd);
    expectAlive("an unknown message type");
}

TEST_F(ServiceFuzzTest, SlowDribbledFrameStillParses)
{
    // A legitimate Ping delivered one byte at a time across the poll
    // ticks must still be answered.
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(MsgType::Ping));
    std::vector<std::uint8_t> framed = service::frame(writer.payload());

    int fd = service::connectUnix(socket_path_);
    for (std::uint8_t byte : framed) {
        sendBytes(fd, {byte});
        ::usleep(2000);
    }
    std::uint8_t reply[16];
    ssize_t got = ::read(fd, reply, sizeof(reply));
    ::close(fd);
    ASSERT_GE(got, 5);
    EXPECT_EQ(reply[4], static_cast<std::uint8_t>(MsgType::Pong));
}

} // namespace
} // namespace fsp
