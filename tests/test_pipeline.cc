/**
 * @file
 * End-to-end properties of the progressive pruning pipeline, swept
 * across every registered workload kernel (TEST_P): stage counts are
 * monotonically non-increasing, extrapolation weight is conserved in
 * expectation, sites are valid against the golden traces, the pipeline
 * is deterministic per seed, and the weighted estimate of selected
 * kernels agrees with a random baseline.
 */

#include <gtest/gtest.h>

#include <map>

#include "analysis/analyzer.hh"
#include "apps/app.hh"

namespace fsp {
namespace {

std::vector<std::string>
kernelNames()
{
    std::vector<std::string> names;
    for (const auto &spec : apps::allKernels())
        names.push_back(spec.fullName());
    return names;
}

class PipelineSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PipelineSweep, StageCountsMonotonicAndWeightsConserved)
{
    const apps::KernelSpec *spec = apps::findKernel(GetParam());
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);

    pruning::PruningConfig config;
    config.seed = 11;
    auto pruned = ka.prune(config);

    const auto &counts = pruned.counts;
    EXPECT_EQ(counts.exhaustive, ka.space().totalSites());
    EXPECT_LE(counts.afterThread, counts.exhaustive);
    EXPECT_LE(counts.afterInstruction, counts.afterThread);
    EXPECT_LE(counts.afterLoop, counts.afterInstruction);
    EXPECT_LE(counts.afterBit, counts.afterLoop);
    EXPECT_GT(counts.afterBit, 0u);

    // Thread-wise pruning must collapse SIMT siblings.  Tiny kernels
    // (LUD tiles) can legitimately have every thread distinct; larger
    // launches must shrink.
    if (ka.space().threadCount() > 64) {
        EXPECT_LT(pruned.grouping.representativeCount(),
                  ka.space().threadCount() / 2);
    } else {
        EXPECT_LE(pruned.grouping.representativeCount(),
                  ka.space().threadCount());
    }

    // Total represented weight equals the exhaustive site count (the
    // loop stage resamples but rescales, so equality is exact as long
    // as sampled iterations carry identical site counts; allow a
    // relative tolerance for ragged final iterations).
    double represented = pruned.totalRepresentedWeight();
    double exhaustive = static_cast<double>(counts.exhaustive);
    EXPECT_NEAR(represented / exhaustive, 1.0, 0.05) << GetParam();

    // Every site must carry a positive weight and a valid bit index.
    for (const auto &site : pruned.sites) {
        EXPECT_GT(site.weight, 0.0);
        EXPECT_LT(site.site.bit, 64u);
    }
}

TEST_P(PipelineSweep, DeterministicPerSeed)
{
    const apps::KernelSpec *spec = apps::findKernel(GetParam());
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);

    pruning::PruningConfig config;
    config.seed = 17;
    auto a = ka.prune(config);
    auto b = ka.prune(config);
    ASSERT_EQ(a.sites.size(), b.sites.size());
    for (std::size_t i = 0; i < a.sites.size(); ++i) {
        EXPECT_TRUE(a.sites[i].site == b.sites[i].site);
        EXPECT_DOUBLE_EQ(a.sites[i].weight, b.sites[i].weight);
    }
    EXPECT_DOUBLE_EQ(a.assumedMaskedWeight, b.assumedMaskedWeight);
}

TEST_P(PipelineSweep, SitesBelongToRepresentativeThreads)
{
    const apps::KernelSpec *spec = apps::findKernel(GetParam());
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);

    auto pruned = ka.prune({});
    std::map<std::uint64_t, const pruning::ThreadPlan *> plan_of;
    for (const auto &plan : pruned.plans)
        plan_of[plan.thread] = &plan;

    for (const auto &site : pruned.sites) {
        auto it = plan_of.find(site.site.thread);
        ASSERT_NE(it, plan_of.end());
        const auto &plan = *it->second;
        ASSERT_LT(site.site.dynIndex, plan.trace.size());
        // The site's bit must fit the instruction's dest width and the
        // instruction must still be live.
        EXPECT_LT(site.site.bit,
                  plan.trace[site.site.dynIndex].destBits);
        EXPECT_GT(plan.weight[site.site.dynIndex], 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, PipelineSweep,
                         ::testing::ValuesIn(kernelNames()),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name) {
                                 if (c == '/' || c == '-')
                                     c = '_';
                             }
                             return name;
                         });

TEST(Pipeline, DisabledStagesAreSkipped)
{
    analysis::KernelAnalysis ka(*apps::findKernel("PathFinder/K1"),
                                apps::Scale::Small);
    pruning::PruningConfig config;
    config.instruction.enabled = false;
    config.loop.iterations = 0;
    config.bit.samples = 0;
    config.bit.predZeroFlagOnly = false;
    auto pruned = ka.prune(config);

    EXPECT_EQ(pruned.counts.afterInstruction, pruned.counts.afterThread);
    EXPECT_EQ(pruned.counts.afterLoop, pruned.counts.afterThread);
    EXPECT_EQ(pruned.counts.afterBit, pruned.counts.afterThread);
    EXPECT_DOUBLE_EQ(pruned.assumedMaskedWeight, 0.0);
    // With no sampling at all, weight conservation is exact.
    EXPECT_DOUBLE_EQ(pruned.totalRepresentedWeight(),
                     static_cast<double>(pruned.counts.exhaustive));
}

TEST(Pipeline, InstructionStagePrunesPathfinder)
{
    // PathFinder is the paper's common-block showcase (Fig. 5).
    analysis::KernelAnalysis ka(*apps::findKernel("PathFinder/K1"),
                                apps::Scale::Small);
    pruning::PruningConfig config;
    auto pruned = ka.prune(config);
    EXPECT_TRUE(pruned.instrStats.applicable);
    EXPECT_GT(pruned.instrStats.prunedFraction(), 0.5);
    EXPECT_LT(pruned.counts.afterInstruction, pruned.counts.afterThread);
}

TEST(Pipeline, SingleRepresentativeKernelsSkipInstructionStage)
{
    // GEMM/SYRK/2MM/MVT have one uniform thread group (paper Fig. 10c).
    for (const char *name : {"GEMM/K1", "SYRK/K1", "2MM/K1", "MVT/K1"}) {
        analysis::KernelAnalysis ka(*apps::findKernel(name),
                                    apps::Scale::Small);
        auto pruned = ka.prune({});
        EXPECT_EQ(pruned.grouping.representativeCount(), 1u) << name;
        EXPECT_FALSE(pruned.instrStats.applicable) << name;
        EXPECT_EQ(pruned.counts.afterInstruction,
                  pruned.counts.afterThread)
            << name;
    }
}

TEST(Pipeline, LoopStageDominatesForMvt)
{
    analysis::KernelAnalysis ka(*apps::findKernel("MVT/K1"),
                                apps::Scale::Small);
    pruning::PruningConfig config;
    config.loop.iterations = 8;
    auto pruned = ka.prune(config);
    // 64-iteration loop sampled down to 8: better than 5x reduction.
    EXPECT_LT(pruned.counts.afterLoop,
              pruned.counts.afterInstruction / 5);
    EXPECT_EQ(pruned.loopStats.loopsSampled, 1u);
    EXPECT_EQ(pruned.loopStats.iterationsKept, 8u);
}

TEST(Pipeline, EstimateTracksBaselineForSmallKernels)
{
    // The paper's headline claim at small scale: the pruned weighted
    // estimate reproduces the random-sampling profile.  Checked on two
    // cheap kernels with a generous (but meaningful) tolerance.
    for (const char *name : {"Gaussian/K1", "LUD/K46"}) {
        analysis::KernelAnalysis ka(*apps::findKernel(name),
                                    apps::Scale::Small);
        auto pruned = ka.prune({});
        auto estimate = ka.runPrunedCampaign(pruned);
        auto baseline = ka.runBaseline(1500, 7);

        for (auto outcome : {faults::Outcome::Masked,
                             faults::Outcome::SDC,
                             faults::Outcome::Other}) {
            EXPECT_NEAR(estimate.fraction(outcome),
                        baseline.dist.fraction(outcome), 0.10)
                << name << " " << faults::outcomeName(outcome);
        }
    }
}

TEST(Analysis, FacadeAccessorsAreConsistent)
{
    const apps::KernelSpec *spec = apps::findKernel("LUD/K46");
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);
    EXPECT_EQ(&ka.spec(), spec);
    EXPECT_EQ(ka.program().name(), "lud_diagonal");
    EXPECT_EQ(ka.executor().config().block.count(),
              ka.space().threadCount());
    EXPECT_GT(ka.injector().goldenMaxICnt(), 0u);
}

} // namespace
} // namespace fsp
