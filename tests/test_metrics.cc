/**
 * @file
 * Observability suite: the util/metrics primitives (shard-fold
 * determinism, histogram bucketing, Prometheus/JSON export) and the
 * campaign observer layer (event ordering and threading contract,
 * metrics-on/off bit-identity, journal resume accounting, and the
 * deprecated progress-callback adapter).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <vector>

#include "analysis/analyzer.hh"
#include "analysis/observability.hh"
#include "apps/app.hh"
#include "reference_campaign.hh"
#include "faults/campaign_engine.hh"
#include "faults/observer.hh"
#include "util/json.hh"
#include "util/metrics.hh"

namespace fsp {
namespace {

// ---------------------------------------------------------------------
// util/metrics primitives.

TEST(Metrics, CounterAndGaugeBasics)
{
    metrics::Registry reg;
    auto c = reg.counter("fsp_test_total", "test counter");
    auto g = reg.gauge("fsp_test_gauge", "test gauge");
    EXPECT_TRUE(c.valid());
    EXPECT_TRUE(g.valid());

    reg.add(c);
    reg.add(c, 41);
    EXPECT_EQ(reg.counterValue(c), 42u);

    reg.set(g, 1.5);
    reg.addGauge(g, 0.25);
    EXPECT_DOUBLE_EQ(reg.gaugeValue(g), 1.75);
}

TEST(Metrics, RegistrationIsIdempotent)
{
    metrics::Registry reg;
    auto a = reg.counter("fsp_dup_total", "dup", "k=\"v\"");
    auto b = reg.counter("fsp_dup_total", "dup", "k=\"v\"");
    EXPECT_EQ(a.slot, b.slot);
    reg.add(a);
    reg.add(b);
    EXPECT_EQ(reg.counterValue(a), 2u);

    // A different label body is a distinct sample of the family.
    auto c = reg.counter("fsp_dup_total", "dup", "k=\"w\"");
    EXPECT_NE(a.slot, c.slot);

    auto h1 = reg.histogram("fsp_dup_hist", "dup", {1.0, 2.0});
    auto h2 = reg.histogram("fsp_dup_hist", "dup", {1.0, 2.0});
    EXPECT_EQ(h1.slot, h2.slot);
    std::size_t samples = reg.sampleCount();
    reg.histogram("fsp_dup_hist", "dup", {1.0, 2.0});
    EXPECT_EQ(reg.sampleCount(), samples);
}

TEST(Metrics, HistogramBucketEdges)
{
    metrics::Registry reg;
    auto h = reg.histogram("fsp_edges", "edges", {1.0, 2.0, 4.0});

    // v <= edge lands in that bucket; beyond the last edge overflows.
    reg.observe(h, 0.5);  // bucket 0
    reg.observe(h, 1.0);  // bucket 0 (inclusive upper bound)
    reg.observe(h, 1.5);  // bucket 1
    reg.observe(h, 4.0);  // bucket 2
    reg.observe(h, 9.0);  // overflow

    auto view = reg.histogramView(h);
    ASSERT_NE(view.buckets, nullptr);
    ASSERT_EQ(view.buckets->size(), 4u);
    EXPECT_EQ((*view.buckets)[0], 2u);
    EXPECT_EQ((*view.buckets)[1], 1u);
    EXPECT_EQ((*view.buckets)[2], 1u);
    EXPECT_EQ((*view.buckets)[3], 1u);
    EXPECT_EQ(view.count, 5u);
    EXPECT_DOUBLE_EQ(view.sum, 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
}

/**
 * The core determinism property: integer-valued shard tallies fold to
 * identical registry totals no matter how the work was distributed
 * over workers or in which order the shards fold.
 */
TEST(Metrics, ShardFoldIsDeterministicAcrossWorkerCounts)
{
    constexpr std::size_t kEvents = 240;

    std::uint64_t expect_counter = 0;
    std::vector<std::uint64_t> expect_buckets;
    double expect_sum = 0.0;

    for (unsigned workers : {1u, 2u, 4u, 8u}) {
        metrics::Registry reg;
        auto c = reg.counter("fsp_fold_total", "fold");
        auto h =
            reg.histogram("fsp_fold_hist", "fold", {1.0, 4.0, 16.0});

        std::vector<metrics::Shard> shards;
        for (unsigned w = 0; w < workers; ++w)
            shards.push_back(reg.makeShard());

        // Deterministic event stream, round-robined over the shards.
        // Integer-valued observations make even the double sum exact.
        for (std::size_t i = 0; i < kEvents; ++i) {
            metrics::Shard &s = shards[i % workers];
            s.add(c, (i % 3) + 1);
            s.observe(h, static_cast<double>(i % 20));
        }
        // Fold in reverse order to prove order independence too.
        for (std::size_t w = shards.size(); w-- > 0;)
            reg.fold(shards[w]);

        auto view = reg.histogramView(h);
        if (workers == 1) {
            expect_counter = reg.counterValue(c);
            expect_buckets = *view.buckets;
            expect_sum = view.sum;
            EXPECT_EQ(view.count, kEvents);
        } else {
            SCOPED_TRACE("workers=" + std::to_string(workers));
            EXPECT_EQ(reg.counterValue(c), expect_counter);
            EXPECT_EQ(*view.buckets, expect_buckets);
            EXPECT_EQ(view.count, kEvents);
            EXPECT_EQ(view.sum, expect_sum); // exact, not approximate
        }
    }
}

TEST(Metrics, FoldResetsTheShard)
{
    metrics::Registry reg;
    auto c = reg.counter("fsp_reset_total", "reset");
    metrics::Shard shard = reg.makeShard();
    shard.add(c, 5);
    reg.fold(shard);
    EXPECT_EQ(reg.counterValue(c), 5u);
    reg.fold(shard); // second fold must contribute nothing
    EXPECT_EQ(reg.counterValue(c), 5u);
}

TEST(Metrics, PrometheusExposition)
{
    metrics::Registry reg;
    auto c1 = reg.counter("fsp_outcomes_total", "outcomes",
                          "outcome=\"masked\"");
    auto c2 = reg.counter("fsp_outcomes_total", "outcomes",
                          "outcome=\"sdc\"");
    auto g = reg.gauge("fsp_workers", "workers");
    auto h = reg.histogram("fsp_lat_seconds", "latency", {0.1, 1.0});
    reg.add(c1, 3);
    reg.add(c2, 2);
    reg.set(g, 4.0);
    reg.observe(h, 0.05);
    reg.observe(h, 0.5);
    reg.observe(h, 7.0);

    std::ostringstream os;
    reg.writePrometheus(os);
    std::string text = os.str();

    // One HELP/TYPE pair per family, not per sample.
    auto count_of = [&text](const std::string &needle) {
        std::size_t n = 0;
        for (std::size_t pos = text.find(needle);
             pos != std::string::npos;
             pos = text.find(needle, pos + needle.size()))
            n++;
        return n;
    };
    EXPECT_EQ(count_of("# HELP fsp_outcomes_total"), 1u);
    EXPECT_EQ(count_of("# TYPE fsp_outcomes_total counter"), 1u);
    EXPECT_NE(text.find("fsp_outcomes_total{outcome=\"masked\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("fsp_outcomes_total{outcome=\"sdc\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE fsp_workers gauge"),
              std::string::npos);
    EXPECT_NE(text.find("fsp_workers 4"), std::string::npos);

    // Histogram buckets are cumulative and +Inf equals _count.
    EXPECT_NE(text.find("# TYPE fsp_lat_seconds histogram"),
              std::string::npos);
    EXPECT_NE(text.find("fsp_lat_seconds_bucket{le=\"0.1\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("fsp_lat_seconds_bucket{le=\"1\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("fsp_lat_seconds_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("fsp_lat_seconds_count 3"), std::string::npos);
    EXPECT_NE(text.find("fsp_lat_seconds_sum"), std::string::npos);
}

TEST(Metrics, JsonSnapshotRoundTrip)
{
    metrics::Registry reg;
    auto c = reg.counter("fsp_json_total", "json", "k=\"v\"");
    auto h = reg.histogram("fsp_json_hist", "json", {1.0, 2.0});
    reg.add(c, 7);
    reg.observe(h, 1.5);

    std::ostringstream os;
    {
        JsonWriter json(os);
        json.beginObject();
        reg.writeJson(json);
        json.endObject();
    }
    std::string text = os.str();
    EXPECT_NE(text.find("\"metrics\""), std::string::npos);
    EXPECT_NE(text.find("\"fsp_json_total\""), std::string::npos);
    EXPECT_NE(text.find("\"counter\""), std::string::npos);
    EXPECT_NE(text.find("\"fsp_json_hist\""), std::string::npos);
    EXPECT_NE(text.find("\"histogram\""), std::string::npos);
    EXPECT_NE(text.find("\"bucketCounts\""), std::string::npos);
}

TEST(Metrics, ScopedPhaseTimerIsNullSafe)
{
    // No registry at all: must be a harmless no-op.
    {
        metrics::ScopedPhaseTimer timer(nullptr, metrics::GaugeId{});
        timer.stop();
    }
    metrics::Registry reg;
    auto g = reg.gauge("fsp_timer_seconds", "timer");
    {
        metrics::ScopedPhaseTimer timer(&reg, g);
    }
    EXPECT_GE(reg.gaugeValue(g), 0.0);
}

// ---------------------------------------------------------------------
// Campaign observer layer.

/**
 * Records the event stream with enough detail to verify the engine's
 * ordering and threading contract.  Fold-point and campaign-scope
 * events are serialized by the engine; worker-thread events take the
 * recorder's own lock.
 */
class RecordingObserver final : public faults::CampaignObserver
{
  public:
    void
    onCampaignBegin(const CampaignBegin &event) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        begins++;
        announcedWorkers = event.workers;
        announcedSites = event.sitesTotal;
        lastSitesDone = 0; // per-run monotonicity
        EXPECT_EQ(ends, 0u) << "begin after end";
    }

    void
    onSiteClassified(const SiteClassified &event) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sitesClassified++;
        EXPECT_LT(event.worker, announcedWorkers);
        EXPECT_NE(event.site, nullptr);
        EXPECT_GE(event.seconds, 0.0);
    }

    void
    onCheckpointRestored(const CheckpointRestored &event) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        checkpointRestores++;
        EXPECT_LT(event.worker, announcedWorkers);
    }

    void
    onSliceHazard(const SliceHazard &event) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sliceHazards++;
        EXPECT_LT(event.worker, announcedWorkers);
    }

    void
    onChunkFolded(const ChunkFolded &event) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        chunksFolded++;
        // Fold-point events are serialized in completion order, so
        // sitesDone must be strictly increasing.
        EXPECT_GT(event.sitesDone, lastSitesDone);
        lastSitesDone = event.sitesDone;
        EXPECT_LE(event.sitesDone, event.sitesTotal);
        // Every classified site is reported before its chunk folds.
        EXPECT_LE(event.sitesDone, sitesClassified);
    }

    void
    onJournalCommit(const JournalCommit &event) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        journalCommits++;
        journalBytes += event.bytes;
        if (event.footer)
            footerCommits++;
    }

    void
    onPhaseDone(const PhaseDone &event) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        phases.push_back(event.phase);
        EXPECT_GE(event.seconds, 0.0);
    }

    void
    onCampaignEnd(const CampaignEnd &event) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ends++;
        ASSERT_NE(event.stats, nullptr);
        statsInjected = event.stats->injectedSites;
        statsReplayed = event.stats->replayedSites;
    }

    std::mutex mutex_;
    unsigned begins = 0;
    unsigned ends = 0;
    unsigned announcedWorkers = 0;
    std::uint64_t announcedSites = 0;
    std::uint64_t sitesClassified = 0;
    std::uint64_t checkpointRestores = 0;
    std::uint64_t sliceHazards = 0;
    std::uint64_t chunksFolded = 0;
    std::uint64_t lastSitesDone = 0;
    std::uint64_t journalCommits = 0;
    std::uint64_t journalBytes = 0;
    std::uint64_t footerCommits = 0;
    std::vector<faults::CampaignPhase> phases;
    std::uint64_t statsInjected = 0;
    std::uint64_t statsReplayed = 0;
};

TEST(CampaignObserver, EventOrderingUnderSlicingAndCheckpoints)
{
    // MVT slices (independent CTAs) and records checkpoints, so this
    // exercises the worker-thread event paths too.
    const apps::KernelSpec *spec = apps::findKernel("MVT/K1");
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);

    Prng prng(11);
    auto sites = ka.space().sampleSites(30, prng);

    RecordingObserver recorder;
    faults::CampaignOptions options;
    options.workers = 4;
    options.chunkSize = 5;
    options.observer = &recorder;
    faults::CampaignEngine engine(ka.injector(), options);
    ASSERT_TRUE(engine.slicingActive());
    ASSERT_TRUE(engine.checkpointsActive());

    auto result = engine.run(sites);
    EXPECT_EQ(result.runs, sites.size());

    EXPECT_EQ(recorder.begins, 1u);
    EXPECT_EQ(recorder.ends, 1u);
    EXPECT_EQ(recorder.announcedSites, sites.size());
    EXPECT_EQ(recorder.sitesClassified, sites.size());
    EXPECT_EQ(recorder.lastSitesDone, sites.size());
    EXPECT_EQ(recorder.chunksFolded, (sites.size() + 4) / 5);
    EXPECT_EQ(recorder.statsInjected, sites.size());
    // Checkpoint restores observed must match the engine's counters.
    EXPECT_EQ(recorder.checkpointRestores,
              engine.lastStats().injection.checkpointRestores);
    EXPECT_EQ(recorder.sliceHazards,
              engine.lastStats().injection.hazardFallbacks);
    // Phases complete in engine order.
    ASSERT_EQ(recorder.phases.size(), 3u);
    EXPECT_EQ(recorder.phases[0], faults::CampaignPhase::Replay);
    EXPECT_EQ(recorder.phases[1], faults::CampaignPhase::Inject);
    EXPECT_EQ(recorder.phases[2], faults::CampaignPhase::Fold);
    // No journal attached: no commit events.
    EXPECT_EQ(recorder.journalCommits, 0u);
}

TEST(CampaignObserver, ResultsAreBitIdenticalWithAndWithoutObservers)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);

    Prng prng(21);
    auto sites = ka.space().sampleSites(24, prng);
    std::vector<faults::WeightedSite> weighted;
    for (std::size_t i = 0; i < sites.size(); ++i)
        weighted.push_back(
            {sites[i], 0.1 + 0.3 * static_cast<double>(i % 7)});

    for (unsigned workers : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        faults::CampaignOptions bare_options;
        bare_options.workers = workers;
        bare_options.chunkSize = 3;
        faults::CampaignEngine bare(ka.injector(), bare_options);
        auto expected = bare.run(weighted);

        metrics::Registry registry;
        faults::MetricsObserver metrics_observer(registry);
        faults::LiveProgress live(3600.0); // interval never elapses
        faults::ObserverList observers;
        observers.add(&metrics_observer);
        observers.add(&live);

        faults::CampaignOptions observed_options = bare_options;
        observed_options.observer = &observers;
        faults::CampaignEngine observed(ka.injector(),
                                        observed_options);
        auto got = observed.run(weighted);

        // Bit-identical: same runs and exact double weights.
        EXPECT_EQ(expected.runs, got.runs);
        for (faults::Outcome o :
             {faults::Outcome::Masked, faults::Outcome::SDC,
              faults::Outcome::Other}) {
            EXPECT_EQ(expected.dist.weightOf(o), got.dist.weightOf(o));
        }
    }
}

TEST(CampaignObserver, MetricsObserverCountsMatchCampaignStats)
{
    const apps::KernelSpec *spec = apps::findKernel("PathFinder/K1");
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);

    Prng prng(5);
    auto sites = ka.space().sampleSites(20, prng);

    metrics::Registry registry;
    faults::MetricsObserver observer(registry);
    faults::CampaignOptions options;
    options.workers = 3;
    options.chunkSize = 4;
    options.observer = &observer;
    faults::CampaignEngine engine(ka.injector(), options);
    auto result = engine.run(sites);
    const faults::CampaignStats &stats = engine.lastStats();

    auto counter = [&registry](const char *name, const char *labels) {
        return registry.counterValue(
            registry.counter(name, "", labels));
    };
    std::uint64_t outcomes = 0;
    for (const char *label :
         {"outcome=\"masked\"", "outcome=\"sdc\"", "outcome=\"other\"",
          "outcome=\"invalid\""})
        outcomes += counter("fsp_campaign_sites_total", label);
    EXPECT_EQ(outcomes, stats.injectedSites);
    EXPECT_EQ(counter("fsp_campaigns_total", ""), 1u);
    EXPECT_EQ(counter("fsp_campaign_scheduled_sites_total", ""),
              sites.size());
    EXPECT_EQ(counter("fsp_campaign_chunks_total", ""), stats.chunks);
    EXPECT_EQ(counter("fsp_campaign_checkpoint_restores_total", ""),
              stats.injection.checkpointRestores);
    EXPECT_EQ(counter("fsp_campaign_skipped_dyn_instrs_total", ""),
              stats.injection.skippedDynInstrs);
    EXPECT_EQ(counter("fsp_campaign_slice_hazards_total", ""),
              stats.injection.hazardFallbacks);
    EXPECT_EQ(registry.gaugeValue(
                  registry.gauge("fsp_campaign_workers", "")),
              static_cast<double>(stats.workers));

    // The latency histograms saw every injected site exactly once.
    std::uint64_t observed = 0;
    for (const char *label :
         {"outcome=\"masked\"", "outcome=\"sdc\"", "outcome=\"other\"",
          "outcome=\"invalid\""}) {
        auto id = registry.histogram("fsp_injection_seconds", "", {},
                                     label);
        observed += registry.histogramView(id).count;
    }
    EXPECT_EQ(observed, stats.injectedSites);
    (void)result;
}

TEST(CampaignObserver, JournalAbortResumeAccounting)
{
    const apps::KernelSpec *spec = apps::findKernel("PathFinder/K1");
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);

    Prng prng(17);
    auto sites = ka.space().sampleSites(18, prng);

    std::string path =
        (std::filesystem::temp_directory_path() /
         "fsp_test_metrics_journal.fspj")
            .string();
    std::remove(path.c_str());

    metrics::Registry registry;
    faults::MetricsObserver metrics_observer(registry);
    RecordingObserver recorder;
    faults::ObserverList observers;
    observers.add(&metrics_observer);
    observers.add(&recorder);

    faults::CampaignOptions options;
    options.workers = 2;
    options.chunkSize = 3;
    options.journalPath = path;
    options.journalKey = {"test-metrics", 17};
    options.observer = &observers;
    options.abortAfterSites = 7;
    {
        faults::CampaignEngine engine(ka.injector(), options);
        EXPECT_THROW(engine.run(sites), faults::CampaignAborted);
    }
    // The kill happened after at least one durable commit, none of
    // them a footer.
    EXPECT_GE(recorder.journalCommits, 1u);
    EXPECT_EQ(recorder.footerCommits, 0u);
    std::uint64_t aborted_commits = recorder.journalCommits;

    options.abortAfterSites = 0;
    options.resume = true;
    faults::CampaignEngine engine(ka.injector(), options);
    auto resumed = engine.run(sites);
    EXPECT_EQ(resumed.runs, sites.size());
    const faults::CampaignStats &stats = engine.lastStats();
    EXPECT_GT(stats.replayedSites, 0u);
    EXPECT_EQ(stats.replayedSites + stats.injectedSites, sites.size());

    // The resumed run sealed the journal with exactly one footer
    // commit, and the observer saw the replayed/injected split.
    EXPECT_EQ(recorder.footerCommits, 1u);
    EXPECT_GT(recorder.journalCommits, aborted_commits);
    EXPECT_EQ(recorder.statsReplayed, stats.replayedSites);
    EXPECT_EQ(recorder.statsInjected, stats.injectedSites);

    // Metrics: classified sites across both runs cover the campaign
    // exactly once (no double counting through the abort).
    std::uint64_t outcomes = 0;
    for (const char *label :
         {"outcome=\"masked\"", "outcome=\"sdc\"", "outcome=\"other\"",
          "outcome=\"invalid\""})
        outcomes += registry.counterValue(
            registry.counter("fsp_campaign_sites_total", "", label));
    EXPECT_EQ(outcomes, sites.size());
    EXPECT_EQ(registry.counterValue(registry.counter(
                  "fsp_campaign_replayed_sites_total", "")),
              stats.replayedSites);

    // The matching profile is still bit-identical to a clean run.
    faults::CampaignOptions clean;
    clean.workers = 2;
    clean.chunkSize = 3;
    faults::CampaignEngine reference(ka.injector(), clean);
    auto expected = reference.run(sites);
    EXPECT_EQ(expected.runs, resumed.runs);
    for (faults::Outcome o :
         {faults::Outcome::Masked, faults::Outcome::SDC,
          faults::Outcome::Other})
        EXPECT_EQ(expected.dist.weightOf(o), resumed.dist.weightOf(o));

    std::remove(path.c_str());
}

TEST(CampaignObserver, ChunkFoldEventsCoverEveryChunkExactlyOnce)
{
    const apps::KernelSpec *spec = apps::findKernel("PathFinder/K1");
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);

    Prng prng(3);
    auto sites = ka.space().sampleSites(10, prng);

    struct FoldCounter final : faults::CampaignObserver
    {
        std::uint64_t calls = 0;
        std::uint64_t lastDone = 0;
        void
        onChunkFolded(const ChunkFolded &event) override
        {
            // Serialized under the engine's progress lock.
            calls++;
            EXPECT_GT(event.sitesDone, lastDone);
            lastDone = event.sitesDone;
            EXPECT_EQ(event.sitesTotal, 10u);
        }
    } counter;

    faults::CampaignOptions options;
    options.workers = 2;
    options.chunkSize = 2;
    options.observer = &counter;
    faults::CampaignEngine engine(ka.injector(), options);
    engine.run(sites);
    EXPECT_EQ(counter.calls, 5u);
    EXPECT_EQ(counter.lastDone, sites.size());
}

TEST(Observability, BundleExportsPipelineAndCampaignFamilies)
{
    const apps::KernelSpec *spec = apps::findKernel("MVT/K1");
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);

    analysis::Observability obs;
    analysis::AnalysisConfig facade;
    facade.execMetrics = &obs.exec;
    ka.configure(facade);
    pruning::PruningConfig config;
    auto pruned = ka.prune(config, &obs.registry);
    ASSERT_FALSE(pruned.sites.empty());

    faults::CampaignOptions options;
    options.workers = 2;
    options.observer = obs.observer();
    ka.runPrunedCampaign(pruned, options);
    obs.finalize();

    std::ostringstream os;
    obs.registry.writePrometheus(os);
    std::string text = os.str();

    // Every pipeline stage and campaign phase appears in the export.
    for (const char *stage :
         {"stage=\"thread\"", "stage=\"profiling\"",
          "stage=\"instruction\"", "stage=\"loop\"", "stage=\"bit\""})
        EXPECT_NE(text.find(std::string("fsp_pruning_stage_seconds{") +
                            stage),
                  std::string::npos)
            << stage;
    for (const char *stage :
         {"stage=\"exhaustive\"", "stage=\"thread\"",
          "stage=\"instruction\"", "stage=\"loop\"", "stage=\"bit\""})
        EXPECT_NE(text.find(std::string("fsp_pruning_stage_sites{") +
                            stage),
                  std::string::npos)
            << stage;
    for (const char *phase :
         {"phase=\"replay\"", "phase=\"inject\"", "phase=\"fold\""})
        EXPECT_NE(
            text.find(std::string("fsp_campaign_phase_seconds{") +
                      phase),
            std::string::npos)
            << phase;
    EXPECT_NE(text.find("fsp_campaigns_total 1"), std::string::npos);
    EXPECT_NE(text.find("fsp_sim_runs_total"), std::string::npos);
    EXPECT_NE(text.find("fsp_injection_seconds_bucket"),
              std::string::npos);

    // The simulator counters flowed through the exec sink.
    auto runs_id = obs.registry.counter("fsp_sim_runs_total", "");
    EXPECT_GT(obs.registry.counterValue(runs_id), 0u);
    auto instrs_id = obs.registry.counter("fsp_sim_dyn_instrs_total", "");
    EXPECT_GT(obs.registry.counterValue(instrs_id), 0u);
}

} // namespace
} // namespace fsp
