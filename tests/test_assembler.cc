/**
 * @file
 * Unit tests for the PTXPlus-style assembler: mnemonic decoding,
 * operand forms, labels and branch resolution, error reporting, and
 * paper-listing syntax compatibility (Fig. 5 snippets).
 */

#include <gtest/gtest.h>

#include "ptx/assembler.hh"

namespace fsp {
namespace {

using ptx::assemble;
using ptx::AssemblyError;
using namespace sim;

TEST(Assembler, BasicArithmetic)
{
    Program p = assemble("t", "add.u32 $r1, $r2, $r3;");
    ASSERT_EQ(p.size(), 1u);
    const Instruction &insn = p.at(0);
    EXPECT_EQ(insn.op, Opcode::Add);
    EXPECT_EQ(insn.type, DataType::U32);
    EXPECT_EQ(insn.dest.kind, Operand::Kind::GpReg);
    EXPECT_EQ(insn.dest.reg, 1);
    EXPECT_EQ(insn.src[0].reg, 2);
    EXPECT_EQ(insn.src[1].reg, 3);
}

TEST(Assembler, CommentsAndBlankLines)
{
    Program p = assemble("t", R"(
        // a comment
        # another comment
        add.u32 $r1, $r2, $r3;   // trailing
        nop                      # trailing too
    )");
    EXPECT_EQ(p.size(), 2u);
}

TEST(Assembler, ImmediateForms)
{
    Program p = assemble("t", R"(
        add.u32 $r1, $r2, 0x00000100
        add.u32 $r1, $r2, 256
        add.s32 $r1, $r2, -4
        mov.f32 $r1, 1.5
        mov.f32 $r1, 2
        mov.f64 $r1, 0.25
    )");
    EXPECT_EQ(p.at(0).src[1].imm, 256u);
    EXPECT_EQ(p.at(1).src[1].imm, 256u);
    EXPECT_EQ(static_cast<std::int64_t>(p.at(2).src[1].imm), -4);
    EXPECT_EQ(p.at(3).src[0].imm, std::bit_cast<std::uint32_t>(1.5f));
    EXPECT_EQ(p.at(4).src[0].imm, std::bit_cast<std::uint32_t>(2.0f));
    EXPECT_EQ(p.at(5).src[0].imm, std::bit_cast<std::uint64_t>(0.25));
}

TEST(Assembler, NegatedAndHalfRegisters)
{
    Program p = assemble("t", R"(
        add.u32 $r3, -$r3, 0x00000100
        mul.wide.u16 $r4, $r1.lo, $r3.hi
    )");
    EXPECT_TRUE(p.at(0).src[0].negated);
    EXPECT_EQ(p.at(1).op, Opcode::MulWide);
    EXPECT_EQ(p.at(1).src[0].half, HalfSel::Lo);
    EXPECT_EQ(p.at(1).src[1].half, HalfSel::Hi);
}

TEST(Assembler, SpecialRegisters)
{
    Program p = assemble("t", "cvt.u32.u16 $r1, %ctaid.x;");
    EXPECT_EQ(p.at(0).op, Opcode::Cvt);
    EXPECT_EQ(p.at(0).src[0].kind, Operand::Kind::Special);
    EXPECT_EQ(p.at(0).src[0].special, SpecialReg::CtaidX);
}

TEST(Assembler, SetWithDualDestination)
{
    Program p = assemble("t", R"(
        set.eq.s32.s32 $p0|$o127, $r6, $r1
        set.lt.u32.u32 $p1/$r5, $r2, $r3
        and.b32 $p0|$o127, $r5, $r2
    )");
    EXPECT_EQ(p.at(0).op, Opcode::Set);
    EXPECT_EQ(p.at(0).cmp, CmpOp::Eq);
    EXPECT_EQ(p.at(0).dest.kind, Operand::Kind::PredReg);
    EXPECT_EQ(p.at(0).dest2.kind, Operand::Kind::Discard);
    EXPECT_EQ(p.at(1).dest2.kind, Operand::Kind::GpReg);
    EXPECT_EQ(p.at(1).dest2.reg, 5);
    EXPECT_EQ(p.at(2).op, Opcode::And);
    EXPECT_EQ(p.at(2).type, DataType::U32); // b32 alias
}

TEST(Assembler, GuardsAndBranches)
{
    Program p = assemble("t", R"(
        l0x0000: mov.u32 $r2, $r124
        @$p0.eq bra l0x0000
        @$p1.ne bra done
        nop
        done: retp
    )");
    EXPECT_EQ(p.at(1).guard.cond, GuardCond::Eq);
    EXPECT_EQ(p.at(1).guard.pred, 0);
    EXPECT_EQ(p.at(1).target, 0);
    EXPECT_EQ(p.at(2).guard.cond, GuardCond::Ne);
    EXPECT_EQ(p.at(2).guard.pred, 1);
    EXPECT_EQ(p.at(2).target, 4);
    EXPECT_EQ(p.labels().at("done"), 4u);
}

TEST(Assembler, MemoryOperands)
{
    Program p = assemble("t", R"(
        ld.global.u32 $r2, [$r3]
        ld.global.f32 $r2, [$r3+0x10]
        ld.shared.u32 $r2, [$r3+-4]
        ld.param.u32 $r2, [8]
        st.global.u32 [$r3+4], $r2
        st.shared.f32 [$r3], 1.0
    )");
    EXPECT_EQ(p.at(0).space, MemSpace::Global);
    EXPECT_EQ(p.at(0).src[0].memBase, 3);
    EXPECT_EQ(p.at(0).src[0].memOffset, 0);
    EXPECT_EQ(p.at(1).src[0].memOffset, 16);
    EXPECT_EQ(p.at(2).src[0].memOffset, -4);
    EXPECT_EQ(p.at(3).src[0].memBase, -1);
    EXPECT_EQ(p.at(3).src[0].memOffset, 8);
    EXPECT_EQ(p.at(4).op, Opcode::St);
    EXPECT_EQ(p.at(4).src[1].reg, 2);
    EXPECT_EQ(p.at(5).src[1].imm, std::bit_cast<std::uint32_t>(1.0f));
}

TEST(Assembler, PaperFigure5Snippet)
{
    // Verbatim lines from the paper's PathFinder listing (Fig. 5).
    Program p = assemble("pathfinder", R"(
        shl.u32 $r3, $r1, 0x00000001
        cvt.u32.u16 $r1, %ctaid.x
        add.u32 $r3, -$r3, 0x00000100
        mul.wide.u16 $r4, $r1.lo, $r3.hi
        mad.wide.u16 $r4, $r1.hi, $r3.lo, $r4
        cvt.s32.s32 $r2, -$r2
        and.b32 $p0|$o127, $r5, $r2
        ssy 0x00000228
        mov.u32 $r2, $r124
        @$p0.eq bra l0x00000228
        min.s32 $r7, $r8, $r9
        l0x00000228: nop
        bar.sync 0x00000000
        set.eq.s32.s32 $p0/$o127, $r6, $r1
        @$p0.ne bra l0x000002b8
        l0x000002b8: set.ne.s32.s32 $p0/$o127, $r2, $r124
        bra l0x000002c8
        l0x000002c8: @$p0.eq retp
    )");
    EXPECT_EQ(p.size(), 18u);
    EXPECT_EQ(p.at(4).op, Opcode::MadWide);
    EXPECT_EQ(p.at(12).op, Opcode::Bar);
    EXPECT_EQ(p.at(17).op, Opcode::Ret);
    EXPECT_EQ(p.at(17).guard.cond, GuardCond::Eq);
}

TEST(Assembler, ZeroRegisterHasNoFaultSites)
{
    Program p = assemble("t", R"(
        mov.u32 $r124, $r1
        mov.u32 $r1, $r124
        st.global.u32 [$r1], $r2
        bra end
        end: retp
    )");
    EXPECT_FALSE(p.at(0).hasDest()); // write to $r124 discarded
    EXPECT_TRUE(p.at(1).hasDest());
    EXPECT_FALSE(p.at(2).hasDest()); // stores have no dest register
    EXPECT_FALSE(p.at(3).hasDest());
    EXPECT_EQ(p.at(1).destBits(), 32u);
}

TEST(Assembler, DestBitsByType)
{
    Program p = assemble("t", R"(
        mov.u32 $r1, $r2
        mov.f64 $r1, $r2
        cvt.u16.u32 $r1, $r2
        setp.eq.s32 $p0, $r1, $r2
        mul.wide.u16 $r4, $r1.lo, $r3.hi
    )");
    EXPECT_EQ(p.at(0).destBits(), 32u);
    EXPECT_EQ(p.at(1).destBits(), 64u);
    EXPECT_EQ(p.at(2).destBits(), 16u);
    EXPECT_EQ(p.at(3).destBits(), 4u); // predicate CC register
    EXPECT_EQ(p.at(4).destBits(), 32u); // widening multiply
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    try {
        assemble("t", "nop\nbogus.u32 $r1, $r2\n");
        FAIL() << "expected AssemblyError";
    } catch (const AssemblyError &e) {
        EXPECT_EQ(e.line(), 2u);
        EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
    }
}

TEST(Assembler, RejectsMalformedInput)
{
    EXPECT_THROW(assemble("t", "add.u32 $r1, $r2"), AssemblyError);
    EXPECT_THROW(assemble("t", "add.u32 $r1, $r2, $r3, $r4"),
                 AssemblyError);
    EXPECT_THROW(assemble("t", "add.q32 $r1, $r2, $r3"), AssemblyError);
    EXPECT_THROW(assemble("t", "add.u32 $r999, $r2, $r3"), AssemblyError);
    EXPECT_THROW(assemble("t", "bra nowhere"), AssemblyError);
    EXPECT_THROW(assemble("t", "ld.global.u32 $r1, $r2"), AssemblyError);
    EXPECT_THROW(assemble("t", "mov.f32 $r1, [0]"), AssemblyError);
    EXPECT_THROW(assemble("t", "set.u32.u32 $p0, $r1, $r2"),
                 AssemblyError);
    EXPECT_THROW(assemble("t", "add.u32 -$r1, $r2, $r3"), AssemblyError);
    EXPECT_THROW(assemble("t", "a: nop\na: nop"), AssemblyError);
    EXPECT_THROW(assemble("t", "st.param.u32 [0], $r1"), AssemblyError);
    EXPECT_THROW(assemble("t", "add.u32 $r1, $r2, 1.5"), AssemblyError);
}

TEST(Assembler, LabelOnlyLineAttachesToNext)
{
    Program p = assemble("t", R"(
        start:
        nop
        bra start
    )");
    EXPECT_EQ(p.at(1).target, 0);
}

TEST(Assembler, ListingContainsLabelsAndText)
{
    Program p = assemble("t", "x: nop\nbra x\n");
    std::string listing = p.listing();
    EXPECT_NE(listing.find("x:"), std::string::npos);
    EXPECT_NE(listing.find("bra x"), std::string::npos);
}

/** Round-trip every simple binary opcode through the assembler. */
class OpcodeRoundTrip : public ::testing::TestWithParam<const char *>
{
};

TEST_P(OpcodeRoundTrip, ParsesWithU32Suffix)
{
    std::string mnemonic = GetParam();
    std::string source = mnemonic + ".u32 $r1, $r2, $r3";
    unsigned srcs = 2;
    if (mnemonic == "mov" || mnemonic == "not" || mnemonic == "neg" ||
        mnemonic == "abs") {
        source = mnemonic + ".u32 $r1, $r2";
        srcs = 1;
    }
    if (mnemonic == "mad" || mnemonic == "selp") {
        source = mnemonic + ".u32 $r1, $r2, $r3, $r4";
        srcs = 3;
    }

    Program p = assemble("t", source);
    ASSERT_EQ(p.size(), 1u);
    Opcode op;
    ASSERT_TRUE(parseOpcode(mnemonic, op));
    EXPECT_EQ(p.at(0).op, op);
    EXPECT_EQ(opcodeName(p.at(0).op), mnemonic);
    if (srcs == 2) {
        EXPECT_EQ(opcodeSrcCount(op), 2u);
    }
}

INSTANTIATE_TEST_SUITE_P(AllBinaryOps, OpcodeRoundTrip,
                         ::testing::Values("add", "sub", "mul", "div",
                                           "rem", "min", "max", "and",
                                           "or", "xor", "shl", "shr",
                                           "mov", "not", "neg", "abs",
                                           "mad", "selp"));

} // namespace
} // namespace fsp
