/**
 * @file
 * Integration tests: every workload kernel's simulated output is
 * checked against an independent host-side reference implementation at
 * small scale.  The references replicate the kernels' operation order
 * (so float results match to a few ULP) and their divergence semantics
 * (boundary clamping, tail threads, per-CTA halos).
 *
 * The tests intentionally duplicate each app's small-scale geometry
 * constants and allocation order; if an app changes shape these fail
 * loudly rather than silently validating the wrong data.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "apps/app.hh"
#include "apps/kernel_util.hh"
#include "sim/executor.hh"

namespace fsp {
namespace {

constexpr std::uint64_t kBase = sim::GlobalMemory::kBaseAddr;
constexpr std::uint64_t kSeed = 42;

/** Run a kernel setup to completion; returns the final memory image. */
apps::KernelSetup
runKernel(const char *name)
{
    const apps::KernelSpec *spec = apps::findKernel(name);
    EXPECT_NE(spec, nullptr) << name;
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, kSeed);
    sim::Executor executor(setup.program, setup.launch);
    sim::RunResult result = executor.run(setup.memory);
    EXPECT_EQ(result.status, sim::RunStatus::Completed)
        << result.diagnostic;
    return setup;
}

std::vector<float>
dl(const apps::KernelSetup &setup, std::uint64_t addr, std::size_t count)
{
    return apps::downloadFloats(setup.memory, addr, count);
}

/** Align like the bump allocator (8-byte default alignment). */
std::uint64_t
align8(std::uint64_t addr)
{
    return (addr + 7) & ~7ull;
}

TEST(Apps, RegistryContainsPaperKernels)
{
    EXPECT_EQ(apps::allKernels().size(), 17u);
    for (const char *name :
         {"HotSpot/K1", "K-Means/K1", "K-Means/K2", "Gaussian/K1",
          "Gaussian/K2", "Gaussian/K125", "Gaussian/K126",
          "PathFinder/K1", "LUD/K44", "LUD/K45", "LUD/K46", "2DCONV/K1",
          "MVT/K1", "2MM/K1", "GEMM/K1", "SYRK/K1", "NN/K1"}) {
        EXPECT_NE(apps::findKernel(name), nullptr) << name;
    }
    EXPECT_EQ(apps::findKernel("NOPE/K9"), nullptr);
}

TEST(Apps, EveryKernelGoldenRunCompletes)
{
    for (const auto &spec : apps::allKernels()) {
        apps::KernelSetup setup = spec.setup(apps::Scale::Small, kSeed);
        sim::Executor executor(setup.program, setup.launch);
        sim::RunResult result = executor.run(setup.memory);
        EXPECT_EQ(result.status, sim::RunStatus::Completed)
            << spec.fullName() << ": " << result.diagnostic;
        EXPECT_GT(result.totalDynInstrs, 0u) << spec.fullName();
        ASSERT_FALSE(setup.outputs.empty()) << spec.fullName();
    }
}

TEST(Apps, GemmMatchesReference)
{
    const unsigned n = 16;
    auto a0 = apps::randomFloats(n * n, kSeed + 1);
    auto b0 = apps::randomFloats(n * n, kSeed + 2);
    auto c0 = apps::randomFloats(n * n, kSeed + 3);

    apps::KernelSetup setup = runKernel("GEMM/K1");
    std::uint64_t c_addr = setup.outputs[0].addr;
    auto c = dl(setup, c_addr, n * n);

    for (unsigned i = 0; i < n; ++i) {
        for (unsigned j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (unsigned k = 0; k < n; ++k)
                acc = a0[i * n + k] * b0[k * n + j] + acc;
            float expected = acc * 1.5f + c0[i * n + j] * 0.75f;
            ASSERT_FLOAT_EQ(c[i * n + j], expected) << i << "," << j;
        }
    }
}

TEST(Apps, Mm2MatchesReference)
{
    const unsigned n = 16;
    auto a0 = apps::randomFloats(n * n, kSeed + 1);
    auto b0 = apps::randomFloats(n * n, kSeed + 2);

    apps::KernelSetup setup = runKernel("2MM/K1");
    auto tmp = dl(setup, setup.outputs[0].addr, n * n);

    for (unsigned i = 0; i < n; ++i) {
        for (unsigned j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (unsigned k = 0; k < n; ++k)
                acc = a0[i * n + k] * b0[k * n + j] + acc;
            ASSERT_FLOAT_EQ(tmp[i * n + j], acc) << i << "," << j;
        }
    }
}

TEST(Apps, SyrkMatchesReference)
{
    const unsigned n = 16;
    auto a0 = apps::randomFloats(n * n, kSeed + 1);
    auto c0 = apps::randomFloats(n * n, kSeed + 2);

    apps::KernelSetup setup = runKernel("SYRK/K1");
    auto c = dl(setup, setup.outputs[0].addr, n * n);

    for (unsigned i = 0; i < n; ++i) {
        for (unsigned j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (unsigned k = 0; k < n; ++k)
                acc = a0[i * n + k] * a0[j * n + k] + acc;
            float expected = acc * 1.25f + c0[i * n + j] * 0.5f;
            ASSERT_FLOAT_EQ(c[i * n + j], expected) << i << "," << j;
        }
    }
}

TEST(Apps, MvtMatchesReference)
{
    const unsigned n = 64;
    auto a0 = apps::randomFloats(n * n, kSeed + 1);
    auto y0 = apps::randomFloats(n, kSeed + 2);
    auto x0 = apps::randomFloats(n, kSeed + 3);

    apps::KernelSetup setup = runKernel("MVT/K1");
    auto x = dl(setup, setup.outputs[0].addr, n);

    for (unsigned i = 0; i < n; ++i) {
        float acc = 0.0f;
        for (unsigned j = 0; j < n; ++j)
            acc = a0[i * n + j] * y0[j] + acc;
        ASSERT_FLOAT_EQ(x[i], x0[i] + acc) << i;
    }
}

TEST(Apps, Conv2dMatchesReference)
{
    const unsigned ni = 16, nj = 32;
    const float coeff[3][3] = {{0.2f, -0.3f, 0.4f},
                               {0.5f, 0.6f, 0.7f},
                               {-0.8f, -0.9f, 0.1f}};
    auto a0 = apps::randomFloats(ni * nj, kSeed + 1);

    apps::KernelSetup setup = runKernel("2DCONV/K1");
    auto b = dl(setup, setup.outputs[0].addr, ni * nj);

    for (unsigned i = 0; i < ni; ++i) {
        for (unsigned j = 0; j < nj; ++j) {
            if (i == 0 || i >= ni - 1 || j == 0 || j >= nj - 1) {
                ASSERT_EQ(b[i * nj + j], 0.0f) << i << "," << j;
                continue;
            }
            float acc = 0.0f;
            for (unsigned r = 0; r < 3; ++r) {
                for (unsigned c = 0; c < 3; ++c) {
                    acc = a0[(i - 1 + r) * nj + (j - 1 + c)] *
                              coeff[r][c] +
                          acc;
                }
            }
            ASSERT_FLOAT_EQ(b[i * nj + j], acc) << i << "," << j;
        }
    }
}

TEST(Apps, NnMatchesReference)
{
    const unsigned records = 500;
    auto loc = apps::randomFloats(2 * records, kSeed + 1, 0.0f, 90.0f);

    apps::KernelSetup setup = runKernel("NN/K1");
    auto dist = dl(setup, setup.outputs[0].addr, records);

    for (unsigned i = 0; i < records; ++i) {
        float dlat = loc[2 * i] - 30.0f;
        float dlng = loc[2 * i + 1] - 60.0f;
        float expected = std::sqrt(dlng * dlng + dlat * dlat);
        ASSERT_FLOAT_EQ(dist[i], expected) << i;
    }
}

/** Shared reference for Gaussian inputs (mirrors initSystem). */
struct GaussianRef
{
    unsigned size = 16;
    std::vector<float> a, b, m;

    explicit GaussianRef(std::uint64_t seed)
    {
        a = apps::randomFloats(size * size, seed + 1, 0.1f, 1.0f);
        for (unsigned i = 0; i < size; ++i)
            a[i * size + i] += static_cast<float>(size);
        b = apps::randomFloats(size, seed + 2, 0.5f, 2.0f);
        m.assign(size * size, 0.0f);
    }
};

TEST(Apps, GaussianFan1MatchesReference)
{
    for (const char *name : {"Gaussian/K1", "Gaussian/K125"}) {
        unsigned t = std::string(name) == "Gaussian/K1" ? 0 : 6;
        GaussianRef ref(kSeed);
        apps::KernelSetup setup = runKernel(name);
        auto m = dl(setup, setup.outputs[0].addr,
                    ref.size * ref.size);

        for (unsigned row = 0; row < ref.size; ++row) {
            for (unsigned col = 0; col < ref.size; ++col) {
                float expected = 0.0f;
                if (col == t && row > t) {
                    expected = ref.a[row * ref.size + t] /
                               ref.a[t * ref.size + t];
                }
                ASSERT_FLOAT_EQ(m[row * ref.size + col], expected)
                    << name << " " << row << "," << col;
            }
        }
    }
}

TEST(Apps, GaussianFan2MatchesReference)
{
    for (const char *name : {"Gaussian/K2", "Gaussian/K126"}) {
        unsigned t = std::string(name) == "Gaussian/K2" ? 0 : 6;
        GaussianRef ref(kSeed);
        unsigned size = ref.size;

        // Host-side Fan1 (as the app performs before launching Fan2).
        for (unsigned r = t + 1; r < size; ++r) {
            ref.m[r * size + t] =
                ref.a[r * size + t] / ref.a[t * size + t];
        }
        // Reference Fan2.
        auto a = ref.a;
        auto b = ref.b;
        for (unsigned xid = 0; xid + t + 1 < size; ++xid) {
            unsigned row = xid + t + 1;
            for (unsigned yid = 0; yid + t < size; ++yid) {
                unsigned col = yid + t;
                a[row * size + col] -=
                    ref.m[row * size + t] * ref.a[t * size + col];
                if (yid == 0)
                    b[row] -= ref.m[row * size + t] * ref.b[t];
            }
        }

        apps::KernelSetup setup = runKernel(name);
        auto a_out = dl(setup, setup.outputs[0].addr, size * size);
        auto b_out = dl(setup, setup.outputs[1].addr, size);
        for (unsigned i = 0; i < size * size; ++i)
            ASSERT_FLOAT_EQ(a_out[i], a[i]) << name << " a[" << i << "]";
        for (unsigned i = 0; i < size; ++i)
            ASSERT_FLOAT_EQ(b_out[i], b[i]) << name << " b[" << i << "]";
    }
}

TEST(Apps, KmeansInvertMappingMatchesReference)
{
    const unsigned points = 90, features = 8;
    auto input = apps::randomFloats(points * features, kSeed + 1);

    apps::KernelSetup setup = runKernel("K-Means/K1");
    auto out = dl(setup, setup.outputs[0].addr, points * features);

    for (unsigned p = 0; p < points; ++p) {
        for (unsigned f = 0; f < features; ++f) {
            ASSERT_EQ(out[f * points + p], input[p * features + f])
                << p << "," << f;
        }
    }
}

TEST(Apps, KmeansPointMatchesReference)
{
    const unsigned points = 90, features = 8, clusters = 3;
    auto feat = apps::randomFloats(points * features, kSeed + 1);
    auto cent = apps::randomFloats(clusters * features, kSeed + 2);

    apps::KernelSetup setup = runKernel("K-Means/K2");

    for (unsigned p = 0; p < points; ++p) {
        float best = 3.0e38f;
        unsigned best_c = 0;
        for (unsigned c = 0; c < clusters; ++c) {
            float dist = 0.0f;
            for (unsigned f = 0; f < features; ++f) {
                float d = feat[p * features + f] -
                          cent[c * features + f];
                dist = d * d + dist;
            }
            if (dist < best) {
                best = dist;
                best_c = c;
            }
        }
        ASSERT_EQ(setup.memory.peekU32(setup.outputs[0].addr + 4 * p),
                  best_c)
            << p;
    }
}

TEST(Apps, PathfinderMatchesReference)
{
    const unsigned cols = 128, rows = 7, bs = 64;
    Prng prng(kSeed);
    std::vector<std::uint32_t> wall(rows * cols);
    for (auto &v : wall)
        v = static_cast<std::uint32_t>(prng.below(10));

    std::vector<std::uint32_t> prev(wall.begin(), wall.begin() + cols);
    for (unsigned it = 1; it < rows; ++it) {
        std::vector<std::uint32_t> cur(cols);
        for (unsigned col = 0; col < cols; ++col) {
            unsigned lo = (col / bs) * bs;
            unsigned hi = lo + bs - 1;
            // Missing strip-edge neighbours are ignored (+inf sentinel).
            std::uint32_t l =
                col == lo ? 0xFFFFFFFFu : prev[col - 1];
            std::uint32_t r =
                col == hi ? 0xFFFFFFFFu : prev[col + 1];
            std::uint32_t c = prev[col];
            cur[col] = std::min(std::min(l, r), c) +
                       wall[it * cols + col];
        }
        prev = cur;
    }

    apps::KernelSetup setup = runKernel("PathFinder/K1");
    for (unsigned col = 0; col < cols; ++col) {
        ASSERT_EQ(setup.memory.peekU32(setup.outputs[0].addr + 4 * col),
                  prev[col])
            << col;
    }
}

TEST(Apps, LudDiagonalMatchesReference)
{
    const unsigned bs = 8;
    auto a = apps::randomFloats(bs * bs, kSeed + 1, 0.1f, 1.0f);
    for (unsigned i = 0; i < bs; ++i)
        a[i * bs + i] += static_cast<float>(bs);

    for (unsigned i = 0; i + 1 < bs; ++i) {
        for (unsigned tid = i + 1; tid < bs; ++tid)
            a[tid * bs + i] /= a[i * bs + i];
        for (unsigned tid = i + 1; tid < bs; ++tid) {
            for (unsigned j = i + 1; j < bs; ++j)
                a[tid * bs + j] -= a[tid * bs + i] * a[i * bs + j];
        }
    }

    apps::KernelSetup setup = runKernel("LUD/K46");
    auto out = dl(setup, setup.outputs[0].addr, bs * bs);
    for (unsigned i = 0; i < bs * bs; ++i)
        ASSERT_FLOAT_EQ(out[i], a[i]) << i;
}

TEST(Apps, LudPerimeterMatchesReference)
{
    const unsigned bs = 8;
    auto d = apps::randomFloats(bs * bs, kSeed + 1, 0.1f, 1.0f);
    for (unsigned i = 0; i < bs; ++i)
        d[i * bs + i] += static_cast<float>(bs);
    auto r = apps::randomFloats(bs * bs, kSeed + 2, 0.1f, 1.0f);
    auto c = apps::randomFloats(bs * bs, kSeed + 3, 0.1f, 1.0f);

    // Row strip: forward substitution per column.
    for (unsigned col = 0; col < bs; ++col) {
        for (unsigned i = 1; i < bs; ++i) {
            float acc = r[i * bs + col];
            for (unsigned k = 0; k < i; ++k)
                acc -= d[i * bs + k] * r[k * bs + col];
            r[i * bs + col] = acc;
        }
    }
    // Column strip: per row against the upper factor.
    for (unsigned row = 0; row < bs; ++row) {
        for (unsigned j = 0; j < bs; ++j) {
            float acc = c[row * bs + j];
            for (unsigned k = 0; k < j; ++k)
                acc -= c[row * bs + k] * d[k * bs + j];
            c[row * bs + j] = acc / d[j * bs + j];
        }
    }

    apps::KernelSetup setup = runKernel("LUD/K44");
    auto r_out = dl(setup, setup.outputs[0].addr, bs * bs);
    auto c_out = dl(setup, setup.outputs[1].addr, bs * bs);
    for (unsigned i = 0; i < bs * bs; ++i) {
        ASSERT_FLOAT_EQ(r_out[i], r[i]) << "row strip " << i;
        ASSERT_FLOAT_EQ(c_out[i], c[i]) << "col strip " << i;
    }
}

TEST(Apps, LudInternalMatchesReference)
{
    const unsigned bs = 8;
    auto a = apps::randomFloats(bs * bs, kSeed + 1, 0.1f, 1.0f);
    auto b = apps::randomFloats(bs * bs, kSeed + 2, 0.1f, 1.0f);
    auto c = apps::randomFloats(bs * bs, kSeed + 3, 0.1f, 1.0f);

    for (unsigned i = 0; i < bs; ++i) {
        for (unsigned j = 0; j < bs; ++j) {
            float acc = c[i * bs + j];
            for (unsigned k = 0; k < bs; ++k)
                acc -= a[i * bs + k] * b[k * bs + j];
            c[i * bs + j] = acc;
        }
    }

    apps::KernelSetup setup = runKernel("LUD/K45");
    auto out = dl(setup, setup.outputs[0].addr, bs * bs);
    for (unsigned i = 0; i < bs * bs; ++i)
        ASSERT_FLOAT_EQ(out[i], c[i]) << i;
}

TEST(Apps, HotspotMatchesReference)
{
    const unsigned bs = 8, gx = 2, gy = 2;
    const unsigned nc = gx * bs, nr = gy * bs;
    auto temp = apps::randomFloats(nr * nc, kSeed + 1, 320.0f, 340.0f);
    auto power = apps::randomFloats(nr * nc, kSeed + 2, 0.0f, 1.0f);

    // One stencil step reading `in`, clamping at grid edges; tile-edge
    // threads read global `fallback` (temp_in) instead of the tile.
    auto step = [&](const std::vector<float> &in,
                    const std::vector<float> &fallback,
                    bool tile_fallback) {
        std::vector<float> out(nr * nc);
        for (unsigned i = 0; i < nr; ++i) {
            for (unsigned j = 0; j < nc; ++j) {
                unsigned ti = i % bs, tj = j % bs;
                float center = in[i * nc + j];
                auto nbr = [&](int di, int dj, bool tile_edge) {
                    int ni_ = static_cast<int>(i) + di;
                    int nj_ = static_cast<int>(j) + dj;
                    if (ni_ < 0 || nj_ < 0 ||
                        ni_ >= static_cast<int>(nr) ||
                        nj_ >= static_cast<int>(nc)) {
                        return center; // grid-edge clamp
                    }
                    if (tile_edge && tile_fallback)
                        return fallback[ni_ * nc + nj_];
                    return in[ni_ * nc + nj_];
                };
                float top = nbr(-1, 0, ti == 0);
                float bot = nbr(+1, 0, ti == bs - 1);
                float lft = nbr(0, -1, tj == 0);
                float rgt = nbr(0, +1, tj == bs - 1);
                float lap = top + bot;
                lap = lap + lft;
                lap = lap + rgt;
                lap = center * -4.0f + lap;
                float v = lap * 0.2f + center;
                v = power[i * nc + j] * 0.0625f + v;
                out[i * nc + j] = v;
            }
        }
        return out;
    };

    auto new1 = step(temp, temp, false);
    auto new2 = step(new1, temp, true);

    apps::KernelSetup setup = runKernel("HotSpot/K1");
    auto out = dl(setup, setup.outputs[0].addr, nr * nc);
    for (unsigned i = 0; i < nr * nc; ++i)
        ASSERT_FLOAT_EQ(out[i], new2[i]) << i;
}

TEST(Apps, AllocationsFollowBumpOrder)
{
    // The reference tests above rely on the deterministic bump layout;
    // spot-check it for GEMM (A, B, then C = outputs[0]).
    apps::KernelSetup setup =
        apps::findKernel("GEMM/K1")->setup(apps::Scale::Small, kSeed);
    const unsigned n = 16;
    std::uint64_t expect_c = align8(align8(kBase + 4 * n * n) + 4 * n * n);
    EXPECT_EQ(setup.outputs[0].addr, expect_c);
}

TEST(Apps, PaperScaleThreadCountsMatchTable1)
{
    // Table I thread counts (and NN from Table VII).
    struct Row
    {
        const char *name;
        std::uint64_t threads;
    };
    const Row rows[] = {
        {"HotSpot/K1", 9216},   {"K-Means/K1", 2304},
        {"K-Means/K2", 2304},   {"Gaussian/K1", 512},
        {"Gaussian/K2", 4096},  {"Gaussian/K125", 512},
        {"Gaussian/K126", 4096}, {"PathFinder/K1", 1280},
        {"LUD/K44", 32},        {"LUD/K45", 256},
        {"LUD/K46", 16},        {"2DCONV/K1", 8192},
        {"MVT/K1", 512},        {"2MM/K1", 16384},
        {"GEMM/K1", 16384},     {"SYRK/K1", 16384},
        {"NN/K1", 43008},
    };
    for (const auto &row : rows) {
        apps::KernelSetup setup =
            apps::findKernel(row.name)->setup(apps::Scale::Paper, kSeed);
        EXPECT_EQ(setup.launch.threadCount(), row.threads) << row.name;
    }
}

} // namespace
} // namespace fsp
