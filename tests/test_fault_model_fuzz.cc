/**
 * @file
 * Property-based fuzz harness for the FaultModel strategy layer: a
 * seeded generator draws random model configurations, kernels, worker
 * counts and fault sites, and asserts the invariants every model must
 * uphold regardless of configuration:
 *
 *  - plans stay inside the model's declared footprint (kind and
 *    address range), and injection never mutates the injector's
 *    pristine golden image;
 *  - Outcome::Invalid sites never reach the anatomy profile (they are
 *    counted, not folded);
 *  - a completed journal replays and re-folds bit-identically, without
 *    re-injecting anything.
 *
 * The iteration budget is bounded and tunable: FSP_FUZZ_ITERS
 * (default 12) -- CI's long-fuzz job raises it.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "apps/app.hh"
#include "faults/campaign_engine.hh"
#include "faults/fault_model.hh"
#include "sim/memory.hh"
#include "util/env.hh"
#include "util/prng.hh"

namespace fsp {
namespace {

/** Draw a random-but-valid spec string for one built-in model. */
std::string
randomSpec(Prng &prng)
{
    const std::vector<std::string> &names = faults::builtinFaultModels();
    const std::string &name = names[prng.below(names.size())];
    if (name == "multi-bit")
        return name + ":width=" + std::to_string(2 + prng.below(7));
    if (name == "scattered-bits")
        return name + ":count=" + std::to_string(2 + prng.below(5));
    if (name == "intermittent-stuck") {
        if (prng.below(2) == 0)
            return name + ":period=prng";
        return name + ":period=" + std::to_string(1 + prng.below(32));
    }
    return name;
}

std::shared_ptr<const faults::FaultModel>
makeModel(const std::string &spec)
{
    std::string error;
    auto model = faults::parseFaultModel(spec, &error);
    EXPECT_NE(model, nullptr) << spec << ": " << error;
    return std::shared_ptr<const faults::FaultModel>(std::move(model));
}

/** Is @p kind permitted under @p footprint? */
bool
kindWithinFootprint(sim::FaultKind kind, faults::ModelFootprint footprint)
{
    switch (kind) {
      case sim::FaultKind::DestReg:
      case sim::FaultKind::DestRegStuck:
      case sim::FaultKind::PredState:
      case sim::FaultKind::PcState:
        return true; // thread-local state, legal for every footprint
      case sim::FaultKind::BarrierSkip:
      case sim::FaultKind::SharedMem:
        return footprint != faults::ModelFootprint::ThreadLocal;
      case sim::FaultKind::GlobalMem:
      case sim::FaultKind::GlobalMemLaunch:
        return footprint == faults::ModelFootprint::GlobalMemory;
    }
    return false;
}

/** Lazily constructed analyses so each kernel pays one golden run. */
analysis::KernelAnalysis &
analysisFor(std::size_t kernelIndex)
{
    static std::map<std::size_t,
                    std::unique_ptr<analysis::KernelAnalysis>>
        cache;
    auto &slot = cache[kernelIndex];
    if (!slot) {
        slot = std::make_unique<analysis::KernelAnalysis>(
            apps::allKernels()[kernelIndex], apps::Scale::Small);
    }
    return *slot;
}

TEST(FaultModelFuzz, InvariantsHoldForRandomConfigs)
{
    const std::uint64_t iters = envU64("FSP_FUZZ_ITERS", 12);
    const std::uint64_t master_seed = envU64("FSP_FUZZ_SEED", 20260809);
    Prng prng(master_seed);
    const auto &kernels = apps::allKernels();

    for (std::uint64_t iter = 0; iter < iters; ++iter) {
        const std::string spec = randomSpec(prng);
        const std::size_t kernel_index = prng.below(kernels.size());
        const std::uint64_t campaign_seed = prng();
        SCOPED_TRACE("iter=" + std::to_string(iter) + " model=" + spec +
                     " kernel=" + kernels[kernel_index].fullName() +
                     " seed=" + std::to_string(campaign_seed));

        analysis::KernelAnalysis &ka = analysisFor(kernel_index);
        auto model = makeModel(spec);
        ASSERT_NE(model, nullptr);

        // --- Draw sites: mostly valid, with deliberate out-of-range
        // ones mixed in so Invalid outcomes flow through the engine.
        auto sites = ka.space().sampleSites(5 + prng.below(6), prng);
        std::uint64_t threads = ka.space().threadCount();
        sites.push_back({threads + prng.below(4), 0, 1});  // no such thread
        sites.push_back(
            {prng.below(threads), ~std::uint64_t{0} >> 1, 2}); // icnt over

        // --- Invariant 1: plans stay inside the declared footprint.
        faults::ModelContext ctx;
        ctx.threads = threads;
        ctx.blockThreads = ka.executor().config().block.count();
        ctx.globalBase = sim::GlobalMemory::kBaseAddr;
        ctx.globalBytes = ka.injector().image().allocatedBytes();
        ctx.sharedBytes = ka.executor().config().sharedBytes;
        ctx.seed = campaign_seed;
        std::vector<std::uint64_t> icnt(threads);
        for (std::uint64_t t = 0; t < threads; ++t)
            icnt[t] = ka.injector().goldenICnt(t);
        ctx.goldenICnt = &icnt;
        for (const faults::FaultSite &site : sites) {
            if (!model->validate(site, ctx, nullptr))
                continue;
            sim::FaultPlan plan = model->plan(site, ctx);
            EXPECT_TRUE(kindWithinFootprint(plan.kind, model->footprint()))
                << "kind outside declared footprint";
            if (plan.kind == sim::FaultKind::SharedMem) {
                EXPECT_LT(plan.addr, ctx.sharedBytes);
            }
            if (plan.kind == sim::FaultKind::GlobalMem ||
                plan.kind == sim::FaultKind::GlobalMemLaunch) {
                EXPECT_GE(plan.addr, ctx.globalBase);
                EXPECT_LT(plan.addr, ctx.globalBase + ctx.globalBytes);
            }
        }

        // --- Run the campaign journaled; then the remaining invariants
        // fall out of one engine result + one replay.
        std::string path = testing::TempDir() + "fsp_fuzz_" +
                           std::to_string(iter) + ".fspj";
        std::remove(path.c_str());
        faults::CampaignOptions options;
        options.workers = 1 + static_cast<unsigned>(prng.below(4));
        options.chunkSize = 1 + prng.below(5);
        options.faultModel = model;
        options.journalPath = path;
        options.journalKey = {"fuzz-" + spec, campaign_seed};

        const std::vector<std::uint8_t> pristine =
            ka.injector().image().snapshot(
                sim::GlobalMemory::kBaseAddr,
                ka.injector().image().allocatedBytes());

        faults::CampaignEngine engine(ka.injector(), options);
        auto result = engine.run(sites);
        EXPECT_EQ(result.runs, sites.size());

        // Injection must never corrupt the pristine golden image the
        // injector restores from.
        EXPECT_EQ(ka.injector().image().snapshot(
                      sim::GlobalMemory::kBaseAddr,
                      ka.injector().image().allocatedBytes()),
                  pristine)
            << "pristine image mutated by injection";

        // --- Invariant 2: Invalid sites are tallied in the outcome
        // distribution but never folded into the anatomy profile.
        double invalid = result.dist.weightOf(faults::Outcome::Invalid);
        EXPECT_GE(invalid, 2.0) << "crafted invalid sites were accepted";
        std::uint64_t profiled = 0;
        for (const auto &[index, counts] : result.anatomy.byStatic())
            profiled += counts.runs;
        EXPECT_EQ(profiled + static_cast<std::uint64_t>(invalid),
                  result.runs)
            << "anatomy profile saw an Invalid run";

        // --- Invariant 3: a completed journal replays bit-identically
        // with zero injections.
        faults::CampaignOptions replay = options;
        replay.resume = true;
        faults::CampaignEngine second(ka.injector(), replay);
        auto replayed = second.run(sites);
        EXPECT_EQ(second.lastStats().injectedSites, 0u);
        EXPECT_EQ(result.runs, replayed.runs);
        for (faults::Outcome o :
             {faults::Outcome::Masked, faults::Outcome::SDC,
              faults::Outcome::Other, faults::Outcome::Invalid}) {
            EXPECT_EQ(result.dist.weightOf(o), replayed.dist.weightOf(o))
                << faults::outcomeName(o);
        }
        EXPECT_EQ(result.anatomy.sdcRuns(), replayed.anatomy.sdcRuns());
        EXPECT_EQ(result.anatomy.magnitude(),
                  replayed.anatomy.magnitude());
        for (std::size_t p = 0; p < faults::kNumSdcPatterns; ++p) {
            auto pattern = static_cast<faults::SdcPattern>(p);
            EXPECT_EQ(result.anatomy.patternRuns(pattern),
                      replayed.anatomy.patternRuns(pattern));
            EXPECT_EQ(result.anatomy.patternWeight(pattern),
                      replayed.anatomy.patternWeight(pattern));
        }
        std::remove(path.c_str());
    }
}

} // namespace
} // namespace fsp
