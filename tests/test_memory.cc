/**
 * @file
 * Unit tests for the simulator memory spaces: bump allocation and
 * alignment, bounds/alignment checking on loads and stores (the crash
 * model), host accessors, snapshots, shared memory, and the param
 * buffer builder.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "sim/memory.hh"

namespace fsp {
namespace {

using namespace sim;

TEST(GlobalMemory, AllocateRespectsAlignmentAndBase)
{
    GlobalMemory m(1 << 12);
    std::uint64_t a = m.allocate(3, 1);
    std::uint64_t b = m.allocate(8, 8);
    std::uint64_t c = m.allocate(1, 16);
    EXPECT_EQ(a, GlobalMemory::kBaseAddr);
    EXPECT_EQ(b % 8, 0u);
    EXPECT_GT(b, a);
    EXPECT_EQ((c - GlobalMemory::kBaseAddr) % 16, 0u);
    EXPECT_EQ(m.allocatedBytes(),
              static_cast<std::size_t>(c - GlobalMemory::kBaseAddr + 1));
}

TEST(GlobalMemory, LoadStoreWidths)
{
    GlobalMemory m(1 << 12);
    std::uint64_t a = m.allocate(16);
    EXPECT_EQ(m.store(a, 8, 0x1122334455667788ull), AccessError::None);
    std::uint64_t v = 0;
    EXPECT_EQ(m.load(a, 8, v), AccessError::None);
    EXPECT_EQ(v, 0x1122334455667788ull);
    EXPECT_EQ(m.load(a, 4, v), AccessError::None);
    EXPECT_EQ(v, 0x55667788u);
    EXPECT_EQ(m.load(a + 2, 2, v), AccessError::None);
    EXPECT_EQ(v, 0x5566u); // little-endian byte order
    EXPECT_EQ(m.load(a + 1, 1, v), AccessError::None);
    EXPECT_EQ(v, 0x77u);
}

TEST(GlobalMemory, BoundsAndAlignmentErrors)
{
    GlobalMemory m(1 << 12);
    std::uint64_t a = m.allocate(8);
    std::uint64_t v = 0;

    // Null page.
    EXPECT_EQ(m.load(0, 4, v), AccessError::Unmapped);
    EXPECT_EQ(m.load(GlobalMemory::kBaseAddr - 4, 4, v),
              AccessError::Unmapped);
    // Beyond the allocation frontier (capacity does not matter).
    EXPECT_EQ(m.load(a + 8, 4, v), AccessError::Unmapped);
    // Straddling the frontier.
    EXPECT_EQ(m.load(a + 6, 4, v), AccessError::Unmapped);
    // Misaligned.
    EXPECT_EQ(m.load(a + 2, 4, v), AccessError::Misaligned);
    EXPECT_EQ(m.store(a + 1, 2, 1), AccessError::Misaligned);
    // In-bounds still fine.
    EXPECT_EQ(m.store(a + 4, 4, 7), AccessError::None);
}

TEST(GlobalMemory, CopySemanticsForCampaignRestore)
{
    GlobalMemory pristine(1 << 12);
    std::uint64_t a = pristine.allocate(4);
    pristine.pokeU32(a, 0xABCD);

    GlobalMemory scratch = pristine;
    scratch.pokeU32(a, 0xFFFF);
    EXPECT_EQ(pristine.peekU32(a), 0xABCDu);

    scratch = pristine;
    EXPECT_EQ(scratch.peekU32(a), 0xABCDu);
}

TEST(GlobalMemory, HostAccessorsAndSnapshot)
{
    GlobalMemory m(1 << 12);
    std::uint64_t a = m.allocate(24);
    m.pokeF32(a, 1.5f);
    m.pokeF64(a + 8, -2.25);
    m.pokeU64(a + 16, 42);
    EXPECT_EQ(m.peekF32(a), 1.5f);
    EXPECT_EQ(m.peekF64(a + 8), -2.25);
    EXPECT_EQ(m.peekU64(a + 16), 42u);

    auto snap = m.snapshot(a, 4);
    ASSERT_EQ(snap.size(), 4u);
    float back;
    std::memcpy(&back, snap.data(), 4);
    EXPECT_EQ(back, 1.5f);
}

TEST(SharedMemory, BoundsCheckedAndClearable)
{
    SharedMemory s(64);
    std::uint64_t v = 0;
    EXPECT_EQ(s.store(0, 4, 7), AccessError::None);
    EXPECT_EQ(s.store(60, 4, 9), AccessError::None);
    EXPECT_EQ(s.store(64, 4, 1), AccessError::Unmapped);
    EXPECT_EQ(s.store(62, 4, 1), AccessError::Unmapped);
    EXPECT_EQ(s.store(2, 4, 1), AccessError::Misaligned);
    EXPECT_EQ(s.load(0, 4, v), AccessError::None);
    EXPECT_EQ(v, 7u);
    s.clear();
    EXPECT_EQ(s.load(0, 4, v), AccessError::None);
    EXPECT_EQ(v, 0u);
}

TEST(DirtyTracking, StartsCleanAndMarksOnStore)
{
    GlobalMemory m(1 << 14);
    std::uint64_t a = m.allocate(1024);
    EXPECT_FALSE(m.hasDirtyBytes());
    EXPECT_TRUE(m.dirtyIntervals().empty());

    ASSERT_EQ(m.store(a + 4, 4, 0xAABBCCDDu), AccessError::None);
    EXPECT_TRUE(m.hasDirtyBytes());
    auto dirty = m.dirtyIntervals();
    ASSERT_EQ(dirty.rangeCount(), 1u);
    // Chunk-granular superset of the written word.
    EXPECT_TRUE(dirty.containsRange(a + 4, a + 8));
    EXPECT_EQ(dirty.totalBytes() % GlobalMemory::kDirtyChunkBytes, 0u);
}

TEST(DirtyTracking, PokesMarkDirtyToo)
{
    GlobalMemory m(1 << 14);
    std::uint64_t a = m.allocate(64);
    m.pokeU32(a, 1);
    EXPECT_TRUE(m.hasDirtyBytes());
    m.resetDirtyTracking();
    EXPECT_FALSE(m.hasDirtyBytes());
    m.pokeU64(a + 8, 2);
    EXPECT_TRUE(m.hasDirtyBytes());
    m.resetDirtyTracking();
    m.pokeF32(a + 16, 1.5f);
    EXPECT_TRUE(m.hasDirtyBytes());
    m.resetDirtyTracking();
    m.pokeF64(a + 24, 2.5);
    EXPECT_TRUE(m.hasDirtyBytes());
}

TEST(DirtyTracking, WriteStraddlingChunkBoundaryMarksBothChunks)
{
    constexpr std::size_t kChunk = GlobalMemory::kDirtyChunkBytes;
    GlobalMemory m(1 << 14);
    std::uint64_t a = m.allocate(4 * kChunk, kChunk);

    // An 8-byte write whose last 4 bytes land in the next chunk.
    // (Device stores are naturally aligned and cannot straddle; host
    // pokes are only bounds-checked, so they can.)
    std::uint64_t straddle = a + kChunk * 2 - 4;
    GlobalMemory pristine = m;
    pristine.resetDirtyTracking();
    m.resetDirtyTracking();

    m.pokeU64(straddle, ~0ull);
    auto dirty = m.dirtyIntervals();
    EXPECT_TRUE(dirty.containsRange(straddle, straddle + 8));
    EXPECT_EQ(dirty.totalBytes(), 2 * kChunk); // both chunks, merged

    EXPECT_EQ(m.restoreFrom(pristine), 2 * kChunk);
    EXPECT_EQ(m.peekU64(straddle), 0u);
    EXPECT_FALSE(m.hasDirtyBytes());
}

TEST(DirtyTracking, AdjacentChunksMergeIntoOneInterval)
{
    constexpr std::size_t kChunk = GlobalMemory::kDirtyChunkBytes;
    GlobalMemory m(1 << 14);
    std::uint64_t a = m.allocate(8 * kChunk, kChunk);
    m.resetDirtyTracking();

    // Two stores in adjacent chunks, issued out of order.
    ASSERT_EQ(m.store(a + kChunk, 4, 1), AccessError::None);
    ASSERT_EQ(m.store(a, 4, 2), AccessError::None);
    auto dirty = m.dirtyIntervals();
    ASSERT_EQ(dirty.rangeCount(), 1u);
    EXPECT_EQ(dirty.totalBytes(), 2 * kChunk);

    // A distant store stays a separate interval.
    ASSERT_EQ(m.store(a + 5 * kChunk, 4, 3), AccessError::None);
    EXPECT_EQ(m.dirtyIntervals().rangeCount(), 2u);
}

TEST(DirtyTracking, RestoreOfZeroWriteRunCopiesNothing)
{
    GlobalMemory m(1 << 14);
    m.allocate(1024);
    GlobalMemory pristine = m;
    m.resetDirtyTracking();
    EXPECT_EQ(m.restoreFrom(pristine), 0u);
    EXPECT_EQ(m.restoreFrom(pristine), 0u);
}

TEST(DirtyTracking, RestoreAfterRestoreIsIdempotent)
{
    GlobalMemory m(1 << 14);
    std::uint64_t a = m.allocate(1024);
    m.pokeU32(a, 41);
    GlobalMemory pristine = m;
    m.resetDirtyTracking();

    m.pokeU32(a, 42);
    std::uint64_t first = m.restoreFrom(pristine);
    EXPECT_GT(first, 0u);
    EXPECT_EQ(m.peekU32(a), 41u);
    // Nothing written since: the second restore is a no-op.
    EXPECT_EQ(m.restoreFrom(pristine), 0u);
    EXPECT_EQ(m.peekU32(a), 41u);
}

TEST(DirtyTracking, MarksSurviveAbortedMutationSequences)
{
    // A crash-aborted run leaves whatever it wrote before the crash;
    // the marks must cover those bytes so restore reverts them.
    GlobalMemory m(1 << 14);
    std::uint64_t a = m.allocate(1024);
    GlobalMemory pristine = m;
    m.resetDirtyTracking();

    ASSERT_EQ(m.store(a + 128, 4, 0xDEADu), AccessError::None);
    // The "crash": an out-of-bounds store that mutates nothing.
    std::uint64_t v = 0;
    EXPECT_EQ(m.load(a + 100000, 4, v), AccessError::Unmapped);

    EXPECT_TRUE(m.hasDirtyBytes());
    EXPECT_GT(m.restoreFrom(pristine), 0u);
    EXPECT_EQ(m.peekU32(a + 128), 0u);
}

TEST(DirtyTracking, CopyCarriesDirtyStateAndRestoresIndependently)
{
    GlobalMemory m(1 << 14);
    std::uint64_t a = m.allocate(512);
    GlobalMemory pristine = m;
    m.resetDirtyTracking();
    m.pokeU32(a, 7);

    GlobalMemory copy = m;
    EXPECT_TRUE(copy.hasDirtyBytes());
    EXPECT_GT(copy.restoreFrom(pristine), 0u);
    EXPECT_EQ(copy.peekU32(a), 0u);
    // The original still holds its value and its own dirty state.
    EXPECT_EQ(m.peekU32(a), 7u);
    EXPECT_TRUE(m.hasDirtyBytes());
}

TEST(MemoryDelta, CaptureAndApplyRoundTrip)
{
    GlobalMemory pristine(1 << 12);
    std::uint64_t a = pristine.allocate(1024);

    GlobalMemory m = pristine;
    m.resetDirtyTracking();
    EXPECT_TRUE(m.captureDelta().empty());

    m.pokeU32(a, 0xdeadbeef);
    m.pokeU32(a + 600, 7);
    MemoryDelta delta = m.captureDelta();
    EXPECT_FALSE(delta.empty());
    ASSERT_EQ(delta.chunks.size(), 2u); // two distinct 256-byte chunks
    EXPECT_LT(delta.chunks[0], delta.chunks[1]);
    EXPECT_GT(delta.byteSize(), delta.bytes.size());

    // Applying onto a pristine copy reproduces the captured contents.
    GlobalMemory other = pristine;
    other.resetDirtyTracking();
    std::uint64_t applied = other.applyDelta(delta);
    EXPECT_EQ(applied, delta.bytes.size());
    EXPECT_EQ(other.peekU32(a), 0xdeadbeefu);
    EXPECT_EQ(other.peekU32(a + 600), 7u);

    // applyDelta marks its chunks dirty, so a dirty-range restore
    // reverts exactly what was applied -- the injector relies on this
    // between checkpointed runs.
    EXPECT_EQ(other.restoreFrom(pristine), applied);
    EXPECT_EQ(other.peekU32(a), pristine.peekU32(a));
    EXPECT_EQ(other.peekU32(a + 600), pristine.peekU32(a + 600));
}

TEST(MemoryDelta, ContentsClipAtAllocationFrontier)
{
    GlobalMemory pristine(1 << 12);
    std::uint64_t a = pristine.allocate(300);
    GlobalMemory m = pristine;
    m.resetDirtyTracking();

    // The dirtied chunk spans [256, 512) but only [256, 300) is
    // allocated; the capture must not leak past the frontier.
    m.pokeU32(a + 280, 9);
    MemoryDelta delta = m.captureDelta();
    ASSERT_EQ(delta.chunks.size(), 1u);
    EXPECT_EQ(delta.bytes.size(), 300u - 256u);

    GlobalMemory other = pristine;
    other.resetDirtyTracking();
    EXPECT_EQ(other.applyDelta(delta), delta.bytes.size());
    EXPECT_EQ(other.peekU32(a + 280), 9u);
}

TEST(ParamBuffer, OffsetsAndAlignment)
{
    ParamBuffer p;
    std::size_t a = p.addU32(1);
    std::size_t b = p.addU32(2);
    std::size_t c = p.addU64(3);      // 8-aligned: padding inserted?
    std::size_t d = p.addF32(1.5f);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 4u);
    EXPECT_EQ(c % 8, 0u);
    EXPECT_EQ(d % 4, 0u);

    std::uint64_t v = 0;
    EXPECT_EQ(p.load(a, 4, v), AccessError::None);
    EXPECT_EQ(v, 1u);
    EXPECT_EQ(p.load(c, 8, v), AccessError::None);
    EXPECT_EQ(v, 3u);
    EXPECT_EQ(p.load(p.size(), 4, v), AccessError::Unmapped);
    EXPECT_EQ(p.load(1, 4, v), AccessError::Misaligned);
}

} // namespace
} // namespace fsp
