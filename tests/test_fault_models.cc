/**
 * @file
 * Fault-model strategy suite.  Three guarantees, per built-in model:
 *
 *  1. spec parsing and identity: every built-in parses from its spec
 *     string, renders a canonical identity, and hashes distinctly;
 *  2. campaign equivalence: for every registered kernel the engine
 *     produces bit-identical profiles (outcome weights AND the anatomy
 *     aggregate) at workers {1,2,4,8}, with slicing and checkpointed
 *     replay toggled on and off;
 *  3. durable sessions: a journaled campaign under a non-default model
 *     survives a mid-campaign kill and resumes bit-identically, and a
 *     resume under a *different* model is rejected with a clear
 *     JournalError naming the model.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "apps/app.hh"
#include "faults/campaign_engine.hh"
#include "faults/campaign_journal.hh"
#include "faults/fault_model.hh"

namespace fsp {
namespace {

std::shared_ptr<const faults::FaultModel>
makeModel(const std::string &spec)
{
    std::string error;
    std::unique_ptr<faults::FaultModel> model =
        faults::parseFaultModel(spec, &error);
    EXPECT_NE(model, nullptr) << spec << ": " << error;
    return std::shared_ptr<const faults::FaultModel>(std::move(model));
}

void
expectSameDist(const faults::OutcomeDist &a, const faults::OutcomeDist &b)
{
    EXPECT_EQ(a.runs(), b.runs());
    for (faults::Outcome o :
         {faults::Outcome::Masked, faults::Outcome::SDC,
          faults::Outcome::Other, faults::Outcome::Invalid}) {
        // Exact equality: the engine folds serially in site order, so
        // the weighted doubles must match bit-for-bit.
        EXPECT_EQ(a.weightOf(o), b.weightOf(o))
            << "outcome " << faults::outcomeName(o);
    }
}

void
expectSameAnatomy(const faults::SdcAnatomyProfile &a,
                  const faults::SdcAnatomyProfile &b)
{
    EXPECT_EQ(a.sdcRuns(), b.sdcRuns());
    for (std::size_t p = 0; p < faults::kNumSdcPatterns; ++p) {
        auto pattern = static_cast<faults::SdcPattern>(p);
        EXPECT_EQ(a.patternRuns(pattern), b.patternRuns(pattern))
            << faults::sdcPatternName(pattern);
        EXPECT_EQ(a.patternWeight(pattern), b.patternWeight(pattern))
            << faults::sdcPatternName(pattern);
    }
    EXPECT_EQ(a.magnitude(), b.magnitude());
    ASSERT_EQ(a.byStatic().size(), b.byStatic().size());
    auto ia = a.byStatic().begin();
    auto ib = b.byStatic().begin();
    for (; ia != a.byStatic().end(); ++ia, ++ib) {
        EXPECT_EQ(ia->first, ib->first);
        EXPECT_EQ(ia->second.runs, ib->second.runs);
        EXPECT_EQ(ia->second.masked, ib->second.masked);
        EXPECT_EQ(ia->second.sdc, ib->second.sdc);
        EXPECT_EQ(ia->second.other, ib->second.other);
    }
}

void
expectSameResult(const faults::CampaignResult &a,
                 const faults::CampaignResult &b)
{
    EXPECT_EQ(a.runs, b.runs);
    expectSameDist(a.dist, b.dist);
    expectSameAnatomy(a.anatomy, b.anatomy);
}

/** Weights chosen to expose any reordering of the double sums. */
std::vector<faults::WeightedSite>
weightSites(const std::vector<faults::FaultSite> &sites)
{
    std::vector<faults::WeightedSite> weighted;
    weighted.reserve(sites.size());
    for (std::size_t i = 0; i < sites.size(); ++i)
        weighted.push_back(
            {sites[i], 0.1 + 0.3 * static_cast<double>(i % 7)});
    return weighted;
}

TEST(FaultModelSpec, EveryBuiltinParsesToItsOwnIdentity)
{
    std::set<std::string> identities;
    std::set<std::uint64_t> hashes;
    for (const std::string &name : faults::builtinFaultModels()) {
        auto model = makeModel(name);
        ASSERT_NE(model, nullptr);
        EXPECT_EQ(model->kind(), name);
        EXPECT_FALSE(faults::faultModelDescription(name).empty()) << name;
        EXPECT_TRUE(identities.insert(model->identity()).second)
            << "duplicate identity " << model->identity();
        EXPECT_TRUE(hashes.insert(model->identityHash()).second)
            << "identity hash collision on " << name;
        // clone() preserves identity (and therefore the journal hash).
        EXPECT_EQ(model->clone()->identity(), model->identity());
    }
    // Parameters are part of the identity.
    EXPECT_NE(makeModel("multi-bit:width=2")->identity(),
              makeModel("multi-bit:width=3")->identity());
    // ... and canonicalized: the default width spells out explicitly.
    EXPECT_EQ(makeModel("multi-bit")->identity(),
              makeModel("multi-bit:width=2")->identity());
}

TEST(FaultModelSpec, BadSpecsAreRejectedWithDiagnostics)
{
    std::string error;
    EXPECT_EQ(faults::parseFaultModel("no-such-model", &error), nullptr);
    EXPECT_NE(error.find("no-such-model"), std::string::npos) << error;
    EXPECT_EQ(faults::parseFaultModel("multi-bit:bogus=1", &error),
              nullptr);
    EXPECT_NE(error.find("bogus"), std::string::npos) << error;
    EXPECT_EQ(faults::parseFaultModel("multi-bit:width=0", &error),
              nullptr);
    EXPECT_EQ(faults::parseFaultModel("multi-bit:width=nope", &error),
              nullptr);
    EXPECT_EQ(faults::parseFaultModel("", &error), nullptr);
}

TEST(FaultModelSpec, PlansAreDeterministicInSiteAndSeed)
{
    const apps::KernelSpec *spec = apps::findKernel("PathFinder/K1");
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);
    faults::ModelContext ctx;
    ctx.threads = 16;
    ctx.blockThreads = 8;
    ctx.globalBase = 0x1000;
    ctx.globalBytes = 4096;
    ctx.sharedBytes = 256;
    ctx.seed = 7;
    std::vector<std::uint64_t> icnt(16, 100);
    ctx.goldenICnt = &icnt;

    faults::FaultSite site{3, 41, 5};
    for (const std::string &name : faults::builtinFaultModels()) {
        auto model = makeModel(name);
        if (!model->validate(site, ctx, nullptr))
            continue;
        auto a = model->plan(site, ctx);
        auto b = model->plan(site, ctx);
        EXPECT_EQ(a.kind, b.kind) << name;
        EXPECT_EQ(a.mask, b.mask) << name;
        EXPECT_EQ(a.addr, b.addr) << name;
        EXPECT_EQ(a.period, b.period) << name;
    }

    // Memory models draw their address from the campaign seed: a
    // different seed must be able to pick a different byte.
    auto gmem = makeModel("gmem-flip");
    auto plan7 = gmem->plan(site, ctx);
    faults::ModelContext other = ctx;
    bool moved = false;
    for (std::uint64_t seed = 8; seed < 24 && !moved; ++seed) {
        other.seed = seed;
        moved = gmem->plan(site, other).addr != plan7.addr;
    }
    EXPECT_TRUE(moved) << "gmem-flip address ignores the campaign seed";
}

TEST(FaultModelSpec, ValidationRejectsOutOfRangeSites)
{
    faults::ModelContext ctx;
    ctx.threads = 4;
    ctx.blockThreads = 4;
    ctx.globalBytes = 64;
    std::vector<std::uint64_t> icnt = {10, 10, 10, 10};
    ctx.goldenICnt = &icnt;

    auto model = makeModel("single-bit");
    std::string why;
    EXPECT_FALSE(model->validate({9, 0, 0}, ctx, &why));
    EXPECT_FALSE(why.empty());
    EXPECT_FALSE(model->validate({0, 10, 0}, ctx, &why));
    EXPECT_TRUE(model->validate({0, 9, 0}, ctx, nullptr));

    // Shared-memory faults need a kernel that has shared memory.
    auto smem = makeModel("smem-flip");
    ctx.sharedBytes = 0;
    EXPECT_FALSE(smem->validate({0, 1, 0}, ctx, &why));
    EXPECT_NE(why.find("shared"), std::string::npos) << why;
    ctx.sharedBytes = 128;
    EXPECT_TRUE(smem->validate({0, 1, 0}, ctx, nullptr));
}

/**
 * The heart of the suite: per model, per registered kernel, the engine
 * profile is bit-identical at every worker count and with the sliced /
 * checkpointed fast paths toggled either way.
 */
TEST(FaultModelEquivalence, BitIdenticalAcrossWorkersSlicingCheckpoints)
{
    struct Config
    {
        unsigned workers;
        bool slicing;
        bool checkpoints;
    };
    const Config kConfigs[] = {
        {2, true, true},  {4, true, true},  {8, true, true},
        {2, false, true}, {2, true, false}, {1, false, false},
    };

    for (const auto &spec : apps::allKernels()) {
        SCOPED_TRACE(spec.fullName());
        analysis::KernelAnalysis ka(spec, apps::Scale::Small);
        Prng prng(2026);
        auto weighted = weightSites(ka.space().sampleSites(8, prng));

        for (const std::string &name : faults::builtinFaultModels()) {
            SCOPED_TRACE("model=" + name);
            auto model = makeModel(name);

            faults::CampaignOptions reference_options;
            reference_options.workers = 1;
            reference_options.chunkSize = 3;
            reference_options.faultModel = model;
            reference_options.journalKey.seed = 2026;
            faults::CampaignEngine reference(ka.injector(),
                                             reference_options);
            auto expected = reference.run(weighted);

            for (const Config &config : kConfigs) {
                SCOPED_TRACE("workers=" +
                             std::to_string(config.workers) +
                             " slicing=" + std::to_string(config.slicing) +
                             " ckpt=" + std::to_string(config.checkpoints));
                faults::CampaignOptions options = reference_options;
                options.workers = config.workers;
                options.allowSlicing = config.slicing;
                options.allowCheckpoints = config.checkpoints;
                faults::CampaignEngine engine(ka.injector(), options);
                expectSameResult(expected, engine.run(weighted));
            }
        }
    }
}

/** Kill/resume durability under a non-default model (acceptance bar). */
TEST(FaultModelJournal, NonDefaultModelResumesBitIdentically)
{
    const apps::KernelSpec *spec = apps::findKernel("PathFinder/K1");
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);
    Prng prng(2026);
    auto weighted = weightSites(ka.space().sampleSites(60, prng));

    for (const std::string &name :
         {std::string("intermittent-stuck:period=prng"),
          std::string("gmem-flip"), std::string("pred-flip")}) {
        SCOPED_TRACE(name);
        auto model = makeModel(name);
        std::string path = testing::TempDir() + "fsp_model_resume.fspj";
        std::remove(path.c_str());

        faults::CampaignOptions base;
        base.workers = 4;
        base.chunkSize = 5;
        base.faultModel = model;
        base.journalPath = path;
        base.journalKey = {"model-journal-suite", 2026};

        faults::CampaignEngine reference(ka.injector(), {});
        // The uninterrupted profile, same model, no journal.
        faults::CampaignOptions plain;
        plain.workers = 4;
        plain.chunkSize = 5;
        plain.faultModel = model;
        plain.journalKey.seed = base.journalKey.seed;
        faults::CampaignEngine uninterrupted(ka.injector(), plain);
        auto expected = uninterrupted.run(weighted);

        faults::CampaignOptions killed = base;
        killed.abortAfterSites = 18;
        faults::CampaignEngine first(ka.injector(), killed);
        EXPECT_THROW(first.run(weighted), faults::CampaignAborted);

        faults::CampaignOptions resumed = base;
        resumed.resume = true;
        faults::CampaignEngine second(ka.injector(), resumed);
        expectSameResult(expected, second.run(weighted));
        EXPECT_GE(second.lastStats().replayedSites,
                  killed.abortAfterSites);
        std::remove(path.c_str());
    }
}

TEST(FaultModelJournal, ResumeUnderDifferentModelRejected)
{
    const apps::KernelSpec *spec = apps::findKernel("PathFinder/K1");
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);
    Prng prng(2026);
    auto weighted = weightSites(ka.space().sampleSites(30, prng));

    std::string path = testing::TempDir() + "fsp_model_mismatch.fspj";
    std::remove(path.c_str());

    faults::CampaignOptions options;
    options.workers = 2;
    options.chunkSize = 5;
    options.faultModel = makeModel("multi-bit:width=3");
    options.journalPath = path;
    options.journalKey = {"mismatch-suite", 2026};
    faults::CampaignEngine first(ka.injector(), options);
    first.run(weighted);

    // Same campaign identity, different model: refused with a message
    // that names the fault model (not a generic stale-header error).
    faults::CampaignOptions resumed = options;
    resumed.resume = true;
    resumed.faultModel = nullptr; // back to the default single-bit
    faults::CampaignEngine second(ka.injector(), resumed);
    try {
        second.run(weighted);
        FAIL() << "model mismatch accepted";
    } catch (const faults::JournalError &error) {
        EXPECT_NE(std::string(error.what()).find("fault model"),
                  std::string::npos)
            << error.what();
    }

    // The recorded model still resumes cleanly.
    resumed.faultModel = options.faultModel;
    faults::CampaignEngine third(ka.injector(), resumed);
    auto result = third.run(weighted);
    EXPECT_EQ(result.runs, weighted.size());
    EXPECT_EQ(third.lastStats().injectedSites, 0u);
    std::remove(path.c_str());
}

/** The facade route: setFaultModel() steers serial and engine runs. */
TEST(FaultModelFacade, AnalyzerForwardsModelToEngines)
{
    const apps::KernelSpec *spec = apps::findKernel("PathFinder/K1");
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);
    EXPECT_EQ(ka.faultModel().kind(), "single-bit");

    auto model = makeModel("multi-bit:width=3");
    analysis::AnalysisConfig facade;
    facade.faultModel = model;
    facade.modelSeed = 2026;
    ka.configure(facade);
    EXPECT_EQ(ka.faultModel().identity(), model->identity());

    // Engine workers clone the facade injector, so campaigns run under
    // the facade's model even without CampaignOptions::faultModel.
    auto &engine = ka.campaignEngine({});
    EXPECT_EQ(engine.faultModel().identity(), model->identity());
}

} // namespace
} // namespace fsp
