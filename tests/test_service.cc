/**
 * @file
 * Campaign service suite: wire-protocol encode/decode and frame
 * reassembly invariants, spec round-trips, the daemon's control plane
 * (ping, status, metrics, shutdown, submit validation), and -- when
 * FSP_WORKER_BINARY points at the built fsp tool -- a full in-process
 * end-to-end: submit a sharded campaign, stream its progress, survive
 * a crash-injected worker, merge the shard journals, and compare the
 * result bit-for-bit against a local engine run.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "analysis/analyzer.hh"
#include "apps/app.hh"
#include "faults/campaign_engine.hh"
#include "faults/fault_model.hh"
#include "faults/journal_merge.hh"
#include "service/client.hh"
#include "service/endpoint.hh"
#include "service/protocol.hh"
#include "service/server.hh"
#include "service/worker.hh"

namespace fsp {
namespace {

using service::CampaignSpec;
using service::FrameReader;
using service::MsgType;
using service::ProtocolError;
using service::WireReader;
using service::WireWriter;

TEST(WireFormatTest, ScalarAndStringRoundTrip)
{
    WireWriter writer;
    writer.u8(0xab);
    writer.u32(0xdeadbeef);
    writer.u64(0x0123456789abcdefull);
    writer.f64(-0.1);
    writer.str("hello");
    writer.str("");

    WireReader reader(writer.payload());
    EXPECT_EQ(reader.u8(), 0xab);
    EXPECT_EQ(reader.u32(), 0xdeadbeefu);
    EXPECT_EQ(reader.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(reader.f64(), -0.1); // exact: bit-pattern transport
    EXPECT_EQ(reader.str(), "hello");
    EXPECT_EQ(reader.str(), "");
    EXPECT_NO_THROW(reader.expectEnd());
}

TEST(WireFormatTest, TruncatedReadsThrow)
{
    WireWriter writer;
    writer.u32(7);
    WireReader reader(writer.payload());
    EXPECT_EQ(reader.u32(), 7u);
    EXPECT_THROW(reader.u8(), ProtocolError);

    // A string announcing more bytes than the payload holds.
    WireWriter lying;
    lying.u32(1000);
    WireReader liar(lying.payload());
    EXPECT_THROW(liar.str(), ProtocolError);
}

TEST(WireFormatTest, SpecRoundTripsExactly)
{
    CampaignSpec spec;
    spec.kind = CampaignSpec::Kind::Sites;
    spec.kernel = "GEMM/K1";
    spec.paperScale = true;
    spec.seed = 77;
    spec.faultModel = "multi-bit:width=3";
    spec.shards = 8;
    spec.procs = 3;
    spec.threadsPerWorker = 2;
    spec.chunk = 17;
    spec.pilots = 2;
    spec.loopIters = 5;
    spec.bitSamples = 9;
    spec.noSlicing = true;
    spec.noCheckpoints = true;
    spec.abortAfterSites = 123;
    spec.cacheDir = "/tmp/fsp-section-cache";
    spec.sites = {{{3, 141, 7}, 0.25}, {{9, 2653, 31}, 1.75}};

    WireWriter writer;
    service::encodeSpec(writer, spec);
    WireReader reader(writer.payload());
    CampaignSpec decoded = service::decodeSpec(reader);
    EXPECT_NO_THROW(reader.expectEnd());
    EXPECT_EQ(decoded, spec);
}

TEST(WireFormatTest, MalformedSpecRejected)
{
    // An out-of-range kind byte.
    WireWriter writer;
    writer.u8(9);
    WireReader reader(writer.payload());
    EXPECT_THROW(service::decodeSpec(reader), ProtocolError);
}

TEST(FrameReaderTest, ReassemblesByteAtATime)
{
    WireWriter writer;
    writer.u8(0x42);
    writer.str("chunked");
    std::vector<std::uint8_t> framed = service::frame(writer.payload());

    FrameReader frames;
    std::vector<std::uint8_t> payload;
    for (std::size_t i = 0; i < framed.size(); ++i) {
        EXPECT_FALSE(frames.next(payload)) << "early frame at byte " << i;
        frames.feed(&framed[i], 1);
    }
    ASSERT_TRUE(frames.next(payload));
    EXPECT_EQ(payload, writer.payload());
    EXPECT_FALSE(frames.next(payload));
}

TEST(FrameReaderTest, SplitsCoalescedFrames)
{
    WireWriter a, b;
    a.u8(1);
    b.u8(2);
    b.u64(99);
    std::vector<std::uint8_t> stream = service::frame(a.payload());
    std::vector<std::uint8_t> second = service::frame(b.payload());
    stream.insert(stream.end(), second.begin(), second.end());

    FrameReader frames;
    frames.feed(stream.data(), stream.size());
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(frames.next(payload));
    EXPECT_EQ(payload, a.payload());
    ASSERT_TRUE(frames.next(payload));
    EXPECT_EQ(payload, b.payload());
    EXPECT_FALSE(frames.next(payload));
}

TEST(FrameReaderTest, OversizedAnnouncedLengthThrowsImmediately)
{
    // 512 MiB announced: must throw on the 4-byte header alone, never
    // buffer toward it.
    std::uint8_t header[4] = {0x00, 0x00, 0x00, 0x20};
    FrameReader frames;
    EXPECT_THROW(
        {
            frames.feed(header, sizeof(header));
            std::vector<std::uint8_t> payload;
            frames.next(payload);
        },
        ProtocolError);
}

TEST(SpecFileTest, RoundTripsThroughDisk)
{
    CampaignSpec spec;
    spec.kernel = "MVT/K1";
    spec.seed = 5;
    spec.shards = 3;
    std::string path = testing::TempDir() + "fsp_spec_roundtrip.spec";
    std::remove(path.c_str());
    service::writeSpecFile(path, spec);
    EXPECT_EQ(service::readSpecFile(path), spec);
    std::remove(path.c_str());
}

/** An in-process daemon on its own thread, torn down via the client. */
class ServiceDaemonTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        service::ServeOptions options;
        options.socketPath = testing::TempDir() + "fsp_service_test_" +
                             std::to_string(::getpid()) + ".sock";
        options.pollMillis = 20;
        socket_path_ = options.socketPath;
        daemon_.emplace(options);
        daemon_->start();
        thread_ = std::thread([this] { daemon_->run(); });
    }

    void
    TearDown() override
    {
        daemon_->requestStop();
        thread_.join();
        daemon_.reset();
    }

    service::ServiceClient
    connect()
    {
        return service::ServiceClient::connectUnixSocket(socket_path_);
    }

    std::string socket_path_;
    std::optional<service::ServeDaemon> daemon_;
    std::thread thread_;
};

TEST_F(ServiceDaemonTest, PingStatusMetrics)
{
    service::ServiceClient client = connect();
    EXPECT_NO_THROW(client.ping());

    service::ServiceStatus status = client.status();
    EXPECT_EQ(status.jobsQueued, 0u);
    EXPECT_EQ(status.activeJob, 0u);

    std::string metrics = client.metricsText();
    EXPECT_NE(metrics.find("fsp_serve_connections_total"),
              std::string::npos);
    EXPECT_NE(metrics.find("fsp_serve_jobs_submitted_total"),
              std::string::npos);
}

TEST_F(ServiceDaemonTest, ShutdownRequestStopsTheLoop)
{
    service::ServiceClient client = connect();
    EXPECT_NO_THROW(client.shutdownServer());
    thread_.join();            // run() returns on its own
    thread_ = std::thread([] {}); // TearDown's join still has a target
}

TEST_F(ServiceDaemonTest, SubmitValidationErrors)
{
    service::ServiceClient client = connect();
    CampaignSpec spec;
    spec.kernel = "NoSuch/K9";
    EXPECT_THROW(client.submit(spec, testing::TempDir() + "fsp_nojob"),
                 ProtocolError);

    spec.kernel = "GEMM/K1";
    EXPECT_THROW(client.submit(spec, ""), ProtocolError);

    spec.kind = CampaignSpec::Kind::Sites; // empty explicit list
    EXPECT_THROW(client.submit(spec, testing::TempDir() + "fsp_nojob"),
                 ProtocolError);
}

TEST_F(ServiceDaemonTest, HttpGetServesPrometheusMetrics)
{
    // Speak minimal HTTP over the same unix socket; the daemon sniffs
    // the "GET " preamble and answers with the metrics snapshot.
    int fd = service::connectUnix(socket_path_);
    std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
    service::writeAll(fd, request.data(), request.size());

    std::string response;
    char buffer[4096];
    for (;;) {
        ssize_t got = ::read(fd, buffer, sizeof(buffer));
        if (got <= 0)
            break; // Connection: close ends the response
        response.append(buffer, static_cast<std::size_t>(got));
    }
    ::close(fd);
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(response.find("text/plain"), std::string::npos);
    EXPECT_NE(response.find("fsp_serve_connections_total"),
              std::string::npos);

    // The binary protocol is unaffected on a fresh connection.
    service::ServiceClient probe = connect();
    EXPECT_NO_THROW(probe.ping());
}

/**
 * Full daemon end-to-end with real worker processes.  Requires the
 * fsp binary (FSP_WORKER_BINARY, set by CTest); skipped otherwise so
 * the suite still runs standalone.
 */
TEST_F(ServiceDaemonTest, SubmittedCampaignMergesBitIdentically)
{
    const char *binary = std::getenv("FSP_WORKER_BINARY");
    if (binary == nullptr || ::access(binary, X_OK) != 0)
        GTEST_SKIP() << "FSP_WORKER_BINARY not available";

    const apps::KernelSpec *kernel = apps::findKernel("PathFinder/K1");
    ASSERT_NE(kernel, nullptr);

    // The explicit site list the job will inject (Kind::Sites skips
    // the pruning pipeline in the workers, keeping the test fast).
    analysis::KernelAnalysis ka(*kernel, apps::Scale::Small, 1 + 41);
    Prng prng(2026);
    std::vector<faults::FaultSite> raw = ka.space().sampleSites(24, prng);
    std::vector<faults::WeightedSite> weighted;
    for (std::size_t i = 0; i < raw.size(); ++i)
        weighted.push_back(
            {raw[i], 0.1 + 0.3 * static_cast<double>(i % 7)});

    CampaignSpec spec;
    spec.kind = CampaignSpec::Kind::Sites;
    spec.kernel = kernel->fullName();
    spec.seed = 1;
    spec.shards = 2;
    spec.sites = weighted;
    // Crash-inject every worker's first attempt: the daemon must
    // respawn each one onto its journal and still finish the job.
    spec.abortAfterSites = 5;

    std::string base = testing::TempDir() + "fsp_service_e2e_" +
                       std::to_string(::getpid());
    service::ServiceClient client = connect();
    std::uint64_t job = client.submit(spec, base);
    EXPECT_GT(job, 0u);

    std::size_t progress_events = 0;
    service::JobOutcome outcome = client.waitJob(
        job, [&](const service::JobProgress &) { ++progress_events; });
    EXPECT_TRUE(outcome.ok) << outcome.message;
    EXPECT_GE(progress_events, 1u);

    // Merge the daemon-written shard journals and compare against a
    // local engine run of the same list under the same identity.
    service::CampaignContext ctx = service::CampaignContext::fromSpec(spec);
    std::vector<std::string> paths;
    for (std::uint32_t s = 0; s < spec.shards; ++s)
        paths.push_back(
            faults::shardJournalPath(base, s, spec.shards));
    faults::MergeReport report = faults::mergeShardJournals(
        ctx.key, ctx.sites, ctx.modelHash, paths);
    EXPECT_TRUE(report.complete);

    faults::CampaignResult expected =
        faults::CampaignEngine(ctx.analysis->injector(), {})
            .run(ctx.sites);
    EXPECT_EQ(expected.runs, report.result.runs);
    for (faults::Outcome o :
         {faults::Outcome::Masked, faults::Outcome::SDC,
          faults::Outcome::Other}) {
        EXPECT_EQ(expected.dist.weightOf(o),
                  report.result.dist.weightOf(o))
            << faults::outcomeName(o);
    }

    // The crash injection actually fired: each shard was respawned.
    std::string metrics = client.metricsText();
    EXPECT_NE(metrics.find("fsp_serve_worker_restarts_total 2"),
              std::string::npos)
        << metrics;
}

} // namespace
} // namespace fsp
