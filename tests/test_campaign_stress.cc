/**
 * @file
 * Seeded stress and property tests for the thread pool and the
 * parallel campaign engine: chunk coverage and reuse of the pool,
 * exception propagation, identical distributions for identical seeds
 * across repeats and worker counts, and run-count bookkeeping
 * (per-worker totals summing to the campaign total).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "analysis/analyzer.hh"
#include "apps/app.hh"
#include "reference_campaign.hh"
#include "faults/campaign_engine.hh"
#include "faults/fault_model.hh"
#include "util/thread_pool.hh"

namespace fsp {
namespace {

TEST(ThreadPool, EveryChunkRunsExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);

    for (std::size_t chunks : {0u, 1u, 3u, 4u, 17u, 100u}) {
        std::vector<std::atomic<int>> hits(chunks);
        pool.parallelFor(chunks, [&](std::size_t chunk, unsigned worker) {
            EXPECT_LT(worker, pool.workerCount());
            hits[chunk].fetch_add(1);
        });
        for (std::size_t i = 0; i < chunks; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "chunk " << i;
    }
}

TEST(ThreadPool, ReusableAcrossManyJobs)
{
    ThreadPool pool(3);
    std::atomic<std::uint64_t> sum{0};
    for (int job = 0; job < 50; ++job) {
        pool.parallelFor(7, [&](std::size_t chunk, unsigned) {
            sum.fetch_add(chunk + 1);
        });
    }
    // 50 jobs x (1+2+...+7).
    EXPECT_EQ(sum.load(), 50u * 28u);
}

TEST(ThreadPool, PropagatesBodyException)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(5,
                                  [&](std::size_t chunk, unsigned) {
                                      if (chunk == 3)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);

    // The pool survives a throwing job and keeps working.
    std::atomic<int> ran{0};
    pool.parallelFor(4, [&](std::size_t, unsigned) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, SingleWorkerIsSequential)
{
    ThreadPool pool(1);
    std::vector<std::size_t> order;
    pool.parallelFor(6, [&](std::size_t chunk, unsigned worker) {
        EXPECT_EQ(worker, 0u);
        order.push_back(chunk);
    });
    std::vector<std::size_t> expected(6);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected);
}

/** Exact equality of two outcome tallies. */
void
expectSameDist(const faults::OutcomeDist &a, const faults::OutcomeDist &b)
{
    EXPECT_EQ(a.runs(), b.runs());
    for (faults::Outcome o :
         {faults::Outcome::Masked, faults::Outcome::SDC,
          faults::Outcome::Other}) {
        EXPECT_EQ(a.weightOf(o), b.weightOf(o))
            << "outcome " << faults::outcomeName(o);
    }
}

TEST(CampaignStress, SameSeedSameDistributionAcrossRunsAndWorkers)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);
    const std::size_t runs = 120;
    const std::uint64_t seed = 4242;

    Prng serial_prng(seed);
    auto reference = faults::reference::runRandomCampaign(ka.injector(), ka.space(),
                                               runs, serial_prng);
    EXPECT_EQ(reference.runs, runs);

    for (unsigned workers : {1u, 3u, 5u, 8u}) {
        faults::CampaignOptions options;
        options.workers = workers;
        options.chunkSize = 7;
        faults::CampaignEngine engine(ka.injector(), options);

        for (int repeat = 0; repeat < 2; ++repeat) {
            Prng prng(seed);
            auto result =
                engine.run(ka.space(), runs, prng);
            EXPECT_EQ(result.runs, runs);
            expectSameDist(reference.dist, result.dist);

            // Per-worker bookkeeping: the workers' shares add up to
            // the campaign size, and the engine's injector totals
            // account for every run it ever performed.
            const auto &stats = engine.lastStats();
            ASSERT_EQ(stats.perWorkerRuns.size(), workers);
            std::uint64_t share_sum =
                std::accumulate(stats.perWorkerRuns.begin(),
                                stats.perWorkerRuns.end(),
                                std::uint64_t{0});
            EXPECT_EQ(share_sum, result.runs);
            EXPECT_EQ(engine.runsPerformed(),
                      runs * static_cast<std::uint64_t>(repeat + 1));
        }
    }
}

TEST(CampaignStress, WeightedPropertyOverRandomLists)
{
    const apps::KernelSpec *spec = apps::findKernel("PathFinder/K1");
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);

    // Each trial runs under a different fault model, so the weighted
    // serial==parallel property is stressed across the strategy
    // matrix, not just the default single-bit flip.
    const std::vector<std::string> model_matrix = {
        "single-bit", "multi-bit:width=3", "pred-flip", "gmem-flip"};

    Prng meta(1337);
    for (int trial = 0; trial < 4; ++trial) {
        std::string error;
        auto model = faults::parseFaultModel(
            model_matrix[trial % model_matrix.size()], &error);
        ASSERT_NE(model, nullptr) << error;
        analysis::AnalysisConfig facade;
        facade.faultModel = std::move(model);
        facade.modelSeed = 2026;
        ka.configure(facade);

        // A fresh random weighted list per trial: random length, sites
        // drawn from the space, weights spread over orders of
        // magnitude to stress the double accumulation.
        std::size_t n = 5 + static_cast<std::size_t>(meta.below(40));
        Prng site_prng = meta.fork("sites-" + std::to_string(trial));
        auto sites = ka.space().sampleSites(n, site_prng);
        std::vector<faults::WeightedSite> weighted;
        weighted.reserve(n);
        for (const auto &site : sites)
            weighted.push_back({site, meta.uniform(0.01, 1000.0)});

        auto serial = faults::reference::runWeightedSiteList(ka.injector(), weighted);

        for (unsigned workers : {2u, 7u}) {
            faults::CampaignOptions options;
            options.workers = workers;
            options.chunkSize = 1 + trial; // varies 1..4
            faults::CampaignEngine engine(ka.injector(), options);
            auto parallel = engine.run(weighted);
            EXPECT_EQ(serial.runs, parallel.runs);
            expectSameDist(serial.dist, parallel.dist);
        }
    }
}

TEST(CampaignStress, ChunkFoldProgressCoversAllSites)
{
    const apps::KernelSpec *spec = apps::findKernel("PathFinder/K1");
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);

    Prng prng(5);
    auto sites = ka.space().sampleSites(23, prng);

    // Fold-point events fire under the engine's progress lock: done
    // counts must be monotonic and bounded by the total.
    struct ProgressObserver final : faults::CampaignObserver
    {
        std::uint64_t lastDone = 0;
        std::uint64_t expectedTotal = 0;
        void
        onChunkFolded(const ChunkFolded &event) override
        {
            EXPECT_GT(event.sitesDone, lastDone);
            EXPECT_LE(event.sitesDone, event.sitesTotal);
            EXPECT_EQ(event.sitesTotal, expectedTotal);
            lastDone = event.sitesDone;
        }
    } progress;
    progress.expectedTotal = sites.size();

    faults::CampaignOptions options;
    options.workers = 3;
    options.chunkSize = 5;
    options.observer = &progress;
    faults::CampaignEngine engine(ka.injector(), options);
    auto result = engine.run(sites);
    EXPECT_EQ(result.runs, sites.size());
    EXPECT_EQ(progress.lastDone, sites.size());
}

} // namespace
} // namespace fsp
