/**
 * @file
 * Unit tests for the individual pruning stages: CTA/thread grouping
 * invariants, trace alignment and weight folding, loop detection and
 * iteration sampling, and bit-position sampling.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "faults/fault_space.hh"
#include "pruning/bits.hh"
#include "pruning/grouping.hh"
#include "pruning/instr_common.hh"
#include "pruning/loops.hh"
#include "ptx/assembler.hh"
#include "sim_test_util.hh"

namespace fsp {
namespace {

using test::MiniKernel;

/**
 * 2 CTAs x 4 threads; threads 0-1 of every CTA take a short path,
 * threads 2-3 a long one, giving two iCnt classes per CTA and
 * structurally identical CTAs (one CTA group expected).
 */
const char *kGroupingSource = R"(
    cvt.u32.u16 $r2, %tid.x
    set.lt.u32.u32 $p0|$o127, $r2, 0x00000002
    @$p0.ne retp                 // tid 0,1 exit early
    mov.u32 $r3, 0x00000001
    mov.u32 $r4, 0x00000002
    mov.u32 $r5, 0x00000003
    retp
)";

class GroupingTest : public ::testing::Test
{
  protected:
    GroupingTest() : kernel_(kGroupingSource, 8, 4)
    {
        auto config = kernel_.launchConfig();
        config.grid = {2, 1, 1};
        executor_ = std::make_unique<sim::Executor>(kernel_.program(),
                                                    config);
        space_.emplace(*executor_, kernel_.memory());
    }

    MiniKernel kernel_;
    std::unique_ptr<sim::Executor> executor_;
    std::optional<faults::FaultSpace> space_;
};

TEST_F(GroupingTest, GroupsFormAPartition)
{
    Prng prng(1);
    auto pruning = pruning::pruneThreads(*space_, 4, prng);

    // All CTAs identical -> one CTA group containing both CTAs.
    ASSERT_EQ(pruning.ctaGroups.size(), 1u);
    EXPECT_EQ(pruning.ctaGroups[0].ctas.size(), 2u);

    // Two thread groups; together they partition all 8 threads.
    ASSERT_EQ(pruning.ctaGroups[0].threadGroups.size(), 2u);
    std::set<std::uint64_t> seen;
    for (const auto &tg : pruning.ctaGroups[0].threadGroups) {
        for (std::uint64_t t : tg.threads)
            EXPECT_TRUE(seen.insert(t).second) << "duplicate thread";
        // The representative is a member of its own group.
        EXPECT_NE(std::find(tg.threads.begin(), tg.threads.end(),
                            tg.representative),
                  tg.threads.end());
        // All members share the representative's iCnt.
        for (std::uint64_t t : tg.threads)
            EXPECT_EQ(space_->profiles()[t].iCnt, tg.iCnt);
    }
    EXPECT_EQ(seen.size(), 8u);
}

TEST_F(GroupingTest, WeightsCoverTheWholeSpace)
{
    Prng prng(1);
    auto pruning = pruning::pruneThreads(*space_, 4, prng);

    // Sum over groups of (weight * representative bits) must equal the
    // exhaustive site count: nothing lost, nothing double-counted.
    double represented = 0.0;
    for (const auto *tg : pruning.allGroups())
        represented += tg->weight() * tg->representativeBits;
    EXPECT_NEAR(represented, static_cast<double>(space_->totalSites()),
                1e-6);

    EXPECT_EQ(pruning.representativeCount(), 2u);
    EXPECT_LT(pruning.sitesAfterPruning(), space_->totalSites());
}

TEST_F(GroupingTest, DeterministicForSeed)
{
    Prng a(5), b(5), c(6);
    auto p1 = pruning::pruneThreads(*space_, 4, a);
    auto p2 = pruning::pruneThreads(*space_, 4, b);
    auto p3 = pruning::pruneThreads(*space_, 4, c);
    ASSERT_EQ(p1.ctaGroups.size(), p2.ctaGroups.size());
    for (std::size_t g = 0; g < p1.ctaGroups.size(); ++g) {
        EXPECT_EQ(p1.ctaGroups[g].representativeCta,
                  p2.ctaGroups[g].representativeCta);
        for (std::size_t t = 0; t < p1.ctaGroups[g].threadGroups.size();
             ++t) {
            EXPECT_EQ(p1.ctaGroups[g].threadGroups[t].representative,
                      p2.ctaGroups[g].threadGroups[t].representative);
        }
    }
    // A different seed is allowed to pick different representatives,
    // but the group structure must be identical.
    EXPECT_EQ(p1.ctaGroups.size(), p3.ctaGroups.size());
}

TEST(Grouping, SeparatesStructurallyDifferentCtas)
{
    // Threads in CTA 0 run a longer path than CTA 1 -> 2 CTA groups.
    MiniKernel k(R"(
        cvt.u32.u16 $r2, %ctaid.x
        set.eq.u32.u32 $p0|$o127, $r2, 0x00000000
        @$p0.eq retp                 // CTA != 0 exits
        mov.u32 $r3, 0x00000001
        mov.u32 $r4, 0x00000002
        retp
    )",
                 8, 4);
    auto config = k.launchConfig();
    config.grid = {2, 1, 1};
    sim::Executor executor(k.program(), config);
    faults::FaultSpace space(executor, k.memory());

    Prng prng(1);
    auto pruning = pruning::pruneThreads(space, 4, prng);
    EXPECT_EQ(pruning.ctaGroups.size(), 2u);
    for (const auto &cg : pruning.ctaGroups) {
        EXPECT_EQ(cg.ctas.size(), 1u);
        EXPECT_EQ(cg.threadGroups.size(), 1u);
    }
}

// ---------------------------------------------------------------------
// Instruction-wise pruning.

sim::DynRecord
rec(std::uint32_t si, std::uint16_t bits = 32)
{
    return {si, bits};
}

pruning::ThreadPlan
makePlan(std::uint64_t thread, std::vector<sim::DynRecord> trace,
         double weight = 1.0)
{
    pruning::ThreadPlan plan;
    plan.thread = thread;
    plan.groupId = static_cast<std::uint32_t>(thread);
    plan.baseWeight = weight;
    plan.trace = std::move(trace);
    plan.weight.assign(plan.trace.size(), weight);
    return plan;
}

TEST(InstrCommon, AlignsPrefixAndSuffix)
{
    std::vector<sim::DynRecord> base{rec(0), rec(1), rec(2), rec(3),
                                     rec(4), rec(5)};
    std::vector<sim::DynRecord> other{rec(0), rec(1), rec(4), rec(5)};
    auto alignment = pruning::alignTraces(base, other);
    EXPECT_EQ(alignment.prefixLen, 2u);
    EXPECT_EQ(alignment.suffixLen, 2u);
}

TEST(InstrCommon, PrefixSuffixNeverOverlap)
{
    std::vector<sim::DynRecord> base{rec(0), rec(1), rec(2)};
    std::vector<sim::DynRecord> other{rec(0), rec(1), rec(2)};
    auto alignment = pruning::alignTraces(base, other);
    EXPECT_EQ(alignment.prefixLen + alignment.suffixLen, 3u);
}

TEST(InstrCommon, FoldsLighterPlanIntoHeavierPlan)
{
    // plans[0]: 6 records at weight 2 (represented weight 384);
    // plans[1]: 5 records at weight 3 (represented weight 480) -- the
    // heavier plan, so it becomes the fold base even though it is
    // shorter.  They share a 2-prefix and a 2-suffix.
    auto lighter = makePlan(0, {rec(0), rec(1), rec(2), rec(3), rec(4),
                                rec(5)},
                            2.0);
    auto heavier =
        makePlan(1, {rec(0), rec(1), rec(9), rec(4), rec(5)}, 3.0);

    std::vector<pruning::ThreadPlan> plans{lighter, heavier};
    double before = plans[0].representedWeight() +
                    plans[1].representedWeight();

    auto stats = pruning::applyInstructionPruning(plans);
    EXPECT_TRUE(stats.applicable);
    EXPECT_EQ(stats.prunedDynInstrs, 4u);
    EXPECT_EQ(stats.prunedSites, 4u * 32u);

    // Total represented weight is conserved exactly.
    double after = plans[0].representedWeight() +
                   plans[1].representedWeight();
    EXPECT_DOUBLE_EQ(before, after);

    // The heavier plan's prefix/suffix carry 3+2; the lighter plan
    // keeps only its distinct middle records {2,3}.
    EXPECT_DOUBLE_EQ(plans[1].weight[0], 5.0);
    EXPECT_DOUBLE_EQ(plans[1].weight[1], 5.0);
    EXPECT_DOUBLE_EQ(plans[1].weight[2], 3.0); // distinct middle
    EXPECT_DOUBLE_EQ(plans[1].weight[3], 5.0);
    EXPECT_DOUBLE_EQ(plans[1].weight[4], 5.0);
    EXPECT_DOUBLE_EQ(plans[0].weight[0], 0.0);
    EXPECT_DOUBLE_EQ(plans[0].weight[2], 2.0);
    EXPECT_DOUBLE_EQ(plans[0].weight[5], 0.0);
    EXPECT_EQ(plans[0].liveSites(), 64u);
}

TEST(InstrCommon, GuardDifferencesDoNotBreakAlignment)
{
    // Same static instructions, but `other` has destBits 0 at index 1
    // (guard failed there).  Alignment spans everything; index 1 is
    // pruned for free (no sites), the rest folds.
    auto base = makePlan(0, {rec(0), rec(1, 32), rec(2)}, 1.0);
    auto other = makePlan(1, {rec(0), rec(1, 0), rec(2)}, 1.0);
    std::vector<pruning::ThreadPlan> plans{base, other};
    auto stats = pruning::applyInstructionPruning(plans);
    EXPECT_EQ(plans[1].liveSites(), 0u);
    EXPECT_DOUBLE_EQ(plans[0].weight[0], 2.0);
    EXPECT_DOUBLE_EQ(plans[0].weight[1], 1.0); // nothing folded there
    EXPECT_EQ(stats.prunedDynInstrs, 2u);
}

TEST(InstrCommon, SinglePlanIsNoop)
{
    std::vector<pruning::ThreadPlan> plans{makePlan(0, {rec(0)})};
    auto stats = pruning::applyInstructionPruning(plans);
    EXPECT_FALSE(stats.applicable);
    EXPECT_DOUBLE_EQ(plans[0].weight[0], 1.0);
}

// ---------------------------------------------------------------------
// Loop-wise pruning.

/** Build the trace of a simple counted loop program. */
struct LoopFixture
{
    sim::Program program;
    std::vector<sim::DynRecord> trace;

    explicit LoopFixture(const char *source, unsigned threads = 1)
        : program(ptx::assemble("loop", source))
    {
        sim::LaunchConfig config;
        config.grid = {1, 1, 1};
        config.block = {threads, 1, 1};
        sim::GlobalMemory memory(1 << 12);
        sim::TraceOptions opts;
        opts.traceThreads.insert(0);
        sim::Executor executor(program, config);
        auto result = executor.run(memory, &opts);
        EXPECT_EQ(result.status, sim::RunStatus::Completed);
        trace = result.trace.dynTraces.at(0);
    }
};

const char *kCountedLoop = R"(
    mov.u32 $r2, 0x00000000
    loop:
    add.u32 $r3, $r2, $r2
    add.u32 $r2, $r2, 0x00000001
    set.lt.u32.u32 $p0|$o127, $r2, 0x0000000a
    @$p0.ne bra loop
    retp
)";

TEST(Loops, DetectsCountedLoop)
{
    LoopFixture f(kCountedLoop);
    auto loops = pruning::detectLoops(f.trace, f.program);
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_EQ(loops[0].headerStatic, 1u);
    EXPECT_EQ(loops[0].branchStatic, 4u);
    EXPECT_EQ(loops[0].iterations.size(), 10u);
    // Iterations tile the loop body contiguously.
    for (std::size_t k = 1; k < loops[0].iterations.size(); ++k) {
        EXPECT_EQ(loops[0].iterations[k].first,
                  loops[0].iterations[k - 1].second);
    }
}

TEST(Loops, AnalyzeReportsIterationAndCoverage)
{
    LoopFixture f(kCountedLoop);
    auto stats = pruning::analyzeLoops(f.trace, f.program);
    EXPECT_EQ(stats.loopIterations, 10u);
    EXPECT_EQ(stats.totalDynInstrs, f.trace.size());
    // 40 of 42 dynamic instructions are inside the loop.
    EXPECT_NEAR(stats.loopInstrFraction(), 40.0 / 42.0, 1e-9);
}

TEST(Loops, DetectsNestedLoops)
{
    LoopFixture f(R"(
        mov.u32 $r2, 0x00000000
        outer:
        mov.u32 $r3, 0x00000000
        inner:
        add.u32 $r4, $r3, $r2
        add.u32 $r3, $r3, 0x00000001
        set.lt.u32.u32 $p0|$o127, $r3, 0x00000004
        @$p0.ne bra inner
        add.u32 $r2, $r2, 0x00000001
        set.lt.u32.u32 $p0|$o127, $r2, 0x00000003
        @$p0.ne bra outer
        retp
    )");
    auto loops = pruning::detectLoops(f.trace, f.program);
    ASSERT_EQ(loops.size(), 2u);
    // Outermost first.
    EXPECT_EQ(loops[0].headerStatic, 1u);
    EXPECT_EQ(loops[0].iterations.size(), 3u);
    EXPECT_EQ(loops[1].iterations.size(), 12u); // 3 activations x 4
    EXPECT_TRUE(loops[1].nestedIn(loops[0]));
    EXPECT_FALSE(loops[0].nestedIn(loops[1]));

    auto stats = pruning::analyzeLoops(f.trace, f.program);
    EXPECT_EQ(stats.loopIterations, 15u);
}

TEST(Loops, SamplingKeepsRequestedIterationsAndWeight)
{
    LoopFixture f(kCountedLoop);
    auto plan = makePlan(0, f.trace, 2.0);
    // Recompute weights to account for real destBits.
    double before = plan.representedWeight();

    Prng prng(3);
    auto stats = pruning::applyLoopPruning(plan, f.program, 4, prng);
    EXPECT_EQ(stats.loopsSampled, 1u);
    EXPECT_EQ(stats.iterationsTotal, 10u);
    EXPECT_EQ(stats.iterationsKept, 4u);
    EXPECT_GT(stats.prunedSites, 0u);

    // Weight is conserved: kept iterations are rescaled by 10/4.
    EXPECT_NEAR(plan.representedWeight(), before, 1e-9);
    EXPECT_LT(plan.liveSites(), f.trace.size() * 32);
}

TEST(Loops, SamplingMoreThanAvailableIsNoop)
{
    LoopFixture f(kCountedLoop);
    auto plan = makePlan(0, f.trace, 1.0);
    Prng prng(3);
    auto stats = pruning::applyLoopPruning(plan, f.program, 100, prng);
    EXPECT_EQ(stats.loopsSampled, 0u);
    EXPECT_EQ(stats.iterationsKept, 10u);
    for (double w : plan.weight)
        EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(Loops, LoopFreeTraceUntouched)
{
    LoopFixture f(R"(
        mov.u32 $r2, 0x00000001
        add.u32 $r3, $r2, $r2
        retp
    )");
    EXPECT_TRUE(pruning::detectLoops(f.trace, f.program).empty());
    auto stats = pruning::analyzeLoops(f.trace, f.program);
    EXPECT_EQ(stats.loopIterations, 0u);
    EXPECT_DOUBLE_EQ(stats.loopInstrFraction(), 0.0);
}

// ---------------------------------------------------------------------
// Bit-wise pruning.

TEST(Bits, PaperSelectionPattern)
{
    // The paper's example: 2 positions per 8-bit section of a 32-bit
    // register -> {3,7,11,15,19,23,27,31}.
    auto positions = pruning::sampledBitPositions(32, 8);
    std::vector<std::uint32_t> expected{3, 7, 11, 15, 19, 23, 27, 31};
    EXPECT_EQ(positions, expected);
}

class BitPositionSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(BitPositionSweep, PositionsAreValidStridedAndIncludeMsb)
{
    auto [width, samples] = GetParam();
    auto positions = pruning::sampledBitPositions(width, samples);
    ASSERT_FALSE(positions.empty());
    EXPECT_TRUE(std::is_sorted(positions.begin(), positions.end()));
    for (auto b : positions)
        EXPECT_LT(b, width);
    EXPECT_EQ(positions.back(), width - 1); // MSB always sampled
    if (samples == 0 || samples >= width)
        EXPECT_EQ(positions.size(), width);
    else
        EXPECT_LE(positions.size(), samples + 1);
    // No duplicates.
    std::set<std::uint32_t> unique(positions.begin(), positions.end());
    EXPECT_EQ(unique.size(), positions.size());
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndSamples, BitPositionSweep,
    ::testing::Combine(::testing::Values(4u, 16u, 32u, 64u),
                       ::testing::Values(0u, 4u, 8u, 16u, 64u)));

TEST(Bits, ExpansionConservesWeight)
{
    auto plan = makePlan(7, {rec(0, 32), rec(1, 0), rec(2, 4)}, 2.0);
    plan.weight[1] = 0.0;

    auto result = pruning::applyBitPruning({plan}, 16, true);
    // 16 sites for the 32-bit dest, 1 zero-flag site for the predicate.
    EXPECT_EQ(result.sites.size(), 17u);
    EXPECT_DOUBLE_EQ(result.assumedMaskedWeight, 6.0);

    double total = result.assumedMaskedWeight;
    for (const auto &s : result.sites) {
        total += s.weight;
        EXPECT_EQ(s.site.thread, 7u);
    }
    // 32*2 (u32 dest) + 4*2 (pred dest) = 72.
    EXPECT_DOUBLE_EQ(total, 72.0);
}

TEST(Bits, AllBitsWhenSamplingDisabled)
{
    auto plan = makePlan(0, {rec(0, 32)}, 1.0);
    auto result = pruning::applyBitPruning({plan}, 0, false);
    EXPECT_EQ(result.sites.size(), 32u);
    for (const auto &s : result.sites)
        EXPECT_DOUBLE_EQ(s.weight, 1.0);
}

TEST(Bits, PredicateAllBitsWhenZeroFlagOnlyDisabled)
{
    auto plan = makePlan(0, {rec(0, 4)}, 1.0);
    auto result = pruning::applyBitPruning({plan}, 16, false);
    EXPECT_EQ(result.sites.size(), 4u);
    EXPECT_DOUBLE_EQ(result.assumedMaskedWeight, 0.0);
}

} // namespace
} // namespace fsp
