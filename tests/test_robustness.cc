/**
 * @file
 * Robustness properties across the whole stack: every kernel completes
 * its golden run for multiple input seeds, campaigns are bitwise
 * deterministic per seed, paper-scale geometry executes end to end,
 * and the injector classifies arbitrary in-space fault sites without
 * ever failing.
 */

#include <gtest/gtest.h>

#include "analysis/analyzer.hh"
#include "apps/app.hh"
#include "faults/fault_model.hh"
#include "sim/executor.hh"

namespace fsp {
namespace {

class SeedSweep
    : public ::testing::TestWithParam<std::tuple<std::string,
                                                 std::uint64_t>>
{
};

TEST_P(SeedSweep, GoldenRunCompletesForEverySeed)
{
    auto [name, seed] = GetParam();
    const apps::KernelSpec *spec = apps::findKernel(name);
    ASSERT_NE(spec, nullptr);
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, seed);
    sim::Executor executor(setup.program, setup.launch);
    auto result = executor.run(setup.memory);
    EXPECT_EQ(result.status, sim::RunStatus::Completed)
        << name << " seed " << seed << ": " << result.diagnostic;
    // Outputs must be fully inside allocated memory.
    for (const auto &region : setup.outputs) {
        auto bytes = setup.memory.snapshot(region.addr, region.bytes);
        EXPECT_EQ(bytes.size(), region.bytes);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsThreeSeeds, SeedSweep,
    ::testing::Combine(::testing::ValuesIn([] {
                           std::vector<std::string> names;
                           for (const auto &spec : apps::allKernels())
                               names.push_back(spec.fullName());
                           return names;
                       }()),
                       ::testing::Values(1u, 7u, 20260704u)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param) + "_s" +
                           std::to_string(std::get<1>(info.param));
        for (char &c : name) {
            if (c == '/' || c == '-')
                c = '_';
        }
        return name;
    });

TEST(Robustness, CampaignsAreDeterministicPerSeed)
{
    const apps::KernelSpec *spec = apps::findKernel("Gaussian/K1");
    analysis::KernelAnalysis ka1(*spec, apps::Scale::Small);
    analysis::KernelAnalysis ka2(*spec, apps::Scale::Small);

    auto b1 = ka1.runBaseline(300, 55);
    auto b2 = ka2.runBaseline(300, 55);
    EXPECT_EQ(b1.dist.fractions(), b2.dist.fractions());

    pruning::PruningConfig config;
    config.seed = 5;
    auto e1 = ka1.runPrunedCampaign(ka1.prune(config));
    auto e2 = ka2.runPrunedCampaign(ka2.prune(config));
    EXPECT_EQ(e1.fractions(), e2.fractions());
    EXPECT_EQ(e1.runs(), e2.runs());

    // A different seed draws different sites.
    auto b3 = ka1.runBaseline(300, 56);
    EXPECT_NE(b1.dist.fractions(), b3.dist.fractions());
}

TEST(Robustness, PaperScaleKernelsExecuteEndToEnd)
{
    // Profiling-grade check on the largest geometries (one golden run
    // each; GEMM's is ~17M dynamic instructions).
    for (const char *name : {"GEMM/K1", "HotSpot/K1", "NN/K1"}) {
        const apps::KernelSpec *spec = apps::findKernel(name);
        apps::KernelSetup setup = spec->setup(apps::Scale::Paper, 42);
        sim::Executor executor(setup.program, setup.launch);
        auto result = executor.run(setup.memory);
        EXPECT_EQ(result.status, sim::RunStatus::Completed) << name;
        EXPECT_GT(result.totalDynInstrs,
                  setup.launch.threadCount()) // every thread ran
            << name;
    }
}

TEST(Robustness, InjectorHandlesArbitraryInSpaceSites)
{
    const apps::KernelSpec *spec = apps::findKernel("PathFinder/K1");
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);

    Prng prng(2026);
    auto sites = ka.space().sampleSites(150, prng);
    std::uint64_t tally = 0;
    for (const auto &site : sites) {
        faults::Outcome outcome = ka.injector().inject(site);
        // Classification is total: one of the three classes, always.
        EXPECT_TRUE(outcome == faults::Outcome::Masked ||
                    outcome == faults::Outcome::SDC ||
                    outcome == faults::Outcome::Other);
        tally++;
    }
    EXPECT_EQ(tally, sites.size());
    EXPECT_EQ(ka.injector().runsPerformed(), sites.size());
}

/**
 * The injector robustness properties hold for every strategy in a
 * small model matrix, not just the default single-bit flip:
 * classification over arbitrary in-space sites is total (the four
 * outcome classes, never a crash) and bitwise repeatable.
 */
class ModelMatrix : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ModelMatrix, InjectorClassifiesArbitrarySitesUnderModel)
{
    const apps::KernelSpec *spec = apps::findKernel("PathFinder/K1");
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);

    std::string error;
    auto model = faults::parseFaultModel(GetParam(), &error);
    ASSERT_NE(model, nullptr) << error;
    analysis::AnalysisConfig facade;
    facade.faultModel = std::move(model);
    facade.modelSeed = 77;
    ka.configure(facade);
    EXPECT_EQ(ka.faultModel().identity(),
              ka.injector().faultModel().identity());

    Prng prng(2026);
    auto sites = ka.space().sampleSites(40, prng);
    std::vector<faults::Outcome> outcomes;
    for (const auto &site : sites) {
        faults::Outcome outcome = ka.injector().inject(site);
        // Some models reject sites the default accepts (e.g. shared
        // memory flips on a kernel without shared state), so Invalid
        // is a legal member of the total classification here.
        EXPECT_TRUE(outcome == faults::Outcome::Masked ||
                    outcome == faults::Outcome::SDC ||
                    outcome == faults::Outcome::Other ||
                    outcome == faults::Outcome::Invalid)
            << GetParam();
        outcomes.push_back(outcome);
    }

    // Re-injecting the same sites classifies identically.
    for (std::size_t i = 0; i < sites.size(); i += 7)
        EXPECT_EQ(ka.injector().inject(sites[i]), outcomes[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(
    SmallModelMatrix, ModelMatrix,
    ::testing::Values("single-bit", "multi-bit:width=3", "scattered-bits",
                      "pred-flip", "intermittent-stuck:period=8",
                      "gmem-flip"),
    [](const auto &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == ':' || c == '=' || c == '-')
                c = '_';
        }
        return name;
    });

TEST(Robustness, InjectionDoesNotContaminateGoldenState)
{
    // After any number of injections, a fresh fault-free comparison
    // must still classify as masked (the pristine image is restored).
    const apps::KernelSpec *spec = apps::findKernel("LUD/K45");
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);

    Prng prng(9);
    auto sites = ka.space().sampleSites(30, prng);
    for (const auto &site : sites)
        ka.injector().inject(site);

    // A site in a dead position: flipping the highest bit of the very
    // last dynamic write of thread 0 after its value was consumed is
    // not guaranteed dead, so instead re-inject a known site twice and
    // demand identical classification.
    auto first = ka.injector().inject(sites[0]);
    auto second = ka.injector().inject(sites[0]);
    EXPECT_EQ(first, second);
}

} // namespace
} // namespace fsp
