/**
 * @file
 * Reference serial campaign drivers -- test-suite property oracles.
 *
 * These are the original serial injection loops the CampaignEngine was
 * specified against: one injector, sites processed strictly in list
 * order, outcomes folded as they classify.  They moved here from the
 * library (faults/campaign.hh) when the engine became the single
 * campaign entry point; the determinism suite keeps comparing the
 * engine's parallel/journaled/cached results against them bit for bit,
 * which is only meaningful while this reference stays dead simple.
 */

#ifndef FSP_TESTS_REFERENCE_CAMPAIGN_HH
#define FSP_TESTS_REFERENCE_CAMPAIGN_HH

#include <cstddef>
#include <vector>

#include "faults/campaign_engine.hh"
#include "faults/fault_space.hh"
#include "faults/injector.hh"
#include "util/prng.hh"

namespace fsp::faults::reference {

/** Inject every site in the list, tallying unweighted outcomes. */
inline CampaignResult
runSiteList(Injector &injector, const std::vector<FaultSite> &sites)
{
    InjectionStats before = injector.stats();
    CampaignResult result;
    for (const auto &site : sites) {
        result.dist.add(injector.inject(site));
        result.runs++;
    }
    result.injection = injector.stats().since(before);
    return result;
}

/** Inject every weighted site, tallying weighted outcomes. */
inline CampaignResult
runWeightedSiteList(Injector &injector,
                    const std::vector<WeightedSite> &sites)
{
    InjectionStats before = injector.stats();
    CampaignResult result;
    for (const auto &weighted : sites) {
        result.dist.add(injector.inject(weighted.site), weighted.weight);
        result.runs++;
    }
    result.injection = injector.stats().since(before);
    return result;
}

/**
 * The statistical baseline: @p runs sites drawn uniformly at random
 * from the full fault space (with replacement), injected and tallied.
 * Draws exactly like CampaignEngine::run(space, runs, prng), so the
 * same seeded generator produces the same site sequence in both.
 */
inline CampaignResult
runRandomCampaign(Injector &injector, const FaultSpace &space,
                  std::size_t runs, Prng &prng)
{
    auto sites = space.sampleSites(runs, prng);
    return runSiteList(injector, sites);
}

} // namespace fsp::faults::reference

#endif // FSP_TESTS_REFERENCE_CAMPAIGN_HH
