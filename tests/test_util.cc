/**
 * @file
 * Unit tests for the util library: PRNG determinism and distribution
 * sanity, descriptive statistics, the normal critical values behind
 * Eq. 4, table rendering, and env parsing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>

#include "util/env.hh"
#include "util/prng.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace fsp {
namespace {

TEST(Prng, DeterministicForSameSeed)
{
    Prng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiffer)
{
    Prng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b());
    EXPECT_LT(same, 4);
}

TEST(Prng, BelowStaysInRange)
{
    Prng prng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(prng.below(bound), bound);
    }
}

TEST(Prng, BelowCoversAllResidues)
{
    Prng prng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(prng.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Prng, RangeInclusive)
{
    Prng prng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 500; ++i) {
        std::int64_t v = prng.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Prng, UniformInUnitInterval)
{
    Prng prng(9);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = prng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, ForkIndependentButDeterministic)
{
    Prng parent(42);
    Prng c1 = parent.fork("alpha");
    Prng c2 = parent.fork("alpha");
    Prng c3 = parent.fork("beta");
    EXPECT_EQ(c1(), c2());
    EXPECT_NE(c1(), c3());
}

TEST(Prng, SampleWithoutReplacementDistinctSorted)
{
    Prng prng(13);
    auto sample = prng.sampleWithoutReplacement(100, 20);
    ASSERT_EQ(sample.size(), 20u);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 20u);
    for (std::size_t v : sample)
        EXPECT_LT(v, 100u);
}

TEST(Prng, SampleWithoutReplacementWholePopulation)
{
    Prng prng(13);
    auto sample = prng.sampleWithoutReplacement(5, 10);
    ASSERT_EQ(sample.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(sample[i], i);
}

TEST(DeriveSeed, LabelSensitivity)
{
    EXPECT_NE(deriveSeed(1, "a"), deriveSeed(1, "b"));
    EXPECT_NE(deriveSeed(1, "a"), deriveSeed(2, "a"));
    EXPECT_EQ(deriveSeed(1, "a"), deriveSeed(1, "a"));
}

TEST(Stats, MeanAndStddev)
{
    std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(v), 5.0);
    EXPECT_NEAR(stddev(v), 2.138, 1e-3);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(Stats, PercentileInterpolation)
{
    std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 50), 7.0);
}

TEST(Stats, BoxplotSummary)
{
    std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
    BoxplotSummary s = boxplot(v);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
    EXPECT_DOUBLE_EQ(s.median, 5.0);
    EXPECT_DOUBLE_EQ(s.q1, 3.0);
    EXPECT_DOUBLE_EQ(s.q3, 7.0);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_EQ(s.count, 9u);
}

TEST(Stats, LinfDistance)
{
    EXPECT_DOUBLE_EQ(linfDistance({0.5, 0.3, 0.2}, {0.5, 0.3, 0.2}), 0.0);
    EXPECT_NEAR(linfDistance({0.5, 0.3, 0.2}, {0.4, 0.45, 0.15}), 0.15,
                1e-12);
}

TEST(Stats, NormalCriticalValues)
{
    // Textbook two-sided z values.
    EXPECT_NEAR(normalTwoSidedCritical(0.95), 1.95996, 1e-4);
    EXPECT_NEAR(normalTwoSidedCritical(0.99), 2.57583, 1e-4);
    EXPECT_NEAR(normalTwoSidedCritical(0.998), 3.09023, 1e-4);
    EXPECT_NEAR(normalTwoSidedCritical(0.68268949), 1.0, 1e-4);
}

TEST(Table, RendersAlignedRows)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    std::string out = t.str();
    EXPECT_NE(out.find("| name  | value |"), std::string::npos);
    EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtFixed(3.14159, 2), "3.14");
    EXPECT_EQ(fmtPercent(0.123456, 1), "12.3%");
    EXPECT_EQ(fmtScientific(34400000.0, 2), "3.44E+07");
    EXPECT_EQ(fmtCount(0), "0");
    EXPECT_EQ(fmtCount(999), "999");
    EXPECT_EQ(fmtCount(1234567), "1,234,567");
}

TEST(Env, ParsesAndFallsBack)
{
    ::setenv("FSP_TEST_ENV_U64", "1234", 1);
    EXPECT_EQ(envU64("FSP_TEST_ENV_U64", 7), 1234u);
    ::setenv("FSP_TEST_ENV_U64", "not-a-number", 1);
    EXPECT_EQ(envU64("FSP_TEST_ENV_U64", 7), 7u);
    ::unsetenv("FSP_TEST_ENV_U64");
    EXPECT_EQ(envU64("FSP_TEST_ENV_U64", 7), 7u);

    ::setenv("FSP_TEST_ENV_D", "0.25", 1);
    EXPECT_DOUBLE_EQ(envDouble("FSP_TEST_ENV_D", 1.0), 0.25);
    ::unsetenv("FSP_TEST_ENV_D");
    EXPECT_DOUBLE_EQ(envDouble("FSP_TEST_ENV_D", 1.0), 1.0);
}

} // namespace
} // namespace fsp
