/**
 * @file
 * Tests for the byte-interval algebra (sim::IntervalSet), golden-run
 * per-CTA footprint collection, and the CTA-independence analysis that
 * decides whether the sliced injection engine may run (including the
 * required detection of cross-CTA communication).
 */

#include <gtest/gtest.h>

#include "faults/slicing.hh"
#include "ptx/assembler.hh"
#include "sim/executor.hh"
#include "sim/footprint.hh"

namespace fsp {
namespace {

using namespace sim;

TEST(IntervalSet, AddMergesOverlappingAndAdjacent)
{
    IntervalSet s;
    s.add(10, 20);
    s.add(30, 40);
    EXPECT_EQ(s.rangeCount(), 2u);
    EXPECT_EQ(s.totalBytes(), 20u);

    s.add(20, 30); // adjacent on both sides: collapses to one
    EXPECT_EQ(s.rangeCount(), 1u);
    EXPECT_EQ(s.totalBytes(), 30u);

    s.add(5, 15); // overlaps the front
    EXPECT_EQ(s.rangeCount(), 1u);
    EXPECT_EQ(s.totalBytes(), 35u);

    s.add(100, 100); // empty: ignored
    EXPECT_EQ(s.rangeCount(), 1u);
}

TEST(IntervalSet, FromUnsortedNormalises)
{
    IntervalSet s = IntervalSet::fromUnsorted(
        {{40, 50}, {10, 20}, {15, 30}, {30, 35}, {60, 60}});
    ASSERT_EQ(s.rangeCount(), 2u);
    EXPECT_EQ(s.ranges()[0], (Interval{10, 35}));
    EXPECT_EQ(s.ranges()[1], (Interval{40, 50}));
}

TEST(IntervalSet, MembershipQueries)
{
    IntervalSet s;
    s.add(10, 20);
    s.add(40, 50);

    EXPECT_TRUE(s.intersectsRange(15, 16));
    EXPECT_TRUE(s.intersectsRange(19, 41)); // spans the gap
    EXPECT_FALSE(s.intersectsRange(20, 40)); // exactly the gap
    EXPECT_FALSE(s.intersectsRange(0, 10));
    EXPECT_FALSE(s.intersectsRange(50, 60));

    EXPECT_TRUE(s.containsRange(10, 20));
    EXPECT_TRUE(s.containsRange(12, 15));
    EXPECT_FALSE(s.containsRange(10, 21));
    EXPECT_FALSE(s.containsRange(19, 41));

    IntervalSet t;
    t.add(20, 40);
    EXPECT_FALSE(s.intersects(t));
    t.add(49, 55);
    EXPECT_TRUE(s.intersects(t));
}

TEST(IntervalSet, SubtractAndClip)
{
    IntervalSet s;
    s.add(0, 100);
    IntervalSet holes;
    holes.add(10, 20);
    holes.add(50, 60);

    IntervalSet diff = s.subtract(holes);
    ASSERT_EQ(diff.rangeCount(), 3u);
    EXPECT_EQ(diff.ranges()[0], (Interval{0, 10}));
    EXPECT_EQ(diff.ranges()[1], (Interval{20, 50}));
    EXPECT_EQ(diff.ranges()[2], (Interval{60, 100}));

    IntervalSet clip = diff.clipped(15, 55);
    ASSERT_EQ(clip.rangeCount(), 1u);
    EXPECT_EQ(clip.ranges()[0], (Interval{20, 50}));

    // Subtracting everything leaves nothing.
    EXPECT_TRUE(s.subtract(s).empty());
    // Subtracting nothing is identity.
    EXPECT_EQ(s.subtract(IntervalSet{}), s);
}

TEST(IntervalSet, UnionWith)
{
    IntervalSet a;
    a.add(0, 10);
    a.add(30, 40);
    IntervalSet b;
    b.add(10, 30);
    b.add(50, 60);
    a.unionWith(b);
    ASSERT_EQ(a.rangeCount(), 2u);
    EXPECT_EQ(a.ranges()[0], (Interval{0, 40}));
    EXPECT_EQ(a.ranges()[1], (Interval{50, 60}));
}

/** Grid kernel harness (mirrors test_executor_grid.cc). */
struct GridKernel
{
    Program program;
    GlobalMemory memory{1u << 20};
    LaunchConfig launch;
    std::uint64_t out;

    GridKernel(const std::string &source, Dim3 grid, Dim3 block,
               std::size_t out_words)
        : program(ptx::assemble("grid", source))
    {
        out = memory.allocate(4 * out_words);
        launch.grid = grid;
        launch.block = block;
        launch.params.addU32(static_cast<std::uint32_t>(out));
    }

    RunResult
    run(const TraceOptions *opts = nullptr)
    {
        Executor executor(program, launch);
        return executor.run(memory, opts);
    }
};

/** Each CTA's threads write disjoint words: out[cta*ntid + tid]. */
constexpr const char *kIndependentSource = R"(
    ld.param.u32 $r1, [0]
    cvt.u32.u16 $r2, %ctaid.x
    cvt.u32.u16 $r3, %ntid.x
    mul.lo.u32 $r4, $r2, $r3
    cvt.u32.u16 $r5, %tid.x
    add.u32 $r4, $r4, $r5
    shl.u32 $r6, $r4, 0x00000002
    add.u32 $r6, $r1, $r6
    st.global.u32 [$r6], $r4
    ld.global.u32 $r7, [$r6]
    retp
)";

/**
 * Cross-CTA chain: CTA c stores 7 into out[c] if c == 0, else reads
 * out[c-1] and stores that + 1.  CTAs run in linear order, so the
 * golden output is [7, 8, 9, 10] -- but CTA c reads CTA c-1's output,
 * which is exactly the dependence the analysis must detect.
 */
constexpr const char *kChainSource = R"(
    ld.param.u32 $r1, [0]
    cvt.u32.u16 $r2, %ctaid.x
    shl.u32 $r3, $r2, 0x00000002
    add.u32 $r3, $r1, $r3
    set.eq.u32.u32 $p0|$o127, $r2, 0x00000000
    @$p0.ne mov.u32 $r4, 0x00000007
    @$p0.ne st.global.u32 [$r3], $r4
    @$p0.eq sub.u32 $r5, $r3, 0x00000004
    @$p0.eq ld.global.u32 $r6, [$r5]
    @$p0.eq add.u32 $r6, $r6, 0x00000001
    @$p0.eq st.global.u32 [$r3], $r6
    retp
)";

TEST(Footprints, CollectedPerCtaOnRequest)
{
    GridKernel k(kIndependentSource, {4, 1, 1}, {2, 1, 1}, 8);
    TraceOptions opts;
    opts.ctaFootprints = true;
    auto result = k.run(&opts);
    ASSERT_EQ(result.status, RunStatus::Completed);
    ASSERT_EQ(result.trace.ctaFootprints.size(), 4u);

    for (std::uint64_t cta = 0; cta < 4; ++cta) {
        const CtaFootprint &fp = result.trace.ctaFootprints[cta];
        // Each CTA writes (and reads back) its own 8-byte window.
        Interval window{k.out + cta * 8, k.out + cta * 8 + 8};
        ASSERT_EQ(fp.writes.rangeCount(), 1u) << cta;
        EXPECT_EQ(fp.writes.ranges()[0], window) << cta;
        ASSERT_EQ(fp.reads.rangeCount(), 1u) << cta;
        EXPECT_EQ(fp.reads.ranges()[0], window) << cta;
    }
}

TEST(Footprints, NotCollectedByDefault)
{
    GridKernel k(kIndependentSource, {2, 1, 1}, {2, 1, 1}, 4);
    TraceOptions opts;
    opts.perThreadProfiles = true;
    auto result = k.run(&opts);
    ASSERT_EQ(result.status, RunStatus::Completed);
    EXPECT_TRUE(result.trace.ctaFootprints.empty());
}

TEST(SlicingAnalysis, DisjointCtasAreIndependent)
{
    GridKernel k(kIndependentSource, {4, 1, 1}, {2, 1, 1}, 8);
    TraceOptions opts;
    opts.ctaFootprints = true;
    auto result = k.run(&opts);
    ASSERT_EQ(result.status, RunStatus::Completed);

    auto plan =
        faults::SlicingPlan::analyze(std::move(result.trace.ctaFootprints));
    EXPECT_TRUE(plan.independent());
    EXPECT_EQ(plan.reason(), "cta-independent");
    ASSERT_EQ(plan.ctaCount(), 4u);

    // Load hazards of CTA 1 are precisely the other CTAs' windows.
    const IntervalSet &lh = plan.loadHazards(1);
    EXPECT_FALSE(lh.intersectsRange(k.out + 8, k.out + 16));
    EXPECT_TRUE(lh.containsRange(k.out, k.out + 8));
    EXPECT_TRUE(lh.containsRange(k.out + 16, k.out + 32));
    // Store hazards additionally cover other CTAs' reads; here reads
    // equal writes, so the sets coincide.
    EXPECT_EQ(plan.storeHazards(1), lh);
}

TEST(SlicingAnalysis, CrossCtaReadIsDetected)
{
    GridKernel k(kChainSource, {4, 1, 1}, {1, 1, 1}, 4);
    TraceOptions opts;
    opts.ctaFootprints = true;
    auto result = k.run(&opts);
    ASSERT_EQ(result.status, RunStatus::Completed);

    // Golden chain values confirm the CTAs really communicate.
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_EQ(k.memory.peekU32(k.out + 4 * c), 7u + c);

    auto plan =
        faults::SlicingPlan::analyze(std::move(result.trace.ctaFootprints));
    EXPECT_FALSE(plan.independent());
    EXPECT_NE(plan.reason().find("read-after-write"), std::string::npos)
        << plan.reason();
}

TEST(SlicingAnalysis, WriteWriteOverlapIsDetected)
{
    // Every CTA writes out[tid]: all CTAs collide on the same words.
    GridKernel k(R"(
        ld.param.u32 $r1, [0]
        cvt.u32.u16 $r2, %tid.x
        shl.u32 $r3, $r2, 0x00000002
        add.u32 $r3, $r1, $r3
        st.global.u32 [$r3], $r2
        retp
    )",
                 {2, 1, 1}, {2, 1, 1}, 2);
    TraceOptions opts;
    opts.ctaFootprints = true;
    auto result = k.run(&opts);
    ASSERT_EQ(result.status, RunStatus::Completed);

    auto plan =
        faults::SlicingPlan::analyze(std::move(result.trace.ctaFootprints));
    EXPECT_FALSE(plan.independent());
    EXPECT_NE(plan.reason().find("write-write"), std::string::npos)
        << plan.reason();
}

TEST(SlicingAnalysis, SingleCtaIsNotSliceable)
{
    GridKernel k(kIndependentSource, {1, 1, 1}, {4, 1, 1}, 4);
    TraceOptions opts;
    opts.ctaFootprints = true;
    auto result = k.run(&opts);
    ASSERT_EQ(result.status, RunStatus::Completed);

    auto plan =
        faults::SlicingPlan::analyze(std::move(result.trace.ctaFootprints));
    EXPECT_FALSE(plan.independent());
}

TEST(SlicingAnalysis, DefaultPlanIsNotSliceable)
{
    faults::SlicingPlan plan;
    EXPECT_FALSE(plan.independent());
    EXPECT_EQ(plan.ctaCount(), 0u);
}

TEST(SlicingAnalysis, SharedReadOnlyInputStaysIndependent)
{
    // Both CTAs read the same input word (param-passed address) but
    // write disjoint outputs -- shared read-only data must not break
    // independence, yet it must appear in both CTAs' store hazards.
    GridKernel k(R"(
        ld.param.u32 $r1, [0]
        ld.param.u32 $r2, [4]
        ld.global.u32 $r3, [$r2]
        cvt.u32.u16 $r4, %ctaid.x
        add.u32 $r5, $r3, $r4
        shl.u32 $r6, $r4, 0x00000002
        add.u32 $r6, $r1, $r6
        st.global.u32 [$r6], $r5
        retp
    )",
                 {2, 1, 1}, {1, 1, 1}, 2);
    std::uint64_t input = k.memory.allocate(4);
    k.memory.pokeU32(input, 100);
    k.launch.params.addU32(static_cast<std::uint32_t>(input));

    TraceOptions opts;
    opts.ctaFootprints = true;
    auto result = k.run(&opts);
    ASSERT_EQ(result.status, RunStatus::Completed);
    EXPECT_EQ(k.memory.peekU32(k.out), 100u);
    EXPECT_EQ(k.memory.peekU32(k.out + 4), 101u);

    auto plan =
        faults::SlicingPlan::analyze(std::move(result.trace.ctaFootprints));
    ASSERT_TRUE(plan.independent()) << plan.reason();

    // The shared input word is read by the *other* CTA too, so a
    // faulty store there must trigger a hazard for either CTA.
    EXPECT_TRUE(plan.storeHazards(0).containsRange(input, input + 4));
    EXPECT_TRUE(plan.storeHazards(1).containsRange(input, input + 4));
    // But loading it is harmless: nobody writes it.
    EXPECT_FALSE(plan.loadHazards(0).intersectsRange(input, input + 4));
    EXPECT_FALSE(plan.loadHazards(1).intersectsRange(input, input + 4));
}

} // namespace
} // namespace fsp
