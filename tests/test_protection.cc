/**
 * @file
 * Planner-to-executor suite for partial thread protection: a zero
 * budget buys nothing and leaves the baseline untouched, a full budget
 * suppresses every covered SDC, partial selections achieve the modeled
 * share of the reduction, the protected verification campaign stays
 * bit-identical across worker counts, and an aborted protect
 * verification resumes from its journal without re-injecting committed
 * sites.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>

#include "analysis/analyzer.hh"
#include "analysis/protection_planner.hh"
#include "apps/app.hh"
#include "faults/campaign_engine.hh"
#include "faults/fault_model.hh"
#include "sim/protection.hh"

namespace fsp {
namespace {

/** A per-test journal path under gtest's temp dir, removed on setup. */
std::string
journalPath(const std::string &name)
{
    std::string path = testing::TempDir() + "fsp_" + name + ".fspj";
    std::remove(path.c_str());
    std::remove((path + ".protect").c_str());
    return path;
}

void
expectSameDist(const faults::OutcomeDist &a, const faults::OutcomeDist &b)
{
    EXPECT_EQ(a.runs(), b.runs());
    for (faults::Outcome o :
         {faults::Outcome::Masked, faults::Outcome::SDC,
          faults::Outcome::Other, faults::Outcome::Invalid}) {
        // Exact equality: protected campaigns fold in site order like
        // any other, so the weighted sums must match bit-for-bit.
        EXPECT_EQ(a.weightOf(o), b.weightOf(o))
            << "outcome " << faults::outcomeName(o);
    }
}

/**
 * GEMM at small scale is the planner's worst case and the ISSUE's
 * acceptance kernel: all 256 threads collapse into one homogeneous
 * group, so every fractional budget forces a partial (member-granular)
 * selection.
 */
class ProtectionPlannerTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
        ASSERT_NE(spec, nullptr);
        ka_.emplace(*spec, apps::Scale::Small);
        pruning::PruningConfig config;
        config.seed = 7;
        pruned_ = ka_->prune(config);
        ASSERT_FALSE(pruned_.sites.empty());
    }

    analysis::ProtectionOutcome
    runPlanner(double budget, const faults::CampaignOptions &options,
               sim::ProtectionScheme scheme =
                   sim::ProtectionScheme::DuplicateCompare)
    {
        analysis::ProtectionPlannerConfig config;
        config.budget = budget;
        config.scheme = scheme;
        analysis::ProtectionPlanner planner(*ka_, config);
        return planner.plan(pruned_, options);
    }

    std::optional<analysis::KernelAnalysis> ka_;
    pruning::PruningResult pruned_;
};

TEST_F(ProtectionPlannerTest, ZeroBudgetBuysNothingAndKeepsBaseline)
{
    auto outcome = runPlanner(0.0, {});
    EXPECT_EQ(outcome.plan, nullptr);
    EXPECT_TRUE(outcome.selected.empty());
    EXPECT_EQ(outcome.modeledCost, 0.0);
    EXPECT_EQ(outcome.modeledSdcCovered, 0.0);
    EXPECT_FALSE(outcome.verified);
    EXPECT_EQ(outcome.sdcBefore, outcome.sdcAfter);
    expectSameDist(outcome.before.dist, outcome.after.dist);

    // The baseline itself matches an ordinary pruned campaign: the
    // planner's keepSiteOutcomes bookkeeping is result-neutral.
    auto plain = ka_->runPrunedCampaignDetailed(pruned_, {});
    expectSameDist(plain.dist, outcome.before.dist);
}

TEST_F(ProtectionPlannerTest, FullBudgetSuppressesAllCoveredSdc)
{
    auto outcome = runPlanner(1.0, {});
    ASSERT_NE(outcome.plan, nullptr);
    ASSERT_FALSE(outcome.selected.empty());
    for (const analysis::SelectedGroup &group : outcome.selected) {
        EXPECT_EQ(group.threadCount, group.groupThreads)
            << "full budget must afford whole groups";
    }
    EXPECT_TRUE(outcome.verified);

    // The default single-bit model flips destination registers, which
    // duplicate-and-compare covers completely: every baseline SDC is
    // detected and suppressed, so the protected campaign's SDC weight
    // is exactly zero and each suppression counts as a detection.
    EXPECT_GT(outcome.sdcBefore, 0.0);
    EXPECT_EQ(outcome.after.dist.weightOf(faults::Outcome::SDC), 0.0);
    EXPECT_GT(outcome.after.injection.detectedFaults, 0u);
    EXPECT_GT(outcome.after.dist.weightOf(faults::Outcome::Masked),
              outcome.before.dist.weightOf(faults::Outcome::Masked));
}

TEST_F(ProtectionPlannerTest, PartialSelectionAchievesModeledShare)
{
    auto outcome = runPlanner(0.25, {});
    ASSERT_NE(outcome.plan, nullptr);
    ASSERT_EQ(outcome.selected.size(), 1u);
    const analysis::SelectedGroup &group = outcome.selected.front();
    EXPECT_EQ(group.groupThreads, 256u);
    EXPECT_EQ(group.threadCount, 64u); // 25% of one homogeneous group
    EXPECT_LT(group.threadCount, group.groupThreads);
    EXPECT_LE(outcome.modeledCost, outcome.budgetInstrs);
    EXPECT_EQ(outcome.plan->protectedThreadCount(), 64u);

    // Protected members must exclude the injected representatives:
    // those carry the unprotected share of the split weight.
    for (const pruning::ThreadGroup *g : pruned_.grouping.allGroups()) {
        EXPECT_FALSE(outcome.plan->protectsThread(g->representative));
        for (std::uint64_t rep : g->representatives)
            EXPECT_FALSE(outcome.plan->protectsThread(rep));
    }

    // Homogeneous members classify identically, so protecting k of m
    // members removes exactly k/m of the SDC weight (up to the split
    // weights' floating rescale).
    EXPECT_TRUE(outcome.verified);
    const double drop = outcome.sdcBefore - outcome.sdcAfter;
    EXPECT_GT(outcome.sdcAfter, 0.0);
    EXPECT_LT(outcome.sdcAfter, outcome.sdcBefore);
    EXPECT_NEAR(drop, 0.25 * outcome.sdcBefore, 1e-9);
}

TEST_F(ProtectionPlannerTest, RecomputeIsCheaperThanDuplicateCompare)
{
    auto dup = runPlanner(1.0, {});
    auto rec = runPlanner(1.0, {}, sim::ProtectionScheme::Recompute);
    ASSERT_NE(rec.plan, nullptr);
    EXPECT_EQ(rec.plan->scheme(), sim::ProtectionScheme::Recompute);

    // Recompute prices only the SDC-producing dynamic ranges, so the
    // same full-group coverage costs strictly less than doubling every
    // member instruction -- and still clears every covered SDC (the
    // default model corrupts destination registers inside the ranges).
    EXPECT_LT(rec.modeledCost, dup.modeledCost);
    EXPECT_TRUE(rec.verified);
    EXPECT_EQ(rec.after.dist.weightOf(faults::Outcome::SDC), 0.0);
}

TEST_F(ProtectionPlannerTest, ProtectedCampaignBitIdenticalAcrossWorkers)
{
    std::optional<analysis::ProtectionOutcome> reference;
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        faults::CampaignOptions options;
        options.workers = workers;
        options.chunkSize = 13;
        auto outcome = runPlanner(0.3, options);
        ASSERT_NE(outcome.plan, nullptr);
        EXPECT_TRUE(outcome.verified);
        if (!reference) {
            reference = std::move(outcome);
            continue;
        }
        expectSameDist(reference->before.dist, outcome.before.dist);
        expectSameDist(reference->after.dist, outcome.after.dist);
        EXPECT_EQ(reference->plan->identity(),
                  outcome.plan->identity());
    }
}

TEST_F(ProtectionPlannerTest, AbortedVerificationResumesFromJournal)
{
    // Reference: the same planner run without any journal.
    auto expected = runPlanner(0.25, {});
    ASSERT_TRUE(expected.verified);

    const std::string path = journalPath("protect_resume");
    faults::CampaignOptions options;
    options.workers = 3;
    options.chunkSize = 7;
    options.journalPath = path;
    options.journalKey = {"protect-suite", 7};
    options.resume = true;

    // Phase 1: the baseline campaign (pruned_.sites.size() sites)
    // completes and commits its journal; the verification campaign --
    // twice as large, every site of the one split group doubled --
    // crosses the abort threshold mid-run and dies like a SIGKILL
    // between chunk commits.
    const std::uint64_t baseline_sites = pruned_.sites.size();
    faults::CampaignOptions killed = options;
    killed.abortAfterSites = baseline_sites + baseline_sites / 2;
    EXPECT_THROW(runPlanner(0.25, killed), faults::CampaignAborted);

    // Phase 2: resume.  The baseline replays fully from its journal;
    // the verification replays its committed prefix from the .protect
    // journal and injects only the tail.  Both must reproduce the
    // journal-less reference bit-for-bit.
    auto resumed = runPlanner(0.25, options);
    EXPECT_TRUE(resumed.verified);
    expectSameDist(expected.before.dist, resumed.before.dist);
    expectSameDist(expected.after.dist, resumed.after.dist);
    EXPECT_EQ(expected.sdcAfter, resumed.sdcAfter);

    std::remove(path.c_str());
    std::remove((path + ".protect").c_str());
}

TEST(AnalysisConfig, ConstructorAndConfigureApplyLazily)
{
    const apps::KernelSpec *spec = apps::findKernel("PathFinder/K1");
    ASSERT_NE(spec, nullptr);

    // Construction-time config: engine knobs reach the injector.
    analysis::AnalysisConfig facade;
    facade.checkpoints = false;
    facade.slicing = false;
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small, facade);
    EXPECT_FALSE(ka.injector().checkpointsActive());
    EXPECT_FALSE(ka.injector().slicingActive());

    // configure() before first injector use defers the model to the
    // golden run instead of forcing one per knob.
    analysis::KernelAnalysis lazy(*spec, apps::Scale::Small);
    analysis::AnalysisConfig with_model;
    std::string error;
    with_model.faultModel =
        faults::parseFaultModel("multi-bit:width=3", &error);
    ASSERT_NE(with_model.faultModel, nullptr) << error;
    with_model.modelSeed = 11;
    lazy.configure(with_model);
    EXPECT_EQ(lazy.faultModel().identity(),
              lazy.injector().faultModel().identity());
    EXPECT_NE(lazy.faultModel().identity().find("multi-bit"),
              std::string::npos);
}

} // namespace
} // namespace fsp
