/**
 * @file
 * SDC anatomy suite: synthetic corrupted-output fixtures pinning the
 * classifier's spatial labels (single element, row/column streak,
 * block, scattered) and the magnitude-histogram bucket edges, plus
 * round-trips of anatomy records through the tools' --json surface and
 * the campaign journal, ranking determinism, and the metrics export.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "faults/campaign_journal.hh"
#include "faults/output_spec.hh"
#include "faults/sdc_anatomy.hh"
#include "util/json.hh"
#include "util/metrics.hh"
#include "util/prng.hh"

namespace fsp {
namespace {

using faults::SdcPattern;

/** One float region of @p rows x @p cols elements at address 0. */
faults::OutputRegion
gridRegion(std::uint64_t rows, std::uint64_t cols, double tolerance)
{
    return {"grid", 0, 4ull * rows * cols, faults::ElemType::F32,
            tolerance, rows};
}

std::vector<std::uint8_t>
floatBytes(const std::vector<float> &values)
{
    std::vector<std::uint8_t> bytes(values.size() * sizeof(float));
    std::memcpy(bytes.data(), values.data(), bytes.size());
    return bytes;
}

/** Golden 8x8 grid: element i holds 1 + i (away from denormal edges). */
std::vector<float>
goldenGrid()
{
    std::vector<float> values(64);
    for (std::size_t i = 0; i < values.size(); ++i)
        values[i] = 1.0f + static_cast<float>(i);
    return values;
}

faults::SdcAnatomyRecord
classifyGrid(const std::vector<std::size_t> &corrupted,
             double tolerance = 0.0)
{
    auto golden = goldenGrid();
    auto test = golden;
    for (std::size_t index : corrupted)
        test[index] += 100.0f;
    std::vector<faults::OutputRegion> regions = {
        gridRegion(8, 8, tolerance)};
    return faults::classifySdc(regions, {floatBytes(golden)},
                               {floatBytes(test)});
}

TEST(SdcClassifier, CleanOutputIsNone)
{
    auto record = classifyGrid({});
    EXPECT_EQ(record.pattern, SdcPattern::None);
    EXPECT_EQ(record.corruptedElements(), 0u);
}

TEST(SdcClassifier, SingleElement)
{
    auto record = classifyGrid({27});
    EXPECT_EQ(record.pattern, SdcPattern::SingleElement);
    EXPECT_EQ(record.corruptedElements(), 1u);
}

TEST(SdcClassifier, RowStreak)
{
    // Contiguous run inside row 1 of the 8x8 grid.
    auto record = classifyGrid({10, 11, 12, 13});
    EXPECT_EQ(record.pattern, SdcPattern::RowStreak);
    EXPECT_EQ(record.corruptedElements(), 4u);
}

TEST(SdcClassifier, ColumnStreak)
{
    // Column 3, stride 8 between consecutive corrupted elements.
    auto record = classifyGrid({3, 11, 19, 27});
    EXPECT_EQ(record.pattern, SdcPattern::ColumnStreak);
}

TEST(SdcClassifier, Block)
{
    // Dense 2x3 rectangle spanning rows 2-3, columns 1-3.
    auto record = classifyGrid({17, 18, 19, 25, 26, 27});
    EXPECT_EQ(record.pattern, SdcPattern::Block);
}

TEST(SdcClassifier, SparseBoundingBoxIsScattered)
{
    // Opposite grid corners: huge bounding box, two elements.
    auto record = classifyGrid({0, 63});
    EXPECT_EQ(record.pattern, SdcPattern::Scattered);
}

TEST(SdcClassifier, FlatRegionUsesSingleRowGeometry)
{
    // rows=0 regions are one logical row: any contiguous run reads as
    // a row streak, never a column.
    auto golden = goldenGrid();
    auto test = golden;
    test[5] += 1.0f;
    test[6] += 1.0f;
    std::vector<faults::OutputRegion> regions = {
        {"flat", 0, 4ull * 64, faults::ElemType::F32, 0.0}};
    auto record = faults::classifySdc(regions, {floatBytes(golden)},
                                      {floatBytes(test)});
    EXPECT_EQ(record.pattern, SdcPattern::RowStreak);
}

TEST(SdcClassifier, MultiRegionCorruptionIsScattered)
{
    auto golden = goldenGrid();
    auto a = golden;
    auto b = golden;
    a[1] += 1.0f;
    b[2] += 1.0f;
    std::vector<faults::OutputRegion> regions = {gridRegion(8, 8, 0.0),
                                                 gridRegion(8, 8, 0.0)};
    auto record =
        faults::classifySdc(regions, {floatBytes(golden), floatBytes(golden)},
                            {floatBytes(a), floatBytes(b)});
    EXPECT_EQ(record.pattern, SdcPattern::Scattered);
    EXPECT_EQ(record.corruptedElements(), 2u);

    // ... but a single corrupted element stays SingleElement no matter
    // which of several regions it lives in.
    auto single =
        faults::classifySdc(regions, {floatBytes(golden), floatBytes(golden)},
                            {floatBytes(golden), floatBytes(b)});
    EXPECT_EQ(single.pattern, SdcPattern::SingleElement);
}

TEST(SdcClassifier, ToleranceZeroMatchesMemcmpSemantics)
{
    // Under tolerance 0 float regions compare bitwise (outputsMatch
    // uses memcmp), so -0.0 vs +0.0 is a corruption -- with relative
    // error 0, landing in the smallest magnitude bucket.
    std::vector<float> golden = {0.0f, 1.0f};
    std::vector<float> test = {-0.0f, 1.0f};
    std::vector<faults::OutputRegion> regions = {
        {"pair", 0, 8, faults::ElemType::F32, 0.0}};
    auto record = faults::classifySdc(regions, {floatBytes(golden)},
                                      {floatBytes(test)});
    EXPECT_EQ(record.pattern, SdcPattern::SingleElement);
    EXPECT_EQ(record.magnitude[0], 1u);
}

TEST(SdcClassifier, TailBytesReportAsPseudoElement)
{
    // A 6-byte F32 region holds one full element plus a 2-byte tail;
    // corrupting the tail reports one trailing pseudo-element in the
    // overflow magnitude bucket.
    std::vector<std::uint8_t> golden = {0, 0, 0x80, 0x3f, 0xaa, 0xbb};
    auto test = golden;
    test[5] ^= 0xff;
    std::vector<faults::OutputRegion> regions = {
        {"tail", 0, 6, faults::ElemType::F32, 0.0}};
    auto record = faults::classifySdc(regions, {golden}, {test});
    EXPECT_EQ(record.pattern, SdcPattern::SingleElement);
    EXPECT_EQ(record.magnitude[faults::kMagnitudeBuckets - 1], 1u);
}

TEST(SdcMagnitude, BucketEdges)
{
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(faults::magnitudeBucket(0.0), 0u);
    // Edges are inclusive upper bounds; the next representable value
    // falls into the following bucket.
    for (std::size_t i = 0; i < faults::kMagnitudeEdges.size(); ++i) {
        double edge = faults::kMagnitudeEdges[i];
        EXPECT_EQ(faults::magnitudeBucket(edge), i) << edge;
        EXPECT_EQ(faults::magnitudeBucket(std::nextafter(edge, inf)),
                  i + 1)
            << edge;
    }
    EXPECT_EQ(faults::magnitudeBucket(inf),
              faults::kMagnitudeBuckets - 1);
    EXPECT_EQ(faults::magnitudeBucket(nan),
              faults::kMagnitudeBuckets - 1);
    EXPECT_EQ(faults::magnitudeBucketLabel(0), "<=1e-06");
    EXPECT_EQ(
        faults::magnitudeBucketLabel(faults::kMagnitudeBuckets - 1),
        ">1e+06");
}

TEST(SdcMagnitude, HistogramFromClassifier)
{
    // Tolerant region (tolerance 1e-8) so relative errors are computed
    // rather than bitwise: corrupt three elements with known relative
    // errors and one with NaN.
    std::vector<float> golden = {1.0f, 1.0f, 1.0f, 1.0f, 1.0f};
    std::vector<float> test = golden;
    test[0] = 1.00001f; // relError ~1e-5        -> bucket 1 (<=1e-4)
    test[1] = 1.5f;     // relError ~0.333       -> bucket 3 (<=1)
    test[2] = 1000.0f;  // relError ~0.999       -> bucket 3 (<=1)
    test[3] = std::numeric_limits<float>::quiet_NaN(); // -> overflow
    std::vector<faults::OutputRegion> regions = {
        {"vec", 0, 4ull * golden.size(), faults::ElemType::F32, 1e-8}};
    auto record = faults::classifySdc(regions, {floatBytes(golden)},
                                      {floatBytes(test)});
    EXPECT_EQ(record.corruptedElements(), 4u);
    EXPECT_EQ(record.magnitude[1], 1u);
    EXPECT_EQ(record.magnitude[3], 2u);
    EXPECT_EQ(record.magnitude[faults::kMagnitudeBuckets - 1], 1u);
}

TEST(SdcClassifier, NoneIffOutputsMatchUnderRandomCorruption)
{
    // Invariant behind "anatomy never changes a classification": the
    // classifier reports None exactly when outputsMatch() passes, for
    // random corruption across element types and tolerances.
    Prng prng(77);
    for (int iter = 0; iter < 200; ++iter) {
        faults::ElemType type = iter % 2 == 0 ? faults::ElemType::F32
                                              : faults::ElemType::U32;
        double tolerance =
            (type == faults::ElemType::F32 && iter % 4 == 0) ? 1e-3 : 0.0;
        std::uint64_t rows = 1 + prng.below(4);
        std::uint64_t elems = rows * (1 + prng.below(8));
        faults::OutputRegion region = {"r", 0, 4 * elems, type, tolerance,
                                       rows};
        std::vector<std::uint8_t> golden(region.bytes);
        for (auto &byte : golden)
            byte = static_cast<std::uint8_t>(prng.below(256));
        auto test = golden;
        std::uint64_t flips = prng.below(4);
        for (std::uint64_t f = 0; f < flips; ++f)
            test[prng.below(test.size())] ^=
                static_cast<std::uint8_t>(1 + prng.below(255));
        std::vector<faults::OutputRegion> regions = {region};
        bool match = faults::outputsMatch(regions, {golden}, {test});
        auto record = faults::classifySdc(regions, {golden}, {test});
        EXPECT_EQ(match, record.pattern == SdcPattern::None)
            << "iter " << iter;
        EXPECT_EQ(match, record.corruptedElements() == 0) << "iter " << iter;
    }
}

// --- Profile aggregation, ranking, JSON and journal round-trips.

faults::SdcAnatomyRecord
sampleRecord()
{
    faults::SdcAnatomyRecord record;
    record.pattern = SdcPattern::RowStreak;
    record.magnitude[2] = 3;
    record.magnitude[6] = 1;
    return record;
}

TEST(SdcProfile, RankingOrderIsDeterministic)
{
    faults::SdcAnatomyProfile profile;
    auto sdc = sampleRecord();
    // static 7: two weighted SDC runs; static 3: one heavier SDC run;
    // static 9: masked only.  Ties (none here) break by index.
    profile.addRun(faults::Outcome::SDC, 1.0, 7, &sdc);
    profile.addRun(faults::Outcome::SDC, 1.5, 7, &sdc);
    profile.addRun(faults::Outcome::SDC, 4.0, 3, &sdc);
    profile.addRun(faults::Outcome::Masked, 2.0, 9, nullptr);
    profile.addRun(faults::Outcome::Other, 1.0, 3, nullptr);

    EXPECT_EQ(profile.sdcRuns(), 3u);
    EXPECT_EQ(profile.patternRuns(SdcPattern::RowStreak), 3u);
    EXPECT_DOUBLE_EQ(profile.patternWeight(SdcPattern::RowStreak), 6.5);
    EXPECT_EQ(profile.magnitude()[2], 9u);
    EXPECT_EQ(profile.magnitude()[6], 3u);

    auto ranked = profile.ranking();
    ASSERT_EQ(ranked.size(), 3u);
    EXPECT_EQ(ranked[0].staticIndex, 3u);
    EXPECT_DOUBLE_EQ(ranked[0].counts.sdc, 4.0);
    EXPECT_DOUBLE_EQ(ranked[0].counts.other, 1.0);
    EXPECT_EQ(ranked[1].staticIndex, 7u);
    EXPECT_EQ(ranked[1].counts.runs, 2u);
    EXPECT_EQ(ranked[2].staticIndex, 9u);
    EXPECT_EQ(profile.ranking(1).size(), 1u);

    // merge() folds order-independent sums.
    faults::SdcAnatomyProfile other;
    other.addRun(faults::Outcome::SDC, 0.5, 7, &sdc);
    profile.merge(other);
    EXPECT_EQ(profile.sdcRuns(), 4u);
    EXPECT_DOUBLE_EQ(profile.byStatic().at(7).sdc, 3.0);
}

TEST(SdcProfile, JsonRoundTrip)
{
    faults::SdcAnatomyProfile profile;
    auto sdc = sampleRecord();
    profile.addRun(faults::Outcome::SDC, 2.0, 5, &sdc);
    profile.addRun(faults::Outcome::Masked, 1.0, 5, nullptr);

    std::ostringstream os;
    {
        JsonWriter json(os);
        json.beginObject();
        profile.writeJson(json);
        json.endObject();
    }
    const std::string doc = os.str();
    // The document carries the profile's tallies under stable keys --
    // the contract the bench artifact and downstream dashboards read.
    EXPECT_NE(doc.find("\"sdc_anatomy\""), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"sdc_runs\": 1"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"row-streak\""), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"<=1e-02\": 3"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\">1e+06\": 1"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"static_ranking\""), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"static_index\": 5"), std::string::npos) << doc;
}

TEST(SdcProfile, JournalRoundTripPreservesAnatomy)
{
    std::string path = testing::TempDir() + "fsp_anatomy_roundtrip.fspj";
    std::remove(path.c_str());

    std::vector<faults::FaultSite> sites = {{0, 1, 2}, {0, 3, 4},
                                            {1, 0, 5}};
    std::uint64_t hash =
        faults::journalHeaderHash({"anatomy-suite", 3}, sites);

    faults::InjectionDetail sdcDetail;
    sdcDetail.staticIndex = 21;
    sdcDetail.hasAnatomy = true;
    sdcDetail.anatomy = sampleRecord();
    faults::InjectionDetail otherDetail;
    otherDetail.staticIndex = 4;

    {
        auto journal =
            faults::CampaignJournal::create(path, hash, 99, sites.size());
        journal.append(0, faults::Outcome::SDC, sdcDetail);
        journal.append(1, faults::Outcome::Other, otherDetail);
        journal.append(2, faults::Outcome::Masked);
        journal.commitChunk();
    }

    faults::CampaignJournal::Resume resume;
    faults::CampaignJournal::openOrResume(path, hash, 99, sites.size(),
                                          resume);
    ASSERT_EQ(resume.details.size(), sites.size());
    EXPECT_EQ(resume.details[0], sdcDetail);
    EXPECT_EQ(resume.details[1], otherDetail);
    EXPECT_EQ(resume.details[2], faults::InjectionDetail{});

    // Re-folding the replayed records reproduces the profile the
    // original campaign would have built.
    faults::SdcAnatomyProfile profile;
    for (std::size_t i = 0; i < sites.size(); ++i) {
        const auto &detail = resume.details[i];
        profile.addRun(resume.outcomes[i], 1.0, detail.staticIndex,
                       detail.hasAnatomy ? &detail.anatomy : nullptr);
    }
    EXPECT_EQ(profile.sdcRuns(), 1u);
    EXPECT_EQ(profile.patternRuns(SdcPattern::RowStreak), 1u);
    EXPECT_EQ(profile.magnitude()[2], 3u);
    std::remove(path.c_str());
}

TEST(SdcProfile, MetricsExport)
{
    faults::SdcAnatomyProfile profile;
    auto sdc = sampleRecord();
    profile.addRun(faults::Outcome::SDC, 1.0, 2, &sdc);
    profile.addRun(faults::Outcome::SDC, 1.0, 2, &sdc);

    metrics::Registry registry;
    profile.exportMetrics(registry);
    auto runs = registry.counter("fsp_sdc_pattern_runs_total", "",
                                 "pattern=\"row-streak\"");
    EXPECT_EQ(registry.counterValue(runs), 2u);
    auto elems = registry.counter("fsp_sdc_magnitude_elements_total", "",
                                  "bucket=\"<=1e-02\"");
    EXPECT_EQ(registry.counterValue(elems), 6u);
}

} // namespace
} // namespace fsp
