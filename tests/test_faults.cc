/**
 * @file
 * Unit tests for the fault model: Eq. 1 enumeration vs brute force,
 * uniform site sampling, outcome classification (masked / SDC / crash /
 * hang), output comparison tolerances, and the Eq. 2-4 sample sizing
 * that reproduces the paper's Table II numbers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "reference_campaign.hh"
#include "faults/fault_space.hh"
#include "faults/injector.hh"
#include "faults/sampling.hh"
#include "sim_test_util.hh"

namespace fsp {
namespace {

using test::MiniKernel;

/** A 2-thread kernel with known per-thread fault bits. */
const char *kTwoThreadSource = R"(
    ld.param.u32 $r1, [0]         // 32 bits
    cvt.u32.u16 $r2, %tid.x       // 32
    set.eq.u32.u32 $p0|$o127, $r2, 0x00000000  // 4
    @$p0.ne retp                  // 0
    mov.u32 $r3, 0x00000001       // 32 (thread 1 only)
    shl.u32 $r4, $r2, 0x00000002  // 32 (thread 1 only)
    add.u32 $r4, $r1, $r4         // 32 (thread 1 only)
    st.global.u32 [$r4], $r3      // 0
    retp
)";

TEST(FaultSpace, Equation1MatchesHandCount)
{
    MiniKernel k(kTwoThreadSource, 8, 2);
    sim::Executor executor(k.program(), k.launchConfig());
    faults::FaultSpace space(executor, k.memory());
    // Thread 0: 32+32+4 = 68; thread 1: 68 + 3*32 = 164.
    EXPECT_EQ(space.threadCount(), 2u);
    EXPECT_EQ(space.profiles()[0].faultBits, 68u);
    EXPECT_EQ(space.profiles()[1].faultBits, 164u);
    EXPECT_EQ(space.totalSites(), 232u);
    EXPECT_EQ(space.totalDynInstrs(), 4u + 9u);
}

TEST(FaultSpace, ThreadSitesEnumerateEveryBit)
{
    MiniKernel k(kTwoThreadSource, 8, 2);
    sim::Executor executor(k.program(), k.launchConfig());
    faults::FaultSpace space(executor, k.memory());

    sim::TraceOptions opts;
    opts.traceThreads.insert(1);
    sim::GlobalMemory scratch = k.memory();
    auto result = executor.run(scratch, &opts);
    auto sites = space.threadSites(1, result.trace.dynTraces.at(1));
    EXPECT_EQ(sites.size(), 164u);
    // Sites reference only dest-writing instructions with valid bits.
    for (const auto &site : sites) {
        EXPECT_EQ(site.thread, 1u);
        EXPECT_LT(site.bit, 32u);
    }
}

TEST(FaultSpace, SampleSitesUniformAndValid)
{
    MiniKernel k(kTwoThreadSource, 8, 2);
    sim::Executor executor(k.program(), k.launchConfig());
    faults::FaultSpace space(executor, k.memory());

    Prng prng(3);
    auto sites = space.sampleSites(2000, prng);
    ASSERT_EQ(sites.size(), 2000u);

    std::map<std::uint64_t, unsigned> per_thread;
    for (const auto &site : sites) {
        per_thread[site.thread]++;
        ASSERT_LT(site.thread, 2u);
    }
    // Thread 1 holds 164/232 = 70.7% of the space.
    double t1 = per_thread[1] / 2000.0;
    EXPECT_NEAR(t1, 164.0 / 232.0, 0.04);

    // Deterministic for the same seed.
    Prng prng2(3);
    auto sites2 = space.sampleSites(2000, prng2);
    ASSERT_EQ(sites2.size(), sites.size());
    for (std::size_t i = 0; i < sites.size(); ++i)
        EXPECT_TRUE(sites[i] == sites2[i]);
}

/** Kernel computing out[0] = 40 + 2 via registers (for injection). */
const char *kInjectSource = R"(
    ld.param.u32 $r1, [0]
    mov.u32 $r2, 0x00000028
    mov.u32 $r3, 0x00000002
    add.u32 $r4, $r2, $r3
    st.global.u32 [$r1], $r4
    mov.u32 $r5, 0x00000063    // dead value: masked when flipped
    retp
)";

class InjectorTest : public ::testing::Test
{
  protected:
    InjectorTest() : kernel_(kInjectSource)
    {
        config_ = kernel_.launchConfig();
        outputs_.push_back({"out", kernel_.outAddr(), 4,
                            faults::ElemType::U32, 0.0});
    }

    MiniKernel kernel_;
    sim::LaunchConfig config_;
    std::vector<faults::OutputRegion> outputs_;
};

TEST_F(InjectorTest, ClassifiesMaskedAndSdc)
{
    faults::Injector injector(kernel_.program(), config_, kernel_.memory(),
                              outputs_);
    // Flip a bit of the dead mov -> masked.
    EXPECT_EQ(injector.inject({0, 5, 3}), faults::Outcome::Masked);
    // Flip a bit of the add result -> SDC.
    EXPECT_EQ(injector.inject({0, 3, 0}), faults::Outcome::SDC);
    // Flip bit 1 of "2" (instruction 2): 2 -> 0; 40+0 != 42 -> SDC.
    EXPECT_EQ(injector.inject({0, 2, 1}), faults::Outcome::SDC);
    EXPECT_EQ(injector.runsPerformed(), 3u);
}

TEST_F(InjectorTest, ClassifiesCrash)
{
    faults::Injector injector(kernel_.program(), config_, kernel_.memory(),
                              outputs_);
    // Flip a high bit of the output pointer -> wild store -> crash.
    EXPECT_EQ(injector.inject({0, 0, 23}), faults::Outcome::Other);
}

TEST_F(InjectorTest, InjectionsAreIndependent)
{
    faults::Injector injector(kernel_.program(), config_, kernel_.memory(),
                              outputs_);
    // An SDC-producing injection must not contaminate later runs.
    EXPECT_EQ(injector.inject({0, 3, 0}), faults::Outcome::SDC);
    EXPECT_EQ(injector.inject({0, 5, 3}), faults::Outcome::Masked);
    EXPECT_EQ(injector.inject({0, 3, 0}), faults::Outcome::SDC);
}

TEST_F(InjectorTest, CloneStatsAreIsolated)
{
    faults::Injector injector(kernel_.program(), config_, kernel_.memory(),
                              outputs_);
    EXPECT_EQ(injector.inject({0, 3, 0}), faults::Outcome::SDC);
    EXPECT_EQ(injector.stats().injections, 1u);

    // A clone starts from zeroed stats, not a copy of the prototype's.
    auto clone = injector.clone();
    EXPECT_EQ(clone->stats().injections, 0u);
    EXPECT_EQ(clone->runsPerformed(), 0u);

    // Runs tally into exactly one injector, in either direction.
    EXPECT_EQ(clone->inject({0, 5, 3}), faults::Outcome::Masked);
    EXPECT_EQ(clone->stats().injections, 1u);
    EXPECT_EQ(injector.stats().injections, 1u);
    EXPECT_EQ(injector.inject({0, 3, 0}), faults::Outcome::SDC);
    EXPECT_EQ(injector.stats().injections, 2u);
    EXPECT_EQ(clone->stats().injections, 1u);
}

TEST(InjectionStats, MergeAndSinceCoverEveryField)
{
    // Every counter gets a distinct value, so a field skipped by
    // merge() or since() shows up as a wrong sum here (and the
    // struct-size static_assert in injector.cc catches fields added
    // without updating them).
    faults::InjectionStats a;
    a.injections = 1;
    a.slicedRuns = 2;
    a.fullGridRuns = 3;
    a.hazardFallbacks = 4;
    a.invalidSites = 5;
    a.executedCtas = 6;
    a.restoredBytes = 7;
    a.checkpointRestores = 8;
    a.skippedDynInstrs = 9;

    faults::InjectionStats sum = a;
    sum.merge(a);
    EXPECT_EQ(sum.injections, 2u);
    EXPECT_EQ(sum.slicedRuns, 4u);
    EXPECT_EQ(sum.fullGridRuns, 6u);
    EXPECT_EQ(sum.hazardFallbacks, 8u);
    EXPECT_EQ(sum.invalidSites, 10u);
    EXPECT_EQ(sum.executedCtas, 12u);
    EXPECT_EQ(sum.restoredBytes, 14u);
    EXPECT_EQ(sum.checkpointRestores, 16u);
    EXPECT_EQ(sum.skippedDynInstrs, 18u);

    faults::InjectionStats delta = sum.since(a);
    EXPECT_EQ(delta.injections, a.injections);
    EXPECT_EQ(delta.slicedRuns, a.slicedRuns);
    EXPECT_EQ(delta.fullGridRuns, a.fullGridRuns);
    EXPECT_EQ(delta.hazardFallbacks, a.hazardFallbacks);
    EXPECT_EQ(delta.invalidSites, a.invalidSites);
    EXPECT_EQ(delta.executedCtas, a.executedCtas);
    EXPECT_EQ(delta.restoredBytes, a.restoredBytes);
    EXPECT_EQ(delta.checkpointRestores, a.checkpointRestores);
    EXPECT_EQ(delta.skippedDynInstrs, a.skippedDynInstrs);

    // The one-line rendering includes the replay counters.
    EXPECT_NE(a.summary().find("ckpt-restores 8"), std::string::npos);
    EXPECT_NE(a.summary().find("skipped 9 instrs"), std::string::npos);
}

TEST(Injector, ClassifiesHang)
{
    // A loop whose trip count register can be corrupted into (almost)
    // never terminating.
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        mov.u32 $r2, 0x00000000
        loop:
        add.u32 $r2, $r2, 0x00000001
        set.eq.u32.u32 $p0|$o127, $r2, 0x00000004
        @$p0.eq bra loop            // loop while counter != 4
        st.global.u32 [$r1], $r2
        retp
    )");
    sim::LaunchConfig config = k.launchConfig();
    std::vector<faults::OutputRegion> outputs{
        {"out", k.outAddr(), 4, faults::ElemType::U32, 0.0}};
    faults::Injector injector(k.program(), config, k.memory(), outputs);
    // Flip bit 31 of the counter right before the final comparison:
    // the counter becomes huge... but wraps upward; the loop must run
    // ~2^31 more iterations, far beyond the budget -> hang.
    EXPECT_EQ(injector.inject({0, 2, 31}), faults::Outcome::Other);
}

TEST(OutputSpec, FloatToleranceControlsMatching)
{
    sim::GlobalMemory m(1 << 12);
    std::uint64_t addr = m.allocate(8);
    m.pokeF32(addr, 1.0f);
    m.pokeF32(addr + 4, 2.0f);

    std::vector<faults::OutputRegion> exact{
        {"r", addr, 8, faults::ElemType::F32, 0.0}};
    std::vector<faults::OutputRegion> loose{
        {"r", addr, 8, faults::ElemType::F32, 1e-3}};

    auto golden = faults::captureOutputs(m, exact);
    m.pokeF32(addr, 1.0000005f);
    auto test = faults::captureOutputs(m, exact);

    EXPECT_FALSE(faults::outputsMatch(exact, golden, test));
    EXPECT_TRUE(faults::outputsMatch(loose, golden, test));

    // NaN never matches, even loosely.
    m.pokeF32(addr, std::nanf(""));
    auto nan_test = faults::captureOutputs(m, exact);
    EXPECT_FALSE(faults::outputsMatch(loose, golden, nan_test));
}

TEST(Sampling, Equation4ReproducesTable2)
{
    // Paper Table II: 99.8% CI with 0.63% error -> ~60K runs; 95% CI
    // with 3% error -> ~1K runs.
    EXPECT_NEAR(static_cast<double>(
                    faults::requiredSamplesWorstCase(0.998, 0.0063)),
                60181.0, 160.0);
    EXPECT_NEAR(static_cast<double>(
                    faults::requiredSamplesWorstCase(0.95, 0.03)),
                1062.0, 10.0);
}

TEST(Sampling, Equation2ConvergesToEquation3)
{
    double t = 1.96, e = 0.03, p = 0.5;
    double inf = faults::requiredSamplesInfinite(e, t, p);
    EXPECT_NEAR(inf, t * t / (e * e) * 0.25, 1e-9);
    // Finite-population sizes increase towards the infinite limit.
    double n1 = faults::requiredSamplesFinite(1e4, e, t, p);
    double n2 = faults::requiredSamplesFinite(1e7, e, t, p);
    double n3 = faults::requiredSamplesFinite(1e10, e, t, p);
    EXPECT_LT(n1, n2);
    EXPECT_LT(n2, n3);
    EXPECT_LT(n3, inf);
    EXPECT_NEAR(n3, inf, 1.0);
}

TEST(Sampling, WorstCaseIsMaximalOverP)
{
    double t = 1.96, e = 0.03;
    double worst = static_cast<double>(
        faults::requiredSamplesWorstCase(0.95, e));
    for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        EXPECT_LE(faults::requiredSamplesInfinite(e, t, p),
                  worst + 1.0);
    }
}

TEST(OutcomeDist, WeightedTally)
{
    faults::OutcomeDist dist;
    dist.add(faults::Outcome::Masked, 3.0);
    dist.add(faults::Outcome::SDC, 1.0);
    dist.addWeight(faults::Outcome::Masked, 2.0);
    EXPECT_DOUBLE_EQ(dist.total(), 6.0);
    EXPECT_EQ(dist.runs(), 2u);
    EXPECT_NEAR(dist.fraction(faults::Outcome::Masked), 5.0 / 6.0, 1e-12);
    auto f = dist.fractions();
    EXPECT_NEAR(f[0] + f[1] + f[2], 1.0, 1e-12);

    faults::OutcomeDist other;
    other.add(faults::Outcome::Other, 4.0);
    dist.merge(other);
    EXPECT_DOUBLE_EQ(dist.total(), 10.0);
    EXPECT_EQ(dist.runs(), 3u);
}

TEST(Campaign, SiteListAndWeightedSiteList)
{
    MiniKernel k(kInjectSource);
    sim::LaunchConfig config = k.launchConfig();
    std::vector<faults::OutputRegion> outputs{
        {"out", k.outAddr(), 4, faults::ElemType::U32, 0.0}};
    faults::Injector injector(k.program(), config, k.memory(), outputs);

    std::vector<faults::FaultSite> sites{{0, 5, 0}, {0, 3, 0}};
    auto plain = faults::reference::runSiteList(injector, sites);
    EXPECT_EQ(plain.runs, 2u);
    EXPECT_DOUBLE_EQ(plain.dist.weightOf(faults::Outcome::Masked), 1.0);
    EXPECT_DOUBLE_EQ(plain.dist.weightOf(faults::Outcome::SDC), 1.0);

    std::vector<faults::WeightedSite> weighted{{{0, 5, 0}, 10.0},
                                               {{0, 3, 0}, 1.0}};
    auto w = faults::reference::runWeightedSiteList(injector, weighted);
    EXPECT_DOUBLE_EQ(w.dist.weightOf(faults::Outcome::Masked), 10.0);
    EXPECT_DOUBLE_EQ(w.dist.weightOf(faults::Outcome::SDC), 1.0);
}

} // namespace
} // namespace fsp
