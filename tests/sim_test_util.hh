/**
 * @file
 * Shared test helper: assemble and run small kernels with an output
 * buffer whose device address is passed as param [0], so tests can
 * observe architectural results through global memory.
 */

#ifndef FSP_TESTS_SIM_TEST_UTIL_HH
#define FSP_TESTS_SIM_TEST_UTIL_HH

#include <bit>
#include <cstdint>
#include <string>

#include "ptx/assembler.hh"
#include "sim/executor.hh"

namespace fsp::test {

/** A tiny kernel with an output buffer at param [0]. */
class MiniKernel
{
  public:
    /**
     * @param source kernel body; store results via
     *        "ld.param.u32 $rN, [0]" + st.global.
     * @param out_words 32-bit words in the output buffer.
     * @param threads 1-D thread count (single CTA).
     */
    explicit MiniKernel(const std::string &source,
                        std::size_t out_words = 8, unsigned threads = 1,
                        unsigned shared_bytes = 0)
        : program_(ptx::assemble("mini", source)), memory_(1u << 16)
    {
        out_addr_ = memory_.allocate(4 * out_words);
        launch_.grid = {1, 1, 1};
        launch_.block = {threads, 1, 1};
        launch_.sharedBytes = shared_bytes;
        launch_.params.addU32(static_cast<std::uint32_t>(out_addr_));
    }

    /** Add an extra u32 launch parameter; @return its byte offset. */
    std::size_t
    addParam(std::uint32_t value)
    {
        return launch_.params.addU32(value);
    }

    /** Add an extra f32 launch parameter; @return its byte offset. */
    std::size_t
    addParamF32(float value)
    {
        return launch_.params.addF32(value);
    }

    sim::GlobalMemory &memory() { return memory_; }
    const sim::Program &program() const { return program_; }
    std::uint64_t outAddr() const { return out_addr_; }

    /** A copy of the launch configuration (params include the out
     *  buffer address at offset [0]). */
    sim::LaunchConfig launchConfig() const { return launch_; }

    sim::RunResult
    run(const sim::TraceOptions *opts = nullptr,
        sim::FaultPlan *fault = nullptr)
    {
        sim::Executor executor(program_, launch_);
        return executor.run(memory_, opts, fault);
    }

    std::uint32_t
    outU32(std::size_t index) const
    {
        return memory_.peekU32(out_addr_ + 4 * index);
    }

    float
    outF32(std::size_t index) const
    {
        return memory_.peekF32(out_addr_ + 4 * index);
    }

  private:
    sim::Program program_;
    sim::GlobalMemory memory_;
    sim::LaunchConfig launch_;
    std::uint64_t out_addr_ = 0;
};

} // namespace fsp::test

#endif // FSP_TESTS_SIM_TEST_UTIL_HH
