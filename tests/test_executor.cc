/**
 * @file
 * Unit tests for the functional SIMT executor: ALU semantics per data
 * type, condition codes and guards, control flow, special registers,
 * barriers and shared memory, crash/hang detection, tracing, and the
 * single-bit fault hook.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "sim_test_util.hh"

namespace fsp {
namespace {

using test::MiniKernel;
using namespace sim;

TEST(Executor, StoresAndParams)
{
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        mov.u32 $r2, 0x0000002a
        st.global.u32 [$r1], $r2
        retp
    )");
    auto result = k.run();
    ASSERT_EQ(result.status, RunStatus::Completed);
    EXPECT_EQ(k.outU32(0), 42u);
    EXPECT_EQ(result.totalDynInstrs, 4u);
}

TEST(Executor, IntegerArithmetic)
{
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        mov.u32 $r2, 0x00000007
        mov.u32 $r3, 0x00000003
        add.u32 $r4, $r2, $r3
        st.global.u32 [$r1], $r4
        sub.u32 $r4, $r3, $r2
        st.global.u32 [$r1+4], $r4
        mul.lo.u32 $r4, $r2, $r3
        st.global.u32 [$r1+8], $r4
        div.u32 $r4, $r2, $r3
        st.global.u32 [$r1+12], $r4
        rem.u32 $r4, $r2, $r3
        st.global.u32 [$r1+16], $r4
        min.s32 $r4, $r2, -$r3
        st.global.u32 [$r1+20], $r4
        max.u32 $r4, $r2, $r3
        st.global.u32 [$r1+24], $r4
        neg.s32 $r4, $r2
        st.global.u32 [$r1+28], $r4
        retp
    )");
    ASSERT_EQ(k.run().status, RunStatus::Completed);
    EXPECT_EQ(k.outU32(0), 10u);
    EXPECT_EQ(k.outU32(1), 0xFFFFFFFCu); // 3 - 7 wraps
    EXPECT_EQ(k.outU32(2), 21u);
    EXPECT_EQ(k.outU32(3), 2u);
    EXPECT_EQ(k.outU32(4), 1u);
    EXPECT_EQ(static_cast<std::int32_t>(k.outU32(5)), -3);
    EXPECT_EQ(k.outU32(6), 7u);
    EXPECT_EQ(static_cast<std::int32_t>(k.outU32(7)), -7);
}

TEST(Executor, DivisionByZeroDoesNotCrash)
{
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        mov.u32 $r2, 0x00000009
        mov.u32 $r3, 0x00000000
        div.u32 $r4, $r2, $r3
        st.global.u32 [$r1], $r4
        rem.u32 $r4, $r2, $r3
        st.global.u32 [$r1+4], $r4
        retp
    )");
    ASSERT_EQ(k.run().status, RunStatus::Completed);
    EXPECT_EQ(k.outU32(0), 0xFFFFFFFFu); // GPU-style all-ones
    EXPECT_EQ(k.outU32(1), 9u);
}

TEST(Executor, BitwiseAndShifts)
{
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        mov.u32 $r2, 0x000000f0
        mov.u32 $r3, 0x000000ff
        and.b32 $r4, $r2, $r3
        st.global.u32 [$r1], $r4
        or.b32 $r4, $r2, 0x0000000f
        st.global.u32 [$r1+4], $r4
        xor.b32 $r4, $r2, $r3
        st.global.u32 [$r1+8], $r4
        not.b32 $r4, $r2
        st.global.u32 [$r1+12], $r4
        shl.u32 $r4, $r2, 0x00000004
        st.global.u32 [$r1+16], $r4
        shr.u32 $r4, $r2, 0x00000004
        st.global.u32 [$r1+20], $r4
        mov.u32 $r5, 0x80000000
        shr.s32 $r4, $r5, 0x0000001f
        st.global.u32 [$r1+24], $r4
        shr.u32 $r4, $r5, 0x00000040
        st.global.u32 [$r1+28], $r4
        retp
    )");
    ASSERT_EQ(k.run().status, RunStatus::Completed);
    EXPECT_EQ(k.outU32(0), 0xF0u);
    EXPECT_EQ(k.outU32(1), 0xFFu);
    EXPECT_EQ(k.outU32(2), 0x0Fu);
    EXPECT_EQ(k.outU32(3), 0xFFFFFF0Fu);
    EXPECT_EQ(k.outU32(4), 0xF00u);
    EXPECT_EQ(k.outU32(5), 0xFu);
    EXPECT_EQ(k.outU32(6), 0xFFFFFFFFu); // arithmetic shift of sign bit
    EXPECT_EQ(k.outU32(7), 0u);          // oversize logical shift
}

TEST(Executor, FloatArithmetic)
{
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        mov.f32 $r2, 3.0
        mov.f32 $r3, 0.5
        add.f32 $r4, $r2, $r3
        st.global.f32 [$r1], $r4
        mul.f32 $r4, $r2, $r3
        st.global.f32 [$r1+4], $r4
        mad.f32 $r4, $r2, $r3, $r3
        st.global.f32 [$r1+8], $r4
        div.f32 $r4, $r2, $r3
        st.global.f32 [$r1+12], $r4
        rcp.f32 $r4, $r3
        st.global.f32 [$r1+16], $r4
        sqrt.f32 $r4, 16.0
        st.global.f32 [$r1+20], $r4
        rsqrt.f32 $r4, 4.0
        st.global.f32 [$r1+24], $r4
        ex2.f32 $r4, 3.0
        st.global.f32 [$r1+28], $r4
        lg2.f32 $r4, 8.0
        st.global.f32 [$r1+32], $r4
        abs.f32 $r4, -2.5
        st.global.f32 [$r1+36], $r4
        retp
    )",
                 16);
    ASSERT_EQ(k.run().status, RunStatus::Completed);
    EXPECT_FLOAT_EQ(k.outF32(0), 3.5f);
    EXPECT_FLOAT_EQ(k.outF32(1), 1.5f);
    EXPECT_FLOAT_EQ(k.outF32(2), 2.0f);
    EXPECT_FLOAT_EQ(k.outF32(3), 6.0f);
    EXPECT_FLOAT_EQ(k.outF32(4), 2.0f);
    EXPECT_FLOAT_EQ(k.outF32(5), 4.0f);
    EXPECT_FLOAT_EQ(k.outF32(6), 0.5f);
    EXPECT_FLOAT_EQ(k.outF32(7), 8.0f);
    EXPECT_FLOAT_EQ(k.outF32(8), 3.0f);
    EXPECT_FLOAT_EQ(k.outF32(9), 2.5f);
}

TEST(Executor, Conversions)
{
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        mov.f32 $r2, -3.7
        cvt.s32.f32 $r3, $r2
        st.global.u32 [$r1], $r3
        mov.s32 $r4, -5
        cvt.f32.s32 $r5, $r4
        st.global.f32 [$r1+4], $r5
        mov.u32 $r6, 0x0001ffff
        cvt.u32.u16 $r7, $r6
        st.global.u32 [$r1+8], $r7
        mov.u32 $r8, 0x0000ffff
        cvt.s32.s16 $r9, $r8
        st.global.u32 [$r1+12], $r9
        cvt.f64.f32 $r10, $r2
        cvt.f32.f64 $r11, $r10
        st.global.f32 [$r1+16], $r11
        retp
    )");
    ASSERT_EQ(k.run().status, RunStatus::Completed);
    EXPECT_EQ(static_cast<std::int32_t>(k.outU32(0)), -3); // trunc to 0
    EXPECT_FLOAT_EQ(k.outF32(1), -5.0f);
    EXPECT_EQ(k.outU32(2), 0xFFFFu);
    EXPECT_EQ(static_cast<std::int32_t>(k.outU32(3)), -1); // sign-extend
    EXPECT_FLOAT_EQ(k.outF32(4), -3.7f);
}

TEST(Executor, MulWideAndMadWide)
{
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        mov.u32 $r2, 0x00030005
        mul.wide.u16 $r3, $r2.lo, $r2.hi
        st.global.u32 [$r1], $r3
        mad.wide.u16 $r4, $r2.lo, $r2.hi, $r3
        st.global.u32 [$r1+4], $r4
        retp
    )");
    ASSERT_EQ(k.run().status, RunStatus::Completed);
    EXPECT_EQ(k.outU32(0), 15u);
    EXPECT_EQ(k.outU32(1), 30u);
}

TEST(Executor, ConditionCodesAndGuards)
{
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        mov.u32 $r2, 0x00000005
        set.eq.u32.u32 $p0|$o127, $r2, 0x00000005
        @$p0.ne mov.u32 $r3, 0x00000001   // taken: equal -> result != 0
        @$p0.eq mov.u32 $r3, 0x00000002   // not taken
        st.global.u32 [$r1], $r3
        set.lt.s32.s32 $p1|$r4, $r2, 0x00000003
        st.global.u32 [$r1+4], $r4        // boolean result: 0
        @$p1.eq mov.u32 $r5, 0x00000007   // taken: not-less -> zero set
        st.global.u32 [$r1+8], $r5
        setp.gt.s32 $p2, $r2, 0x00000004
        @$p2.ne mov.u32 $r6, 0x00000009   // taken: 5 > 4
        st.global.u32 [$r1+12], $r6
        retp
    )");
    ASSERT_EQ(k.run().status, RunStatus::Completed);
    EXPECT_EQ(k.outU32(0), 1u);
    EXPECT_EQ(k.outU32(1), 0u);
    EXPECT_EQ(k.outU32(2), 7u);
    EXPECT_EQ(k.outU32(3), 9u);
}

TEST(Executor, SignFlagGuards)
{
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        sub.s32 $p0|$r2, 3, 5            // result -2: sign set
        @$p0.lt mov.u32 $r3, 0x00000011  // taken
        @$p0.ge mov.u32 $r3, 0x00000022  // not taken
        st.global.u32 [$r1], $r3
        sub.s32 $p1|$r4, 5, 3            // result +2
        @$p1.gt mov.u32 $r5, 0x00000033  // taken
        @$p1.le mov.u32 $r5, 0x00000044  // not taken
        st.global.u32 [$r1+4], $r5
        retp
    )");
    ASSERT_EQ(k.run().status, RunStatus::Completed);
    EXPECT_EQ(k.outU32(0), 0x11u);
    EXPECT_EQ(k.outU32(1), 0x33u);
}

TEST(Executor, LoopsAndBranches)
{
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        mov.u32 $r2, 0x00000000      // sum
        mov.u32 $r3, 0x00000000      // i
        loop:
        add.u32 $r2, $r2, $r3
        add.u32 $r3, $r3, 0x00000001
        set.lt.u32.u32 $p0|$o127, $r3, 0x0000000a
        @$p0.ne bra loop
        st.global.u32 [$r1], $r2
        retp
    )");
    ASSERT_EQ(k.run().status, RunStatus::Completed);
    EXPECT_EQ(k.outU32(0), 45u);
}

TEST(Executor, SelpSelectsByPredicate)
{
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        set.lt.u32.u32 $p0|$o127, 0x00000001, 0x00000002
        selp.u32 $r2, 0x000000aa, 0x000000bb, $p0
        st.global.u32 [$r1], $r2
        set.lt.u32.u32 $p1|$o127, 0x00000002, 0x00000001
        selp.u32 $r3, 0x000000aa, 0x000000bb, $p1
        st.global.u32 [$r1+4], $r3
        retp
    )");
    ASSERT_EQ(k.run().status, RunStatus::Completed);
    EXPECT_EQ(k.outU32(0), 0xAAu);
    EXPECT_EQ(k.outU32(1), 0xBBu);
}

TEST(Executor, SpecialRegistersAndThreads)
{
    // 4 threads each write tid.x * 10 + ntid.x.
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        cvt.u32.u16 $r2, %tid.x
        cvt.u32.u16 $r3, %ntid.x
        mul.lo.u32 $r4, $r2, 0x0000000a
        add.u32 $r4, $r4, $r3
        shl.u32 $r5, $r2, 0x00000002
        add.u32 $r5, $r1, $r5
        st.global.u32 [$r5], $r4
        retp
    )",
                 8, 4);
    ASSERT_EQ(k.run().status, RunStatus::Completed);
    for (unsigned t = 0; t < 4; ++t)
        EXPECT_EQ(k.outU32(t), t * 10 + 4);
}

TEST(Executor, SharedMemoryAndBarrier)
{
    // Each thread writes tid to shared, barrier, reads neighbour's slot
    // (reversal) -- only correct with a working barrier.
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        cvt.u32.u16 $r2, %tid.x
        shl.u32 $r3, $r2, 0x00000002
        st.shared.u32 [$r3], $r2
        bar.sync 0
        mov.u32 $r4, 0x0000000c      // (nthreads-1)*4 = 12
        sub.u32 $r4, $r4, $r3
        ld.shared.u32 $r5, [$r4]     // reversed slot
        add.u32 $r6, $r1, $r3
        st.global.u32 [$r6], $r5
        retp
    )",
                 8, 4, 64);
    ASSERT_EQ(k.run().status, RunStatus::Completed);
    for (unsigned t = 0; t < 4; ++t)
        EXPECT_EQ(k.outU32(t), 3 - t);
}

TEST(Executor, ZeroRegisterReadsZeroAndDropsWrites)
{
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        mov.u32 $r124, 0x00000063
        add.u32 $r2, $r124, 0x00000001
        st.global.u32 [$r1], $r2
        retp
    )");
    ASSERT_EQ(k.run().status, RunStatus::Completed);
    EXPECT_EQ(k.outU32(0), 1u);
}

TEST(Executor, WildLoadCrashes)
{
    MiniKernel k(R"(
        mov.u32 $r2, 0x00ffff00
        ld.global.u32 $r3, [$r2]
        retp
    )");
    auto result = k.run();
    EXPECT_EQ(result.status, RunStatus::Crashed);
    EXPECT_NE(result.diagnostic.find("fault"), std::string::npos);
}

TEST(Executor, NullPageCrashes)
{
    MiniKernel k(R"(
        mov.u32 $r2, 0x00000000
        st.global.u32 [$r2], $r2
        retp
    )");
    EXPECT_EQ(k.run().status, RunStatus::Crashed);
}

TEST(Executor, MisalignedAccessCrashes)
{
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        add.u32 $r2, $r1, 0x00000002
        ld.global.u32 $r3, [$r2]
        retp
    )");
    EXPECT_EQ(k.run().status, RunStatus::Crashed);
}

TEST(Executor, SharedOutOfBoundsCrashes)
{
    MiniKernel k(R"(
        mov.u32 $r2, 0x00000100
        ld.shared.u32 $r3, [$r2]
        retp
    )",
                 8, 1, 64);
    EXPECT_EQ(k.run().status, RunStatus::Crashed);
}

TEST(Executor, InfiniteLoopHangs)
{
    MiniKernel k(R"(
        spin: bra spin
    )");
    // Budget is enforced through LaunchConfig; MiniKernel uses the
    // default, so rebuild an executor with a small budget directly.
    sim::LaunchConfig config;
    config.grid = {1, 1, 1};
    config.block = {1, 1, 1};
    config.maxDynInstrPerThread = 1000;
    sim::Executor executor(k.program(), config);
    sim::GlobalMemory memory(1u << 12);
    auto result = executor.run(memory);
    EXPECT_EQ(result.status, RunStatus::Hung);
    EXPECT_NE(result.diagnostic.find("budget"), std::string::npos);
}

TEST(Executor, GuardFailedInstructionCountsButWritesNothing)
{
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        mov.u32 $r2, 0x00000005
        set.eq.u32.u32 $p0|$o127, $r2, 0x00000006
        @$p0.ne mov.u32 $r3, 0x00000001   // guard fails (not equal)
        st.global.u32 [$r1], $r3
        retp
    )");
    sim::TraceOptions opts;
    opts.traceThreads.insert(0);
    auto result = k.run(&opts);
    ASSERT_EQ(result.status, RunStatus::Completed);
    EXPECT_EQ(k.outU32(0), 0u);
    const auto &trace = result.trace.dynTraces.at(0);
    ASSERT_EQ(trace.size(), 6u); // guard-failed instruction still counted
    EXPECT_EQ(trace[3].destBits, 0u); // ...but contributes no fault bits
    EXPECT_EQ(trace[1].destBits, 32u);
    EXPECT_EQ(trace[2].destBits, 4u); // predicate CC register
}

TEST(Executor, PerThreadProfiles)
{
    // Thread 0 exits early; thread 1 runs the long path.
    MiniKernel k(R"(
        cvt.u32.u16 $r2, %tid.x
        set.eq.u32.u32 $p0|$o127, $r2, 0x00000000
        @$p0.ne retp
        mov.u32 $r3, 0x00000001
        mov.u32 $r4, 0x00000002
        mov.u32 $r5, 0x00000003
        retp
    )",
                 8, 2);
    sim::TraceOptions opts;
    opts.perThreadProfiles = true;
    auto result = k.run(&opts);
    ASSERT_EQ(result.status, RunStatus::Completed);
    ASSERT_EQ(result.trace.profiles.size(), 2u);
    EXPECT_EQ(result.trace.profiles[0].iCnt, 3u);
    EXPECT_EQ(result.trace.profiles[1].iCnt, 7u);
    // Thread 0: cvt(32) + set(4); thread 1 adds three movs.
    EXPECT_EQ(result.trace.profiles[0].faultBits, 36u);
    EXPECT_EQ(result.trace.profiles[1].faultBits, 36u + 96u);
    EXPECT_EQ(result.totalDynInstrs, 10u);
}

TEST(Executor, FaultFlipChangesRegisterValue)
{
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        mov.u32 $r2, 0x00000000
        st.global.u32 [$r1], $r2
        retp
    )");
    sim::FaultPlan plan;
    plan.thread = 0;
    plan.dynIndex = 1; // the mov
    plan.mask = std::uint64_t{1} << 5;
    auto result = k.run(nullptr, &plan);
    ASSERT_EQ(result.status, RunStatus::Completed);
    EXPECT_TRUE(plan.applied);
    EXPECT_EQ(k.outU32(0), 32u);
}

TEST(Executor, FaultOnGuardFailedInstructionNotApplied)
{
    MiniKernel k(R"(
        set.eq.u32.u32 $p0|$o127, 0x00000001, 0x00000002
        @$p0.ne mov.u32 $r3, 0x00000001
        retp
    )");
    sim::FaultPlan plan;
    plan.thread = 0;
    plan.dynIndex = 1;
    plan.mask = 1;
    auto result = k.run(nullptr, &plan);
    ASSERT_EQ(result.status, RunStatus::Completed);
    EXPECT_FALSE(plan.applied);
}

TEST(Executor, FaultOnPredicateZeroFlagFlipsBranch)
{
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        set.eq.u32.u32 $p0|$o127, 0x00000001, 0x00000001
        @$p0.ne mov.u32 $r3, 0x00000063
        st.global.u32 [$r1], $r3
        retp
    )");
    // Golden: equal -> guard passes -> out = 99.
    ASSERT_EQ(k.run().status, RunStatus::Completed);
    EXPECT_EQ(k.outU32(0), 99u);

    // Flip the zero flag of the set's CC destination.
    MiniKernel k2(R"(
        ld.param.u32 $r1, [0]
        set.eq.u32.u32 $p0|$o127, 0x00000001, 0x00000001
        @$p0.ne mov.u32 $r3, 0x00000063
        st.global.u32 [$r1], $r3
        retp
    )");
    sim::FaultPlan plan;
    plan.thread = 0;
    plan.dynIndex = 1;
    plan.mask = 1; // zero flag
    auto result = k2.run(nullptr, &plan);
    ASSERT_EQ(result.status, RunStatus::Completed);
    EXPECT_TRUE(plan.applied);
    EXPECT_EQ(k2.outU32(0), 0u); // guard now fails; mov suppressed
}

TEST(Executor, FaultBitBeyondWidthNotApplied)
{
    MiniKernel k(R"(
        mov.u32 $r2, 0x00000001
        retp
    )");
    sim::FaultPlan plan;
    plan.thread = 0;
    plan.dynIndex = 0;
    plan.mask = std::uint64_t{1} << 40; // beyond a 32-bit destination
    auto result = k.run(nullptr, &plan);
    ASSERT_EQ(result.status, RunStatus::Completed);
    EXPECT_FALSE(plan.applied);
}

TEST(Executor, FaultInAddressRegisterCanCrash)
{
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        ld.global.u32 $r2, [$r1]
        st.global.u32 [$r1], $r2
        retp
    )");
    sim::FaultPlan plan;
    plan.thread = 0;
    plan.dynIndex = 0; // the param load producing the address
    plan.mask = std::uint64_t{1} << 23; // high bit -> wild address
    auto result = k.run(nullptr, &plan);
    EXPECT_TRUE(plan.applied);
    EXPECT_EQ(result.status, RunStatus::Crashed);
}

/**
 * Property: a double flip at the same site restores the golden output.
 * (The executor applies a plan at most once per run, so this is
 * exercised by flipping the same bit in two consecutive instructions
 * that cancel.)
 */
class FaultBitSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FaultBitSweep, XorFlipMatchesInjectedBit)
{
    unsigned bit = GetParam();
    MiniKernel k(R"(
        ld.param.u32 $r1, [0]
        mov.u32 $r2, 0x00000000
        st.global.u32 [$r1], $r2
        retp
    )");
    sim::FaultPlan plan;
    plan.thread = 0;
    plan.dynIndex = 1;
    plan.mask = std::uint64_t{1} << bit;
    ASSERT_EQ(k.run(nullptr, &plan).status, RunStatus::Completed);
    ASSERT_TRUE(plan.applied);
    EXPECT_EQ(k.outU32(0), 1u << bit);
}

INSTANTIATE_TEST_SUITE_P(AllBits, FaultBitSweep,
                         ::testing::Range(0u, 32u));

} // namespace
} // namespace fsp
