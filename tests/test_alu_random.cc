/**
 * @file
 * Randomised differential tests of the executor's ALU: for every
 * binary opcode and data type, random operand pairs flow through an
 * assembled kernel (exercising operand decode, evaluation, truncation
 * and writeback) and the architectural result is compared against
 * directly-written host semantics.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "sim_test_util.hh"
#include "util/prng.hh"

namespace fsp {
namespace {

using test::MiniKernel;

/**
 * Run "OP.TYPE $r4, $r2, $r3" with raw 32-bit operands delivered via
 * params and return the raw 32-bit result.
 */
std::uint32_t
evalBinary(const std::string &mnemonic, std::uint32_t a, std::uint32_t b)
{
    std::string load_type =
        mnemonic.size() > 4 &&
                mnemonic.compare(mnemonic.size() - 3, 3, "f32") == 0
            ? "f32"
            : "u32";
    std::string source = "ld.param.u32 $r1, [0]\n";
    source += "ld.param." + load_type + " $r2, [4]\n";
    source += "ld.param." + load_type + " $r3, [8]\n";
    source += mnemonic + " $r4, $r2, $r3\n";
    source += "st.global.u32 [$r1], $r4\nretp\n";

    MiniKernel kernel(source);
    kernel.addParam(a);
    kernel.addParam(b);
    EXPECT_EQ(kernel.run().status, sim::RunStatus::Completed) << source;
    return kernel.outU32(0);
}

struct BinaryCase
{
    const char *mnemonic;
    std::uint32_t (*reference)(std::uint32_t, std::uint32_t);
};

std::uint32_t
f32ref(float (*op)(float, float), std::uint32_t a, std::uint32_t b)
{
    float r = op(std::bit_cast<float>(a), std::bit_cast<float>(b));
    return std::bit_cast<std::uint32_t>(r);
}

const BinaryCase kCases[] = {
    {"add.u32", [](std::uint32_t a, std::uint32_t b) { return a + b; }},
    {"sub.u32", [](std::uint32_t a, std::uint32_t b) { return a - b; }},
    {"mul.u32", [](std::uint32_t a, std::uint32_t b) { return a * b; }},
    {"div.u32",
     [](std::uint32_t a, std::uint32_t b) {
         return b == 0 ? 0xFFFFFFFFu : a / b;
     }},
    {"rem.u32",
     [](std::uint32_t a, std::uint32_t b) { return b == 0 ? a : a % b; }},
    {"min.u32",
     [](std::uint32_t a, std::uint32_t b) { return a < b ? a : b; }},
    {"max.u32",
     [](std::uint32_t a, std::uint32_t b) { return a > b ? a : b; }},
    {"and.b32", [](std::uint32_t a, std::uint32_t b) { return a & b; }},
    {"or.b32", [](std::uint32_t a, std::uint32_t b) { return a | b; }},
    {"xor.b32", [](std::uint32_t a, std::uint32_t b) { return a ^ b; }},
    {"shl.u32",
     [](std::uint32_t a, std::uint32_t b) {
         return b >= 32 ? 0u : a << b;
     }},
    {"shr.u32",
     [](std::uint32_t a, std::uint32_t b) {
         return b >= 32 ? 0u : a >> b;
     }},
    {"min.s32",
     [](std::uint32_t a, std::uint32_t b) {
         auto sa = static_cast<std::int32_t>(a);
         auto sb = static_cast<std::int32_t>(b);
         return static_cast<std::uint32_t>(sa < sb ? sa : sb);
     }},
    {"max.s32",
     [](std::uint32_t a, std::uint32_t b) {
         auto sa = static_cast<std::int32_t>(a);
         auto sb = static_cast<std::int32_t>(b);
         return static_cast<std::uint32_t>(sa > sb ? sa : sb);
     }},
    {"div.s32",
     [](std::uint32_t a, std::uint32_t b) {
         auto sa = static_cast<std::int32_t>(a);
         auto sb = static_cast<std::int32_t>(b);
         if (sb == 0)
             return 0xFFFFFFFFu;
         if (sb == -1)
             return static_cast<std::uint32_t>(
                 -static_cast<std::int64_t>(sa));
         return static_cast<std::uint32_t>(sa / sb);
     }},
    {"shr.s32",
     [](std::uint32_t a, std::uint32_t b) {
         auto sa = static_cast<std::int32_t>(a);
         if (b >= 32)
             return static_cast<std::uint32_t>(sa < 0 ? -1 : 0);
         return static_cast<std::uint32_t>(
             static_cast<std::int64_t>(sa) >> b);
     }},
    {"add.f32",
     [](std::uint32_t a, std::uint32_t b) {
         return f32ref([](float x, float y) { return x + y; }, a, b);
     }},
    {"sub.f32",
     [](std::uint32_t a, std::uint32_t b) {
         return f32ref([](float x, float y) { return x - y; }, a, b);
     }},
    {"mul.f32",
     [](std::uint32_t a, std::uint32_t b) {
         return f32ref([](float x, float y) { return x * y; }, a, b);
     }},
    {"div.f32",
     [](std::uint32_t a, std::uint32_t b) {
         return f32ref([](float x, float y) { return x / y; }, a, b);
     }},
    {"min.f32",
     [](std::uint32_t a, std::uint32_t b) {
         return f32ref([](float x, float y) { return std::fmin(x, y); },
                       a, b);
     }},
    {"max.f32",
     [](std::uint32_t a, std::uint32_t b) {
         return f32ref([](float x, float y) { return std::fmax(x, y); },
                       a, b);
     }},
};

class AluRandomSweep : public ::testing::TestWithParam<BinaryCase>
{
};

TEST_P(AluRandomSweep, MatchesHostSemantics)
{
    const BinaryCase &c = GetParam();
    bool is_float =
        std::string(c.mnemonic).find("f32") != std::string::npos;

    Prng prng(deriveSeed(99, c.mnemonic));
    for (int trial = 0; trial < 40; ++trial) {
        std::uint32_t a, b;
        if (is_float) {
            // Finite, well-scaled floats (NaN payload semantics are
            // checked separately).
            a = std::bit_cast<std::uint32_t>(
                static_cast<float>(prng.uniform(-1e6, 1e6)));
            b = std::bit_cast<std::uint32_t>(
                static_cast<float>(prng.uniform(-1e6, 1e6)));
        } else {
            a = static_cast<std::uint32_t>(prng());
            b = static_cast<std::uint32_t>(prng());
            // Shift amounts and divisors: exercise edge values often.
            if (trial % 4 == 0)
                b &= 0x3F;
            if (trial % 7 == 0)
                b = 0;
        }
        EXPECT_EQ(evalBinary(c.mnemonic, a, b), c.reference(a, b))
            << c.mnemonic << "(" << a << ", " << b << ") trial "
            << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(AllBinaryOps, AluRandomSweep,
                         ::testing::ValuesIn(kCases),
                         [](const auto &info) {
                             std::string name = info.param.mnemonic;
                             for (char &c : name) {
                                 if (c == '.')
                                     c = '_';
                             }
                             return name;
                         });

/** Unary opcodes, same scheme. */
struct UnaryCase
{
    const char *mnemonic;
    std::uint32_t (*reference)(std::uint32_t);
};

std::uint32_t
evalUnary(const std::string &mnemonic, std::uint32_t a)
{
    std::string load_type =
        mnemonic.find("f32") != std::string::npos ? "f32" : "u32";
    std::string source = "ld.param.u32 $r1, [0]\n";
    source += "ld.param." + load_type + " $r2, [4]\n";
    source += mnemonic + " $r3, $r2\n";
    source += "st.global.u32 [$r1], $r3\nretp\n";
    MiniKernel kernel(source);
    kernel.addParam(a);
    EXPECT_EQ(kernel.run().status, sim::RunStatus::Completed) << source;
    return kernel.outU32(0);
}

const UnaryCase kUnaryCases[] = {
    {"not.b32", [](std::uint32_t a) { return ~a; }},
    {"neg.s32",
     [](std::uint32_t a) { return static_cast<std::uint32_t>(0) - a; }},
    {"abs.s32",
     [](std::uint32_t a) {
         auto sa = static_cast<std::int32_t>(a);
         return static_cast<std::uint32_t>(
             sa < 0 ? -static_cast<std::int64_t>(sa) : sa);
     }},
    {"neg.f32",
     [](std::uint32_t a) {
         return std::bit_cast<std::uint32_t>(-std::bit_cast<float>(a));
     }},
    {"abs.f32",
     [](std::uint32_t a) {
         return std::bit_cast<std::uint32_t>(
             std::fabs(std::bit_cast<float>(a)));
     }},
    {"sqrt.f32",
     [](std::uint32_t a) {
         return std::bit_cast<std::uint32_t>(
             std::sqrt(std::bit_cast<float>(a)));
     }},
    {"rcp.f32",
     [](std::uint32_t a) {
         return std::bit_cast<std::uint32_t>(1.0f /
                                             std::bit_cast<float>(a));
     }},
};

class AluUnarySweep : public ::testing::TestWithParam<UnaryCase>
{
};

TEST_P(AluUnarySweep, MatchesHostSemantics)
{
    const UnaryCase &c = GetParam();
    bool is_float =
        std::string(c.mnemonic).find("f32") != std::string::npos;

    Prng prng(deriveSeed(123, c.mnemonic));
    for (int trial = 0; trial < 40; ++trial) {
        std::uint32_t a;
        if (is_float) {
            a = std::bit_cast<std::uint32_t>(
                static_cast<float>(prng.uniform(0.001, 1e6)));
        } else {
            a = static_cast<std::uint32_t>(prng());
        }
        EXPECT_EQ(evalUnary(c.mnemonic, a), c.reference(a))
            << c.mnemonic << "(" << a << ") trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(AllUnaryOps, AluUnarySweep,
                         ::testing::ValuesIn(kUnaryCases),
                         [](const auto &info) {
                             std::string name = info.param.mnemonic;
                             for (char &c : name) {
                                 if (c == '.')
                                     c = '_';
                             }
                             return name;
                         });

} // namespace
} // namespace fsp
