/**
 * @file
 * Tests for the remaining support pieces: the CSV writer, program
 * validation/listing, the convergence-driven loop-budget procedure,
 * and multi-pilot thread grouping.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "analysis/breakdown.hh"
#include "analysis/convergence.hh"
#include "apps/app.hh"
#include "faults/fault_space.hh"
#include "pruning/grouping.hh"
#include "pruning/pipeline.hh"
#include "sim_test_util.hh"
#include "util/csv.hh"

namespace fsp {
namespace {

TEST(Csv, QuotesAndRendersRows)
{
    CsvWriter csv({"a", "b"});
    csv.addRow({"plain", "with,comma"});
    csv.addRow({"with\"quote", "with\nnewline"});
    std::string out = csv.str();
    EXPECT_NE(out.find("a,b\r\n"), std::string::npos);
    EXPECT_NE(out.find("plain,\"with,comma\"\r\n"), std::string::npos);
    EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
    EXPECT_EQ(csv.rowCount(), 2u);
}

TEST(Csv, WritesFile)
{
    std::string path = ::testing::TempDir() + "/fsp_csv_test.csv";
    CsvWriter csv({"x"});
    csv.addRow({"1"});
    ASSERT_TRUE(csv.writeFile(path));
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "x\r");
    std::remove(path.c_str());
}

TEST(Csv, RejectsInvalidPath)
{
    CsvWriter csv({"x"});
    EXPECT_FALSE(csv.writeFile("/nonexistent-dir-xyz/file.csv"));
}

TEST(Convergence, StabilisesOnLoopKernel)
{
    analysis::KernelAnalysis ka(*apps::findKernel("K-Means/K1"),
                                apps::Scale::Small);
    pruning::PruningConfig config;
    config.seed = 1;
    auto result =
        analysis::convergeLoopIterations(ka, config, 0.02, 2, 10);

    ASSERT_FALSE(result.history.empty());
    EXPECT_TRUE(result.converged);
    EXPECT_GE(result.chosenIterations, 2u);
    EXPECT_LE(result.chosenIterations, 10u);
    // History iterations are 1..chosen.
    EXPECT_EQ(result.history.size(), result.chosenIterations);
    for (std::size_t i = 0; i < result.history.size(); ++i)
        EXPECT_EQ(result.history[i].iterations, i + 1);
    // The last `window` deltas are all within tolerance.
    EXPECT_LE(result.history.back().delta, 0.02);
    EXPECT_GT(result.finalEstimate().runs(), 0u);
}

TEST(Convergence, LoopFreeKernelConvergesImmediately)
{
    analysis::KernelAnalysis ka(*apps::findKernel("NN/K1"),
                                apps::Scale::Small);
    pruning::PruningConfig config;
    config.seed = 1;
    auto result =
        analysis::convergeLoopIterations(ka, config, 0.01, 2, 8);
    // With no loops the estimate never moves: converges at step 3
    // (two consecutive zero-deltas after the first estimate).
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.chosenIterations, 3u);
    for (std::size_t i = 1; i < result.history.size(); ++i)
        EXPECT_EQ(result.history[i].delta, 0.0);
}

TEST(MultiPilot, GroupingSelectsDistinctRepresentatives)
{
    test::MiniKernel k(R"(
        cvt.u32.u16 $r2, %tid.x
        mov.u32 $r3, 0x00000001
        mov.u32 $r4, 0x00000002
        retp
    )",
                       8, 16);
    sim::Executor executor(k.program(), k.launchConfig());
    faults::FaultSpace space(executor, k.memory());

    Prng prng(3);
    auto pruning = pruning::pruneThreads(space, 16, prng, 4);
    ASSERT_EQ(pruning.ctaGroups.size(), 1u);
    ASSERT_EQ(pruning.ctaGroups[0].threadGroups.size(), 1u);
    const auto &tg = pruning.ctaGroups[0].threadGroups[0];
    ASSERT_EQ(tg.representatives.size(), 4u);
    std::set<std::uint64_t> distinct(tg.representatives.begin(),
                                     tg.representatives.end());
    EXPECT_EQ(distinct.size(), 4u);
    EXPECT_EQ(tg.representative, tg.representatives.front());
    EXPECT_EQ(pruning.representativeCount(), 4u);
}

TEST(MultiPilot, PipelineConservesWeightAcrossPilots)
{
    analysis::KernelAnalysis ka(*apps::findKernel("MVT/K1"),
                                apps::Scale::Small);
    pruning::PruningConfig config;
    config.seed = 5;
    config.thread.repsPerGroup = 3;
    auto pruned = ka.prune(config);

    EXPECT_EQ(pruned.plans.size(), 3u);
    // All pilots belong to the same group and are never folded.
    for (const auto &plan : pruned.plans)
        EXPECT_EQ(plan.groupId, pruned.plans.front().groupId);
    EXPECT_FALSE(pruned.instrStats.applicable);

    EXPECT_NEAR(pruned.totalRepresentedWeight() /
                    static_cast<double>(pruned.counts.exhaustive),
                1.0, 0.02);
}

TEST(MultiPilot, MorePilotsMeanMoreSites)
{
    analysis::KernelAnalysis ka(*apps::findKernel("GEMM/K1"),
                                apps::Scale::Small);
    pruning::PruningConfig one;
    one.seed = 5;
    pruning::PruningConfig two = one;
    two.thread.repsPerGroup = 2;
    auto p1 = ka.prune(one);
    auto p2 = ka.prune(two);
    EXPECT_GT(p2.sites.size(), p1.sites.size());
    EXPECT_NEAR(static_cast<double>(p2.sites.size()),
                2.0 * static_cast<double>(p1.sites.size()),
                0.2 * static_cast<double>(p2.sites.size()));
}

TEST(Breakdown, ClassifiesEveryDestOpcode)
{
    using sim::Opcode;
    // Every destination-writing opcode maps to a class without panic.
    for (unsigned i = 0; i < sim::kNumOpcodes; ++i) {
        auto op = static_cast<Opcode>(i);
        if (!sim::opcodeWritesDest(op))
            continue;
        std::string name = analysis::instrClassName(
            analysis::classifyOpcode(op));
        EXPECT_FALSE(name.empty()) << sim::opcodeName(op);
    }
    EXPECT_EQ(analysis::classifyOpcode(Opcode::Ld),
              analysis::InstrClass::Memory);
    EXPECT_EQ(analysis::classifyOpcode(Opcode::Mad),
              analysis::InstrClass::Arithmetic);
    EXPECT_EQ(analysis::classifyOpcode(Opcode::Setp),
              analysis::InstrClass::Compare);
    EXPECT_EQ(analysis::classifyOpcode(Opcode::Rsqrt),
              analysis::InstrClass::Special);
}

TEST(Breakdown, BucketsCoverRepresentativeSites)
{
    analysis::KernelAnalysis ka(*apps::findKernel("Gaussian/K1"),
                                apps::Scale::Small);
    auto breakdown = analysis::outcomeByInstrClass(ka, 40, 9);
    ASSERT_FALSE(breakdown.classes.empty());
    for (const auto &[cls, entry] : breakdown.classes) {
        EXPECT_GT(entry.bucketSites, 0u)
            << analysis::instrClassName(cls);
        EXPECT_GT(entry.dist.runs(), 0u);
        EXPECT_LE(entry.dist.runs(), 40u);
        // Fractions form a distribution.
        auto f = entry.dist.fractions();
        EXPECT_NEAR(f[0] + f[1] + f[2], 1.0, 1e-9);
    }
}

TEST(PruningConfig, CopySemantics)
{
    // The config is a plain aggregate of per-stage sub-structs; copies
    // must be deep and fully independent of their source.
    pruning::PruningConfig source;
    source.thread.repsPerGroup = 3;
    source.loop.iterations = 5;
    source.bit.samples = 9;
    source.execution.workers = 7;
    source.execution.slicedProfiling = false;

    pruning::PruningConfig copy(source);
    EXPECT_EQ(copy.loop.iterations, 5u);
    EXPECT_EQ(copy.bit.samples, 9u);
    EXPECT_FALSE(copy.execution.slicedProfiling);
    copy.thread.repsPerGroup = 4;
    EXPECT_EQ(copy.thread.repsPerGroup, 4u);
    EXPECT_EQ(source.thread.repsPerGroup, 3u);

    pruning::PruningConfig assigned;
    assigned = source;
    assigned.execution.workers = 1;
    EXPECT_EQ(assigned.execution.workers, 1u);
    EXPECT_EQ(source.execution.workers, 7u);
}

TEST(Program, ListingAndValidation)
{
    test::MiniKernel k("start: nop\nbra start\n");
    std::string listing = k.program().listing();
    EXPECT_NE(listing.find("start:"), std::string::npos);
    EXPECT_EQ(k.program().labels().at("start"), 0u);
    EXPECT_EQ(k.program().maxGpReg(), 0u);
    EXPECT_FALSE(k.program().usesBarriers());

    test::MiniKernel with_bar("bar.sync 2\nretp\n");
    EXPECT_TRUE(with_bar.program().usesBarriers());
    EXPECT_EQ(with_bar.program().barrierCount(), 3u);
}

} // namespace
} // namespace fsp
