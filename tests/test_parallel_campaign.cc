/**
 * @file
 * Determinism suite for the parallel campaign engine: for every
 * registered kernel, the parallel drivers must reproduce the serial
 * drivers' CampaignResult *exactly* -- run counts and the weighted
 * double accumulation bit-for-bit -- at every worker count and chunk
 * size, including degenerate shapes (empty list, fewer sites than
 * workers).
 */

#include <gtest/gtest.h>

#include <vector>

#include "analysis/analyzer.hh"
#include "apps/app.hh"
#include "reference_campaign.hh"
#include "faults/campaign_engine.hh"

namespace fsp {
namespace {

/** Worker/chunk shapes exercised per kernel (odd chunk sizes). */
struct Shape
{
    unsigned workers;
    std::size_t chunk; ///< 0 = auto
};

const Shape kShapes[] = {{1, 1}, {2, 3}, {4, 5}, {7, 3}, {8, 0}};

void
expectSameDist(const faults::OutcomeDist &serial,
               const faults::OutcomeDist &parallel)
{
    EXPECT_EQ(serial.runs(), parallel.runs());
    for (faults::Outcome o :
         {faults::Outcome::Masked, faults::Outcome::SDC,
          faults::Outcome::Other}) {
        // Exact (bit-identical) equality, not a tolerance: the engine
        // folds outcomes in site order, so the doubles must match.
        EXPECT_EQ(serial.weightOf(o), parallel.weightOf(o))
            << "outcome " << faults::outcomeName(o);
    }
}

void
expectSameResult(const faults::CampaignResult &serial,
                 const faults::CampaignResult &parallel)
{
    EXPECT_EQ(serial.runs, parallel.runs);
    expectSameDist(serial.dist, parallel.dist);
}

/** Weights chosen to expose any reordering of the double sums. */
std::vector<faults::WeightedSite>
weightSites(const std::vector<faults::FaultSite> &sites)
{
    std::vector<faults::WeightedSite> weighted;
    weighted.reserve(sites.size());
    for (std::size_t i = 0; i < sites.size(); ++i)
        weighted.push_back(
            {sites[i], 0.1 + 0.3 * static_cast<double>(i % 7)});
    return weighted;
}

TEST(CampaignEngine, MatchesSerialOnEveryRegisteredKernel)
{
    for (const auto &spec : apps::allKernels()) {
        SCOPED_TRACE(spec.fullName());
        analysis::KernelAnalysis ka(spec, apps::Scale::Small);

        Prng prng(2026);
        auto sites = ka.space().sampleSites(24, prng);
        auto weighted = weightSites(sites);

        auto serial_plain = faults::reference::runSiteList(ka.injector(), sites);
        auto serial_weighted =
            faults::reference::runWeightedSiteList(ka.injector(), weighted);

        for (const Shape &shape : kShapes) {
            SCOPED_TRACE("workers=" + std::to_string(shape.workers) +
                         " chunk=" + std::to_string(shape.chunk));
            faults::CampaignOptions options;
            options.workers = shape.workers;
            options.chunkSize = shape.chunk;
            faults::CampaignEngine engine(ka.injector(), options);

            expectSameResult(serial_plain, engine.run(sites));
            expectSameResult(serial_weighted,
                             engine.run(weighted));
        }
    }
}

TEST(CampaignEngine, EmptySiteList)
{
    const apps::KernelSpec *spec = apps::findKernel("PathFinder/K1");
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);

    for (const Shape &shape : kShapes) {
        faults::CampaignOptions options;
        options.workers = shape.workers;
        options.chunkSize = shape.chunk;
        faults::CampaignEngine engine(ka.injector(), options);

        auto plain = engine.run(std::vector<faults::FaultSite>{});
        EXPECT_EQ(plain.runs, 0u);
        EXPECT_EQ(plain.dist.runs(), 0u);
        EXPECT_EQ(plain.dist.total(), 0.0);

        auto weighted =
            engine.run(std::vector<faults::WeightedSite>{});
        EXPECT_EQ(weighted.runs, 0u);
        EXPECT_EQ(weighted.dist.total(), 0.0);
        EXPECT_EQ(engine.runsPerformed(), 0u);
    }
}

TEST(CampaignEngine, SiteListSmallerThanWorkerCount)
{
    const apps::KernelSpec *spec = apps::findKernel("PathFinder/K1");
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);

    Prng prng(7);
    auto sites = ka.space().sampleSites(3, prng);
    auto weighted = weightSites(sites);
    auto serial_plain = faults::reference::runSiteList(ka.injector(), sites);
    auto serial_weighted =
        faults::reference::runWeightedSiteList(ka.injector(), weighted);

    for (unsigned workers : {4u, 7u, 8u}) {
        faults::CampaignOptions options;
        options.workers = workers;
        options.chunkSize = 1;
        faults::CampaignEngine engine(ka.injector(), options);
        expectSameResult(serial_plain, engine.run(sites));
        expectSameResult(serial_weighted,
                         engine.run(weighted));
    }
}

TEST(CampaignEngine, RandomCampaignMatchesSerial)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);

    Prng serial_prng(99);
    auto serial = faults::reference::runRandomCampaign(ka.injector(), ka.space(), 40,
                                            serial_prng);
    // The engine must consume the caller's PRNG exactly like the serial
    // driver, leaving the stream in the same position afterwards.
    std::uint64_t next_after_campaign = serial_prng();

    for (const Shape &shape : kShapes) {
        faults::CampaignOptions options;
        options.workers = shape.workers;
        options.chunkSize = shape.chunk;
        faults::CampaignEngine engine(ka.injector(), options);
        Prng parallel_prng(99);
        expectSameResult(serial, engine.run(
                                     ka.space(), 40, parallel_prng));
        EXPECT_EQ(next_after_campaign, parallel_prng());
    }
}

TEST(CampaignEngine, AnalyzerParallelPathsMatchSerial)
{
    const apps::KernelSpec *spec = apps::findKernel("MVT/K1");
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);

    pruning::PruningConfig config;
    auto pruned = ka.prune(config);
    auto serial_estimate = ka.runPrunedCampaign(pruned);
    auto serial_baseline = ka.runBaseline(60, 123);

    faults::CampaignOptions options;
    options.workers = 4;
    options.chunkSize = 3;
    expectSameDist(serial_estimate,
                   ka.runPrunedCampaign(pruned, options));
    expectSameResult(serial_baseline, ka.runBaseline(60, 123, options));
}

TEST(CampaignEngine, PipelineWorkersDoNotChangePruning)
{
    const apps::KernelSpec *spec = apps::findKernel("HotSpot/K1");
    ASSERT_NE(spec, nullptr);
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);

    pruning::PruningConfig serial_config;
    auto serial = ka.prune(serial_config);

    pruning::PruningConfig parallel_config;
    parallel_config.execution.workers = 4;
    auto parallel = ka.prune(parallel_config);

    ASSERT_EQ(serial.sites.size(), parallel.sites.size());
    for (std::size_t i = 0; i < serial.sites.size(); ++i) {
        EXPECT_TRUE(serial.sites[i].site == parallel.sites[i].site);
        EXPECT_EQ(serial.sites[i].weight, parallel.sites[i].weight);
    }
    EXPECT_EQ(serial.counts.afterLoop, parallel.counts.afterLoop);
    EXPECT_EQ(serial.counts.afterBit, parallel.counts.afterBit);
    EXPECT_EQ(serial.loopStats.prunedSites,
              parallel.loopStats.prunedSites);
    EXPECT_EQ(serial.loopStats.iterationsKept,
              parallel.loopStats.iterationsKept);
}

} // namespace
} // namespace fsp
