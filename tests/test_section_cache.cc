/**
 * @file
 * Incremental-campaign suite: trace sectioning invariants, the
 * content-addressed section cache's disk format, and the campaign
 * engine's reuse path.
 *
 * The contract under test is twofold.  Soundness: a warm re-campaign
 * must produce a profile (distribution, run counts, SDC anatomy)
 * bit-identical to a cold run of the same kernel at any worker or
 * shard count, and a cache primed under one fault model or seed must
 * never satisfy a lookup under another.  Effectiveness: the three
 * FSP_GEMM_VARIANT edit scenarios (see apps/gemm.cc) must land where
 * the hash design says they land -- a guarded-off insertion reuses
 * everything, a value-preserving strength reduction reuses every
 * section after the edited one, and a semantically-neutral reorder
 * conservatively reuses nothing.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "apps/app.hh"
#include "faults/campaign_engine.hh"
#include "faults/fault_model.hh"
#include "faults/section_cache.hh"
#include "faults/journal_merge.hh"
#include "faults/shard_plan.hh"
#include "ptx/assembler.hh"
#include "sim/executor.hh"
#include "sim/section.hh"
#include "util/logging.hh"

namespace fsp {
namespace {

using namespace faults;

/** Scoped FSP_GEMM_VARIANT setting (empty string clears it). */
class VariantGuard
{
  public:
    explicit VariantGuard(const std::string &variant)
    {
        if (variant.empty())
            unsetenv("FSP_GEMM_VARIANT");
        else
            setenv("FSP_GEMM_VARIANT", variant.c_str(), 1);
    }

    ~VariantGuard() { unsetenv("FSP_GEMM_VARIANT"); }
};

/** Fresh empty directory under the test temp root. */
std::string
freshDir(const std::string &name)
{
    std::filesystem::path dir =
        std::filesystem::path(testing::TempDir()) / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

/** Value-recorded thread-0 trace of a GEMM variant, pre-split. */
struct TracedThread
{
    std::vector<sim::DynRecord> trace;
    sim::SectionedTrace sectioned;
};

TracedThread
traceGemmThread0(const std::string &variant,
                 const sim::SectionSplitOptions &split = {})
{
    VariantGuard guard(variant);
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    sim::Executor executor(setup.program, setup.launch);
    sim::TraceOptions opts;
    opts.recordValues = true;
    opts.traceThreads.insert(0);
    sim::GlobalMemory scratch = setup.memory;
    sim::RunResult run = executor.run(scratch, &opts);
    EXPECT_EQ(run.status, sim::RunStatus::Completed);
    TracedThread traced;
    traced.trace = run.trace.dynTraces.at(0);
    traced.sectioned = sim::splitTrace(setup.program.instructions(),
                                       traced.trace, split);
    return traced;
}

/** Exact (bit-identical) distribution comparison. */
void
expectSameDist(const OutcomeDist &a, const OutcomeDist &b)
{
    EXPECT_EQ(a.runs(), b.runs());
    for (Outcome o : {Outcome::Masked, Outcome::SDC, Outcome::Other,
                      Outcome::Invalid})
        EXPECT_EQ(a.weightOf(o), b.weightOf(o)) << outcomeName(o);
}

/** Exact SDC-anatomy comparison: patterns, magnitudes, ranking. */
void
expectSameAnatomy(const SdcAnatomyProfile &a, const SdcAnatomyProfile &b)
{
    EXPECT_EQ(a.sdcRuns(), b.sdcRuns());
    for (std::size_t p = 0; p < kNumSdcPatterns; ++p) {
        auto pattern = static_cast<SdcPattern>(p);
        EXPECT_EQ(a.patternWeight(pattern), b.patternWeight(pattern));
        EXPECT_EQ(a.patternRuns(pattern), b.patternRuns(pattern));
    }
    EXPECT_EQ(a.magnitude(), b.magnitude());
    ASSERT_EQ(a.byStatic().size(), b.byStatic().size());
    auto ita = a.byStatic().begin();
    for (const auto &[index, counts] : b.byStatic()) {
        EXPECT_EQ(ita->first, index);
        EXPECT_EQ(ita->second.masked, counts.masked) << index;
        EXPECT_EQ(ita->second.sdc, counts.sdc) << index;
        EXPECT_EQ(ita->second.other, counts.other) << index;
        EXPECT_EQ(ita->second.runs, counts.runs) << index;
        ++ita;
    }
}

/** One pruned GEMM campaign through the analysis facade. */
struct GemmRun
{
    CampaignResult result;
    CampaignStats stats;
};

struct GemmRunConfig
{
    std::string variant;
    std::string cacheDir;
    unsigned workers = 2;
    std::uint64_t seed = 1;
    std::string faultModel; ///< parse spec; empty = default
};

GemmRun
runGemm(const GemmRunConfig &config)
{
    VariantGuard guard(config.variant);
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    analysis::AnalysisConfig facade;
    facade.sectionCacheDir = config.cacheDir;
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small, facade,
                                config.seed + 41);

    pruning::PruningConfig pruning;
    pruning.seed = config.seed;
    pruning::PruningResult pruned = ka.prune(pruning);

    CampaignOptions options;
    options.workers = config.workers;
    options.journalKey.seed = config.seed;
    if (!config.faultModel.empty()) {
        std::string error;
        options.faultModel = parseFaultModel(config.faultModel, &error);
        EXPECT_TRUE(options.faultModel) << error;
    }
    GemmRun run;
    run.result = ka.runPrunedCampaignDetailed(pruned, options);
    run.stats = ka.campaignEngine(options).lastStats();
    return run;
}

// ---------------------------------------------------------------------
// Trace sectioning.

TEST(SplitTrace, CoversEveryRecordContiguously)
{
    fsp::setVerboseLogging(false);
    TracedThread traced = traceGemmThread0("");
    const sim::SectionedTrace &st = traced.sectioned;

    ASSERT_GT(st.sections.size(), 1u);
    ASSERT_EQ(st.sectionOf.size(), traced.trace.size());
    ASSERT_EQ(st.writeOffsetOf.size(), traced.trace.size());

    std::uint32_t next = 0;
    for (std::size_t s = 0; s < st.sections.size(); ++s) {
        const sim::TraceSection &section = st.sections[s];
        EXPECT_EQ(section.firstRecord, next);
        EXPECT_GT(section.recordCount, 0u);
        next += section.recordCount;
        for (std::uint32_t r = section.firstRecord; r < next; ++r)
            EXPECT_EQ(st.sectionOf[r], s);
    }
    EXPECT_EQ(next, traced.trace.size());

    // Write offsets restart at zero in every section and increment
    // only on executed destination writes.
    for (const sim::TraceSection &section : st.sections) {
        std::uint32_t expected = 0;
        for (std::uint32_t r = section.firstRecord;
             r < section.firstRecord + section.recordCount; ++r) {
            const sim::DynRecord &record = traced.trace[r];
            if (record.executed() && record.destBits != 0)
                EXPECT_EQ(st.writeOffsetOf[r], expected++);
        }
    }
}

TEST(SplitTrace, StrideAndExtraBoundariesCut)
{
    sim::SectionSplitOptions coarse;
    coarse.maxExecutedRecords = 1000000; // no stride cut at GEMM size
    TracedThread one = traceGemmThread0("", coarse);
    EXPECT_EQ(one.sectioned.sections.size(), 1u);

    sim::SectionSplitOptions fine = coarse;
    fine.extraBoundaries = {5, 5, 9}; // duplicates are benign
    TracedThread cut = traceGemmThread0("", fine);
    EXPECT_EQ(cut.sectioned.sections.size(), 3u);

    sim::SectionSplitOptions stride;
    stride.maxExecutedRecords = 8;
    TracedThread strided = traceGemmThread0("", stride);
    EXPECT_GT(strided.sectioned.sections.size(),
              traceGemmThread0("").sectioned.sections.size());

    // The tail hash telescopes: every section's tail differs from its
    // own content (it folds the sentinel and the rest of the trace),
    // and equal-content loop sections still have distinct tails.
    const auto &sections = strided.sectioned.sections;
    for (std::size_t i = 0; i + 1 < sections.size(); ++i)
        EXPECT_NE(sections[i].tailContentHash,
                  sections[i + 1].tailContentHash);
}

TEST(SplitTrace, GuardedOffInsertionChangesNoHash)
{
    TracedThread base = traceGemmThread0("");
    TracedThread dead = traceGemmThread0("dead-prologue");

    // Two extra guard-failed issues appear in the record stream...
    EXPECT_EQ(dead.trace.size(), base.trace.size() + 2);
    // ...but no section boundary, content, state, or tail hash moves.
    ASSERT_EQ(dead.sectioned.sections.size(),
              base.sectioned.sections.size());
    for (std::size_t i = 0; i < base.sectioned.sections.size(); ++i) {
        SCOPED_TRACE(i);
        const sim::TraceSection &a = base.sectioned.sections[i];
        const sim::TraceSection &b = dead.sectioned.sections[i];
        EXPECT_EQ(a.contentHash, b.contentHash);
        EXPECT_EQ(a.prefixStateHash, b.prefixStateHash);
        EXPECT_EQ(a.tailContentHash, b.tailContentHash);
    }
}

TEST(SplitTrace, StrengthReductionOnlyPerturbsItsOwnSection)
{
    TracedThread base = traceGemmThread0("");
    TracedThread edited = traceGemmThread0("strength-reduce");

    ASSERT_EQ(edited.sectioned.sections.size(),
              base.sectioned.sections.size());
    ASSERT_GT(base.sectioned.sections.size(), 1u);

    // The edit is in the prologue (section 0): its content -- and
    // therefore its tail -- must change.
    EXPECT_NE(base.sectioned.sections[0].contentHash,
              edited.sectioned.sections[0].contentHash);
    EXPECT_NE(base.sectioned.sections[0].tailContentHash,
              edited.sectioned.sections[0].tailContentHash);

    // Every later section consumed the same values from the same
    // registers, so content, prefix state and tails all survive: this
    // is what keeps downstream sections warm.
    for (std::size_t i = 1; i < base.sectioned.sections.size(); ++i) {
        SCOPED_TRACE(i);
        const sim::TraceSection &a = base.sectioned.sections[i];
        const sim::TraceSection &b = edited.sectioned.sections[i];
        EXPECT_EQ(a.contentHash, b.contentHash);
        EXPECT_EQ(a.prefixStateHash, b.prefixStateHash);
        EXPECT_EQ(a.tailContentHash, b.tailContentHash);
    }
}

TEST(SplitTrace, ReorderPerturbsDownstreamPrefixState)
{
    TracedThread base = traceGemmThread0("");
    TracedThread reordered = traceGemmThread0("reorder-params");

    ASSERT_EQ(reordered.sectioned.sections.size(),
              base.sectioned.sections.size());
    EXPECT_NE(base.sectioned.sections[0].contentHash,
              reordered.sectioned.sections[0].contentHash);
    // The (dest, value) fold is order sensitive by design, so even a
    // semantically neutral swap invalidates downstream sections.
    for (std::size_t i = 1; i < base.sectioned.sections.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_NE(base.sectioned.sections[i].prefixStateHash,
                  reordered.sectioned.sections[i].prefixStateHash);
    }
}

TEST(SplitTrace, ContentHashSurvivesCodeMotion)
{
    // The same loop assembled at two different static offsets: branch
    // targets are hashed relative to the instruction, so the shifted
    // instructions hash identically.
    const char *loop = R"(
    mov.u32 $r1, 0x00000000;
back:
    add.u32 $r1, $r1, 0x00000001;
    set.lt.u32.u32 $p0|$o127, $r1, $r2;
    @$p0.ne bra back;
    retp;
)";
    sim::Program plain = ptx::assemble("k", loop);
    sim::Program shifted =
        ptx::assemble("k", std::string("    mov.u32 $r9, 0x00000000;\n") +
                               loop);
    ASSERT_EQ(shifted.instructions().size(),
              plain.instructions().size() + 1);
    for (std::size_t i = 0; i < plain.instructions().size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(sim::instructionContentHash(
                      plain.instructions()[i],
                      static_cast<std::uint32_t>(i)),
                  sim::instructionContentHash(
                      shifted.instructions()[i + 1],
                      static_cast<std::uint32_t>(i + 1)));
    }
}

// ---------------------------------------------------------------------
// Disk format.

TEST(SectionCacheDisk, RoundTripsThroughAFreshInstance)
{
    std::string dir = freshDir("fsp-seccache-roundtrip");

    SectionCacheRecord masked;
    masked.outcome = Outcome::Masked;
    masked.staticIndex = kStaticFollowsSite;

    SectionCacheRecord sdc;
    sdc.outcome = Outcome::SDC;
    sdc.staticIndex = 23;
    sdc.hasAnatomy = true;
    sdc.anatomy.pattern = SdcPattern::SingleElement;
    sdc.anatomy.magnitude[2] = 1;

    SectionCacheRecord invalid;
    invalid.outcome = Outcome::Invalid;

    {
        SectionCache cache(dir);
        cache.store(0x1111, 1, masked);
        cache.store(0x1111, 2, sdc);
        cache.store(0x2222, 3, invalid);
        cache.flush();
        EXPECT_GT(cache.stats().bytesWritten, 0u);
        // flush() is idempotent: nothing pending the second time.
        std::uint64_t written = cache.stats().bytesWritten;
        cache.flush();
        EXPECT_EQ(cache.stats().bytesWritten, written);
    }

    SectionCache reopened(dir);
    auto got_masked = reopened.lookup(0x1111, 1);
    auto got_sdc = reopened.lookup(0x1111, 2);
    auto got_invalid = reopened.lookup(0x2222, 3);
    ASSERT_TRUE(got_masked && got_sdc && got_invalid);
    EXPECT_EQ(*got_masked, masked);
    EXPECT_EQ(*got_sdc, sdc);
    EXPECT_EQ(*got_invalid, invalid);
    EXPECT_EQ(reopened.stats().hits, 3u);
    EXPECT_GT(reopened.stats().bytesRead, 0u);

    EXPECT_FALSE(reopened.lookup(0x1111, 99).has_value());
    EXPECT_FALSE(reopened.lookup(0x3333, 1).has_value());
    EXPECT_EQ(reopened.stats().misses, 2u);
    EXPECT_EQ(reopened.stats().corruptRecords, 0u);
}

TEST(SectionCacheDisk, CorruptRecordsAreSkippedNotFatal)
{
    std::string dir = freshDir("fsp-seccache-corrupt");

    SectionCacheRecord first;
    first.outcome = Outcome::Masked;
    SectionCacheRecord second;
    second.outcome = Outcome::Other;
    second.staticIndex = 7;
    {
        SectionCache cache(dir);
        cache.store(0xabcd, 10, first);
        cache.store(0xabcd, 20, second);
        cache.flush();
    }

    // Exactly one bucket file; flip a byte inside the first record.
    std::filesystem::path file;
    for (const auto &entry : std::filesystem::directory_iterator(dir))
        file = entry.path();
    ASSERT_FALSE(file.empty());
    {
        std::fstream io(file,
                        std::ios::in | std::ios::out | std::ios::binary);
        io.seekp(4);
        char byte = 0;
        io.seekg(4);
        io.get(byte);
        byte = static_cast<char>(byte ^ 0x5a);
        io.seekp(4);
        io.put(byte);
    }

    SectionCache reopened(dir);
    // One of the two records is gone (a miss), the other survives; the
    // damage is counted but never throws.
    int survivors = 0;
    survivors += reopened.lookup(0xabcd, 10).has_value() ? 1 : 0;
    survivors += reopened.lookup(0xabcd, 20).has_value() ? 1 : 0;
    EXPECT_EQ(survivors, 1);
    EXPECT_EQ(reopened.stats().corruptRecords, 1u);

    // A truncated trailing record (torn write) is equally benign.
    std::filesystem::resize_file(
        file, std::filesystem::file_size(file) - 13);
    SectionCache truncated(dir);
    truncated.lookup(0xabcd, 10);
    truncated.lookup(0xabcd, 20);
    EXPECT_GE(truncated.stats().corruptRecords, 1u);
}

TEST(SectionCacheDisk, EntryKeySeparatesModelAndSeed)
{
    std::uint64_t site = 0x1234567890abcdefULL;
    EXPECT_NE(sectionCacheKey(site, 1, 1), sectionCacheKey(site, 2, 1));
    EXPECT_NE(sectionCacheKey(site, 1, 1), sectionCacheKey(site, 1, 2));
    EXPECT_EQ(sectionCacheKey(site, 1, 1), sectionCacheKey(site, 1, 1));
}

// ---------------------------------------------------------------------
// Engine reuse path.

TEST(SectionCacheCampaign, WarmRunIsBitIdenticalAtEveryWorkerCount)
{
    fsp::setVerboseLogging(false);
    std::string dir = freshDir("fsp-seccache-warm");

    GemmRun cold = runGemm({.variant = "", .cacheDir = dir});
    EXPECT_EQ(cold.stats.cacheHits, 0u);
    EXPECT_GT(cold.stats.cacheMisses, 0u);
    EXPECT_GT(cold.stats.cacheBytesWritten, 0u);

    for (unsigned workers : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE(workers);
        GemmRun warm = runGemm(
            {.variant = "", .cacheDir = dir, .workers = workers});
        EXPECT_EQ(warm.stats.cacheMisses, 0u);
        EXPECT_EQ(warm.stats.cachedSites, warm.stats.sites);
        EXPECT_EQ(warm.stats.injectedSites, 0u);
        expectSameDist(warm.result.dist, cold.result.dist);
        EXPECT_EQ(warm.result.runs, cold.result.runs);
        expectSameAnatomy(warm.result.anatomy, cold.result.anatomy);
    }
}

TEST(SectionCacheCampaign, EditMatrixHitsWhereTheHashesSayItShould)
{
    fsp::setVerboseLogging(false);
    std::string dir = freshDir("fsp-seccache-edits");
    runGemm({.variant = "", .cacheDir = dir}); // prime with the base

    struct Scenario
    {
        const char *variant;
        double minHitRatio;
        double maxHitRatio;
    };
    // The guarded-off insertion reuses everything; the strength
    // reduction re-injects only the edited first section; the reorder
    // conservatively re-injects everything.
    const Scenario scenarios[] = {
        {"dead-prologue", 1.0, 1.0},
        {"strength-reduce", 0.5, 0.99},
        {"reorder-params", 0.0, 0.0},
    };

    for (const Scenario &scenario : scenarios) {
        SCOPED_TRACE(scenario.variant);

        // Cold oracle for the edited kernel, fresh cache directory.
        std::string cold_dir =
            freshDir(std::string("fsp-seccache-cold-") +
                     scenario.variant);
        GemmRun cold = runGemm(
            {.variant = scenario.variant, .cacheDir = cold_dir});

        // Warm run against the base-primed cache.
        GemmRun warm =
            runGemm({.variant = scenario.variant, .cacheDir = dir});
        double total = static_cast<double>(warm.stats.cacheHits +
                                           warm.stats.cacheMisses);
        ASSERT_GT(total, 0.0);
        double ratio = static_cast<double>(warm.stats.cacheHits) / total;
        EXPECT_GE(ratio, scenario.minHitRatio);
        EXPECT_LE(ratio, scenario.maxHitRatio);

        // Reuse must never change the profile.
        expectSameDist(warm.result.dist, cold.result.dist);
        EXPECT_EQ(warm.result.runs, cold.result.runs);
        expectSameAnatomy(warm.result.anatomy, cold.result.anatomy);
    }
}

TEST(SectionCacheCampaign, WrongSeedAndWrongModelNeverHit)
{
    fsp::setVerboseLogging(false);
    std::string dir = freshDir("fsp-seccache-reject");
    runGemm({.variant = "", .cacheDir = dir, .seed = 1});

    GemmRun other_seed =
        runGemm({.variant = "", .cacheDir = dir, .seed = 2});
    EXPECT_EQ(other_seed.stats.cacheHits, 0u);

    GemmRun other_model = runGemm({.variant = "",
                                   .cacheDir = dir,
                                   .seed = 1,
                                   .faultModel = "multi-bit:width=2"});
    EXPECT_EQ(other_model.stats.cacheHits, 0u);

    // The same seed and model still hit after both pollution passes: a
    // shared directory is safe to mix.
    GemmRun same = runGemm({.variant = "", .cacheDir = dir, .seed = 1});
    EXPECT_EQ(same.stats.cacheMisses, 0u);
    EXPECT_EQ(same.stats.cachedSites, same.stats.sites);
}

TEST(SectionCacheCampaign, ShardedWorkersShareOneDirectory)
{
    fsp::setVerboseLogging(false);
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");

    // One canonical unsharded campaign (cold, uncached) as the oracle.
    VariantGuard guard("");
    analysis::KernelAnalysis oracle_ka(*spec, apps::Scale::Small, 42);
    pruning::PruningConfig pruning;
    pruning.seed = 1;
    pruning::PruningResult pruned = oracle_ka.prune(pruning);
    CampaignOptions plain;
    plain.workers = 2;
    plain.journalKey.seed = 1;
    CampaignResult oracle =
        oracle_ka.campaignEngine(plain).run(pruned.sites);

    const std::uint64_t model_hash =
        defaultFaultModel()->identityHash();
    const JournalKey key{"shard-suite", 1};

    for (std::uint32_t shards : {1u, 4u}) {
        SCOPED_TRACE(shards);
        std::string dir = freshDir("fsp-seccache-shards-" +
                                   std::to_string(shards));

        // Pass 0 (cold) and pass 1 (warm): each shard is an
        // independent journaled engine attached to the shared cache
        // directory, exactly as the service's shard-worker processes
        // are; the folded result comes from the deterministic journal
        // merge, which re-folds in global site order.
        for (int pass = 0; pass < 2; ++pass) {
            SCOPED_TRACE(pass);
            std::string journal_base =
                freshDir("fsp-seccache-shards-" +
                         std::to_string(shards) + "-journals-" +
                         std::to_string(pass)) +
                "/c";
            ShardPlan plan = planShards(key, pruned.sites, shards);

            std::uint64_t hits = 0, misses = 0;
            std::vector<std::string> journal_paths;
            for (std::uint32_t s = 0; s < shards; ++s) {
                const ShardPlanEntry &entry = plan.shards[s];
                std::string journal_path =
                    shardJournalPath(journal_base, s, shards);
                prepareShardJournal(journal_path, entry, model_hash);
                journal_paths.push_back(journal_path);

                analysis::AnalysisConfig facade;
                facade.sectionCacheDir = dir;
                analysis::KernelAnalysis ka(*spec, apps::Scale::Small,
                                            facade, 42);
                const SectionIndex &index =
                    ka.buildSectionIndex(entry.sites);

                CampaignOptions options;
                options.workers = 2;
                options.journalPath = journal_path;
                options.resume = true;
                options.journalKey = entry.key;
                options.sectionCache = ka.sectionCache();
                options.sectionIndex = &index;
                ka.campaignEngine(options).run(entry.sites);
                const CampaignStats &stats =
                    ka.campaignEngine(options).lastStats();
                hits += stats.cacheHits;
                misses += stats.cacheMisses;
            }

            if (pass == 0) {
                EXPECT_EQ(hits, 0u);
                EXPECT_GT(misses, 0u);
            } else {
                EXPECT_EQ(misses, 0u);
                EXPECT_GT(hits, 0u);
            }

            MergeReport merged = mergeShardJournals(
                key, pruned.sites, model_hash, journal_paths);
            EXPECT_TRUE(merged.complete);
            expectSameDist(merged.result.dist, oracle.dist);
            EXPECT_EQ(merged.result.runs, oracle.runs);
            expectSameAnatomy(merged.result.anatomy, oracle.anatomy);
        }
    }
}

TEST(SectionCacheCampaign, ObserverSeesEveryHitAndMiss)
{
    fsp::setVerboseLogging(false);
    std::string dir = freshDir("fsp-seccache-observer");

    struct CacheCounter final : CampaignObserver
    {
        std::uint64_t hits = 0, misses = 0, unindexed = 0;
        void
        onCacheHit(const CacheHit &event) override
        {
            ++hits;
            EXPECT_NE(event.site, nullptr);
            EXPECT_NE(event.sectionHash, 0u);
        }
        void
        onCacheMiss(const CacheMiss &event) override
        {
            ++misses;
            if (event.sectionHash == 0)
                ++unindexed;
        }
    };

    VariantGuard guard("");
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    analysis::AnalysisConfig facade;
    facade.sectionCacheDir = dir;
    analysis::KernelAnalysis ka(*spec, apps::Scale::Small, facade, 42);
    pruning::PruningConfig pruning;
    pruning.seed = 1;
    pruning::PruningResult pruned = ka.prune(pruning);

    CacheCounter cold_counter;
    CampaignOptions options;
    options.workers = 2;
    options.journalKey.seed = 1;
    options.observer = &cold_counter;
    ka.runPrunedCampaignDetailed(pruned, options);
    CampaignStats cold = ka.campaignEngine(options).lastStats();
    EXPECT_EQ(cold_counter.hits, cold.cacheHits);
    EXPECT_EQ(cold_counter.misses, cold.cacheMisses);
    EXPECT_EQ(cold_counter.hits + cold_counter.misses, cold.sites);

    CacheCounter warm_counter;
    options.observer = &warm_counter;
    ka.runPrunedCampaignDetailed(pruned, options);
    CampaignStats warm = ka.campaignEngine(options).lastStats();
    EXPECT_EQ(warm_counter.hits, warm.cacheHits);
    EXPECT_EQ(warm_counter.misses, 0u);
    EXPECT_EQ(warm_counter.hits, warm.sites);
}

} // namespace
} // namespace fsp
