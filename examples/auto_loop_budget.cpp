/**
 * @file
 * Automatic loop-budget selection: runs the paper's convergence
 * procedure (add sampled loop iterations one at a time until the
 * outcome distribution stabilises, section III-D) on a kernel and
 * prints the history -- the programmatic version of the Figure 6
 * experiment.
 *
 * Usage: auto_loop_budget [App/Kx] [tolerance_pts]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/convergence.hh"
#include "apps/app.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace fsp;

    std::string name = argc > 1 ? argv[1] : "SYRK/K1";
    double tolerance_pts =
        argc > 2 ? std::strtod(argv[2], nullptr) : 1.0;

    const apps::KernelSpec *spec = apps::findKernel(name);
    if (spec == nullptr) {
        std::cerr << "unknown kernel '" << name << "'\n";
        return 1;
    }

    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);
    std::cout << "== automatic loop budget for " << spec->fullName()
              << " (stability threshold " << tolerance_pts
              << " points, window 2) ==\n\n";

    pruning::PruningConfig config;
    config.seed = 1;
    auto result = analysis::convergeLoopIterations(
        ka, config, tolerance_pts / 100.0, 2, 15);

    TextTable table({"num_iter", "masked%", "sdc%", "other%",
                     "L-inf move"});
    for (const auto &step : result.history) {
        auto f = step.estimate.fractions();
        table.addRow({std::to_string(step.iterations),
                      fmtFixed(100.0 * f[0], 1),
                      fmtFixed(100.0 * f[1], 1),
                      fmtFixed(100.0 * f[2], 1),
                      step.iterations == 1
                          ? "-"
                          : fmtFixed(100.0 * step.delta, 2) + " pts"});
    }
    table.print(std::cout);

    std::cout << "\n"
              << (result.converged ? "converged at " : "stopped at ")
              << result.chosenIterations
              << " sampled iterations per loop; final estimate: "
              << result.finalEstimate().summary() << "\n";
    return 0;
}
