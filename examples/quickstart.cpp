/**
 * @file
 * Quickstart: the 60-second tour of the library.
 *
 * Picks one kernel (GEMM by default, overridable via argv[1] with an
 * "App/Kx" name), enumerates its fault space (Eq. 1), runs the
 * four-stage progressive pruning pipeline, injects the pruned sites,
 * and compares the weighted estimate against a random-sampling
 * baseline -- the core experiment of the paper in a few API calls.
 *
 * Usage: quickstart [App/Kx] [baseline_runs]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/analyzer.hh"
#include "apps/app.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace fsp;

    std::string name = argc > 1 ? argv[1] : "GEMM/K1";
    std::size_t baseline_runs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000;

    const apps::KernelSpec *spec = apps::findKernel(name);
    if (spec == nullptr) {
        std::cerr << "unknown kernel '" << name << "'; available:\n";
        for (const auto &k : apps::allKernels())
            std::cerr << "  " << k.fullName() << "\n";
        return 1;
    }

    std::cout << "== " << spec->suite << " " << spec->fullName() << " ("
              << spec->kernelName << ") at small scale ==\n";

    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);

    // 1. Enumerate the fault space (one fault-free profiling run).
    const faults::FaultSpace &space = ka.space();
    std::cout << "threads:            " << space.threadCount() << "\n"
              << "dynamic instrs:     " << space.totalDynInstrs() << "\n"
              << "fault sites (Eq.1): " << fmtCount(space.totalSites())
              << "\n\n";

    // 2. Progressive pruning.
    pruning::PruningConfig config;
    config.seed = 1;
    pruning::PruningResult pruned = ka.prune(config);
    std::cout << "pruning:  exhaustive " << pruned.counts.exhaustive
              << " -> thread " << pruned.counts.afterThread
              << " -> instruction " << pruned.counts.afterInstruction
              << " -> loop " << pruned.counts.afterLoop << " -> bit "
              << pruned.counts.afterBit << "\n";
    std::cout << "representative threads: "
              << pruned.grouping.representativeCount() << " of "
              << space.threadCount() << "\n\n";

    // 3. Inject the pruned sites (weighted) and a random baseline.
    faults::OutcomeDist estimate = ka.runPrunedCampaign(pruned);
    std::cout << "pruned estimate:  " << estimate.summary() << "\n";

    faults::CampaignResult baseline = ka.runBaseline(baseline_runs, 7);
    std::cout << "random baseline:  " << baseline.dist.summary() << "\n";

    double delta =
        100.0 * (estimate.fraction(faults::Outcome::Masked) -
                 baseline.dist.fraction(faults::Outcome::Masked));
    std::cout << "\nmasked-output delta vs baseline: " << fmtFixed(delta, 2)
              << " points with " << pruned.sites.size()
              << " injections instead of " << baseline_runs << "\n";
    return 0;
}
