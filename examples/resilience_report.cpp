/**
 * @file
 * Full resilience report for one kernel -- the workflow a reliability
 * engineer would run to characterise a workload:
 *
 *   1. enumerate the fault space (Eq. 1);
 *   2. show the hierarchical CTA/thread grouping;
 *   3. run the progressive pruning pipeline and report each stage;
 *   4. inject the pruned space and print the weighted error-resilience
 *      profile, with a random baseline cross-check.
 *
 * Options are the shared tool set (analysis/cli_options.hh); run with
 * --help for the generated list.  Highlights: --workers selects the
 * campaign engine's worker count (results are bit-identical to serial
 * at any setting); --no-slicing / --no-checkpoints are A/B switches
 * (outcomes identical either way); --journal PATH makes the pruned
 * campaign crash-safe and --resume continues a killed one without
 * repeating its injections; --json replaces the report with a single
 * machine-readable document on stdout.
 */

#include <iostream>
#include <string>

#include "analysis/analyzer.hh"
#include "analysis/cli_options.hh"
#include "analysis/observability.hh"
#include "analysis/report.hh"
#include "apps/app.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace fsp;

    std::string name = "PathFinder/K1";
    analysis::CommonCliOptions common;

    OptionTable table;
    table.setUsage("resilience_report [App/Kx] [options]");
    table.positional("App/Kx", "kernel to analyse (default " + name + ")",
                     [&name](const std::string &arg) {
                         name = arg;
                         return true;
                     });
    analysis::addCommonOptions(table, common);
    std::string kernels = "kernels:\n";
    for (const auto &spec : apps::allKernels())
        kernels += "  " + spec.fullName() + "\n";
    table.setEpilog(kernels);

    switch (table.parse(argc, argv, 1, std::cerr)) {
      case OptionTable::Parse::Ok:
        break;
      case OptionTable::Parse::Help:
        return 0;
      case OptionTable::Parse::Error:
        return 1;
    }
    if (!analysis::finalizeCommonOptions(common))
        return 1;

    const apps::KernelSpec *spec = apps::findKernel(name);
    if (spec == nullptr) {
        std::cerr << "unknown kernel '" << name << "'\n";
        table.printHelp(std::cerr);
        return 1;
    }

    analysis::Observability obs(common.progressEvery);
    analysis::AnalysisConfig facade;
    facade.slicing = common.campaign.allowSlicing;
    facade.checkpoints = common.campaign.allowCheckpoints;
    facade.execMetrics = &obs.exec;
    analysis::KernelAnalysis ka(*spec, common.scale, facade);

    // Journal (when requested) covers the pruned campaign only; the
    // baseline runs journal-less (its random site list is a different
    // campaign and would fail the header hash anyway).
    faults::CampaignOptions pruned_options = common.campaign;
    pruned_options.observer = obs.observer();
    if (!pruned_options.journalPath.empty())
        pruned_options.journalKey =
            analysis::campaignJournalKey(*spec, common.scale, common);
    faults::CampaignOptions baseline_options = common.campaign;
    baseline_options.observer = obs.observer();
    baseline_options.journalPath.clear();
    baseline_options.resume = false;

    if (common.json) {
        const auto &space = ka.space();
        auto pruned = ka.prune(common.pruning, &obs.registry);
        faults::CampaignResult estimated;
        try {
            estimated =
                ka.runPrunedCampaignDetailed(pruned, pruned_options);
        } catch (const faults::JournalError &error) {
            std::cerr << "journal error: " << error.what() << "\n";
            return 1;
        }
        auto pruned_stats = ka.campaignEngine(pruned_options).lastStats();
        faults::CampaignResult baseline;
        if (common.baseline > 0)
            baseline = ka.runBaseline(common.baseline, common.seed + 17,
                                      baseline_options);
        estimated.anatomy.exportMetrics(obs.registry);
        obs.finalize();
        if (!common.metricsOut.empty() &&
            !obs.writePrometheusFile(common.metricsOut)) {
            std::cerr << "cannot write metrics snapshot to '"
                      << common.metricsOut << "'\n";
            return 1;
        }

        analysis::CampaignReport report;
        report.spec = spec;
        report.scale = common.scale;
        report.seed = common.seed;
        report.includeSuite = true;
        report.analysis = &ka;
        report.faultModel = common.campaign.faultModelIdentity();
        report.space = &space;
        report.stageCounts = &pruned.counts;
        report.estimate = &estimated;
        if (common.baseline > 0)
            report.baseline = &baseline;
        report.stats = &pruned_stats;
        report.obs = &obs;
        analysis::writeCampaignReport(std::cout, report);
        return 0;
    }

    std::cout << "=============================================\n"
              << " Resilience report: " << spec->suite << " "
              << spec->fullName() << " (" << spec->kernelName << ")\n"
              << " scale: " << apps::scaleName(common.scale) << "\n"
              << "=============================================\n\n";

    // --- 1. Fault space.
    const auto &space = ka.space();
    std::cout << "[1] fault space (Eq. 1)\n"
              << "    threads:        " << space.threadCount() << "\n"
              << "    dyn instrs:     " << fmtCount(space.totalDynInstrs())
              << "\n"
              << "    fault sites:    " << fmtCount(space.totalSites())
              << "\n\n";

    std::cout << "    engine:         " << ka.injector().slicingDescription()
              << "\n"
              << "    replay:         "
              << ka.injector().checkpointDescription() << "\n"
              << "    independence:   " << ka.slicingPlan().reason()
              << "\n"
              << "    fault model:    "
              << common.campaign.faultModelIdentity() << "\n\n";

    // --- 2+3. Pruning pipeline.
    auto pruned = ka.prune(common.pruning, &obs.registry);
    if (pruned.slicedProfiling) {
        std::cout << "    (profiling run sliced to " << pruned.profiledCtas
                  << " of " << ka.slicingPlan().ctaCount() << " CTAs)\n";
    }
    std::cout << "[2] thread-wise grouping\n"
              << "    CTA groups:     " << pruned.grouping.ctaGroups.size()
              << "\n"
              << "    thread groups:  "
              << pruned.grouping.representativeCount() << "\n";
    for (const auto &cg : pruned.grouping.ctaGroups) {
        std::cout << "      CTA group avg iCnt " << fmtFixed(cg.avgICnt, 1)
                  << " x" << cg.ctas.size() << " CTAs, "
                  << cg.threadGroups.size() << " thread group(s)\n";
    }

    const auto &c = pruned.counts;
    std::cout << "\n[3] progressive pruning\n";
    TextTable stages({"stage", "surviving sites", "reduction"});
    auto ratio = [&](std::uint64_t v) {
        return "x" + fmtFixed(static_cast<double>(c.exhaustive) /
                                  static_cast<double>(v),
                              1);
    };
    stages.addRow({"exhaustive", fmtCount(c.exhaustive), "x1.0"});
    stages.addRow({"+ thread-wise", fmtCount(c.afterThread),
                   ratio(c.afterThread)});
    stages.addRow({"+ instruction-wise", fmtCount(c.afterInstruction),
                   ratio(c.afterInstruction)});
    stages.addRow({"+ loop-wise", fmtCount(c.afterLoop),
                   ratio(c.afterLoop)});
    stages.addRow({"+ bit-wise", fmtCount(c.afterBit),
                   ratio(c.afterBit)});
    stages.print(std::cout);

    // --- 4. Campaigns (unified engine; bit-identical to serial).
    std::cout << "\n[4] injection campaigns\n";
    faults::CampaignResult estimated;
    try {
        estimated = ka.runPrunedCampaignDetailed(pruned, pruned_options);
    } catch (const faults::JournalError &error) {
        std::cerr << "journal error: " << error.what() << "\n";
        return 1;
    }
    const faults::OutcomeDist &estimate = estimated.dist;
    std::cout << "    pruned estimate:  " << estimate.summary() << "\n";
    auto pruned_stats = ka.campaignEngine(pruned_options).lastStats();
    if (pruned_stats.replayedSites > 0) {
        std::cout << "    (journal resume: "
                  << pruned_stats.replayedSites << " of "
                  << pruned_stats.sites
                  << " outcomes replayed, not re-injected)\n";
    }
    if (common.baseline > 0) {
        auto baseline = ka.runBaseline(common.baseline, common.seed + 17,
                                       baseline_options);
        std::cout << "    random baseline:  " << baseline.dist.summary()
                  << "\n";
    }
    std::cout << "\ninjections used: " << estimate.runs() << " (vs "
              << fmtCount(space.totalSites()) << " exhaustive)\n";

    // --- 4b. SDC anatomy (how the silent corruptions look).
    const faults::SdcAnatomyProfile &anatomy = estimated.anatomy;
    if (anatomy.sdcRuns() > 0) {
        std::cout << "\n[4b] sdc anatomy (" << anatomy.sdcRuns()
                  << " SDC runs)\n"
                  << "    " << anatomy.summary() << "\n";
        auto ranked = anatomy.ranking(5);
        if (!ranked.empty()) {
            TextTable top({"static instr", "SDC wt", "masked wt",
                           "other wt", "runs"});
            for (const auto &entry : ranked) {
                top.addRow({std::to_string(entry.staticIndex),
                            fmtFixed(entry.counts.sdc, 1),
                            fmtFixed(entry.counts.masked, 1),
                            fmtFixed(entry.counts.other, 1),
                            std::to_string(entry.counts.runs)});
            }
            std::cout << "    most SDC-prone static instructions:\n";
            top.print(std::cout);
        }
    }

    // --- 5. Campaign throughput (pruned sweep; per-phase breakdown).
    std::cout << "\n[5] campaign throughput (pruned sweep)\n"
              << "    workers:        " << pruned_stats.workers
              << " (chunk " << pruned_stats.chunkSize << ", "
              << pruned_stats.chunks << " chunks)\n"
              << "    campaign:       " << pruned_stats.summary() << "\n"
              << "    phases:         replay "
              << fmtFixed(pruned_stats.replaySeconds, 3) << " s, inject "
              << fmtFixed(pruned_stats.injectSeconds, 3) << " s, fold "
              << fmtFixed(pruned_stats.foldSeconds, 3) << " s\n"
              << "    injection:      " << pruned_stats.injection.summary()
              << "\n"
              << "    per-worker runs:";
    for (std::uint64_t runs : pruned_stats.perWorkerRuns)
        std::cout << " " << runs;
    std::cout << "\n";

    obs.finalize();
    if (!common.metricsOut.empty()) {
        if (!obs.writePrometheusFile(common.metricsOut)) {
            std::cerr << "cannot write metrics snapshot to '"
                      << common.metricsOut << "'\n";
            return 1;
        }
        std::cout << "\nmetrics snapshot written to " << common.metricsOut
                  << "\n";
    }
    return 0;
}
