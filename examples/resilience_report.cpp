/**
 * @file
 * Full resilience report for one kernel -- the workflow a reliability
 * engineer would run to characterise a workload:
 *
 *   1. enumerate the fault space (Eq. 1);
 *   2. show the hierarchical CTA/thread grouping;
 *   3. run the progressive pruning pipeline and report each stage;
 *   4. inject the pruned space and print the weighted error-resilience
 *      profile, with a random baseline cross-check.
 *
 * Usage: resilience_report [App/Kx] [--paper] [--baseline N]
 *                          [--loop-iters N] [--bit-samples N]
 *                          [--seed N] [--workers N] [--chunk N]
 *                          [--no-slicing] [--no-checkpoints] [--json]
 *
 * --workers selects the parallel campaign engine's worker count
 * (default: hardware threads); results are bit-identical to a serial
 * campaign at any worker count, so parallelism only changes the
 * wall-clock and throughput report.  --no-slicing forces full-grid
 * injection runs even for CTA-independent kernels; --no-checkpoints
 * executes every injection run from instruction zero instead of
 * resuming from golden-run checkpoints; outcomes are bit-identical
 * with or without either.  --json replaces the report with a single
 * machine-readable document on stdout.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "analysis/analyzer.hh"
#include "apps/app.hh"
#include "util/json.hh"
#include "util/table.hh"

namespace {

void
usage()
{
    std::cerr << "usage: resilience_report [App/Kx] [--paper] "
                 "[--baseline N] [--loop-iters N]\n"
                 "                         [--bit-samples N] [--seed N] "
                 "[--workers N] [--chunk N]\n"
                 "                         [--no-slicing] "
                 "[--no-checkpoints] [--json]\n"
                 "kernels:\n";
    for (const auto &spec : fsp::apps::allKernels())
        std::cerr << "  " << spec.fullName() << "\n";
}

/** Emit an outcome distribution as a named JSON object. */
void
writeProfile(fsp::JsonWriter &json, std::string_view key,
             const fsp::faults::OutcomeDist &dist)
{
    using fsp::faults::Outcome;
    json.beginObject(key);
    json.field("runs", dist.runs());
    json.field("totalWeight", dist.total());
    json.field("masked", dist.fraction(Outcome::Masked));
    json.field("sdc", dist.fraction(Outcome::SDC));
    json.field("other", dist.fraction(Outcome::Other));
    json.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fsp;

    std::string name = "PathFinder/K1";
    apps::Scale scale = apps::Scale::Small;
    std::size_t baseline_runs = 2000;
    bool json_output = false;
    pruning::PruningConfig config;
    faults::CampaignOptions campaign; // workers=0: hardware default

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--paper") {
            scale = apps::Scale::Paper;
        } else if (arg == "--baseline") {
            baseline_runs = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--loop-iters") {
            config.loopIterations =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--bit-samples") {
            config.bitSamples =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--seed") {
            config.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--workers") {
            campaign.workers =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--chunk") {
            campaign.chunkSize = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--no-slicing") {
            campaign.allowSlicing = false;
            config.slicedProfiling = false;
        } else if (arg == "--no-checkpoints") {
            campaign.allowCheckpoints = false;
            config.checkpoints = false;
        } else if (arg == "--json") {
            json_output = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            name = arg;
        }
    }

    const apps::KernelSpec *spec = apps::findKernel(name);
    if (spec == nullptr) {
        usage();
        return 1;
    }

    analysis::KernelAnalysis ka(*spec, scale);
    if (!campaign.allowSlicing)
        ka.setSlicingEnabled(false);
    if (!campaign.allowCheckpoints)
        ka.setCheckpointsEnabled(false);

    if (json_output) {
        const auto &space = ka.space();
        auto pruned = ka.prune(config);
        auto estimate = ka.runPrunedCampaign(pruned, campaign);
        auto pruned_stats = ka.parallelCampaign(campaign).lastStats();
        faults::CampaignResult baseline;
        if (baseline_runs > 0)
            baseline =
                ka.runBaseline(baseline_runs, config.seed + 17, campaign);

        JsonWriter json(std::cout);
        json.beginObject();
        json.field("kernel", spec->fullName());
        json.field("suite", spec->suite);
        json.field("scale", apps::scaleName(scale));
        json.field("seed", config.seed);
        json.beginObject("faultSpace");
        json.field("threads", space.threadCount());
        json.field("dynInstrs", space.totalDynInstrs());
        json.field("sites", space.totalSites());
        json.endObject();
        json.beginObject("engine");
        json.field("slicing", ka.injector().slicingDescription());
        json.field("checkpoints", ka.injector().checkpointDescription());
        json.field("slicingActive", ka.injector().slicingActive());
        json.field("checkpointsActive",
                   ka.injector().checkpointsActive());
        json.endObject();
        json.beginObject("stageCounts");
        json.field("exhaustive", pruned.counts.exhaustive);
        json.field("afterThread", pruned.counts.afterThread);
        json.field("afterInstruction", pruned.counts.afterInstruction);
        json.field("afterLoop", pruned.counts.afterLoop);
        json.field("afterBit", pruned.counts.afterBit);
        json.endObject();
        writeProfile(json, "prunedEstimate", estimate);
        if (baseline_runs > 0)
            writeProfile(json, "randomBaseline", baseline.dist);
        json.beginObject("throughput");
        json.field("workers",
                   static_cast<std::uint64_t>(pruned_stats.workers));
        json.field("sites", pruned_stats.sites);
        json.field("elapsedSeconds", pruned_stats.elapsedSeconds);
        json.field("sitesPerSecond", pruned_stats.sitesPerSecond);
        json.endObject();
        json.beginObject("injectionStats");
        faults::writeInjectionStats(json, pruned_stats.injection);
        json.endObject();
        json.endObject();
        return 0;
    }

    std::cout << "=============================================\n"
              << " Resilience report: " << spec->suite << " "
              << spec->fullName() << " (" << spec->kernelName << ")\n"
              << " scale: " << apps::scaleName(scale) << "\n"
              << "=============================================\n\n";

    // --- 1. Fault space.
    const auto &space = ka.space();
    std::cout << "[1] fault space (Eq. 1)\n"
              << "    threads:        " << space.threadCount() << "\n"
              << "    dyn instrs:     " << fmtCount(space.totalDynInstrs())
              << "\n"
              << "    fault sites:    " << fmtCount(space.totalSites())
              << "\n\n";

    std::cout << "    engine:         " << ka.injector().slicingDescription()
              << "\n"
              << "    replay:         "
              << ka.injector().checkpointDescription() << "\n"
              << "    independence:   " << ka.slicingPlan().reason()
              << "\n\n";

    // --- 2+3. Pruning pipeline.
    auto pruned = ka.prune(config);
    if (pruned.slicedProfiling) {
        std::cout << "    (profiling run sliced to " << pruned.profiledCtas
                  << " of " << ka.slicingPlan().ctaCount() << " CTAs)\n";
    }
    std::cout << "[2] thread-wise grouping\n"
              << "    CTA groups:     " << pruned.grouping.ctaGroups.size()
              << "\n"
              << "    thread groups:  "
              << pruned.grouping.representativeCount() << "\n";
    for (const auto &cg : pruned.grouping.ctaGroups) {
        std::cout << "      CTA group avg iCnt " << fmtFixed(cg.avgICnt, 1)
                  << " x" << cg.ctas.size() << " CTAs, "
                  << cg.threadGroups.size() << " thread group(s)\n";
    }

    const auto &c = pruned.counts;
    std::cout << "\n[3] progressive pruning\n";
    TextTable stages({"stage", "surviving sites", "reduction"});
    auto ratio = [&](std::uint64_t v) {
        return "x" + fmtFixed(static_cast<double>(c.exhaustive) /
                                  static_cast<double>(v),
                              1);
    };
    stages.addRow({"exhaustive", fmtCount(c.exhaustive), "x1.0"});
    stages.addRow({"+ thread-wise", fmtCount(c.afterThread),
                   ratio(c.afterThread)});
    stages.addRow({"+ instruction-wise", fmtCount(c.afterInstruction),
                   ratio(c.afterInstruction)});
    stages.addRow({"+ loop-wise", fmtCount(c.afterLoop),
                   ratio(c.afterLoop)});
    stages.addRow({"+ bit-wise", fmtCount(c.afterBit),
                   ratio(c.afterBit)});
    stages.print(std::cout);

    // --- 4. Campaigns (parallel engine; bit-identical to serial).
    std::cout << "\n[4] injection campaigns\n";
    auto estimate = ka.runPrunedCampaign(pruned, campaign);
    std::cout << "    pruned estimate:  " << estimate.summary() << "\n";
    auto pruned_stats = ka.parallelCampaign(campaign).lastStats();
    if (baseline_runs > 0) {
        auto baseline =
            ka.runBaseline(baseline_runs, config.seed + 17, campaign);
        std::cout << "    random baseline:  " << baseline.dist.summary()
                  << "\n";
    }
    std::cout << "\ninjections used: " << estimate.runs() << " (vs "
              << fmtCount(space.totalSites()) << " exhaustive)\n";

    // --- 5. Campaign throughput.
    const auto &stats = ka.parallelCampaign(campaign).lastStats();
    std::cout << "\n[5] campaign throughput (most recent campaign)\n"
              << "    workers:        " << stats.workers << " (chunk "
              << stats.chunkSize << ", " << stats.chunks << " chunks)\n"
              << "    pruned sweep:   " << pruned_stats.summary() << "\n"
              << "    last campaign:  " << stats.summary() << "\n"
              << "    injection:      " << stats.injection.summary() << "\n"
              << "    per-worker runs:";
    for (std::uint64_t runs : stats.perWorkerRuns)
        std::cout << " " << runs;
    std::cout << "\n";
    return 0;
}
