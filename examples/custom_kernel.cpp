/**
 * @file
 * Bring-your-own-kernel: shows how to analyse a kernel that is not in
 * the registry.  A small SAXPY-with-reduction kernel is written in the
 * PTXPlus-style assembly, assembled, given inputs and an output spec,
 * and pushed through enumeration -> pruning -> weighted injection
 * using only public library APIs (no apps/ involvement).
 */

#include <iostream>

#include "faults/campaign_engine.hh"
#include "faults/fault_space.hh"
#include "pruning/pipeline.hh"
#include "ptx/assembler.hh"
#include "sim/executor.hh"
#include "util/table.hh"

namespace {

/** y[i] = a * x[i] + y[i], with a tail guard -- one thread per element. */
const char *kSaxpySource = R"(
    // params: [0]=x, [4]=y, [8]=n, [12]=a
    cvt.u32.u16 $r1, %ctaid.x
    cvt.u32.u16 $r2, %ntid.x
    mul.lo.u32 $r1, $r1, $r2
    cvt.u32.u16 $r2, %tid.x
    add.u32 $r1, $r1, $r2          // i
    ld.param.u32 $r3, [8]
    set.ge.u32.u32 $p0|$o127, $r1, $r3
    @$p0.ne retp                   // tail threads exit
    shl.u32 $r4, $r1, 0x00000002
    ld.param.u32 $r5, [0]
    add.u32 $r5, $r5, $r4          // &x[i]
    ld.param.u32 $r6, [4]
    add.u32 $r6, $r6, $r4          // &y[i]
    ld.global.f32 $r7, [$r5]
    ld.global.f32 $r8, [$r6]
    ld.param.f32 $r9, [12]
    mad.f32 $r8, $r7, $r9, $r8
    st.global.f32 [$r6], $r8
    retp
)";

} // namespace

int
main()
{
    using namespace fsp;

    std::cout << "== custom kernel walkthrough: saxpy ==\n\n";

    // 1. Assemble.
    sim::Program program = ptx::assemble("saxpy", kSaxpySource);
    std::cout << "[1] assembled " << program.size()
              << " instructions\n";

    // 2. Inputs: 200 elements over 4 CTAs of 64 (56 tail threads).
    const unsigned n = 200;
    sim::GlobalMemory memory(1u << 20);
    std::uint64_t x = memory.allocate(4 * n);
    std::uint64_t y = memory.allocate(4 * n);
    Prng input_prng(42);
    for (unsigned i = 0; i < n; ++i) {
        memory.pokeF32(x + 4 * i,
                       static_cast<float>(input_prng.uniform()));
        memory.pokeF32(y + 4 * i,
                       static_cast<float>(input_prng.uniform()));
    }

    sim::LaunchConfig launch;
    launch.grid = {4, 1, 1};
    launch.block = {64, 1, 1};
    launch.params.addU32(static_cast<std::uint32_t>(x));
    launch.params.addU32(static_cast<std::uint32_t>(y));
    launch.params.addU32(n);
    launch.params.addF32(2.5f);

    // 3. Output spec: y is the result vector, exact float compare.
    std::vector<faults::OutputRegion> outputs{
        {"y", y, 4ull * n, faults::ElemType::F32, 0.0}};

    // 4. Enumerate and prune.
    sim::Executor executor(program, launch);
    faults::FaultSpace space(executor, memory);
    std::cout << "[2] fault space: " << fmtCount(space.totalSites())
              << " sites across " << space.threadCount()
              << " threads\n";

    pruning::PruningConfig config;
    config.seed = 7;
    auto pruned = pruning::prunePipeline(executor, memory, space, config);
    std::cout << "[3] pruning: " << pruned.counts.exhaustive << " -> "
              << pruned.counts.afterThread << " -> "
              << pruned.counts.afterInstruction << " -> "
              << pruned.counts.afterLoop << " -> "
              << pruned.counts.afterBit << " sites ("
              << pruned.grouping.representativeCount()
              << " representative threads)\n";

    // 5. Inject.  One engine serves both campaigns: the golden run
    // happens once at construction, and results are bit-identical to
    // the serial drivers at any worker count.
    faults::CampaignEngine engine(program, launch, memory, outputs);
    auto campaign = engine.run(pruned.sites);
    campaign.dist.addWeight(faults::Outcome::Masked,
                            pruned.assumedMaskedWeight);
    std::cout << "[4] weighted profile: " << campaign.dist.summary()
              << "\n";

    Prng prng(99);
    auto baseline = engine.run(space, 1500, prng);
    std::cout << "    random baseline:  " << baseline.dist.summary()
              << "\n";
    return 0;
}
