/**
 * @file
 * Pruning explorer: sweeps the pipeline's knobs on one kernel and
 * shows the accuracy/cost trade-off -- how the estimate moves (and the
 * injection count shrinks) as each stage is enabled and as loop/bit
 * budgets change.  Useful for picking per-study configurations.
 *
 * Usage: pruning_explorer [App/Kx] [baseline_runs]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/analyzer.hh"
#include "apps/app.hh"
#include "util/table.hh"

namespace {

struct Variant
{
    std::string label;
    fsp::pruning::PruningConfig config;
};

std::vector<Variant>
variants()
{
    using fsp::pruning::PruningConfig;
    std::vector<Variant> out;

    PruningConfig off;
    off.instruction.enabled = false;
    off.loop.iterations = 0;
    off.bit.samples = 0;
    off.bit.predZeroFlagOnly = false;
    out.push_back({"thread only", off});

    PruningConfig instr = off;
    instr.instruction.enabled = true;
    out.push_back({"+instr", instr});

    for (unsigned iters : {4u, 8u, 12u}) {
        PruningConfig c = instr;
        c.loop.iterations = iters;
        out.push_back({"+loop(" + std::to_string(iters) + ")", c});
    }

    for (unsigned bits : {8u, 16u}) {
        PruningConfig c = instr;
        c.loop.iterations = 8;
        c.bit.samples = bits;
        c.bit.predZeroFlagOnly = true;
        out.push_back({"+loop(8)+bit(" + std::to_string(bits) + ")", c});
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fsp;

    std::string name = argc > 1 ? argv[1] : "K-Means/K2";
    std::size_t baseline_runs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2500;

    const apps::KernelSpec *spec = apps::findKernel(name);
    if (spec == nullptr) {
        std::cerr << "unknown kernel '" << name << "'\n";
        return 1;
    }

    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);
    std::cout << "== pruning explorer: " << spec->fullName() << " ==\n"
              << "exhaustive fault sites: "
              << fmtCount(ka.space().totalSites()) << "\n\n";

    auto baseline = ka.runBaseline(baseline_runs, 17);
    std::cout << "random baseline (" << baseline_runs
              << " runs): " << baseline.dist.summary() << "\n\n";

    TextTable table({"configuration", "injections", "masked%", "sdc%",
                     "other%", "|masked - baseline|"});
    for (const auto &variant : variants()) {
        pruning::PruningConfig config = variant.config;
        config.seed = 1;
        auto pruned = ka.prune(config);
        auto estimate = ka.runPrunedCampaign(pruned);
        double delta =
            estimate.fraction(faults::Outcome::Masked) -
            baseline.dist.fraction(faults::Outcome::Masked);
        table.addRow(
            {variant.label, std::to_string(estimate.runs()),
             fmtFixed(100.0 * estimate.fraction(faults::Outcome::Masked),
                      1),
             fmtFixed(100.0 * estimate.fraction(faults::Outcome::SDC), 1),
             fmtFixed(100.0 * estimate.fraction(faults::Outcome::Other),
                      1),
             fmtFixed(100.0 * std::abs(delta), 2) + " pts"});
    }
    table.print(std::cout);

    std::cout << "\nEach row adds a pruning stage or tightens a budget; "
                 "accuracy holds while the\ninjection count falls.\n";
    return 0;
}
