/**
 * @file
 * Partial-protection trade-off sweep (companion to the fsp protect
 * subcommand, not a numbered paper artifact): for a set of kernels and
 * overhead budgets, run the protection planner under both schemes and
 * print modeled cost against the verified SDC reduction.  The sweep is
 * the "buying resilience" curve -- how much silent corruption each
 * additional percent of redundant execution removes.
 *
 * Extra knobs (on top of bench_util.hh's shared set):
 *   FSP_PROTECT_KERNELS=A,B  comma-separated kernel list
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/protection_planner.hh"
#include "bench_util.hh"
#include "util/csv.hh"

int
main()
{
    using namespace fsp;

    bench::banner("Partial protection trade-off (diagnostic)",
                  "Modeled cost vs verified SDC reduction per budget "
                  "and scheme (fsp protect companion)");

    std::vector<std::string> kernels;
    {
        const char *env = std::getenv("FSP_PROTECT_KERNELS");
        std::string list =
            env != nullptr ? env : "GEMM/K1,PathFinder/K1";
        std::size_t start = 0;
        while (start < list.size()) {
            std::size_t comma = list.find(',', start);
            if (comma == std::string::npos)
                comma = list.size();
            if (comma > start)
                kernels.push_back(list.substr(start, comma - start));
            start = comma + 1;
        }
    }

    const double budgets[] = {0.05, 0.1, 0.25, 0.5, 1.0};
    const sim::ProtectionScheme schemes[] = {
        sim::ProtectionScheme::DuplicateCompare,
        sim::ProtectionScheme::Recompute};

    CsvWriter csv({"kernel", "scheme", "budget", "modeled_cost",
                   "protected_threads", "sdc_before", "sdc_after"});

    for (const std::string &name : kernels) {
        const apps::KernelSpec *spec = apps::findKernel(name);
        if (spec == nullptr) {
            std::printf("unknown kernel '%s', skipping\n", name.c_str());
            continue;
        }
        analysis::KernelAnalysis ka(
            *spec, bench::scaleFromEnv(apps::Scale::Small));
        pruning::PruningConfig config;
        config.seed = bench::masterSeed();
        auto pruned = ka.prune(config);

        std::printf("--- %s ---\n", name.c_str());
        TextTable table({"scheme", "budget%", "cost%", "threads",
                         "sdc before%", "sdc after%", "drop pp"});
        for (sim::ProtectionScheme scheme : schemes) {
            for (double budget : budgets) {
                analysis::ProtectionPlannerConfig planner_config;
                planner_config.budget = budget;
                planner_config.scheme = scheme;
                analysis::ProtectionPlanner planner(ka, planner_config);
                auto outcome =
                    planner.plan(pruned, bench::campaignOptions());
                const double cost_frac =
                    outcome.totalInstrs > 0.0
                        ? outcome.modeledCost / outcome.totalInstrs
                        : 0.0;
                const std::size_t threads =
                    outcome.plan ? outcome.plan->protectedThreadCount()
                                 : 0;
                table.addRow(
                    {sim::protectionSchemeName(scheme),
                     fmtFixed(100.0 * budget, 0),
                     fmtFixed(100.0 * cost_frac, 1),
                     std::to_string(threads),
                     fmtFixed(100.0 * outcome.sdcBefore, 2),
                     fmtFixed(100.0 * outcome.sdcAfter, 2),
                     fmtFixed(100.0 * (outcome.sdcBefore -
                                       outcome.sdcAfter),
                              2)});
                csv.addRow({name,
                            sim::protectionSchemeName(scheme),
                            fmtFixed(budget, 2),
                            fmtFixed(cost_frac, 4),
                            std::to_string(threads),
                            fmtFixed(outcome.sdcBefore, 4),
                            fmtFixed(outcome.sdcAfter, 4)});
            }
        }
        table.print(std::cout);
        std::printf("\n");
    }
    std::string csv_path = bench::csvPath("protect_tradeoff");
    if (!csv_path.empty() && csv.writeFile(csv_path))
        std::printf("CSV written to %s\n", csv_path.c_str());
    return 0;
}
