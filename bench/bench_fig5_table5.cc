/**
 * @file
 * Reproduces Figure 5 and Table V: the common-instruction structure of
 * two representative PathFinder threads.  Prints the trace alignment
 * (common prefix, divergent middle, common suffix) with the PTXPlus
 * listing around the divergence point, then injects the common block
 * of *both* threads and compares their masked/SDC distributions --
 * the evidence that a common block needs to be injected only once.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "pruning/instr_common.hh"
#include "pruning/pipeline.hh"
#include "util/env.hh"

int
main()
{
    using namespace fsp;

    bench::banner("Figure 5 + Table V",
                  "Common instruction blocks across two PathFinder "
                  "representative threads");

    const apps::KernelSpec *spec = apps::findKernel("PathFinder/K1");
    analysis::KernelAnalysis ka(*spec, bench::scaleFromEnv(
                                           apps::Scale::Small));

    Prng prng(bench::masterSeed());
    auto grouping = pruning::pruneThreads(
        ka.space(), ka.executor().config().block.count(), prng);
    auto plans = pruning::buildThreadPlans(ka.executor(),
                                           ka.setup().memory, grouping);
    if (plans.size() < 2) {
        std::printf("unexpected: only one representative thread\n");
        return 1;
    }

    // Thread "a" = longest trace, "b" = second longest.
    std::sort(plans.begin(), plans.end(),
              [](const auto &x, const auto &y) {
                  return x.trace.size() > y.trace.size();
              });
    const auto &a = plans[0];
    const auto &b = plans[1];
    auto alignment = pruning::alignTraces(a.trace, b.trace);

    std::printf("thread a = %llu (iCnt %zu), thread b = %llu (iCnt %zu)\n",
                static_cast<unsigned long long>(a.thread), a.trace.size(),
                static_cast<unsigned long long>(b.thread),
                b.trace.size());
    std::printf("common prefix: %zu instructions\n", alignment.prefixLen);
    std::printf("divergent middle: %zu (a) vs %zu (b) instructions\n",
                a.trace.size() - alignment.commonLen(),
                b.trace.size() - alignment.commonLen());
    std::printf("common suffix: %zu instructions\n", alignment.suffixLen);
    std::printf("common fraction of thread b: %.1f%%\n\n",
                100.0 * static_cast<double>(alignment.commonLen()) /
                    static_cast<double>(b.trace.size()));

    // Listing excerpt around the divergence (as in Fig. 5).
    const auto &code = ka.program().instructions();
    std::printf("listing around the divergence point (thread a):\n");
    std::size_t lo =
        alignment.prefixLen >= 2 ? alignment.prefixLen - 2 : 0;
    std::size_t hi = std::min(a.trace.size(),
                              a.trace.size() - alignment.suffixLen + 2);
    for (std::size_t j = lo;
         j < std::min(hi, alignment.prefixLen + 6); ++j) {
        std::printf("  a[%4zu]%s %s\n", j,
                    j < alignment.prefixLen ? " (common)" :
                                              " (a only)",
                    code[a.trace[j].staticIndex].text.c_str());
    }
    std::printf("\n");

    // Table V: inject the common block of both threads.
    std::size_t cap =
        static_cast<std::size_t>(envU64("FSP_TABLE5_SITES", 600));
    auto inject_common = [&](const pruning::ThreadPlan &plan) {
        std::vector<faults::FaultSite> sites;
        for (std::size_t j = 0; j < plan.trace.size(); ++j) {
            bool common = j < alignment.prefixLen ||
                          j >= plan.trace.size() - alignment.suffixLen;
            if (!common)
                continue;
            for (std::uint32_t bit = 0; bit < plan.trace[j].destBits;
                 ++bit) {
                sites.push_back({plan.thread, j, bit});
            }
        }
        Prng site_prng(bench::masterSeed() + plan.thread);
        auto chosen = site_prng.sampleWithoutReplacement(sites.size(),
                                                         cap);
        faults::OutcomeDist dist;
        for (std::size_t index : chosen)
            dist.add(ka.injector().inject(sites[index]));
        return dist;
    };

    auto dist_a = inject_common(a);
    auto dist_b = inject_common(b);

    TextTable table({"Thread", "% Common Insn.", "% MSK", "% SDC",
                     "% OTHER", "runs"});
    auto row = [&](const char *label, const pruning::ThreadPlan &plan,
                   const faults::OutcomeDist &dist) {
        table.addRow(
            {label,
             fmtPercent(static_cast<double>(alignment.commonLen()) /
                            static_cast<double>(plan.trace.size()),
                        1),
             fmtPercent(dist.fraction(faults::Outcome::Masked), 1),
             fmtPercent(dist.fraction(faults::Outcome::SDC), 1),
             fmtPercent(dist.fraction(faults::Outcome::Other), 1),
             std::to_string(dist.runs())});
    };
    row("a", a, dist_a);
    row("b", b, dist_b);
    std::printf("%s\n", table.str().c_str());

    double msk_err = dist_a.fraction(faults::Outcome::Masked) -
                     dist_b.fraction(faults::Outcome::Masked);
    double sdc_err = dist_a.fraction(faults::Outcome::SDC) -
                     dist_b.fraction(faults::Outcome::SDC);
    std::printf("extrapolating b's common block from a introduces "
                "%.2f%% (masked) / %.2f%% (SDC) error\n",
                100.0 * msk_err, 100.0 * sdc_err);
    std::printf("(paper Table V: -0.078%% masked, -0.031%% SDC, with "
                "12,344 sites pruned)\n");
    return 0;
}
