/**
 * @file
 * Engineering baseline (not a paper artifact): google-benchmark
 * measurements of the substrate -- functional-simulator instruction
 * throughput, injection-run latency, fault-space enumeration, the
 * pruning pipeline itself, and serial-vs-parallel campaign scaling.
 * These numbers bound how large a campaign the harness can sustain.
 *
 * The campaign benchmarks report sites/s at worker counts 1..8 on a
 * GEMM-sized site list; on a machine with >= 8 hardware threads the
 * 8-worker row should show the parallel engine's speedup over
 * BM_CampaignSerial (results are bit-identical either way).
 *
 * BM_CampaignEngine compares the CTA-sliced injection engine against
 * forced full-grid runs per kernel (identical outcomes); the sliced
 * rows report restored bytes and executed CTAs per run alongside
 * sites/s, which is where the engine's speedup shows up.
 *
 * BM_CheckpointReplay measures the orthogonal temporal axis: the same
 * site list classified with golden-run checkpoints on vs off
 * (identical outcomes).  The `late` rows map each site's dynamic index
 * into the late half of its thread's golden trace -- where temporal
 * replay saves the most re-execution -- while the plain rows keep the
 * uniform sample.
 *
 * The sampled site-list length for the campaign/engine benchmarks is
 * overridable via the FSP_BENCH_SITES environment variable.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <tuple>
#include <vector>

#include "analysis/analyzer.hh"
#include "apps/app.hh"
#include "reference_campaign.hh"
#include "faults/fault_space.hh"
#include "faults/injector.hh"
#include "faults/campaign_engine.hh"
#include "perf_counters.hh"
#include "pruning/pipeline.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/prng.hh"

namespace {

using namespace fsp;

void
BM_GoldenRun(benchmark::State &state)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    sim::Executor executor(setup.program, setup.launch);

    std::uint64_t instrs = 0;
    for (auto _ : state) {
        sim::GlobalMemory scratch = setup.memory;
        auto result = executor.run(scratch);
        benchmark::DoNotOptimize(result.totalDynInstrs);
        instrs += result.totalDynInstrs;
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GoldenRun);

void
BM_InjectionRun(benchmark::State &state)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    faults::Injector injector(setup.program, setup.launch, setup.memory,
                              setup.outputs);

    faults::FaultSite site{0, 40, 7};
    for (auto _ : state)
        benchmark::DoNotOptimize(injector.inject(site));
    state.counters["runs/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InjectionRun);

void
BM_Enumeration(benchmark::State &state)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    sim::Executor executor(setup.program, setup.launch);

    for (auto _ : state) {
        faults::FaultSpace space(executor, setup.memory);
        benchmark::DoNotOptimize(space.totalSites());
    }
}
BENCHMARK(BM_Enumeration);

void
BM_PruningPipeline(benchmark::State &state)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    sim::Executor executor(setup.program, setup.launch);
    faults::FaultSpace space(executor, setup.memory);

    pruning::PruningConfig config;
    for (auto _ : state) {
        auto result =
            pruning::prunePipeline(executor, setup.memory, space, config);
        benchmark::DoNotOptimize(result.sites.size());
    }
}
BENCHMARK(BM_PruningPipeline);

/** GEMM site list shared by the campaign scaling benchmarks. */
const std::vector<faults::FaultSite> &
campaignSites()
{
    static const std::vector<faults::FaultSite> sites = [] {
        const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
        apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
        sim::Executor executor(setup.program, setup.launch);
        faults::FaultSpace space(executor, setup.memory);
        Prng prng(7);
        auto count =
            static_cast<std::size_t>(fsp::envU64("FSP_BENCH_SITES", 512));
        return space.sampleSites(count, prng);
    }();
    return sites;
}

void
BM_CampaignSerial(benchmark::State &state)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    faults::Injector injector(setup.program, setup.launch, setup.memory,
                              setup.outputs);
    const auto &sites = campaignSites();

    std::uint64_t runs = 0;
    for (auto _ : state) {
        auto result = faults::reference::runSiteList(injector, sites);
        benchmark::DoNotOptimize(result.runs);
        runs += result.runs;
    }
    state.counters["sites/s"] = benchmark::Counter(
        static_cast<double>(runs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CampaignSerial)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_CampaignParallel(benchmark::State &state)
{
    fsp::setVerboseLogging(false); // keep per-iteration reports quiet
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    faults::CampaignOptions options;
    options.workers = static_cast<unsigned>(state.range(0));
    faults::CampaignEngine engine(setup.program, setup.launch,
                                    setup.memory, setup.outputs,
                                    options);
    const auto &sites = campaignSites();

    std::uint64_t runs = 0;
    for (auto _ : state) {
        auto result = engine.run(sites);
        benchmark::DoNotOptimize(result.runs);
        runs += result.runs;
    }
    state.counters["sites/s"] = benchmark::Counter(
        static_cast<double>(runs), benchmark::Counter::kIsRate);
    state.counters["workers"] = static_cast<double>(options.workers);
}
BENCHMARK(BM_CampaignParallel)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/**
 * Observer overhead: the same engine campaign with no observer vs the
 * full metrics bridge attached.  Compare the two rows directly; the
 * observed row also reports how many events landed in the registry.
 * (Per-site wall-clock reads only happen while an observer is
 * attached, so the bare row is the engine's true hot path.)
 */
void
BM_CampaignObserved(benchmark::State &state, bool observed)
{
    fsp::setVerboseLogging(false);
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    metrics::Registry registry;
    faults::MetricsObserver metrics_observer(registry);
    faults::CampaignOptions options;
    options.workers = 4;
    if (observed)
        options.observer = &metrics_observer;
    faults::CampaignEngine engine(setup.program, setup.launch,
                                  setup.memory, setup.outputs, options);
    const auto &sites = campaignSites();

    std::uint64_t runs = 0;
    for (auto _ : state) {
        auto result = engine.run(sites);
        benchmark::DoNotOptimize(result.runs);
        runs += result.runs;
    }
    state.counters["sites/s"] = benchmark::Counter(
        static_cast<double>(runs), benchmark::Counter::kIsRate);
    state.counters["observed"] = observed ? 1.0 : 0.0;
    if (observed) {
        state.counters["eventsInRegistry"] =
            static_cast<double>(registry.counterValue(registry.counter(
                "fsp_campaign_sites_total", "", "outcome=\"masked\"")));
    }
}
BENCHMARK_CAPTURE(BM_CampaignObserved, bare, false)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(BM_CampaignObserved, metrics, true)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/** Deterministic sampled site list for an arbitrary kernel. */
std::vector<faults::FaultSite>
sampledSites(const char *kernel)
{
    const apps::KernelSpec *spec = apps::findKernel(kernel);
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    sim::Executor executor(setup.program, setup.launch);
    faults::FaultSpace space(executor, setup.memory);
    Prng prng(7);
    auto count =
        static_cast<std::size_t>(fsp::envU64("FSP_BENCH_SITES", 256));
    return space.sampleSites(count, prng);
}

/**
 * Nearest-rank percentile of a sample set (0 when empty).  The
 * campaign benches publish p50/p99 per-iteration rates alongside the
 * mean so tail behaviour (allocator hiccups, page-cache pressure,
 * noisy neighbours) is visible in the JSON export.
 */
double
percentileOf(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    const std::size_t idx = rank == 0 ? 0 : rank - 1;
    std::nth_element(samples.begin(),
                     samples.begin() + static_cast<std::ptrdiff_t>(idx),
                     samples.end());
    return samples[idx];
}

/**
 * Sliced vs full-grid injection throughput for one kernel.  The same
 * site list is classified with the engine's per-site strategy either
 * permitted (sliced) or forced off (fullgrid); outcomes are identical,
 * only the work per run changes.
 */
void
BM_CampaignEngine(benchmark::State &state, const char *kernel,
                  bool sliced)
{
    const apps::KernelSpec *spec = apps::findKernel(kernel);
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    faults::Injector injector(setup.program, setup.launch, setup.memory,
                              setup.outputs);
    injector.setSlicingEnabled(sliced);
    const auto sites = sampledSites(kernel);

    bench::PerfCounters perf;
    std::vector<double> iter_rates; // per-iteration sites/s
    std::uint64_t runs = 0;
    for (auto _ : state) {
        const auto t0 = std::chrono::steady_clock::now();
        perf.start();
        auto result = faults::reference::runSiteList(injector, sites);
        perf.stop();
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        benchmark::DoNotOptimize(result.runs);
        runs += result.runs;
        if (secs > 0.0)
            iter_rates.push_back(
                static_cast<double>(result.runs) / secs);
    }

    const faults::InjectionStats &stats = injector.stats();
    auto per_run = [&](std::uint64_t total) {
        return stats.injections > 0
                   ? static_cast<double>(total) /
                         static_cast<double>(stats.injections)
                   : 0.0;
    };
    state.counters["sites/s"] = benchmark::Counter(
        static_cast<double>(runs), benchmark::Counter::kIsRate);
    state.counters["sites/s_p50"] = percentileOf(iter_rates, 0.50);
    state.counters["sites/s_p99"] = percentileOf(iter_rates, 0.99);
    state.counters["restoredB/run"] = per_run(stats.restoredBytes);
    state.counters["ctas/run"] = per_run(stats.executedCtas);
    state.counters["sliced"] =
        static_cast<double>(injector.slicingActive());
    // Microarchitectural columns, emitted only where the PMU is
    // reachable (bare metal; most VMs and containers fall back).
    if (perf.available() && runs > 0) {
        const double n = static_cast<double>(runs);
        state.counters["cyc/site"] =
            static_cast<double>(perf.total().cycles) / n;
        state.counters["cacheMiss/site"] =
            static_cast<double>(perf.total().cacheMisses) / n;
        state.counters["branchMiss/site"] =
            static_cast<double>(perf.total().branchMisses) / n;
    }
}
BENCHMARK_CAPTURE(BM_CampaignEngine, GEMM_sliced, "GEMM/K1", true)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(BM_CampaignEngine, GEMM_fullgrid, "GEMM/K1", false)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(BM_CampaignEngine, MVT_sliced, "MVT/K1", true)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(BM_CampaignEngine, MVT_fullgrid, "MVT/K1", false)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(BM_CampaignEngine, PathFinder_sliced, "PathFinder/K1",
                  true)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(BM_CampaignEngine, PathFinder_fullgrid, "PathFinder/K1",
                  false)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/**
 * Checkpointed temporal replay vs from-start execution for one kernel.
 * The same site list is classified with golden-run checkpoints either
 * used (on) or disabled (off); outcomes are identical, only the golden
 * prefix each run re-executes changes.  With @p late, each site's
 * dynamic index is remapped into the late half of its thread's golden
 * trace, the regime where replay saves the most work; sites are
 * processed in (cta, thread, dynIndex) order either way, matching the
 * parallel engine's chunk-local ordering.
 */
void
BM_CheckpointReplay(benchmark::State &state, const char *kernel,
                    bool checkpoints, bool late)
{
    const apps::KernelSpec *spec = apps::findKernel(kernel);
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    faults::InjectorOptions options;
    options.checkpoints = checkpoints;
    faults::Injector injector(setup.program, setup.launch, setup.memory,
                              setup.outputs, options);
    auto sites = sampledSites(kernel);
    if (late) {
        // Replace the uniform sample with equally many valid sites
        // drawn from the late half of each thread's golden trace.
        // (Remapping indices blindly could land on instructions with
        // no destination register, where the fault never fires.)
        sim::Executor executor(setup.program, setup.launch);
        faults::FaultSpace space(executor, setup.memory);
        Prng prng(11);
        std::vector<faults::FaultSite> late_sites;
        for (int round = 0;
             round < 16 && late_sites.size() < sites.size(); ++round) {
            for (auto &s : space.sampleSites(sites.size() * 2, prng)) {
                if (2 * s.dynIndex >= injector.goldenICnt(s.thread) &&
                    late_sites.size() < sites.size())
                    late_sites.push_back(s);
            }
        }
        sites = std::move(late_sites);
    }
    const unsigned block = setup.launch.block.count();
    std::sort(sites.begin(), sites.end(),
              [block](const faults::FaultSite &a,
                      const faults::FaultSite &b) {
                  return std::tuple(a.thread / block, a.thread,
                                    a.dynIndex) <
                         std::tuple(b.thread / block, b.thread,
                                    b.dynIndex);
              });

    std::uint64_t runs = 0;
    for (auto _ : state) {
        auto result = faults::reference::runSiteList(injector, sites);
        benchmark::DoNotOptimize(result.runs);
        runs += result.runs;
    }

    const faults::InjectionStats &stats = injector.stats();
    auto per_run = [&](std::uint64_t total) {
        return stats.injections > 0
                   ? static_cast<double>(total) /
                         static_cast<double>(stats.injections)
                   : 0.0;
    };
    state.counters["sites/s"] = benchmark::Counter(
        static_cast<double>(runs), benchmark::Counter::kIsRate);
    state.counters["restores/run"] = per_run(stats.checkpointRestores);
    state.counters["skipped/run"] = per_run(stats.skippedDynInstrs);
    state.counters["ckpt"] =
        static_cast<double>(injector.checkpointsActive());
}
BENCHMARK_CAPTURE(BM_CheckpointReplay, GEMM_ckpt, "GEMM/K1", true, false)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(BM_CheckpointReplay, GEMM_nockpt, "GEMM/K1", false,
                  false)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(BM_CheckpointReplay, GEMM_late_ckpt, "GEMM/K1", true,
                  true)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(BM_CheckpointReplay, GEMM_late_nockpt, "GEMM/K1",
                  false, true)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void
BM_Assembly(benchmark::State &state)
{
    const apps::KernelSpec *spec = apps::findKernel("HotSpot/K1");
    for (auto _ : state) {
        apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
        benchmark::DoNotOptimize(setup.program.size());
    }
}
BENCHMARK(BM_Assembly);

} // namespace

BENCHMARK_MAIN();
