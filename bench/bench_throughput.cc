/**
 * @file
 * Engineering baseline (not a paper artifact): google-benchmark
 * measurements of the substrate -- functional-simulator instruction
 * throughput, injection-run latency, fault-space enumeration, and the
 * pruning pipeline itself.  These numbers bound how large a campaign
 * the harness can sustain.
 */

#include <benchmark/benchmark.h>

#include "analysis/analyzer.hh"
#include "apps/app.hh"
#include "faults/fault_space.hh"
#include "faults/injector.hh"
#include "pruning/pipeline.hh"

namespace {

using namespace fsp;

void
BM_GoldenRun(benchmark::State &state)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    sim::Executor executor(setup.program, setup.launch);

    std::uint64_t instrs = 0;
    for (auto _ : state) {
        sim::GlobalMemory scratch = setup.memory;
        auto result = executor.run(scratch);
        benchmark::DoNotOptimize(result.totalDynInstrs);
        instrs += result.totalDynInstrs;
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GoldenRun);

void
BM_InjectionRun(benchmark::State &state)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    faults::Injector injector(setup.program, setup.launch, setup.memory,
                              setup.outputs);

    faults::FaultSite site{0, 40, 7};
    for (auto _ : state)
        benchmark::DoNotOptimize(injector.inject(site));
    state.counters["runs/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InjectionRun);

void
BM_Enumeration(benchmark::State &state)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    sim::Executor executor(setup.program, setup.launch);

    for (auto _ : state) {
        faults::FaultSpace space(executor, setup.memory);
        benchmark::DoNotOptimize(space.totalSites());
    }
}
BENCHMARK(BM_Enumeration);

void
BM_PruningPipeline(benchmark::State &state)
{
    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
    apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
    sim::Executor executor(setup.program, setup.launch);
    faults::FaultSpace space(executor, setup.memory);

    pruning::PruningConfig config;
    for (auto _ : state) {
        auto result =
            pruning::prunePipeline(executor, setup.memory, space, config);
        benchmark::DoNotOptimize(result.sites.size());
    }
}
BENCHMARK(BM_PruningPipeline);

void
BM_Assembly(benchmark::State &state)
{
    const apps::KernelSpec *spec = apps::findKernel("HotSpot/K1");
    for (auto _ : state) {
        apps::KernelSetup setup = spec->setup(apps::Scale::Small, 42);
        benchmark::DoNotOptimize(setup.program.size());
    }
}
BENCHMARK(BM_Assembly);

} // namespace

BENCHMARK_MAIN();
