/**
 * @file
 * Reproduces Table VI: the effect of instruction-wise pruning per
 * kernel -- the percentage of dynamic instructions pruned as common
 * blocks and the error it introduces into the masked/SDC estimates.
 * The error is isolated by running the pipeline twice (with and
 * without the instruction stage, identical seeds elsewhere) and
 * injecting both pruned spaces.
 *
 * Kernels whose representatives share no usable commonality (single
 * representative, or early-exit + full-thread pairs) are reported as
 * not applicable, exactly as in the paper.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace fsp;

    bench::banner("Table VI",
                  "Instruction-wise pruning: % pruned common "
                  "instructions and introduced error");

    TextTable table({"Application", "Kernel", "% Pruned Common Insn.",
                     "MSK err", "SDC err", "sites w/o -> w/"});

    for (const auto *spec : bench::tableOneKernels()) {
        analysis::KernelAnalysis ka(*spec,
                                    bench::scaleFromEnv(
                                        apps::Scale::Small));

        pruning::PruningConfig with;
        with.seed = bench::masterSeed();
        pruning::PruningConfig without = with;
        without.instruction.enabled = false;

        auto pruned_with = ka.prune(with);
        if (!pruned_with.instrStats.applicable) {
            table.addRow({spec->application, spec->id, "n/a", "-", "-",
                          "-"});
            continue;
        }
        auto pruned_without = ka.prune(without);

        auto est_with = ka.runPrunedCampaign(pruned_with);
        auto est_without = ka.runPrunedCampaign(pruned_without);

        double msk = est_with.fraction(faults::Outcome::Masked) -
                     est_without.fraction(faults::Outcome::Masked);
        double sdc = est_with.fraction(faults::Outcome::SDC) -
                     est_without.fraction(faults::Outcome::SDC);

        table.addRow(
            {spec->application, spec->id,
             fmtPercent(pruned_with.instrStats.prunedFraction(), 2),
             fmtFixed(100.0 * msk, 2) + "%",
             fmtFixed(100.0 * sdc, 2) + "%",
             std::to_string(pruned_without.sites.size()) + " -> " +
                 std::to_string(pruned_with.sites.size())});
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("Paper Table VI averages: 72.94%% pruned, -0.15%% MSK, "
                "-0.10%% SDC across the six\napplicable kernels "
                "(HotSpot, PathFinder, LUD K46, 2DCONV, Gaussian "
                "K2/K126).\n");
    return 0;
}
