/**
 * @file
 * Reproduces Figure 3: CTA grouping from the per-thread dynamic
 * instruction count (iCnt) alone -- a single fault-free profiling run
 * instead of the 300K-injection campaign behind Fig. 2.  For 2DCONV
 * and HotSpot, prints the distribution of thread iCnt per CTA as a
 * boxplot and the resulting CTA group.
 */

#include <cstdio>

#include "bench_util.hh"
#include "pruning/grouping.hh"
#include "util/stats.hh"

namespace {

void
runApp(const char *name)
{
    using namespace fsp;

    const apps::KernelSpec *spec = apps::findKernel(name);
    analysis::KernelAnalysis ka(*spec, bench::scaleFromEnv(
                                           apps::Scale::Paper));

    std::uint64_t block = ka.executor().config().block.count();
    std::uint64_t ctas = ka.executor().config().grid.count();
    const auto &profiles = ka.space().profiles();

    Prng prng(bench::masterSeed());
    auto grouping = pruning::pruneThreads(ka.space(), block, prng);
    std::vector<int> group_of(ctas, -1);
    for (std::size_t g = 0; g < grouping.ctaGroups.size(); ++g) {
        for (std::uint64_t cta : grouping.ctaGroups[g].ctas)
            group_of[cta] = static_cast<int>(g) + 1;
    }

    std::printf("--- %s: %llu CTAs x %llu threads ---\n", name,
                static_cast<unsigned long long>(ctas),
                static_cast<unsigned long long>(block));
    TextTable table({"CTA", "thread iCnt (min/q1/med/q3/max, mean)",
                     "avg iCnt", "group"});
    for (std::uint64_t cta = 0; cta < ctas; ++cta) {
        std::vector<double> icnts;
        for (std::uint64_t t = 0; t < block; ++t) {
            icnts.push_back(static_cast<double>(
                profiles[cta * block + t].iCnt));
        }
        BoxplotSummary s = boxplot(icnts);
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "%5.0f /%5.0f /%5.0f /%5.0f /%5.0f", s.min, s.q1,
                      s.median, s.q3, s.max);
        table.addRow({std::to_string(cta), buf, fmtFixed(s.mean, 1),
                      "C-" + std::to_string(group_of[cta])});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("%zu CTA group(s); one profiling run sufficed.\n\n",
                grouping.ctaGroups.size());
}

} // namespace

int
main()
{
    fsp::bench::banner(
        "Figure 3",
        "CTA grouping from average per-thread dynamic instruction "
        "count (2DCONV and HotSpot)");
    runApp("2DCONV/K1");
    runApp("HotSpot/K1");
    return 0;
}
