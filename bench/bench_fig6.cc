/**
 * @file
 * Reproduces Figure 6: the impact of the number of sampled loop
 * iterations on the outcome distribution, for PathFinder, SYRK, and
 * K-Means K1 (the latter with two different sampling seeds, as in the
 * paper's (c)/(d) panels).  For each num_iter the full pipeline runs
 * with that loop budget and the weighted estimate is printed; the
 * distribution stabilises after a handful of iterations.
 */

#include <cstdio>

#include "bench_util.hh"
#include "util/env.hh"
#include "util/stats.hh"

namespace {

void
runApp(const char *name, std::uint64_t seed, unsigned max_iter)
{
    using namespace fsp;

    const apps::KernelSpec *spec = apps::findKernel(name);
    analysis::KernelAnalysis ka(*spec, bench::scaleFromEnv(
                                           apps::Scale::Small));

    std::printf("--- %s (loop sampling seed %llu) ---\n", name,
                static_cast<unsigned long long>(seed));
    TextTable table({"num_iter", "masked%", "sdc%", "other%", "runs",
                     "L-inf vs prev"});

    std::vector<double> prev;
    for (unsigned n = 1; n <= max_iter; ++n) {
        pruning::PruningConfig config;
        config.seed = seed;
        config.loop.iterations = n;
        auto pruned = ka.prune(config);
        auto estimate = ka.runPrunedCampaign(pruned);
        auto fractions = estimate.fractions();
        double delta = prev.empty() ? 1.0 : linfDistance(prev, fractions);
        table.addRow(
            {std::to_string(n),
             fmtFixed(100.0 * fractions[0], 1),
             fmtFixed(100.0 * fractions[1], 1),
             fmtFixed(100.0 * fractions[2], 1),
             std::to_string(estimate.runs()),
             prev.empty() ? "-" : fmtFixed(100.0 * delta, 2) + " pts"});
        prev = fractions;
    }
    std::printf("%s\n", table.str().c_str());
}

} // namespace

int
main()
{
    using namespace fsp;

    bench::banner("Figure 6",
                  "Outcome distribution vs number of sampled loop "
                  "iterations");

    unsigned max_iter = static_cast<unsigned>(
        envU64("FSP_FIG6_MAX_ITER", 12));
    runApp("PathFinder/K1", bench::masterSeed(), max_iter);
    runApp("SYRK/K1", bench::masterSeed(), max_iter);
    runApp("K-Means/K1", bench::masterSeed(), max_iter);
    runApp("K-Means/K1", bench::masterSeed() + 99, max_iter);

    std::printf("As in the paper, a few sampled iterations suffice; "
                "different seeds converge to the\nsame distribution "
                "(K-Means panels).\n");
    return 0;
}
