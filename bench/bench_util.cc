/**
 * @file
 * Shared bench helper implementation.
 */

#include "bench_util.hh"

#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"
#include "util/stats.hh"

namespace fsp::bench {

apps::Scale
scaleFromEnv(apps::Scale fallback)
{
    const char *raw = std::getenv("FSP_SCALE");
    if (raw == nullptr)
        return fallback;
    std::string value(raw);
    if (value == "paper")
        return apps::Scale::Paper;
    if (value == "small")
        return apps::Scale::Small;
    warn("unknown FSP_SCALE '", value, "'; using default");
    return fallback;
}

std::size_t
baselineRuns(std::size_t fallback)
{
    return static_cast<std::size_t>(envU64("FSP_BASELINE_RUNS", fallback));
}

std::uint64_t
masterSeed()
{
    return envU64("FSP_SEED", 1);
}

faults::CampaignOptions
campaignOptions()
{
    faults::CampaignOptions options;
    options.workers =
        static_cast<unsigned>(envU64("FSP_WORKERS", 0)); // 0 = hardware
    options.chunkSize =
        static_cast<std::size_t>(envU64("FSP_CHUNK", 0)); // 0 = auto
    return options;
}

std::vector<const apps::KernelSpec *>
tableOneKernels()
{
    std::vector<const apps::KernelSpec *> kernels;
    for (const auto &spec : apps::allKernels()) {
        if (spec.application != "NN")
            kernels.push_back(&spec);
    }
    return kernels;
}

void
banner(const std::string &artifact, const std::string &description)
{
    std::printf("================================================="
                "=============================\n");
    std::printf("Reproduction of %s\n", artifact.c_str());
    std::printf("%s\n", description.c_str());
    std::printf("================================================="
                "=============================\n\n");
}

std::string
csvPath(const std::string &name)
{
    const char *dir = std::getenv("FSP_CSV_DIR");
    if (dir == nullptr || *dir == '\0')
        return {};
    return std::string(dir) + "/" + name + ".csv";
}

std::vector<double>
perThreadMaskedFraction(analysis::KernelAnalysis &ka,
                       const std::vector<std::uint64_t> &threads,
                       std::size_t sites_per_thread, std::uint64_t seed)
{
    // One traced run covering every requested thread.
    sim::TraceOptions opts;
    for (std::uint64_t t : threads)
        opts.traceThreads.insert(t);
    sim::GlobalMemory scratch = ka.setup().memory;
    sim::RunResult run = ka.executor().run(scratch, &opts);
    FSP_ASSERT(run.status == sim::RunStatus::Completed,
               "profiling run failed");

    Prng prng(seed);
    std::vector<double> fractions;
    fractions.reserve(threads.size());
    for (std::uint64_t t : threads) {
        auto sites =
            ka.space().threadSites(t, run.trace.dynTraces.at(t));
        Prng thread_prng = prng.fork("thread-" + std::to_string(t));
        std::vector<std::size_t> chosen = thread_prng.sampleWithoutReplacement(
            sites.size(), sites_per_thread);
        faults::OutcomeDist dist;
        for (std::size_t index : chosen)
            dist.add(ka.injector().inject(sites[index]));
        fractions.push_back(dist.fraction(faults::Outcome::Masked));
    }
    return fractions;
}

std::string
boxplotString(const std::vector<double> &values)
{
    BoxplotSummary s = boxplot(values);
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "%5.1f /%5.1f /%5.1f /%5.1f /%5.1f  (mean %5.1f)",
                  100.0 * s.min, 100.0 * s.q1, 100.0 * s.median,
                  100.0 * s.q3, 100.0 * s.max, 100.0 * s.mean);
    return buf;
}

std::string
distTriple(const faults::OutcomeDist &dist)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%5.1f / %5.1f / %5.1f",
                  100.0 * dist.fraction(faults::Outcome::Masked),
                  100.0 * dist.fraction(faults::Outcome::SDC),
                  100.0 * dist.fraction(faults::Outcome::Other));
    return buf;
}

} // namespace fsp::bench
