/**
 * @file
 * Ablation (extension beyond the paper): how many representative
 * threads ("pilots") per thread group are worth injecting?  The paper
 * uses one pilot per group, which makes the estimate inherit one
 * thread's sampling variance when a group is large; Relyzer-style
 * multi-pilot selection trades injections for variance.  For a set of
 * kernels dominated by one large thread group, the estimate error
 * against a fixed random baseline is shown for 1, 2, and 4 pilots.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace fsp;

    std::size_t baseline_runs = bench::baselineRuns(3000);
    bench::banner("Ablation: pilots per thread group (extension)",
                  "Estimate error vs injection cost for 1/2/4 "
                  "representatives per group");

    TextTable table({"Kernel", "pilots", "injections",
                     "masked% (est)", "masked% (baseline)", "|delta|"});

    for (const char *name :
         {"PathFinder/K1", "GEMM/K1", "MVT/K1", "HotSpot/K1"}) {
        analysis::KernelAnalysis ka(*apps::findKernel(name),
                                    apps::Scale::Small);
        auto baseline =
            ka.runBaseline(baseline_runs, bench::masterSeed() + 17);
        double base_masked =
            baseline.dist.fraction(faults::Outcome::Masked);

        for (unsigned pilots : {1u, 2u, 4u}) {
            pruning::PruningConfig config;
            config.seed = bench::masterSeed();
            config.thread.repsPerGroup = pilots;
            auto pruned = ka.prune(config);
            auto estimate = ka.runPrunedCampaign(pruned);
            double est_masked =
                estimate.fraction(faults::Outcome::Masked);
            table.addRow({name, std::to_string(pilots),
                          std::to_string(estimate.runs()),
                          fmtFixed(100.0 * est_masked, 1),
                          fmtFixed(100.0 * base_masked, 1),
                          fmtFixed(100.0 * std::fabs(est_masked -
                                                     base_masked),
                                   2)});
        }
        table.addSeparator();
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("One pilot follows the paper; more pilots shrink the "
                "single-thread variance that\ndominates kernels with "
                "one large thread group, at proportional cost.\n");
    return 0;
}
