/**
 * @file
 * Reproduces Figure 7: outcome distribution by destination-register
 * bit position, split by register type (.u32-style 32-bit registers in
 * four 8-bit sections; 4-bit .pred condition-code registers per flag
 * bit) for 2DCONV and MVT.  Shows the paper's two observations: higher
 * 32-bit sections are less often masked, and only the predicate zero
 * flag produces errors.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "pruning/grouping.hh"
#include "pruning/pipeline.hh"
#include "util/env.hh"

namespace {

void
runApp(const char *name)
{
    using namespace fsp;

    const apps::KernelSpec *spec = apps::findKernel(name);
    analysis::KernelAnalysis ka(*spec, bench::scaleFromEnv(
                                           apps::Scale::Small));

    Prng prng(bench::masterSeed());
    auto grouping = pruning::pruneThreads(
        ka.space(), ka.executor().config().block.count(), prng);
    auto plans = pruning::buildThreadPlans(ka.executor(),
                                           ka.setup().memory, grouping);

    // Bucket sites: 32-bit registers by 8-bit section; predicate CC
    // registers by flag bit.
    struct Bucket
    {
        std::vector<faults::FaultSite> sites;
    };
    std::map<std::string, Bucket> buckets;
    auto bucket_label = [](unsigned dest_bits, std::uint32_t bit) {
        if (dest_bits == 4)
            return std::string(".pred bit ") + std::to_string(bit);
        unsigned section = bit / 8;
        return std::string(".u32 bits ") + std::to_string(section * 8) +
               "-" + std::to_string(section * 8 + 7);
    };
    for (const auto &plan : plans) {
        for (std::size_t j = 0; j < plan.trace.size(); ++j) {
            unsigned bits = plan.trace[j].destBits;
            if (bits != 4 && bits != 32)
                continue;
            for (std::uint32_t bit = 0; bit < bits; ++bit) {
                buckets[bucket_label(bits, bit)].sites.push_back(
                    {plan.thread, j, bit});
            }
        }
    }

    std::size_t cap =
        static_cast<std::size_t>(envU64("FSP_FIG7_SITES", 200));

    std::printf("--- %s ---\n", name);
    TextTable table({"Register / bits", "masked%", "sdc%", "other%",
                     "runs"});
    for (auto &[label, bucket] : buckets) {
        Prng site_prng = prng.fork("bucket-" + label);
        auto chosen = site_prng.sampleWithoutReplacement(
            bucket.sites.size(), cap);
        faults::OutcomeDist dist;
        for (std::size_t index : chosen)
            dist.add(ka.injector().inject(bucket.sites[index]));
        table.addRow({label,
                      fmtFixed(100.0 * dist.fraction(
                                   faults::Outcome::Masked),
                               1),
                      fmtFixed(100.0 * dist.fraction(
                                   faults::Outcome::SDC),
                               1),
                      fmtFixed(100.0 * dist.fraction(
                                   faults::Outcome::Other),
                               1),
                      std::to_string(dist.runs())});
    }
    std::printf("%s\n", table.str().c_str());
}

} // namespace

int
main()
{
    fsp::bench::banner(
        "Figure 7",
        "Outcome distribution by destination bit position and register "
        "type (2DCONV and MVT)");
    runApp("2DCONV/K1");
    runApp("MVT/K1");
    std::printf("Expected shape (paper): masked%% falls with higher "
                ".u32 sections; only the .pred\nzero flag (bit 0) "
                "produces non-masked outcomes.\n");
    return 0;
}
