/**
 * @file
 * Shared helpers for the per-table/per-figure bench harnesses: scale
 * and sample-size knobs (overridable via environment variables so any
 * experiment can be scaled back up towards paper fidelity), and small
 * formatting utilities.
 *
 * Environment knobs honoured by every bench:
 *   FSP_SCALE=paper|small   geometry preset (default: per-bench choice)
 *   FSP_BASELINE_RUNS=N     random-baseline campaign size
 *   FSP_SEED=N              master seed for campaigns/pruning
 *   FSP_WORKERS=N           campaign worker threads (default: hardware)
 *   FSP_CHUNK=N             campaign chunk size (default: auto)
 */

#ifndef FSP_BENCH_BENCH_UTIL_HH
#define FSP_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "apps/app.hh"
#include "faults/outcome.hh"
#include "faults/campaign_engine.hh"
#include "util/env.hh"
#include "util/table.hh"

namespace fsp::bench {

/** Resolve the geometry scale: FSP_SCALE overrides @p fallback. */
apps::Scale scaleFromEnv(apps::Scale fallback);

/** Baseline campaign size (FSP_BASELINE_RUNS, default @p fallback). */
std::size_t baselineRuns(std::size_t fallback);

/** Master seed (FSP_SEED, default 1). */
std::uint64_t masterSeed();

/**
 * Campaign parallelism from the environment: FSP_WORKERS worker
 * threads (0/unset = hardware default) and FSP_CHUNK chunk size
 * (0/unset = auto).  Campaign results are bit-identical to serial at
 * any setting, so benches use this unconditionally.
 */
faults::CampaignOptions campaignOptions();

/** The 16 evaluated kernels of Table I (excludes NN). */
std::vector<const apps::KernelSpec *> tableOneKernels();

/** Print a bench banner with the paper artifact being reproduced. */
void banner(const std::string &artifact, const std::string &description);

/**
 * Destination path for a bench's machine-readable export: when
 * FSP_CSV_DIR is set, "<dir>/<name>.csv"; empty otherwise.
 */
std::string csvPath(const std::string &name);

/** "62.4 / 30.1 / 7.5" masked/sdc/other percentage triple. */
std::string distTriple(const faults::OutcomeDist &dist);

/**
 * Measure the masked-output fraction of individual threads by
 * injecting a random sample of each thread's own fault sites (used by
 * the Fig. 2 and Fig. 4 reproductions).
 *
 * @param ka kernel analysis context (injector is created on demand).
 * @param threads global thread ids to measure.
 * @param sites_per_thread injections per thread.
 * @param seed sampling seed.
 * @return masked fraction per thread, in the order of @p threads.
 */
std::vector<double>
perThreadMaskedFraction(analysis::KernelAnalysis &ka,
                        const std::vector<std::uint64_t> &threads,
                        std::size_t sites_per_thread, std::uint64_t seed);

/** Render a boxplot summary as "min/q1/med/q3/max (mean)". */
std::string boxplotString(const std::vector<double> &values);

} // namespace fsp::bench

#endif // FSP_BENCH_BENCH_UTIL_HH
