/**
 * @file
 * Reproduces Table II: statistical sample sizing for GEMM.  The fault
 * site population comes from paper-scale enumeration; required sample
 * sizes follow Eq. 4 for the paper's two confidence/error settings;
 * the estimated exhaustive time assumes the paper's nominal one minute
 * per injection run.  The masked-output discrepancy between the large
 * ("ground truth") and the small (95%/3%) campaign is then measured by
 * actually running both at small-scale geometry.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "faults/sampling.hh"

namespace {

std::string
minutesToHuman(double minutes)
{
    if (minutes < 120.0)
        return fsp::fmtFixed(minutes, 0) + " minutes";
    double hours = minutes / 60.0;
    if (hours < 48.0)
        return fsp::fmtFixed(hours, 0) + " hours";
    double days = hours / 24.0;
    if (days < 365.0)
        return fsp::fmtFixed(days, 0) + " days";
    return fsp::fmtFixed(days / 365.0, 0) + " years";
}

} // namespace

int
main()
{
    using namespace fsp;

    bench::banner("Table II",
                  "Required fault-injection runs and masked-output "
                  "discrepancy for GEMM");

    const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");

    // Population size at paper scale (one profiling run).
    analysis::KernelAnalysis paper_ka(*spec, apps::Scale::Paper);
    double population =
        static_cast<double>(paper_ka.space().totalSites());

    std::uint64_t n_998 = faults::requiredSamplesWorstCase(0.998, 0.0063);
    std::uint64_t n_95 = faults::requiredSamplesWorstCase(0.95, 0.03);

    // Measure the masked discrepancy at small scale.  The "ground
    // truth" column uses a campaign scaled by the same ratio the paper
    // uses (60K : 1K ~= 57 : 1), bounded for one-core runtimes.
    std::size_t truth_runs = bench::baselineRuns(6000);
    std::size_t small_runs = std::min<std::size_t>(
        static_cast<std::size_t>(n_95), truth_runs / 2);

    analysis::KernelAnalysis ka(*spec, apps::Scale::Small);
    auto truth = ka.runBaseline(truth_runs, bench::masterSeed());
    auto small = ka.runBaseline(small_runs, bench::masterSeed() + 1);

    TextTable table({"Confidence Interval", "Error Margin", "# Fault Sites",
                     "Estimated Time", "Masked Output (%)"});
    table.addRow({"100%", "0.0%", fmtScientific(population),
                  minutesToHuman(population), "?"});
    table.addRow({"99.8%", "±0.63%", fmtCount(n_998),
                  minutesToHuman(static_cast<double>(n_998)),
                  fmtFixed(100.0 * truth.dist.fraction(
                               faults::Outcome::Masked),
                           1) +
                      "  (measured, n=" + std::to_string(truth_runs) +
                      ")"});
    table.addRow({"95%", "±3.0%", fmtCount(n_95),
                  minutesToHuman(static_cast<double>(n_95)),
                  fmtFixed(100.0 * small.dist.fraction(
                               faults::Outcome::Masked),
                           1) +
                      "  (measured, n=" + std::to_string(small_runs) +
                      ")"});

    std::printf("%s\n", table.str().c_str());
    std::printf("Paper values: 7.73E+08 sites / 1331 years; 60,181 / 40 "
                "days / 24.2%%; 1,062 / 16 hours / 21.6%%.\n");
    std::printf("Estimated times assume the paper's nominal 1 minute "
                "per injection run.\n");
    return 0;
}
