/**
 * @file
 * Reproduces Table VII: loop statistics per kernel -- thread count,
 * total loop iterations of a representative (longest) thread, and the
 * fraction of its dynamic instructions inside loops.  Kernels are
 * printed in the paper's order (sorted by loop-instruction fraction).
 * Profiling-only, so paper-scale geometry is the default.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "pruning/grouping.hh"
#include "pruning/loops.hh"
#include "pruning/pipeline.hh"

int
main()
{
    using namespace fsp;

    apps::Scale scale = bench::scaleFromEnv(apps::Scale::Paper);
    bench::banner("Table VII",
                  "Loop iterations and loop instruction share per "
                  "kernel, scale=" + apps::scaleName(scale));

    struct Row
    {
        std::string app, id;
        std::uint64_t threads;
        std::uint64_t iterations;
        double fraction;
    };
    std::vector<Row> rows;

    for (const auto &spec : apps::allKernels()) {
        analysis::KernelAnalysis ka(spec, scale);
        Prng prng(bench::masterSeed());
        auto grouping = pruning::pruneThreads(
            ka.space(), ka.executor().config().block.count(), prng);
        auto plans = pruning::buildThreadPlans(
            ka.executor(), ka.setup().memory, grouping);

        // Statistics of the longest representative (the thread that
        // exercises every loop).
        const pruning::ThreadPlan *longest = &plans.front();
        for (const auto &plan : plans) {
            if (plan.trace.size() > longest->trace.size())
                longest = &plan;
        }
        auto stats =
            pruning::analyzeLoops(longest->trace, ka.program());
        rows.push_back({spec.application, spec.id,
                        ka.space().threadCount(), stats.loopIterations,
                        stats.loopInstrFraction()});
    }

    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.fraction < b.fraction;
    });

    TextTable table({"Application", "Kernel", "# Thd.", "# Loop Iter.",
                     "% Insn. in Loop"});
    for (const auto &row : rows) {
        table.addRow({row.app, row.id, fmtCount(row.threads),
                      std::to_string(row.iterations),
                      fmtPercent(row.fraction, 2)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("Paper Table VII: loop share ranges from 0%% (HotSpot, "
                "2DCONV, NN, Gaussian, LUD K45)\nthrough 65.79%% (LUD "
                "K46) up to 99.71%% (MVT).\n");
    return 0;
}
