/**
 * @file
 * Thin perf_event_open wrapper for the bench harnesses: counts CPU
 * cycles, cache misses and branch misses for the calling thread
 * between start() and stop().
 *
 * Opening hardware counters can fail for many legitimate reasons --
 * non-Linux builds, perf_event_paranoid, seccomp filters in
 * containers, or a VM without a virtualised PMU.  The wrapper then
 * degrades to available() == false with zero readings instead of
 * failing the bench, so throughput numbers are always produced and
 * the microarchitectural columns appear only where they mean
 * something.
 */

#ifndef FSP_BENCH_PERF_COUNTERS_HH
#define FSP_BENCH_PERF_COUNTERS_HH

#include <cstdint>

namespace fsp::bench {

/** Accumulated hardware-counter readings (zero when unavailable). */
struct PerfSample
{
    std::uint64_t cycles = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t branchMisses = 0;
};

/** RAII owner of one thread's cycle/cache/branch counter set. */
class PerfCounters
{
  public:
    PerfCounters();
    ~PerfCounters();
    PerfCounters(const PerfCounters &) = delete;
    PerfCounters &operator=(const PerfCounters &) = delete;

    /** Did every counter open?  False means total() stays zero. */
    bool available() const { return available_; }

    /** Begin a measurement window (resets nothing already summed). */
    void start();

    /** End the window and fold its counts into total(). */
    void stop();

    /** Counts summed over all start()/stop() windows so far. */
    const PerfSample &total() const { return total_; }

  private:
    int fds_[3] = {-1, -1, -1};
    bool available_ = false;
    PerfSample total_{};
};

} // namespace fsp::bench

#endif // FSP_BENCH_PERF_COUNTERS_HH
