/**
 * @file
 * PerfCounters implementation.  Linux-only by nature; every other
 * platform compiles the graceful-fallback stubs.
 */

#include "perf_counters.hh"

#ifdef __linux__

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>

namespace fsp::bench {

namespace {

/** The three events measured, in fds_[] order. */
constexpr std::uint64_t kEventConfigs[3] = {
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

int
openCounter(std::uint64_t config)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    // Current thread, any CPU, no group leader.
    return static_cast<int>(
        ::syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

} // namespace

PerfCounters::PerfCounters()
{
    available_ = true;
    for (int i = 0; i < 3; ++i) {
        fds_[i] = openCounter(kEventConfigs[i]);
        if (fds_[i] < 0)
            available_ = false;
    }
    // All or nothing: partial counter sets would silently skew
    // ratios like cycles-per-cache-miss.
    if (!available_) {
        for (int &fd : fds_) {
            if (fd >= 0)
                ::close(fd);
            fd = -1;
        }
    }
}

PerfCounters::~PerfCounters()
{
    for (int fd : fds_) {
        if (fd >= 0)
            ::close(fd);
    }
}

void
PerfCounters::start()
{
    if (!available_)
        return;
    for (int fd : fds_) {
        ::ioctl(fd, PERF_EVENT_IOC_RESET, 0);
        ::ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
    }
}

void
PerfCounters::stop()
{
    if (!available_)
        return;
    std::uint64_t counts[3] = {};
    for (int i = 0; i < 3; ++i) {
        ::ioctl(fds_[i], PERF_EVENT_IOC_DISABLE, 0);
        if (::read(fds_[i], &counts[i], sizeof(counts[i])) !=
            static_cast<ssize_t>(sizeof(counts[i]))) {
            counts[i] = 0;
        }
    }
    total_.cycles += counts[0];
    total_.cacheMisses += counts[1];
    total_.branchMisses += counts[2];
}

} // namespace fsp::bench

#else // !__linux__

namespace fsp::bench {

PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;
void PerfCounters::start() {}
void PerfCounters::stop() {}

} // namespace fsp::bench

#endif // __linux__
