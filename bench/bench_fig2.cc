/**
 * @file
 * Reproduces Figure 2: CTA grouping from actual fault-injection
 * outcomes.  For 2DCONV and HotSpot, a sample of threads in every CTA
 * is injected with a sample of its own fault sites; the distribution
 * of per-thread masked-output percentages is printed as a boxplot per
 * CTA.  CTAs with identical distributions form the paper's C-x groups;
 * the iCnt-derived group (the Fig. 3 classifier) is printed alongside
 * to show the two groupings agree.
 */

#include <cstdio>

#include "bench_util.hh"
#include "pruning/grouping.hh"
#include "util/env.hh"

namespace {

void
runApp(const char *name)
{
    using namespace fsp;

    const apps::KernelSpec *spec = apps::findKernel(name);
    analysis::KernelAnalysis ka(*spec, bench::scaleFromEnv(
                                           apps::Scale::Small));

    std::uint64_t block = ka.executor().config().block.count();
    std::uint64_t ctas = ka.executor().config().grid.count();
    std::size_t threads_per_cta = static_cast<std::size_t>(
        envU64("FSP_FIG2_THREADS", 12));
    std::size_t sites_per_thread = static_cast<std::size_t>(
        envU64("FSP_FIG2_SITES", 12));

    // iCnt grouping for the side-by-side comparison.
    Prng gprng(bench::masterSeed());
    auto grouping = pruning::pruneThreads(ka.space(), block, gprng);
    std::vector<int> icnt_group(ctas, -1);
    for (std::size_t g = 0; g < grouping.ctaGroups.size(); ++g) {
        for (std::uint64_t cta : grouping.ctaGroups[g].ctas)
            icnt_group[cta] = static_cast<int>(g) + 1;
    }

    std::printf("--- %s: %llu CTAs x %llu threads; %zu threads/CTA, %zu "
                "injections/thread ---\n",
                name, static_cast<unsigned long long>(ctas),
                static_cast<unsigned long long>(block), threads_per_cta,
                sites_per_thread);
    TextTable table({"CTA", "masked% boxplot (min/q1/med/q3/max)",
                     "iCnt group"});

    Prng prng(bench::masterSeed() + 7);
    for (std::uint64_t cta = 0; cta < ctas; ++cta) {
        Prng cta_prng = prng.fork("cta-" + std::to_string(cta));
        auto offsets = cta_prng.sampleWithoutReplacement(
            block, threads_per_cta);
        std::vector<std::uint64_t> threads;
        for (std::size_t off : offsets)
            threads.push_back(cta * block + off);
        auto fractions = bench::perThreadMaskedFraction(
            ka, threads, sites_per_thread,
            bench::masterSeed() + cta);
        table.addRow({std::to_string(cta),
                      bench::boxplotString(fractions),
                      "C-" + std::to_string(icnt_group[cta])});
    }
    std::printf("%s\n", table.str().c_str());
}

} // namespace

int
main()
{
    fsp::bench::banner(
        "Figure 2",
        "CTA grouping from per-thread fault-injection outcomes "
        "(2DCONV and HotSpot)");
    runApp("2DCONV/K1");
    runApp("HotSpot/K1");
    std::printf("CTAs sharing a boxplot shape share an iCnt group: the "
                "cheap classifier of Fig. 3\nrecovers the grouping that "
                "a full injection campaign would produce.\n");
    return 0;
}
