/**
 * @file
 * Reproduces Figure 10: the progressive fault-site reduction.  For
 * every kernel, prints the number of fault sites surviving each
 * pruning stage (normalised to the exhaustive space, log10 like the
 * paper's axis) and the final pruned count next to the statistical
 * baseline size -- the paper's last two annotated bars.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "util/csv.hh"
#include "util/thread_pool.hh"

namespace {

std::string
logNorm(std::uint64_t sites, std::uint64_t exhaustive)
{
    if (sites == 0)
        return "-inf";
    double norm = static_cast<double>(sites) /
                  static_cast<double>(exhaustive);
    return fsp::fmtFixed(std::log10(norm), 2);
}

} // namespace

int
main()
{
    using namespace fsp;

    std::size_t baseline_runs = bench::baselineRuns(3000);
    bench::banner("Figure 10",
                  "Fault-site reduction per progressive pruning stage "
                  "(log10 of the normalised count)");

    TextTable table({"Kernel", "Exhaustive", "+Thread", "+Insn",
                     "+Loop", "+Bit", "final", "baseline",
                     "reduction"});
    CsvWriter csv({"kernel", "exhaustive", "after_thread",
                   "after_instruction", "after_loop", "after_bit"});

    // Per-kernel pruning runs are independent and individually seeded,
    // so fan them out over the pool (FSP_WORKERS); stage counts are
    // collected per index and rendered in Table I order.
    auto kernels = bench::tableOneKernels();
    std::vector<pruning::StageCounts> counts(kernels.size());
    ThreadPool pool;
    pool.parallelFor(kernels.size(), [&](std::size_t i, unsigned) {
        analysis::KernelAnalysis ka(*kernels[i],
                                    bench::scaleFromEnv(
                                        apps::Scale::Small));
        pruning::PruningConfig config;
        config.seed = bench::masterSeed();
        counts[i] = ka.prune(config).counts;
    });

    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const auto *spec = kernels[i];
        const auto &c = counts[i];

        double reduction = static_cast<double>(c.exhaustive) /
                           static_cast<double>(c.afterBit);
        table.addRow({spec->fullName(), fmtCount(c.exhaustive),
                      logNorm(c.afterThread, c.exhaustive),
                      logNorm(c.afterInstruction, c.exhaustive),
                      logNorm(c.afterLoop, c.exhaustive),
                      logNorm(c.afterBit, c.exhaustive),
                      fmtCount(c.afterBit), fmtCount(baseline_runs),
                      fmtFixed(std::log10(reduction), 1) +
                          " orders"});
        csv.addRow({spec->fullName(), std::to_string(c.exhaustive),
                    std::to_string(c.afterThread),
                    std::to_string(c.afterInstruction),
                    std::to_string(c.afterLoop),
                    std::to_string(c.afterBit)});
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("Columns +Thread..+Bit are log10(surviving/exhaustive); "
                "0 means no reduction.\nAt paper-scale geometry "
                "(FSP_SCALE=paper) the exhaustive space grows by 2-4 "
                "orders\nwhile the pruned count stays in the hundreds, "
                "matching the paper's up-to-7-orders claim.\n");
    std::string csv_path = bench::csvPath("fig10");
    if (!csv_path.empty() && csv.writeFile(csv_path))
        std::printf("CSV written to %s\n", csv_path.c_str());
    return 0;
}
