/**
 * @file
 * Reproduces Figure 9: the headline accuracy result.  For every
 * evaluated kernel, the full progressive pruning pipeline runs, its
 * (much smaller) weighted fault-site list is injected exhaustively,
 * and the resulting error-resilience profile is compared against a
 * statistical random-sampling baseline (the practical stand-in for
 * ground truth, paper section II-D).
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "util/csv.hh"

int
main()
{
    using namespace fsp;

    std::size_t baseline_runs = bench::baselineRuns(3000);
    bench::banner("Figure 9",
                  "Error resilience of progressive pruning vs the "
                  "random baseline (" +
                      std::to_string(baseline_runs) + " runs/kernel)");

    TextTable table({"Kernel", "pruned msk/sdc/other",
                     "baseline msk/sdc/other", "|d.msk|", "|d.sdc|",
                     "|d.oth|", "pruned runs"});
    CsvWriter csv({"kernel", "pruned_masked", "pruned_sdc",
                   "pruned_other", "baseline_masked", "baseline_sdc",
                   "baseline_other", "pruned_runs", "baseline_runs"});

    double sum_msk = 0.0, sum_sdc = 0.0, sum_oth = 0.0;
    std::size_t kernels = 0;

    for (const auto *spec : bench::tableOneKernels()) {
        analysis::KernelAnalysis ka(*spec,
                                    bench::scaleFromEnv(
                                        apps::Scale::Small));

        pruning::PruningConfig config;
        config.seed = bench::masterSeed();
        auto pruned = ka.prune(config);
        // Parallel campaigns: results are bit-identical to the serial
        // drivers, only wall-clock changes (FSP_WORKERS/FSP_CHUNK).
        auto options = bench::campaignOptions();
        auto estimate = ka.runPrunedCampaign(pruned, options);
        auto baseline =
            ka.runBaseline(baseline_runs, bench::masterSeed() + 17,
                           options);

        double d_msk =
            std::fabs(estimate.fraction(faults::Outcome::Masked) -
                      baseline.dist.fraction(faults::Outcome::Masked));
        double d_sdc =
            std::fabs(estimate.fraction(faults::Outcome::SDC) -
                      baseline.dist.fraction(faults::Outcome::SDC));
        double d_oth =
            std::fabs(estimate.fraction(faults::Outcome::Other) -
                      baseline.dist.fraction(faults::Outcome::Other));
        sum_msk += d_msk;
        sum_sdc += d_sdc;
        sum_oth += d_oth;
        kernels++;

        table.addRow({spec->fullName(), bench::distTriple(estimate),
                      bench::distTriple(baseline.dist),
                      fmtFixed(100.0 * d_msk, 2),
                      fmtFixed(100.0 * d_sdc, 2),
                      fmtFixed(100.0 * d_oth, 2),
                      std::to_string(estimate.runs())});
        csv.addRow(
            {spec->fullName(),
             fmtFixed(estimate.fraction(faults::Outcome::Masked), 6),
             fmtFixed(estimate.fraction(faults::Outcome::SDC), 6),
             fmtFixed(estimate.fraction(faults::Outcome::Other), 6),
             fmtFixed(baseline.dist.fraction(faults::Outcome::Masked), 6),
             fmtFixed(baseline.dist.fraction(faults::Outcome::SDC), 6),
             fmtFixed(baseline.dist.fraction(faults::Outcome::Other), 6),
             std::to_string(estimate.runs()),
             std::to_string(baseline.runs)});
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("average |difference|: masked %.2f, sdc %.2f, other "
                "%.2f percentage points\n",
                100.0 * sum_msk / static_cast<double>(kernels),
                100.0 * sum_sdc / static_cast<double>(kernels),
                100.0 * sum_oth / static_cast<double>(kernels));
    std::printf("(paper Fig. 9 averages: 1.68 / 1.90 / 1.64 points "
                "against a 60K-run baseline)\n");
    std::string csv_path = bench::csvPath("fig9");
    if (!csv_path.empty() && csv.writeFile(csv_path))
        std::printf("CSV written to %s\n", csv_path.c_str());
    return 0;
}
