/**
 * @file
 * Reproduces Table I: per-kernel thread counts and the total number of
 * single-bit fault sites (Eq. 1), from one fault-free profiling run per
 * kernel at paper-scale geometry.  The paper's reported values are
 * printed alongside for comparison; absolute counts differ (our
 * kernels are re-implementations, not the original CUDA binaries) but
 * the magnitudes and the ranking track Table I.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "faults/fault_space.hh"

namespace {

/** Paper-reported fault-site totals (Table I rightmost column). */
const std::map<std::string, double> kPaperSites = {
    {"HotSpot/K1", 3.44e7},   {"K-Means/K1", 1.47e7},
    {"K-Means/K2", 9.67e7},   {"Gaussian/K1", 1.63e5},
    {"Gaussian/K2", 4.92e6},  {"Gaussian/K125", 1.09e5},
    {"Gaussian/K126", 8.79e5}, {"PathFinder/K1", 2.77e7},
    {"LUD/K44", 1.75e6},      {"LUD/K45", 6.84e5},
    {"LUD/K46", 5.26e5},      {"2DCONV/K1", 6.32e6},
    {"MVT/K1", 6.83e7},       {"2MM/K1", 5.55e8},
    {"GEMM/K1", 6.23e8},      {"SYRK/K1", 6.23e8},
};

} // namespace

int
main()
{
    using namespace fsp;

    apps::Scale scale = bench::scaleFromEnv(apps::Scale::Paper);
    bench::banner("Table I",
                  "Threads and total single-bit fault sites per kernel "
                  "(Eq. 1), scale=" + apps::scaleName(scale));

    TextTable table({"Suite", "Application", "Kernel", "ID", "#Threads",
                     "#Fault Sites", "Paper sites", "#Dyn Instrs"});

    std::string last_suite;
    for (const auto *spec : bench::tableOneKernels()) {
        analysis::KernelAnalysis ka(*spec, scale);
        const auto &space = ka.space();
        if (!last_suite.empty() && spec->suite != last_suite)
            table.addSeparator();
        last_suite = spec->suite;
        auto paper = kPaperSites.find(spec->fullName());
        table.addRow({spec->suite, spec->application, spec->kernelName,
                      spec->id, fmtCount(space.threadCount()),
                      fmtScientific(
                          static_cast<double>(space.totalSites())),
                      paper != kPaperSites.end()
                          ? fmtScientific(paper->second)
                          : "-",
                      fmtCount(space.totalDynInstrs())});
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("Injecting one fault per site is intractable (paper "
                "section II-D):\neven at one minute per run, GEMM's "
                "space alone needs centuries of compute.\n");
    return 0;
}
