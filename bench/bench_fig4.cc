/**
 * @file
 * Reproduces Figure 4: thread grouping *inside* one CTA.  For one CTA
 * of 2DCONV and of HotSpot, prints each thread's measured
 * masked-output percentage (blue dots in the paper) next to its
 * dynamic instruction count (red dots), showing that threads with the
 * same iCnt share the same resilience level -- the justification for
 * iCnt-keyed thread groups.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "util/env.hh"
#include "util/stats.hh"

namespace {

void
runApp(const char *name, std::uint64_t cta)
{
    using namespace fsp;

    const apps::KernelSpec *spec = apps::findKernel(name);
    analysis::KernelAnalysis ka(*spec, bench::scaleFromEnv(
                                           apps::Scale::Small));
    std::uint64_t block = ka.executor().config().block.count();
    std::size_t sites_per_thread = static_cast<std::size_t>(
        envU64("FSP_FIG4_SITES", 16));

    std::vector<std::uint64_t> threads;
    for (std::uint64_t t = 0; t < block; ++t)
        threads.push_back(cta * block + t);

    auto fractions = bench::perThreadMaskedFraction(
        ka, threads, sites_per_thread, bench::masterSeed());
    const auto &profiles = ka.space().profiles();

    std::printf("--- %s, CTA %llu (%zu injections per thread) ---\n",
                name, static_cast<unsigned long long>(cta),
                sites_per_thread);
    TextTable table({"Thread", "iCnt", "masked%"});
    for (std::size_t i = 0; i < threads.size(); ++i) {
        table.addRow({std::to_string(threads[i]),
                      std::to_string(profiles[threads[i]].iCnt),
                      fmtFixed(100.0 * fractions[i], 1)});
    }
    std::printf("%s\n", table.str().c_str());

    // Per-iCnt summary: mean masked% of each iCnt class.
    std::map<std::uint64_t, std::vector<double>> by_icnt;
    for (std::size_t i = 0; i < threads.size(); ++i)
        by_icnt[profiles[threads[i]].iCnt].push_back(fractions[i]);
    std::printf("iCnt classes in this CTA:\n");
    for (const auto &[icnt, values] : by_icnt) {
        std::printf("  iCnt %4llu: %3zu threads, mean masked %5.1f%%, "
                    "stddev %4.1f\n",
                    static_cast<unsigned long long>(icnt), values.size(),
                    100.0 * mean(values), 100.0 * stddev(values));
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    fsp::bench::banner(
        "Figure 4",
        "Per-thread masked% vs iCnt inside one CTA (2DCONV and "
        "HotSpot): equal iCnt => equal resilience class");
    runApp("2DCONV/K1", 1);
    runApp("HotSpot/K1", 0);
    return 0;
}
