/**
 * @file
 * Diagnostic companion to the paper's section III-B1 (not a numbered
 * artifact): outcome distribution by instruction class for a set of
 * kernels.  The paper's CTA study picks target instructions across
 * memory / arithmetic / logic / special classes; this bench shows how
 * differently those classes behave under injection -- the reason a
 * diverse target set matters.
 */

#include <cstdio>

#include "analysis/breakdown.hh"
#include "bench_util.hh"
#include "util/env.hh"

int
main()
{
    using namespace fsp;

    bench::banner("Instruction-class breakdown (diagnostic)",
                  "Outcome distribution by instruction class, per "
                  "kernel (section III-B1 companion)");

    std::size_t per_class = static_cast<std::size_t>(
        envU64("FSP_BREAKDOWN_SITES", 300));

    for (const char *name :
         {"HotSpot/K1", "2DCONV/K1", "K-Means/K2", "GEMM/K1"}) {
        analysis::KernelAnalysis ka(*apps::findKernel(name),
                                    bench::scaleFromEnv(
                                        apps::Scale::Small));
        auto breakdown = analysis::outcomeByInstrClass(
            ka, per_class, bench::masterSeed());

        std::printf("--- %s ---\n", name);
        TextTable table({"class", "masked%", "sdc%", "other%", "runs",
                         "bucket sites"});
        for (const auto &[cls, entry] : breakdown.classes) {
            table.addRow(
                {analysis::instrClassName(cls),
                 fmtFixed(100.0 * entry.dist.fraction(
                              faults::Outcome::Masked),
                          1),
                 fmtFixed(100.0 * entry.dist.fraction(
                              faults::Outcome::SDC),
                          1),
                 fmtFixed(100.0 * entry.dist.fraction(
                              faults::Outcome::Other),
                          1),
                 std::to_string(entry.dist.runs()),
                 fmtCount(entry.bucketSites)});
        }
        std::printf("%s\n", table.str().c_str());
    }

    std::printf("Memory-class faults skew towards crashes (corrupted "
                "addresses); compare-class\nfaults concentrate control "
                "errors; data movement is the most maskable.\n");
    return 0;
}
