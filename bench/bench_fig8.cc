/**
 * @file
 * Reproduces Figure 8: the impact of bit-wise pruning on the outcome
 * distribution for 2DCONV and MVT -- the pipeline runs with 4, 8, 16
 * sampled bit positions and with all bits, and the masked/SDC
 * estimates are compared.  As in the paper, 16 sampled bits already
 * track the all-bits distribution closely.
 */

#include <cstdio>

#include "bench_util.hh"

namespace {

void
runApp(const char *name)
{
    using namespace fsp;

    const apps::KernelSpec *spec = apps::findKernel(name);
    analysis::KernelAnalysis ka(*spec, bench::scaleFromEnv(
                                           apps::Scale::Small));

    std::printf("--- %s ---\n", name);
    TextTable table({"# Sampled Bit Positions", "masked%", "sdc%",
                     "other%", "runs"});
    for (unsigned samples : {4u, 8u, 16u, 0u}) {
        pruning::PruningConfig config;
        config.seed = bench::masterSeed();
        config.bit.samples = samples;
        // The paper studies the bit dimension with every register bit
        // of the (thread/instruction/loop-)pruned space as reference.
        auto pruned = ka.prune(config);
        auto estimate = ka.runPrunedCampaign(pruned);
        table.addRow({samples == 0 ? "All" : std::to_string(samples),
                      fmtFixed(100.0 * estimate.fraction(
                                   faults::Outcome::Masked),
                               1),
                      fmtFixed(100.0 * estimate.fraction(
                                   faults::Outcome::SDC),
                               1),
                      fmtFixed(100.0 * estimate.fraction(
                                   faults::Outcome::Other),
                               1),
                      std::to_string(estimate.runs())});
    }
    std::printf("%s\n", table.str().c_str());
}

} // namespace

int
main()
{
    fsp::bench::banner("Figure 8",
                       "Outcome distribution vs number of sampled bit "
                       "positions (2DCONV and MVT)");
    runApp("2DCONV/K1");
    runApp("MVT/K1");
    std::printf("Percentages stabilise by 16 sampled bits (paper: "
                "\"sampling 16 bits is promising\").\n");
    return 0;
}
