/**
 * @file
 * Reproduces Tables III and IV: the hierarchical CTA-group /
 * thread-group decomposition for 2DCONV (Table III) and HotSpot
 * (Table IV): per CTA group its average thread iCnt and CTA share, and
 * per thread group its exact iCnt and thread share within the group.
 */

#include <cstdio>

#include "bench_util.hh"
#include "pruning/grouping.hh"

namespace {

void
runApp(const char *name, const char *artifact)
{
    using namespace fsp;

    const apps::KernelSpec *spec = apps::findKernel(name);
    analysis::KernelAnalysis ka(*spec, bench::scaleFromEnv(
                                           apps::Scale::Paper));
    std::uint64_t block = ka.executor().config().block.count();
    std::uint64_t ctas = ka.executor().config().grid.count();

    Prng prng(bench::masterSeed());
    auto grouping = pruning::pruneThreads(ka.space(), block, prng);

    std::printf("--- %s (%s) ---\n", artifact, name);
    TextTable table({"CTA Grp.", "Avg. iCnt", "CTA Proportion",
                     "Thd. Grp.", "Thd. iCnt", "Thd. Proportion"});
    for (std::size_t g = 0; g < grouping.ctaGroups.size(); ++g) {
        const auto &cg = grouping.ctaGroups[g];
        std::uint64_t group_threads = cg.ctas.size() * block;
        bool first = true;
        for (std::size_t t = 0; t < cg.threadGroups.size(); ++t) {
            const auto &tg = cg.threadGroups[t];
            table.addRow(
                {first ? "C-" + std::to_string(g + 1) : "",
                 first ? fmtFixed(cg.avgICnt, 1) : "",
                 first ? fmtPercent(static_cast<double>(cg.ctas.size()) /
                                        static_cast<double>(ctas))
                       : "",
                 "T-" + std::to_string(g + 1) + std::to_string(t + 1),
                 std::to_string(tg.iCnt),
                 fmtPercent(static_cast<double>(tg.threads.size()) /
                            static_cast<double>(group_threads))});
            first = false;
        }
        table.addSeparator();
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("Representative threads needed: %llu of %llu\n\n",
                static_cast<unsigned long long>(
                    grouping.representativeCount()),
                static_cast<unsigned long long>(
                    ka.space().threadCount()));
}

} // namespace

int
main()
{
    fsp::bench::banner("Tables III and IV",
                       "CTA and thread groups guided by iCnt for 2DCONV "
                       "and HotSpot");
    runApp("2DCONV/K1", "Table III");
    runApp("HotSpot/K1", "Table IV");
    return 0;
}
