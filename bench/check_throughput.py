#!/usr/bin/env python3
"""Throughput regression gate for the CI bench smoke.

Usage: check_throughput.py <benchmark-json> <baseline-json>

Reads a google-benchmark JSON export and a committed baseline file
(bench/throughput_baseline.json) and fails when any floored user
counter comes in below its minimum.  When a benchmark ran with
repetitions, the median aggregate row is preferred over raw
iterations; otherwise the plain row is used.
"""

import json
import sys


def pick_row(benchmarks, name):
    """The median aggregate for *name* if present, else the raw row."""
    median = None
    plain = None
    for row in benchmarks:
        if row.get("name") == name + "_median":
            median = row
        elif row.get("name") == name and row.get("run_type") != "aggregate":
            plain = row
    return median if median is not None else plain


def main(argv):
    if len(argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    with open(argv[1]) as f:
        report = json.load(f)
    with open(argv[2]) as f:
        baseline = json.load(f)

    benchmarks = report.get("benchmarks", [])
    failures = []
    for name, floor in baseline["floors"].items():
        row = pick_row(benchmarks, name)
        if row is None:
            failures.append(f"{name}: benchmark missing from report")
            continue
        counter = floor["counter"]
        value = row.get(counter)
        if value is None:
            failures.append(f"{name}: counter {counter!r} missing")
            continue
        status = "ok" if value >= floor["min"] else "FAIL"
        print(f"{status}: {name} {counter}={value:.0f} (floor {floor['min']})")
        if value < floor["min"]:
            failures.append(
                f"{name}: {counter}={value:.0f} below floor {floor['min']}"
            )

    for failure in failures:
        sys.stderr.write(f"regression: {failure}\n")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
