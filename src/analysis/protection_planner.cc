/**
 * @file
 * Protection planner implementation.
 */

#include "analysis/protection_planner.hh"

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "analysis/analyzer.hh"
#include "analysis/report.hh"
#include "util/json.hh"

namespace fsp::analysis {

namespace {

/** One thread group under consideration, with its model numbers. */
struct Candidate
{
    const pruning::ThreadGroup *group = nullptr;
    double sdcWeight = 0.0;
    double cost = 0.0;
    /** Distinct SDC dynamic indices (Recompute range basis). */
    std::vector<std::uint64_t> sdcDyns;

    double
    density() const
    {
        return cost > 0.0 ? sdcWeight / cost : 0.0;
    }
};

/** Coalesce sorted distinct dyn indices into half-open runs. */
std::vector<sim::ProtectedRange>
coalesceRuns(const std::vector<std::uint64_t> &dyns)
{
    std::vector<sim::ProtectedRange> runs;
    for (std::uint64_t dyn : dyns) {
        if (!runs.empty() && runs.back().end == dyn)
            runs.back().end = dyn + 1;
        else
            runs.push_back({dyn, dyn + 1});
    }
    return runs;
}

/**
 * A partially protected group: the verification campaign splits every
 * site of its representatives into an unprotected remainder and a
 * clone (weight scaled by `fraction`) injected at `protectedRep`, a
 * protected member thread.
 */
struct PartialSplit
{
    std::uint64_t protectedRep = 0;
    double fraction = 0.0;
};

} // namespace

ProtectionPlanner::ProtectionPlanner(KernelAnalysis &analysis,
                                     ProtectionPlannerConfig config)
    : analysis_(analysis), config_(std::move(config))
{
}

ProtectionOutcome
ProtectionPlanner::plan(const pruning::PruningResult &pruned,
                        const faults::CampaignOptions &options)
{
    ProtectionOutcome outcome;
    outcome.scheme = config_.scheme;
    outcome.budgetFraction = config_.budget;
    outcome.totalInstrs =
        static_cast<double>(analysis_.space().totalDynInstrs());
    outcome.budgetInstrs = config_.budget * outcome.totalInstrs;

    // --- 1. Baseline campaign, keeping the per-site outcome vector the
    // attribution below reads (parallel to pruned.sites).
    faults::CampaignOptions base = options;
    base.keepSiteOutcomes = true;
    outcome.before = analysis_.runPrunedCampaignDetailed(pruned, base);
    outcome.sdcBefore =
        outcome.before.dist.fraction(faults::Outcome::SDC);

    // --- 2. Attribute each SDC site's extrapolation weight to the
    // thread group its (representative) thread belongs to.  The weight
    // already stands for the whole group's fault bits, so the group
    // total is the SDC weight the campaign would lose if every member
    // were protected.
    std::vector<const pruning::ThreadGroup *> groups =
        pruned.grouping.allGroups();
    std::unordered_map<std::uint64_t, std::size_t> group_of_thread;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        for (std::uint64_t thread : groups[g]->threads)
            group_of_thread.emplace(thread, g);
    }

    std::unordered_map<std::size_t, Candidate> by_group;
    const std::vector<faults::Outcome> &site_outcomes =
        outcome.before.siteOutcomes;
    for (std::size_t i = 0;
         i < pruned.sites.size() && i < site_outcomes.size(); ++i) {
        if (site_outcomes[i] != faults::Outcome::SDC)
            continue;
        const faults::WeightedSite &weighted = pruned.sites[i];
        auto it = group_of_thread.find(weighted.site.thread);
        if (it == group_of_thread.end())
            continue;
        Candidate &cand = by_group[it->second];
        cand.group = groups[it->second];
        cand.sdcWeight += weighted.weight;
        if (config_.scheme == sim::ProtectionScheme::Recompute)
            cand.sdcDyns.push_back(weighted.site.dynIndex);
    }

    // --- 3. Price each candidate.  Duplicate-and-compare re-executes
    // every instruction of every member; selective recomputation only
    // re-executes the dynamic ranges that produced SDCs, on every
    // member (groups share iCnt and aligned control flow, so the
    // representative's ranges transfer).
    std::vector<Candidate> candidates;
    candidates.reserve(by_group.size());
    for (auto &[g, cand] : by_group) {
        (void)g;
        const pruning::ThreadGroup &group = *cand.group;
        const double members =
            static_cast<double>(group.threads.size());
        if (config_.scheme == sim::ProtectionScheme::Recompute) {
            std::sort(cand.sdcDyns.begin(), cand.sdcDyns.end());
            cand.sdcDyns.erase(
                std::unique(cand.sdcDyns.begin(), cand.sdcDyns.end()),
                cand.sdcDyns.end());
            cand.cost =
                static_cast<double>(cand.sdcDyns.size()) * members;
        } else {
            cand.cost = static_cast<double>(group.iCnt) * members;
        }
        if (cand.sdcWeight > 0.0 && cand.cost > 0.0)
            candidates.push_back(std::move(cand));
    }
    outcome.candidateCount = candidates.size();

    // --- 4. Greedy selection by SDC weight per unit cost.  Density is
    // per-member, so when a whole group does not fit the planner buys
    // the k of m members the remaining budget affords (the grouping
    // hypothesis makes members interchangeable: k/m of the weight at
    // k/m of the cost).  Partial picks must leave every representative
    // unprotected -- the representatives host the injected sites and
    // carry the unprotected remainder of the split weight below.
    // Deterministic tiebreaks: cheaper first, then lowest
    // representative id.
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.density() != b.density())
                      return a.density() > b.density();
                  if (a.cost != b.cost)
                      return a.cost < b.cost;
                  return a.group->representative <
                         b.group->representative;
              });

    auto plan = std::make_shared<sim::ProtectionPlan>(config_.scheme);
    std::unordered_map<const pruning::ThreadGroup *, PartialSplit> splits;
    for (const Candidate &cand : candidates) {
        const pruning::ThreadGroup &group = *cand.group;
        const std::uint64_t members =
            static_cast<std::uint64_t>(group.threads.size());
        const double per_member =
            cand.cost / static_cast<double>(members);
        const double remaining =
            outcome.budgetInstrs - outcome.modeledCost;
        if (remaining < per_member)
            continue; // cheaper groups later in the ranking may fit
        std::uint64_t afford = static_cast<std::uint64_t>(
            remaining / per_member + 1e-9);
        std::uint64_t k = std::min(members, afford);

        std::vector<std::uint64_t> chosen;
        if (k >= members) {
            chosen = group.threads;
        } else {
            std::unordered_set<std::uint64_t> reps(
                group.representatives.begin(),
                group.representatives.end());
            reps.insert(group.representative);
            std::vector<std::uint64_t> non_reps;
            non_reps.reserve(group.threads.size());
            for (std::uint64_t thread : group.threads) {
                if (reps.find(thread) == reps.end())
                    non_reps.push_back(thread);
            }
            std::sort(non_reps.begin(), non_reps.end());
            k = std::min(
                k, static_cast<std::uint64_t>(non_reps.size()));
            if (k == 0)
                continue;
            chosen.assign(non_reps.begin(),
                          non_reps.begin() +
                              static_cast<std::ptrdiff_t>(k));
            splits[cand.group] = {chosen.front(),
                                  static_cast<double>(k) /
                                      static_cast<double>(members)};
        }

        if (config_.scheme == sim::ProtectionScheme::Recompute) {
            std::vector<sim::ProtectedRange> runs =
                coalesceRuns(cand.sdcDyns);
            for (std::uint64_t thread : chosen) {
                for (const sim::ProtectedRange &run : runs)
                    plan->protectRange(thread, run.begin, run.end);
            }
        } else {
            for (std::uint64_t thread : chosen)
                plan->protectThread(thread);
        }
        const double fraction =
            static_cast<double>(k) / static_cast<double>(members);
        outcome.modeledCost += static_cast<double>(k) * per_member;
        outcome.modeledSdcCovered += cand.sdcWeight * fraction;
        outcome.selected.push_back(
            {group.representative, group.iCnt, k, members,
             cand.sdcWeight * fraction,
             static_cast<double>(k) * per_member});
    }

    // --- 5. Verify: re-run the same weighted campaign with the plan
    // active.  An empty plan cannot change anything, so the baseline
    // result stands in for it (and a zero budget costs one campaign,
    // not two).
    if (plan->empty() || !config_.verify) {
        outcome.after = outcome.before;
        outcome.after.siteOutcomes.clear();
    } else {
        faults::CampaignOptions vopts = options;
        vopts.protection = plan;
        if (!vopts.journalPath.empty())
            vopts.journalPath += ".protect";
        if (splits.empty()) {
            outcome.after =
                analysis_.runPrunedCampaignDetailed(pruned, vopts);
        } else {
            // Partially protected groups: split every site hosted by
            // the group's representatives into the unprotected
            // remainder (weight scaled to the uncovered share, same
            // thread) plus a protected clone injected at a protected
            // member.  Homogeneous members share iCnt and control
            // flow, so the representative's (dynIndex, bit) sites
            // transfer; the verified campaign then measures the
            // covered share empirically instead of assuming it.
            pruning::PruningResult split;
            split.assumedMaskedWeight = pruned.assumedMaskedWeight;
            split.sites.reserve(pruned.sites.size() + splits.size());
            for (const faults::WeightedSite &weighted : pruned.sites) {
                auto git = group_of_thread.find(weighted.site.thread);
                const PartialSplit *part = nullptr;
                if (git != group_of_thread.end()) {
                    auto sit = splits.find(groups[git->second]);
                    if (sit != splits.end())
                        part = &sit->second;
                }
                if (part == nullptr) {
                    split.sites.push_back(weighted);
                    continue;
                }
                faults::WeightedSite unprotected = weighted;
                unprotected.weight =
                    weighted.weight * (1.0 - part->fraction);
                faults::WeightedSite covered = weighted;
                covered.site.thread = part->protectedRep;
                covered.weight = weighted.weight * part->fraction;
                split.sites.push_back(unprotected);
                split.sites.push_back(covered);
            }
            outcome.after =
                analysis_.runPrunedCampaignDetailed(split, vopts);
        }
        outcome.verified = true;
    }
    if (!plan->empty())
        outcome.plan = plan;
    outcome.before.siteOutcomes.clear();
    outcome.sdcAfter = outcome.after.dist.fraction(faults::Outcome::SDC);

    if (config_.metrics != nullptr) {
        metrics::Registry &reg = *config_.metrics;
        reg.set(reg.gauge("fsp_protect_budget_instrs",
                          "overhead budget in dynamic instructions"),
                outcome.budgetInstrs);
        reg.set(reg.gauge("fsp_protect_modeled_cost_instrs",
                          "modeled overhead of the selected set"),
                outcome.modeledCost);
        reg.set(reg.gauge("fsp_protect_candidate_groups",
                          "thread groups with attributable SDC weight"),
                static_cast<double>(outcome.candidateCount));
        reg.set(reg.gauge("fsp_protect_selected_groups",
                          "thread groups selected for protection"),
                static_cast<double>(outcome.selected.size()));
        reg.set(reg.gauge("fsp_protect_protected_threads",
                          "threads covered by the protection plan"),
                outcome.plan ? static_cast<double>(
                                   outcome.plan->protectedThreadCount())
                             : 0.0);
        reg.set(reg.gauge("fsp_protect_sdc_before",
                          "SDC fraction without protection"),
                outcome.sdcBefore);
        reg.set(reg.gauge("fsp_protect_sdc_after",
                          "SDC fraction with the plan active"),
                outcome.sdcAfter);
    }
    return outcome;
}

void
writeProtectionReport(JsonWriter &json, const ProtectionOutcome &outcome)
{
    json.beginObject("protection");
    json.field("scheme", sim::protectionSchemeName(outcome.scheme));
    json.field("budgetFraction", outcome.budgetFraction);
    json.field("totalDynInstrs", outcome.totalInstrs);
    json.field("budgetInstrs", outcome.budgetInstrs);
    json.field("candidateGroups",
               static_cast<std::uint64_t>(outcome.candidateCount));
    json.field("modeledCostInstrs", outcome.modeledCost);
    json.field("modeledCostFraction",
               outcome.totalInstrs > 0.0
                   ? outcome.modeledCost / outcome.totalInstrs
                   : 0.0);
    json.field("modeledSdcCovered", outcome.modeledSdcCovered);
    json.beginArray("selectedGroups");
    for (const SelectedGroup &group : outcome.selected) {
        json.beginObject();
        json.field("representative", group.representative);
        json.field("iCnt", group.iCnt);
        json.field("protectedThreads", group.threadCount);
        json.field("groupThreads", group.groupThreads);
        json.field("sdcWeight", group.sdcWeight);
        json.field("costInstrs", group.cost);
        json.endObject();
    }
    json.endArray();
    json.beginArray("protectedThreads");
    if (outcome.plan) {
        for (std::uint64_t thread : outcome.plan->protectedThreads())
            json.value(thread);
    }
    json.endArray();
    json.field("verified", outcome.verified);
    json.field("sdcBefore", outcome.sdcBefore);
    json.field("sdcAfter", outcome.sdcAfter);
    json.field("sdcReduction", outcome.sdcBefore - outcome.sdcAfter);
    json.field("detectedFaults",
               outcome.after.injection.detectedFaults);
    json.endObject();
    writeOutcomeProfile(json, "unprotectedProfile", outcome.before.dist);
    writeOutcomeProfile(json, "protectedProfile", outcome.after.dist);
}

} // namespace fsp::analysis
