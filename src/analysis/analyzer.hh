/**
 * @file
 * Public analysis facade: bundles one kernel's setup, fault-space
 * enumeration, injector, progressive pruning, and campaign drivers
 * behind a single object.  This is the API the examples and the bench
 * harnesses program against.
 *
 * Typical use:
 *
 *     const apps::KernelSpec *spec = apps::findKernel("GEMM/K1");
 *     analysis::KernelAnalysis ka(*spec, apps::Scale::Small);
 *     auto pruned = ka.prune({});                  // 4-stage pipeline
 *     auto estimate = ka.runPrunedCampaign(pruned); // weighted profile
 *     auto baseline = ka.runBaseline(3000, 7);      // random sampling
 */

#ifndef FSP_ANALYSIS_ANALYZER_HH
#define FSP_ANALYSIS_ANALYZER_HH

#include <memory>
#include <optional>
#include <string>

#include "apps/app.hh"
#include "faults/campaign_engine.hh"
#include "faults/fault_space.hh"
#include "faults/injector.hh"
#include "faults/section_cache.hh"
#include "pruning/pipeline.hh"
#include "sim/executor.hh"

namespace fsp::analysis {

/**
 * Everything a KernelAnalysis can be configured with, in one struct:
 * pass it at construction or through one configure() call instead of
 * the historical one-setter-per-knob drip (setSlicingEnabled,
 * setCheckpointsEnabled, setFaultModel, setSectionCacheDir,
 * attachExecMetrics -- all kept as thin deprecated shims for one
 * release).  Fields apply lazily where the facade is lazy: engine
 * strategy knobs take effect when the injector is first built, so
 * configuring a fresh analysis never triggers the golden run early.
 */
struct AnalysisConfig
{
    /** Permit the CTA-sliced injection path. */
    bool slicing = true;

    /** Permit checkpoint recording and checkpointed temporal replay. */
    bool checkpoints = true;

    /** Fault-model strategy; null selects the paper's single-bit
     * destination flip.  modelSeed seeds model randomness. */
    std::shared_ptr<const faults::FaultModel> faultModel;
    std::uint64_t modelSeed = 0;

    /** Section-cache directory for incremental campaigns; empty
     * disables the reuse path. */
    std::string sectionCacheDir;

    /** Counter sink for the facade's own profiling executor (must
     * outlive the analysis); null leaves it detached. */
    sim::ExecMetrics *execMetrics = nullptr;
};

/** One kernel's complete analysis context. */
class KernelAnalysis
{
  public:
    /**
     * Set up the kernel and its executor.
     *
     * @param spec registered kernel.
     * @param scale geometry preset.
     * @param input_seed seed for workload input generation.
     */
    KernelAnalysis(const apps::KernelSpec &spec, apps::Scale scale,
                   std::uint64_t input_seed = 42);

    /** As above, applying @p config before anything else runs. */
    KernelAnalysis(const apps::KernelSpec &spec, apps::Scale scale,
                   const AnalysisConfig &config,
                   std::uint64_t input_seed = 42);

    /**
     * Apply a full configuration in one call.  Safe at any point;
     * strategy changes invalidate the cached campaign engine (workers
     * are injector clones) exactly as the individual setters did.
     */
    void configure(const AnalysisConfig &config);

    const apps::KernelSpec &spec() const { return spec_; }
    const sim::Executor &executor() const { return *executor_; }
    const sim::Program &program() const { return setup_.program; }
    const apps::KernelSetup &setup() const { return setup_; }

    /** Eq. 1 enumeration (lazy; one fault-free profiling run). */
    const faults::FaultSpace &space();

    /** Fault injector (lazy; runs the golden execution once). */
    faults::Injector &injector();

    /** @{ CTA-sliced engine controls (forwarded to the injector). */
    /** @deprecated Use AnalysisConfig::slicing via configure(). */
    [[deprecated("use AnalysisConfig::slicing via configure()")]] void
    setSlicingEnabled(bool enabled)
    {
        applySlicing(enabled);
    }

    /** Will injection runs use the sliced path? */
    bool slicingActive() { return injector().slicingActive(); }

    /** The kernel's CTA-independence decision. */
    const faults::SlicingPlan &
    slicingPlan()
    {
        return injector().slicingPlan();
    }
    /** @} */

    /** @{ Checkpointed-replay controls (forwarded to the injector). */
    /** @deprecated Use AnalysisConfig::checkpoints via configure(). */
    [[deprecated("use AnalysisConfig::checkpoints via configure()")]] void
    setCheckpointsEnabled(bool enabled)
    {
        applyCheckpoints(enabled);
    }

    /** Will injection runs resume from checkpoints? */
    bool checkpointsActive() { return injector().checkpointsActive(); }
    /** @} */

    /** @{ Fault-model strategy (single-bit destination flip default). */
    /** @deprecated Use AnalysisConfig::faultModel via configure(). */
    [[deprecated("use AnalysisConfig::faultModel via configure()")]] void
    setFaultModel(std::shared_ptr<const faults::FaultModel> model,
                  std::uint64_t modelSeed = 0)
    {
        applyFaultModel(std::move(model), modelSeed);
    }

    /** The model the facade's injector currently injects under. */
    const faults::FaultModel &faultModel() { return injector().faultModel(); }
    /** @} */

    /**
     * Run the progressive pruning pipeline.  The injector's slicing
     * plan scopes the traced profiling run to the representatives'
     * CTAs when config.execution.slicedProfiling permits.  @p metrics
     * optionally receives the pipeline's per-stage gauges (see
     * prunePipeline); it never affects results.
     */
    pruning::PruningResult prune(const pruning::PruningConfig &config,
                                 metrics::Registry *metrics = nullptr);

    /**
     * Exhaustive weighted injection over a pruned space; the
     * assumed-masked weight is folded into the masked bucket.
     */
    faults::OutcomeDist
    runPrunedCampaign(const pruning::PruningResult &pruned);

    /**
     * Parallel variant: same result bit-for-bit (the engine folds
     * outcomes in site order), campaign sharded per @p options.
     */
    faults::OutcomeDist
    runPrunedCampaign(const pruning::PruningResult &pruned,
                      const faults::CampaignOptions &options);

    /**
     * As the parallel runPrunedCampaign but returning the engine's
     * full CampaignResult -- SDC anatomy profile, per-static ranking,
     * run counters -- with the assumed-masked weight already folded
     * into the distribution.  This is what the tools' --json rides on.
     * When a section-cache directory is attached
     * (setSectionCacheDir), the facade builds the SectionIndex for
     * the pruned site list on first use and runs the campaign with
     * the incremental reuse path enabled.
     */
    faults::CampaignResult
    runPrunedCampaignDetailed(const pruning::PruningResult &pruned,
                              const faults::CampaignOptions &options);

    /**
     * @{ Incremental campaigns.  Attaching a cache directory makes
     * every subsequent runPrunedCampaignDetailed consult (and feed)
     * the content-addressed section result cache; an empty dir
     * detaches.  The index can also be built eagerly for engine
     * callers that drive CampaignOptions themselves.
     */
    /** @deprecated Use AnalysisConfig::sectionCacheDir via configure(). */
    [[deprecated("use AnalysisConfig::sectionCacheDir via configure()")]] void
    setSectionCacheDir(const std::string &dir)
    {
        applySectionCacheDir(dir);
    }

    faults::SectionCache *sectionCache() { return section_cache_.get(); }

    /**
     * Build (and cache in the facade) the section index for @p sites:
     * one value-recorded traced run over the distinct threads the
     * sites touch, split at barrier / executed-stride / common-block
     * alignment boundaries (pruning::alignmentBoundaries against the
     * lowest-id traced thread).
     */
    const faults::SectionIndex &
    buildSectionIndex(const std::vector<faults::WeightedSite> &sites);
    /** @} */

    /** Statistical baseline campaign (uniform random sites). */
    faults::CampaignResult runBaseline(std::size_t runs,
                                       std::uint64_t seed);

    /** Parallel variant of the baseline; result identical to serial. */
    faults::CampaignResult runBaseline(std::size_t runs,
                                       std::uint64_t seed,
                                       const faults::CampaignOptions &options);

    /**
     * The campaign engine, cloned from injector() (golden run shared
     * with the serial path).  Rebuilt when @p options configures a
     * different engine (see CampaignOptions::sameEngineConfig); the
     * cached engine's most recent CampaignStats are reachable through
     * the returned reference's lastStats().
     */
    faults::CampaignEngine &
    campaignEngine(const faults::CampaignOptions &options = {});

    /**
     * Feed the facade's own (profiling) executor's run counters into
     * @p sink (see sim::Executor::setMetricsSink).  The sink must
     * outlive this analysis; null detaches.  Injectors build their own
     * executors, so campaign workers never touch this sink -- it only
     * counts the facade's single-threaded enumeration/profiling runs.
     * @deprecated Use AnalysisConfig::execMetrics via configure().
     */
    [[deprecated("use AnalysisConfig::execMetrics via configure()")]] void
    attachExecMetrics(sim::ExecMetrics *sink)
    {
        applyExecMetrics(sink);
    }

  private:
    /** Non-deprecated implementations the shims and configure() share. */
    void applySlicing(bool enabled);
    void applyCheckpoints(bool enabled);
    void applyFaultModel(std::shared_ptr<const faults::FaultModel> model,
                         std::uint64_t modelSeed);
    void applySectionCacheDir(const std::string &dir);
    void applyExecMetrics(sim::ExecMetrics *sink)
    {
        executor_->setMetricsSink(sink);
    }

    const apps::KernelSpec &spec_;
    apps::KernelSetup setup_;
    std::unique_ptr<sim::Executor> executor_;
    std::optional<faults::FaultSpace> space_;
    std::optional<faults::Injector> injector_;
    std::unique_ptr<faults::CampaignEngine> engine_;
    faults::CampaignOptions engine_options_; ///< config engine_ was built with
    bool checkpoints_enabled_ = true;
    bool slicing_enabled_ = true;
    /** Model configured before the injector exists; applied at its
     *  first construction (injector()) so configuring a fresh analysis
     *  never forces the golden run. */
    std::shared_ptr<const faults::FaultModel> pending_model_;
    std::uint64_t pending_model_seed_ = 0;
    bool pending_model_set_ = false;
    std::unique_ptr<faults::SectionCache> section_cache_;
    std::optional<faults::SectionIndex> section_index_;
};

} // namespace fsp::analysis

#endif // FSP_ANALYSIS_ANALYZER_HH
