/**
 * @file
 * Partial thread protection planner: turn a baseline campaign's
 * per-thread resilience profile into a protection scheme that buys the
 * largest SDC reduction a given overhead budget can afford, then prove
 * the purchase by re-running the campaign with the scheme active.
 *
 * The paper's pruning machinery already ranks where silent corruptions
 * come from -- thread groups with identical iCnt share resilience, and
 * every pruned-campaign site carries the extrapolation weight of the
 * group it represents.  The planner inverts that analysis: attribute
 * the baseline's SDC weight to the thread group each faulty site
 * belongs to, price protecting the whole group under the chosen scheme
 * (duplicate-and-compare doubles every member instruction; selective
 * recomputation re-executes only the dynamic ranges that produced
 * SDCs), and greedily select groups by SDC-weight-per-cost until the
 * budget -- a fraction of the kernel's total dynamic instructions --
 * is exhausted.
 *
 * Selection is member-granular.  When the remaining budget cannot
 * afford a whole group, the planner protects the k of m member threads
 * it can pay for; under the grouping hypothesis the members are
 * statistically interchangeable, so the protected slice covers k/m of
 * the group's SDC weight at k/m of its cost.  Kernels whose threads
 * all collapse into one group (GEMM at small scale) stay plannable at
 * any budget instead of degenerating to all-or-nothing.
 *
 * Selection is a model; the verdict is empirical.  The planner builds
 * a sim::ProtectionPlan from the selected set and re-runs the same
 * weighted campaign with protection active: faults that fire inside
 * the protected coverage are suppressed (counted as detections) and
 * the run classifies as if the fault never happened.  The report pairs
 * the modeled cost with the achieved SDC drop so a user can see both
 * sides of the trade.
 */

#ifndef FSP_ANALYSIS_PROTECTION_PLANNER_HH
#define FSP_ANALYSIS_PROTECTION_PLANNER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "faults/campaign_engine.hh"
#include "pruning/pipeline.hh"
#include "sim/protection.hh"
#include "util/metrics.hh"

namespace fsp {
class JsonWriter;
} // namespace fsp

namespace fsp::analysis {

class KernelAnalysis;

/** Planner knobs. */
struct ProtectionPlannerConfig
{
    /**
     * Overhead budget as a fraction of the kernel's total golden
     * dynamic instruction count.  0 buys nothing; 1 affords
     * duplicating every thread.
     */
    double budget = 0.25;

    /** Protection mechanism the plan models and simulates. */
    sim::ProtectionScheme scheme = sim::ProtectionScheme::DuplicateCompare;

    /**
     * Re-run the campaign with the plan active to measure the achieved
     * SDC reduction.  Off skips the verification campaign (the report
     * then carries the modeled numbers only).
     */
    bool verify = true;

    /** Optional gauge sink for the planner's own metrics. */
    metrics::Registry *metrics = nullptr;
};

/**
 * One thread group the planner selected for protection.  threadCount <
 * groupThreads marks a partial selection: only that many members are
 * protected and sdcWeight/cost carry the prorated share.
 */
struct SelectedGroup
{
    std::uint64_t representative = 0; ///< primary injected member
    std::uint64_t iCnt = 0;           ///< per-member dynamic instrs
    std::uint64_t threadCount = 0;    ///< members covered by the plan
    std::uint64_t groupThreads = 0;   ///< total members in the group
    double sdcWeight = 0.0;           ///< baseline SDC weight covered
    double cost = 0.0;                ///< modeled overhead (dyn instrs)
};

/** The planner's full result: model, plan, and (optionally) proof. */
struct ProtectionOutcome
{
    sim::ProtectionScheme scheme =
        sim::ProtectionScheme::DuplicateCompare;
    double budgetFraction = 0.0;
    double totalInstrs = 0.0;   ///< kernel total golden dyn instrs
    double budgetInstrs = 0.0;  ///< budgetFraction * totalInstrs

    std::size_t candidateCount = 0; ///< groups with attributable SDC
    std::vector<SelectedGroup> selected;
    double modeledCost = 0.0;       ///< sum of selected costs
    double modeledSdcCovered = 0.0; ///< sum of selected SDC weight

    /** The simulated scheme (empty when nothing fit the budget). */
    std::shared_ptr<const sim::ProtectionPlan> plan;

    /** Baseline (unprotected) campaign result. */
    faults::CampaignResult before;

    /** Protected re-run; equals `before` when skipped or plan empty. */
    faults::CampaignResult after;
    bool verified = false; ///< `after` came from a protected campaign

    /** @{ SDC fraction of the weighted profile, convenience. */
    double sdcBefore = 0.0;
    double sdcAfter = 0.0;
    /** @} */
};

/**
 * Plans and verifies partial thread protection for one kernel.
 * Construction is cheap; plan() runs the campaigns through the
 * analysis facade (sharing its injector/engine cache).
 */
class ProtectionPlanner
{
  public:
    ProtectionPlanner(KernelAnalysis &analysis,
                      ProtectionPlannerConfig config);

    /**
     * Run the whole pipeline against the pruned site list: baseline
     * campaign (with per-site outcomes kept), attribution, greedy
     * selection, and -- when configured -- the protected verification
     * campaign.
     *
     * @p options configures both campaigns (workers, journal, ...).
     * The baseline uses the options verbatim; the verification run
     * appends ".protect" to any journal path so the two campaigns
     * never share a journal, and folds the plan identity into the
     * journal key so a stale protect journal cannot resume under a
     * different plan.  The analysis facade keeps its section cache
     * away from the protected run.
     */
    ProtectionOutcome plan(const pruning::PruningResult &pruned,
                           const faults::CampaignOptions &options);

  private:
    KernelAnalysis &analysis_;
    ProtectionPlannerConfig config_;
};

/**
 * Emit the planner outcome inside the currently open JSON object: the
 * "protection" block (scheme, budget, modeled cost, selected groups,
 * protected thread set) plus "unprotectedProfile" / "protectedProfile"
 * outcome distributions and the achieved-vs-modeled comparison.
 */
void writeProtectionReport(JsonWriter &json,
                           const ProtectionOutcome &outcome);

} // namespace fsp::analysis

#endif // FSP_ANALYSIS_PROTECTION_PLANNER_HH
