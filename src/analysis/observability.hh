/**
 * @file
 * One-stop observability bundle for the command-line front ends: a
 * metrics registry pre-wired with the campaign MetricsObserver, the
 * simulator counter sink, and (optionally) live progress reporting.
 *
 * tools/fsp and examples/resilience_report both need the same plumbing
 * -- build a Registry, bridge campaign events into it, count the
 * facade's profiling runs, honour --progress, then export the snapshot
 * as a Prometheus file and/or a --json object.  This type owns that
 * wiring so each tool adds observability in four lines:
 *
 *     analysis::Observability obs(opts.progressEvery);
 *     ka.attachExecMetrics(&obs.exec);
 *     auto pruned = ka.prune(config, &obs.registry);
 *     options.observer = obs.observer();
 *     ...
 *     obs.finalize();
 *     obs.writePrometheusFile(opts.metricsOut);  // if requested
 */

#ifndef FSP_ANALYSIS_OBSERVABILITY_HH
#define FSP_ANALYSIS_OBSERVABILITY_HH

#include <optional>
#include <string>

#include "faults/observer.hh"
#include "sim/executor.hh"
#include "util/metrics.hh"

namespace fsp {
class JsonWriter;
} // namespace fsp

namespace fsp::analysis {

/** The tools' assembled metrics/observer stack. */
struct Observability
{
    /**
     * @param progressEverySeconds interval for live progress lines;
     *        negative disables them (the --progress flag's default).
     */
    explicit Observability(double progressEverySeconds = -1.0);

    Observability(const Observability &) = delete;
    Observability &operator=(const Observability &) = delete;

    /** The metric store every component below feeds. */
    metrics::Registry registry;

    /** Simulator counters; attach via KernelAnalysis::attachExecMetrics. */
    sim::ExecMetrics exec;

    /** Bridges campaign events into `registry`. */
    faults::MetricsObserver metricsObserver;

    /** Present when live progress was requested. */
    std::optional<faults::LiveProgress> live;

    /**
     * The observer to hand to CampaignOptions::observer (metrics plus,
     * when requested, live progress).  Valid for this object's
     * lifetime.
     */
    faults::CampaignObserver *observer() { return &observers_; }

    /**
     * Fold the executor counters into the registry.  Call once after
     * the last campaign, before exporting.
     */
    void finalize();

    /** Export the snapshot to @p path; false on I/O error. */
    bool
    writePrometheusFile(const std::string &path) const
    {
        return registry.writePrometheusFile(path);
    }

    /**
     * Emit the snapshot as a "metricsSnapshot" object (containing the
     * registry's "metrics" array) inside the currently open JSON
     * object.
     */
    void writeJsonSnapshot(JsonWriter &json) const;

  private:
    faults::ObserverList observers_;
    metrics::CounterId sim_runs_;
    metrics::CounterId sim_ctas_;
    metrics::CounterId sim_instrs_;
};

} // namespace fsp::analysis

#endif // FSP_ANALYSIS_OBSERVABILITY_HH
