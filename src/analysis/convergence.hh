/**
 * @file
 * Convergence-driven loop-iteration selection -- the paper's actual
 * procedure for choosing the loop-sampling budget (section III-D:
 * "we randomly add iterations one by one, until the result is
 * stable"): grow num_iter, re-run the pruned campaign, and stop when
 * the outcome distribution has stopped moving for a stabilisation
 * window.
 */

#ifndef FSP_ANALYSIS_CONVERGENCE_HH
#define FSP_ANALYSIS_CONVERGENCE_HH

#include <vector>

#include "analysis/analyzer.hh"
#include "faults/outcome.hh"
#include "pruning/pipeline.hh"

namespace fsp::analysis {

/** One increment of the convergence loop. */
struct ConvergenceStep
{
    unsigned iterations = 0;      ///< sampled iterations per loop
    faults::OutcomeDist estimate; ///< weighted campaign estimate
    double delta = 1.0;           ///< L-inf vs the previous step
};

/** Result of the convergence procedure. */
struct ConvergenceResult
{
    std::vector<ConvergenceStep> history;
    unsigned chosenIterations = 0;
    bool converged = false;

    /** The final estimate (last history entry). */
    const faults::OutcomeDist &
    finalEstimate() const
    {
        return history.back().estimate;
    }
};

/**
 * Grow the loop-sampling budget one iteration at a time until the
 * weighted outcome distribution moves less than @p tolerance (L-inf
 * over the three outcome fractions) for @p window consecutive
 * increments, or @p max_iterations is reached.
 *
 * @param ka kernel analysis context.
 * @param base pipeline configuration; its loopIterations field is
 *        overridden by the procedure.
 * @param tolerance stability threshold on the outcome fractions.
 * @param window consecutive stable increments required.
 * @param max_iterations upper bound on the budget (the paper observes
 *        3-15 iterations suffice across its suite).
 */
ConvergenceResult convergeLoopIterations(KernelAnalysis &ka,
                                         pruning::PruningConfig base,
                                         double tolerance = 0.01,
                                         unsigned window = 2,
                                         unsigned max_iterations = 15);

} // namespace fsp::analysis

#endif // FSP_ANALYSIS_CONVERGENCE_HH
