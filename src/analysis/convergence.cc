/**
 * @file
 * Convergence procedure implementation.
 */

#include "analysis/convergence.hh"

#include "util/logging.hh"
#include "util/stats.hh"

namespace fsp::analysis {

ConvergenceResult
convergeLoopIterations(KernelAnalysis &ka, pruning::PruningConfig base,
                       double tolerance, unsigned window,
                       unsigned max_iterations)
{
    FSP_ASSERT(window >= 1, "stabilisation window must be positive");
    FSP_ASSERT(max_iterations >= 1, "need at least one iteration");

    ConvergenceResult result;
    unsigned stable = 0;
    std::vector<double> previous;

    for (unsigned n = 1; n <= max_iterations; ++n) {
        base.loop.iterations = n;
        auto pruned = ka.prune(base);
        auto estimate = ka.runPrunedCampaign(pruned);

        ConvergenceStep step;
        step.iterations = n;
        step.estimate = estimate;
        auto fractions = estimate.fractions();
        step.delta =
            previous.empty() ? 1.0 : linfDistance(previous, fractions);
        previous = fractions;
        result.history.push_back(step);

        if (n > 1 && step.delta <= tolerance) {
            if (++stable >= window) {
                result.chosenIterations = n;
                result.converged = true;
                return result;
            }
        } else {
            stable = 0;
        }
    }

    result.chosenIterations = max_iterations;
    result.converged = false;
    return result;
}

} // namespace fsp::analysis
