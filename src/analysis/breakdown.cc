/**
 * @file
 * Per-instruction-class outcome breakdown implementation.
 */

#include "analysis/breakdown.hh"

#include <vector>

#include "pruning/grouping.hh"
#include "pruning/pipeline.hh"
#include "util/logging.hh"

namespace fsp::analysis {

std::string
instrClassName(InstrClass cls)
{
    switch (cls) {
      case InstrClass::Memory: return "memory";
      case InstrClass::Arithmetic: return "arithmetic";
      case InstrClass::Logic: return "logic";
      case InstrClass::Compare: return "compare";
      case InstrClass::Special: return "special";
      case InstrClass::Data: return "data";
    }
    panic("unreachable InstrClass");
}

InstrClass
classifyOpcode(sim::Opcode op)
{
    using sim::Opcode;
    switch (op) {
      case Opcode::Ld:
        return InstrClass::Memory;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::MulWide:
      case Opcode::Mad:
      case Opcode::MadWide:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::Min:
      case Opcode::Max:
      case Opcode::Neg:
      case Opcode::Abs:
        return InstrClass::Arithmetic;
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Not:
      case Opcode::Shl:
      case Opcode::Shr:
        return InstrClass::Logic;
      case Opcode::Set:
      case Opcode::Setp:
      case Opcode::Selp:
        return InstrClass::Compare;
      case Opcode::Rcp:
      case Opcode::Sqrt:
      case Opcode::Rsqrt:
      case Opcode::Ex2:
      case Opcode::Lg2:
        return InstrClass::Special;
      case Opcode::Mov:
      case Opcode::Cvt:
        return InstrClass::Data;
      default:
        panic("opcode ", sim::opcodeName(op),
              " has no destination and no class");
    }
}

ClassBreakdown
outcomeByInstrClass(KernelAnalysis &ka, std::size_t sites_per_class,
                    std::uint64_t seed)
{
    Prng prng(seed);

    Prng grouping_prng = prng.fork("breakdown-grouping");
    auto grouping = pruning::pruneThreads(
        ka.space(), ka.executor().config().block.count(), grouping_prng);
    auto plans = pruning::buildThreadPlans(ka.executor(),
                                           ka.setup().memory, grouping);

    // Bucket every representative-thread site by instruction class.
    std::map<InstrClass, std::vector<faults::FaultSite>> buckets;
    for (const auto &plan : plans) {
        for (std::size_t j = 0; j < plan.trace.size(); ++j) {
            unsigned bits = plan.trace[j].destBits;
            if (bits == 0)
                continue;
            InstrClass cls = classifyOpcode(
                ka.program().at(plan.trace[j].staticIndex).op);
            for (std::uint32_t bit = 0; bit < bits; ++bit)
                buckets[cls].push_back({plan.thread, j, bit});
        }
    }

    ClassBreakdown breakdown;
    for (auto &[cls, sites] : buckets) {
        auto &entry = breakdown.classes[cls];
        entry.bucketSites = sites.size();
        Prng bucket_prng = prng.fork("class-" + instrClassName(cls));
        auto chosen = bucket_prng.sampleWithoutReplacement(
            sites.size(), sites_per_class);
        for (std::size_t index : chosen)
            entry.dist.add(ka.injector().inject(sites[index]));
    }
    return breakdown;
}

} // namespace fsp::analysis
