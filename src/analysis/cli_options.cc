/**
 * @file
 * Shared tool-option registration.
 */

#include "analysis/cli_options.hh"

#include <cstdlib>
#include <iostream>

namespace fsp::analysis {

void
addCommonOptions(OptionTable &table, CommonCliOptions &opts)
{
    table.flag("--paper", "paper-scale geometry (default: small)",
               [&opts] { opts.scale = apps::Scale::Paper; });
    table.optionU64("--seed", "N", "master seed (default 1)", opts.seed);
    table.optionSize("--baseline", "N",
                     "random-baseline runs (default 2000; 0 skips)",
                     opts.baseline);
    table.optionUnsigned("--loop-iters", "N",
                         "sampled loop iterations (default 8)",
                         opts.pruning.loop.iterations);
    table.optionUnsigned("--bit-samples", "N",
                         "sampled bit positions (default 16)",
                         opts.pruning.bit.samples);
    table.optionUnsigned("--pilots", "N",
                         "representatives per thread group (default 1)",
                         opts.pruning.thread.repsPerGroup);
    table.optionUnsigned(
        "--workers", "N",
        "campaign worker threads (default: hardware);\n"
        "results are bit-identical at any worker count",
        opts.campaign.workers);
    table.optionSize("--chunk", "N",
                     "sites per campaign chunk (default: derived)",
                     opts.campaign.chunkSize);
    table.flag("--no-slicing",
               "force full-grid injection runs even when the\n"
               "kernel's CTAs are independent (A/B validation);\n"
               "outcomes are bit-identical either way",
               [&opts] {
                   opts.campaign.allowSlicing = false;
                   opts.pruning.execution.slicedProfiling = false;
               });
    table.flag("--no-checkpoints",
               "execute every injection run from instruction\n"
               "zero instead of resuming from golden-run\n"
               "checkpoints (A/B validation); outcomes are\n"
               "bit-identical either way",
               [&opts] {
                   opts.campaign.allowCheckpoints = false;
                   opts.pruning.execution.checkpoints = false;
               });
    table.optionString(
        "--fault-model", "SPEC",
        "fault-model strategy mapping each (thread, instr,\n"
        "bit) site to an injected fault (default: the\n"
        "paper's single-bit destination-register flip);\n"
        "SPEC is name[:key=value[,key=value...]], e.g.\n"
        "multi-bit:width=3 or intermittent-stuck:period=8\n"
        "(`fsp models` lists every built-in model)",
        opts.faultModel);
    table.optionString(
        "--journal", "PATH",
        "append each completed chunk of the pruned\n"
        "campaign to a crash-safe journal at PATH",
        opts.journalPath);
    table.flag("--resume",
               "resume from an existing --journal file, skipping\n"
               "already-injected sites (profile is bit-identical\n"
               "to an uninterrupted run)",
               opts.resume);
    table.optionString(
        "--cache", "DIR",
        "content-addressed section result cache: replay\n"
        "outcomes of unchanged trace sections from DIR and\n"
        "store fresh ones back, so an edit-and-rerun only\n"
        "injects the changed sections (profile is\n"
        "bit-identical to a cold run)",
        opts.cacheDir);
    table.optionString(
        "--metrics-out", "PATH",
        "write a Prometheus text-format metrics snapshot\n"
        "to PATH on exit (pruning stages, campaign phases,\n"
        "outcome counters, injection-latency histograms)",
        opts.metricsOut);
    table.option("--progress", "SEC",
                 "print a live progress line (completion, outcome\n"
                 "mix, throughput, ETA) at most every SEC seconds;\n"
                 "0 reports at every chunk",
                 [&opts](const std::string &text) {
                     char *end = nullptr;
                     double seconds = std::strtod(text.c_str(), &end);
                     if (end == text.c_str() || *end != '\0' ||
                         seconds < 0.0) {
                         return false;
                     }
                     opts.progressEvery = seconds;
                     return true;
                 });
    table.flag("--json",
               "machine-readable output on stdout", opts.json);
}

bool
finalizeCommonOptions(CommonCliOptions &opts)
{
    if (opts.resume && opts.journalPath.empty()) {
        std::cerr << "--resume needs --journal <path>\n";
        return false;
    }
    if (!opts.faultModel.empty()) {
        std::string error;
        std::unique_ptr<faults::FaultModel> model =
            faults::parseFaultModel(opts.faultModel, &error);
        if (!model) {
            std::cerr << "--fault-model: " << error << "\n";
            return false;
        }
        opts.campaign.faultModel = std::move(model);
    }
    opts.pruning.seed = opts.seed;
    opts.campaign.journalPath = opts.journalPath;
    opts.campaign.resume = opts.resume;
    // Model randomness (memory addresses, activation schedules) keys
    // off the campaign seed whether or not a journal tags the key.
    opts.campaign.journalKey.seed = opts.seed;
    return true;
}

faults::JournalKey
campaignJournalKey(const apps::KernelSpec &spec, apps::Scale scale,
                   const CommonCliOptions &opts)
{
    const pruning::PruningConfig &p = opts.pruning;
    std::string tag = spec.fullName();
    tag += '@';
    tag += apps::scaleName(scale);
    tag += "|pilots=" + std::to_string(p.thread.repsPerGroup);
    tag += "|instr=" + std::to_string(p.instruction.enabled ? 1 : 0);
    tag += "|loop=" + std::to_string(p.loop.iterations);
    tag += "|bits=" + std::to_string(p.bit.samples);
    tag += "|predzf=" + std::to_string(p.bit.predZeroFlagOnly ? 1 : 0);
    return faults::JournalKey{std::move(tag), opts.seed};
}

} // namespace fsp::analysis
