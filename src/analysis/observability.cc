/**
 * @file
 * Observability bundle implementation.
 */

#include "analysis/observability.hh"

#include "util/json.hh"

namespace fsp::analysis {

Observability::Observability(double progressEverySeconds)
    : metricsObserver(registry)
{
    sim_runs_ = registry.counter("fsp_sim_runs_total",
                                 "simulated kernel launches");
    sim_ctas_ = registry.counter("fsp_sim_executed_ctas_total",
                                 "CTAs simulated across all runs");
    sim_instrs_ =
        registry.counter("fsp_sim_dyn_instrs_total",
                         "dynamic instructions simulated across all runs");

    observers_.add(&metricsObserver);
    if (progressEverySeconds >= 0.0) {
        live.emplace(progressEverySeconds);
        observers_.add(&*live);
    }
}

void
Observability::finalize()
{
    registry.add(sim_runs_, exec.runs);
    registry.add(sim_ctas_, exec.executedCtas);
    registry.add(sim_instrs_, exec.dynInstrs);
    exec = sim::ExecMetrics{};
}

void
Observability::writeJsonSnapshot(JsonWriter &json) const
{
    json.beginObject("metricsSnapshot");
    registry.writeJson(json);
    json.endObject();
}

} // namespace fsp::analysis
