/**
 * @file
 * The option set shared by the command-line front ends (tools/fsp and
 * examples/resilience_report): one registration function populating a
 * util OptionTable, so both tools accept the same flags with the same
 * semantics and generate their --help from the same table.
 */

#ifndef FSP_ANALYSIS_CLI_OPTIONS_HH
#define FSP_ANALYSIS_CLI_OPTIONS_HH

#include <cstdint>
#include <string>

#include "apps/app.hh"
#include "faults/campaign_engine.hh"
#include "pruning/pipeline.hh"
#include "util/cli.hh"

namespace fsp::analysis {

/** Values produced by the shared flag set. */
struct CommonCliOptions
{
    apps::Scale scale = apps::Scale::Small;
    std::uint64_t seed = 1;
    std::size_t baseline = 2000;    ///< baseline runs; 0 skips it
    bool json = false;
    std::string journalPath;        ///< --journal; empty disables
    bool resume = false;            ///< --resume
    std::string cacheDir;           ///< --cache; empty disables
    std::string metricsOut;         ///< --metrics-out; empty disables
    double progressEvery = -1.0;    ///< --progress seconds; <0 disables
    std::string faultModel;         ///< --fault-model spec; empty = default
    pruning::PruningConfig pruning;
    faults::CampaignOptions campaign;
};

/**
 * Register the shared options (--paper, --seed, --baseline,
 * --loop-iters, --bit-samples, --pilots, --workers, --chunk,
 * --no-slicing, --no-checkpoints, --fault-model, --journal, --resume,
 * --cache, --metrics-out, --progress, --json) against @p opts.  Call
 * finalizeCommonOptions() after a successful parse.
 */
void addCommonOptions(OptionTable &table, CommonCliOptions &opts);

/**
 * Propagate cross-cutting values after parsing: the master seed into
 * the pruning config and the campaign's model-randomness seed, the
 * journal path/resume flag into the campaign options, and the parsed
 * --fault-model strategy into CampaignOptions::faultModel.  Returns
 * false (with a diagnostic on stderr) when the combination is invalid
 * (--resume without --journal, malformed --fault-model spec).
 */
bool finalizeCommonOptions(CommonCliOptions &opts);

/**
 * The campaign identity folded into a journal's header hash alongside
 * the site-list hash: kernel, scale, and every pruning knob that
 * shapes the site list.  Changing any of them makes a stale journal
 * fail resume validation instead of silently mixing campaigns.
 */
faults::JournalKey campaignJournalKey(const apps::KernelSpec &spec,
                                      apps::Scale scale,
                                      const CommonCliOptions &opts);

} // namespace fsp::analysis

#endif // FSP_ANALYSIS_CLI_OPTIONS_HH
