/**
 * @file
 * Unified --json campaign report implementation.
 */

#include "analysis/report.hh"

#include "analysis/analyzer.hh"
#include "analysis/observability.hh"
#include "util/json.hh"

namespace fsp::analysis {

void
writeOutcomeProfile(JsonWriter &json, std::string_view key,
                    const faults::OutcomeDist &dist)
{
    json.beginObject(key);
    json.field("runs", dist.runs());
    json.field("totalWeight", dist.total());
    json.field("masked", dist.fraction(faults::Outcome::Masked));
    json.field("sdc", dist.fraction(faults::Outcome::SDC));
    json.field("other", dist.fraction(faults::Outcome::Other));
    json.endObject();
}

void
writeCampaignReport(std::ostream &out, const CampaignReport &report)
{
    JsonWriter json(out);
    json.beginObject();
    json.field("kernel", report.spec->fullName());
    if (report.includeSuite)
        json.field("suite", report.spec->suite);
    json.field("scale", apps::scaleName(report.scale));
    json.field("seed", report.seed);

    if (report.space != nullptr) {
        json.beginObject("faultSpace");
        json.field("threads", report.space->threadCount());
        json.field("dynInstrs", report.space->totalDynInstrs());
        json.field("sites", report.space->totalSites());
        json.endObject();
    }

    if (report.analysis != nullptr) {
        faults::Injector &injector = report.analysis->injector();
        json.beginObject("engine");
        json.field("slicing", injector.slicingDescription());
        json.field("checkpoints", injector.checkpointDescription());
        json.field("slicingActive", injector.slicingActive());
        json.field("checkpointsActive", injector.checkpointsActive());
        json.field("faultModel", report.faultModel);
        if (report.stats != nullptr) {
            json.field("workers", static_cast<std::uint64_t>(
                                      report.stats->workers));
        }
        json.endObject();
    }

    if (report.stageCounts != nullptr) {
        const pruning::StageCounts &c = *report.stageCounts;
        json.beginObject("stageCounts");
        json.field("exhaustive", c.exhaustive);
        json.field("afterThread", c.afterThread);
        json.field("afterInstruction", c.afterInstruction);
        json.field("afterLoop", c.afterLoop);
        json.field("afterBit", c.afterBit);
        json.endObject();
    }

    if (report.estimate != nullptr)
        writeOutcomeProfile(json, "prunedEstimate", report.estimate->dist);
    if (report.baseline != nullptr)
        writeOutcomeProfile(json, "randomBaseline", report.baseline->dist);
    if (report.estimate != nullptr)
        report.estimate->anatomy.writeJson(json);

    if (report.stats != nullptr) {
        json.beginObject("campaignStats");
        faults::writeCampaignStats(json, *report.stats);
        json.endObject();
    }

    if (report.extra)
        report.extra(json);

    if (report.obs != nullptr)
        report.obs->writeJsonSnapshot(json);
    json.endObject();
}

} // namespace fsp::analysis
