/**
 * @file
 * The tools' unified --json campaign report.  tools/fsp (campaign and
 * protect subcommands) and examples/resilience_report used to carry
 * near-identical hand-rolled writers; this module owns the document
 * shape so every front end emits the same fields for the same data and
 * a consumer can parse any of them with one schema.
 *
 * The report is assembled from optional sections: only the blocks
 * whose inputs are supplied appear in the output, so the lightweight
 * fsp report and the exhaustive resilience_report differ only in what
 * they fill in, not in how it is spelled.
 */

#ifndef FSP_ANALYSIS_REPORT_HH
#define FSP_ANALYSIS_REPORT_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>

#include "apps/app.hh"
#include "faults/campaign_engine.hh"
#include "pruning/pipeline.hh"

namespace fsp {
class JsonWriter;
} // namespace fsp

namespace fsp::analysis {

class KernelAnalysis;
struct Observability;

/**
 * Emit an outcome distribution as a named JSON object:
 * { runs, totalWeight, masked, sdc, other }.
 */
void writeOutcomeProfile(JsonWriter &json, std::string_view key,
                         const faults::OutcomeDist &dist);

/**
 * Everything writeCampaignReport() can render.  Pointer fields are
 * optional: leave one null and its section is omitted.  All referenced
 * objects must outlive the write call; nothing is owned.
 */
struct CampaignReport
{
    /** Kernel identity (required). */
    const apps::KernelSpec *spec = nullptr;
    apps::Scale scale = apps::Scale::Small;
    std::uint64_t seed = 0;

    /** Include the kernel's suite name (resilience_report style). */
    bool includeSuite = false;

    /** Engine block source (slicing/checkpoint/model description). */
    KernelAnalysis *analysis = nullptr;
    std::string faultModel;

    /** "faultSpace" block: threads / dynInstrs / sites. */
    const faults::FaultSpace *space = nullptr;

    /** "stageCounts" block (Fig. 10 series). */
    const pruning::StageCounts *stageCounts = nullptr;

    /** "prunedEstimate" profile plus the SDC anatomy block. */
    const faults::CampaignResult *estimate = nullptr;

    /** "randomBaseline" profile. */
    const faults::CampaignResult *baseline = nullptr;

    /** "campaignStats" block (also fills engine.workers). */
    const faults::CampaignStats *stats = nullptr;

    /** "metricsSnapshot" block. */
    const Observability *obs = nullptr;

    /**
     * Report-specific body, emitted between the shared sections and
     * the metrics snapshot.  `fsp protect` injects its protection
     * block (selected set, modeled vs achieved cost) here.
     */
    std::function<void(JsonWriter &)> extra;
};

/**
 * Write the whole report as one JSON document (trailing newline
 * included) to @p out.
 */
void writeCampaignReport(std::ostream &out, const CampaignReport &report);

} // namespace fsp::analysis

#endif // FSP_ANALYSIS_REPORT_HH
