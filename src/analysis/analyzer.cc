/**
 * @file
 * Analysis facade implementation.
 */

#include "analysis/analyzer.hh"

#include <set>
#include <utility>

#include "pruning/instr_common.hh"
#include "sim/section.hh"
#include "util/logging.hh"

namespace fsp::analysis {

KernelAnalysis::KernelAnalysis(const apps::KernelSpec &spec,
                               apps::Scale scale, std::uint64_t input_seed)
    : spec_(spec), setup_(spec.setup(scale, input_seed))
{
    executor_ =
        std::make_unique<sim::Executor>(setup_.program, setup_.launch);
}

KernelAnalysis::KernelAnalysis(const apps::KernelSpec &spec,
                               apps::Scale scale,
                               const AnalysisConfig &config,
                               std::uint64_t input_seed)
    : KernelAnalysis(spec, scale, input_seed)
{
    configure(config);
}

void
KernelAnalysis::configure(const AnalysisConfig &config)
{
    applySlicing(config.slicing);
    applyCheckpoints(config.checkpoints);
    if (config.faultModel)
        applyFaultModel(config.faultModel, config.modelSeed);
    applySectionCacheDir(config.sectionCacheDir);
    applyExecMetrics(config.execMetrics);
}

const faults::FaultSpace &
KernelAnalysis::space()
{
    if (!space_)
        space_.emplace(*executor_, setup_.memory);
    return *space_;
}

faults::Injector &
KernelAnalysis::injector()
{
    if (!injector_) {
        faults::InjectorOptions options;
        options.checkpoints = checkpoints_enabled_;
        injector_.emplace(setup_.program, setup_.launch, setup_.memory,
                          setup_.outputs, options);
        // Settings stored before the first (golden-run-triggering)
        // construction take effect now.
        injector_->setSlicingEnabled(slicing_enabled_);
        if (pending_model_set_) {
            injector_->setFaultModel(pending_model_, pending_model_seed_);
            pending_model_.reset();
            pending_model_set_ = false;
        }
    }
    return *injector_;
}

void
KernelAnalysis::applySlicing(bool enabled)
{
    slicing_enabled_ = enabled;
    if (injector_) {
        injector_->setSlicingEnabled(enabled);
        // The engine's worker injectors are clones; rebuild them with
        // the new setting on next use.
        engine_.reset();
    }
}

void
KernelAnalysis::applyCheckpoints(bool enabled)
{
    checkpoints_enabled_ = enabled;
    if (injector_) {
        injector_->setCheckpointsEnabled(enabled);
        engine_.reset();
    }
}

pruning::PruningResult
KernelAnalysis::prune(const pruning::PruningConfig &config,
                      metrics::Registry *metrics)
{
    // The pipeline itself never injects, but the campaigns that follow
    // it do: honour the config's A/B switch before they run.
    if (!config.execution.checkpoints)
        applyCheckpoints(false);
    const faults::SlicingPlan *slicing =
        injector().slicingEnabled() ? &injector().slicingPlan() : nullptr;
    return pruning::prunePipeline(*executor_, setup_.memory, space(),
                                  config, slicing, metrics);
}

faults::OutcomeDist
KernelAnalysis::runPrunedCampaign(const pruning::PruningResult &pruned)
{
    return runPrunedCampaign(pruned, faults::CampaignOptions{});
}

faults::OutcomeDist
KernelAnalysis::runPrunedCampaign(const pruning::PruningResult &pruned,
                                  const faults::CampaignOptions &options)
{
    return runPrunedCampaignDetailed(pruned, options).dist;
}

faults::CampaignResult
KernelAnalysis::runPrunedCampaignDetailed(
    const pruning::PruningResult &pruned,
    const faults::CampaignOptions &options)
{
    faults::CampaignOptions effective = options;
    // Never attach the section cache to a protected campaign: cache
    // entries are recorded without protection active, so replaying them
    // (or recording protected outcomes for later unprotected reuse)
    // would corrupt results in both directions.
    if (section_cache_ && !effective.sectionCache && !effective.protection) {
        if (!section_index_)
            buildSectionIndex(pruned.sites);
        effective.sectionCache = section_cache_.get();
        effective.sectionIndex = &*section_index_;
    }
    faults::CampaignResult result =
        campaignEngine(effective).run(pruned.sites);
    result.dist.addWeight(faults::Outcome::Masked,
                          pruned.assumedMaskedWeight);
    return result;
}

void
KernelAnalysis::applySectionCacheDir(const std::string &dir)
{
    if (dir.empty()) {
        section_cache_.reset();
        section_index_.reset();
        return;
    }
    if (section_cache_ && section_cache_->dir() == dir)
        return;
    section_cache_ = std::make_unique<faults::SectionCache>(dir);
    section_index_.reset();
}

const faults::SectionIndex &
KernelAnalysis::buildSectionIndex(
    const std::vector<faults::WeightedSite> &sites)
{
    // One value-recorded traced run over every distinct thread the
    // site list touches (ordered set: the lowest thread id is the
    // deterministic alignment base).
    std::set<std::uint64_t> threads;
    for (const faults::WeightedSite &weighted : sites)
        threads.insert(weighted.site.thread);

    sim::TraceOptions opts;
    opts.recordValues = true;
    for (std::uint64_t thread : threads)
        opts.traceThreads.insert(thread);

    sim::GlobalMemory scratch = setup_.memory;
    sim::RunResult run = executor_->run(scratch, &opts);
    if (run.status != sim::RunStatus::Completed)
        fatal("section-index profiling run failed: ", run.diagnostic);

    faults::SectionIndex index(faults::campaignContextHash(
        setup_.launch, injector().outputs(),
        injector().goldenOutputs()));
    const std::vector<sim::DynRecord> *base = nullptr;
    for (std::uint64_t thread : threads) {
        const std::vector<sim::DynRecord> &trace =
            run.trace.dynTraces.at(thread);
        sim::SectionSplitOptions split;
        if (base) {
            // Cut at the common-block prefix/suffix boundaries so
            // aligned threads share section frontiers with the base.
            split.extraBoundaries =
                pruning::alignmentBoundaries(*base, trace);
        } else {
            base = &trace;
        }
        index.addThread(thread, trace,
                        sim::splitTrace(setup_.program.instructions(),
                                        trace, split));
    }
    section_index_ = std::move(index);
    return *section_index_;
}

void
KernelAnalysis::applyFaultModel(
    std::shared_ptr<const faults::FaultModel> model,
    std::uint64_t modelSeed)
{
    if (!injector_) {
        pending_model_ = std::move(model);
        pending_model_seed_ = modelSeed;
        pending_model_set_ = true;
        return;
    }
    injector_->setFaultModel(std::move(model), modelSeed);
    // Engine workers are clones of the injector; rebuild on next use so
    // they pick the new model up.
    engine_.reset();
}

faults::CampaignResult
KernelAnalysis::runBaseline(std::size_t runs, std::uint64_t seed)
{
    return runBaseline(runs, seed, faults::CampaignOptions{});
}

faults::CampaignResult
KernelAnalysis::runBaseline(std::size_t runs, std::uint64_t seed,
                            const faults::CampaignOptions &options)
{
    Prng prng(seed);
    return campaignEngine(options).run(space(), runs, prng);
}

faults::CampaignEngine &
KernelAnalysis::campaignEngine(const faults::CampaignOptions &options)
{
    if (!engine_ || !engine_options_.sameEngineConfig(options)) {
        engine_ =
            std::make_unique<faults::CampaignEngine>(injector(), options);
        engine_options_ = options;
    } else {
        // sameEngineConfig ignores the result-neutral fields, so a
        // cache hit must still re-target them -- a stale observer or
        // section-index pointer from an earlier caller would dangle.
        engine_->setObserver(options.observer);
        engine_->setSectionCache(options.sectionCache,
                                 options.sectionIndex);
        engine_->setKeepSiteOutcomes(options.keepSiteOutcomes);
    }
    return *engine_;
}

} // namespace fsp::analysis
