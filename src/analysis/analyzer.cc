/**
 * @file
 * Analysis facade implementation.
 */

#include "analysis/analyzer.hh"

namespace fsp::analysis {

KernelAnalysis::KernelAnalysis(const apps::KernelSpec &spec,
                               apps::Scale scale, std::uint64_t input_seed)
    : spec_(spec), setup_(spec.setup(scale, input_seed))
{
    executor_ =
        std::make_unique<sim::Executor>(setup_.program, setup_.launch);
}

const faults::FaultSpace &
KernelAnalysis::space()
{
    if (!space_)
        space_.emplace(*executor_, setup_.memory);
    return *space_;
}

faults::Injector &
KernelAnalysis::injector()
{
    if (!injector_) {
        faults::InjectorOptions options;
        options.checkpoints = checkpoints_enabled_;
        injector_.emplace(setup_.program, setup_.launch, setup_.memory,
                          setup_.outputs, options);
    }
    return *injector_;
}

void
KernelAnalysis::setSlicingEnabled(bool enabled)
{
    injector().setSlicingEnabled(enabled);
    // The engine's worker injectors are clones; rebuild them with the
    // new setting on next use.
    engine_.reset();
}

void
KernelAnalysis::setCheckpointsEnabled(bool enabled)
{
    checkpoints_enabled_ = enabled;
    if (injector_)
        injector_->setCheckpointsEnabled(enabled);
    engine_.reset();
}

pruning::PruningResult
KernelAnalysis::prune(const pruning::PruningConfig &config,
                      metrics::Registry *metrics)
{
    // The pipeline itself never injects, but the campaigns that follow
    // it do: honour the config's A/B switch before they run.
    if (!config.execution.checkpoints)
        setCheckpointsEnabled(false);
    const faults::SlicingPlan *slicing =
        injector().slicingEnabled() ? &injector().slicingPlan() : nullptr;
    return pruning::prunePipeline(*executor_, setup_.memory, space(),
                                  config, slicing, metrics);
}

faults::OutcomeDist
KernelAnalysis::runPrunedCampaign(const pruning::PruningResult &pruned)
{
    faults::CampaignResult result =
        faults::runWeightedSiteList(injector(), pruned.sites);
    result.dist.addWeight(faults::Outcome::Masked,
                          pruned.assumedMaskedWeight);
    return result.dist;
}

faults::OutcomeDist
KernelAnalysis::runPrunedCampaign(const pruning::PruningResult &pruned,
                                  const faults::CampaignOptions &options)
{
    return runPrunedCampaignDetailed(pruned, options).dist;
}

faults::CampaignResult
KernelAnalysis::runPrunedCampaignDetailed(
    const pruning::PruningResult &pruned,
    const faults::CampaignOptions &options)
{
    faults::CampaignResult result =
        campaignEngine(options).run(pruned.sites);
    result.dist.addWeight(faults::Outcome::Masked,
                          pruned.assumedMaskedWeight);
    return result;
}

void
KernelAnalysis::setFaultModel(
    std::shared_ptr<const faults::FaultModel> model,
    std::uint64_t modelSeed)
{
    injector().setFaultModel(std::move(model), modelSeed);
    // Engine workers are clones of the injector; rebuild on next use so
    // they pick the new model up.
    engine_.reset();
}

faults::CampaignResult
KernelAnalysis::runBaseline(std::size_t runs, std::uint64_t seed)
{
    Prng prng(seed);
    return faults::runRandomCampaign(injector(), space(), runs, prng);
}

faults::CampaignResult
KernelAnalysis::runBaseline(std::size_t runs, std::uint64_t seed,
                            const faults::CampaignOptions &options)
{
    Prng prng(seed);
    return campaignEngine(options).run(space(), runs, prng);
}

faults::CampaignEngine &
KernelAnalysis::campaignEngine(const faults::CampaignOptions &options)
{
    if (!engine_ || !engine_options_.sameEngineConfig(options)) {
        engine_ =
            std::make_unique<faults::CampaignEngine>(injector(), options);
        engine_options_ = options;
    } else {
        // sameEngineConfig ignores the notification-only fields, so a
        // cache hit must still re-target them -- a stale observer
        // pointer from an earlier caller would dangle.
        engine_->setObserver(options.observer);
        engine_->setProgressCallback(options.progressCallback);
    }
    return *engine_;
}

} // namespace fsp::analysis
