/**
 * @file
 * Outcome breakdown by instruction class.
 *
 * The paper's CTA-level study (section III-B1) picks target
 * instructions across classes -- memory access (ld), arithmetic (add,
 * mad), logic (and, shl), and special-function (rcp) -- and GPU
 * injectors such as GPU-Qin and SASSIFI report per-instruction-type
 * resilience.  This module produces that view for any kernel: fault
 * sites of the representative threads are bucketed by the class of the
 * instruction that writes the faulted destination, a sample of each
 * bucket is injected, and the per-class outcome distributions are
 * returned.
 */

#ifndef FSP_ANALYSIS_BREAKDOWN_HH
#define FSP_ANALYSIS_BREAKDOWN_HH

#include <map>
#include <string>

#include "analysis/analyzer.hh"
#include "faults/outcome.hh"
#include "sim/isa.hh"

namespace fsp::analysis {

/** Coarse instruction classes (SASSIFI/GPU-Qin style). */
enum class InstrClass
{
    Memory,     ///< ld (LSU destination writes)
    Arithmetic, ///< add/sub/mul/mad/div/rem/min/max/neg/abs and wides
    Logic,      ///< and/or/xor/not/shl/shr
    Compare,    ///< set/setp/selp (predicate system)
    Special,    ///< rcp/sqrt/rsqrt/ex2/lg2 (SFU)
    Data,       ///< mov/cvt
};

/** Human-readable class name. */
std::string instrClassName(InstrClass cls);

/** Classify an opcode (only destination-writing opcodes are valid). */
InstrClass classifyOpcode(sim::Opcode op);

/** Per-class outcome distributions plus bucket sizes. */
struct ClassBreakdown
{
    struct Entry
    {
        faults::OutcomeDist dist;
        std::uint64_t bucketSites = 0; ///< sites available in the class
    };

    std::map<InstrClass, Entry> classes;
};

/**
 * Measure the per-class outcome distributions of a kernel using its
 * thread-wise representatives.
 *
 * @param ka kernel analysis context.
 * @param sites_per_class injections per class (buckets smaller than
 *        this are injected exhaustively).
 * @param seed sampling seed.
 */
ClassBreakdown outcomeByInstrClass(KernelAnalysis &ka,
                                   std::size_t sites_per_class,
                                   std::uint64_t seed);

} // namespace fsp::analysis

#endif // FSP_ANALYSIS_BREAKDOWN_HH
