/**
 * @file
 * Plain-text table rendering for the benchmark harnesses.  Every bench
 * binary prints the rows/series of one paper table or figure through this
 * formatter so output stays uniform and diffable.
 */

#ifndef FSP_UTIL_TABLE_HH
#define FSP_UTIL_TABLE_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace fsp {

/**
 * A simple column-aligned text table.  Cells are strings; helpers format
 * numbers consistently (fixed decimals, scientific for large counts).
 */
class TextTable
{
  public:
    /** Construct with column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal separator before the next row. */
    void addSeparator();

    /** Render to a stream with padding and a header rule. */
    void print(std::ostream &os) const;

    /** Render to a string. */
    std::string str() const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::size_t> separators_;
};

/** Format a double with @p decimals fixed digits. */
std::string fmtFixed(double value, int decimals);

/** Format a ratio in [0,1] as a percentage with @p decimals digits. */
std::string fmtPercent(double ratio, int decimals = 2);

/** Format a large count in scientific notation like the paper (3.44E+07). */
std::string fmtScientific(double value, int decimals = 2);

/** Format an integral count with thousands separators. */
std::string fmtCount(std::uint64_t value);

} // namespace fsp

#endif // FSP_UTIL_TABLE_HH
