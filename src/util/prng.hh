/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything stochastic in the library (input generation, campaign
 * sampling, loop-iteration sampling, representative selection) flows from
 * explicitly named 64-bit seeds through these generators, so every
 * experiment is exactly reproducible.
 */

#ifndef FSP_UTIL_PRNG_HH
#define FSP_UTIL_PRNG_HH

#include <cstdint>
#include <string_view>
#include <vector>

namespace fsp {

/**
 * SplitMix64 step: used both as a stand-alone mixer and to seed Xoshiro.
 *
 * @param state in/out 64-bit state; advanced by the golden-gamma constant.
 * @return a well-mixed 64-bit output.
 */
std::uint64_t splitMix64(std::uint64_t &state);

/** Derive a child seed from a parent seed and a label (FNV-1a mix). */
std::uint64_t deriveSeed(std::uint64_t parent, std::string_view label);

/**
 * Xoshiro256** generator.  Small, fast, and high quality; satisfies the
 * UniformRandomBitGenerator requirements so it can also feed <random>.
 */
class Prng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform integer in [0, bound) using Lemire's rejection method. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Bernoulli draw with success probability p. */
    bool chance(double p);

    /** Fork an independent child stream identified by a label. */
    Prng fork(std::string_view label) const;

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        for (std::size_t i = values.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(below(i));
            std::swap(values[i - 1], values[j]);
        }
    }

    /**
     * Sample @p count distinct indices from [0, population) without
     * replacement, returned in increasing order.  If count >= population
     * every index is returned.
     */
    std::vector<std::size_t> sampleWithoutReplacement(std::size_t population,
                                                      std::size_t count);

  private:
    std::uint64_t state_[4];
    std::uint64_t seed_;
};

} // namespace fsp

#endif // FSP_UTIL_PRNG_HH
