/**
 * @file
 * Streaming JSON writer implementation.
 */

#include "util/json.hh"

#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace fsp {

JsonWriter::JsonWriter(std::ostream &os, int indentWidth)
    : os_(os), indent_width_(indentWidth)
{
}

void
JsonWriter::comma()
{
    if (!has_elements_.empty()) {
        if (has_elements_.back())
            os_ << ',';
        has_elements_.back() = true;
        newlineIndent();
    }
}

void
JsonWriter::newlineIndent()
{
    os_ << '\n';
    for (std::size_t i = 0;
         i < has_elements_.size() * static_cast<std::size_t>(indent_width_);
         ++i) {
        os_ << ' ';
    }
}

void
JsonWriter::quoted(std::string_view s)
{
    os_ << '"';
    for (char c : s) {
        switch (c) {
          case '"': os_ << "\\\""; break;
          case '\\': os_ << "\\\\"; break;
          case '\n': os_ << "\\n"; break;
          case '\r': os_ << "\\r"; break;
          case '\t': os_ << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os_ << buf;
            } else {
                os_ << c;
            }
        }
    }
    os_ << '"';
}

void
JsonWriter::key(std::string_view k)
{
    comma();
    quoted(k);
    os_ << ": ";
}

void
JsonWriter::beginObject()
{
    comma();
    os_ << '{';
    has_elements_.push_back(false);
}

void
JsonWriter::beginObject(std::string_view k)
{
    key(k);
    os_ << '{';
    has_elements_.push_back(false);
}

void
JsonWriter::beginArray()
{
    comma();
    os_ << '[';
    has_elements_.push_back(false);
}

void
JsonWriter::beginArray(std::string_view k)
{
    key(k);
    os_ << '[';
    has_elements_.push_back(false);
}

void
JsonWriter::endObject()
{
    FSP_ASSERT(!has_elements_.empty(), "JsonWriter: endObject underflow");
    bool had = has_elements_.back();
    has_elements_.pop_back();
    if (had)
        newlineIndent();
    os_ << '}';
    if (has_elements_.empty())
        os_ << '\n';
}

void
JsonWriter::endArray()
{
    FSP_ASSERT(!has_elements_.empty(), "JsonWriter: endArray underflow");
    bool had = has_elements_.back();
    has_elements_.pop_back();
    if (had)
        newlineIndent();
    os_ << ']';
    if (has_elements_.empty())
        os_ << '\n';
}

void
JsonWriter::field(std::string_view k, std::string_view v)
{
    key(k);
    quoted(v);
}

void
JsonWriter::field(std::string_view k, const char *v)
{
    field(k, std::string_view(v));
}

void
JsonWriter::field(std::string_view k, std::uint64_t v)
{
    key(k);
    os_ << v;
}

void
JsonWriter::field(std::string_view k, std::int64_t v)
{
    key(k);
    os_ << v;
}

void
JsonWriter::field(std::string_view k, unsigned v)
{
    field(k, static_cast<std::uint64_t>(v));
}

void
JsonWriter::field(std::string_view k, double v)
{
    key(k);
    if (std::isfinite(v)) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        os_ << buf;
    } else {
        os_ << "null"; // JSON has no Inf/NaN literals
    }
}

void
JsonWriter::field(std::string_view k, bool v)
{
    key(k);
    os_ << (v ? "true" : "false");
}

void
JsonWriter::value(std::string_view v)
{
    comma();
    quoted(v);
}

void
JsonWriter::value(std::uint64_t v)
{
    comma();
    os_ << v;
}

void
JsonWriter::value(double v)
{
    comma();
    if (std::isfinite(v)) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        os_ << buf;
    } else {
        os_ << "null";
    }
}

} // namespace fsp
