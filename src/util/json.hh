/**
 * @file
 * Minimal streaming JSON writer for the tools' --json output.
 *
 * No reflection and no DOM: callers emit objects/arrays in order and
 * the writer handles quoting, escaping, commas and indentation.  Kept
 * deliberately tiny -- the repo's machine-readable surface is a handful
 * of flat reports (resilience profiles, injection stats, throughput),
 * not general serialization.
 */

#ifndef FSP_UTIL_JSON_HH
#define FSP_UTIL_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace fsp {

/**
 * Streaming JSON emitter.  Usage:
 *
 *     JsonWriter w(std::cout);
 *     w.beginObject();
 *     w.field("kernel", "GEMM/K1");
 *     w.beginObject("stats");
 *     w.field("runs", std::uint64_t{42});
 *     w.endObject();
 *     w.endObject();   // prints a trailing newline at top level
 *
 * Misnesting (ending more scopes than were opened) panics.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, int indentWidth = 2);

    /** @{ Anonymous scopes (top level or inside arrays). */
    void beginObject();
    void beginArray();
    /** @} */

    /** @{ Named scopes (inside objects). */
    void beginObject(std::string_view key);
    void beginArray(std::string_view key);
    /** @} */

    void endObject();
    void endArray();

    /** @{ Named scalar fields (inside objects). */
    void field(std::string_view key, std::string_view value);
    void field(std::string_view key, const char *value);
    void field(std::string_view key, std::uint64_t value);
    void field(std::string_view key, std::int64_t value);
    void field(std::string_view key, unsigned value);
    void field(std::string_view key, double value);
    void field(std::string_view key, bool value);
    /** @} */

    /** @{ Anonymous scalar values (inside arrays). */
    void value(std::string_view v);
    void value(std::uint64_t v);
    void value(double v);
    /** @} */

  private:
    void comma();
    void newlineIndent();
    void key(std::string_view k);
    void quoted(std::string_view s);

    std::ostream &os_;
    int indent_width_;
    /** One entry per open scope; true once it holds an element. */
    std::vector<bool> has_elements_;
};

} // namespace fsp

#endif // FSP_UTIL_JSON_HH
