/**
 * @file
 * Minimal CSV writer (RFC-4180-style quoting) so bench harnesses can
 * export machine-readable results next to their text tables (set
 * FSP_CSV_DIR to a directory to enable it in the benches).
 */

#ifndef FSP_UTIL_CSV_HH
#define FSP_UTIL_CSV_HH

#include <string>
#include <vector>

namespace fsp {

/** Column-checked CSV accumulator. */
class CsvWriter
{
  public:
    /** Construct with column headers. */
    explicit CsvWriter(std::vector<std::string> headers);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Render the document (headers + rows, quoted as needed). */
    std::string str() const;

    /**
     * Write to @p path.
     * @return true on success; warns and returns false on I/O error.
     */
    bool writeFile(const std::string &path) const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace fsp

#endif // FSP_UTIL_CSV_HH
