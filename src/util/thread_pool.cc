/**
 * @file
 * Thread pool implementation.
 */

#include "util/thread_pool.hh"

#include "util/env.hh"
#include "util/logging.hh"

namespace fsp {

unsigned
ThreadPool::defaultWorkerCount()
{
    std::uint64_t from_env = envU64("FSP_WORKERS", 0);
    if (from_env > 0)
        return static_cast<unsigned>(from_env);
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = defaultWorkerCount();
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &thread : threads_)
        thread.join();
}

void
ThreadPool::workerLoop(unsigned index)
{
    // Tag this thread's log lines with its worker id so interleaved
    // campaign output stays attributable.
    setLogWorkerId(static_cast<int>(index));

    std::uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(std::size_t, unsigned)> *body = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [&] {
                return stop_ || generation_ != seen_generation;
            });
            if (stop_)
                return;
            seen_generation = generation_;
            body = body_;
        }

        // Claim chunks until this job is drained.  Claiming happens
        // under the mutex together with a generation check, so a worker
        // that was descheduled across a whole job cannot burn a ticket
        // (or dereference a stale body) belonging to a later job; chunk
        // bodies are injection runs, so the lock is not a bottleneck.
        for (;;) {
            std::size_t chunk;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (generation_ != seen_generation ||
                    next_chunk_ >= chunk_count_) {
                    break;
                }
                if (first_error_) {
                    // Abandon the job's unclaimed chunks: account them
                    // as done so the caller wakes once every in-flight
                    // chunk has drained, then rethrows the error.
                    abandoned_chunks_ += chunk_count_ - next_chunk_;
                    chunks_done_ += chunk_count_ - next_chunk_;
                    next_chunk_ = chunk_count_;
                    if (chunks_done_ == chunk_count_)
                        done_cv_.notify_all();
                    break;
                }
                chunk = next_chunk_++;
            }
            try {
                (*body)(chunk, index);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!first_error_)
                    first_error_ = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lock(mutex_);
                chunks_done_++;
                if (chunks_done_ == chunk_count_)
                    done_cv_.notify_all();
            }
        }
    }
}

void
ThreadPool::parallelFor(
    std::size_t chunkCount,
    const std::function<void(std::size_t, unsigned)> &body)
{
    if (chunkCount == 0)
        return;

    std::unique_lock<std::mutex> lock(mutex_);
    FSP_ASSERT(body_ == nullptr, "ThreadPool::parallelFor is not reentrant");
    body_ = &body;
    chunk_count_ = chunkCount;
    next_chunk_ = 0;
    chunks_done_ = 0;
    abandoned_chunks_ = 0;
    first_error_ = nullptr;
    generation_++;
    lock.unlock();
    work_cv_.notify_all();

    lock.lock();
    done_cv_.wait(lock, [&] { return chunks_done_ == chunk_count_; });
    body_ = nullptr;
    chunk_count_ = 0;
    last_abandoned_chunks_ = abandoned_chunks_;
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();

    if (error)
        std::rethrow_exception(error);
}

} // namespace fsp
