/**
 * @file
 * Minimal gem5-style logging and error reporting.
 *
 * Severity model follows the gem5 convention:
 *  - inform(): normal operating status, no connotation of a problem.
 *  - warn():   something may be subtly off; a good first place to look if
 *              strange behaviour follows.
 *  - fatal():  the run cannot continue due to a *user* error (bad
 *              configuration, invalid arguments).  Exits with code 1.
 *  - panic():  an internal invariant was violated (a bug in this library).
 *              Aborts so a debugger/core dump can capture state.
 */

#ifndef FSP_UTIL_LOGGING_HH
#define FSP_UTIL_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace fsp {

/** Global verbosity switch; when false, inform() is suppressed. */
bool verboseLogging();

/** Enable or disable inform() output (default: enabled). */
void setVerboseLogging(bool enabled);

/**
 * Tag every log line emitted by the calling thread with a worker id
 * (thread-local; pass a negative id to clear).  Campaign workers set
 * this from the thread pool so interleaved lines are attributable:
 *
 *     [   12.345] [warn/w3] ...
 *
 * The timestamp is seconds since the first log line of the process.
 */
void setLogWorkerId(int worker);

namespace detail {

[[noreturn]] void exitFatal();
[[noreturn]] void exitPanic();

void emit(const char *tag, const std::string &message);

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report normal status to stderr (suppressed when not verbose). */
template <typename... Args>
void
inform(Args &&...args)
{
    if (verboseLogging())
        detail::emit("info", detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit("warn", detail::concat(std::forward<Args>(args)...));
}

/** Terminate due to a user error (bad input/config); exits with code 1. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emit("fatal", detail::concat(std::forward<Args>(args)...));
    detail::exitFatal();
}

/** Terminate due to an internal bug; aborts. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emit("panic", detail::concat(std::forward<Args>(args)...));
    detail::exitPanic();
}

/** panic() unless the stated invariant holds. */
#define FSP_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::fsp::panic("assertion failed: ", #cond, " ", ##__VA_ARGS__);  \
        }                                                                   \
    } while (0)

} // namespace fsp

#endif // FSP_UTIL_LOGGING_HH
