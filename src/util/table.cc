/**
 * @file
 * Implementation of the text table renderer and number formatters.
 */

#include "util/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace fsp {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    FSP_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    FSP_ASSERT(cells.size() == headers_.size(),
               "row arity ", cells.size(), " != header arity ",
               headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    separators_.push_back(rows_.size());
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto rule = [&] {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << '+' << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "| " << cells[c]
               << std::string(widths[c] - cells[c].size() + 1, ' ');
        }
        os << "|\n";
    };

    rule();
    emit(headers_);
    rule();
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (std::find(separators_.begin(), separators_.end(), r) !=
            separators_.end()) {
            rule();
        }
        emit(rows_[r]);
    }
    rule();
}

std::string
TextTable::str() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

std::string
fmtFixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
fmtPercent(double ratio, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, ratio * 100.0);
    return buf;
}

std::string
fmtScientific(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*E", decimals, value);
    return buf;
}

std::string
fmtCount(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    std::size_t lead = digits.size() % 3;
    for (std::size_t i = 0; i < digits.size(); ++i) {
        if (i != 0 && (i + 3 - lead) % 3 == 0)
            out.push_back(',');
        out.push_back(digits[i]);
    }
    return out;
}

} // namespace fsp
