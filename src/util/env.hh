/**
 * @file
 * Environment-variable overrides for experiment scaling.  The bench
 * harnesses default to geometries/sample sizes that finish on one CPU
 * core; these knobs let a user scale any experiment back up to paper
 * scale without recompiling.
 */

#ifndef FSP_UTIL_ENV_HH
#define FSP_UTIL_ENV_HH

#include <cstdint>
#include <string>

namespace fsp {

/** Read an integer env var, returning @p fallback when unset/invalid. */
std::uint64_t envU64(const std::string &name, std::uint64_t fallback);

/** Read a double env var, returning @p fallback when unset/invalid. */
double envDouble(const std::string &name, double fallback);

} // namespace fsp

#endif // FSP_UTIL_ENV_HH
