/**
 * @file
 * Implementation of the logging sinks.
 */

#include "util/logging.hh"

#include <atomic>
#include <chrono>

namespace fsp {

namespace {

std::atomic<bool> verbose{true};

/** Worker id of the calling thread; < 0 outside pool workers. */
thread_local int log_worker = -1;

/** Seconds since the first log line of the process. */
double
logElapsed()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point start = Clock::now();
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

bool
verboseLogging()
{
    return verbose.load(std::memory_order_relaxed);
}

void
setVerboseLogging(bool enabled)
{
    verbose.store(enabled, std::memory_order_relaxed);
}

void
setLogWorkerId(int worker)
{
    log_worker = worker;
}

namespace detail {

void
emit(const char *tag, const std::string &message)
{
    // One fprintf per line: stderr is unbuffered but a single call
    // keeps concurrent workers' lines from interleaving mid-line.
    if (log_worker >= 0) {
        std::fprintf(stderr, "[%10.3f] [%s/w%d] %s\n", logElapsed(),
                     tag, log_worker, message.c_str());
    } else {
        std::fprintf(stderr, "[%10.3f] [%s] %s\n", logElapsed(), tag,
                     message.c_str());
    }
    std::fflush(stderr);
}

void
exitFatal()
{
    std::exit(1);
}

void
exitPanic()
{
    std::abort();
}

} // namespace detail

} // namespace fsp
