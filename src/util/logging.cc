/**
 * @file
 * Implementation of the logging sinks.
 */

#include "util/logging.hh"

#include <atomic>

namespace fsp {

namespace {

std::atomic<bool> verbose{true};

} // namespace

bool
verboseLogging()
{
    return verbose.load(std::memory_order_relaxed);
}

void
setVerboseLogging(bool enabled)
{
    verbose.store(enabled, std::memory_order_relaxed);
}

namespace detail {

void
emit(const char *tag, const std::string &message)
{
    std::fprintf(stderr, "[%s] %s\n", tag, message.c_str());
    std::fflush(stderr);
}

void
exitFatal()
{
    std::exit(1);
}

void
exitPanic()
{
    std::abort();
}

} // namespace detail

} // namespace fsp
