/**
 * @file
 * Implementation of descriptive statistics helpers.
 */

#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace fsp {

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    double m = mean(values);
    double ss = 0.0;
    for (double v : values)
        ss += (v - m) * (v - m);
    return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double
percentile(std::vector<double> values, double p)
{
    FSP_ASSERT(!values.empty(), "percentile of empty sample");
    FSP_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values.front();
    double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    auto lo = static_cast<std::size_t>(std::floor(rank));
    auto hi = static_cast<std::size_t>(std::ceil(rank));
    double frac = rank - static_cast<double>(lo);
    return values[lo] + frac * (values[hi] - values[lo]);
}

BoxplotSummary
boxplot(const std::vector<double> &values)
{
    BoxplotSummary s;
    if (values.empty())
        return s;
    s.count = values.size();
    s.min = *std::min_element(values.begin(), values.end());
    s.max = *std::max_element(values.begin(), values.end());
    s.q1 = percentile(values, 25.0);
    s.median = percentile(values, 50.0);
    s.q3 = percentile(values, 75.0);
    s.mean = mean(values);
    return s;
}

double
linfDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    FSP_ASSERT(a.size() == b.size(), "distribution arity mismatch");
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        d = std::max(d, std::fabs(a[i] - b[i]));
    return d;
}

namespace {

/**
 * Inverse of the standard normal CDF via Peter Acklam's rational
 * approximation, refined with one Halley iteration using erfc.
 */
double
inverseNormalCdf(double p)
{
    FSP_ASSERT(p > 0.0 && p < 1.0, "inverseNormalCdf domain");

    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};

    const double p_low = 0.02425;
    const double p_high = 1.0 - p_low;
    double x;

    if (p < p_low) {
        double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= p_high) {
        double q = p - 0.5;
        double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
             a[5]) *
            q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
             1.0);
    } else {
        double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }

    // One Halley refinement step against the exact CDF (via erfc).
    double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
    double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
    x = x - u / (1.0 + x * u / 2.0);
    return x;
}

} // namespace

double
normalTwoSidedCritical(double confidence)
{
    FSP_ASSERT(confidence > 0.0 && confidence < 1.0,
               "confidence must be in (0,1)");
    return inverseNormalCdf(0.5 + confidence / 2.0);
}

} // namespace fsp
