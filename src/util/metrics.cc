/**
 * @file
 * Metrics registry implementation and exporters.
 */

#include "util/metrics.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/json.hh"
#include "util/logging.hh"

namespace fsp::metrics {

namespace {

/** Prometheus sample-value rendering (integers stay integral). */
std::string
fmtValue(double v)
{
    if (v == static_cast<double>(static_cast<long long>(v))) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string
fmtValue(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Render a sample line: name{labels} value. */
void
sampleLine(std::ostream &os, const std::string &name,
           const std::string &labels, const std::string &value)
{
    os << name;
    if (!labels.empty())
        os << '{' << labels << '}';
    os << ' ' << value << '\n';
}

/** labels + an extra le="..." entry for histogram buckets. */
std::string
withLe(const std::string &labels, const std::string &le)
{
    std::string merged = labels;
    if (!merged.empty())
        merged += ',';
    merged += "le=\"" + le + "\"";
    return merged;
}

} // namespace

void
Shard::add(CounterId id, std::uint64_t n)
{
    FSP_ASSERT(id.valid(), "shard add on unregistered counter");
    if (id.slot >= counters_.size())
        counters_.resize(id.slot + 1, 0);
    counters_[id.slot] += n;
}

void
Shard::observe(HistogramId id, double value)
{
    FSP_ASSERT(id.valid() && owner_,
               "shard observe on unregistered histogram");
    if (id.slot >= hists_.size())
        hists_.resize(id.slot + 1);
    Hist &hist = hists_[id.slot];
    const Registry::Metric &metric =
        owner_->metrics_[owner_->hist_slots_[id.slot]];
    if (hist.buckets.empty())
        hist.buckets.assign(metric.edges.size() + 1, 0);
    std::size_t bucket = metric.edges.size();
    for (std::size_t i = 0; i < metric.edges.size(); ++i) {
        if (value <= metric.edges[i]) {
            bucket = i;
            break;
        }
    }
    hist.buckets[bucket]++;
    hist.count++;
    hist.sum += value;
}

std::size_t
Registry::findOrAdd(Kind kind, std::string_view name,
                    std::string_view help, std::string_view labels,
                    bool &existed)
{
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        if (metrics_[i].name == name && metrics_[i].labels == labels) {
            FSP_ASSERT(metrics_[i].kind == kind,
                       "metric re-registered with a different kind: ",
                       name);
            existed = true;
            return i;
        }
    }
    existed = false;
    Metric metric;
    metric.kind = kind;
    metric.name = std::string(name);
    metric.help = std::string(help);
    metric.labels = std::string(labels);
    metrics_.push_back(std::move(metric));
    return metrics_.size() - 1;
}

CounterId
Registry::counter(std::string_view name, std::string_view help,
                  std::string_view labels)
{
    bool existed = false;
    std::size_t index = findOrAdd(Kind::Counter, name, help, labels,
                                  existed);
    if (existed) {
        for (std::size_t slot = 0; slot < counter_slots_.size(); ++slot)
            if (counter_slots_[slot] == index)
                return CounterId{slot};
    }
    counter_slots_.push_back(index);
    return CounterId{counter_slots_.size() - 1};
}

GaugeId
Registry::gauge(std::string_view name, std::string_view help,
                std::string_view labels)
{
    bool existed = false;
    return GaugeId{findOrAdd(Kind::Gauge, name, help, labels, existed)};
}

HistogramId
Registry::histogram(std::string_view name, std::string_view help,
                    std::vector<double> edges, std::string_view labels)
{
    bool existed = false;
    std::size_t index = findOrAdd(Kind::Histogram, name, help, labels,
                                  existed);
    if (existed) {
        for (std::size_t slot = 0; slot < hist_slots_.size(); ++slot)
            if (hist_slots_[slot] == index)
                return HistogramId{slot};
    }
    Metric &metric = metrics_[index];
    metric.edges = std::move(edges);
    metric.buckets.assign(metric.edges.size() + 1, 0);
    hist_slots_.push_back(index);
    return HistogramId{hist_slots_.size() - 1};
}

void
Registry::add(CounterId id, std::uint64_t n)
{
    FSP_ASSERT(id.valid() && id.slot < counter_slots_.size(),
               "add on unregistered counter");
    metrics_[counter_slots_[id.slot]].counter += n;
}

void
Registry::set(GaugeId id, double value)
{
    FSP_ASSERT(id.valid() && id.metric < metrics_.size(),
               "set on unregistered gauge");
    metrics_[id.metric].gauge = value;
}

void
Registry::addGauge(GaugeId id, double delta)
{
    FSP_ASSERT(id.valid() && id.metric < metrics_.size(),
               "addGauge on unregistered gauge");
    metrics_[id.metric].gauge += delta;
}

void
Registry::observe(HistogramId id, double value)
{
    FSP_ASSERT(id.valid() && id.slot < hist_slots_.size(),
               "observe on unregistered histogram");
    Metric &metric = metrics_[hist_slots_[id.slot]];
    std::size_t bucket = metric.edges.size();
    for (std::size_t i = 0; i < metric.edges.size(); ++i) {
        if (value <= metric.edges[i]) {
            bucket = i;
            break;
        }
    }
    metric.buckets[bucket]++;
    metric.count++;
    metric.sum += value;
}

Shard
Registry::makeShard() const
{
    Shard shard;
    shard.owner_ = this;
    shard.counters_.assign(counter_slots_.size(), 0);
    shard.hists_.resize(hist_slots_.size());
    return shard;
}

void
Registry::fold(Shard &shard)
{
    FSP_ASSERT(shard.owner_ == nullptr || shard.owner_ == this,
               "shard folded into a foreign registry");
    for (std::size_t slot = 0; slot < shard.counters_.size(); ++slot) {
        metrics_[counter_slots_[slot]].counter += shard.counters_[slot];
        shard.counters_[slot] = 0;
    }
    for (std::size_t slot = 0; slot < shard.hists_.size(); ++slot) {
        Shard::Hist &hist = shard.hists_[slot];
        if (hist.count == 0)
            continue;
        Metric &metric = metrics_[hist_slots_[slot]];
        for (std::size_t b = 0; b < hist.buckets.size(); ++b)
            metric.buckets[b] += hist.buckets[b];
        metric.count += hist.count;
        metric.sum += hist.sum;
        hist.buckets.assign(hist.buckets.size(), 0);
        hist.count = 0;
        hist.sum = 0.0;
    }
}

std::uint64_t
Registry::counterValue(CounterId id) const
{
    FSP_ASSERT(id.valid() && id.slot < counter_slots_.size(),
               "counterValue on unregistered counter");
    return metrics_[counter_slots_[id.slot]].counter;
}

double
Registry::gaugeValue(GaugeId id) const
{
    FSP_ASSERT(id.valid() && id.metric < metrics_.size(),
               "gaugeValue on unregistered gauge");
    return metrics_[id.metric].gauge;
}

Registry::HistogramView
Registry::histogramView(HistogramId id) const
{
    FSP_ASSERT(id.valid() && id.slot < hist_slots_.size(),
               "histogramView on unregistered histogram");
    const Metric &metric = metrics_[hist_slots_[id.slot]];
    return HistogramView{&metric.edges, &metric.buckets, metric.count,
                         metric.sum};
}

void
Registry::writePrometheus(std::ostream &os) const
{
    const std::string *announced = nullptr;
    for (const Metric &metric : metrics_) {
        if (!announced || *announced != metric.name) {
            os << "# HELP " << metric.name << ' ' << metric.help << '\n';
            os << "# TYPE " << metric.name << ' '
               << (metric.kind == Kind::Counter
                       ? "counter"
                       : (metric.kind == Kind::Gauge ? "gauge"
                                                     : "histogram"))
               << '\n';
            announced = &metric.name;
        }
        switch (metric.kind) {
          case Kind::Counter:
            sampleLine(os, metric.name, metric.labels,
                       fmtValue(metric.counter));
            break;
          case Kind::Gauge:
            sampleLine(os, metric.name, metric.labels,
                       fmtValue(metric.gauge));
            break;
          case Kind::Histogram: {
            // Prometheus buckets are cumulative and end at +Inf.
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < metric.edges.size(); ++i) {
                cumulative += metric.buckets[i];
                sampleLine(os, metric.name + "_bucket",
                           withLe(metric.labels,
                                  fmtValue(metric.edges[i])),
                           fmtValue(cumulative));
            }
            sampleLine(os, metric.name + "_bucket",
                       withLe(metric.labels, "+Inf"),
                       fmtValue(metric.count));
            sampleLine(os, metric.name + "_sum", metric.labels,
                       fmtValue(metric.sum));
            sampleLine(os, metric.name + "_count", metric.labels,
                       fmtValue(metric.count));
            break;
          }
        }
    }
}

bool
Registry::writePrometheusFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    writePrometheus(out);
    out.flush();
    return static_cast<bool>(out);
}

void
Registry::writeJson(JsonWriter &json) const
{
    json.beginArray("metrics");
    for (const Metric &metric : metrics_) {
        json.beginObject();
        json.field("name", metric.name);
        json.field("type",
                   metric.kind == Kind::Counter
                       ? "counter"
                       : (metric.kind == Kind::Gauge ? "gauge"
                                                     : "histogram"));
        if (!metric.labels.empty())
            json.field("labels", metric.labels);
        switch (metric.kind) {
          case Kind::Counter:
            json.field("value", metric.counter);
            break;
          case Kind::Gauge:
            json.field("value", metric.gauge);
            break;
          case Kind::Histogram: {
            json.beginArray("edges");
            for (double edge : metric.edges)
                json.value(edge);
            json.endArray();
            json.beginArray("bucketCounts"); // per-bucket; overflow last
            for (std::uint64_t n : metric.buckets)
                json.value(n);
            json.endArray();
            json.field("count", metric.count);
            json.field("sum", metric.sum);
            break;
          }
        }
        json.endObject();
    }
    json.endArray();
}

} // namespace fsp::metrics
