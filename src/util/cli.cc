/**
 * @file
 * Option-table implementation.
 */

#include "util/cli.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

namespace fsp {

namespace {

/** Strict unsigned decimal parse; rejects empty/trailing garbage. */
bool
parseU64(const std::string &text, std::uint64_t &value)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0')
        return false;
    value = parsed;
    return true;
}

} // namespace

void
OptionTable::positional(std::string name, std::string help,
                        std::function<bool(const std::string &)> sink)
{
    positional_name_ = std::move(name);
    positional_help_ = std::move(help);
    positional_sink_ = std::move(sink);
}

void
OptionTable::flag(std::string name, std::string help,
                  std::function<void()> action)
{
    Option opt;
    opt.name = std::move(name);
    opt.help = std::move(help);
    opt.flagAction = std::move(action);
    options_.push_back(std::move(opt));
}

void
OptionTable::flag(std::string name, std::string help, bool &target,
                  bool value)
{
    flag(std::move(name), std::move(help),
         [&target, value] { target = value; });
}

void
OptionTable::option(std::string name, std::string argName,
                    std::string help,
                    std::function<bool(const std::string &)> action)
{
    Option opt;
    opt.name = std::move(name);
    opt.argName = std::move(argName);
    opt.help = std::move(help);
    opt.argAction = std::move(action);
    options_.push_back(std::move(opt));
}

void
OptionTable::optionU64(std::string name, std::string argName,
                       std::string help, std::uint64_t &target)
{
    option(std::move(name), std::move(argName), std::move(help),
           [&target](const std::string &text) {
               return parseU64(text, target);
           });
}

void
OptionTable::optionSize(std::string name, std::string argName,
                        std::string help, std::size_t &target)
{
    option(std::move(name), std::move(argName), std::move(help),
           [&target](const std::string &text) {
               std::uint64_t value = 0;
               if (!parseU64(text, value))
                   return false;
               target = static_cast<std::size_t>(value);
               return true;
           });
}

void
OptionTable::optionUnsigned(std::string name, std::string argName,
                            std::string help, unsigned &target)
{
    option(std::move(name), std::move(argName), std::move(help),
           [&target](const std::string &text) {
               std::uint64_t value = 0;
               if (!parseU64(text, value) || value > 0xffffffffull)
                   return false;
               target = static_cast<unsigned>(value);
               return true;
           });
}

void
OptionTable::optionString(std::string name, std::string argName,
                          std::string help, std::string &target)
{
    option(std::move(name), std::move(argName), std::move(help),
           [&target](const std::string &text) {
               target = text;
               return true;
           });
}

const OptionTable::Option *
OptionTable::find(const std::string &name) const
{
    for (const Option &opt : options_) {
        if (opt.name == name)
            return &opt;
    }
    return nullptr;
}

OptionTable::Parse
OptionTable::parse(int argc, char **argv, int firstArg,
                   std::ostream &err) const
{
    for (int i = firstArg; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp(err);
            return Parse::Help;
        }
        if (arg.empty() || arg[0] != '-') {
            if (!positional_sink_ || !positional_sink_(arg)) {
                err << "unexpected argument '" << arg
                    << "' (try --help)\n";
                return Parse::Error;
            }
            continue;
        }
        const Option *opt = find(arg);
        if (opt == nullptr) {
            err << "unknown option '" << arg << "' (try --help)\n";
            return Parse::Error;
        }
        if (opt->flagAction) {
            opt->flagAction();
            continue;
        }
        if (i + 1 >= argc) {
            err << "option '" << arg << "' needs a value (try --help)\n";
            return Parse::Error;
        }
        std::string value = argv[++i];
        if (!opt->argAction(value)) {
            err << "bad value '" << value << "' for option '" << arg
                << "' (try --help)\n";
            return Parse::Error;
        }
    }
    return Parse::Ok;
}

void
OptionTable::printHelp(std::ostream &out) const
{
    if (!usage_.empty())
        out << "usage: " << usage_ << "\n";
    if (!positional_help_.empty())
        out << "  " << positional_name_ << ": " << positional_help_
            << "\n";
    if (!options_.empty())
        out << "options:\n";

    std::size_t width = 0;
    auto spelled = [](const Option &opt) {
        return opt.argName.empty() ? opt.name
                                   : opt.name + " " + opt.argName;
    };
    for (const Option &opt : options_)
        width = std::max(width, spelled(opt).size());

    for (const Option &opt : options_) {
        std::string left = spelled(opt);
        out << "  " << left << std::string(width - left.size() + 2, ' ');
        // Wrap continuation lines of multi-line help onto the column.
        for (std::size_t at = 0; at < opt.help.size();) {
            std::size_t nl = opt.help.find('\n', at);
            std::size_t end = nl == std::string::npos ? opt.help.size()
                                                      : nl;
            if (at > 0)
                out << std::string(width + 4, ' ');
            out << opt.help.substr(at, end - at) << "\n";
            at = end + 1;
        }
        if (opt.help.empty())
            out << "\n";
    }
    if (!epilog_.empty())
        out << epilog_;
}

} // namespace fsp
