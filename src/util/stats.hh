/**
 * @file
 * Descriptive statistics used throughout the pruning pipeline: summaries
 * for the paper's boxplots (Figs. 2-4), distances between outcome
 * distributions (Fig. 6 convergence), and generic helpers.
 */

#ifndef FSP_UTIL_STATS_HH
#define FSP_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace fsp {

/**
 * Five-number-plus-mean summary of a sample, mirroring the boxplots in the
 * paper's Figures 2-4 (median, quartiles, whiskers, mean).
 */
struct BoxplotSummary
{
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
    double mean = 0.0;
    std::size_t count = 0;
};

/** Arithmetic mean; 0 for an empty sample. */
double mean(const std::vector<double> &values);

/** Sample standard deviation (n-1 denominator); 0 for n < 2. */
double stddev(const std::vector<double> &values);

/**
 * Linear-interpolated percentile (inclusive method).
 *
 * @param values sample, not required to be sorted.
 * @param p percentile in [0, 100].
 */
double percentile(std::vector<double> values, double p);

/** Compute the full boxplot summary of a sample. */
BoxplotSummary boxplot(const std::vector<double> &values);

/**
 * L-infinity distance between two discrete distributions of equal arity.
 * Used to decide when the loop-sampling outcome distribution stabilises.
 */
double linfDistance(const std::vector<double> &a, const std::vector<double> &b);

/**
 * Two-sided standard-normal critical value z such that
 * P(-z <= Z <= z) = confidence.  Implemented via the inverse error
 * function (Acklam-style rational approximation refined with Halley
 * steps); accurate to ~1e-9 over the confidence range of interest.
 *
 * @param confidence two-sided confidence level in (0, 1), e.g. 0.95.
 */
double normalTwoSidedCritical(double confidence);

} // namespace fsp

#endif // FSP_UTIL_STATS_HH
