/**
 * @file
 * Zero-dependency metrics primitives: counters, gauges, fixed-bucket
 * histograms and phase timers, exported as Prometheus text or JSON.
 *
 * The campaign engine's determinism guarantee ("bit-identical at any
 * worker count") must extend to its instrumentation, so the design
 * splits mutation into two disciplines:
 *
 *  - Direct Registry mutation (add/set/observe) for call sites that
 *    are already serialized -- the engine's chunk fold point, phase
 *    boundaries, and single-threaded pipeline stages.
 *  - Worker-private Shards for hot per-injection paths: a Shard is a
 *    plain array of integers a worker bumps without any locking, and
 *    fold() adds it into the Registry wherever the caller is already
 *    holding its own serialization (the chunk fold point).  Counter
 *    and bucket values are integers, so the folded totals are
 *    independent of fold order and worker count.
 *
 * Registration is idempotent: asking for an existing (name, labels)
 * pair returns the existing id, so independent components (the
 * campaign observer, the pruning pipeline, the tools) can share one
 * Registry without coordinating registration.
 */

#ifndef FSP_UTIL_METRICS_HH
#define FSP_UTIL_METRICS_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace fsp {
class JsonWriter;
} // namespace fsp

namespace fsp::metrics {

/** @{ Typed handles returned by registration; cheap to copy. */
struct CounterId
{
    std::size_t slot = SIZE_MAX;
    bool valid() const { return slot != SIZE_MAX; }
};

struct GaugeId
{
    std::size_t metric = SIZE_MAX;
    bool valid() const { return metric != SIZE_MAX; }
};

struct HistogramId
{
    std::size_t slot = SIZE_MAX;
    bool valid() const { return slot != SIZE_MAX; }
};
/** @} */

class Registry;

/**
 * A worker-private slice of a Registry: counter increments and
 * histogram observations accumulate locally with no synchronization
 * and become visible only when the owner folds the shard (from a call
 * site that serializes folds, e.g. under the campaign engine's
 * progress lock).  Gauges are not sharded -- they are set, not summed,
 * and only from serialized contexts.
 */
class Shard
{
  public:
    Shard() = default;

    /** Bump a counter locally (no locking; visible after fold()). */
    void add(CounterId id, std::uint64_t n = 1);

    /** Record one histogram observation locally. */
    void observe(HistogramId id, double value);

  private:
    friend class Registry;

    struct Hist
    {
        std::vector<std::uint64_t> buckets; ///< edges.size()+1 (overflow last)
        std::uint64_t count = 0;
        double sum = 0.0;
    };

    const Registry *owner_ = nullptr;
    std::vector<std::uint64_t> counters_; ///< indexed by CounterId::slot
    std::vector<Hist> hists_;             ///< indexed by HistogramId::slot
};

/**
 * The metric store: registration, direct mutation, shard folding, and
 * the Prometheus/JSON exporters.  Not internally synchronized --
 * callers serialize mutation (the engine's progress lock, or plain
 * single-threaded use); Shards exist precisely so hot paths never
 * touch the Registry directly.
 */
class Registry
{
  public:
    /**
     * @{ Register one sample of a family.  @p name is the Prometheus
     * family name; @p labels is a pre-rendered label body without
     * braces (e.g. `outcome="masked"`), empty for an unlabelled
     * sample.  Samples of one family share @p name (and should be
     * registered with the same @p help).  Re-registering an existing
     * (name, labels) pair returns the existing id.
     */
    CounterId counter(std::string_view name, std::string_view help,
                      std::string_view labels = {});
    GaugeId gauge(std::string_view name, std::string_view help,
                  std::string_view labels = {});

    /** @p edges are the ascending bucket upper bounds (v <= edge). */
    HistogramId histogram(std::string_view name, std::string_view help,
                          std::vector<double> edges,
                          std::string_view labels = {});
    /** @} */

    /** @{ Direct (caller-serialized) mutation. */
    void add(CounterId id, std::uint64_t n = 1);
    void set(GaugeId id, double value);
    void addGauge(GaugeId id, double delta);
    void observe(HistogramId id, double value);
    /** @} */

    /** A worker-private shard sized for the current registrations. */
    Shard makeShard() const;

    /**
     * Add @p shard's local tallies into the registry and reset them.
     * Must be called from a serialized context; integer counters make
     * the folded totals independent of fold order.
     */
    void fold(Shard &shard);

    /** @{ Introspection (tests and exporters). */
    std::uint64_t counterValue(CounterId id) const;
    double gaugeValue(GaugeId id) const;

    struct HistogramView
    {
        const std::vector<double> *edges = nullptr;
        const std::vector<std::uint64_t> *buckets = nullptr; ///< +overflow
        std::uint64_t count = 0;
        double sum = 0.0;
    };
    HistogramView histogramView(HistogramId id) const;

    std::size_t sampleCount() const { return metrics_.size(); }
    /** @} */

    /** Prometheus text exposition format (HELP/TYPE per family). */
    void writePrometheus(std::ostream &os) const;

    /** Write the Prometheus snapshot to @p path; false on I/O error. */
    bool writePrometheusFile(const std::string &path) const;

    /**
     * Emit the snapshot as a "metrics" array inside the currently open
     * JSON object: one entry per sample with its name, type, labels,
     * and value (histograms carry edges, per-bucket counts, count and
     * sum).
     */
    void writeJson(JsonWriter &json) const;

  private:
    friend class Shard;

    enum class Kind : std::uint8_t
    {
        Counter,
        Gauge,
        Histogram
    };

    struct Metric
    {
        Kind kind;
        std::string name;
        std::string help;
        std::string labels;
        std::uint64_t counter = 0;
        double gauge = 0.0;
        std::vector<double> edges;
        std::vector<std::uint64_t> buckets; ///< edges.size()+1
        std::uint64_t count = 0;
        double sum = 0.0;
    };

    std::size_t findOrAdd(Kind kind, std::string_view name,
                          std::string_view help, std::string_view labels,
                          bool &existed);

    std::vector<Metric> metrics_;          ///< registration order
    std::vector<std::size_t> counter_slots_; ///< slot -> metrics_ index
    std::vector<std::size_t> hist_slots_;    ///< slot -> metrics_ index
};

/**
 * RAII phase timer: adds the scope's elapsed wall time (seconds) to a
 * gauge on destruction.  A null registry (or invalid id) makes it a
 * no-op, so call sites need no "metrics attached?" branches.
 */
class ScopedPhaseTimer
{
  public:
    ScopedPhaseTimer(Registry *registry, GaugeId id)
        : registry_(registry), id_(id),
          start_(std::chrono::steady_clock::now())
    {
    }

    ~ScopedPhaseTimer() { stop(); }

    ScopedPhaseTimer(const ScopedPhaseTimer &) = delete;
    ScopedPhaseTimer &operator=(const ScopedPhaseTimer &) = delete;

    /** Record now instead of at scope exit (idempotent). */
    void
    stop()
    {
        if (!registry_ || !id_.valid())
            return;
        registry_->addGauge(
            id_, std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_)
                     .count());
        registry_ = nullptr;
    }

  private:
    Registry *registry_;
    GaugeId id_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace fsp::metrics

#endif // FSP_UTIL_METRICS_HH
