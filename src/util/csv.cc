/**
 * @file
 * CSV writer implementation.
 */

#include "util/csv.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace fsp {

namespace {

std::string
quoteField(const std::string &field)
{
    if (field.find_first_of(",\"\n\r") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += "\"";
    return out;
}

void
emitRow(std::ostringstream &os, const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0)
            os << ',';
        os << quoteField(cells[i]);
    }
    os << "\r\n";
}

} // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    FSP_ASSERT(!headers_.empty(), "CSV needs at least one column");
}

void
CsvWriter::addRow(std::vector<std::string> cells)
{
    FSP_ASSERT(cells.size() == headers_.size(),
               "CSV row arity mismatch: ", cells.size(), " vs ",
               headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
CsvWriter::str() const
{
    std::ostringstream os;
    emitRow(os, headers_);
    for (const auto &row : rows_)
        emitRow(os, row);
    return os.str();
}

bool
CsvWriter::writeFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        warn("cannot open ", path, " for writing");
        return false;
    }
    out << str();
    out.flush();
    if (!out) {
        warn("write to ", path, " failed");
        return false;
    }
    return true;
}

} // namespace fsp
