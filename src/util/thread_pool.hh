/**
 * @file
 * A small chunked thread pool for deterministic fan-out.
 *
 * The pool owns a fixed set of persistent worker threads and exposes one
 * primitive, parallelFor(): chunk indices [0, chunkCount) are claimed
 * dynamically by whichever worker is free (a ticket counter, so load
 * imbalance between chunks self-heals), but the *identity* of each
 * chunk is fixed up front.  Callers that write results into a
 * per-chunk/per-index slot therefore get output that does not depend on
 * worker count or scheduling -- the foundation of the parallel campaign
 * engine's bit-identical-to-serial guarantee.
 */

#ifndef FSP_UTIL_THREAD_POOL_HH
#define FSP_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fsp {

class ThreadPool
{
  public:
    /**
     * @param workers worker-thread count; 0 selects
     *        defaultWorkerCount().
     */
    explicit ThreadPool(unsigned workers = 0);

    /** Joins all workers (outstanding work must have completed). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned workerCount() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /**
     * Run @p body(chunk, worker) for every chunk in [0, chunkCount),
     * distributing chunks dynamically over the pool's workers; blocks
     * until every chunk has finished.  @p worker is the stable index
     * (< workerCount()) of the thread executing the chunk, so callers
     * can give each worker private state without locking.  The first
     * exception thrown by @p body is rethrown here; chunks not yet
     * claimed when that exception is recorded are abandoned (in-flight
     * chunks still drain), so a throwing body cancels the remainder of
     * the job.  Not reentrant: one parallelFor at a time per pool.
     */
    void parallelFor(std::size_t chunkCount,
                     const std::function<void(std::size_t chunk,
                                              unsigned worker)> &body);

    /**
     * Chunks of the most recent parallelFor() that were abandoned
     * unclaimed because a body threw (0 after a clean job).  Callers
     * that report the rethrown error should include this so "the
     * campaign stopped early" is diagnosable from the result.
     */
    std::size_t lastAbandonedChunks() const
    {
        return last_abandoned_chunks_;
    }

    /**
     * Worker count used when none is requested: the FSP_WORKERS
     * environment variable when set, otherwise the hardware thread
     * count (at least 1).
     */
    static unsigned defaultWorkerCount();

  private:
    void workerLoop(unsigned index);

    std::vector<std::thread> threads_;

    std::mutex mutex_;
    std::condition_variable work_cv_;  ///< signals workers: new job/stop
    std::condition_variable done_cv_;  ///< signals caller: job finished

    // Current job, all guarded by mutex_.
    const std::function<void(std::size_t, unsigned)> *body_ = nullptr;
    std::size_t chunk_count_ = 0;
    std::size_t next_chunk_ = 0;
    std::size_t chunks_done_ = 0;
    std::size_t abandoned_chunks_ = 0;      ///< this job, guarded by mutex_
    std::size_t last_abandoned_chunks_ = 0; ///< previous job, caller-read
    std::uint64_t generation_ = 0; ///< bumped per job so workers rewake
    std::exception_ptr first_error_;
    bool stop_ = false;
};

} // namespace fsp

#endif // FSP_UTIL_THREAD_POOL_HH
