/**
 * @file
 * Implementation of environment-variable overrides.
 */

#include "util/env.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace fsp {

std::uint64_t
envU64(const std::string &name, std::uint64_t fallback)
{
    const char *raw = std::getenv(name.c_str());
    if (raw == nullptr || *raw == '\0')
        return fallback;
    char *end = nullptr;
    unsigned long long value = std::strtoull(raw, &end, 10);
    if (end == raw || *end != '\0') {
        warn("ignoring malformed ", name, "=", raw);
        return fallback;
    }
    return static_cast<std::uint64_t>(value);
}

double
envDouble(const std::string &name, double fallback)
{
    const char *raw = std::getenv(name.c_str());
    if (raw == nullptr || *raw == '\0')
        return fallback;
    char *end = nullptr;
    double value = std::strtod(raw, &end);
    if (end == raw || *end != '\0') {
        warn("ignoring malformed ", name, "=", raw);
        return fallback;
    }
    return value;
}

} // namespace fsp
