/**
 * @file
 * Implementation of SplitMix64 seed expansion and Xoshiro256**.
 */

#include "util/prng.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"

namespace fsp {

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
deriveSeed(std::uint64_t parent, std::string_view label)
{
    // FNV-1a over the label, folded into the parent, then mixed.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : label) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    std::uint64_t state = parent ^ h;
    return splitMix64(state);
}

Prng::Prng(std::uint64_t seed) : seed_(seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitMix64(sm);
}

Prng::result_type
Prng::operator()()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Prng::below(std::uint64_t bound)
{
    FSP_ASSERT(bound > 0, "Prng::below requires a positive bound");
    // Lemire's nearly-divisionless unbiased bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t threshold = -bound % bound;
        while (l < threshold) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Prng::range(std::int64_t lo, std::int64_t hi)
{
    FSP_ASSERT(lo <= hi, "Prng::range requires lo <= hi");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double
Prng::uniform()
{
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Prng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

bool
Prng::chance(double p)
{
    return uniform() < p;
}

Prng
Prng::fork(std::string_view label) const
{
    return Prng(deriveSeed(seed_, label));
}

std::vector<std::size_t>
Prng::sampleWithoutReplacement(std::size_t population, std::size_t count)
{
    if (count >= population) {
        std::vector<std::size_t> all(population);
        std::iota(all.begin(), all.end(), std::size_t{0});
        return all;
    }

    // Floyd's algorithm: O(count) expected draws, no O(population) storage
    // beyond the result set.
    std::vector<std::size_t> chosen;
    chosen.reserve(count);
    for (std::size_t j = population - count; j < population; ++j) {
        std::size_t t = static_cast<std::size_t>(below(j + 1));
        if (std::find(chosen.begin(), chosen.end(), t) == chosen.end())
            chosen.push_back(t);
        else
            chosen.push_back(j);
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
}

} // namespace fsp
