/**
 * @file
 * A small declarative command-line option table.
 *
 * The tools used to hand-roll their flag loops, which drifted apart
 * (fsp and resilience_report accepted different subsets of the same
 * options and printed hand-maintained usage strings).  OptionTable
 * centralises the parse: callers register each option once with its
 * help text, and `--help` output is generated from the same table, so
 * the parser and its documentation cannot disagree.
 *
 *     OptionTable table;
 *     table.setUsage("mytool [kernel] [options]");
 *     table.flag("--paper", "paper-scale geometry",
 *                [&] { scale = Scale::Paper; });
 *     table.optionU64("--seed", "N", "master seed (default 1)", seed);
 *     switch (table.parse(argc, argv, 1, std::cerr)) { ... }
 *
 * Only long options (`--name`, plus `-h` as an alias of `--help`) are
 * supported; option arguments are separate argv entries (`--seed 7`).
 * Arguments that do not start with '-' go to the positional handler.
 */

#ifndef FSP_UTIL_CLI_HH
#define FSP_UTIL_CLI_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace fsp {

class OptionTable
{
  public:
    /** Outcome of parse(). */
    enum class Parse
    {
        Ok,    ///< every argument consumed
        Help,  ///< --help/-h was given (help already printed)
        Error, ///< unknown option or bad argument (diagnostic printed)
    };

    /** First line of --help, without the leading "usage: ". */
    void setUsage(std::string usage) { usage_ = std::move(usage); }

    /**
     * Accept non-option arguments ("positionals"); without a handler
     * they are parse errors.  @p name/@p help document the positional
     * in the generated usage; @p sink is invoked per argument.
     */
    void positional(std::string name, std::string help,
                    std::function<bool(const std::string &)> sink);

    /** Append free-form text (e.g. a kernel list) after the options. */
    void setEpilog(std::string epilog) { epilog_ = std::move(epilog); }

    /** An option taking no argument. */
    void flag(std::string name, std::string help,
              std::function<void()> action);

    /** Flag convenience: stores @p value into @p target. */
    void flag(std::string name, std::string help, bool &target,
              bool value = true);

    /**
     * An option taking one argument (the following argv entry).
     * @p action returns false to reject the value.
     */
    void option(std::string name, std::string argName, std::string help,
                std::function<bool(const std::string &)> action);

    /** @{ Typed conveniences over option(): parse into @p target. */
    void optionU64(std::string name, std::string argName,
                   std::string help, std::uint64_t &target);
    void optionSize(std::string name, std::string argName,
                    std::string help, std::size_t &target);
    void optionUnsigned(std::string name, std::string argName,
                        std::string help, unsigned &target);
    void optionString(std::string name, std::string argName,
                      std::string help, std::string &target);
    /** @} */

    /**
     * Parse argv[firstArg..argc).  `--help`/`-h` prints the generated
     * help to @p err and returns Parse::Help; unknown options, missing
     * or malformed arguments print a one-line diagnostic (plus a
     * "try --help" hint) and return Parse::Error.
     */
    Parse parse(int argc, char **argv, int firstArg,
                std::ostream &err) const;

    /** The generated help text (usage, option table, epilog). */
    void printHelp(std::ostream &out) const;

  private:
    struct Option
    {
        std::string name;     ///< "--seed"
        std::string argName;  ///< "N"; empty for flags
        std::string help;
        std::function<void()> flagAction;
        std::function<bool(const std::string &)> argAction;
    };

    const Option *find(const std::string &name) const;

    std::string usage_;
    std::string epilog_;
    std::string positional_name_;
    std::string positional_help_;
    std::function<bool(const std::string &)> positional_sink_;
    std::vector<Option> options_;
};

} // namespace fsp

#endif // FSP_UTIL_CLI_HH
