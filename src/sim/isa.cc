/**
 * @file
 * Static opcode property tables.
 */

#include "sim/isa.hh"

#include <array>
#include <unordered_map>

#include "util/logging.hh"

namespace fsp::sim {

namespace {

struct OpInfo
{
    const char *name;
    unsigned srcCount;
    bool writesDest;
    bool isMemory;
    bool isControl;
};

constexpr std::array<OpInfo, kNumOpcodes> kOpTable = {{
    /* Mov     */ {"mov", 1, true, false, false},
    /* Cvt     */ {"cvt", 1, true, false, false},
    /* Selp    */ {"selp", 3, true, false, false},
    /* Add     */ {"add", 2, true, false, false},
    /* Sub     */ {"sub", 2, true, false, false},
    /* Mul     */ {"mul", 2, true, false, false},
    /* MulWide */ {"mul.wide", 2, true, false, false},
    /* Mad     */ {"mad", 3, true, false, false},
    /* MadWide */ {"mad.wide", 3, true, false, false},
    /* Div     */ {"div", 2, true, false, false},
    /* Rem     */ {"rem", 2, true, false, false},
    /* Min     */ {"min", 2, true, false, false},
    /* Max     */ {"max", 2, true, false, false},
    /* Neg     */ {"neg", 1, true, false, false},
    /* Abs     */ {"abs", 1, true, false, false},
    /* Rcp     */ {"rcp", 1, true, false, false},
    /* Sqrt    */ {"sqrt", 1, true, false, false},
    /* Rsqrt   */ {"rsqrt", 1, true, false, false},
    /* Ex2     */ {"ex2", 1, true, false, false},
    /* Lg2     */ {"lg2", 1, true, false, false},
    /* And     */ {"and", 2, true, false, false},
    /* Or      */ {"or", 2, true, false, false},
    /* Xor     */ {"xor", 2, true, false, false},
    /* Not     */ {"not", 1, true, false, false},
    /* Shl     */ {"shl", 2, true, false, false},
    /* Shr     */ {"shr", 2, true, false, false},
    /* Set     */ {"set", 2, true, false, false},
    /* Setp    */ {"setp", 2, true, false, false},
    /* Ld      */ {"ld", 1, true, true, false},
    /* St      */ {"st", 2, false, true, false},
    /* Bra     */ {"bra", 0, false, false, true},
    /* Ssy     */ {"ssy", 0, false, false, true},
    /* Bar     */ {"bar.sync", 0, false, false, true},
    /* Ret     */ {"retp", 0, false, false, true},
    /* Exit    */ {"exit", 0, false, false, true},
    /* Nop     */ {"nop", 0, false, false, false},
}};

const OpInfo &
info(Opcode op)
{
    auto index = static_cast<unsigned>(op);
    FSP_ASSERT(index < kNumOpcodes, "opcode out of range");
    return kOpTable[index];
}

} // namespace

std::string
opcodeName(Opcode op)
{
    return info(op).name;
}

bool
parseOpcode(const std::string &name, Opcode &out)
{
    static const std::unordered_map<std::string, Opcode> lookup = [] {
        std::unordered_map<std::string, Opcode> m;
        for (unsigned i = 0; i < kNumOpcodes; ++i)
            m.emplace(kOpTable[i].name, static_cast<Opcode>(i));
        // Accepted aliases.
        m.emplace("ret", Opcode::Ret);
        m.emplace("bar", Opcode::Bar);
        return m;
    }();

    auto it = lookup.find(name);
    if (it == lookup.end())
        return false;
    out = it->second;
    return true;
}

unsigned
opcodeSrcCount(Opcode op)
{
    return info(op).srcCount;
}

bool
opcodeWritesDest(Opcode op)
{
    return info(op).writesDest;
}

bool
opcodeIsMemory(Opcode op)
{
    return info(op).isMemory;
}

bool
opcodeIsControl(Opcode op)
{
    return info(op).isControl;
}

} // namespace fsp::sim
