/**
 * @file
 * Disassembler implementation.
 */

#include "sim/disasm.hh"

#include <bit>
#include <cstdio>
#include <set>
#include <sstream>

#include "util/logging.hh"

namespace fsp::sim {

namespace {

std::string
renderSpecial(SpecialReg reg)
{
    switch (reg) {
      case SpecialReg::TidX: return "%tid.x";
      case SpecialReg::TidY: return "%tid.y";
      case SpecialReg::TidZ: return "%tid.z";
      case SpecialReg::NtidX: return "%ntid.x";
      case SpecialReg::NtidY: return "%ntid.y";
      case SpecialReg::NtidZ: return "%ntid.z";
      case SpecialReg::CtaidX: return "%ctaid.x";
      case SpecialReg::CtaidY: return "%ctaid.y";
      case SpecialReg::CtaidZ: return "%ctaid.z";
      case SpecialReg::NctaidX: return "%nctaid.x";
      case SpecialReg::NctaidY: return "%nctaid.y";
      case SpecialReg::NctaidZ: return "%nctaid.z";
    }
    panic("unreachable SpecialReg");
}

/**
 * Render an immediate so the assembler reconstructs the same payload:
 * float-typed contexts print a round-trippable decimal literal (the
 * assembler re-encodes values, not bits); integer contexts print hex.
 */
std::string
renderImm(std::uint64_t raw, DataType context)
{
    char buf[64];
    if (context == DataType::F32) {
        float v = std::bit_cast<float>(static_cast<std::uint32_t>(raw));
        std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(v));
        std::string out(buf);
        // Ensure the token parses as a float literal.
        if (out.find_first_of(".eEnN") == std::string::npos)
            out += ".0";
        return out;
    }
    if (context == DataType::F64) {
        double v = std::bit_cast<double>(raw);
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        std::string out(buf);
        if (out.find_first_of(".eEnN") == std::string::npos)
            out += ".0";
        return out;
    }
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(raw));
    return buf;
}

std::string
renderOperand(const Operand &op, DataType context)
{
    switch (op.kind) {
      case Operand::Kind::GpReg: {
        std::string out = op.negated ? "-$r" : "$r";
        out += std::to_string(op.reg);
        if (op.half == HalfSel::Lo)
            out += ".lo";
        else if (op.half == HalfSel::Hi)
            out += ".hi";
        return out;
      }
      case Operand::Kind::PredReg:
        return "$p" + std::to_string(op.reg);
      case Operand::Kind::Discard:
        return "$o127";
      case Operand::Kind::Special:
        return renderSpecial(op.special);
      case Operand::Kind::Imm:
        return renderImm(op.imm, context);
      case Operand::Kind::MemRef: {
        std::string out = "[";
        if (op.memBase >= 0) {
            out += "$r" + std::to_string(op.memBase);
            if (op.memOffset != 0)
                out += "+" + std::to_string(op.memOffset);
        } else {
            out += std::to_string(op.memOffset);
        }
        return out + "]";
      }
      case Operand::Kind::None:
        panic("rendering a None operand");
    }
    panic("unreachable Operand::Kind");
}

std::string
renderMnemonic(const Instruction &insn)
{
    switch (insn.op) {
      case Opcode::Bar:
        return "bar.sync";
      case Opcode::Bra:
      case Opcode::Ssy:
      case Opcode::Nop:
      case Opcode::Ret:
      case Opcode::Exit:
        return opcodeName(insn.op);
      case Opcode::Ld:
      case Opcode::St:
        return opcodeName(insn.op) + "." + spaceName(insn.space) + "." +
               typeName(insn.type);
      case Opcode::Cvt:
        return "cvt." + typeName(insn.type) + "." + typeName(insn.stype);
      case Opcode::Set:
        return "set." + cmpName(insn.cmp) + "." + typeName(insn.type) +
               "." + typeName(insn.stype);
      case Opcode::Setp:
        return "setp." + cmpName(insn.cmp) + "." + typeName(insn.stype);
      default:
        // "mul.wide" / "mad.wide" already carry their dot.
        return opcodeName(insn.op) + "." + typeName(insn.type);
    }
}

std::string
renderDest(const Instruction &insn)
{
    std::string out = renderOperand(insn.dest, insn.type);
    if (insn.dest2.kind != Operand::Kind::None)
        out += "|" + renderOperand(insn.dest2, insn.type);
    return out;
}

} // namespace

std::string
disassembleInstruction(const Instruction &insn,
                       const LabelProvider &label_of)
{
    std::ostringstream os;
    if (insn.guard.active()) {
        os << "@$p" << static_cast<unsigned>(insn.guard.pred) << "."
           << guardName(insn.guard.cond) << " ";
    }
    os << renderMnemonic(insn);

    // The source type used for immediate re-encoding in value operands.
    DataType value_type =
        insn.op == Opcode::Cvt || insn.op == Opcode::Set ||
                insn.op == Opcode::Setp
            ? insn.stype
            : insn.type;

    switch (insn.op) {
      case Opcode::Nop:
      case Opcode::Ssy:
      case Opcode::Ret:
      case Opcode::Exit:
        break;
      case Opcode::Bar:
        os << " " << insn.barrier;
        break;
      case Opcode::Bra:
        os << " " << label_of(static_cast<std::size_t>(insn.target));
        break;
      case Opcode::Ld:
        os << " " << renderDest(insn) << ", "
           << renderOperand(insn.src[0], value_type);
        break;
      case Opcode::St:
        os << " " << renderOperand(insn.src[0], value_type) << ", "
           << renderOperand(insn.src[1], value_type);
        break;
      default: {
        os << " " << renderDest(insn);
        unsigned n = opcodeSrcCount(insn.op);
        for (unsigned i = 0; i < n; ++i)
            os << ", " << renderOperand(insn.src[i], value_type);
        break;
      }
    }
    return os.str();
}

std::string
disassembleProgram(const Program &program)
{
    // Collect branch targets needing labels.
    std::set<std::size_t> targets;
    for (const auto &insn : program.instructions()) {
        if (insn.op == Opcode::Bra)
            targets.insert(static_cast<std::size_t>(insn.target));
    }
    auto label_of = [](std::size_t index) {
        return "l" + std::to_string(index);
    };

    std::ostringstream os;
    for (std::size_t i = 0; i < program.size(); ++i) {
        if (targets.count(i))
            os << label_of(i) << ":\n";
        os << "    " << disassembleInstruction(program.at(i), label_of)
           << ";\n";
    }
    // A trailing label (branch past the last instruction).
    if (targets.count(program.size()))
        os << label_of(program.size()) << ":\n";
    return os.str();
}

} // namespace fsp::sim
