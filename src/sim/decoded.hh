/**
 * @file
 * Pre-decoded execution pipeline: the DecodedProgram.
 *
 * The assembler's Instruction representation is optimised for analysis
 * and diagnostics -- operands carry every syntactic possibility, the
 * original source text rides along, and the interpreter used to
 * re-resolve all of it on every dynamic instruction.  A DecodedProgram
 * is built once per (Program, LaunchConfig) pair and resolves
 * everything that is static for a launch:
 *
 *  - every (opcode, type) pair collapses to a dense XOp handler id the
 *    executor switches on (the compiler lowers the dense switch to a
 *    jump table, i.e. computed-goto dispatch);
 *  - operands become XSrc descriptors with immediate payloads and
 *    *dense* register slots: the GPRs a kernel actually references are
 *    renamed to a compact 0..numRegs()-1 range so MachineState's
 *    register slabs stay cache-resident (see machine_state.hh);
 *  - launch-constant special registers (%ntid, %nctaid) become
 *    immediates; %tid/%ctaid stay symbolic (per-thread / per-CTA);
 *  - branch targets and barrier bookkeeping are pre-linked.
 *
 * Rare or irregular instructions (div/rem, transcendentals, exotic
 * operand combinations) keep a pointer to their original Instruction
 * and take a slow path through the shared evaluation helpers -- the
 * fast and slow paths are the *same arithmetic code*, which is what
 * keeps the decoded engine bit-identical to the reference interpreter
 * (tests/test_decoded_executor.cc holds that line).
 */

#ifndef FSP_SIM_DECODED_HH
#define FSP_SIM_DECODED_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/launch.hh"
#include "sim/program.hh"

namespace fsp::sim {

/** Dense handler ids the decoded interpreter dispatches on. */
enum class XOp : std::uint8_t
{
    Nop,
    Exit,
    Bra,
    Bar,
    LdGlobal,
    LdShared,
    LdParam,
    StGlobal,
    StShared,
    MovI, ///< bit-preserving move, all types (trunc to width)
    AddI,
    SubI,
    MulI,
    MadI,
    MulWideI,
    MadWideI,
    MinI,
    MaxI,
    NegI,
    AbsI,
    AndI,
    OrI,
    XorI,
    NotI,
    ShlI,
    ShrI,
    AddF32,
    SubF32,
    MulF32,
    MadF32,
    MinF32,
    MaxF32,
    NegF32,
    AbsF32,
    AddF64,
    SubF64,
    MulF64,
    MadF64,
    MinF64,
    MaxF64,
    NegF64,
    AbsF64,
    SetCmp, ///< set/setp comparison (boolean result + CC writeback)
    SelpV,
    CvtV,
    AluSlow, ///< generic fallback through evalAluOp on the original op
};

/** Pre-resolved source operand. */
struct XSrc
{
    enum class K : std::uint8_t
    {
        Zero,   ///< constant zero ($r124 reads, discards)
        Reg,    ///< dense GPR, full width
        RegLo,  ///< dense GPR, low 16 bits
        RegHi,  ///< dense GPR, bits 16..31
        Imm,    ///< immediate payload (includes %ntid/%nctaid)
        Pred,   ///< predicate as data: zero-flag clear -> 1
        TidX,
        TidY,
        TidZ,
        CtaidX,
        CtaidY,
        CtaidZ,
        RegComplex, ///< negated (optionally halved) GPR; slow read
    };

    K k = K::Zero;
    std::uint8_t reg = 0;     ///< dense GPR slot or predicate index
    std::uint8_t half = 0;    ///< HalfSel (RegComplex only)
    std::uint8_t negType = 0; ///< DataType of the negation (RegComplex)
    std::uint64_t imm = 0;
};

/** Sentinel for "no register" in DecodedOp fields. */
inline constexpr std::uint8_t kNoDenseReg = 0xFF;

/** One pre-decoded instruction. */
struct DecodedOp
{
    XOp x = XOp::Nop;
    GuardCond guardCond = GuardCond::Always;
    std::uint8_t guardPred = 0;

    enum class Dest : std::uint8_t { None, Gp, Pred };
    Dest destKind = Dest::None;
    std::uint8_t destReg = 0;             ///< dense slot / pred index
    std::uint8_t dest2Reg = kNoDenseReg;  ///< set's data side-effect

    std::uint8_t bits = 0;     ///< result width for int/move ops
    std::uint8_t width = 0;    ///< ld/st access bytes
    bool sgn = false;          ///< signed integer semantics
    bool ldSigned = false;     ///< sign-extend the loaded value
    std::uint8_t ccType = 0;   ///< DataType feeding ccFromValue
    std::uint8_t stype = 0;    ///< DataType: cvt/set source
    std::uint8_t dtype = 0;    ///< DataType: result type
    std::uint8_t cmp = 0;      ///< CmpOp for set/setp
    std::uint8_t memBase = kNoDenseReg; ///< ld/st base register slot
    std::uint16_t recordedBits = 0;     ///< dest width (fault bits)
    std::uint32_t target = 0;           ///< branch target
    std::uint32_t staticIndex = 0;
    std::int64_t memOffset = 0;
    std::uint64_t mask = 0;    ///< truncation mask for `bits`

    const Instruction *orig = nullptr; ///< diagnostics + slow paths
    XSrc src[3];
};

/**
 * A kernel pre-decoded against one launch configuration.  Immutable
 * after construction; the executor holds it via shared_ptr so injector
 * clones share a single decode.
 */
class DecodedProgram
{
  public:
    DecodedProgram(const Program &program, const LaunchConfig &config);

    const std::vector<DecodedOp> &code() const { return code_; }
    std::size_t size() const { return code_.size(); }

    /** Dense register-file size (slots actually referenced). */
    std::uint32_t numRegs() const { return num_regs_; }

    /**
     * Architectural GPR index -> dense slot (kNoDenseReg when the
     * kernel never references the register).  The reference
     * interpreter addresses the same dense MachineState slabs through
     * this map, so both engines see identical state.
     */
    const std::array<std::uint8_t, kNumGpRegs> &
    regMap() const
    {
        return reg_map_;
    }

  private:
    std::uint8_t denseReg(unsigned arch);
    XSrc decodeSrc(const Operand &o, DataType readType);

    std::vector<DecodedOp> code_;
    std::array<std::uint8_t, kNumGpRegs> reg_map_;
    /** Launch-constant special registers, indexed by SpecialReg. */
    std::array<std::uint64_t, 12> ntid_nctaid_{};
    std::uint32_t num_regs_ = 0;
};

} // namespace fsp::sim

#endif // FSP_SIM_DECODED_HH
