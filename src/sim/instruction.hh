/**
 * @file
 * Decoded operand and instruction representations.  Programs are fully
 * decoded by the assembler (src/ptx) before execution; the executor
 * interprets these structures directly, which keeps the per-dynamic-
 * instruction cost low enough for large fault-injection campaigns.
 */

#ifndef FSP_SIM_INSTRUCTION_HH
#define FSP_SIM_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "sim/isa.hh"
#include "sim/types.hh"

namespace fsp::sim {

/**
 * The PTXPlus zero register: reads return 0, writes are discarded.
 * Matches GPGPU-Sim's $r124 convention (visible in the paper's Fig. 5
 * listings, e.g. "mov.u32 $r2, $r124").
 */
constexpr unsigned kZeroReg = 124;

/** Maximum general-purpose registers per thread. */
constexpr unsigned kNumGpRegs = 128;

/** Number of 4-bit predicate (condition code) registers per thread. */
constexpr unsigned kNumPredRegs = 8;

/** Special (read-only) registers. */
enum class SpecialReg : std::uint8_t
{
    TidX,
    TidY,
    TidZ,
    NtidX,
    NtidY,
    NtidZ,
    CtaidX,
    CtaidY,
    CtaidZ,
    NctaidX,
    NctaidY,
    NctaidZ,
};

/** 16-bit half selection on a 32-bit register source (PTXPlus .lo/.hi). */
enum class HalfSel : std::uint8_t
{
    None,
    Lo,
    Hi,
};

/** A decoded operand. */
struct Operand
{
    enum class Kind : std::uint8_t
    {
        None,
        GpReg,   ///< $rN, optional .lo/.hi half and unary negation
        PredReg, ///< $pN
        Discard, ///< $o127 bit bucket: writes vanish, reads yield 0
        Special, ///< %tid.x and friends
        Imm,     ///< integer or float immediate (raw 64-bit payload)
        MemRef,  ///< [ $rN + offset ] or [ offset ]
    };

    Kind kind = Kind::None;
    std::uint8_t reg = 0;            ///< register index for GpReg/PredReg
    HalfSel half = HalfSel::None;    ///< half selection (GpReg sources)
    bool negated = false;            ///< unary minus on a GpReg source
    SpecialReg special = SpecialReg::TidX;
    std::uint64_t imm = 0;           ///< immediate payload (raw bits)
    std::int32_t memBase = -1;       ///< MemRef base register or -1
    std::int64_t memOffset = 0;      ///< MemRef byte offset

    static Operand
    makeGpReg(unsigned index, HalfSel half = HalfSel::None,
              bool negated = false)
    {
        Operand o;
        o.kind = Kind::GpReg;
        o.reg = static_cast<std::uint8_t>(index);
        o.half = half;
        o.negated = negated;
        return o;
    }

    static Operand
    makePredReg(unsigned index)
    {
        Operand o;
        o.kind = Kind::PredReg;
        o.reg = static_cast<std::uint8_t>(index);
        return o;
    }

    static Operand
    makeDiscard()
    {
        Operand o;
        o.kind = Kind::Discard;
        return o;
    }

    static Operand
    makeSpecial(SpecialReg sr)
    {
        Operand o;
        o.kind = Kind::Special;
        o.special = sr;
        return o;
    }

    static Operand
    makeImm(std::uint64_t raw)
    {
        Operand o;
        o.kind = Kind::Imm;
        o.imm = raw;
        return o;
    }

    static Operand
    makeMemRef(std::int32_t base_reg, std::int64_t offset)
    {
        Operand o;
        o.kind = Kind::MemRef;
        o.memBase = base_reg;
        o.memOffset = offset;
        return o;
    }
};

/** Guard ("@$p0.ne") attached to an instruction. */
struct Guard
{
    GuardCond cond = GuardCond::Always;
    std::uint8_t pred = 0;

    bool active() const { return cond != GuardCond::Always; }
};

/** A fully decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    DataType type = DataType::None;  ///< result type (".u32" suffix)
    DataType stype = DataType::None; ///< source type for cvt/set
    CmpOp cmp = CmpOp::None;         ///< comparison for set/setp
    MemSpace space = MemSpace::None; ///< address space for ld/st
    Guard guard;

    Operand dest;    ///< primary destination (fault-injection target)
    Operand dest2;   ///< secondary destination (set's data result)
    Operand src[3];  ///< sources; ld uses src[0] as the MemRef,
                     ///< st uses src[0] = MemRef, src[1] = value

    std::int32_t target = -1;   ///< branch target (instruction index)
    std::uint32_t barrier = 0;  ///< bar.sync barrier id
    std::uint32_t line = 0;     ///< 1-based source line (for listings)
    std::string text;           ///< original source text (diagnostics)

    /** True when this instruction writes a fault-injectable dest. */
    bool
    hasDest() const
    {
        return opcodeWritesDest(op) && dest.kind != Operand::Kind::Discard &&
               !(dest.kind == Operand::Kind::GpReg && dest.reg == kZeroReg);
    }

    /**
     * Bit width of the primary destination under the single-bit-flip
     * fault model: 4 for predicate CC registers, the type width
     * otherwise.
     */
    unsigned
    destBits() const
    {
        if (!hasDest())
            return 0;
        if (dest.kind == Operand::Kind::PredReg)
            return typeBits(DataType::Pred);
        if (op == Opcode::MulWide || op == Opcode::MadWide)
            return 2 * typeBits(type);
        return typeBits(type);
    }
};

} // namespace fsp::sim

#endif // FSP_SIM_INSTRUCTION_HH
