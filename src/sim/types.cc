/**
 * @file
 * Implementation of type/enum helpers for the simulator.
 */

#include "sim/types.hh"

#include "util/logging.hh"

namespace fsp::sim {

std::string
typeName(DataType type)
{
    switch (type) {
      case DataType::U16: return "u16";
      case DataType::U32: return "u32";
      case DataType::U64: return "u64";
      case DataType::S16: return "s16";
      case DataType::S32: return "s32";
      case DataType::S64: return "s64";
      case DataType::F32: return "f32";
      case DataType::F64: return "f64";
      case DataType::Pred: return "pred";
      case DataType::None: return "none";
    }
    panic("unreachable DataType");
}

DataType
parseType(const std::string &name)
{
    if (name == "u16") return DataType::U16;
    if (name == "u32") return DataType::U32;
    if (name == "u64") return DataType::U64;
    if (name == "s16") return DataType::S16;
    if (name == "s32") return DataType::S32;
    if (name == "s64") return DataType::S64;
    if (name == "f32") return DataType::F32;
    if (name == "f64") return DataType::F64;
    if (name == "pred") return DataType::Pred;
    return DataType::None;
}

std::string
cmpName(CmpOp cmp)
{
    switch (cmp) {
      case CmpOp::Eq: return "eq";
      case CmpOp::Ne: return "ne";
      case CmpOp::Lt: return "lt";
      case CmpOp::Le: return "le";
      case CmpOp::Gt: return "gt";
      case CmpOp::Ge: return "ge";
      case CmpOp::None: return "none";
    }
    panic("unreachable CmpOp");
}

CmpOp
parseCmp(const std::string &name)
{
    if (name == "eq") return CmpOp::Eq;
    if (name == "ne") return CmpOp::Ne;
    if (name == "lt") return CmpOp::Lt;
    if (name == "le") return CmpOp::Le;
    if (name == "gt") return CmpOp::Gt;
    if (name == "ge") return CmpOp::Ge;
    return CmpOp::None;
}

std::string
spaceName(MemSpace space)
{
    switch (space) {
      case MemSpace::Global: return "global";
      case MemSpace::Shared: return "shared";
      case MemSpace::Param: return "param";
      case MemSpace::None: return "none";
    }
    panic("unreachable MemSpace");
}

std::string
guardName(GuardCond cond)
{
    switch (cond) {
      case GuardCond::Always: return "always";
      case GuardCond::Eq: return "eq";
      case GuardCond::Ne: return "ne";
      case GuardCond::Lt: return "lt";
      case GuardCond::Le: return "le";
      case GuardCond::Gt: return "gt";
      case GuardCond::Ge: return "ge";
    }
    panic("unreachable GuardCond");
}

} // namespace fsp::sim
