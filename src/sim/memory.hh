/**
 * @file
 * Memory model for the functional GPU simulator.
 *
 * Global memory is a single bump-allocated arena starting at a non-zero
 * base address, so that corrupted address registers (the typical cause of
 * GPU kernel crashes under fault injection) dereference unmapped or
 * misaligned addresses and surface as crashes -- the paper's "other"
 * outcome.  Shared memory is a per-CTA bounds-checked buffer; param space
 * is a read-only launch-argument buffer.
 */

#ifndef FSP_SIM_MEMORY_HH
#define FSP_SIM_MEMORY_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sim/footprint.hh"

namespace fsp::sim {

/** Result of an address check. */
enum class AccessError : std::uint8_t
{
    None,
    Unmapped,   ///< address outside every allocation window
    Misaligned, ///< address not naturally aligned for the access width
};

namespace detail {

inline bool
aligned(std::uint64_t addr, unsigned width)
{
    return (addr & (width - 1)) == 0;
}

inline std::uint64_t
loadRaw(const std::uint8_t *base, unsigned width)
{
    std::uint64_t out = 0;
    std::memcpy(&out, base, width);
    return out;
}

inline void
storeRaw(std::uint8_t *base, unsigned width, std::uint64_t value)
{
    std::memcpy(base, &value, width);
}

} // namespace detail

/**
 * Snapshot of a GlobalMemory's dirty chunks: the chunk indices plus
 * their byte contents at capture time.  A delta captured on one image
 * can be applied to any image sharing the same allocation layout,
 * re-dirtying exactly the captured chunks -- the persistence format of
 * the checkpointed replay engine (pristine image + delta = memory as
 * it was at the capture point).
 */
struct MemoryDelta
{
    std::vector<std::uint32_t> chunks; ///< dirty chunk indices, sorted
    std::vector<std::uint8_t> bytes;   ///< concatenated chunk contents

    bool empty() const { return chunks.empty(); }

    /** Approximate in-memory footprint (checkpoint-budget metric). */
    std::uint64_t
    byteSize() const
    {
        return bytes.size() + chunks.size() * sizeof(std::uint32_t);
    }
};

/**
 * Flat global-memory arena with a bump allocator.
 *
 * Copyable by design: fault-injection campaigns keep one pristine copy of
 * the initialised memory image and restore it before every injected run.
 * The backing store grows lazily to the allocation frontier (capacity is
 * only an upper bound), so per-run copies cost the bytes actually
 * allocated, not the configured capacity.
 *
 * Device stores (and host pokes) additionally mark 256-byte chunks
 * dirty, so restoreFrom() can revert a scratch image to a pristine one
 * by copying only the chunks a run actually wrote -- the injection
 * engine's dominant cost at small write footprints.  Dirty tracking is
 * conservative at chunk granularity; dirtyIntervals() therefore
 * over-approximates the written byte set, never under-approximates it.
 */
class GlobalMemory
{
  public:
    /** Lowest valid address; [0, kBaseAddr) models the null page. */
    static constexpr std::uint64_t kBaseAddr = 0x1000;

    /** Dirty-tracking granularity in bytes (power of two). */
    static constexpr std::size_t kDirtyChunkBytes = 256;

    /** Construct with a maximum arena capacity in bytes. */
    explicit GlobalMemory(std::size_t capacity_bytes = 1u << 24);

    /**
     * Allocate @p bytes with @p alignment; returns the device address.
     * fatal() on arena exhaustion (a configuration error).
     */
    std::uint64_t allocate(std::size_t bytes, std::size_t alignment = 8);

    /** Bytes currently allocated. */
    std::size_t allocatedBytes() const { return bump_; }

    /**
     * Device-side load of @p width bytes (1/2/4/8).  Inline: this is
     * the interpreter's hottest memory path.
     *
     * @return AccessError::None and sets @p out on success.
     */
    AccessError
    load(std::uint64_t addr, unsigned width, std::uint64_t &out) const
    {
        if (!inBounds(addr, width))
            return AccessError::Unmapped;
        if (!detail::aligned(addr, width))
            return AccessError::Misaligned;
        out = detail::loadRaw(data_.data() + (addr - kBaseAddr), width);
        return AccessError::None;
    }

    /** Device-side store of @p width bytes (1/2/4/8). */
    AccessError
    store(std::uint64_t addr, unsigned width, std::uint64_t value)
    {
        if (!inBounds(addr, width))
            return AccessError::Unmapped;
        if (!detail::aligned(addr, width))
            return AccessError::Misaligned;
        std::size_t offset = static_cast<std::size_t>(addr - kBaseAddr);
        detail::storeRaw(data_.data() + offset, width, value);
        markDirty(offset, width);
        return AccessError::None;
    }

    /** @{ Host-side typed accessors (bounds enforced via panic). */
    void pokeU32(std::uint64_t addr, std::uint32_t value);
    void pokeU64(std::uint64_t addr, std::uint64_t value);
    void pokeF32(std::uint64_t addr, float value);
    void pokeF64(std::uint64_t addr, double value);
    std::uint32_t peekU32(std::uint64_t addr) const;
    std::uint64_t peekU64(std::uint64_t addr) const;
    float peekF32(std::uint64_t addr) const;
    double peekF64(std::uint64_t addr) const;
    /** @} */

    /** Raw bytes of a region (for output capture/comparison). */
    std::vector<std::uint8_t> snapshot(std::uint64_t addr,
                                       std::size_t bytes) const;

    /** Copy @p bytes raw bytes starting at @p addr into @p out. */
    void readBytes(std::uint64_t addr, std::size_t bytes,
                   std::uint8_t *out) const;

    /**
     * Revert every dirty chunk to @p pristine's contents and clear the
     * dirty state.  The two images must share an allocation layout
     * (i.e. @p pristine is the image this one was copied from).
     *
     * @return bytes copied (0 when nothing was written since the last
     *         reset -- restore is idempotent).
     */
    std::uint64_t restoreFrom(const GlobalMemory &pristine);

    /** Forget all dirty marks without touching the contents. */
    void resetDirtyTracking();

    /**
     * Snapshot the contents of every currently-dirty chunk (chunks at
     * the allocation frontier are clipped, mirroring restoreFrom).
     * Dirty state is left untouched.
     */
    MemoryDelta captureDelta() const;

    /**
     * Write a delta's chunk contents into this image and mark those
     * chunks dirty (so a later restoreFrom reverts them).  The delta
     * must come from an image with the same allocation layout.
     *
     * @return bytes copied.
     */
    std::uint64_t applyDelta(const MemoryDelta &delta);

    /** Has any byte been written since the last reset/restore? */
    bool hasDirtyBytes() const { return !dirty_chunks_.empty(); }

    /**
     * Device-address intervals covering every dirty chunk (merged,
     * clipped to the allocation frontier).  A chunk-granular superset
     * of the bytes actually written.
     */
    IntervalSet dirtyIntervals() const;

  private:
    bool
    inBounds(std::uint64_t addr, unsigned width) const
    {
        return addr >= kBaseAddr && addr + width <= kBaseAddr + bump_;
    }

    /** Mark the chunks covering @p bytes at arena @p offset dirty. */
    void
    markDirty(std::size_t offset, std::size_t bytes)
    {
        std::size_t first = offset / kDirtyChunkBytes;
        std::size_t last = (offset + bytes - 1) / kDirtyChunkBytes;
        for (std::size_t chunk = first; chunk <= last; ++chunk) {
            if (!dirty_flags_[chunk]) {
                dirty_flags_[chunk] = 1;
                dirty_chunks_.push_back(
                    static_cast<std::uint32_t>(chunk));
            }
        }
    }

    std::vector<std::uint8_t> data_; ///< sized to the frontier
    std::size_t capacity_;           ///< maximum arena bytes
    std::size_t bump_ = 0;
    std::vector<std::uint8_t> dirty_flags_;   ///< one flag per chunk
    std::vector<std::uint32_t> dirty_chunks_; ///< dirty chunk indices
};

/** Per-CTA software-managed scratchpad. */
class SharedMemory
{
  public:
    SharedMemory() = default;
    explicit SharedMemory(std::size_t bytes) : data_(bytes, 0) {}

    /** Reset all bytes to zero (fresh CTA launch). */
    void clear() { std::fill(data_.begin(), data_.end(), 0); }

    std::size_t size() const { return data_.size(); }
    const std::vector<std::uint8_t> &bytes() const { return data_; }

    /** Raw mutable contents (checkpoint restore writes pages here). */
    std::uint8_t *data() { return data_.data(); }

    AccessError
    load(std::uint64_t addr, unsigned width, std::uint64_t &out) const
    {
        if (addr + width > data_.size())
            return AccessError::Unmapped;
        if (!detail::aligned(addr, width))
            return AccessError::Misaligned;
        out = detail::loadRaw(data_.data() + addr, width);
        return AccessError::None;
    }

    AccessError
    store(std::uint64_t addr, unsigned width, std::uint64_t value)
    {
        if (addr + width > data_.size())
            return AccessError::Unmapped;
        if (!detail::aligned(addr, width))
            return AccessError::Misaligned;
        detail::storeRaw(data_.data() + addr, width, value);
        return AccessError::None;
    }

  private:
    std::vector<std::uint8_t> data_;
};

/**
 * Kernel launch parameter buffer with append-style builder methods;
 * read-only from the device side (ld.param).
 */
class ParamBuffer
{
  public:
    /** Append a 32-bit value; @return its byte offset. */
    std::size_t addU32(std::uint32_t value);
    /** Append a 64-bit value (8-aligned); @return its byte offset. */
    std::size_t addU64(std::uint64_t value);
    /** Append a float; @return its byte offset. */
    std::size_t addF32(float value);

    AccessError
    load(std::uint64_t addr, unsigned width, std::uint64_t &out) const
    {
        if (addr + width > data_.size())
            return AccessError::Unmapped;
        if (!detail::aligned(addr, width))
            return AccessError::Misaligned;
        out = detail::loadRaw(data_.data() + addr, width);
        return AccessError::None;
    }

    const std::vector<std::uint8_t> &bytes() const { return data_; }
    std::size_t size() const { return data_.size(); }

  private:
    void align(std::size_t alignment);

    std::vector<std::uint8_t> data_;
};

} // namespace fsp::sim

#endif // FSP_SIM_MEMORY_HH
