/**
 * @file
 * Implementation of the simulator memory spaces.
 */

#include "sim/memory.hh"

#include <algorithm>

#include "util/logging.hh"

namespace fsp::sim {

using detail::aligned;
using detail::loadRaw;
using detail::storeRaw;

GlobalMemory::GlobalMemory(std::size_t capacity_bytes)
    : capacity_(capacity_bytes)
{
}

std::uint64_t
GlobalMemory::allocate(std::size_t bytes, std::size_t alignment)
{
    FSP_ASSERT(alignment > 0 && (alignment & (alignment - 1)) == 0,
               "alignment must be a power of two");
    std::size_t start = (bump_ + alignment - 1) & ~(alignment - 1);
    if (start + bytes > capacity_) {
        fatal("global memory arena exhausted: need ", bytes, " bytes, ",
              capacity_ - start, " available");
    }
    bump_ = start + bytes;
    data_.resize(bump_, 0);
    dirty_flags_.resize(
        (bump_ + kDirtyChunkBytes - 1) / kDirtyChunkBytes, 0);
    return kBaseAddr + start;
}

void
GlobalMemory::pokeU32(std::uint64_t addr, std::uint32_t value)
{
    FSP_ASSERT(inBounds(addr, 4), "host poke out of bounds");
    std::size_t offset = static_cast<std::size_t>(addr - kBaseAddr);
    storeRaw(data_.data() + offset, 4, value);
    markDirty(offset, 4);
}

void
GlobalMemory::pokeU64(std::uint64_t addr, std::uint64_t value)
{
    FSP_ASSERT(inBounds(addr, 8), "host poke out of bounds");
    std::size_t offset = static_cast<std::size_t>(addr - kBaseAddr);
    storeRaw(data_.data() + offset, 8, value);
    markDirty(offset, 8);
}

void
GlobalMemory::pokeF32(std::uint64_t addr, float value)
{
    pokeU32(addr, std::bit_cast<std::uint32_t>(value));
}

void
GlobalMemory::pokeF64(std::uint64_t addr, double value)
{
    pokeU64(addr, std::bit_cast<std::uint64_t>(value));
}

std::uint32_t
GlobalMemory::peekU32(std::uint64_t addr) const
{
    FSP_ASSERT(inBounds(addr, 4), "host peek out of bounds");
    return static_cast<std::uint32_t>(
        loadRaw(data_.data() + (addr - kBaseAddr), 4));
}

std::uint64_t
GlobalMemory::peekU64(std::uint64_t addr) const
{
    FSP_ASSERT(inBounds(addr, 8), "host peek out of bounds");
    return loadRaw(data_.data() + (addr - kBaseAddr), 8);
}

float
GlobalMemory::peekF32(std::uint64_t addr) const
{
    return std::bit_cast<float>(peekU32(addr));
}

double
GlobalMemory::peekF64(std::uint64_t addr) const
{
    return std::bit_cast<double>(peekU64(addr));
}

std::vector<std::uint8_t>
GlobalMemory::snapshot(std::uint64_t addr, std::size_t bytes) const
{
    FSP_ASSERT(inBounds(addr, 1) && addr + bytes <= kBaseAddr + bump_,
               "snapshot out of bounds");
    auto first = data_.begin() + static_cast<std::ptrdiff_t>(addr - kBaseAddr);
    return {first, first + static_cast<std::ptrdiff_t>(bytes)};
}

void
GlobalMemory::readBytes(std::uint64_t addr, std::size_t bytes,
                        std::uint8_t *out) const
{
    if (bytes == 0)
        return;
    FSP_ASSERT(inBounds(addr, 1) && addr + bytes <= kBaseAddr + bump_,
               "readBytes out of bounds");
    std::memcpy(out, data_.data() + (addr - kBaseAddr), bytes);
}

std::uint64_t
GlobalMemory::restoreFrom(const GlobalMemory &pristine)
{
    FSP_ASSERT(bump_ == pristine.bump_,
               "restoreFrom: allocation layouts differ");
    std::uint64_t restored = 0;
    for (std::uint32_t chunk : dirty_chunks_) {
        std::size_t offset =
            static_cast<std::size_t>(chunk) * kDirtyChunkBytes;
        std::size_t len = std::min(kDirtyChunkBytes, bump_ - offset);
        std::memcpy(data_.data() + offset, pristine.data_.data() + offset,
                    len);
        dirty_flags_[chunk] = 0;
        restored += len;
    }
    dirty_chunks_.clear();
    return restored;
}

void
GlobalMemory::resetDirtyTracking()
{
    for (std::uint32_t chunk : dirty_chunks_)
        dirty_flags_[chunk] = 0;
    dirty_chunks_.clear();
}

MemoryDelta
GlobalMemory::captureDelta() const
{
    MemoryDelta delta;
    delta.chunks = dirty_chunks_;
    std::sort(delta.chunks.begin(), delta.chunks.end());
    delta.bytes.reserve(delta.chunks.size() * kDirtyChunkBytes);
    for (std::uint32_t chunk : delta.chunks) {
        std::size_t offset =
            static_cast<std::size_t>(chunk) * kDirtyChunkBytes;
        std::size_t len = std::min(kDirtyChunkBytes, bump_ - offset);
        delta.bytes.insert(delta.bytes.end(), data_.begin() +
                               static_cast<std::ptrdiff_t>(offset),
                           data_.begin() +
                               static_cast<std::ptrdiff_t>(offset + len));
    }
    return delta;
}

std::uint64_t
GlobalMemory::applyDelta(const MemoryDelta &delta)
{
    std::uint64_t applied = 0;
    std::size_t pos = 0;
    for (std::uint32_t chunk : delta.chunks) {
        std::size_t offset =
            static_cast<std::size_t>(chunk) * kDirtyChunkBytes;
        FSP_ASSERT(offset < bump_, "applyDelta: layouts differ");
        std::size_t len = std::min(kDirtyChunkBytes, bump_ - offset);
        FSP_ASSERT(pos + len <= delta.bytes.size(),
                   "applyDelta: truncated delta");
        std::memcpy(data_.data() + offset, delta.bytes.data() + pos, len);
        markDirty(offset, len);
        pos += len;
        applied += len;
    }
    FSP_ASSERT(pos == delta.bytes.size(), "applyDelta: trailing bytes");
    return applied;
}

IntervalSet
GlobalMemory::dirtyIntervals() const
{
    std::vector<Interval> raw;
    raw.reserve(dirty_chunks_.size());
    for (std::uint32_t chunk : dirty_chunks_) {
        std::uint64_t begin =
            static_cast<std::uint64_t>(chunk) * kDirtyChunkBytes;
        std::uint64_t end = std::min<std::uint64_t>(
            begin + kDirtyChunkBytes, bump_);
        raw.push_back({kBaseAddr + begin, kBaseAddr + end});
    }
    return IntervalSet::fromUnsorted(std::move(raw));
}

std::size_t
ParamBuffer::addU32(std::uint32_t value)
{
    align(4);
    std::size_t offset = data_.size();
    data_.resize(offset + 4);
    storeRaw(data_.data() + offset, 4, value);
    return offset;
}

std::size_t
ParamBuffer::addU64(std::uint64_t value)
{
    align(8);
    std::size_t offset = data_.size();
    data_.resize(offset + 8);
    storeRaw(data_.data() + offset, 8, value);
    return offset;
}

std::size_t
ParamBuffer::addF32(float value)
{
    return addU32(std::bit_cast<std::uint32_t>(value));
}

void
ParamBuffer::align(std::size_t alignment)
{
    while (data_.size() % alignment != 0)
        data_.push_back(0);
}

} // namespace fsp::sim
