/**
 * @file
 * Disassembler: renders decoded instructions back to the textual
 * PTXPlus-style syntax accepted by the assembler.  The output
 * round-trips (assemble(disassemble(p)) decodes to an equivalent
 * program), which the test suite exploits as a property check on both
 * components, and gives benches/tools human-readable listings
 * independent of the original source text.
 */

#ifndef FSP_SIM_DISASM_HH
#define FSP_SIM_DISASM_HH

#include <cstdint>
#include <functional>
#include <string>

#include "sim/instruction.hh"
#include "sim/program.hh"

namespace fsp::sim {

/** Maps a branch-target instruction index to a label name. */
using LabelProvider = std::function<std::string(std::size_t)>;

/**
 * Render one instruction.
 *
 * @param insn decoded instruction.
 * @param label_of names branch targets (required for bra).
 */
std::string disassembleInstruction(const Instruction &insn,
                                   const LabelProvider &label_of);

/**
 * Render a whole program with generated "lN" labels on branch
 * targets; the result re-assembles to an equivalent program.
 */
std::string disassembleProgram(const Program &program);

} // namespace fsp::sim

#endif // FSP_SIM_DISASM_HH
