/**
 * @file
 * Implementation of the functional SIMT executor.
 *
 * Execution model: CTAs run sequentially (they are independent up to
 * global memory, as in the CUDA model where no inter-CTA ordering may be
 * assumed).  Within a CTA, threads run cooperatively: each thread
 * executes until it exits or reaches a bar.sync; when every live thread
 * has arrived, the barrier releases.  This is functionally equivalent to
 * warp-synchronous execution for barrier-correct programs while keeping
 * the interpreter simple and fast.
 */

#include "sim/executor.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/logging.hh"

namespace fsp::sim {

std::string
runStatusName(RunStatus status)
{
    switch (status) {
      case RunStatus::Completed: return "completed";
      case RunStatus::Crashed: return "crashed";
      case RunStatus::Hung: return "hung";
      case RunStatus::SliceHazard: return "slice-hazard";
    }
    panic("unreachable RunStatus");
}

CtaRange
CtaRange::contiguous(std::uint64_t begin, std::uint64_t end)
{
    CtaRange range;
    for (std::uint64_t cta = begin; cta < end; ++cta)
        range.ctas.push_back(cta);
    return range;
}

CtaRange
CtaRange::of(std::vector<std::uint64_t> ids)
{
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return {std::move(ids)};
}

namespace {

constexpr std::uint64_t kDefaultBudget = 50'000'000;

/** Zero-extend truncation to @p bits. */
inline std::uint64_t
truncVal(std::uint64_t v, unsigned bits)
{
    return bits >= 64 ? v : (v & ((std::uint64_t{1} << bits) - 1));
}

/** Sign extension of the low @p bits of @p v. */
inline std::int64_t
signExt(std::uint64_t v, unsigned bits)
{
    if (bits >= 64)
        return static_cast<std::int64_t>(v);
    std::uint64_t m = std::uint64_t{1} << (bits - 1);
    std::uint64_t t = truncVal(v, bits);
    return static_cast<std::int64_t>((t ^ m) - m);
}

inline float
asF32(std::uint64_t raw)
{
    return std::bit_cast<float>(static_cast<std::uint32_t>(raw));
}

inline std::uint64_t
fromF32(float v)
{
    return std::bit_cast<std::uint32_t>(v);
}

inline double
asF64(std::uint64_t raw)
{
    return std::bit_cast<double>(raw);
}

inline std::uint64_t
fromF64(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

/** Why a thread stopped running in the current scheduling slice. */
enum class StopReason : std::uint8_t
{
    Exited,
    Barrier,
    Limit, ///< per-call step limit reached (stepCta watermark)
    Crashed,
    Hung,
    Hazard, ///< sliced run touched another CTA's footprint
};

/** Mutable context shared by every thread while one CTA executes. */
struct CtaContext
{
    GlobalMemory &gmem;
    SharedMemory *smem; ///< the current CTA's scratchpad (in its state)
    const ParamBuffer &params;
    const Dim3 &ntid;
    const Dim3 &nctaid;
    std::uint32_t ctaidX, ctaidY, ctaidZ;
    std::uint64_t budget;
    const TraceOptions *opts;
    FaultPlan *fault;
    TraceData *trace;
    std::string diagnostic;

    /** Sliced-run hazard sets (null outside sliced injection runs). */
    const IntervalSet *loadHazards = nullptr;
    const IntervalSet *storeHazards = nullptr;

    /** Footprint accumulators for the current CTA (null when off). */
    std::vector<Interval> *fpReads = nullptr;
    std::vector<Interval> *fpWrites = nullptr;
};

/** Read a source operand as raw bits appropriate for @p type. */
inline std::uint64_t
readSrc(const ThreadState &t, const CtaContext &ctx, const Operand &o,
        DataType type)
{
    switch (o.kind) {
      case Operand::Kind::GpReg: {
        std::uint64_t raw = (o.reg == kZeroReg) ? 0 : t.regs[o.reg];
        if (o.half == HalfSel::Lo)
            raw = raw & 0xFFFF;
        else if (o.half == HalfSel::Hi)
            raw = (raw >> 16) & 0xFFFF;
        if (o.negated) {
            if (type == DataType::F32)
                raw = fromF32(-asF32(raw));
            else if (type == DataType::F64)
                raw = fromF64(-asF64(raw));
            else
                raw = truncVal(0 - raw, typeBits(type));
        }
        return raw;
      }
      case Operand::Kind::PredReg:
        // Predicate as a data source (selp): true iff zero flag clear.
        return (t.ccs[o.reg] & CcZero) ? 0 : 1;
      case Operand::Kind::Discard:
        return 0;
      case Operand::Kind::Special:
        switch (o.special) {
          case SpecialReg::TidX: return t.tidX;
          case SpecialReg::TidY: return t.tidY;
          case SpecialReg::TidZ: return t.tidZ;
          case SpecialReg::NtidX: return ctx.ntid.x;
          case SpecialReg::NtidY: return ctx.ntid.y;
          case SpecialReg::NtidZ: return ctx.ntid.z;
          case SpecialReg::CtaidX: return ctx.ctaidX;
          case SpecialReg::CtaidY: return ctx.ctaidY;
          case SpecialReg::CtaidZ: return ctx.ctaidZ;
          case SpecialReg::NctaidX: return ctx.nctaid.x;
          case SpecialReg::NctaidY: return ctx.nctaid.y;
          case SpecialReg::NctaidZ: return ctx.nctaid.z;
        }
        panic("unreachable SpecialReg");
      case Operand::Kind::Imm:
        return o.imm;
      case Operand::Kind::MemRef:
      case Operand::Kind::None:
        panic("operand kind not readable as a value");
    }
    panic("unreachable Operand::Kind");
}

/** Condition-code flags derived from a result value of @p type. */
inline std::uint8_t
ccFromValue(std::uint64_t raw, DataType type)
{
    std::uint8_t cc = 0;
    if (isFloatType(type)) {
        double v = type == DataType::F32 ? asF32(raw) : asF64(raw);
        if (v == 0.0)
            cc |= CcZero;
        if (std::signbit(v))
            cc |= CcSign;
    } else {
        unsigned bits = typeBits(type);
        if (truncVal(raw, bits) == 0)
            cc |= CcZero;
        if (signExt(raw, bits) < 0)
            cc |= CcSign;
    }
    return cc;
}

/** Evaluate a guard against a CC register. */
inline bool
guardPasses(const Guard &g, const ThreadState &t)
{
    if (g.cond == GuardCond::Always)
        return true;
    std::uint8_t cc = t.ccs[g.pred];
    bool zero = cc & CcZero;
    bool sign = cc & CcSign;
    switch (g.cond) {
      case GuardCond::Eq: return zero;
      case GuardCond::Ne: return !zero;
      case GuardCond::Lt: return sign;
      case GuardCond::Le: return sign || zero;
      case GuardCond::Gt: return !sign && !zero;
      case GuardCond::Ge: return !sign;
      case GuardCond::Always: return true;
    }
    panic("unreachable GuardCond");
}

/** Integer comparison on raw values per @p type. */
inline bool
compareValues(CmpOp cmp, std::uint64_t a, std::uint64_t b, DataType type)
{
    if (isFloatType(type)) {
        double fa = type == DataType::F32 ? asF32(a) : asF64(a);
        double fb = type == DataType::F32 ? asF32(b) : asF64(b);
        switch (cmp) {
          case CmpOp::Eq: return fa == fb;
          case CmpOp::Ne: return fa != fb;
          case CmpOp::Lt: return fa < fb;
          case CmpOp::Le: return fa <= fb;
          case CmpOp::Gt: return fa > fb;
          case CmpOp::Ge: return fa >= fb;
          case CmpOp::None: break;
        }
        panic("set/setp without comparison");
    }
    unsigned bits = typeBits(type);
    if (isSignedType(type)) {
        std::int64_t sa = signExt(a, bits);
        std::int64_t sb = signExt(b, bits);
        switch (cmp) {
          case CmpOp::Eq: return sa == sb;
          case CmpOp::Ne: return sa != sb;
          case CmpOp::Lt: return sa < sb;
          case CmpOp::Le: return sa <= sb;
          case CmpOp::Gt: return sa > sb;
          case CmpOp::Ge: return sa >= sb;
          case CmpOp::None: break;
        }
        panic("set/setp without comparison");
    }
    std::uint64_t ua = truncVal(a, bits);
    std::uint64_t ub = truncVal(b, bits);
    switch (cmp) {
      case CmpOp::Eq: return ua == ub;
      case CmpOp::Ne: return ua != ub;
      case CmpOp::Lt: return ua < ub;
      case CmpOp::Le: return ua <= ub;
      case CmpOp::Gt: return ua > ub;
      case CmpOp::Ge: return ua >= ub;
      case CmpOp::None: break;
    }
    panic("set/setp without comparison");
}

/** Float->int conversion with CUDA-like saturation and NaN->0. */
inline std::int64_t
floatToInt(double v, unsigned bits, bool is_signed)
{
    if (std::isnan(v))
        return 0;
    double lo, hi;
    if (is_signed) {
        lo = -std::ldexp(1.0, static_cast<int>(bits) - 1);
        hi = std::ldexp(1.0, static_cast<int>(bits) - 1) - 1.0;
    } else {
        lo = 0.0;
        hi = std::ldexp(1.0, static_cast<int>(bits)) - 1.0;
    }
    if (v < lo)
        v = lo;
    if (v > hi)
        v = hi;
    return static_cast<std::int64_t>(std::trunc(v));
}

/** ALU evaluation for two/three-operand ops; returns the raw result. */
std::uint64_t
evalAlu(const Instruction &insn, std::uint64_t a, std::uint64_t b,
        std::uint64_t c)
{
    const DataType t = insn.type;
    const unsigned bits = typeBits(t);

    if (t == DataType::F32) {
        float fa = asF32(a), fb = asF32(b), fc = asF32(c);
        switch (insn.op) {
          case Opcode::Mov: return fromF32(fa);
          case Opcode::Add: return fromF32(fa + fb);
          case Opcode::Sub: return fromF32(fa - fb);
          case Opcode::Mul: return fromF32(fa * fb);
          case Opcode::Mad: return fromF32(fa * fb + fc);
          case Opcode::Div: return fromF32(fa / fb);
          case Opcode::Min: return fromF32(std::fmin(fa, fb));
          case Opcode::Max: return fromF32(std::fmax(fa, fb));
          case Opcode::Neg: return fromF32(-fa);
          case Opcode::Abs: return fromF32(std::fabs(fa));
          case Opcode::Rcp: return fromF32(1.0f / fa);
          case Opcode::Sqrt: return fromF32(std::sqrt(fa));
          case Opcode::Rsqrt: return fromF32(1.0f / std::sqrt(fa));
          case Opcode::Ex2: return fromF32(std::exp2(fa));
          case Opcode::Lg2: return fromF32(std::log2(fa));
          case Opcode::Rem: return fromF32(std::fmod(fa, fb));
          default: break;
        }
        panic("opcode ", opcodeName(insn.op), " not valid for f32");
    }

    if (t == DataType::F64) {
        double fa = asF64(a), fb = asF64(b), fc = asF64(c);
        switch (insn.op) {
          case Opcode::Mov: return fromF64(fa);
          case Opcode::Add: return fromF64(fa + fb);
          case Opcode::Sub: return fromF64(fa - fb);
          case Opcode::Mul: return fromF64(fa * fb);
          case Opcode::Mad: return fromF64(fa * fb + fc);
          case Opcode::Div: return fromF64(fa / fb);
          case Opcode::Min: return fromF64(std::fmin(fa, fb));
          case Opcode::Max: return fromF64(std::fmax(fa, fb));
          case Opcode::Neg: return fromF64(-fa);
          case Opcode::Abs: return fromF64(std::fabs(fa));
          case Opcode::Rcp: return fromF64(1.0 / fa);
          case Opcode::Sqrt: return fromF64(std::sqrt(fa));
          case Opcode::Rsqrt: return fromF64(1.0 / std::sqrt(fa));
          case Opcode::Rem: return fromF64(std::fmod(fa, fb));
          default: break;
        }
        panic("opcode ", opcodeName(insn.op), " not valid for f64");
    }

    const bool sgn = isSignedType(t);
    switch (insn.op) {
      case Opcode::Mov:
        return truncVal(a, bits);
      case Opcode::Add:
        return truncVal(a + b, bits);
      case Opcode::Sub:
        return truncVal(a - b, bits);
      case Opcode::Mul:
        return truncVal(a * b, bits);
      case Opcode::Mad:
        return truncVal(a * b + c, bits);
      case Opcode::MulWide:
      case Opcode::MadWide: {
        std::uint64_t prod;
        if (sgn) {
            prod = static_cast<std::uint64_t>(signExt(a, bits) *
                                              signExt(b, bits));
        } else {
            prod = truncVal(a, bits) * truncVal(b, bits);
        }
        std::uint64_t acc =
            insn.op == Opcode::MadWide ? prod + c : prod;
        return truncVal(acc, 2 * bits);
      }
      case Opcode::Div: {
        if (truncVal(b, bits) == 0)
            return truncVal(~std::uint64_t{0}, bits);
        if (sgn) {
            std::int64_t sa = signExt(a, bits), sb = signExt(b, bits);
            // Avoid the INT_MIN / -1 trap: hardware wraps.
            if (sb == -1)
                return truncVal(static_cast<std::uint64_t>(-sa), bits);
            return truncVal(static_cast<std::uint64_t>(sa / sb), bits);
        }
        return truncVal(truncVal(a, bits) / truncVal(b, bits), bits);
      }
      case Opcode::Rem: {
        if (truncVal(b, bits) == 0)
            return truncVal(a, bits);
        if (sgn) {
            std::int64_t sa = signExt(a, bits), sb = signExt(b, bits);
            if (sb == -1)
                return 0;
            return truncVal(static_cast<std::uint64_t>(sa % sb), bits);
        }
        return truncVal(a, bits) % truncVal(b, bits);
      }
      case Opcode::Min:
        if (sgn) {
            return truncVal(static_cast<std::uint64_t>(std::min(
                                signExt(a, bits), signExt(b, bits))),
                            bits);
        }
        return std::min(truncVal(a, bits), truncVal(b, bits));
      case Opcode::Max:
        if (sgn) {
            return truncVal(static_cast<std::uint64_t>(std::max(
                                signExt(a, bits), signExt(b, bits))),
                            bits);
        }
        return std::max(truncVal(a, bits), truncVal(b, bits));
      case Opcode::Neg:
        return truncVal(0 - a, bits);
      case Opcode::Abs: {
        std::int64_t sa = signExt(a, bits);
        return truncVal(static_cast<std::uint64_t>(sa < 0 ? -sa : sa), bits);
      }
      case Opcode::And:
        return truncVal(a & b, bits);
      case Opcode::Or:
        return truncVal(a | b, bits);
      case Opcode::Xor:
        return truncVal(a ^ b, bits);
      case Opcode::Not:
        return truncVal(~a, bits);
      case Opcode::Shl: {
        std::uint64_t s = truncVal(b, bits);
        if (s >= bits)
            return 0;
        return truncVal(truncVal(a, bits) << s, bits);
      }
      case Opcode::Shr: {
        std::uint64_t s = truncVal(b, bits);
        if (sgn) {
            std::int64_t sa = signExt(a, bits);
            if (s >= bits)
                return truncVal(static_cast<std::uint64_t>(sa < 0 ? -1 : 0),
                                bits);
            return truncVal(static_cast<std::uint64_t>(sa >>
                                                       static_cast<int>(s)),
                            bits);
        }
        if (s >= bits)
            return 0;
        return truncVal(a, bits) >> s;
      }
      default:
        break;
    }
    panic("opcode ", opcodeName(insn.op), " not valid for integer types");
}

/** cvt semantics: read as stype, convert to dtype, return raw bits. */
std::uint64_t
evalCvt(const Instruction &insn, std::uint64_t raw)
{
    const DataType st = insn.stype;
    const DataType dt = insn.type;

    if (isFloatType(st)) {
        double v = st == DataType::F32 ? asF32(raw) : asF64(raw);
        if (dt == DataType::F32)
            return fromF32(static_cast<float>(v));
        if (dt == DataType::F64)
            return fromF64(v);
        return truncVal(static_cast<std::uint64_t>(floatToInt(
                            v, typeBits(dt), isSignedType(dt))),
                        typeBits(dt));
    }

    // Integer source.
    std::int64_t sv = isSignedType(st) ? signExt(raw, typeBits(st))
                                       : static_cast<std::int64_t>(
                                             truncVal(raw, typeBits(st)));
    if (dt == DataType::F32) {
        return fromF32(isSignedType(st)
                           ? static_cast<float>(sv)
                           : static_cast<float>(
                                 static_cast<std::uint64_t>(sv)));
    }
    if (dt == DataType::F64) {
        return fromF64(isSignedType(st)
                           ? static_cast<double>(sv)
                           : static_cast<double>(
                                 static_cast<std::uint64_t>(sv)));
    }
    return truncVal(static_cast<std::uint64_t>(sv), typeBits(dt));
}

/** Record a plan's first application and its static instruction. */
inline void
noteApplied(FaultPlan &fault, std::uint32_t static_index)
{
    if (!fault.applied) {
        fault.applied = true;
        fault.appliedStatic = static_index;
    }
}

/**
 * Corrupt a just-written destination value per the plan.  Covers the
 * transient XOR model (DestReg, the paper's default) and the stuck-at
 * variants (DestRegStuck); mask bits outside the destination's
 * recorded width never take effect, so a plan targeting a wider value
 * than the instruction produced stays un-applied exactly as the
 * original single-bit engine behaved.
 *
 * @return true when the value was corrupted (callers then writeback
 *         and mark the plan applied).
 */
inline bool
corruptDest(std::uint64_t &value, const FaultPlan &fault,
            std::uint64_t dyn_index, unsigned recorded_bits)
{
    const std::uint64_t width_mask =
        recorded_bits >= 64
            ? ~std::uint64_t{0}
            : ((std::uint64_t{1} << recorded_bits) - 1);
    const std::uint64_t mask = fault.mask & width_mask;
    if (mask == 0)
        return false;
    if (fault.kind == FaultKind::DestReg) {
        if (dyn_index != fault.dynIndex)
            return false;
        value ^= mask;
        return true;
    }
    // DestRegStuck: active from dynIndex onward; a non-zero period
    // alternates active/idle windows (deterministic intermittency).
    if (dyn_index < fault.dynIndex)
        return false;
    if (fault.period != 0 &&
        (((dyn_index - fault.dynIndex) / fault.period) & 1) != 0) {
        return false;
    }
    value = (value & ~mask) | (fault.stuckValue & mask);
    return true;
}

/** Does this plan corrupt destination writebacks? */
inline bool
isDestKind(FaultKind kind)
{
    return kind == FaultKind::DestReg || kind == FaultKind::DestRegStuck;
}

/**
 * Apply a reach-time fault: architectural state corrupted when the
 * target thread arrives at its target dynamic instruction, before
 * executing it (PredState, PcState, SharedMem, GlobalMem).  Other
 * kinds fall through untouched -- in particular BarrierSkip, which is
 * consumed at the next Bar instruction instead.
 *
 * @return true when the interpreter loop must stop with @p halt (a
 *         crash on an unmapped flip address, or a sliced-run hazard
 *         when the flipped global byte is shared with other CTAs).
 */
inline bool
applyReachFault(ThreadState &t, CtaContext &ctx, std::size_t code_size,
                StopReason &halt)
{
    FaultPlan &fault = *ctx.fault;
    const std::uint32_t static_index =
        t.pc < code_size ? static_cast<std::uint32_t>(t.pc)
                         : kNoStaticIndex;
    switch (fault.kind) {
      case FaultKind::PredState: {
        const std::uint8_t mask =
            static_cast<std::uint8_t>(fault.mask & 0xF);
        if (mask == 0)
            return false;
        t.ccs[fault.reg % kNumPredRegs] ^= mask;
        noteApplied(fault, static_index);
        return false;
      }

      case FaultKind::PcState:
        // Record the instruction the thread was about to execute; a
        // flipped pc past the code makes the thread exit (implicit
        // wild-jump exit), which the loop's bounds check handles.
        noteApplied(fault, static_index);
        t.pc ^= fault.mask;
        return false;

      case FaultKind::SharedMem: {
        std::uint64_t byte = 0;
        AccessError err = ctx.smem->load(fault.addr, 1, byte);
        if (err == AccessError::None) {
            err = ctx.smem->store(fault.addr, 1,
                                  byte ^ (fault.mask & 0xFF));
        }
        if (err != AccessError::None) {
            std::ostringstream os;
            os << "thread " << t.globalId
               << " shared-memory fault flip at unmapped 0x" << std::hex
               << fault.addr << std::dec;
            ctx.diagnostic = os.str();
            halt = StopReason::Crashed;
            return true;
        }
        noteApplied(fault, static_index);
        return false;
      }

      case FaultKind::GlobalMem: {
        // The flip is a read-modify-write of one global byte by the
        // faulty thread; in sliced runs it must honour the same hazard
        // discipline as an instruction's load+store so the sliced
        // classification stays exact.
        const std::uint64_t begin = fault.addr, end = fault.addr + 1;
        if ((ctx.loadHazards &&
             ctx.loadHazards->intersectsRange(begin, end)) ||
            (ctx.storeHazards &&
             ctx.storeHazards->intersectsRange(begin, end))) {
            std::ostringstream os;
            os << "thread " << t.globalId
               << " sliced-run fault-flip hazard at global 0x"
               << std::hex << fault.addr << std::dec;
            ctx.diagnostic = os.str();
            halt = StopReason::Hazard;
            return true;
        }
        std::uint64_t byte = 0;
        AccessError err = ctx.gmem.load(fault.addr, 1, byte);
        if (err == AccessError::None) {
            err = ctx.gmem.store(fault.addr, 1,
                                 byte ^ (fault.mask & 0xFF));
        }
        if (err != AccessError::None) {
            std::ostringstream os;
            os << "thread " << t.globalId
               << " global-memory fault flip at unmapped 0x" << std::hex
               << fault.addr << std::dec;
            ctx.diagnostic = os.str();
            halt = StopReason::Crashed;
            return true;
        }
        noteApplied(fault, static_index);
        return false;
      }

      default:
        return false;
    }
}

/**
 * The per-thread interpreter loop.  Runs until the thread exits,
 * reaches a barrier, crashes, exceeds its budget, or has executed
 * @p max_steps instructions in this call (the stepping engine's
 * watermark, surfaced as StopReason::Limit).
 */
StopReason
runThread(ThreadState &t, const Program &prog, CtaContext &ctx,
          std::uint64_t max_steps)
{
    const auto &code = prog.instructions();
    const std::size_t code_size = code.size();

    std::vector<DynRecord> *dyn_trace = nullptr;
    if (t.traced && ctx.trace)
        dyn_trace = &ctx.trace->dynTraces[t.globalId];

    const bool is_fault_thread =
        ctx.fault != nullptr && ctx.fault->thread == t.globalId;

    std::uint64_t steps = 0;
    while (true) {
        // Reach-time faults fire when the thread is about to execute
        // its target dynamic instruction (pre-fault execution is
        // bit-identical to golden, so a valid site always fires).
        if (is_fault_thread && !ctx.fault->applied &&
            t.icnt == ctx.fault->dynIndex) {
            StopReason halt;
            if (applyReachFault(t, ctx, code_size, halt))
                return halt;
        }
        if (t.pc >= code_size) {
            t.exited = true;
            return StopReason::Exited;
        }
        if (steps >= max_steps)
            return StopReason::Limit;
        if (t.icnt >= ctx.budget) {
            std::ostringstream os;
            os << "thread " << t.globalId << " exceeded budget of "
               << ctx.budget << " dynamic instructions";
            ctx.diagnostic = os.str();
            return StopReason::Hung;
        }

        const Instruction &insn = code[t.pc];
        const std::uint64_t dyn_index = t.icnt;
        t.icnt++;
        steps++;

        const bool pass = guardPasses(insn.guard, t);
        std::uint16_t recorded_bits = 0;
        bool hit_barrier = false;

        if (pass) {
            switch (insn.op) {
              case Opcode::Nop:
              case Opcode::Ssy:
                t.pc++;
                break;

              case Opcode::Ret:
              case Opcode::Exit:
                t.exited = true;
                break;

              case Opcode::Bra:
                t.pc = static_cast<std::uint64_t>(insn.target);
                break;

              case Opcode::Bar:
                t.pc++;
                if (is_fault_thread &&
                    ctx.fault->kind == FaultKind::BarrierSkip &&
                    !ctx.fault->applied &&
                    dyn_index >= ctx.fault->dynIndex) {
                    // Corrupted barrier bookkeeping: the thread's
                    // arrival is lost, so it runs ahead into the next
                    // phase while the others rendezvous without it.
                    noteApplied(*ctx.fault,
                                static_cast<std::uint32_t>(
                                    &insn - code.data()));
                } else {
                    hit_barrier = true;
                }
                break;

              case Opcode::Ld:
              case Opcode::St: {
                const Operand &mem = insn.src[0];
                std::uint64_t base =
                    mem.memBase >= 0
                        ? truncVal(t.regs[static_cast<unsigned>(mem.memBase)],
                                   32)
                        : 0;
                if (mem.memBase == static_cast<std::int32_t>(kZeroReg))
                    base = 0;
                std::uint64_t addr =
                    base + static_cast<std::uint64_t>(mem.memOffset);
                unsigned width = typeBits(insn.type) / 8;

                if (insn.space == MemSpace::Global) {
                    // Sliced-run escape: an access into a byte range
                    // other CTAs touch means this CTA's isolated
                    // execution could diverge from its execution in
                    // the full grid -- abort so the injector falls
                    // back to a full-grid run.
                    const IntervalSet *hazards = insn.op == Opcode::Ld
                                                     ? ctx.loadHazards
                                                     : ctx.storeHazards;
                    if (hazards &&
                        hazards->intersectsRange(addr, addr + width)) {
                        std::ostringstream os;
                        os << "thread " << t.globalId << " sliced-run "
                           << (insn.op == Opcode::Ld ? "load" : "store")
                           << " hazard at global 0x" << std::hex << addr
                           << std::dec << ": " << insn.text;
                        ctx.diagnostic = os.str();
                        return StopReason::Hazard;
                    }
                }

                AccessError err;
                std::uint64_t value = 0;
                if (insn.op == Opcode::Ld) {
                    switch (insn.space) {
                      case MemSpace::Global:
                        err = ctx.gmem.load(addr, width, value);
                        break;
                      case MemSpace::Shared:
                        err = ctx.smem->load(addr, width, value);
                        break;
                      case MemSpace::Param:
                        err = ctx.params.load(addr, width, value);
                        break;
                      default:
                        panic("ld without address space");
                    }
                } else {
                    value = readSrc(t, ctx, insn.src[1], insn.type);
                    value = truncVal(value, typeBits(insn.type));
                    switch (insn.space) {
                      case MemSpace::Global:
                        err = ctx.gmem.store(addr, width, value);
                        break;
                      case MemSpace::Shared:
                        err = ctx.smem->store(addr, width, value);
                        break;
                      default:
                        panic("st without writable address space");
                    }
                }

                if (err != AccessError::None) {
                    std::ostringstream os;
                    os << "thread " << t.globalId << " "
                       << (insn.op == Opcode::Ld ? "load" : "store")
                       << " fault at " << spaceName(insn.space) << " 0x"
                       << std::hex << addr << std::dec << " ("
                       << (err == AccessError::Unmapped ? "unmapped"
                                                        : "misaligned")
                       << "): " << insn.text;
                    ctx.diagnostic = os.str();
                    return StopReason::Crashed;
                }

                if (insn.space == MemSpace::Global) {
                    std::vector<Interval> *fp = insn.op == Opcode::Ld
                                                    ? ctx.fpReads
                                                    : ctx.fpWrites;
                    if (fp)
                        fp->push_back({addr, addr + width});
                }

                if (insn.op == Opcode::Ld) {
                    // Sign-extend signed loads into the register.
                    if (isSignedType(insn.type)) {
                        value = static_cast<std::uint64_t>(
                            signExt(value, typeBits(insn.type)));
                        value = truncVal(value, 64);
                    }
                    if (insn.dest.kind == Operand::Kind::GpReg &&
                        insn.dest.reg != kZeroReg) {
                        t.regs[insn.dest.reg] = value;
                        recorded_bits = static_cast<std::uint16_t>(
                            typeBits(insn.type));
                        if (is_fault_thread &&
                            isDestKind(ctx.fault->kind) &&
                            corruptDest(t.regs[insn.dest.reg],
                                        *ctx.fault, dyn_index,
                                        recorded_bits)) {
                            noteApplied(*ctx.fault,
                                        static_cast<std::uint32_t>(
                                            &insn - code.data()));
                        }
                    }
                }
                t.pc++;
                break;
              }

              default: {
                // ALU / SFU / compare / conversion path.
                std::uint64_t result;
                if (insn.op == Opcode::Cvt) {
                    std::uint64_t a = readSrc(t, ctx, insn.src[0],
                                              insn.stype);
                    result = evalCvt(insn, a);
                } else if (insn.op == Opcode::Set ||
                           insn.op == Opcode::Setp) {
                    std::uint64_t a = readSrc(t, ctx, insn.src[0],
                                              insn.stype);
                    std::uint64_t b = readSrc(t, ctx, insn.src[1],
                                              insn.stype);
                    bool r = compareValues(insn.cmp, a, b, insn.stype);
                    unsigned dbits = insn.type == DataType::Pred
                                         ? 32
                                         : typeBits(insn.type);
                    result = r ? truncVal(~std::uint64_t{0}, dbits) : 0;
                } else if (insn.op == Opcode::Selp) {
                    std::uint64_t a = readSrc(t, ctx, insn.src[0],
                                              insn.type);
                    std::uint64_t b = readSrc(t, ctx, insn.src[1],
                                              insn.type);
                    std::uint64_t cnd = readSrc(t, ctx, insn.src[2],
                                                DataType::U32);
                    result = cnd ? truncVal(a, typeBits(insn.type))
                                 : truncVal(b, typeBits(insn.type));
                } else {
                    unsigned n = opcodeSrcCount(insn.op);
                    std::uint64_t a = readSrc(t, ctx, insn.src[0],
                                              insn.type);
                    std::uint64_t b =
                        n > 1 ? readSrc(t, ctx, insn.src[1], insn.type) : 0;
                    std::uint64_t c =
                        n > 2 ? readSrc(t, ctx, insn.src[2], insn.type) : 0;
                    result = evalAlu(insn, a, b, c);
                }

                // Writeback: primary dest is either a GPR value or a
                // 4-bit CC register (with an optional data side-effect
                // through dest2, PTXPlus "$p0|$r1" style).
                if (insn.dest.kind == Operand::Kind::PredReg) {
                    DataType cc_type =
                        insn.op == Opcode::Set || insn.op == Opcode::Setp
                            ? (insn.type == DataType::Pred ? DataType::U32
                                                           : insn.type)
                            : insn.type;
                    t.ccs[insn.dest.reg] = ccFromValue(result, cc_type);
                    recorded_bits = typeBits(DataType::Pred);
                    if (is_fault_thread &&
                        isDestKind(ctx.fault->kind)) {
                        std::uint64_t cc = t.ccs[insn.dest.reg];
                        if (corruptDest(cc, *ctx.fault, dyn_index,
                                        recorded_bits)) {
                            t.ccs[insn.dest.reg] =
                                static_cast<std::uint8_t>(cc);
                            noteApplied(*ctx.fault,
                                        static_cast<std::uint32_t>(
                                            &insn - code.data()));
                        }
                    }
                    if (insn.dest2.kind == Operand::Kind::GpReg &&
                        insn.dest2.reg != kZeroReg) {
                        t.regs[insn.dest2.reg] = result;
                    }
                } else if (insn.dest.kind == Operand::Kind::GpReg &&
                           insn.dest.reg != kZeroReg) {
                    t.regs[insn.dest.reg] = result;
                    recorded_bits = static_cast<std::uint16_t>(
                        insn.op == Opcode::MulWide ||
                                insn.op == Opcode::MadWide
                            ? 2 * typeBits(insn.type)
                            : typeBits(insn.type));
                    if (is_fault_thread &&
                        isDestKind(ctx.fault->kind) &&
                        corruptDest(t.regs[insn.dest.reg], *ctx.fault,
                                    dyn_index, recorded_bits)) {
                        noteApplied(*ctx.fault,
                                    static_cast<std::uint32_t>(
                                        &insn - code.data()));
                    }
                }
                t.pc++;
                break;
              }
            }
        } else {
            // Guard failed: the instruction issues (counted in iCnt, as
            // in the PTXPlus trace model) but performs no writeback, no
            // branch, and no barrier arrival.
            t.pc++;
        }

        t.faultBits += recorded_bits;
        if (dyn_trace) {
            dyn_trace->push_back(
                {static_cast<std::uint32_t>(&insn - code.data()),
                 recorded_bits});
        }

        if (hit_barrier)
            return StopReason::Barrier;
        if (t.exited)
            return StopReason::Exited;
    }
}

/**
 * Advance one CTA under the cooperative barrier-phase scheduler until
 * it retires, faults, or reaches @p watermark executed instructions.
 * This is the scheduling loop that used to be inlined in run(); the
 * MachineState cursor makes it resumable -- stopping at a watermark and
 * calling again continues exactly where execution left off, and a
 * copied state can be continued independently later.
 */
CtaStepStatus
stepCtaImpl(MachineState &ms, CtaContext &ctx, const Program &prog,
            std::uint64_t watermark)
{
    while (true) {
        for (; ms.cursor < ms.threads.size(); ++ms.cursor) {
            ThreadState &t = ms.threads[ms.cursor];
            if (t.exited || t.atBarrier)
                continue;
            std::uint64_t max_steps = kNoWatermark;
            if (watermark != kNoWatermark) {
                if (ms.executedDynInstrs >= watermark)
                    return CtaStepStatus::Watermark;
                max_steps = watermark - ms.executedDynInstrs;
            }
            const std::uint64_t before = t.icnt;
            StopReason reason = runThread(t, prog, ctx, max_steps);
            ms.executedDynInstrs += t.icnt - before;
            switch (reason) {
              case StopReason::Exited:
                break;
              case StopReason::Barrier:
                t.atBarrier = true;
                break;
              case StopReason::Limit:
                // The cursor stays on this mid-slice thread; the next
                // stepCta call (or a resumed run) continues it.
                return CtaStepStatus::Watermark;
              case StopReason::Crashed:
                return CtaStepStatus::Crashed;
              case StopReason::Hung:
                return CtaStepStatus::Hung;
              case StopReason::Hazard:
                return CtaStepStatus::Hazard;
            }
        }

        // Phase complete: every thread has exited or arrived at the
        // barrier.  Retire the CTA once nobody is left, otherwise
        // release the barrier and start the next phase.
        bool all_exited = true;
        for (const auto &t : ms.threads)
            all_exited = all_exited && t.exited;
        if (all_exited)
            return CtaStepStatus::Retired;
        for (auto &t : ms.threads)
            t.atBarrier = false;
        ms.cursor = 0;
    }
}

} // namespace

Executor::Executor(const Program &program, LaunchConfig config)
    : program_(program), config_(std::move(config))
{
    program_.validate();
    FSP_ASSERT(config_.grid.count() > 0 && config_.block.count() > 0,
               "empty launch");
}

void
Executor::resetCtaState(MachineState &ms, std::uint64_t cta_linear) const
{
    FSP_ASSERT(cta_linear < config_.grid.count(), "CTA id outside grid");
    const Dim3 &block = config_.block;
    const std::uint64_t block_threads = block.count();

    ms.ctaLinear = cta_linear;
    ms.cursor = 0;
    ms.executedDynInstrs = 0;
    if (ms.smem.size() == config_.sharedBytes)
        ms.smem.clear();
    else
        ms.smem = SharedMemory(config_.sharedBytes);
    ms.threads.resize(block_threads);

    std::uint64_t tl = 0;
    for (std::uint32_t tz = 0; tz < block.z; ++tz) {
        for (std::uint32_t ty = 0; ty < block.y; ++ty) {
            for (std::uint32_t tx = 0; tx < block.x; ++tx, ++tl) {
                ThreadState &t = ms.threads[tl];
                t.reset();
                t.tidX = tx;
                t.tidY = ty;
                t.tidZ = tz;
                t.globalId = cta_linear * block_threads + tl;
            }
        }
    }
}

MachineState
Executor::initialCtaState(std::uint64_t cta_linear) const
{
    MachineState ms;
    resetCtaState(ms, cta_linear);
    return ms;
}

CtaStepStatus
Executor::stepCta(MachineState &ms, GlobalMemory &gmem,
                  std::uint64_t watermark, FaultPlan *fault,
                  const CtaSlice *slice, std::string *diagnostic) const
{
    const Dim3 &grid = config_.grid;
    const std::uint64_t lin = ms.ctaLinear;
    const std::uint64_t plane =
        static_cast<std::uint64_t>(grid.x) * grid.y;

    CtaContext ctx{gmem,
                   &ms.smem,
                   config_.params,
                   config_.block,
                   grid,
                   static_cast<std::uint32_t>(lin % grid.x),
                   static_cast<std::uint32_t>((lin / grid.x) % grid.y),
                   static_cast<std::uint32_t>(lin / plane),
                   config_.maxDynInstrPerThread
                       ? config_.maxDynInstrPerThread
                       : kDefaultBudget,
                   nullptr,
                   fault,
                   nullptr,
                   {},
                   slice ? slice->loadHazards : nullptr,
                   slice ? slice->storeHazards : nullptr,
                   nullptr,
                   nullptr};

    CtaStepStatus status = stepCtaImpl(ms, ctx, program_, watermark);
    if (diagnostic)
        *diagnostic = ctx.diagnostic;
    return status;
}

RunResult
Executor::run(GlobalMemory &gmem, const TraceOptions *opts,
              FaultPlan *fault, const CtaSlice *slice,
              const MachineState *resume) const
{
    RunResult result;
    if (fault) {
        fault->applied = false;
        fault->appliedStatic = kNoStaticIndex;
        if (fault->kind == FaultKind::GlobalMemLaunch) {
            // A fault that predates the kernel: flip the byte in the
            // initial image, once, before any CTA runs.  Models of
            // this kind declare themselves full-grid-only, so resume
            // and slicing never see it.
            std::uint64_t byte = 0;
            AccessError err = gmem.load(fault->addr, 1, byte);
            if (err == AccessError::None) {
                err = gmem.store(fault->addr, 1,
                                 byte ^ (fault->mask & 0xFF));
            }
            if (err != AccessError::None) {
                std::ostringstream os;
                os << "launch-time global-memory fault flip at "
                      "unmapped 0x"
                   << std::hex << fault->addr << std::dec;
                result.status = RunStatus::Crashed;
                result.diagnostic = os.str();
                noteRun(result);
                return result;
            }
            fault->applied = true;
        }
    }

    const Dim3 &grid = config_.grid;
    const std::uint64_t total_threads = config_.threadCount();

    if (opts && opts->perThreadProfiles)
        result.trace.profiles.resize(total_threads);

    const bool want_footprints = opts && opts->ctaFootprints;
    std::vector<Interval> fp_reads, fp_writes;
    if (want_footprints)
        result.trace.ctaFootprints.resize(grid.count());

    // CtaRange ids are sorted/unique; walk them alongside the linear
    // CTA enumeration so skipped CTAs cost one comparison each and the
    // executed CTAs see exactly the state (ids, smem, thread numbers)
    // they would in a full-grid run.
    const std::vector<std::uint64_t> *slice_ctas =
        slice ? &slice->range.ctas : nullptr;
    std::size_t slice_pos = 0;

    const std::uint64_t start_cta = resume ? resume->ctaLinear : 0;
    MachineState ms; // reused across CTAs to avoid reallocation

    CtaContext ctx{gmem,
                   nullptr,
                   config_.params,
                   config_.block,
                   grid,
                   0,
                   0,
                   0,
                   config_.maxDynInstrPerThread
                       ? config_.maxDynInstrPerThread
                       : kDefaultBudget,
                   opts,
                   fault,
                   &result.trace,
                   {},
                   slice ? slice->loadHazards : nullptr,
                   slice ? slice->storeHazards : nullptr,
                   nullptr,
                   nullptr};

    std::uint64_t cta_linear = 0;
    for (std::uint32_t cz = 0; cz < grid.z; ++cz) {
        for (std::uint32_t cy = 0; cy < grid.y; ++cy) {
            for (std::uint32_t cx = 0; cx < grid.x; ++cx, ++cta_linear) {
                if (slice_ctas) {
                    if (slice_pos >= slice_ctas->size())
                        continue; // no selected CTAs remain
                    if ((*slice_ctas)[slice_pos] != cta_linear)
                        continue;
                    ++slice_pos;
                }
                if (cta_linear < start_cta)
                    continue; // resume: prefix is baked into gmem
                result.executedCtas++;
                if (want_footprints) {
                    fp_reads.clear();
                    fp_writes.clear();
                    ctx.fpReads = &fp_reads;
                    ctx.fpWrites = &fp_writes;
                }
                ctx.ctaidX = cx;
                ctx.ctaidY = cy;
                ctx.ctaidZ = cz;

                if (resume && cta_linear == start_cta)
                    ms = *resume; // copy: the checkpoint stays pristine
                else
                    resetCtaState(ms, cta_linear);
                if (opts) {
                    for (auto &t : ms.threads) {
                        t.traced =
                            opts->traceThreads.count(t.globalId) > 0;
                    }
                }
                ctx.smem = &ms.smem;

                CtaStepStatus status =
                    stepCtaImpl(ms, ctx, program_, kNoWatermark);

                // Accumulate per-thread work whether the CTA retired or
                // aborted the launch (a faulting kernel dies; a hazard
                // makes the caller re-run full-grid).
                for (const auto &t : ms.threads) {
                    result.totalDynInstrs += t.icnt;
                    if (opts && opts->perThreadProfiles) {
                        auto &p = result.trace.profiles[t.globalId];
                        p.iCnt = t.icnt;
                        p.faultBits = t.faultBits;
                    }
                }
                if (status != CtaStepStatus::Retired) {
                    result.status =
                        status == CtaStepStatus::Crashed
                            ? RunStatus::Crashed
                            : (status == CtaStepStatus::Hung
                                   ? RunStatus::Hung
                                   : RunStatus::SliceHazard);
                    result.diagnostic = ctx.diagnostic;
                    noteRun(result);
                    return result;
                }
                if (want_footprints) {
                    auto &fp = result.trace.ctaFootprints[cta_linear];
                    fp.reads = IntervalSet::fromUnsorted(fp_reads);
                    fp.writes = IntervalSet::fromUnsorted(fp_writes);
                }
            }
        }
    }

    noteRun(result);
    return result;
}

} // namespace fsp::sim
