/**
 * @file
 * The functional SIMT executor: scheduler, decoded dispatch loop and
 * shared evaluation helpers.
 *
 * Execution model: CTAs run sequentially (they are independent up to
 * global memory, as in the CUDA model where no inter-CTA ordering may be
 * assumed).  Within a CTA, threads run cooperatively: each thread
 * executes until it exits or reaches a bar.sync; when every live thread
 * has arrived, the barrier releases.  This is functionally equivalent to
 * warp-synchronous execution for barrier-correct programs while keeping
 * the interpreter simple and fast.
 *
 * The hot path is runThreadDecoded: a dense switch over pre-decoded
 * DecodedOps (compiled to a jump table) with the thread's pc/icnt/
 * faultBits cached in locals and its register slab addressed directly.
 * The original per-step interpreter lives on in executor_ref.cc as the
 * reference engine; both share every arithmetic and fault-hook helper
 * through exec_impl.hh, and the differential suite holds them
 * bit-identical.
 */

#include "sim/executor.hh"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "sim/exec_impl.hh"
#include "util/logging.hh"

namespace fsp::sim {

std::string
runStatusName(RunStatus status)
{
    switch (status) {
      case RunStatus::Completed: return "completed";
      case RunStatus::Crashed: return "crashed";
      case RunStatus::Hung: return "hung";
      case RunStatus::SliceHazard: return "slice-hazard";
    }
    panic("unreachable RunStatus");
}

CtaRange
CtaRange::contiguous(std::uint64_t begin, std::uint64_t end)
{
    CtaRange range;
    for (std::uint64_t cta = begin; cta < end; ++cta)
        range.ctas.push_back(cta);
    return range;
}

CtaRange
CtaRange::of(std::vector<std::uint64_t> ids)
{
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return {std::move(ids)};
}

namespace exec {

namespace {

/** Float->int conversion with CUDA-like saturation and NaN->0. */
inline std::int64_t
floatToInt(double v, unsigned bits, bool is_signed)
{
    if (std::isnan(v))
        return 0;
    double lo, hi;
    if (is_signed) {
        lo = -std::ldexp(1.0, static_cast<int>(bits) - 1);
        hi = std::ldexp(1.0, static_cast<int>(bits) - 1) - 1.0;
    } else {
        lo = 0.0;
        hi = std::ldexp(1.0, static_cast<int>(bits)) - 1.0;
    }
    if (v < lo)
        v = lo;
    if (v > hi)
        v = hi;
    return static_cast<std::int64_t>(std::trunc(v));
}

/**
 * Fused-multiply-add candidates live in one place so the decoded fast
 * path and evalAluOp compile the *same expression* -- whatever the
 * compiler's floating-point contraction policy, both engines agree.
 */
inline std::uint64_t
madF32(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    return fromF32(asF32(a) * asF32(b) + asF32(c));
}

inline std::uint64_t
madF64(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    return fromF64(asF64(a) * asF64(b) + asF64(c));
}

} // namespace

std::uint64_t
evalAluOp(Opcode op, DataType t, std::uint64_t a, std::uint64_t b,
          std::uint64_t c)
{
    const unsigned bits = typeBits(t);

    if (t == DataType::F32) {
        float fa = asF32(a), fb = asF32(b);
        switch (op) {
          case Opcode::Mov: return fromF32(fa);
          case Opcode::Add: return fromF32(fa + fb);
          case Opcode::Sub: return fromF32(fa - fb);
          case Opcode::Mul: return fromF32(fa * fb);
          case Opcode::Mad: return madF32(a, b, c);
          case Opcode::Div: return fromF32(fa / fb);
          case Opcode::Min: return fromF32(std::fmin(fa, fb));
          case Opcode::Max: return fromF32(std::fmax(fa, fb));
          case Opcode::Neg: return fromF32(-fa);
          case Opcode::Abs: return fromF32(std::fabs(fa));
          case Opcode::Rcp: return fromF32(1.0f / fa);
          case Opcode::Sqrt: return fromF32(std::sqrt(fa));
          case Opcode::Rsqrt: return fromF32(1.0f / std::sqrt(fa));
          case Opcode::Ex2: return fromF32(std::exp2(fa));
          case Opcode::Lg2: return fromF32(std::log2(fa));
          case Opcode::Rem: return fromF32(std::fmod(fa, fb));
          default: break;
        }
        panic("opcode ", opcodeName(op), " not valid for f32");
    }

    if (t == DataType::F64) {
        double fa = asF64(a), fb = asF64(b);
        switch (op) {
          case Opcode::Mov: return fromF64(fa);
          case Opcode::Add: return fromF64(fa + fb);
          case Opcode::Sub: return fromF64(fa - fb);
          case Opcode::Mul: return fromF64(fa * fb);
          case Opcode::Mad: return madF64(a, b, c);
          case Opcode::Div: return fromF64(fa / fb);
          case Opcode::Min: return fromF64(std::fmin(fa, fb));
          case Opcode::Max: return fromF64(std::fmax(fa, fb));
          case Opcode::Neg: return fromF64(-fa);
          case Opcode::Abs: return fromF64(std::fabs(fa));
          case Opcode::Rcp: return fromF64(1.0 / fa);
          case Opcode::Sqrt: return fromF64(std::sqrt(fa));
          case Opcode::Rsqrt: return fromF64(1.0 / std::sqrt(fa));
          case Opcode::Rem: return fromF64(std::fmod(fa, fb));
          default: break;
        }
        panic("opcode ", opcodeName(op), " not valid for f64");
    }

    const bool sgn = isSignedType(t);
    switch (op) {
      case Opcode::Mov:
        return truncVal(a, bits);
      case Opcode::Add:
        return truncVal(a + b, bits);
      case Opcode::Sub:
        return truncVal(a - b, bits);
      case Opcode::Mul:
        return truncVal(a * b, bits);
      case Opcode::Mad:
        return truncVal(a * b + c, bits);
      case Opcode::MulWide:
      case Opcode::MadWide: {
        std::uint64_t prod;
        if (sgn) {
            prod = static_cast<std::uint64_t>(signExt(a, bits) *
                                              signExt(b, bits));
        } else {
            prod = truncVal(a, bits) * truncVal(b, bits);
        }
        std::uint64_t acc = op == Opcode::MadWide ? prod + c : prod;
        return truncVal(acc, 2 * bits);
      }
      case Opcode::Div: {
        if (truncVal(b, bits) == 0)
            return truncVal(~std::uint64_t{0}, bits);
        if (sgn) {
            std::int64_t sa = signExt(a, bits), sb = signExt(b, bits);
            // Avoid the INT_MIN / -1 trap: hardware wraps.
            if (sb == -1)
                return truncVal(static_cast<std::uint64_t>(-sa), bits);
            return truncVal(static_cast<std::uint64_t>(sa / sb), bits);
        }
        return truncVal(truncVal(a, bits) / truncVal(b, bits), bits);
      }
      case Opcode::Rem: {
        if (truncVal(b, bits) == 0)
            return truncVal(a, bits);
        if (sgn) {
            std::int64_t sa = signExt(a, bits), sb = signExt(b, bits);
            if (sb == -1)
                return 0;
            return truncVal(static_cast<std::uint64_t>(sa % sb), bits);
        }
        return truncVal(a, bits) % truncVal(b, bits);
      }
      case Opcode::Min:
        if (sgn) {
            return truncVal(static_cast<std::uint64_t>(std::min(
                                signExt(a, bits), signExt(b, bits))),
                            bits);
        }
        return std::min(truncVal(a, bits), truncVal(b, bits));
      case Opcode::Max:
        if (sgn) {
            return truncVal(static_cast<std::uint64_t>(std::max(
                                signExt(a, bits), signExt(b, bits))),
                            bits);
        }
        return std::max(truncVal(a, bits), truncVal(b, bits));
      case Opcode::Neg:
        return truncVal(0 - a, bits);
      case Opcode::Abs: {
        std::int64_t sa = signExt(a, bits);
        return truncVal(static_cast<std::uint64_t>(sa < 0 ? -sa : sa),
                        bits);
      }
      case Opcode::And:
        return truncVal(a & b, bits);
      case Opcode::Or:
        return truncVal(a | b, bits);
      case Opcode::Xor:
        return truncVal(a ^ b, bits);
      case Opcode::Not:
        return truncVal(~a, bits);
      case Opcode::Shl: {
        std::uint64_t s = truncVal(b, bits);
        if (s >= bits)
            return 0;
        return truncVal(truncVal(a, bits) << s, bits);
      }
      case Opcode::Shr: {
        std::uint64_t s = truncVal(b, bits);
        if (sgn) {
            std::int64_t sa = signExt(a, bits);
            if (s >= bits)
                return truncVal(static_cast<std::uint64_t>(sa < 0 ? -1 : 0),
                                bits);
            return truncVal(static_cast<std::uint64_t>(sa >>
                                                       static_cast<int>(s)),
                            bits);
        }
        if (s >= bits)
            return 0;
        return truncVal(a, bits) >> s;
      }
      default:
        break;
    }
    panic("opcode ", opcodeName(op), " not valid for integer types");
}

std::uint64_t
evalCvtTyped(DataType st, DataType dt, std::uint64_t raw)
{
    if (isFloatType(st)) {
        double v = st == DataType::F32 ? asF32(raw) : asF64(raw);
        if (dt == DataType::F32)
            return fromF32(static_cast<float>(v));
        if (dt == DataType::F64)
            return fromF64(v);
        return truncVal(static_cast<std::uint64_t>(floatToInt(
                            v, typeBits(dt), isSignedType(dt))),
                        typeBits(dt));
    }

    // Integer source.
    std::int64_t sv = isSignedType(st) ? signExt(raw, typeBits(st))
                                       : static_cast<std::int64_t>(
                                             truncVal(raw, typeBits(st)));
    if (dt == DataType::F32) {
        return fromF32(isSignedType(st)
                           ? static_cast<float>(sv)
                           : static_cast<float>(
                                 static_cast<std::uint64_t>(sv)));
    }
    if (dt == DataType::F64) {
        return fromF64(isSignedType(st)
                           ? static_cast<double>(sv)
                           : static_cast<double>(
                                 static_cast<std::uint64_t>(sv)));
    }
    return truncVal(static_cast<std::uint64_t>(sv), typeBits(dt));
}

bool
applyReachFault(CtaContext &ctx, std::uint64_t &pc, std::uint8_t *ccs,
                std::uint64_t global_id, std::size_t code_size,
                StopReason &halt)
{
    FaultPlan &fault = *ctx.fault;
    const std::uint32_t static_index =
        pc < code_size ? static_cast<std::uint32_t>(pc) : kNoStaticIndex;
    switch (fault.kind) {
      case FaultKind::PredState: {
        const std::uint8_t mask =
            static_cast<std::uint8_t>(fault.mask & 0xF);
        if (mask == 0)
            return false;
        if (ctx.protection != nullptr &&
            ctx.protection->covers(fault.thread, fault.dynIndex,
                                   fault.kind)) {
            noteDetected(fault, static_index);
            return false;
        }
        ccs[fault.reg % kNumPredRegs] ^= mask;
        noteApplied(fault, static_index);
        return false;
      }

      case FaultKind::PcState:
        if (ctx.protection != nullptr &&
            ctx.protection->covers(fault.thread, fault.dynIndex,
                                   fault.kind)) {
            noteDetected(fault, static_index);
            return false;
        }
        // Record the instruction the thread was about to execute; a
        // flipped pc past the code makes the thread exit (implicit
        // wild-jump exit), which the loop's bounds check handles.
        noteApplied(fault, static_index);
        pc ^= fault.mask;
        return false;

      case FaultKind::SharedMem: {
        std::uint64_t byte = 0;
        AccessError err = ctx.smem->load(fault.addr, 1, byte);
        if (err == AccessError::None) {
            err = ctx.smem->store(fault.addr, 1,
                                  byte ^ (fault.mask & 0xFF));
        }
        if (err != AccessError::None) {
            std::ostringstream os;
            os << "thread " << global_id
               << " shared-memory fault flip at unmapped 0x" << std::hex
               << fault.addr << std::dec;
            ctx.diagnostic = os.str();
            halt = StopReason::Crashed;
            return true;
        }
        noteApplied(fault, static_index);
        return false;
      }

      case FaultKind::GlobalMem: {
        // The flip is a read-modify-write of one global byte by the
        // faulty thread; in sliced runs it must honour the same hazard
        // discipline as an instruction's load+store so the sliced
        // classification stays exact.
        const std::uint64_t begin = fault.addr, end = fault.addr + 1;
        if ((ctx.loadHazards &&
             ctx.loadHazards->intersectsRange(begin, end)) ||
            (ctx.storeHazards &&
             ctx.storeHazards->intersectsRange(begin, end))) {
            std::ostringstream os;
            os << "thread " << global_id
               << " sliced-run fault-flip hazard at global 0x"
               << std::hex << fault.addr << std::dec;
            ctx.diagnostic = os.str();
            halt = StopReason::Hazard;
            return true;
        }
        std::uint64_t byte = 0;
        AccessError err = ctx.gmem.load(fault.addr, 1, byte);
        if (err == AccessError::None) {
            err = ctx.gmem.store(fault.addr, 1,
                                 byte ^ (fault.mask & 0xFF));
        }
        if (err != AccessError::None) {
            std::ostringstream os;
            os << "thread " << global_id
               << " global-memory fault flip at unmapped 0x" << std::hex
               << fault.addr << std::dec;
            ctx.diagnostic = os.str();
            halt = StopReason::Crashed;
            return true;
        }
        noteApplied(fault, static_index);
        return false;
      }

      default:
        return false;
    }
}

namespace {

/** Resolve one pre-decoded source operand. */
[[gnu::always_inline]] inline std::uint64_t
readX(const XSrc &s, const std::uint64_t *R, const std::uint8_t *P,
      const CtaContext &ctx, std::uint32_t tid_x, std::uint32_t tid_y,
      std::uint32_t tid_z)
{
    // Plain registers and immediates dominate every real operand mix;
    // test for them with well-predicted conditional branches before
    // falling back to the jump table for the exotic kinds.
    if (s.k == XSrc::K::Reg) [[likely]]
        return R[s.reg];
    if (s.k == XSrc::K::Imm)
        return s.imm;
    switch (s.k) {
      case XSrc::K::Zero: return 0;
      case XSrc::K::Reg: return R[s.reg];
      case XSrc::K::RegLo: return R[s.reg] & 0xFFFF;
      case XSrc::K::RegHi: return (R[s.reg] >> 16) & 0xFFFF;
      case XSrc::K::Imm: return s.imm;
      case XSrc::K::Pred: return (P[s.reg] & CcZero) ? 0 : 1;
      case XSrc::K::TidX: return tid_x;
      case XSrc::K::TidY: return tid_y;
      case XSrc::K::TidZ: return tid_z;
      case XSrc::K::CtaidX: return ctx.ctaidX;
      case XSrc::K::CtaidY: return ctx.ctaidY;
      case XSrc::K::CtaidZ: return ctx.ctaidZ;
      case XSrc::K::RegComplex: {
        std::uint64_t raw = R[s.reg];
        if (s.half == static_cast<std::uint8_t>(HalfSel::Lo))
            raw &= 0xFFFF;
        else if (s.half == static_cast<std::uint8_t>(HalfSel::Hi))
            raw = (raw >> 16) & 0xFFFF;
        const DataType t = static_cast<DataType>(s.negType);
        if (t == DataType::F32)
            return fromF32(-asF32(raw));
        if (t == DataType::F64)
            return fromF64(-asF64(raw));
        return truncVal(0 - raw, typeBits(t));
      }
    }
    panic("unreachable XSrc::K");
}

/**
 * Threaded-dispatch macros for runThreadDecodedImpl.  Each handler
 * ends by expanding the epilogue + fetch + indirect jump inline, so
 * every opcode owns its own branch-prediction site (classic threaded
 * interpretation): the predictor learns (this op -> next op) pairs
 * instead of sharing one over-subscribed jump.  Computed goto is a
 * GNU extension, used unconditionally like the rest of the tree's
 * GNU attributes; the reference engine keeps a portable switch.
 *
 * FSP_DISPATCH: the per-instruction prologue -- reach-fault hook
 * (compiled out unless kFault), program-end check, the fused
 * step-limit/hang-budget check, fetch, guard evaluation, dispatch.
 * FSP_EPI(REC): the per-instruction epilogue -- fault-bits
 * accumulation and the optional trace push -- followed by the
 * prologue of the next instruction.
 */
#define FSP_DISPATCH()                                                  \
    do {                                                                \
        if constexpr (kFault) {                                         \
            if (!ctx.fault->applied && icnt == ctx.fault->dynIndex) {   \
                StopReason halt;                                        \
                if (applyReachFault(ctx, pc, P, global_id, code_size,   \
                                    halt)) {                            \
                    ret = halt;                                         \
                    goto done;                                          \
                }                                                       \
            }                                                           \
        }                                                               \
        if (pc >= code_size)                                            \
            goto ran_off_end;                                           \
        if (icnt >= stop_icnt) [[unlikely]]                             \
            goto hit_stop;                                              \
        op = code + pc;                                                 \
        dyn_index = icnt++;                                             \
        if (!guardCcPasses(op->guardCond, op->guardPred, P))            \
            [[unlikely]]                                                \
            goto guard_failed;                                          \
        goto *kJump[static_cast<unsigned>(op->x)];                      \
    } while (0)

#define FSP_EPI_AT(REC, EXEC)                                           \
    do {                                                                \
        fbits += (REC);                                                 \
        if constexpr (kTraced)                                          \
            dyn_trace->push_back(makeDynRecord(*op, (REC), (EXEC),      \
                                               record_values, R, P));   \
        FSP_DISPATCH();                                                 \
    } while (0)

#define FSP_EPI(REC) FSP_EPI_AT(REC, true)

/**
 * Writeback of @p VALUE through the op's destination -- a GPR value
 * or a 4-bit CC register (with an optional data side-effect through
 * dest2, PTXPlus "$p0|$r1" style) -- then the epilogue.
 */
#define FSP_WB_EPI(VALUE)                                               \
    do {                                                                \
        const std::uint64_t wb_value_ = (VALUE);                        \
        std::uint16_t recorded = 0;                                     \
        if (op->destKind == DecodedOp::Dest::Gp) [[likely]] {           \
            R[op->destReg] = wb_value_;                                 \
            recorded = op->recordedBits;                                \
            if (kFault) {                                               \
                applyDestFault(R[op->destReg], ctx, dyn_index,          \
                               recorded, op->staticIndex);              \
            }                                                           \
        } else if (op->destKind == DecodedOp::Dest::Pred) {             \
            P[op->destReg] = ccFromValue(                               \
                wb_value_, static_cast<DataType>(op->ccType));          \
            recorded = op->recordedBits;                                \
            if (kFault) {                                               \
                std::uint64_t cc = P[op->destReg];                      \
                if (applyDestFault(cc, ctx, dyn_index, recorded,        \
                                   op->staticIndex)) {                  \
                    P[op->destReg] = static_cast<std::uint8_t>(cc);     \
                }                                                       \
            }                                                           \
            if (op->dest2Reg != kNoDenseReg)                            \
                R[op->dest2Reg] = wb_value_;                            \
        }                                                               \
        pc++;                                                           \
        FSP_EPI(recorded);                                              \
    } while (0)

/**
 * Build the trace record of one issued instruction.  Under a
 * recordValues run the record additionally carries the guard outcome
 * and -- for instructions that performed a destination writeback --
 * the post-writeback register content, read back through the decoded
 * op's dest descriptor (the reference engine records the identical
 * value from its own writeback sites).
 */
inline DynRecord
makeDynRecord(const DecodedOp &op, std::uint16_t recordedBits,
              bool executed, bool recordValues, const std::uint64_t *R,
              const std::uint8_t *P)
{
    DynRecord record{op.staticIndex, recordedBits};
    if (recordValues) {
        record.flags = executed ? DynRecord::kExecuted : 0;
        if (executed && recordedBits != 0) {
            const std::uint64_t value =
                op.destKind == DecodedOp::Dest::Pred ? P[op.destReg]
                                                     : R[op.destReg];
            record.valueLo = static_cast<std::uint32_t>(value);
            record.valueHi = static_cast<std::uint32_t>(value >> 32);
        }
    }
    return record;
}

/**
 * The interpreter loop, specialised at compile time on the two rare
 * per-thread conditions: @p kFault (this thread carries the fault
 * plan) and @p kTraced (this thread records a dynamic trace).  All
 * but one thread per injection run -- and every thread of a golden
 * run -- execute the <false, false> instantiation, where the
 * fault-reach check, the corrupt-destination probes, and the trace
 * push compile out of the per-instruction path entirely.
 */
template <bool kFault, bool kTraced>
StopReason
runThreadDecodedImpl(MachineState &ms, std::uint32_t tl,
                     CtaContext &ctx, std::uint64_t max_steps,
                     [[maybe_unused]] std::vector<DynRecord> *dyn_trace)
{
    // Label-address dispatch table, indexed by the XOp enumerator
    // value: entry order MUST match the XOp declaration order in
    // decoded.hh (the static_assert pins the count).
    static const void *const kJump[] = {
        &&x_Nop,      &&x_Exit,     &&x_Bra,      &&x_Bar,
        &&x_LdGlobal, &&x_LdShared, &&x_LdParam,  &&x_StGlobal,
        &&x_StShared, &&x_MovI,     &&x_AddI,     &&x_SubI,
        &&x_MulI,     &&x_MadI,     &&x_MulWideI, &&x_MadWideI,
        &&x_MinI,     &&x_MaxI,     &&x_NegI,     &&x_AbsI,
        &&x_AndI,     &&x_OrI,      &&x_XorI,     &&x_NotI,
        &&x_ShlI,     &&x_ShrI,     &&x_AddF32,   &&x_SubF32,
        &&x_MulF32,   &&x_MadF32,   &&x_MinF32,   &&x_MaxF32,
        &&x_NegF32,   &&x_AbsF32,   &&x_AddF64,   &&x_SubF64,
        &&x_MulF64,   &&x_MadF64,   &&x_MinF64,   &&x_MaxF64,
        &&x_NegF64,   &&x_AbsF64,   &&x_SetCmp,   &&x_SelpV,
        &&x_CvtV,     &&x_AluSlow,
    };
    static_assert(static_cast<unsigned>(XOp::AluSlow) + 1 ==
                      sizeof(kJump) / sizeof(kJump[0]),
                  "dispatch table must cover every XOp");

    const DecodedOp *code = ctx.dec->code().data();
    const std::size_t code_size = ctx.dec->size();

    const std::uint64_t global_id =
        ms.ctaLinear * ctx.blockThreads + tl;
    const std::uint32_t bx = ctx.block.x;
    const std::uint32_t tid_x = tl % bx;
    const std::uint32_t tid_y = (tl / bx) % ctx.block.y;
    const std::uint32_t tid_z = tl / (bx * ctx.block.y);

    // Hot per-thread scalars live in locals for the whole slice; every
    // exit path below funnels through `done` to write them back.
    std::uint64_t *R = ms.regs(tl);
    std::uint8_t *P = ms.ccs(tl);
    [[maybe_unused]] const bool record_values =
        kTraced && ctx.opts != nullptr && ctx.opts->recordValues;
    std::uint64_t pc = ms.pc(tl);
    std::uint64_t icnt = ms.icnt(tl);
    std::uint64_t fbits = ms.faultBits(tl);
    StopReason ret;

    // Fold the slice-step ceiling and the hang budget into a single
    // per-iteration compare: stop at min(icnt0 + max_steps, budget)
    // and disambiguate Limit vs Hung only when actually stopping
    // (Limit wins ties, matching the historical check order).
    const std::uint64_t icnt0 = icnt;
    std::uint64_t stop_icnt = icnt0 + max_steps;
    if (stop_icnt < icnt0) // saturate on overflow
        stop_icnt = ~std::uint64_t{0};
    if (ctx.budget < stop_icnt)
        stop_icnt = ctx.budget;

    // Dispatch state and the carriers for the cold memory-fault
    // diagnostics below the handlers.
    const DecodedOp *op = code;
    std::uint64_t dyn_index = 0;
    bool mem_is_ld = false;
    std::uint64_t mem_addr = 0;
    AccessError mem_err = AccessError::None;
    const DecodedOp *mem_op = nullptr;

    auto rd = [&](unsigned k) __attribute__((always_inline)) {
        return readX(op->src[k], R, P, ctx, tid_x, tid_y, tid_z);
    };

    FSP_DISPATCH(); // enter the threaded loop

  guard_failed:
    // Guard failed: the instruction issues (counted in iCnt, as in
    // the PTXPlus trace model) but performs no writeback, no branch,
    // and no barrier arrival.
    pc++;
    FSP_EPI_AT(0, false);

  x_Nop:
    pc++;
    FSP_EPI(0);

  x_Exit:
    if constexpr (kTraced)
        dyn_trace->push_back(
            makeDynRecord(*op, 0, true, record_values, R, P));
    ms.setExited(tl);
    ret = StopReason::Exited;
    goto done;

  x_Bra:
    pc = op->target;
    FSP_EPI(0);

  x_Bar:
    pc++;
    if (kFault && ctx.fault->kind == FaultKind::BarrierSkip &&
        !ctx.fault->applied && dyn_index >= ctx.fault->dynIndex) {
        // Corrupted barrier bookkeeping: the thread's arrival is
        // lost, so it runs ahead into the next phase while the
        // others rendezvous without it.
        noteApplied(*ctx.fault, op->staticIndex);
        FSP_EPI(0);
    }
    if constexpr (kTraced)
        dyn_trace->push_back(
            makeDynRecord(*op, 0, true, record_values, R, P));
    ret = StopReason::Barrier;
    goto done;

    // The five memory forms each run straight-line: only globals pay
    // the sliced-run hazard probe and footprint append.  Mem
    // addressing is shared: addr = 32-bit base reg (or 0) + offset.
    // Error and hazard diagnostics funnel through the cold labels
    // below the handlers.
  x_LdGlobal: {
    const std::uint64_t addr =
        (op->memBase != kNoDenseReg ? truncVal(R[op->memBase], 32)
                                    : 0) +
        static_cast<std::uint64_t>(op->memOffset);
    if (ctx.loadHazards &&
        ctx.loadHazards->intersectsRange(addr, addr + op->width))
        [[unlikely]] {
        mem_is_ld = true;
        mem_addr = addr;
        mem_op = op;
        goto mem_hazard;
    }
    std::uint64_t value = 0;
    const AccessError err = ctx.gmem.load(addr, op->width, value);
    if (err != AccessError::None) [[unlikely]] {
        mem_is_ld = true;
        mem_addr = addr;
        mem_err = err;
        mem_op = op;
        goto mem_crash;
    }
    if (ctx.fpReads)
        ctx.fpReads->push_back({addr, addr + op->width});
    // Sign-extend signed loads into the register.
    if (op->ldSigned)
        value = static_cast<std::uint64_t>(signExt(value, op->bits));
    std::uint16_t recorded = 0;
    if (op->destKind == DecodedOp::Dest::Gp) {
        R[op->destReg] = value;
        recorded = op->recordedBits;
        if (kFault) {
            applyDestFault(R[op->destReg], ctx, dyn_index, recorded,
                           op->staticIndex);
        }
    }
    pc++;
    FSP_EPI(recorded);
  }

  x_LdShared:
  x_LdParam: {
    const std::uint64_t addr =
        (op->memBase != kNoDenseReg ? truncVal(R[op->memBase], 32)
                                    : 0) +
        static_cast<std::uint64_t>(op->memOffset);
    std::uint64_t value = 0;
    const AccessError err =
        op->x == XOp::LdShared
            ? ctx.smem->load(addr, op->width, value)
            : ctx.params.load(addr, op->width, value);
    if (err != AccessError::None) [[unlikely]] {
        mem_is_ld = true;
        mem_addr = addr;
        mem_err = err;
        mem_op = op;
        goto mem_crash;
    }
    if (op->ldSigned)
        value = static_cast<std::uint64_t>(signExt(value, op->bits));
    std::uint16_t recorded = 0;
    if (op->destKind == DecodedOp::Dest::Gp) {
        R[op->destReg] = value;
        recorded = op->recordedBits;
        if (kFault) {
            applyDestFault(R[op->destReg], ctx, dyn_index, recorded,
                           op->staticIndex);
        }
    }
    pc++;
    FSP_EPI(recorded);
  }

  x_StGlobal: {
    const std::uint64_t addr =
        (op->memBase != kNoDenseReg ? truncVal(R[op->memBase], 32)
                                    : 0) +
        static_cast<std::uint64_t>(op->memOffset);
    if (ctx.storeHazards &&
        ctx.storeHazards->intersectsRange(addr, addr + op->width))
        [[unlikely]] {
        mem_is_ld = false;
        mem_addr = addr;
        mem_op = op;
        goto mem_hazard;
    }
    const std::uint64_t value = truncVal(rd(1), op->bits);
    const AccessError err = ctx.gmem.store(addr, op->width, value);
    if (err != AccessError::None) [[unlikely]] {
        mem_is_ld = false;
        mem_addr = addr;
        mem_err = err;
        mem_op = op;
        goto mem_crash;
    }
    if (ctx.fpWrites)
        ctx.fpWrites->push_back({addr, addr + op->width});
    pc++;
    FSP_EPI(0);
  }

  x_StShared: {
    const std::uint64_t addr =
        (op->memBase != kNoDenseReg ? truncVal(R[op->memBase], 32)
                                    : 0) +
        static_cast<std::uint64_t>(op->memOffset);
    const std::uint64_t value = truncVal(rd(1), op->bits);
    const AccessError err = ctx.smem->store(addr, op->width, value);
    if (err != AccessError::None) [[unlikely]] {
        mem_is_ld = false;
        mem_addr = addr;
        mem_err = err;
        mem_op = op;
        goto mem_crash;
    }
    pc++;
    FSP_EPI(0);
  }

  x_MovI:
    FSP_WB_EPI(rd(0) & op->mask);
  x_AddI:
    FSP_WB_EPI((rd(0) + rd(1)) & op->mask);
  x_SubI:
    FSP_WB_EPI((rd(0) - rd(1)) & op->mask);
  x_MulI:
    FSP_WB_EPI((rd(0) * rd(1)) & op->mask);
  x_MadI:
    FSP_WB_EPI((rd(0) * rd(1) + rd(2)) & op->mask);

  x_MulWideI:
  x_MadWideI: {
    const std::uint64_t a = rd(0), b = rd(1);
    std::uint64_t prod;
    if (op->sgn) {
        prod = static_cast<std::uint64_t>(signExt(a, op->bits) *
                                          signExt(b, op->bits));
    } else {
        prod = truncVal(a, op->bits) * truncVal(b, op->bits);
    }
    const std::uint64_t acc =
        op->x == XOp::MadWideI ? prod + rd(2) : prod;
    FSP_WB_EPI(truncVal(acc, 2 * op->bits));
  }

  x_MinI: {
    const std::uint64_t a = rd(0), b = rd(1);
    FSP_WB_EPI(op->sgn
                   ? truncVal(static_cast<std::uint64_t>(std::min(
                                  signExt(a, op->bits),
                                  signExt(b, op->bits))),
                              op->bits)
                   : std::min(truncVal(a, op->bits),
                              truncVal(b, op->bits)));
  }
  x_MaxI: {
    const std::uint64_t a = rd(0), b = rd(1);
    FSP_WB_EPI(op->sgn
                   ? truncVal(static_cast<std::uint64_t>(std::max(
                                  signExt(a, op->bits),
                                  signExt(b, op->bits))),
                              op->bits)
                   : std::max(truncVal(a, op->bits),
                              truncVal(b, op->bits)));
  }
  x_NegI:
    FSP_WB_EPI(truncVal(0 - rd(0), op->bits));
  x_AbsI: {
    const std::int64_t sa = signExt(rd(0), op->bits);
    FSP_WB_EPI(truncVal(static_cast<std::uint64_t>(sa < 0 ? -sa : sa),
                        op->bits));
  }
  x_AndI:
    FSP_WB_EPI((rd(0) & rd(1)) & op->mask);
  x_OrI:
    FSP_WB_EPI((rd(0) | rd(1)) & op->mask);
  x_XorI:
    FSP_WB_EPI((rd(0) ^ rd(1)) & op->mask);
  x_NotI:
    FSP_WB_EPI((~rd(0)) & op->mask);
  x_ShlI: {
    const std::uint64_t s = truncVal(rd(1), op->bits);
    FSP_WB_EPI(s >= op->bits
                   ? 0
                   : truncVal(truncVal(rd(0), op->bits) << s,
                              op->bits));
  }
  x_ShrI: {
    const std::uint64_t a = rd(0);
    const std::uint64_t s = truncVal(rd(1), op->bits);
    std::uint64_t result;
    if (op->sgn) {
        const std::int64_t sa = signExt(a, op->bits);
        result = s >= op->bits
                     ? truncVal(static_cast<std::uint64_t>(
                                    sa < 0 ? -1 : 0),
                                op->bits)
                     : truncVal(static_cast<std::uint64_t>(
                                    sa >> static_cast<int>(s)),
                                op->bits);
    } else {
        result = s >= op->bits ? 0 : truncVal(a, op->bits) >> s;
    }
    FSP_WB_EPI(result);
  }

  x_AddF32:
    FSP_WB_EPI(fromF32(asF32(rd(0)) + asF32(rd(1))));
  x_SubF32:
    FSP_WB_EPI(fromF32(asF32(rd(0)) - asF32(rd(1))));
  x_MulF32:
    FSP_WB_EPI(fromF32(asF32(rd(0)) * asF32(rd(1))));
  x_MadF32:
    FSP_WB_EPI(madF32(rd(0), rd(1), rd(2)));
  x_MinF32:
    FSP_WB_EPI(fromF32(std::fmin(asF32(rd(0)), asF32(rd(1)))));
  x_MaxF32:
    FSP_WB_EPI(fromF32(std::fmax(asF32(rd(0)), asF32(rd(1)))));
  x_NegF32:
    FSP_WB_EPI(fromF32(-asF32(rd(0))));
  x_AbsF32:
    FSP_WB_EPI(fromF32(std::fabs(asF32(rd(0)))));

  x_AddF64:
    FSP_WB_EPI(fromF64(asF64(rd(0)) + asF64(rd(1))));
  x_SubF64:
    FSP_WB_EPI(fromF64(asF64(rd(0)) - asF64(rd(1))));
  x_MulF64:
    FSP_WB_EPI(fromF64(asF64(rd(0)) * asF64(rd(1))));
  x_MadF64:
    FSP_WB_EPI(madF64(rd(0), rd(1), rd(2)));
  x_MinF64:
    FSP_WB_EPI(fromF64(std::fmin(asF64(rd(0)), asF64(rd(1)))));
  x_MaxF64:
    FSP_WB_EPI(fromF64(std::fmax(asF64(rd(0)), asF64(rd(1)))));
  x_NegF64:
    FSP_WB_EPI(fromF64(-asF64(rd(0))));
  x_AbsF64:
    FSP_WB_EPI(fromF64(std::fabs(asF64(rd(0)))));

  x_SetCmp: {
    const bool r =
        compareValues(static_cast<CmpOp>(op->cmp), rd(0), rd(1),
                      static_cast<DataType>(op->stype));
    const unsigned dbits =
        static_cast<DataType>(op->dtype) == DataType::Pred ? 32
                                                           : op->bits;
    FSP_WB_EPI(r ? truncVal(~std::uint64_t{0}, dbits) : 0);
  }

  x_SelpV: {
    const std::uint64_t a = rd(0), b = rd(1);
    FSP_WB_EPI(rd(2) ? truncVal(a, op->bits) : truncVal(b, op->bits));
  }

  x_CvtV:
    FSP_WB_EPI(evalCvtTyped(static_cast<DataType>(op->stype),
                            static_cast<DataType>(op->dtype), rd(0)));

  x_AluSlow:
    FSP_WB_EPI(evalAluOp(op->orig->op, op->orig->type, rd(0), rd(1),
                         rd(2)));

  ran_off_end:
    ms.setExited(tl);
    ret = StopReason::Exited;
    goto done;

  hit_stop:
    if (icnt - icnt0 >= max_steps) {
        ret = StopReason::Limit;
        goto done;
    }
    {
        std::ostringstream os;
        os << "thread " << global_id << " exceeded budget of "
           << ctx.budget << " dynamic instructions";
        ctx.diagnostic = os.str();
        ret = StopReason::Hung;
        goto done;
    }

    // Cold diagnostics for the memory handlers above; pulled out of
    // the hot path, which carries only the compare-and-goto.
  mem_hazard:
    {
        // Sliced-run escape: an access into a byte range other CTAs
        // touch means this CTA's isolated execution could diverge
        // from its execution in the full grid -- abort so the
        // injector falls back to a full-grid run.
        std::ostringstream os;
        os << "thread " << global_id << " sliced-run "
           << (mem_is_ld ? "load" : "store") << " hazard at global 0x"
           << std::hex << mem_addr << std::dec << ": "
           << mem_op->orig->text;
        ctx.diagnostic = os.str();
        ret = StopReason::Hazard;
        goto done;
    }

  mem_crash:
    {
        std::ostringstream os;
        os << "thread " << global_id << " "
           << (mem_is_ld ? "load" : "store") << " fault at "
           << spaceName(mem_op->orig->space) << " 0x" << std::hex
           << mem_addr << std::dec << " ("
           << (mem_err == AccessError::Unmapped ? "unmapped"
                                                : "misaligned")
           << "): " << mem_op->orig->text;
        ctx.diagnostic = os.str();
        ret = StopReason::Crashed;
        goto done;
    }

  done:
    ms.pc(tl) = pc;
    ms.icnt(tl) = icnt;
    ms.faultBits(tl) = fbits;
    return ret;
}

#undef FSP_WB_EPI
#undef FSP_EPI
#undef FSP_DISPATCH

} // namespace

StopReason
runThreadDecoded(MachineState &ms, std::uint32_t tl, CtaContext &ctx,
                 std::uint64_t max_steps)
{
    const std::uint64_t global_id =
        ms.ctaLinear * ctx.blockThreads + tl;

    std::vector<DynRecord> *dyn_trace = nullptr;
    if (ctx.trace && ctx.opts &&
        ctx.opts->traceThreads.count(global_id) > 0) {
        dyn_trace = &ctx.trace->dynTraces[global_id];
    }

    const bool is_fault_thread =
        ctx.fault != nullptr && ctx.fault->thread == global_id;

    if (is_fault_thread) {
        return dyn_trace
                   ? runThreadDecodedImpl<true, true>(
                         ms, tl, ctx, max_steps, dyn_trace)
                   : runThreadDecodedImpl<true, false>(
                         ms, tl, ctx, max_steps, nullptr);
    }
    return dyn_trace ? runThreadDecodedImpl<false, true>(
                           ms, tl, ctx, max_steps, dyn_trace)
                     : runThreadDecodedImpl<false, false>(
                           ms, tl, ctx, max_steps, nullptr);
}

} // namespace exec

namespace {

using exec::CtaContext;
using exec::StopReason;

/**
 * Advance one CTA under the cooperative barrier-phase scheduler until
 * it retires, faults, or reaches @p watermark executed instructions.
 * The MachineState cursor makes it resumable -- stopping at a watermark
 * and calling again continues exactly where execution left off, and a
 * snapshot of the state can be continued independently later.
 */
CtaStepStatus
stepCtaImpl(MachineState &ms, CtaContext &ctx, ExecEngine engine,
            std::uint64_t watermark)
{
    const std::uint32_t num_threads = ms.numThreads();
    while (true) {
        for (; ms.cursor < num_threads; ++ms.cursor) {
            const std::uint32_t tl =
                static_cast<std::uint32_t>(ms.cursor);
            if (ms.exited(tl) || ms.atBarrier(tl))
                continue;
            std::uint64_t max_steps = kNoWatermark;
            if (watermark != kNoWatermark) {
                if (ms.executedDynInstrs >= watermark)
                    return CtaStepStatus::Watermark;
                max_steps = watermark - ms.executedDynInstrs;
            }
            const std::uint64_t before = ms.icnt(tl);
            StopReason reason =
                engine == ExecEngine::Decoded
                    ? exec::runThreadDecoded(ms, tl, ctx, max_steps)
                    : exec::runThreadReference(ms, tl, ctx, max_steps);
            ms.executedDynInstrs += ms.icnt(tl) - before;
            switch (reason) {
              case StopReason::Exited:
                break;
              case StopReason::Barrier:
                ms.setAtBarrier(tl);
                break;
              case StopReason::Limit:
                // The cursor stays on this mid-slice thread; the next
                // stepCta call (or a resumed run) continues it.
                return CtaStepStatus::Watermark;
              case StopReason::Crashed:
                return CtaStepStatus::Crashed;
              case StopReason::Hung:
                return CtaStepStatus::Hung;
              case StopReason::Hazard:
                return CtaStepStatus::Hazard;
            }
        }

        // Phase complete: every thread has exited or arrived at the
        // barrier.  Retire the CTA once nobody is left, otherwise
        // release the barrier and start the next phase.
        bool all_exited = true;
        for (std::uint32_t t = 0; t < num_threads && all_exited; ++t)
            all_exited = ms.exited(t);
        if (all_exited)
            return CtaStepStatus::Retired;
        ms.clearBarriers();
        ms.cursor = 0;
    }
}

/** FSP_EXEC_ENGINE overrides the constructor's engine choice. */
ExecEngine
engineFromEnv(ExecEngine requested)
{
    const char *v = std::getenv("FSP_EXEC_ENGINE");
    if (v == nullptr)
        return requested;
    const std::string s(v);
    if (s == "reference")
        return ExecEngine::Reference;
    if (s == "decoded")
        return ExecEngine::Decoded;
    return requested;
}

} // namespace

Executor::Executor(const Program &program, LaunchConfig config,
                   ExecEngine engine)
    : program_(program), config_(std::move(config)),
      engine_(engineFromEnv(engine))
{
    program_.validate();
    FSP_ASSERT(config_.grid.count() > 0 && config_.block.count() > 0,
               "empty launch");
    decoded_ = std::make_shared<const DecodedProgram>(program_, config_);
}

void
Executor::resetCtaState(MachineState &ms, std::uint64_t cta_linear) const
{
    FSP_ASSERT(cta_linear < config_.grid.count(), "CTA id outside grid");
    ms.configure(static_cast<std::uint32_t>(config_.block.count()),
                 decoded_->numRegs());
    ms.ctaLinear = cta_linear;
    ms.cursor = 0;
    ms.executedDynInstrs = 0;
    if (ms.smem.size() == config_.sharedBytes)
        ms.smem.clear();
    else
        ms.smem = SharedMemory(config_.sharedBytes);
}

MachineState
Executor::initialCtaState(std::uint64_t cta_linear) const
{
    MachineState ms;
    resetCtaState(ms, cta_linear);
    return ms;
}

CtaStepStatus
Executor::stepCta(MachineState &ms, GlobalMemory &gmem,
                  std::uint64_t watermark, FaultPlan *fault,
                  const CtaSlice *slice, std::string *diagnostic,
                  const ProtectionPlan *protection) const
{
    const Dim3 &grid = config_.grid;
    const std::uint64_t lin = ms.ctaLinear;
    const std::uint64_t plane =
        static_cast<std::uint64_t>(grid.x) * grid.y;

    CtaContext ctx{gmem, config_.params};
    ctx.smem = &ms.smem;
    ctx.prog = &program_;
    ctx.dec = decoded_.get();
    ctx.block = config_.block;
    ctx.grid = grid;
    ctx.blockThreads = config_.block.count();
    ctx.ctaidX = static_cast<std::uint32_t>(lin % grid.x);
    ctx.ctaidY = static_cast<std::uint32_t>((lin / grid.x) % grid.y);
    ctx.ctaidZ = static_cast<std::uint32_t>(lin / plane);
    ctx.budget = config_.maxDynInstrPerThread
                     ? config_.maxDynInstrPerThread
                     : exec::kDefaultBudget;
    ctx.fault = fault;
    ctx.protection = protection;
    ctx.loadHazards = slice ? slice->loadHazards : nullptr;
    ctx.storeHazards = slice ? slice->storeHazards : nullptr;

    CtaStepStatus status = stepCtaImpl(ms, ctx, engine_, watermark);
    if (diagnostic)
        *diagnostic = ctx.diagnostic;
    return status;
}

RunResult
Executor::run(GlobalMemory &gmem, const TraceOptions *opts,
              FaultPlan *fault, const CtaSlice *slice,
              const StateSnapshot *resume,
              const ProtectionPlan *protection) const
{
    RunResult result;
    if (fault) {
        fault->applied = false;
        fault->appliedStatic = kNoStaticIndex;
        fault->detected = false;
        fault->detectedStatic = kNoStaticIndex;
        if (fault->kind == FaultKind::GlobalMemLaunch) {
            // A fault that predates the kernel: flip the byte in the
            // initial image, once, before any CTA runs.  Models of
            // this kind declare themselves full-grid-only, so resume
            // and slicing never see it.
            std::uint64_t byte = 0;
            AccessError err = gmem.load(fault->addr, 1, byte);
            if (err == AccessError::None) {
                err = gmem.store(fault->addr, 1,
                                 byte ^ (fault->mask & 0xFF));
            }
            if (err != AccessError::None) {
                std::ostringstream os;
                os << "launch-time global-memory fault flip at "
                      "unmapped 0x"
                   << std::hex << fault->addr << std::dec;
                result.status = RunStatus::Crashed;
                result.diagnostic = os.str();
                noteRun(result);
                return result;
            }
            fault->applied = true;
        }
    }

    const Dim3 &grid = config_.grid;
    const std::uint64_t block_threads = config_.block.count();
    const std::uint64_t total_threads = config_.threadCount();

    if (opts && opts->perThreadProfiles)
        result.trace.profiles.resize(total_threads);

    const bool want_footprints = opts && opts->ctaFootprints;
    std::vector<Interval> fp_reads, fp_writes;
    if (want_footprints)
        result.trace.ctaFootprints.resize(grid.count());

    // CtaRange ids are sorted/unique; walk them alongside the linear
    // CTA enumeration so skipped CTAs cost one comparison each and the
    // executed CTAs see exactly the state (ids, smem, thread numbers)
    // they would in a full-grid run.
    const std::vector<std::uint64_t> *slice_ctas =
        slice ? &slice->range.ctas : nullptr;
    std::size_t slice_pos = 0;

    const std::uint64_t start_cta = resume ? resume->ctaLinear() : 0;
    MachineState &ms = scratch_; // reused across CTAs and runs

    CtaContext ctx{gmem, config_.params};
    ctx.prog = &program_;
    ctx.dec = decoded_.get();
    ctx.block = config_.block;
    ctx.grid = grid;
    ctx.blockThreads = block_threads;
    ctx.budget = config_.maxDynInstrPerThread
                     ? config_.maxDynInstrPerThread
                     : exec::kDefaultBudget;
    ctx.opts = opts;
    ctx.fault = fault;
    ctx.protection = protection;
    ctx.trace = &result.trace;
    ctx.loadHazards = slice ? slice->loadHazards : nullptr;
    ctx.storeHazards = slice ? slice->storeHazards : nullptr;

    std::uint64_t cta_linear = 0;
    for (std::uint32_t cz = 0; cz < grid.z; ++cz) {
        for (std::uint32_t cy = 0; cy < grid.y; ++cy) {
            for (std::uint32_t cx = 0; cx < grid.x; ++cx, ++cta_linear) {
                if (slice_ctas) {
                    if (slice_pos >= slice_ctas->size())
                        continue; // no selected CTAs remain
                    if ((*slice_ctas)[slice_pos] != cta_linear)
                        continue;
                    ++slice_pos;
                }
                if (cta_linear < start_cta)
                    continue; // resume: prefix is baked into gmem
                result.executedCtas++;
                if (want_footprints) {
                    fp_reads.clear();
                    fp_writes.clear();
                    ctx.fpReads = &fp_reads;
                    ctx.fpWrites = &fp_writes;
                }
                ctx.ctaidX = cx;
                ctx.ctaidY = cy;
                ctx.ctaidZ = cz;

                if (resume && cta_linear == start_cta) {
                    // Page-restore straight into the scratch state;
                    // the stored snapshot stays pristine.
                    result.restoredStateBytes +=
                        resume->restoreInto(ms);
                } else {
                    resetCtaState(ms, cta_linear);
                }
                ctx.smem = &ms.smem;

                CtaStepStatus status =
                    stepCtaImpl(ms, ctx, engine_, kNoWatermark);

                // Accumulate per-thread work whether the CTA retired or
                // aborted the launch (a faulting kernel dies; a hazard
                // makes the caller re-run full-grid).
                for (std::uint32_t t = 0; t < ms.numThreads(); ++t) {
                    result.totalDynInstrs += ms.icnt(t);
                    if (opts && opts->perThreadProfiles) {
                        auto &p = result.trace.profiles
                                      [ms.ctaLinear * block_threads + t];
                        p.iCnt = ms.icnt(t);
                        p.faultBits = ms.faultBits(t);
                    }
                }
                if (status != CtaStepStatus::Retired) {
                    result.status =
                        status == CtaStepStatus::Crashed
                            ? RunStatus::Crashed
                            : (status == CtaStepStatus::Hung
                                   ? RunStatus::Hung
                                   : RunStatus::SliceHazard);
                    result.diagnostic = ctx.diagnostic;
                    noteRun(result);
                    return result;
                }
                if (want_footprints) {
                    auto &fp = result.trace.ctaFootprints[cta_linear];
                    fp.reads = IntervalSet::fromUnsorted(fp_reads);
                    fp.writes = IntervalSet::fromUnsorted(fp_writes);
                }
            }
        }
    }

    noteRun(result);
    return result;
}

} // namespace fsp::sim
