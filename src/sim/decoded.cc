/**
 * @file
 * DecodedProgram builder: one pass over the instruction stream that
 * resolves operands, renames registers densely and assigns dispatch
 * handler ids.  See decoded.hh for the representation rationale.
 */

#include "sim/decoded.hh"

#include "util/logging.hh"

namespace fsp::sim {

namespace {

/** Fast-path handler for an (opcode, type) pair; AluSlow otherwise. */
XOp
pickAluOp(Opcode op, DataType t)
{
    if (t == DataType::F32) {
        switch (op) {
          case Opcode::Add: return XOp::AddF32;
          case Opcode::Sub: return XOp::SubF32;
          case Opcode::Mul: return XOp::MulF32;
          case Opcode::Mad: return XOp::MadF32;
          case Opcode::Min: return XOp::MinF32;
          case Opcode::Max: return XOp::MaxF32;
          case Opcode::Neg: return XOp::NegF32;
          case Opcode::Abs: return XOp::AbsF32;
          default: return XOp::AluSlow;
        }
    }
    if (t == DataType::F64) {
        switch (op) {
          case Opcode::Add: return XOp::AddF64;
          case Opcode::Sub: return XOp::SubF64;
          case Opcode::Mul: return XOp::MulF64;
          case Opcode::Mad: return XOp::MadF64;
          case Opcode::Min: return XOp::MinF64;
          case Opcode::Max: return XOp::MaxF64;
          case Opcode::Neg: return XOp::NegF64;
          case Opcode::Abs: return XOp::AbsF64;
          default: return XOp::AluSlow;
        }
    }
    switch (op) {
      case Opcode::Add: return XOp::AddI;
      case Opcode::Sub: return XOp::SubI;
      case Opcode::Mul: return XOp::MulI;
      case Opcode::Mad: return XOp::MadI;
      case Opcode::MulWide: return XOp::MulWideI;
      case Opcode::MadWide: return XOp::MadWideI;
      case Opcode::Min: return XOp::MinI;
      case Opcode::Max: return XOp::MaxI;
      case Opcode::Neg: return XOp::NegI;
      case Opcode::Abs: return XOp::AbsI;
      case Opcode::And: return XOp::AndI;
      case Opcode::Or: return XOp::OrI;
      case Opcode::Xor: return XOp::XorI;
      case Opcode::Not: return XOp::NotI;
      case Opcode::Shl: return XOp::ShlI;
      case Opcode::Shr: return XOp::ShrI;
      default: return XOp::AluSlow;
    }
}

inline std::uint64_t
truncMask(unsigned bits)
{
    return bits >= 64 ? ~std::uint64_t{0}
                      : ((std::uint64_t{1} << bits) - 1);
}

} // namespace

std::uint8_t
DecodedProgram::denseReg(unsigned arch)
{
    FSP_ASSERT(arch < kNumGpRegs, "register index out of range");
    if (reg_map_[arch] == kNoDenseReg) {
        FSP_ASSERT(num_regs_ < kNumGpRegs, "dense register overflow");
        reg_map_[arch] = static_cast<std::uint8_t>(num_regs_++);
    }
    return reg_map_[arch];
}

XSrc
DecodedProgram::decodeSrc(const Operand &o, DataType readType)
{
    XSrc s;
    switch (o.kind) {
      case Operand::Kind::GpReg:
        if (o.negated) {
            // Negation (with an optional half select) is rare enough
            // to take the generic read; the dense slot still applies.
            s.k = XSrc::K::RegComplex;
            s.reg = denseReg(o.reg);
            s.half = static_cast<std::uint8_t>(o.half);
            s.negType = static_cast<std::uint8_t>(readType);
            return s;
        }
        if (o.reg == kZeroReg) {
            s.k = XSrc::K::Zero; // halves of zero are zero
            return s;
        }
        s.reg = denseReg(o.reg);
        s.k = o.half == HalfSel::Lo   ? XSrc::K::RegLo
              : o.half == HalfSel::Hi ? XSrc::K::RegHi
                                      : XSrc::K::Reg;
        return s;

      case Operand::Kind::PredReg:
        s.k = XSrc::K::Pred;
        s.reg = o.reg;
        return s;

      case Operand::Kind::Discard:
        s.k = XSrc::K::Zero;
        return s;

      case Operand::Kind::Special:
        switch (o.special) {
          case SpecialReg::TidX: s.k = XSrc::K::TidX; return s;
          case SpecialReg::TidY: s.k = XSrc::K::TidY; return s;
          case SpecialReg::TidZ: s.k = XSrc::K::TidZ; return s;
          case SpecialReg::CtaidX: s.k = XSrc::K::CtaidX; return s;
          case SpecialReg::CtaidY: s.k = XSrc::K::CtaidY; return s;
          case SpecialReg::CtaidZ: s.k = XSrc::K::CtaidZ; return s;
          // Launch constants fold to immediates at decode time.
          case SpecialReg::NtidX:
          case SpecialReg::NtidY:
          case SpecialReg::NtidZ:
          case SpecialReg::NctaidX:
          case SpecialReg::NctaidY:
          case SpecialReg::NctaidZ:
            s.k = XSrc::K::Imm;
            s.imm = ntid_nctaid_[static_cast<unsigned>(o.special)];
            return s;
        }
        panic("unreachable SpecialReg");

      case Operand::Kind::Imm:
        s.k = XSrc::K::Imm;
        s.imm = o.imm;
        return s;

      case Operand::Kind::MemRef:
      case Operand::Kind::None:
        // Never read as a value; keep the zero default so accidental
        // reads are at least deterministic.
        return s;
    }
    panic("unreachable Operand::Kind");
}

DecodedProgram::DecodedProgram(const Program &program,
                               const LaunchConfig &config)
{
    reg_map_.fill(kNoDenseReg);
    ntid_nctaid_ = {0, 0, 0,
                    config.block.x, config.block.y, config.block.z,
                    0, 0, 0,
                    config.grid.x, config.grid.y, config.grid.z};

    const auto &code = program.instructions();
    code_.reserve(code.size());

    for (std::size_t i = 0; i < code.size(); ++i) {
        const Instruction &insn = code[i];
        DecodedOp op;
        op.orig = &insn;
        op.staticIndex = static_cast<std::uint32_t>(i);
        op.guardCond = insn.guard.cond;
        op.guardPred = insn.guard.pred;
        op.dtype = static_cast<std::uint8_t>(insn.type);
        op.stype = static_cast<std::uint8_t>(insn.stype);
        op.cmp = static_cast<std::uint8_t>(insn.cmp);
        op.bits = static_cast<std::uint8_t>(typeBits(insn.type));
        op.mask = truncMask(op.bits);
        op.sgn = isSignedType(insn.type);

        // Destination renaming.  Zero-register and discard writes
        // vanish; they record no fault bits either (matching the
        // per-step interpreter and Instruction::hasDest()).
        if (insn.dest.kind == Operand::Kind::PredReg) {
            op.destKind = DecodedOp::Dest::Pred;
            op.destReg = insn.dest.reg;
            op.recordedBits =
                static_cast<std::uint16_t>(typeBits(DataType::Pred));
        } else if (insn.dest.kind == Operand::Kind::GpReg &&
                   insn.dest.reg != kZeroReg) {
            op.destKind = DecodedOp::Dest::Gp;
            op.destReg = denseReg(insn.dest.reg);
            op.recordedBits = static_cast<std::uint16_t>(
                insn.op == Opcode::MulWide || insn.op == Opcode::MadWide
                    ? 2 * typeBits(insn.type)
                    : typeBits(insn.type));
        }
        if (insn.dest2.kind == Operand::Kind::GpReg &&
            insn.dest2.reg != kZeroReg) {
            op.dest2Reg = denseReg(insn.dest2.reg);
        }
        DataType cc_type =
            insn.op == Opcode::Set || insn.op == Opcode::Setp
                ? (insn.type == DataType::Pred ? DataType::U32
                                               : insn.type)
                : insn.type;
        op.ccType = static_cast<std::uint8_t>(cc_type);

        switch (insn.op) {
          case Opcode::Nop:
          case Opcode::Ssy:
            op.x = XOp::Nop;
            break;
          case Opcode::Ret:
          case Opcode::Exit:
            op.x = XOp::Exit;
            break;
          case Opcode::Bra:
            op.x = XOp::Bra;
            op.target = static_cast<std::uint32_t>(insn.target);
            break;
          case Opcode::Bar:
            op.x = XOp::Bar;
            break;
          case Opcode::Ld:
          case Opcode::St: {
            const Operand &mem = insn.src[0];
            op.width =
                static_cast<std::uint8_t>(typeBits(insn.type) / 8);
            op.memOffset = mem.memOffset;
            if (mem.memBase >= 0 &&
                mem.memBase != static_cast<std::int32_t>(kZeroReg)) {
                op.memBase =
                    denseReg(static_cast<unsigned>(mem.memBase));
            }
            if (insn.op == Opcode::Ld) {
                op.ldSigned = isSignedType(insn.type);
                switch (insn.space) {
                  case MemSpace::Global: op.x = XOp::LdGlobal; break;
                  case MemSpace::Shared: op.x = XOp::LdShared; break;
                  case MemSpace::Param: op.x = XOp::LdParam; break;
                  default: panic("ld without address space");
                }
            } else {
                op.src[1] = decodeSrc(insn.src[1], insn.type);
                switch (insn.space) {
                  case MemSpace::Global: op.x = XOp::StGlobal; break;
                  case MemSpace::Shared: op.x = XOp::StShared; break;
                  default: panic("st without writable address space");
                }
            }
            break;
          }
          case Opcode::Cvt:
            op.x = XOp::CvtV;
            op.src[0] = decodeSrc(insn.src[0], insn.stype);
            break;
          case Opcode::Set:
          case Opcode::Setp:
            op.x = XOp::SetCmp;
            op.src[0] = decodeSrc(insn.src[0], insn.stype);
            op.src[1] = decodeSrc(insn.src[1], insn.stype);
            break;
          case Opcode::Selp:
            op.x = XOp::SelpV;
            op.src[0] = decodeSrc(insn.src[0], insn.type);
            op.src[1] = decodeSrc(insn.src[1], insn.type);
            op.src[2] = decodeSrc(insn.src[2], DataType::U32);
            break;
          case Opcode::Mov:
            op.x = XOp::MovI; // bit-preserving for every type
            op.src[0] = decodeSrc(insn.src[0], insn.type);
            break;
          default: {
            op.x = pickAluOp(insn.op, insn.type);
            const unsigned n = opcodeSrcCount(insn.op);
            for (unsigned k = 0; k < n && k < 3; ++k)
                op.src[k] = decodeSrc(insn.src[k], insn.type);
            break;
          }
        }
        code_.push_back(op);
    }

    // Every kernel gets at least one dense slot so register-slab
    // pointers stay valid even for register-free programs.
    if (num_regs_ == 0)
        num_regs_ = 1;
}

} // namespace fsp::sim
