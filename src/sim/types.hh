/**
 * @file
 * Fundamental enums and small value types shared across the GPU
 * functional simulator: data types, comparison operators, memory spaces,
 * guard conditions, and grid geometry.
 *
 * The ISA modelled here is a PTXPlus-flavoured virtual ISA (GPGPU-Sim's
 * one-to-one mapping of SASS); see DESIGN.md section 2 for the
 * substitution rationale.
 */

#ifndef FSP_SIM_TYPES_HH
#define FSP_SIM_TYPES_HH

#include <cstdint>
#include <string>

namespace fsp::sim {

/** Operand/instruction data types, mirroring PTX type suffixes. */
enum class DataType : std::uint8_t
{
    U16,
    U32,
    U64,
    S16,
    S32,
    S64,
    F32,
    F64,
    Pred, ///< 4-bit condition-code register (zero/sign/carry/overflow)
    None,
};

/**
 * Bit width of a value of the given type (Pred is the 4-bit CC).
 * Inline (as are the two predicates below): these are consulted on
 * the interpreter's per-instruction path.
 */
inline unsigned
typeBits(DataType type)
{
    switch (type) {
      case DataType::U16:
      case DataType::S16:
        return 16;
      case DataType::U32:
      case DataType::S32:
      case DataType::F32:
        return 32;
      case DataType::U64:
      case DataType::S64:
      case DataType::F64:
        return 64;
      case DataType::Pred:
        return 4;
      case DataType::None:
      default:
        return 0;
    }
}

/** True for F32/F64. */
inline bool
isFloatType(DataType type)
{
    return type == DataType::F32 || type == DataType::F64;
}

/** True for S16/S32/S64. */
inline bool
isSignedType(DataType type)
{
    return type == DataType::S16 || type == DataType::S32 ||
           type == DataType::S64;
}

/** PTX-style suffix name ("u32", "pred", ...). */
std::string typeName(DataType type);

/** Parse a PTX type suffix; returns DataType::None on failure. */
DataType parseType(const std::string &name);

/** Comparison operators for set/setp. */
enum class CmpOp : std::uint8_t
{
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    None,
};

std::string cmpName(CmpOp cmp);
CmpOp parseCmp(const std::string &name);

/** Memory address spaces. */
enum class MemSpace : std::uint8_t
{
    Global,
    Shared,
    Param,
    None,
};

std::string spaceName(MemSpace space);

/**
 * Condition-code flags of a 4-bit predicate register, following the
 * PTXPlus condition-code model: bit 0 is the zero flag, bit 1 the sign
 * flag, bit 2 the carry flag and bit 3 the overflow flag.  For the
 * applications studied in the paper only the zero flag feeds branch
 * conditions (paper section III-E).
 */
enum CcFlag : std::uint8_t
{
    CcZero = 1u << 0,
    CcSign = 1u << 1,
    CcCarry = 1u << 2,
    CcOverflow = 1u << 3,
};

/**
 * Guard condition attached to a predicated instruction, e.g.
 * "@$p0.ne bra target".  Evaluated against the 4-bit CC register.
 */
enum class GuardCond : std::uint8_t
{
    Always, ///< no guard
    Eq,     ///< zero flag set
    Ne,     ///< zero flag clear
    Lt,     ///< sign flag set
    Le,     ///< sign or zero flag set
    Gt,     ///< neither sign nor zero flag set
    Ge,     ///< sign flag clear
};

std::string guardName(GuardCond cond);

/** 3-component grid/block dimensions (CUDA dim3). */
struct Dim3
{
    std::uint32_t x = 1;
    std::uint32_t y = 1;
    std::uint32_t z = 1;

    std::uint64_t count() const
    {
        return static_cast<std::uint64_t>(x) * y * z;
    }

    bool operator==(const Dim3 &other) const = default;
};

} // namespace fsp::sim

#endif // FSP_SIM_TYPES_HH
