/**
 * @file
 * Trace sectioning for incremental (compositional) campaigns.
 *
 * A value-recorded dynamic trace (TraceOptions::recordValues) is split
 * into contiguous TraceSections at barrier boundaries, at fixed
 * executed-instruction strides, and at caller-supplied cut points
 * (e.g. common-block prefix/suffix boundaries from the pruning
 * aligner).  Each section carries three canonical FNV-1a hashes that
 * together identify "the same computation" across edited kernels:
 *
 *  - contentHash: the instruction *content* of the section's executed
 *    records.  Content hashing is position-independent -- branch
 *    targets are hashed relative to the instruction's own static
 *    index, and source line / text / absolute static index are
 *    excluded -- so inserting code elsewhere does not perturb it.
 *    Guard-failed issues are excluded entirely: they write nothing,
 *    branch nowhere, and carry no fault sites.
 *  - prefixStateHash: a fold of (destination identity, written value)
 *    over every executed destination-writing record *before* the
 *    section.  This pins the architectural state the section consumes
 *    without hashing upstream *content*, so value-preserving upstream
 *    edits (e.g. a strength reduction) keep downstream sections warm.
 *  - tailContentHash: contentHash of this section combined with every
 *    later section's, i.e. the executed content from the section start
 *    to the end of the trace.  A cached outcome is only as good as the
 *    code the fault propagates *through*, so cache keys use the tail
 *    hash: an edit conservatively invalidates its own section and
 *    every earlier one.
 *
 * Boundaries are counted in executed-record space, so a guarded-off
 * insertion neither moves section cuts nor shifts the per-site
 * write offsets (writeOffsetOf) used as cache-key coordinates.
 */

#ifndef FSP_SIM_SECTION_HH
#define FSP_SIM_SECTION_HH

#include <cstdint>
#include <vector>

#include "sim/instruction.hh"
#include "sim/trace.hh"

namespace fsp::sim {

/** One contiguous slice of a dynamic trace. */
struct TraceSection
{
    std::uint32_t firstRecord = 0; ///< first dyn-record index (inclusive)
    std::uint32_t recordCount = 0; ///< number of dyn records covered
    std::uint64_t contentHash = 0; ///< executed instruction content
    std::uint64_t prefixStateHash = 0; ///< (dest, value) fold before start
    std::uint64_t tailContentHash = 0; ///< content from start to trace end
};

/** Knobs for splitTrace(). */
struct SectionSplitOptions
{
    /**
     * Start a new section after this many executed records even when
     * no barrier intervenes (barrier-free kernels such as GEMM would
     * otherwise collapse into a single all-or-nothing section).
     */
    std::size_t maxExecutedRecords = 32;

    /**
     * Extra cut points, as executed-record ordinals (0-based count of
     * executed records preceding the cut).  The splitter starts a new
     * section at the first executed record at or past each ordinal.
     * Used for common-block prefix/suffix boundaries from trace
     * alignment; need not be sorted or unique.
     */
    std::vector<std::uint64_t> extraBoundaries;
};

/** splitTrace() result: the sections plus per-record coordinates. */
struct SectionedTrace
{
    std::vector<TraceSection> sections;

    /** Per dyn record: index of the section containing it. */
    std::vector<std::uint32_t> sectionOf;

    /**
     * Per dyn record: ordinal among the *executed destination-writing*
     * records of its section (the insertion-stable per-site coordinate
     * used in cache keys).  Meaningful only for records with
     * executed() && destBits != 0; zero otherwise.
     */
    std::vector<std::uint32_t> writeOffsetOf;
};

/**
 * Canonical content hash of one instruction.  Covers opcode, types,
 * comparison, address space, guard, all operands and the barrier id;
 * branch targets are hashed relative to @p staticIndex.  Source line,
 * original text and the absolute static index are excluded, making the
 * hash invariant under code motion elsewhere in the program.
 */
std::uint64_t instructionContentHash(const Instruction &insn,
                                     std::uint32_t staticIndex);

/**
 * Split a value-recorded dynamic trace of @p code into sections.
 * @p trace must come from a run with TraceOptions::recordValues set
 * (the guard-outcome flags drive boundary placement and the value
 * fields feed prefixStateHash).
 */
SectionedTrace splitTrace(const std::vector<Instruction> &code,
                          const std::vector<DynRecord> &trace,
                          const SectionSplitOptions &options = {});

} // namespace fsp::sim

#endif // FSP_SIM_SECTION_HH
