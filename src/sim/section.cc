/**
 * @file
 * Trace sectioning (see section.hh for the invariance contract).
 */

#include "sim/section.hh"

#include <algorithm>

#include "util/logging.hh"

namespace fsp::sim {

namespace {

/** FNV-1a 64-bit, byte-at-a-time (same fold as faults::JournalHasher). */
class Fnv
{
  public:
    void
    update(std::uint64_t value)
    {
        for (unsigned i = 0; i < 8; ++i) {
            state_ ^= (value >> (8 * i)) & 0xff;
            state_ *= 0x100000001b3ULL;
        }
    }

    std::uint64_t value() const { return state_; }

  private:
    std::uint64_t state_ = 0xcbf29ce484222325ULL;
};

void
hashOperand(Fnv &hasher, const Operand &operand)
{
    hasher.update(static_cast<std::uint64_t>(operand.kind));
    hasher.update(operand.reg);
    hasher.update(static_cast<std::uint64_t>(operand.half));
    hasher.update(operand.negated ? 1 : 0);
    hasher.update(static_cast<std::uint64_t>(operand.special));
    hasher.update(operand.imm);
    hasher.update(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(operand.memBase)));
    hasher.update(static_cast<std::uint64_t>(operand.memOffset));
}

/** Order-preserving combine of two 64-bit hashes. */
std::uint64_t
combine(std::uint64_t a, std::uint64_t b)
{
    Fnv hasher;
    hasher.update(a);
    hasher.update(b);
    return hasher.value();
}

/** Sentinel folded into the last section's tail hash. */
constexpr std::uint64_t kTailSeed = 0x7461696c2d656e64ULL; // "tail-end"

} // namespace

std::uint64_t
instructionContentHash(const Instruction &insn, std::uint32_t staticIndex)
{
    Fnv hasher;
    hasher.update(static_cast<std::uint64_t>(insn.op));
    hasher.update(static_cast<std::uint64_t>(insn.type));
    hasher.update(static_cast<std::uint64_t>(insn.stype));
    hasher.update(static_cast<std::uint64_t>(insn.cmp));
    hasher.update(static_cast<std::uint64_t>(insn.space));
    hasher.update(static_cast<std::uint64_t>(insn.guard.cond));
    hasher.update(insn.guard.pred);
    hashOperand(hasher, insn.dest);
    hashOperand(hasher, insn.dest2);
    for (const Operand &src : insn.src)
        hashOperand(hasher, src);
    hasher.update(insn.barrier);
    // Branch targets are hashed relative to the instruction itself so
    // the hash survives insertions elsewhere in the program.  -1 (no
    // target) stays -1 under the subtraction's sentinel below.
    const std::int64_t relative =
        insn.target < 0 ? std::int64_t{-1}
                        : std::int64_t{insn.target} -
                              std::int64_t{staticIndex};
    hasher.update(static_cast<std::uint64_t>(relative));
    return hasher.value();
}

SectionedTrace
splitTrace(const std::vector<Instruction> &code,
           const std::vector<DynRecord> &trace,
           const SectionSplitOptions &options)
{
    SectionedTrace result;
    if (trace.empty())
        return result;

    const std::size_t stride =
        options.maxExecutedRecords == 0 ? std::size_t{1}
                                        : options.maxExecutedRecords;

    std::vector<std::uint64_t> boundaries = options.extraBoundaries;
    std::sort(boundaries.begin(), boundaries.end());
    boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                     boundaries.end());

    result.sectionOf.resize(trace.size(), 0);
    result.writeOffsetOf.resize(trace.size(), 0);

    // Single forward pass: place cuts (only ever *before an executed
    // record* or after an executed barrier, so guard-failed issues can
    // never move a boundary), folding content / prefix-state hashes as
    // we go.  Tail hashes are rolled up backwards afterwards.
    Fnv prefix_state; // fold over all executed dest-writes seen so far
    std::uint64_t executed_total = 0;  // executed records consumed
    std::size_t executed_in_section = 0;
    std::size_t next_boundary = 0;     // index into boundaries[]
    std::uint32_t write_offset = 0;    // executed dest-writes in section
    bool any_executed = false;

    Fnv content;
    TraceSection current;
    current.firstRecord = 0;
    current.prefixStateHash = prefix_state.value();

    auto close_section = [&](std::uint32_t end_record) {
        current.recordCount = end_record - current.firstRecord;
        current.contentHash = content.value();
        result.sections.push_back(current);
        content = Fnv{};
        current = TraceSection{};
        current.firstRecord = end_record;
        current.prefixStateHash = prefix_state.value();
        executed_in_section = 0;
        write_offset = 0;
    };

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const DynRecord &record = trace[i];
        FSP_ASSERT(record.staticIndex < code.size(),
                   "dyn record static index out of range");
        const Instruction &insn = code[record.staticIndex];
        const bool executed = record.executed();

        if (executed && current.firstRecord != i) {
            // Cut before this record when it crosses a stride or an
            // extra boundary (both counted in executed-record space).
            bool cut = executed_in_section >= stride;
            while (next_boundary < boundaries.size() &&
                   boundaries[next_boundary] <= executed_total) {
                if (boundaries[next_boundary] == executed_total)
                    cut = true;
                ++next_boundary;
            }
            if (cut)
                close_section(static_cast<std::uint32_t>(i));
        }

        result.sectionOf[i] =
            static_cast<std::uint32_t>(result.sections.size());
        if (executed) {
            any_executed = true;
            content.update(
                instructionContentHash(insn, record.staticIndex));
            ++executed_in_section;
            ++executed_total;
            if (record.destBits != 0) {
                result.writeOffsetOf[i] = write_offset++;
                prefix_state.update(
                    static_cast<std::uint64_t>(insn.dest.kind));
                prefix_state.update(insn.dest.reg);
                prefix_state.update(record.value());
            }
            if (insn.op == Opcode::Bar && i + 1 < trace.size())
                close_section(static_cast<std::uint32_t>(i + 1));
        }
    }
    close_section(static_cast<std::uint32_t>(trace.size()));

    FSP_ASSERT(any_executed,
               "splitTrace needs a recordValues trace (no executed "
               "flags found)");

    // tail[i] = H(content[i], tail[i+1]); the fold direction makes a
    // change in any section at or after i visible in tail[i].
    std::uint64_t tail = kTailSeed;
    for (std::size_t i = result.sections.size(); i-- > 0;) {
        tail = combine(result.sections[i].contentHash, tail);
        result.sections[i].tailContentHash = tail;
    }
    return result;
}

} // namespace fsp::sim
