/**
 * @file
 * Opcode set of the PTXPlus-flavoured virtual ISA and static per-opcode
 * properties (operand arity, whether the opcode writes a destination
 * register, whether it is a memory/control operation).
 */

#ifndef FSP_SIM_ISA_HH
#define FSP_SIM_ISA_HH

#include <cstdint>
#include <string>

namespace fsp::sim {

/** All opcodes understood by the executor. */
enum class Opcode : std::uint8_t
{
    // Data movement / conversion
    Mov,
    Cvt,
    Selp,
    // Integer & float arithmetic
    Add,
    Sub,
    Mul,
    MulWide, ///< 16x16 -> 32 widening multiply (PTXPlus mul.wide)
    Mad,
    MadWide, ///< widening multiply-add
    Div,
    Rem,
    Min,
    Max,
    Neg,
    Abs,
    // Transcendental / special function unit
    Rcp,
    Sqrt,
    Rsqrt,
    Ex2,
    Lg2,
    // Bitwise / shifts
    And,
    Or,
    Xor,
    Not,
    Shl,
    Shr,
    // Comparison
    Set,  ///< set.CMP.dtype.stype: boolean result + condition codes
    Setp, ///< setp.CMP.type: condition codes only
    // Memory
    Ld,
    St,
    // Control
    Bra,
    Ssy, ///< reconvergence hint; a no-op functionally
    Bar, ///< bar.sync
    Ret,
    Exit,
    Nop,
};

/** Number of opcodes (for table sizing). */
constexpr unsigned kNumOpcodes = static_cast<unsigned>(Opcode::Nop) + 1;

/** Mnemonic string ("mad", "ld", ...). */
std::string opcodeName(Opcode op);

/**
 * Parse a mnemonic (without type suffixes).  @returns true and sets
 * @p out on success.
 */
bool parseOpcode(const std::string &name, Opcode &out);

/** Number of source operands the opcode consumes. */
unsigned opcodeSrcCount(Opcode op);

/**
 * True when the opcode produces a destination-register value, i.e. it
 * contributes fault sites under the paper's fault model (faults are
 * injected into destination registers of ALU/SFU/LSU instructions).
 */
bool opcodeWritesDest(Opcode op);

/** True for ld/st. */
bool opcodeIsMemory(Opcode op);

/** True for bra/bar/ret/exit/ssy. */
bool opcodeIsControl(Opcode op);

} // namespace fsp::sim

#endif // FSP_SIM_ISA_HH
