/**
 * @file
 * Program construction, validation, and listing.
 */

#include "sim/program.hh"

#include <sstream>

#include "util/logging.hh"

namespace fsp::sim {

Program::Program(std::string name, std::vector<Instruction> instructions,
                 std::map<std::string, std::size_t> labels)
    : name_(std::move(name)), code_(std::move(instructions)),
      labels_(std::move(labels))
{
    auto note_reg = [this](const Operand &o) {
        if (o.kind == Operand::Kind::GpReg)
            max_gp_reg_ = std::max(max_gp_reg_, static_cast<unsigned>(o.reg));
        if (o.kind == Operand::Kind::MemRef && o.memBase >= 0) {
            max_gp_reg_ =
                std::max(max_gp_reg_, static_cast<unsigned>(o.memBase));
        }
    };
    for (const auto &insn : code_) {
        note_reg(insn.dest);
        note_reg(insn.dest2);
        for (const auto &src : insn.src)
            note_reg(src);
        if (insn.op == Opcode::Bar)
            barrier_count_ = std::max(barrier_count_, insn.barrier + 1);
    }
}

void
Program::validate() const
{
    for (std::size_t i = 0; i < code_.size(); ++i) {
        const Instruction &insn = code_[i];
        if (insn.op == Opcode::Bra) {
            if (insn.target < 0 ||
                static_cast<std::size_t>(insn.target) > code_.size()) {
                fatal("program ", name_, ": unresolved branch at index ", i,
                      " (", insn.text, ")");
            }
        }
        if (opcodeWritesDest(insn.op) &&
            insn.dest.kind == Operand::Kind::None) {
            fatal("program ", name_, ": missing destination at index ", i,
                  " (", insn.text, ")");
        }
        if (opcodeIsMemory(insn.op) && insn.space == MemSpace::None) {
            fatal("program ", name_, ": memory op without space at index ",
                  i, " (", insn.text, ")");
        }
        if (insn.op == Opcode::St && insn.space == MemSpace::Param)
            fatal("program ", name_, ": store to read-only param space");
    }
}

std::string
Program::listing() const
{
    std::ostringstream os;
    // Invert the label map for printing.
    std::map<std::size_t, std::string> by_index;
    for (const auto &[label, index] : labels_)
        by_index[index] = label;

    for (std::size_t i = 0; i < code_.size(); ++i) {
        auto it = by_index.find(i);
        os << (it != by_index.end() ? it->second + ":" : "") << "\t" << i
           << "\t" << code_[i].text << "\n";
    }
    return os.str();
}

} // namespace fsp::sim
