/**
 * @file
 * A Program is a decoded kernel: the instruction vector plus metadata
 * (name, label map, source listing).  Produced by the ptx assembler,
 * consumed by the executor and by the pruning analyses (which inspect
 * static instructions for common-block and loop detection).
 */

#ifndef FSP_SIM_PROGRAM_HH
#define FSP_SIM_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/instruction.hh"

namespace fsp::sim {

/** A decoded kernel program. */
class Program
{
  public:
    Program() = default;

    /**
     * Construct from decoded parts.
     *
     * @param name kernel name (for reports).
     * @param instructions decoded instruction stream; branch targets must
     *        already be resolved to instruction indices.
     * @param labels label name -> instruction index (kept for listings).
     */
    Program(std::string name, std::vector<Instruction> instructions,
            std::map<std::string, std::size_t> labels);

    const std::string &name() const { return name_; }
    const std::vector<Instruction> &instructions() const { return code_; }
    std::size_t size() const { return code_.size(); }

    const Instruction &
    at(std::size_t index) const
    {
        return code_[index];
    }

    const std::map<std::string, std::size_t> &labels() const
    {
        return labels_;
    }

    /** Highest GPR index referenced (for register-file sizing). */
    unsigned maxGpReg() const { return max_gp_reg_; }

    /** Highest barrier id used plus one. */
    unsigned barrierCount() const { return barrier_count_; }

    /** True when the program contains at least one bar.sync. */
    bool usesBarriers() const { return barrier_count_ > 0; }

    /**
     * Validate structural invariants: resolved branch targets in range,
     * operand kinds consistent with opcodes.  Calls fatal() on violation
     * (assembler bugs surface here in tests).
     */
    void validate() const;

    /** Render a numbered listing (used by the Fig. 5 bench). */
    std::string listing() const;

  private:
    std::string name_;
    std::vector<Instruction> code_;
    std::map<std::string, std::size_t> labels_;
    unsigned max_gp_reg_ = 0;
    unsigned barrier_count_ = 0;
};

} // namespace fsp::sim

#endif // FSP_SIM_PROGRAM_HH
