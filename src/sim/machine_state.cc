/**
 * @file
 * Machine-state arena management and copy-on-write snapshots.
 */

#include "sim/machine_state.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"

namespace fsp::sim {

void
MachineState::configure(std::uint32_t numThreads, std::uint32_t numRegs)
{
    num_threads_ = numThreads;
    num_regs_ = numRegs;
    const std::size_t nt = numThreads;
    pc_base_ = nt * numRegs;
    icnt_base_ = pc_base_ + nt;
    fb_base_ = icnt_base_ + nt;
    const std::size_t word_count = fb_base_ + nt;
    flags_base_ = nt * kNumPredRegs;
    const std::size_t byte_count = flags_base_ + nt;
    words_.resize(word_count);
    bytes_.resize(byte_count);
    std::memset(words_.data(), 0, word_count * sizeof(std::uint64_t));
    std::memset(bytes_.data(), 0, byte_count);
}

void
MachineState::clearBarriers()
{
    std::uint8_t *flags = bytes_.data() + flags_base_;
    for (std::uint32_t t = 0; t < num_threads_; ++t)
        flags[t] &= static_cast<std::uint8_t>(~kFlagBarrier);
}

std::uint64_t
MachineState::byteSize() const
{
    return sizeof(MachineState) + words_.size() * sizeof(std::uint64_t) +
           bytes_.size() + smem.size();
}

namespace {

/** One contiguous source region of a snapshot. */
struct Segment
{
    const std::uint8_t *data;
    std::size_t size;
};

} // namespace

void
StateSnapshot::capture(const MachineState &state, const StateSnapshot *prev)
{
    cta_linear_ = state.ctaLinear;
    cursor_ = state.cursor;
    executed_ = state.executedDynInstrs;
    num_threads_ = state.num_threads_;
    num_regs_ = state.num_regs_;
    word_count_ = state.words_.size();
    byte_count_ = state.bytes_.size();
    smem_bytes_ = state.smem.size();

    const Segment segments[3] = {
        {reinterpret_cast<const std::uint8_t *>(state.words_.data()),
         word_count_ * sizeof(std::uint64_t)},
        {state.bytes_.data(), byte_count_},
        {state.smem.bytes().data(), smem_bytes_},
    };

    // Page sharing is only meaningful against a snapshot with the same
    // layout (an earlier capture point of the same CTA execution).
    const bool comparable = prev != nullptr && !prev->empty() &&
                            prev->num_threads_ == num_threads_ &&
                            prev->num_regs_ == num_regs_ &&
                            prev->word_count_ == word_count_ &&
                            prev->byte_count_ == byte_count_ &&
                            prev->smem_bytes_ == smem_bytes_;

    pages_.clear();
    for (const Segment &seg : segments) {
        for (std::size_t off = 0; off < seg.size; off += kPageBytes) {
            const std::size_t n = std::min(kPageBytes, seg.size - off);
            if (comparable && pages_.size() < prev->pages_.size()) {
                const Page &old = prev->pages_[pages_.size()];
                if (old->size() == n &&
                    std::memcmp(old->data(), seg.data + off, n) == 0) {
                    pages_.push_back(old);
                    continue;
                }
            }
            pages_.push_back(std::make_shared<std::vector<std::uint8_t>>(
                seg.data + off, seg.data + off + n));
        }
    }
}

std::uint64_t
StateSnapshot::restoreInto(MachineState &state) const
{
    FSP_ASSERT(!empty(), "restore from an empty snapshot");
    state.configure(num_threads_, num_regs_);
    FSP_ASSERT(state.words_.size() == word_count_ &&
                   state.bytes_.size() == byte_count_,
               "snapshot layout mismatch");
    state.ctaLinear = cta_linear_;
    state.cursor = static_cast<std::size_t>(cursor_);
    state.executedDynInstrs = executed_;
    if (state.smem.size() != smem_bytes_)
        state.smem = SharedMemory(smem_bytes_);

    Segment segments[3] = {
        {reinterpret_cast<const std::uint8_t *>(state.words_.data()),
         word_count_ * sizeof(std::uint64_t)},
        {state.bytes_.data(), byte_count_},
        {state.smem.data(), smem_bytes_},
    };

    std::uint64_t copied = 0;
    std::size_t page = 0;
    for (const Segment &seg : segments) {
        auto *dst = const_cast<std::uint8_t *>(seg.data);
        for (std::size_t off = 0; off < seg.size; off += kPageBytes) {
            const std::size_t n = std::min(kPageBytes, seg.size - off);
            FSP_ASSERT(page < pages_.size() && pages_[page]->size() == n,
                       "snapshot page walk out of step");
            std::memcpy(dst + off, pages_[page]->data(), n);
            copied += n;
            ++page;
        }
    }
    return copied;
}

std::uint64_t
StateSnapshot::icntOf(std::uint32_t t) const
{
    FSP_ASSERT(t < num_threads_, "thread outside snapshot");
    // icnt segment offset within the words arena (see MachineState).
    const std::size_t icnt_base =
        std::size_t{num_threads_} * num_regs_ + num_threads_;
    const std::size_t byte_off = (icnt_base + t) * sizeof(std::uint64_t);
    const Page &pg = pages_[byte_off / kPageBytes];
    std::uint64_t value;
    std::memcpy(&value, pg->data() + byte_off % kPageBytes,
                sizeof(value));
    return value;
}

std::uint64_t
StateSnapshot::flatBytes() const
{
    return word_count_ * sizeof(std::uint64_t) + byte_count_ +
           smem_bytes_;
}

std::uint64_t
StateSnapshot::uniqueBytes(std::unordered_set<const void *> &seen) const
{
    std::uint64_t total = 0;
    for (const Page &pg : pages_) {
        if (seen.insert(pg.get()).second)
            total += pg->size();
    }
    return total;
}

} // namespace fsp::sim
