/**
 * @file
 * Machine-state value semantics for the resumable executor.
 */

#include "sim/machine_state.hh"

#include <algorithm>

namespace fsp::sim {

void
ThreadState::reset()
{
    std::fill(std::begin(regs), std::end(regs), 0);
    std::fill(std::begin(ccs), std::end(ccs), 0);
    pc = 0;
    icnt = 0;
    faultBits = 0;
    exited = false;
    atBarrier = false;
    traced = false;
}

std::uint64_t
MachineState::byteSize() const
{
    return sizeof(MachineState) + threads.size() * sizeof(ThreadState) +
           smem.size();
}

} // namespace fsp::sim
