/**
 * @file
 * ProtectionPlan coverage predicate and canonical identity.
 */

#include "sim/protection.hh"

#include <algorithm>

namespace fsp::sim {

namespace {

/** FNV-1a 64-bit, byte-at-a-time (same fold as faults::JournalHasher). */
std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t state = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        state ^= c;
        state *= 0x100000001b3ULL;
    }
    return state;
}

} // namespace

const char *
protectionSchemeName(ProtectionScheme scheme)
{
    return scheme == ProtectionScheme::DuplicateCompare
               ? "duplicate-compare"
               : "recompute";
}

void
ProtectionPlan::protectRange(std::uint64_t thread, std::uint64_t begin,
                             std::uint64_t end)
{
    if (begin >= end)
        return;
    ranges_[thread].push_back(ProtectedRange{begin, end});
    normalised_ = false;
}

void
ProtectionPlan::normalise() const
{
    if (normalised_)
        return;
    for (auto &[thread, ranges] : ranges_) {
        std::sort(ranges.begin(), ranges.end(),
                  [](const ProtectedRange &a, const ProtectedRange &b) {
                      return a.begin != b.begin ? a.begin < b.begin
                                                : a.end < b.end;
                  });
        std::vector<ProtectedRange> merged;
        for (const ProtectedRange &r : ranges) {
            if (!merged.empty() && r.begin <= merged.back().end)
                merged.back().end = std::max(merged.back().end, r.end);
            else
                merged.push_back(r);
        }
        ranges = std::move(merged);
    }
    normalised_ = true;
}

bool
ProtectionPlan::covers(std::uint64_t thread, std::uint64_t dynIndex,
                       FaultKind kind) const
{
    // Neither scheme reaches corruption outside the protected thread's
    // own dataflow: memory flips land in state other threads read, and
    // a skipped barrier corrupts the rendezvous itself.
    switch (kind) {
      case FaultKind::SharedMem:
      case FaultKind::GlobalMem:
      case FaultKind::GlobalMemLaunch:
      case FaultKind::BarrierSkip:
        return false;
      case FaultKind::PredState:
      case FaultKind::PcState:
        // Corrupted stored state only surfaces through the duplicated
        // re-execution; selective recomputation replays values, not
        // control state.
        if (scheme_ != ProtectionScheme::DuplicateCompare)
            return false;
        break;
      case FaultKind::DestReg:
      case FaultKind::DestRegStuck:
        break;
    }
    if (threads_.count(thread) != 0)
        return true;
    auto it = ranges_.find(thread);
    if (it == ranges_.end())
        return false;
    normalise();
    const std::vector<ProtectedRange> &ranges = it->second;
    auto pos = std::upper_bound(
        ranges.begin(), ranges.end(), dynIndex,
        [](std::uint64_t v, const ProtectedRange &r) { return v < r.begin; });
    return pos != ranges.begin() && dynIndex < std::prev(pos)->end;
}

std::size_t
ProtectionPlan::protectedThreadCount() const
{
    std::size_t count = threads_.size();
    for (const auto &[thread, ranges] : ranges_)
        if (threads_.count(thread) == 0)
            ++count;
    return count;
}

std::vector<std::uint64_t>
ProtectionPlan::protectedThreads() const
{
    std::vector<std::uint64_t> ids(threads_.begin(), threads_.end());
    for (const auto &[thread, ranges] : ranges_)
        if (threads_.count(thread) == 0)
            ids.push_back(thread);
    std::sort(ids.begin(), ids.end());
    return ids;
}

std::vector<ProtectedRange>
ProtectionPlan::rangesOf(std::uint64_t thread) const
{
    if (threads_.count(thread) != 0)
        return {};
    auto it = ranges_.find(thread);
    if (it == ranges_.end())
        return {};
    normalise();
    return it->second;
}

std::string
ProtectionPlan::identity() const
{
    normalise();
    std::string text =
        scheme_ == ProtectionScheme::DuplicateCompare ? "dup" : "recompute";
    for (std::uint64_t thread : protectedThreads()) {
        text += ';';
        text += std::to_string(thread);
        if (threads_.count(thread) != 0)
            continue;
        for (const ProtectedRange &r : ranges_.at(thread)) {
            text += ':';
            text += std::to_string(r.begin);
            text += '-';
            text += std::to_string(r.end);
        }
    }
    return text;
}

std::uint64_t
ProtectionPlan::identityHash() const
{
    return fnv1a(identity());
}

} // namespace fsp::sim
