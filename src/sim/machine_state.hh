/**
 * @file
 * Explicit machine state for the resumable executor core.
 *
 * The executor's interpreter loop used to keep all mutable launch state
 * (per-thread register files, barrier flags, the scheduling cursor, CTA
 * shared memory) in locals of a monolithic run() -- execution could only
 * ever start from dynamic instruction zero.  MachineState reifies that
 * state as a value object: the stepping engine (Executor::stepCta) can
 * run a CTA to a dynamic-instruction watermark, the caller can copy the
 * state, and a later run can resume from the copy and execute forward
 * only.  This is the substrate of checkpointed temporal replay in the
 * fault-injection engine (see faults/checkpoint.hh and DESIGN.md §9).
 *
 * Branch divergence needs no explicit reconvergence stack here: the
 * interpreter executes threads cooperatively (each to its next barrier
 * or exit), so a thread's entire control-flow position is its pc.
 */

#ifndef FSP_SIM_MACHINE_STATE_HH
#define FSP_SIM_MACHINE_STATE_HH

#include <cstdint>
#include <vector>

#include "sim/instruction.hh"
#include "sim/memory.hh"

namespace fsp::sim {

/** Per-thread architectural state. */
struct ThreadState
{
    std::uint64_t regs[kNumGpRegs];
    std::uint8_t ccs[kNumPredRegs];
    std::uint64_t pc = 0;
    std::uint64_t icnt = 0;
    std::uint64_t faultBits = 0;
    bool exited = false;
    bool atBarrier = false;
    bool traced = false;

    std::uint32_t tidX = 0, tidY = 0, tidZ = 0;
    std::uint64_t globalId = 0;

    void reset();
};

/**
 * Complete execution state of one CTA, sufficient to resume it.
 *
 * Invariants at a capture point (i.e. whenever stepCta returns):
 *  - threads[i] for i < cursor have finished their slice of the current
 *    barrier phase (exited or atBarrier);
 *  - threads[cursor], if any, may be mid-slice (neither flag set);
 *  - threads past cursor have not run in this phase (atBarrier false).
 *
 * Copying the object is the serialization: every field is a value, so a
 * copied state is a self-contained checkpoint that can be resumed any
 * number of times (Executor::run copies before resuming, leaving the
 * stored checkpoint immutable and shareable across threads).
 */
struct MachineState
{
    std::uint64_t ctaLinear = 0;        ///< linear CTA id in the grid
    std::size_t cursor = 0;             ///< next thread index this phase
    std::uint64_t executedDynInstrs = 0; ///< total executed in this CTA
    std::vector<ThreadState> threads;   ///< one per CTA thread
    SharedMemory smem;                  ///< CTA shared-memory contents

    /** Approximate in-memory footprint (checkpoint-budget metric). */
    std::uint64_t byteSize() const;
};

} // namespace fsp::sim

#endif // FSP_SIM_MACHINE_STATE_HH
