/**
 * @file
 * Explicit machine state for the resumable executor core.
 *
 * The executor's interpreter loop used to keep all mutable launch state
 * (per-thread register files, barrier flags, the scheduling cursor, CTA
 * shared memory) in locals of a monolithic run() -- execution could only
 * ever start from dynamic instruction zero.  MachineState reifies that
 * state as a value object: the stepping engine (Executor::stepCta) can
 * run a CTA to a dynamic-instruction watermark, the caller can copy the
 * state, and a later run can resume from the copy and execute forward
 * only.  This is the substrate of checkpointed temporal replay in the
 * fault-injection engine (see faults/checkpoint.hh and DESIGN.md §9).
 *
 * Layout: the state is a structure-of-arrays arena rather than a vector
 * of per-thread structs.  Two flat buffers hold everything mutable:
 *
 *   words  = [ regs: numThreads x numRegs | pc | icnt | faultBits ]
 *   bytes  = [ ccs: numThreads x kNumPredRegs | flags: numThreads ]
 *
 * Registers are stored thread-major in *dense* slots: the executor's
 * DecodedProgram renames the architectural GPR indices a kernel
 * actually references (out of the 128-register PTXPlus namespace) down
 * to a compact 0..numRegs-1 range, so a thread's whole live register
 * file spans a cache line or two instead of 1 KiB.  The renaming is
 *  invisible outside the executor -- fault plans address destinations
 * positionally (dynamic index), never by register number.
 *
 * Thread-major (not lane-major) is deliberate: the interpreter executes
 * threads cooperatively -- each runs to its next barrier or exit -- so
 * the unit of locality is one thread's registers, not one register
 * across a warp.  See DESIGN.md §13.
 *
 * Branch divergence needs no explicit reconvergence stack here: a
 * thread's entire control-flow position is its pc.
 */

#ifndef FSP_SIM_MACHINE_STATE_HH
#define FSP_SIM_MACHINE_STATE_HH

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "sim/instruction.hh"
#include "sim/memory.hh"

namespace fsp::sim {

class StateSnapshot;

/**
 * Complete execution state of one CTA, sufficient to resume it.
 *
 * Invariants at a capture point (i.e. whenever stepCta returns):
 *  - threads i < cursor have finished their slice of the current
 *    barrier phase (exited or atBarrier);
 *  - thread `cursor`, if any, may be mid-slice (neither flag set);
 *  - threads past cursor have not run in this phase (atBarrier false).
 *
 * Copying the object is the serialization: every field is a value, so a
 * copied state is a self-contained checkpoint that can be resumed any
 * number of times.  Durable checkpoints use StateSnapshot instead,
 * which shares unchanged pages between consecutive capture points.
 */
class MachineState
{
  public:
    std::uint64_t ctaLinear = 0;         ///< linear CTA id in the grid
    std::size_t cursor = 0;              ///< next thread index this phase
    std::uint64_t executedDynInstrs = 0; ///< total executed in this CTA
    SharedMemory smem;                   ///< CTA shared-memory contents

    /**
     * Size the arena for @p numThreads threads of @p numRegs dense
     * registers each and zero all per-thread state.  Buffers are
     * reused when the geometry already matches (the executor calls
     * this once per CTA on a long-lived scratch state).
     */
    void configure(std::uint32_t numThreads, std::uint32_t numRegs);

    std::uint32_t numThreads() const { return num_threads_; }
    std::uint32_t numRegs() const { return num_regs_; }

    /** @{ Dense register slab of one thread (numRegs() words). */
    std::uint64_t *
    regs(std::uint32_t t)
    {
        return words_.data() + std::size_t{t} * num_regs_;
    }
    const std::uint64_t *
    regs(std::uint32_t t) const
    {
        return words_.data() + std::size_t{t} * num_regs_;
    }
    /** @} */

    /** @{ Condition-code registers of one thread (kNumPredRegs). */
    std::uint8_t *
    ccs(std::uint32_t t)
    {
        return bytes_.data() + std::size_t{t} * kNumPredRegs;
    }
    const std::uint8_t *
    ccs(std::uint32_t t) const
    {
        return bytes_.data() + std::size_t{t} * kNumPredRegs;
    }
    /** @} */

    /** @{ Per-thread scalar state. */
    std::uint64_t &pc(std::uint32_t t) { return words_[pc_base_ + t]; }
    std::uint64_t pc(std::uint32_t t) const { return words_[pc_base_ + t]; }
    std::uint64_t &icnt(std::uint32_t t) { return words_[icnt_base_ + t]; }
    std::uint64_t
    icnt(std::uint32_t t) const
    {
        return words_[icnt_base_ + t];
    }
    std::uint64_t
    &faultBits(std::uint32_t t)
    {
        return words_[fb_base_ + t];
    }
    std::uint64_t
    faultBits(std::uint32_t t) const
    {
        return words_[fb_base_ + t];
    }
    /** @} */

    /** @{ Scheduling flags, packed one byte per thread. */
    bool
    exited(std::uint32_t t) const
    {
        return bytes_[flags_base_ + t] & kFlagExited;
    }
    void
    setExited(std::uint32_t t)
    {
        bytes_[flags_base_ + t] |= kFlagExited;
    }
    bool
    atBarrier(std::uint32_t t) const
    {
        return bytes_[flags_base_ + t] & kFlagBarrier;
    }
    void
    setAtBarrier(std::uint32_t t)
    {
        bytes_[flags_base_ + t] |= kFlagBarrier;
    }
    /** Release a barrier phase: clear every thread's barrier flag. */
    void clearBarriers();
    /** @} */

    /** Approximate in-memory footprint (checkpoint-budget metric). */
    std::uint64_t byteSize() const;

  private:
    friend class StateSnapshot;

    static constexpr std::uint8_t kFlagExited = 1u << 0;
    static constexpr std::uint8_t kFlagBarrier = 1u << 1;

    std::uint32_t num_threads_ = 0;
    std::uint32_t num_regs_ = 0;
    std::size_t pc_base_ = 0;
    std::size_t icnt_base_ = 0;
    std::size_t fb_base_ = 0;
    std::size_t flags_base_ = 0;
    std::vector<std::uint64_t> words_;
    std::vector<std::uint8_t> bytes_;
};

/**
 * Immutable checkpoint of a MachineState, stored as copy-on-write
 * pages.
 *
 * capture() chops the state's two arena buffers plus the shared-memory
 * contents into fixed-size pages; when a previous snapshot of the same
 * CTA is supplied, pages whose bytes are unchanged are *shared* with it
 * (shared_ptr) instead of copied, so a chain of capture points along
 * one CTA's execution costs only the pages that actually changed
 * between them.  restoreInto() memcpys the pages straight into a
 * reusable working state -- a single copy, no intermediate MachineState.
 *
 * Snapshots are immutable after capture() and safely shareable across
 * threads (the campaign's worker clones all restore from the same
 * store).
 */
class StateSnapshot
{
  public:
    /** Page granularity for copy-on-write sharing. */
    static constexpr std::size_t kPageBytes = 4096;

    StateSnapshot() = default;

    /** No state captured yet? */
    bool empty() const { return num_threads_ == 0; }

    /**
     * Capture @p state.  @p prev, when non-null, must be a snapshot of
     * the same CTA geometry (an earlier capture point of the same
     * execution); unchanged pages are shared with it.
     */
    void capture(const MachineState &state,
                 const StateSnapshot *prev = nullptr);

    /**
     * Restore the captured state into @p state, reusing its buffers.
     * @return bytes copied (the restore cost).
     */
    std::uint64_t restoreInto(MachineState &state) const;

    /** Dynamic instruction count of local thread @p t at capture. */
    std::uint64_t icntOf(std::uint32_t t) const;

    std::uint64_t ctaLinear() const { return cta_linear_; }
    std::uint64_t executedDynInstrs() const { return executed_; }

    /** Logical (uncompressed) size of the captured state in bytes. */
    std::uint64_t flatBytes() const;

    /**
     * Account this snapshot's pages into @p seen, returning the bytes
     * of pages not already present -- summing over a checkpoint chain
     * yields the real (shared-page-deduplicated) memory footprint.
     */
    std::uint64_t
    uniqueBytes(std::unordered_set<const void *> &seen) const;

  private:
    using Page = std::shared_ptr<const std::vector<std::uint8_t>>;

    std::uint64_t cta_linear_ = 0;
    std::uint64_t cursor_ = 0;
    std::uint64_t executed_ = 0;
    std::uint32_t num_threads_ = 0;
    std::uint32_t num_regs_ = 0;
    std::size_t word_count_ = 0; ///< words segment length (u64s)
    std::size_t byte_count_ = 0; ///< ccs/flags segment length
    std::size_t smem_bytes_ = 0; ///< shared-memory segment length
    /** Pages covering words || bytes || smem; each segment starts a
     *  fresh page so segments stay independently comparable. */
    std::vector<Page> pages_;
};

} // namespace fsp::sim

#endif // FSP_SIM_MACHINE_STATE_HH
