/**
 * @file
 * Fault plans applied by the executor.
 *
 * Following the paper's fault model (section II-C), the canonical fault
 * site is the triple (thread id, dynamic instruction id,
 * destination-register bit position): after the target dynamic
 * instruction of the target thread writes its destination register, one
 * bit of the written value is flipped, mimicking a soft error in the
 * functional unit that produced the value.
 *
 * The plan has since been generalised into the executor-side half of
 * the faults::FaultModel strategy layer: a FaultKind selects which
 * architectural state is corrupted (destination writeback, stored
 * predicate state, the pc, barrier bookkeeping, shared or global
 * memory) and the mask/addr/reg/stuck fields parameterise the
 * mutation.  The executor stays model-agnostic -- it interprets plans,
 * it never constructs them (fault models do, see
 * faults/fault_model.hh).
 */

#ifndef FSP_SIM_FAULT_HH
#define FSP_SIM_FAULT_HH

#include <cstdint>

namespace fsp::sim {

/** Which architectural state a fault plan corrupts. */
enum class FaultKind : std::uint8_t
{
    /**
     * XOR @c mask into the destination register written by the target
     * dynamic instruction (the paper's transient model; only mask bits
     * within the destination's recorded width take effect).
     */
    DestReg,

    /**
     * Stuck-at fault in the unit feeding the destination writeback:
     * for every destination write at or after the target dynamic
     * instruction, force the @c mask bits of the written value to
     * @c stuckValue.  @c period 0 is a permanent fault; a non-zero
     * period alternates active/idle windows of that many dynamic
     * instructions (an intermittent fault with a deterministic
     * activation schedule).
     */
    DestRegStuck,

    /**
     * XOR the low nibble of @c mask into predicate register @c reg of
     * the target thread when it reaches the target dynamic instruction
     * (corrupts stored control state rather than a fresh writeback).
     */
    PredState,

    /**
     * XOR @c mask into the target thread's pc when it reaches the
     * target dynamic instruction -- a corrupted branch target.  A pc
     * landing outside the code makes the thread exit, mirroring real
     * wild-jump behaviour under this ISA's implicit-exit semantics.
     */
    PcState,

    /**
     * Suppress the target thread's first barrier arrival at or after
     * the target dynamic instruction (corrupted barrier bookkeeping:
     * the thread skips the rendezvous and keeps executing into the
     * next phase).
     */
    BarrierSkip,

    /**
     * XOR the low byte of @c mask into the CTA shared-memory byte at
     * @c addr when the target thread reaches the target dynamic
     * instruction.
     */
    SharedMem,

    /**
     * XOR the low byte of @c mask into the global-memory byte at
     * @c addr when the target thread reaches the target dynamic
     * instruction.  In sliced runs the flip is hazard-checked like a
     * load+store by the faulty thread, so CTA-sliced classification
     * stays exact (the run escapes to a full-grid replay when another
     * CTA touches that byte).
     */
    GlobalMem,

    /**
     * XOR the low byte of @c mask into the global-memory byte at
     * @c addr once, before the launch starts -- a fault that predates
     * the kernel (e.g. a corrupted input buffer).  Models of this kind
     * must run full-grid from instruction zero (see
     * FaultModel::supportsSlicing / supportsCheckpoints).
     */
    GlobalMemLaunch,
};

/** "No static instruction recorded" sentinel for appliedStatic. */
inline constexpr std::uint32_t kNoStaticIndex = ~std::uint32_t{0};

/** A planned fault, consumed by Executor::run / stepCta. */
struct FaultPlan
{
    FaultKind kind = FaultKind::DestReg;
    std::uint64_t thread = 0;   ///< global linear thread id
    std::uint64_t dynIndex = 0; ///< 0-based dynamic instruction index

    /**
     * Corruption mask.  DestReg/DestRegStuck: XOR/stuck bits within
     * the destination width.  PredState: low 4 bits.  Memory kinds:
     * low 8 bits.  PcState: XORed into the pc value.
     */
    std::uint64_t mask = 1;

    std::uint64_t addr = 0;     ///< byte address (SharedMem/GlobalMem*)
    std::uint32_t reg = 0;      ///< predicate register (PredState)
    std::uint64_t stuckValue = 0; ///< forced bit values (DestRegStuck)

    /**
     * DestRegStuck activation period: 0 keeps the fault active from
     * dynIndex onward; N alternates N active / N idle dynamic
     * instructions starting active at dynIndex.
     */
    std::uint64_t period = 0;

    /**
     * Set by the executor when the corruption was actually performed
     * at least once (the target thread reached the target dynamic
     * instruction and the mutation had effect per the kind's rules).
     */
    bool applied = false;

    /**
     * Static instruction index at the first application (the
     * instruction whose writeback was corrupted, or the instruction
     * the thread was about to execute for reach-time kinds);
     * kNoStaticIndex when not applied or not attributable
     * (GlobalMemLaunch).  Feeds the per-static-instruction
     * failure-class ranking in faults::SdcAnatomyProfile.
     */
    std::uint32_t appliedStatic = kNoStaticIndex;

    /**
     * Set by the executor when the fault would have fired but an
     * active sim::ProtectionPlan covered the site: the corruption was
     * suppressed (the protection scheme caught and discarded it), so
     * @c applied stays false and the run produces golden outputs.
     * Mutually exclusive with @c applied for DestReg/PredState/PcState
     * single-shot kinds; a DestRegStuck plan straddling a coverage
     * boundary can both detect (inside coverage) and apply (outside).
     */
    bool detected = false;

    /** Static instruction index at the first detection (see
     * appliedStatic); kNoStaticIndex when never detected. */
    std::uint32_t detectedStatic = kNoStaticIndex;
};

} // namespace fsp::sim

#endif // FSP_SIM_FAULT_HH
