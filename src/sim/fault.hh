/**
 * @file
 * The single-bit-flip fault plan applied by the executor.
 *
 * Following the paper's fault model (section II-C), a fault site is the
 * triple (thread id, dynamic instruction id, destination-register bit
 * position): after the target dynamic instruction of the target thread
 * writes its destination register, one bit of the written value is
 * flipped, mimicking a soft error in the functional unit that produced
 * the value.
 */

#ifndef FSP_SIM_FAULT_HH
#define FSP_SIM_FAULT_HH

#include <cstdint>

namespace fsp::sim {

/** A planned single-bit flip, consumed by Executor::run. */
struct FaultPlan
{
    std::uint64_t thread = 0;   ///< global linear thread id
    std::uint64_t dynIndex = 0; ///< 0-based dynamic instruction index
    std::uint32_t bit = 0;      ///< bit position within the destination

    /**
     * Set by the executor when the flip was actually performed (the
     * target thread reached the target dynamic instruction and that
     * instruction wrote a destination register wide enough).
     */
    bool applied = false;
};

} // namespace fsp::sim

#endif // FSP_SIM_FAULT_HH
