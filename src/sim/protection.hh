/**
 * @file
 * Protection plans applied by the executor -- the mitigation-side
 * mirror of sim::FaultPlan.
 *
 * A ProtectionPlan describes which threads (or which dynamic-index
 * ranges of which threads) run under a software protection scheme
 * during a faulty run.  The executor consults the plan at the exact
 * points where a FaultPlan would corrupt architectural state: when the
 * corruption falls inside protected coverage, the mutation is
 * suppressed and recorded as a *detection* on the plan
 * (FaultPlan::detected) instead of an application.  A detected fault
 * therefore produces golden outputs and classifies as Masked -- the
 * simulated equivalent of duplicate-and-compare discarding the bad
 * value, or of a recomputation overwriting it.
 *
 * Two schemes are modelled, following Yang et al.'s partial thread
 * protection (see PAPERS.md):
 *
 *  - DuplicateCompare: every destination write of a protected thread is
 *    duplicated and compared, so all value-producing corruption in that
 *    thread (DestReg, DestRegStuck) and corrupted stored state feeding
 *    it (PredState, PcState) is caught.  Cost model: one redundant
 *    execution of the thread (factor 1.0 x its dynamic instructions).
 *
 *  - Recompute: only selected dynamic ranges of a protected thread are
 *    recomputed and compared, so coverage is limited to destination
 *    writebacks (DestReg, DestRegStuck) whose corrupting instruction
 *    falls inside a protected range.  Cost model: the summed range
 *    lengths.
 *
 * Memory kinds (SharedMem, GlobalMem, GlobalMemLaunch) and BarrierSkip
 * corrupt state outside the protected thread's own dataflow; neither
 * scheme covers them.  The executor stays scheme-agnostic the same way
 * it stays model-agnostic: it interprets coverage, it never constructs
 * plans (analysis::ProtectionPlanner does).
 */

#ifndef FSP_SIM_PROTECTION_HH
#define FSP_SIM_PROTECTION_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/fault.hh"

namespace fsp::sim {

/** Which software protection mechanism a plan simulates. */
enum class ProtectionScheme : std::uint8_t
{
    DuplicateCompare, ///< full-thread duplicate-and-compare
    Recompute,        ///< selective recomputation of dynamic ranges
};

/** Human-readable scheme tag ("duplicate-compare" / "recompute"). */
const char *protectionSchemeName(ProtectionScheme scheme);

/** Half-open dynamic-instruction range [begin, end) of one thread. */
struct ProtectedRange
{
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
};

/** A planned protection set, consumed by Executor::run / stepCta. */
class ProtectionPlan
{
public:
    explicit ProtectionPlan(
        ProtectionScheme scheme = ProtectionScheme::DuplicateCompare)
        : scheme_(scheme)
    {
    }

    ProtectionScheme
    scheme() const
    {
        return scheme_;
    }

    /** Protect a whole thread (both schemes accept this; under
     * Recompute it is an unbounded range). */
    void
    protectThread(std::uint64_t thread)
    {
        threads_.insert(thread);
    }

    /**
     * Protect the dynamic range [begin, end) of @p thread (Recompute).
     * Ranges may be added in any order; they are normalised (sorted,
     * merged) lazily by covers()/identity().
     */
    void protectRange(std::uint64_t thread, std::uint64_t begin,
                      std::uint64_t end);

    /** Is @p thread in the protection set at all? */
    bool
    protectsThread(std::uint64_t thread) const
    {
        return threads_.count(thread) != 0 || ranges_.count(thread) != 0;
    }

    /**
     * Would the scheme catch a fault of @p kind firing at
     * (@p thread, @p dynIndex)?  This is the executor's suppression
     * predicate; see the file comment for per-scheme coverage.
     */
    bool covers(std::uint64_t thread, std::uint64_t dynIndex,
                FaultKind kind) const;

    /** Number of distinct threads with any coverage. */
    std::size_t protectedThreadCount() const;

    /** Sorted list of protected thread ids (for reports). */
    std::vector<std::uint64_t> protectedThreads() const;

    /** Normalised ranges of @p thread (empty for whole-thread). */
    std::vector<ProtectedRange> rangesOf(std::uint64_t thread) const;

    bool
    empty() const
    {
        return threads_.empty() && ranges_.empty();
    }

    /**
     * Canonical text form: scheme tag plus the sorted thread/range
     * set.  Two plans with the same coverage produce the same string
     * regardless of insertion order.  Folded (via identityHash) into
     * campaign journal keys so a journal written under one protection
     * set refuses to resume under another.
     */
    std::string identity() const;

    /** FNV-1a hash of identity() (same fold as faults::JournalHasher). */
    std::uint64_t identityHash() const;

private:
    void normalise() const;

    ProtectionScheme scheme_;
    std::unordered_set<std::uint64_t> threads_; ///< whole-thread set
    /** Per-thread ranges; ordered map so identity() is canonical. */
    mutable std::map<std::uint64_t, std::vector<ProtectedRange>> ranges_;
    mutable bool normalised_ = true;
};

} // namespace fsp::sim

#endif // FSP_SIM_PROTECTION_HH
