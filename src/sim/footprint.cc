/**
 * @file
 * IntervalSet implementation.
 */

#include "sim/footprint.hh"

#include <algorithm>

namespace fsp::sim {

void
IntervalSet::add(std::uint64_t begin, std::uint64_t end)
{
    if (begin >= end)
        return;

    // First range whose end reaches begin (merge candidate; adjacent
    // ranges coalesce too, hence >=).
    auto first = std::lower_bound(
        ranges_.begin(), ranges_.end(), begin,
        [](const Interval &iv, std::uint64_t v) { return iv.end < v; });

    auto it = first;
    while (it != ranges_.end() && it->begin <= end) {
        begin = std::min(begin, it->begin);
        end = std::max(end, it->end);
        ++it;
    }
    it = ranges_.erase(first, it);
    ranges_.insert(it, Interval{begin, end});
}

IntervalSet
IntervalSet::fromUnsorted(std::vector<Interval> raw)
{
    std::erase_if(raw, [](const Interval &iv) { return iv.empty(); });
    std::sort(raw.begin(), raw.end(),
              [](const Interval &a, const Interval &b) {
                  return a.begin < b.begin;
              });

    IntervalSet out;
    out.ranges_.reserve(raw.size());
    for (const Interval &iv : raw) {
        if (!out.ranges_.empty() && iv.begin <= out.ranges_.back().end) {
            out.ranges_.back().end =
                std::max(out.ranges_.back().end, iv.end);
        } else {
            out.ranges_.push_back(iv);
        }
    }
    return out;
}

std::uint64_t
IntervalSet::totalBytes() const
{
    std::uint64_t total = 0;
    for (const Interval &iv : ranges_)
        total += iv.bytes();
    return total;
}

bool
IntervalSet::intersects(const IntervalSet &other) const
{
    auto a = ranges_.begin();
    auto b = other.ranges_.begin();
    while (a != ranges_.end() && b != other.ranges_.end()) {
        if (a->end <= b->begin)
            ++a;
        else if (b->end <= a->begin)
            ++b;
        else
            return true;
    }
    return false;
}

bool
IntervalSet::containsRange(std::uint64_t begin, std::uint64_t end) const
{
    if (begin >= end)
        return true;
    auto it = std::upper_bound(
        ranges_.begin(), ranges_.end(), begin,
        [](std::uint64_t v, const Interval &iv) { return v < iv.end; });
    return it != ranges_.end() && it->begin <= begin && end <= it->end;
}

IntervalSet
IntervalSet::clipped(std::uint64_t begin, std::uint64_t end) const
{
    IntervalSet out;
    if (begin >= end)
        return out;
    for (const Interval &iv : ranges_) {
        if (iv.end <= begin)
            continue;
        if (iv.begin >= end)
            break;
        out.ranges_.push_back(
            {std::max(iv.begin, begin), std::min(iv.end, end)});
    }
    return out;
}

void
IntervalSet::unionWith(const IntervalSet &other)
{
    for (const Interval &iv : other.ranges_)
        add(iv.begin, iv.end);
}

IntervalSet
IntervalSet::subtract(const IntervalSet &other) const
{
    IntervalSet out;
    auto cursor = other.ranges_.begin();
    for (const Interval &iv : ranges_) {
        std::uint64_t pos = iv.begin;
        while (cursor != other.ranges_.end() && cursor->end <= pos)
            ++cursor;
        auto hole = cursor;
        while (pos < iv.end) {
            if (hole == other.ranges_.end() || hole->begin >= iv.end) {
                out.ranges_.push_back({pos, iv.end});
                break;
            }
            if (hole->begin > pos)
                out.ranges_.push_back({pos, hole->begin});
            pos = std::max(pos, hole->end);
            ++hole;
        }
    }
    return out;
}

} // namespace fsp::sim
