/**
 * @file
 * Internal execution helpers shared by the decoded dispatch engine
 * (executor.cc) and the reference per-step interpreter
 * (executor_ref.cc).
 *
 * Both engines drive the same scheduler, the same fault hooks and the
 * same arithmetic helpers against the same SoA MachineState -- the only
 * difference is how an instruction's operation and operands are
 * resolved (pre-decoded DecodedOp vs. per-step Instruction walk).
 * Keeping the arithmetic in one place is what makes "bit-identical by
 * construction" a meaningful claim; the differential suite
 * (tests/test_decoded_executor.cc) then verifies it end to end.
 *
 * This header is internal to fsp_sim: do not include it outside
 * src/sim.
 */

#ifndef FSP_SIM_EXEC_IMPL_HH
#define FSP_SIM_EXEC_IMPL_HH

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/decoded.hh"
#include "sim/fault.hh"
#include "sim/protection.hh"
#include "sim/machine_state.hh"
#include "sim/memory.hh"
#include "sim/program.hh"
#include "sim/trace.hh"
#include "util/logging.hh"

namespace fsp::sim::exec {

inline constexpr std::uint64_t kDefaultBudget = 50'000'000;

/** Zero-extend truncation to @p bits. */
inline std::uint64_t
truncVal(std::uint64_t v, unsigned bits)
{
    return bits >= 64 ? v : (v & ((std::uint64_t{1} << bits) - 1));
}

/** Sign extension of the low @p bits of @p v. */
inline std::int64_t
signExt(std::uint64_t v, unsigned bits)
{
    if (bits >= 64)
        return static_cast<std::int64_t>(v);
    std::uint64_t m = std::uint64_t{1} << (bits - 1);
    std::uint64_t t = truncVal(v, bits);
    return static_cast<std::int64_t>((t ^ m) - m);
}

inline float
asF32(std::uint64_t raw)
{
    return std::bit_cast<float>(static_cast<std::uint32_t>(raw));
}

inline std::uint64_t
fromF32(float v)
{
    return std::bit_cast<std::uint32_t>(v);
}

inline double
asF64(std::uint64_t raw)
{
    return std::bit_cast<double>(raw);
}

inline std::uint64_t
fromF64(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

/** Why a thread stopped running in the current scheduling slice. */
enum class StopReason : std::uint8_t
{
    Exited,
    Barrier,
    Limit, ///< per-call step limit reached (stepCta watermark)
    Crashed,
    Hung,
    Hazard, ///< sliced run touched another CTA's footprint
};

/** Mutable context shared by every thread while one CTA executes. */
struct CtaContext
{
    GlobalMemory &gmem;
    const ParamBuffer &params;
    SharedMemory *smem = nullptr; ///< the current CTA's scratchpad
    const Program *prog = nullptr;
    const DecodedProgram *dec = nullptr;
    Dim3 block{};
    Dim3 grid{}; ///< %nctaid reads in the reference engine
    std::uint64_t blockThreads = 0;
    std::uint32_t ctaidX = 0, ctaidY = 0, ctaidZ = 0;
    std::uint64_t budget = kDefaultBudget;
    const TraceOptions *opts = nullptr;
    FaultPlan *fault = nullptr;
    const ProtectionPlan *protection = nullptr;
    TraceData *trace = nullptr;
    std::string diagnostic{};

    /** Sliced-run hazard sets (null outside sliced injection runs). */
    const IntervalSet *loadHazards = nullptr;
    const IntervalSet *storeHazards = nullptr;

    /** Footprint accumulators for the current CTA (null when off). */
    std::vector<Interval> *fpReads = nullptr;
    std::vector<Interval> *fpWrites = nullptr;
};

/** Condition-code flags derived from a result value of @p type. */
inline std::uint8_t
ccFromValue(std::uint64_t raw, DataType type)
{
    std::uint8_t cc = 0;
    if (isFloatType(type)) {
        double v = type == DataType::F32 ? asF32(raw) : asF64(raw);
        if (v == 0.0)
            cc |= CcZero;
        if (std::signbit(v))
            cc |= CcSign;
    } else {
        unsigned bits = typeBits(type);
        if (truncVal(raw, bits) == 0)
            cc |= CcZero;
        if (signExt(raw, bits) < 0)
            cc |= CcSign;
    }
    return cc;
}

/** Evaluate a guard condition against a thread's CC registers. */
inline bool
guardCcPasses(GuardCond cond, unsigned pred, const std::uint8_t *ccs)
{
    if (cond == GuardCond::Always)
        return true;
    std::uint8_t cc = ccs[pred];
    bool zero = cc & CcZero;
    bool sign = cc & CcSign;
    switch (cond) {
      case GuardCond::Eq: return zero;
      case GuardCond::Ne: return !zero;
      case GuardCond::Lt: return sign;
      case GuardCond::Le: return sign || zero;
      case GuardCond::Gt: return !sign && !zero;
      case GuardCond::Ge: return !sign;
      case GuardCond::Always: return true;
    }
    panic("unreachable GuardCond");
}

/** Comparison on raw values per @p type (set/setp).  Inline: the
 * decoded SetCmp case calls this per dynamic set/setp. */
inline bool
compareValues(CmpOp cmp, std::uint64_t a, std::uint64_t b, DataType type)
{
    if (isFloatType(type)) {
        double fa = type == DataType::F32 ? asF32(a) : asF64(a);
        double fb = type == DataType::F32 ? asF32(b) : asF64(b);
        switch (cmp) {
          case CmpOp::Eq: return fa == fb;
          case CmpOp::Ne: return fa != fb;
          case CmpOp::Lt: return fa < fb;
          case CmpOp::Le: return fa <= fb;
          case CmpOp::Gt: return fa > fb;
          case CmpOp::Ge: return fa >= fb;
          case CmpOp::None: break;
        }
        panic("set/setp without comparison");
    }
    unsigned bits = typeBits(type);
    if (isSignedType(type)) {
        std::int64_t sa = signExt(a, bits);
        std::int64_t sb = signExt(b, bits);
        switch (cmp) {
          case CmpOp::Eq: return sa == sb;
          case CmpOp::Ne: return sa != sb;
          case CmpOp::Lt: return sa < sb;
          case CmpOp::Le: return sa <= sb;
          case CmpOp::Gt: return sa > sb;
          case CmpOp::Ge: return sa >= sb;
          case CmpOp::None: break;
        }
        panic("set/setp without comparison");
    }
    std::uint64_t ua = truncVal(a, bits);
    std::uint64_t ub = truncVal(b, bits);
    switch (cmp) {
      case CmpOp::Eq: return ua == ub;
      case CmpOp::Ne: return ua != ub;
      case CmpOp::Lt: return ua < ub;
      case CmpOp::Le: return ua <= ub;
      case CmpOp::Gt: return ua > ub;
      case CmpOp::Ge: return ua >= ub;
      case CmpOp::None: break;
    }
    panic("set/setp without comparison");
}

/** ALU evaluation for two/three-operand ops; returns the raw result. */
std::uint64_t evalAluOp(Opcode op, DataType t, std::uint64_t a,
                        std::uint64_t b, std::uint64_t c);

/** cvt semantics: read as @p st, convert to @p dt, return raw bits. */
std::uint64_t evalCvtTyped(DataType st, DataType dt, std::uint64_t raw);

/** Record a plan's first application and its static instruction. */
inline void
noteApplied(FaultPlan &fault, std::uint32_t static_index)
{
    if (!fault.applied) {
        fault.applied = true;
        fault.appliedStatic = static_index;
    }
}

/** Record a plan's first suppressed-by-protection detection. */
inline void
noteDetected(FaultPlan &fault, std::uint32_t static_index)
{
    if (!fault.detected) {
        fault.detected = true;
        fault.detectedStatic = static_index;
    }
}

/**
 * Corrupt a just-written destination value per the plan.  Covers the
 * transient XOR model (DestReg, the paper's default) and the stuck-at
 * variants (DestRegStuck); mask bits outside the destination's
 * recorded width never take effect, so a plan targeting a wider value
 * than the instruction produced stays un-applied exactly as the
 * original single-bit engine behaved.
 *
 * @return true when the value was corrupted (callers then writeback
 *         and mark the plan applied).
 */
inline bool
corruptDest(std::uint64_t &value, const FaultPlan &fault,
            std::uint64_t dyn_index, unsigned recorded_bits)
{
    const std::uint64_t width_mask =
        recorded_bits >= 64
            ? ~std::uint64_t{0}
            : ((std::uint64_t{1} << recorded_bits) - 1);
    const std::uint64_t mask = fault.mask & width_mask;
    if (mask == 0)
        return false;
    if (fault.kind == FaultKind::DestReg) {
        if (dyn_index != fault.dynIndex)
            return false;
        value ^= mask;
        return true;
    }
    // DestRegStuck: active from dynIndex onward; a non-zero period
    // alternates active/idle windows (deterministic intermittency).
    if (dyn_index < fault.dynIndex)
        return false;
    if (fault.period != 0 &&
        (((dyn_index - fault.dynIndex) / fault.period) & 1) != 0) {
        return false;
    }
    value = (value & ~mask) | (fault.stuckValue & mask);
    return true;
}

/** Does this plan corrupt destination writebacks? */
inline bool
isDestKind(FaultKind kind)
{
    return kind == FaultKind::DestReg || kind == FaultKind::DestRegStuck;
}

/**
 * Corrupt-or-detect for a just-written destination value: the single
 * hook both engines call from every writeback site.  When the plan is
 * not a destination kind or would not fire here, nothing happens.
 * When it fires under protection coverage the corruption is suppressed
 * and recorded as a detection (the value stays golden); otherwise the
 * corruption commits and is recorded as applied.
 *
 * @return true when @p value was actually corrupted.
 */
inline bool
applyDestFault(std::uint64_t &value, CtaContext &ctx,
               std::uint64_t dyn_index, unsigned recorded_bits,
               std::uint32_t static_index)
{
    FaultPlan &fault = *ctx.fault;
    if (!isDestKind(fault.kind))
        return false;
    std::uint64_t probe = value;
    if (!corruptDest(probe, fault, dyn_index, recorded_bits))
        return false;
    if (ctx.protection != nullptr &&
        ctx.protection->covers(fault.thread, dyn_index, fault.kind)) {
        noteDetected(fault, static_index);
        return false;
    }
    value = probe;
    noteApplied(fault, static_index);
    return true;
}

/**
 * Apply a reach-time fault: architectural state corrupted when the
 * target thread arrives at its target dynamic instruction, before
 * executing it (PredState, PcState, SharedMem, GlobalMem).  Other
 * kinds fall through untouched -- in particular BarrierSkip, which is
 * consumed at the next Bar instruction instead.
 *
 * Operates on the caller's (possibly local-cached) pc and the thread's
 * CC slab so both engines share it verbatim.
 *
 * @return true when the interpreter loop must stop with @p halt (a
 *         crash on an unmapped flip address, or a sliced-run hazard
 *         when the flipped global byte is shared with other CTAs).
 */
bool applyReachFault(CtaContext &ctx, std::uint64_t &pc,
                     std::uint8_t *ccs, std::uint64_t global_id,
                     std::size_t code_size, StopReason &halt);

/**
 * Per-thread interpreter slices.  Each runs thread @p tl of @p ms until
 * it exits, reaches a barrier, crashes, exceeds its budget, or has
 * executed @p max_steps instructions in this call.  The decoded variant
 * drives the pre-decoded dispatch loop; the reference variant re-walks
 * the original Instruction stream each step (the differential oracle).
 */
StopReason runThreadDecoded(MachineState &ms, std::uint32_t tl,
                            CtaContext &ctx, std::uint64_t max_steps);
StopReason runThreadReference(MachineState &ms, std::uint32_t tl,
                              CtaContext &ctx, std::uint64_t max_steps);

} // namespace fsp::sim::exec

#endif // FSP_SIM_EXEC_IMPL_HH
