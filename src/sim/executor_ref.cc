/**
 * @file
 * The reference interpreter engine: the original per-step instruction
 * walk, re-resolving operands from the assembler's Instruction
 * representation on every dynamic instruction.
 *
 * It is deliberately unoptimised -- its job is to be an obviously
 * faithful oracle for the decoded dispatch engine (executor.cc).  It
 * runs against the same SoA MachineState through the DecodedProgram's
 * dense register map, and shares every arithmetic, guard and fault-hook
 * helper, so any divergence the differential suite finds is in operand
 * resolution or dispatch, never in state layout or math.
 */

#include <sstream>

#include "sim/exec_impl.hh"

namespace fsp::sim::exec {

namespace {

/** Per-thread view the reference walk operates on. */
struct RefThread
{
    std::uint64_t *regs; ///< dense register slab (via regMap)
    std::uint8_t *ccs;
    std::uint64_t pc;
    std::uint64_t icnt;
    std::uint64_t faultBits;
    std::uint64_t globalId;
    std::uint32_t tidX, tidY, tidZ;
    bool exited = false;
};

/** Read a source operand as raw bits appropriate for @p type. */
inline std::uint64_t
readSrc(const RefThread &t, const CtaContext &ctx, const Operand &o,
        DataType type, const std::array<std::uint8_t, kNumGpRegs> &map)
{
    switch (o.kind) {
      case Operand::Kind::GpReg: {
        std::uint64_t raw =
            (o.reg == kZeroReg) ? 0 : t.regs[map[o.reg]];
        if (o.half == HalfSel::Lo)
            raw = raw & 0xFFFF;
        else if (o.half == HalfSel::Hi)
            raw = (raw >> 16) & 0xFFFF;
        if (o.negated) {
            if (type == DataType::F32)
                raw = fromF32(-asF32(raw));
            else if (type == DataType::F64)
                raw = fromF64(-asF64(raw));
            else
                raw = truncVal(0 - raw, typeBits(type));
        }
        return raw;
      }
      case Operand::Kind::PredReg:
        // Predicate as a data source (selp): true iff zero flag clear.
        return (t.ccs[o.reg] & CcZero) ? 0 : 1;
      case Operand::Kind::Discard:
        return 0;
      case Operand::Kind::Special:
        switch (o.special) {
          case SpecialReg::TidX: return t.tidX;
          case SpecialReg::TidY: return t.tidY;
          case SpecialReg::TidZ: return t.tidZ;
          case SpecialReg::NtidX: return ctx.block.x;
          case SpecialReg::NtidY: return ctx.block.y;
          case SpecialReg::NtidZ: return ctx.block.z;
          case SpecialReg::CtaidX: return ctx.ctaidX;
          case SpecialReg::CtaidY: return ctx.ctaidY;
          case SpecialReg::CtaidZ: return ctx.ctaidZ;
          case SpecialReg::NctaidX: return ctx.grid.x;
          case SpecialReg::NctaidY: return ctx.grid.y;
          case SpecialReg::NctaidZ: return ctx.grid.z;
        }
        panic("unreachable SpecialReg");
      case Operand::Kind::Imm:
        return o.imm;
      case Operand::Kind::MemRef:
      case Operand::Kind::None:
        panic("operand kind not readable as a value");
    }
    panic("unreachable Operand::Kind");
}

} // namespace

StopReason
runThreadReference(MachineState &ms, std::uint32_t tl, CtaContext &ctx,
                   std::uint64_t max_steps)
{
    const auto &code = ctx.prog->instructions();
    const std::size_t code_size = code.size();
    const auto &map = ctx.dec->regMap();

    RefThread t;
    t.regs = ms.regs(tl);
    t.ccs = ms.ccs(tl);
    t.pc = ms.pc(tl);
    t.icnt = ms.icnt(tl);
    t.faultBits = ms.faultBits(tl);
    t.globalId = ms.ctaLinear * ctx.blockThreads + tl;
    t.tidX = tl % ctx.block.x;
    t.tidY = (tl / ctx.block.x) % ctx.block.y;
    t.tidZ = tl / (ctx.block.x * ctx.block.y);

    // Write the cached scalars back on every way out of the loop.
    auto finish = [&](StopReason r) {
        ms.pc(tl) = t.pc;
        ms.icnt(tl) = t.icnt;
        ms.faultBits(tl) = t.faultBits;
        if (t.exited)
            ms.setExited(tl);
        return r;
    };

    std::vector<DynRecord> *dyn_trace = nullptr;
    if (ctx.trace && ctx.opts &&
        ctx.opts->traceThreads.count(t.globalId) > 0) {
        dyn_trace = &ctx.trace->dynTraces[t.globalId];
    }
    const bool record_values =
        dyn_trace != nullptr && ctx.opts->recordValues;

    const bool is_fault_thread =
        ctx.fault != nullptr && ctx.fault->thread == t.globalId;

    std::uint64_t steps = 0;
    while (true) {
        // Reach-time faults fire when the thread is about to execute
        // its target dynamic instruction (pre-fault execution is
        // bit-identical to golden, so a valid site always fires).
        if (is_fault_thread && !ctx.fault->applied &&
            t.icnt == ctx.fault->dynIndex) {
            StopReason halt;
            if (applyReachFault(ctx, t.pc, t.ccs, t.globalId, code_size,
                                halt)) {
                return finish(halt);
            }
        }
        if (t.pc >= code_size) {
            t.exited = true;
            return finish(StopReason::Exited);
        }
        if (steps >= max_steps)
            return finish(StopReason::Limit);
        if (t.icnt >= ctx.budget) {
            std::ostringstream os;
            os << "thread " << t.globalId << " exceeded budget of "
               << ctx.budget << " dynamic instructions";
            ctx.diagnostic = os.str();
            return finish(StopReason::Hung);
        }

        const Instruction &insn = code[t.pc];
        const std::uint64_t dyn_index = t.icnt;
        t.icnt++;
        steps++;

        const bool pass =
            guardCcPasses(insn.guard.cond, insn.guard.pred, t.ccs);
        std::uint16_t recorded_bits = 0;
        bool hit_barrier = false;

        if (pass) {
            switch (insn.op) {
              case Opcode::Nop:
              case Opcode::Ssy:
                t.pc++;
                break;

              case Opcode::Ret:
              case Opcode::Exit:
                t.exited = true;
                break;

              case Opcode::Bra:
                t.pc = static_cast<std::uint64_t>(insn.target);
                break;

              case Opcode::Bar:
                t.pc++;
                if (is_fault_thread &&
                    ctx.fault->kind == FaultKind::BarrierSkip &&
                    !ctx.fault->applied &&
                    dyn_index >= ctx.fault->dynIndex) {
                    // Corrupted barrier bookkeeping: the thread's
                    // arrival is lost, so it runs ahead into the next
                    // phase while the others rendezvous without it.
                    noteApplied(*ctx.fault,
                                static_cast<std::uint32_t>(
                                    &insn - code.data()));
                } else {
                    hit_barrier = true;
                }
                break;

              case Opcode::Ld:
              case Opcode::St: {
                const Operand &mem = insn.src[0];
                std::uint64_t base =
                    mem.memBase >= 0 &&
                            mem.memBase !=
                                static_cast<std::int32_t>(kZeroReg)
                        ? truncVal(t.regs[map[static_cast<unsigned>(
                                       mem.memBase)]],
                                   32)
                        : 0;
                std::uint64_t addr =
                    base + static_cast<std::uint64_t>(mem.memOffset);
                unsigned width = typeBits(insn.type) / 8;

                if (insn.space == MemSpace::Global) {
                    // Sliced-run escape: an access into a byte range
                    // other CTAs touch means this CTA's isolated
                    // execution could diverge from its execution in
                    // the full grid -- abort so the injector falls
                    // back to a full-grid run.
                    const IntervalSet *hazards = insn.op == Opcode::Ld
                                                     ? ctx.loadHazards
                                                     : ctx.storeHazards;
                    if (hazards &&
                        hazards->intersectsRange(addr, addr + width)) {
                        std::ostringstream os;
                        os << "thread " << t.globalId << " sliced-run "
                           << (insn.op == Opcode::Ld ? "load" : "store")
                           << " hazard at global 0x" << std::hex << addr
                           << std::dec << ": " << insn.text;
                        ctx.diagnostic = os.str();
                        return finish(StopReason::Hazard);
                    }
                }

                AccessError err;
                std::uint64_t value = 0;
                if (insn.op == Opcode::Ld) {
                    switch (insn.space) {
                      case MemSpace::Global:
                        err = ctx.gmem.load(addr, width, value);
                        break;
                      case MemSpace::Shared:
                        err = ctx.smem->load(addr, width, value);
                        break;
                      case MemSpace::Param:
                        err = ctx.params.load(addr, width, value);
                        break;
                      default:
                        panic("ld without address space");
                    }
                } else {
                    value = readSrc(t, ctx, insn.src[1], insn.type, map);
                    value = truncVal(value, typeBits(insn.type));
                    switch (insn.space) {
                      case MemSpace::Global:
                        err = ctx.gmem.store(addr, width, value);
                        break;
                      case MemSpace::Shared:
                        err = ctx.smem->store(addr, width, value);
                        break;
                      default:
                        panic("st without writable address space");
                    }
                }

                if (err != AccessError::None) {
                    std::ostringstream os;
                    os << "thread " << t.globalId << " "
                       << (insn.op == Opcode::Ld ? "load" : "store")
                       << " fault at " << spaceName(insn.space) << " 0x"
                       << std::hex << addr << std::dec << " ("
                       << (err == AccessError::Unmapped ? "unmapped"
                                                        : "misaligned")
                       << "): " << insn.text;
                    ctx.diagnostic = os.str();
                    return finish(StopReason::Crashed);
                }

                if (insn.space == MemSpace::Global) {
                    std::vector<Interval> *fp = insn.op == Opcode::Ld
                                                    ? ctx.fpReads
                                                    : ctx.fpWrites;
                    if (fp)
                        fp->push_back({addr, addr + width});
                }

                if (insn.op == Opcode::Ld) {
                    // Sign-extend signed loads into the register.
                    if (isSignedType(insn.type)) {
                        value = static_cast<std::uint64_t>(
                            signExt(value, typeBits(insn.type)));
                        value = truncVal(value, 64);
                    }
                    if (insn.dest.kind == Operand::Kind::GpReg &&
                        insn.dest.reg != kZeroReg) {
                        std::uint64_t &dst =
                            t.regs[map[insn.dest.reg]];
                        dst = value;
                        recorded_bits = static_cast<std::uint16_t>(
                            typeBits(insn.type));
                        if (is_fault_thread) {
                            applyDestFault(dst, ctx, dyn_index,
                                           recorded_bits,
                                           static_cast<std::uint32_t>(
                                               &insn - code.data()));
                        }
                    }
                }
                t.pc++;
                break;
              }

              default: {
                // ALU / SFU / compare / conversion path.
                std::uint64_t result;
                if (insn.op == Opcode::Cvt) {
                    std::uint64_t a =
                        readSrc(t, ctx, insn.src[0], insn.stype, map);
                    result = evalCvtTyped(insn.stype, insn.type, a);
                } else if (insn.op == Opcode::Set ||
                           insn.op == Opcode::Setp) {
                    std::uint64_t a =
                        readSrc(t, ctx, insn.src[0], insn.stype, map);
                    std::uint64_t b =
                        readSrc(t, ctx, insn.src[1], insn.stype, map);
                    bool r = compareValues(insn.cmp, a, b, insn.stype);
                    unsigned dbits = insn.type == DataType::Pred
                                         ? 32
                                         : typeBits(insn.type);
                    result = r ? truncVal(~std::uint64_t{0}, dbits) : 0;
                } else if (insn.op == Opcode::Selp) {
                    std::uint64_t a =
                        readSrc(t, ctx, insn.src[0], insn.type, map);
                    std::uint64_t b =
                        readSrc(t, ctx, insn.src[1], insn.type, map);
                    std::uint64_t cnd =
                        readSrc(t, ctx, insn.src[2], DataType::U32, map);
                    result = cnd ? truncVal(a, typeBits(insn.type))
                                 : truncVal(b, typeBits(insn.type));
                } else {
                    unsigned n = opcodeSrcCount(insn.op);
                    std::uint64_t a =
                        readSrc(t, ctx, insn.src[0], insn.type, map);
                    std::uint64_t b =
                        n > 1 ? readSrc(t, ctx, insn.src[1], insn.type,
                                        map)
                              : 0;
                    std::uint64_t c =
                        n > 2 ? readSrc(t, ctx, insn.src[2], insn.type,
                                        map)
                              : 0;
                    result = evalAluOp(insn.op, insn.type, a, b, c);
                }

                // Writeback: primary dest is either a GPR value or a
                // 4-bit CC register (with an optional data side-effect
                // through dest2, PTXPlus "$p0|$r1" style).
                if (insn.dest.kind == Operand::Kind::PredReg) {
                    DataType cc_type =
                        insn.op == Opcode::Set || insn.op == Opcode::Setp
                            ? (insn.type == DataType::Pred ? DataType::U32
                                                           : insn.type)
                            : insn.type;
                    t.ccs[insn.dest.reg] = ccFromValue(result, cc_type);
                    recorded_bits = typeBits(DataType::Pred);
                    if (is_fault_thread) {
                        std::uint64_t cc = t.ccs[insn.dest.reg];
                        if (applyDestFault(cc, ctx, dyn_index,
                                           recorded_bits,
                                           static_cast<std::uint32_t>(
                                               &insn - code.data()))) {
                            t.ccs[insn.dest.reg] =
                                static_cast<std::uint8_t>(cc);
                        }
                    }
                    if (insn.dest2.kind == Operand::Kind::GpReg &&
                        insn.dest2.reg != kZeroReg) {
                        t.regs[map[insn.dest2.reg]] = result;
                    }
                } else if (insn.dest.kind == Operand::Kind::GpReg &&
                           insn.dest.reg != kZeroReg) {
                    std::uint64_t &dst = t.regs[map[insn.dest.reg]];
                    dst = result;
                    recorded_bits = static_cast<std::uint16_t>(
                        insn.op == Opcode::MulWide ||
                                insn.op == Opcode::MadWide
                            ? 2 * typeBits(insn.type)
                            : typeBits(insn.type));
                    if (is_fault_thread) {
                        applyDestFault(dst, ctx, dyn_index,
                                       recorded_bits,
                                       static_cast<std::uint32_t>(
                                           &insn - code.data()));
                    }
                }
                t.pc++;
                break;
              }
            }
        } else {
            // Guard failed: the instruction issues (counted in iCnt, as
            // in the PTXPlus trace model) but performs no writeback, no
            // branch, and no barrier arrival.
            t.pc++;
        }

        t.faultBits += recorded_bits;
        if (dyn_trace) {
            DynRecord record{
                static_cast<std::uint32_t>(&insn - code.data()),
                recorded_bits};
            if (record_values) {
                // Mirror of the decoded engine's makeDynRecord: guard
                // outcome plus the post-writeback destination value.
                record.flags = pass ? DynRecord::kExecuted : 0;
                if (pass && recorded_bits != 0) {
                    const std::uint64_t value =
                        insn.dest.kind == Operand::Kind::PredReg
                            ? t.ccs[insn.dest.reg]
                            : t.regs[map[insn.dest.reg]];
                    record.valueLo = static_cast<std::uint32_t>(value);
                    record.valueHi =
                        static_cast<std::uint32_t>(value >> 32);
                }
            }
            dyn_trace->push_back(record);
        }

        if (hit_barrier)
            return finish(StopReason::Barrier);
        if (t.exited)
            return finish(StopReason::Exited);
    }
}

} // namespace fsp::sim::exec
