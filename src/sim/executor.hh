/**
 * @file
 * The functional SIMT executor: runs a decoded kernel over a full grid,
 * modelling per-thread register state, CTA shared memory and barriers,
 * branch divergence, crash detection (wild/misaligned addresses) and
 * hang detection (per-thread instruction budgets).  Optional hooks
 * collect traces and apply a single-bit destination-register fault.
 */

#ifndef FSP_SIM_EXECUTOR_HH
#define FSP_SIM_EXECUTOR_HH

#include <cstdint>
#include <string>

#include "sim/fault.hh"
#include "sim/launch.hh"
#include "sim/memory.hh"
#include "sim/program.hh"
#include "sim/trace.hh"

namespace fsp::sim {

/** Terminal status of a kernel launch. */
enum class RunStatus : std::uint8_t
{
    Completed, ///< every thread retired normally
    Crashed,   ///< a thread performed an invalid memory access
    Hung,      ///< a thread exceeded its dynamic-instruction budget
};

std::string runStatusName(RunStatus status);

/** Result of one simulated kernel launch. */
struct RunResult
{
    RunStatus status = RunStatus::Completed;
    std::uint64_t totalDynInstrs = 0; ///< across all threads
    std::string diagnostic;           ///< crash/hang detail (human readable)
    TraceData trace;                  ///< populated per TraceOptions
};

/**
 * Executes kernel launches.  Stateless between runs: all mutable state
 * (global memory) is passed in, so a campaign can restore a pristine
 * memory image and re-run cheaply.
 */
class Executor
{
  public:
    /**
     * @param program decoded kernel (must outlive the executor).
     * @param config launch geometry and parameters (copied).
     */
    Executor(const Program &program, LaunchConfig config);

    /**
     * Run the launch to completion.
     *
     * @param gmem global memory image, mutated in place.
     * @param opts optional trace collection.
     * @param fault optional single-bit fault to apply.
     */
    RunResult run(GlobalMemory &gmem, const TraceOptions *opts = nullptr,
                  FaultPlan *fault = nullptr) const;

    const LaunchConfig &config() const { return config_; }
    const Program &program() const { return program_; }

  private:
    const Program &program_;
    LaunchConfig config_;
};

} // namespace fsp::sim

#endif // FSP_SIM_EXECUTOR_HH
