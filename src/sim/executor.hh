/**
 * @file
 * The functional SIMT executor: runs a decoded kernel over a full grid,
 * modelling per-thread register state, CTA shared memory and barriers,
 * branch divergence, crash detection (wild/misaligned addresses) and
 * hang detection (per-thread instruction budgets).  Optional hooks
 * collect traces and apply a single-bit destination-register fault.
 *
 * Two interchangeable engines execute the same semantics:
 *  - ExecEngine::Decoded (default): a pre-decoded DecodedProgram driven
 *    by a dense dispatch loop (see decoded.hh) -- the fast path every
 *    campaign runs on;
 *  - ExecEngine::Reference: the original per-step instruction walk,
 *    kept as the differential oracle (tests/test_decoded_executor.cc
 *    asserts bit-identical traces, outputs and footprints).
 * FSP_EXEC_ENGINE=reference|decoded overrides the choice globally.
 */

#ifndef FSP_SIM_EXECUTOR_HH
#define FSP_SIM_EXECUTOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/decoded.hh"
#include "sim/fault.hh"
#include "sim/footprint.hh"
#include "sim/protection.hh"
#include "sim/launch.hh"
#include "sim/machine_state.hh"
#include "sim/memory.hh"
#include "sim/program.hh"
#include "sim/trace.hh"

namespace fsp::sim {

/** Terminal status of a kernel launch. */
enum class RunStatus : std::uint8_t
{
    Completed,   ///< every thread retired normally
    Crashed,     ///< a thread performed an invalid memory access
    Hung,        ///< a thread exceeded its dynamic-instruction budget
    SliceHazard, ///< a sliced run touched another CTA's footprint
};

std::string runStatusName(RunStatus status);

/** Interpreter engine selection (see file header). */
enum class ExecEngine : std::uint8_t
{
    Decoded,   ///< pre-decoded dispatch loop (default)
    Reference, ///< per-step instruction walk (differential oracle)
};

/**
 * A subset of a launch's CTAs, identified by linear CTA id (the
 * cz-major order in which the executor schedules CTAs).  Ids are kept
 * sorted and unique; ids beyond the grid are ignored.
 */
struct CtaRange
{
    std::vector<std::uint64_t> ctas;

    /** Range containing a single CTA. */
    static CtaRange single(std::uint64_t cta) { return {{cta}}; }

    /** Half-open contiguous range [begin, end). */
    static CtaRange contiguous(std::uint64_t begin, std::uint64_t end);

    /** Arbitrary id list; sorted and deduplicated. */
    static CtaRange of(std::vector<std::uint64_t> ids);
};

/**
 * Scope a run to a CTA subset, optionally guarded by hazard sets.
 *
 * The executor runs exactly the CTAs in @p range, in the same order
 * and with the same thread numbering as a full-grid run -- for CTAs
 * whose inputs are untouched by the skipped CTAs, execution is
 * bit-identical to their execution within the full grid.
 *
 * The hazard sets make that safe under fault injection: if a load
 * touches @p loadHazards (bytes other CTAs write) or a store touches
 * @p storeHazards (bytes other CTAs read or write), the run aborts
 * with RunStatus::SliceHazard so the caller can fall back to a
 * full-grid run instead of silently diverging from it.
 */
struct CtaSlice
{
    CtaRange range;
    const IntervalSet *loadHazards = nullptr;  ///< may be null
    const IntervalSet *storeHazards = nullptr; ///< may be null
};

/** Why Executor::stepCta stopped advancing a CTA. */
enum class CtaStepStatus : std::uint8_t
{
    Retired,   ///< every thread of the CTA exited
    Watermark, ///< the dynamic-instruction watermark was reached
    Crashed,   ///< a thread performed an invalid memory access
    Hung,      ///< a thread exceeded its dynamic-instruction budget
    Hazard,    ///< a sliced run touched another CTA's footprint
};

/** Sentinel watermark: run the CTA to retirement. */
inline constexpr std::uint64_t kNoWatermark = ~std::uint64_t{0};

/** Result of one simulated kernel launch. */
struct RunResult
{
    RunStatus status = RunStatus::Completed;
    std::uint64_t totalDynInstrs = 0; ///< across all threads
    std::uint64_t executedCtas = 0;   ///< CTAs actually run
    /** Machine-state bytes copied to resume from a checkpoint. */
    std::uint64_t restoredStateBytes = 0;
    std::string diagnostic;           ///< crash/hang detail (human readable)
    TraceData trace;                  ///< populated per TraceOptions
};

/**
 * Aggregate simulation counters an Executor feeds into an attached
 * sink (see Executor::setMetricsSink): plain accumulators, bumped once
 * per run() from the calling thread.  Attach a sink only to executors
 * driven from a single thread at a time (e.g. the analysis facade's
 * golden executor) -- the fields are unsynchronized by design so the
 * unobserved path stays free.
 */
struct ExecMetrics
{
    std::uint64_t runs = 0;         ///< completed run() calls
    std::uint64_t executedCtas = 0; ///< CTAs simulated, all runs
    std::uint64_t dynInstrs = 0;    ///< dynamic instructions, all runs
};

/**
 * Executes kernel launches.  Stateless between runs: all mutable state
 * (global memory) is passed in, so a campaign can restore a pristine
 * memory image and re-run cheaply.  run() reuses an internal scratch
 * MachineState, so a single Executor instance must be driven from one
 * thread at a time (campaign workers each own a cloned instance; this
 * matches the metrics-sink contract that already held).
 */
class Executor
{
  public:
    /**
     * @param program decoded kernel (must outlive the executor).
     * @param config launch geometry and parameters (copied).
     * @param engine interpreter engine (FSP_EXEC_ENGINE overrides).
     */
    Executor(const Program &program, LaunchConfig config,
             ExecEngine engine = ExecEngine::Decoded);

    /**
     * Run the launch to completion.
     *
     * @param gmem global memory image, mutated in place.
     * @param opts optional trace collection.
     * @param fault optional single-bit fault to apply.
     * @param slice optional CTA subset to execute (see CtaSlice).
     * @param resume optional checkpointed CTA state: the run starts at
     *        resume->ctaLinear() by restoring that snapshot into the
     *        scratch state (the caller must have placed global memory
     *        in the matching condition, e.g. via
     *        GlobalMemory::applyDelta) and then continues with any
     *        later CTAs selected by @p slice.  CTAs before the resume
     *        point are skipped entirely.
     * @param protection optional protection plan: faults from @p fault
     *        firing inside its coverage are suppressed and recorded as
     *        detections instead of applied (see sim/protection.hh).
     */
    RunResult run(GlobalMemory &gmem, const TraceOptions *opts = nullptr,
                  FaultPlan *fault = nullptr,
                  const CtaSlice *slice = nullptr,
                  const StateSnapshot *resume = nullptr,
                  const ProtectionPlan *protection = nullptr) const;

    /** Pristine pre-execution state of one CTA of this launch. */
    MachineState initialCtaState(std::uint64_t ctaLinear) const;

    /**
     * Advance one CTA until it retires, crashes, hangs, hits a slice
     * hazard, or reaches @p watermark total executed instructions.  On
     * Watermark the state is a valid capture point: copy it (or
     * capture a StateSnapshot) and call stepCta again with a higher
     * watermark to continue, or resume from the snapshot later via
     * run().
     *
     * @param state CTA state, advanced in place.
     * @param gmem global memory image, mutated in place.
     * @param watermark stop once state.executedDynInstrs reaches this.
     * @param fault optional single-bit fault to apply.
     * @param slice optional hazard sets (the range is ignored here;
     *        stepping is inherently single-CTA).
     * @param diagnostic receives crash/hang/hazard detail when non-null.
     * @param protection optional protection plan (see run()).
     */
    CtaStepStatus stepCta(MachineState &state, GlobalMemory &gmem,
                          std::uint64_t watermark = kNoWatermark,
                          FaultPlan *fault = nullptr,
                          const CtaSlice *slice = nullptr,
                          std::string *diagnostic = nullptr,
                          const ProtectionPlan *protection = nullptr) const;

    const LaunchConfig &config() const { return config_; }
    const Program &program() const { return program_; }

    /** The pre-decoded form this executor dispatches on. */
    const DecodedProgram &decoded() const { return *decoded_; }

    /** Active interpreter engine. */
    ExecEngine engine() const { return engine_; }

    /**
     * Attach a counter sink fed once per run() (not owned; null
     * detaches).  Copied executors inherit the pointer, so only attach
     * to an executor that is never cloned into worker threads.
     */
    void setMetricsSink(ExecMetrics *sink) { metrics_ = sink; }

  private:
    /** Fold one run's counters into the attached sink, if any. */
    void
    noteRun(const RunResult &result) const
    {
        if (metrics_ == nullptr)
            return;
        metrics_->runs++;
        metrics_->executedCtas += result.executedCtas;
        metrics_->dynInstrs += result.totalDynInstrs;
    }

    /** Re-initialise @p state for @p ctaLinear, reusing its buffers. */
    void resetCtaState(MachineState &state,
                       std::uint64_t ctaLinear) const;

    const Program &program_;
    LaunchConfig config_;
    /** Shared with copies (injector clones) -- decoded once. */
    std::shared_ptr<const DecodedProgram> decoded_;
    ExecEngine engine_;
    ExecMetrics *metrics_ = nullptr; ///< not owned; see setMetricsSink
    /** run()'s reusable CTA state; makes run() non-reentrant. */
    mutable MachineState scratch_;
};

} // namespace fsp::sim

#endif // FSP_SIM_EXECUTOR_HH
