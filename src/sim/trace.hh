/**
 * @file
 * Tracing support for profiling runs.
 *
 * Two granularities are offered because campaigns and pruning need very
 * different amounts of data:
 *  - per-thread summaries (dynamic instruction count "iCnt" and total
 *    destination-register fault bits) for *every* thread -- cheap enough
 *    to collect at paper-scale geometry, and exactly what Table I,
 *    Table VII and the thread-wise grouping consume;
 *  - full dynamic traces (static instruction index + dest width per
 *    dynamic instruction) for an explicit set of threads -- consumed by
 *    instruction-wise common-block detection and loop detection, which
 *    only ever look at a handful of representative threads.
 */

#ifndef FSP_SIM_TRACE_HH
#define FSP_SIM_TRACE_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/footprint.hh"

namespace fsp::sim {

/** Summary of one thread's fault-free execution. */
struct ThreadProfile
{
    std::uint64_t iCnt = 0;      ///< dynamic instructions executed
    std::uint64_t faultBits = 0; ///< sum of dest bits (Eq. 1 contribution)
};

/** One dynamic instruction of a traced thread. */
struct DynRecord
{
    /** Flag bits (populated only under TraceOptions::recordValues). */
    static constexpr std::uint16_t kExecuted = 0x1; ///< guard passed

    std::uint32_t staticIndex; ///< index into Program::instructions()
    std::uint16_t destBits;    ///< fault bits of this dynamic instruction
    std::uint16_t flags = 0;   ///< kExecuted (recordValues runs only)
    std::uint32_t valueLo = 0; ///< post-writeback dest value, low half
    std::uint32_t valueHi = 0; ///< post-writeback dest value, high half

    /** Guard outcome of this issue (meaningful under recordValues). */
    bool executed() const { return (flags & kExecuted) != 0; }

    /**
     * The value the instruction wrote through its destination (GPR
     * content, or the 4-bit CC register for predicate destinations).
     * Meaningful when executed() and destBits != 0 under a
     * recordValues run; 0 otherwise.
     */
    std::uint64_t
    value() const
    {
        return (std::uint64_t{valueHi} << 32) | valueLo;
    }

    bool operator==(const DynRecord &other) const = default;
};

/** What to collect during a run. */
struct TraceOptions
{
    /** Collect a ThreadProfile for every thread in the launch. */
    bool perThreadProfiles = false;

    /**
     * Collect per-CTA global-memory read/write footprints (the input
     * to the CTA-independence analysis behind sliced injection).
     */
    bool ctaFootprints = false;

    /** Collect full DynRecord streams for these global thread ids. */
    std::unordered_set<std::uint64_t> traceThreads;

    /**
     * Additionally record, per traced dynamic instruction, the guard
     * outcome and the post-writeback destination value (DynRecord's
     * flags/value fields).  This is the input to trace-section state
     * hashing (sim/section.hh); off by default so plain profiling
     * traces stay cheap.
     */
    bool recordValues = false;
};

/** Collected trace data (returned inside RunResult). */
struct TraceData
{
    std::vector<ThreadProfile> profiles; ///< indexed by global thread id
    std::unordered_map<std::uint64_t, std::vector<DynRecord>> dynTraces;
    std::vector<CtaFootprint> ctaFootprints; ///< indexed by linear CTA id
};

} // namespace fsp::sim

#endif // FSP_SIM_TRACE_HH
