/**
 * @file
 * Tracing support for profiling runs.
 *
 * Two granularities are offered because campaigns and pruning need very
 * different amounts of data:
 *  - per-thread summaries (dynamic instruction count "iCnt" and total
 *    destination-register fault bits) for *every* thread -- cheap enough
 *    to collect at paper-scale geometry, and exactly what Table I,
 *    Table VII and the thread-wise grouping consume;
 *  - full dynamic traces (static instruction index + dest width per
 *    dynamic instruction) for an explicit set of threads -- consumed by
 *    instruction-wise common-block detection and loop detection, which
 *    only ever look at a handful of representative threads.
 */

#ifndef FSP_SIM_TRACE_HH
#define FSP_SIM_TRACE_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/footprint.hh"

namespace fsp::sim {

/** Summary of one thread's fault-free execution. */
struct ThreadProfile
{
    std::uint64_t iCnt = 0;      ///< dynamic instructions executed
    std::uint64_t faultBits = 0; ///< sum of dest bits (Eq. 1 contribution)
};

/** One dynamic instruction of a traced thread. */
struct DynRecord
{
    std::uint32_t staticIndex; ///< index into Program::instructions()
    std::uint16_t destBits;    ///< fault bits of this dynamic instruction
};

/** What to collect during a run. */
struct TraceOptions
{
    /** Collect a ThreadProfile for every thread in the launch. */
    bool perThreadProfiles = false;

    /**
     * Collect per-CTA global-memory read/write footprints (the input
     * to the CTA-independence analysis behind sliced injection).
     */
    bool ctaFootprints = false;

    /** Collect full DynRecord streams for these global thread ids. */
    std::unordered_set<std::uint64_t> traceThreads;
};

/** Collected trace data (returned inside RunResult). */
struct TraceData
{
    std::vector<ThreadProfile> profiles; ///< indexed by global thread id
    std::unordered_map<std::uint64_t, std::vector<DynRecord>> dynTraces;
    std::vector<CtaFootprint> ctaFootprints; ///< indexed by linear CTA id
};

} // namespace fsp::sim

#endif // FSP_SIM_TRACE_HH
